package exactdep_test

// Public-API surface of the budget/cancellation layer: context-first entry
// points, the deprecated workers shim, Report.Degraded, Maybe rendering, and
// the conservative treatment of degraded pairs by the parallelizer.

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"exactdep"
	"exactdep/internal/workload"
)

// fmHardSrc is an adversarial program whose pairs land in Fourier–Motzkin,
// so tiny budgets visibly trip.
func fmHardSrc(t *testing.T) string {
	t.Helper()
	return workload.FMHardSource(workload.FMHardSpec{Name: "API", Depth: 4, Cases: 3})
}

// TestAnalyzeSourceContextCancelled: an already-cancelled context degrades
// every pair to Maybe/TripCancelled; Report.Degraded returns all of them and
// the stats count them as cancelled, not as verdicts.
func TestAnalyzeSourceContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := exactdep.AnalyzeSourceContext(ctx, fmHardSrc(t), exactdep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) == 0 {
		t.Fatal("no results")
	}
	deg := rep.Degraded()
	if len(deg) != len(rep.Results) {
		t.Fatalf("Degraded() returned %d of %d results", len(deg), len(rep.Results))
	}
	for _, r := range deg {
		if r.Outcome != exactdep.Maybe || r.Trip != exactdep.TripCancelled {
			t.Fatalf("degraded result %+v, want Maybe/TripCancelled", r)
		}
	}
	if rep.Stats.CancelledPairs != len(rep.Results) {
		t.Errorf("CancelledPairs = %d, want %d", rep.Stats.CancelledPairs, len(rep.Results))
	}
}

// TestAnalyzeSourceContextTimeout is the README quick-start: a wall-clock
// bound via context.WithTimeout completes with sound results.
func TestAnalyzeSourceContextTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rep, err := exactdep.AnalyzeSourceContext(ctx, fmHardSrc(t), exactdep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Outcome != exactdep.Maybe && !r.Exact {
			t.Errorf("result %+v neither exact nor degraded to Maybe", r)
		}
	}
}

// TestReportDegradedBudget: a starvation count budget produces Maybe results
// with trip provenance; Degraded() isolates them and their string form says
// "maybe" with the budget reason — the rendering Parallelize/AnnotateSource
// clients see.
func TestReportDegradedBudget(t *testing.T) {
	rep, err := exactdep.AnalyzeSource(fmHardSrc(t), exactdep.Options{
		Budget: exactdep.Budget{MaxFMEliminations: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	deg := rep.Degraded()
	if len(deg) == 0 {
		t.Fatal("starvation budget degraded nothing")
	}
	for _, r := range deg {
		if r.Outcome != exactdep.Maybe {
			t.Fatalf("degraded result outcome %v", r.Outcome)
		}
		if got := r.Outcome.String(); got != "maybe" {
			t.Errorf("Maybe renders as %q", got)
		}
		if got := r.Trip.String(); got != "fm-eliminations" {
			t.Errorf("trip renders as %q, want fm-eliminations", got)
		}
	}
	if rep.Stats.TotalBudgetTrips() == 0 {
		t.Error("report stats recorded no budget trips")
	}
}

// TestWorkersOptionDeterministic: the context-first entry point must return
// identical results at every Options.Workers value (the guarantee the
// removed AnalyzeUnitWorkers shim used to restate).
func TestWorkersOptionDeterministic(t *testing.T) {
	prog, err := exactdep.Parse(fmHardSrc(t))
	if err != nil {
		t.Fatal(err)
	}
	u := exactdep.Lower(prog)
	opts := exactdep.Options{Memoize: true, ImprovedMemo: true}
	serial, err := exactdep.AnalyzeUnitContext(context.Background(), u, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, -1} {
		o := opts
		o.Workers = workers
		conc, err := exactdep.AnalyzeUnitContext(context.Background(), u, o)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", conc.Results) != fmt.Sprintf("%+v", serial.Results) {
			t.Errorf("workers=%d: results diverge from serial", workers)
		}
	}
}

// TestValidateAtPublicEntries: every public analysis entry point must reject
// invalid options up front with the shared Options.Validate error shape,
// before touching the input.
func TestValidateAtPublicEntries(t *testing.T) {
	prog, err := exactdep.Parse("for i = 1 to 10\n  a[i] = a[i-1]\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	u := exactdep.Lower(prog)
	bad := exactdep.Options{Cascade: "no-such-cascade"}
	wantErr := bad.Validate()
	if wantErr == nil {
		t.Fatal("bad options validated clean")
	}
	if _, err := exactdep.AnalyzeUnit(u, bad); err == nil || err.Error() != wantErr.Error() {
		t.Errorf("AnalyzeUnit error = %v, want %v", err, wantErr)
	}
	if _, err := exactdep.AnalyzeSource("for i = 1 to 2\n  a[i] = a[i]\nend\n", bad); err == nil || err.Error() != wantErr.Error() {
		t.Errorf("AnalyzeSource error = %v, want %v", err, wantErr)
	}
	if _, err := exactdep.Parallelize(u, bad); err == nil || err.Error() != wantErr.Error() {
		t.Errorf("Parallelize error = %v, want %v", err, wantErr)
	}
	req := exactdep.CorpusRequest{Source: exactdep.CorpusMem{}, Options: bad}
	if _, err := exactdep.AnalyzeCorpusRequest(context.Background(), req); err == nil || err.Error() != wantErr.Error() {
		t.Errorf("AnalyzeCorpusRequest error = %v, want %v", err, wantErr)
	}
	negative := exactdep.Options{Budget: exactdep.Budget{MaxBranchNodes: -1}}
	if _, err := exactdep.AnalyzeUnit(u, negative); err == nil {
		t.Error("negative budget accepted")
	}
	// The corpus selection itself is validated too: zero or two selectors
	// is a usage error.
	if _, err := exactdep.AnalyzeCorpusRequest(context.Background(), exactdep.CorpusRequest{}); err == nil {
		t.Error("empty CorpusRequest accepted")
	}
	two := exactdep.CorpusRequest{Dir: "x", Files: []string{"y"}}
	if _, err := exactdep.AnalyzeCorpusRequest(context.Background(), two); err == nil {
		t.Error("double corpus selection accepted")
	}
}

// TestParallelizeMaybeConservative: a loop whose only dependence evidence is
// a degraded Maybe must be reported serial — conservative, exactly as if the
// dependence were proven — and AnnotateSource must not emit parfor for it.
func TestParallelizeMaybeConservative(t *testing.T) {
	src := fmHardSrc(t)
	prog, err := exactdep.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	u := exactdep.Lower(prog)
	rep, err := exactdep.AnalyzeUnit(u, exactdep.Options{
		DirectionVectors: true, PruneUnused: true,
		Budget: exactdep.Budget{MaxFMEliminations: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	maybes := 0
	for _, r := range rep.Results {
		if r.Outcome == exactdep.Maybe {
			maybes++
		}
	}
	if maybes == 0 {
		t.Fatal("no Maybe results; conservatism check would be vacuous")
	}
	par := exactdep.ParallelizeResults(u, rep.Results)
	for _, l := range par.Loops {
		if l.Parallel {
			t.Errorf("loop %s reported parallel despite degraded dependence evidence", l.Index)
		}
	}
	if annotated := exactdep.AnnotateSource(prog, par); strings.Contains(annotated, "parfor") {
		t.Error("AnnotateSource emitted parfor under degraded evidence")
	}
}
