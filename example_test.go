package exactdep_test

import (
	"fmt"

	"exactdep"
)

// The paper's second introductory loop: every iteration reads the previous
// iteration's write.
func ExampleAnalyzeSource() {
	report, err := exactdep.AnalyzeSource(`
for i = 1 to 10
  a[i+1] = a[i] + 3
end
`, exactdep.Options{DirectionVectors: true, PruneUnused: true, PruneDistance: true})
	if err != nil {
		panic(err)
	}
	for _, r := range report.Results {
		if r.Pair.A.Ref.Kind == exactdep.Write && r.Pair.B.Ref.Kind == exactdep.Read {
			fmt.Println(r.Pair.A.Ref, "vs", r.Pair.B.Ref, "->", r.Outcome, r.Vectors[0])
		}
	}
	// Output:
	// a[i + 1] (write) vs a[i] (read) -> dependent (<)
}

// Building a dependence problem directly from the IR.
func ExampleAnalyzer_AnalyzePair() {
	nest := &exactdep.Nest{
		Label: "example",
		Loops: []exactdep.Loop{{
			Index: "i",
			Lower: exactdep.NewConst(1),
			Upper: exactdep.NewConst(100),
		}},
	}
	write := exactdep.Ref{Array: "a", Kind: exactdep.Write, Depth: 1,
		Subscripts: []exactdep.Expr{exactdep.NewTerm("i", 2)}}
	read := exactdep.Ref{Array: "a", Kind: exactdep.Read, Depth: 1,
		Subscripts: []exactdep.Expr{exactdep.NewTerm("i", 2).AddConst(1)}}

	a := exactdep.NewAnalyzer(exactdep.Options{})
	res, err := a.AnalyzePair(nest.Pair(write, read))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Outcome, "by", res.DecidedBy)
	// Output:
	// independent by gcd
}

// Loop parallelization: the application layer.
func ExampleParallelize() {
	prog, err := exactdep.Parse(`
for i = 1 to 100
  for j = 1 to 100
    a[i+1][j] = a[i][j]
  end
end
`)
	if err != nil {
		panic(err)
	}
	rep, err := exactdep.Parallelize(exactdep.Lower(prog), exactdep.Options{
		PruneUnused: true, PruneDistance: true,
	})
	if err != nil {
		panic(err)
	}
	for _, l := range rep.Loops {
		status := "serial"
		if l.Parallel {
			status = "parallel"
		}
		fmt.Println(l.Index, status)
	}
	// Output:
	// i serial
	// j parallel
}

// Transformation legality from direction vectors.
func ExampleInterchangeLegal() {
	// a[i][j] = a[i-1][j+1] has direction vector (<, >): interchange would
	// reverse the execution order of dependent iterations.
	vectors := []exactdep.DirectionVector{{exactdep.DirLess, exactdep.DirGreater}}
	legal, _ := exactdep.InterchangeLegal(vectors, []int{1, 0})
	fmt.Println("interchange legal:", legal)
	// Output:
	// interchange legal: false
}

// Direction-vector set minimization.
func ExampleMergeVectors() {
	vs := []exactdep.DirectionVector{
		{exactdep.DirLess, exactdep.DirLess},
		{exactdep.DirLess, exactdep.DirEqual},
		{exactdep.DirLess, exactdep.DirGreater},
	}
	for _, v := range exactdep.MergeVectors(vs) {
		fmt.Println(v)
	}
	// Output:
	// (<, *)
}
