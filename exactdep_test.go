package exactdep_test

import (
	"bytes"
	"strings"
	"testing"

	"exactdep"
)

func TestAnalyzeSourceIntroLoops(t *testing.T) {
	// First intro example: a[i] = a[i+10] — fully parallel.
	rep, err := exactdep.AnalyzeSource(`
for i = 1 to 10
  a[i] = a[i+10] + 3
end
`, exactdep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		cross := r.Pair.A.Ref.Kind != r.Pair.B.Ref.Kind
		if cross && r.Outcome != exactdep.Independent {
			t.Fatalf("expected independent: %+v", r)
		}
	}

	// Second intro example: a[i+1] = a[i] — serial.
	rep2, err := exactdep.AnalyzeSource(`
for i = 1 to 10
  a[i+1] = a[i] + 3
end
`, exactdep.Options{DirectionVectors: true, PruneUnused: true, PruneDistance: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rep2.Results {
		if r.Pair.A.Ref.Kind != r.Pair.B.Ref.Kind && r.Outcome == exactdep.Dependent {
			found = true
			if len(r.Vectors) != 1 || r.Vectors[0].String() != "(<)" {
				t.Fatalf("vectors = %v", r.Vectors)
			}
			if len(r.Distances) != 1 || r.Distances[0].Value != 1 {
				t.Fatalf("distances = %v", r.Distances)
			}
		}
	}
	if !found {
		t.Fatal("flow dependence not reported")
	}
}

func TestProgrammaticPair(t *testing.T) {
	nest := &exactdep.Nest{
		Label: "api",
		Loops: []exactdep.Loop{{
			Index: "i",
			Lower: exactdep.NewConst(1),
			Upper: exactdep.NewConst(100),
		}},
	}
	w := exactdep.Ref{Array: "a", Subscripts: []exactdep.Expr{exactdep.NewTerm("i", 2)}, Kind: exactdep.Write, Depth: 1}
	r := exactdep.Ref{Array: "a", Subscripts: []exactdep.Expr{exactdep.NewTerm("i", 2).AddConst(1)}, Kind: exactdep.Read, Depth: 1}
	a := exactdep.NewAnalyzer(exactdep.Options{})
	res, err := a.AnalyzePair(nest.Pair(w, r))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != exactdep.Independent || res.DecidedBy != exactdep.ByGCD {
		t.Fatalf("%+v", res)
	}
}

func TestReportStatsSnapshot(t *testing.T) {
	rep, err := exactdep.AnalyzeSource(`
for i = 1 to 10
  a[i] = a[i+1]
  b[3] = b[4]
end
`, exactdep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Pairs != len(rep.Results) {
		t.Fatalf("pairs = %d, results = %d", rep.Stats.Pairs, len(rep.Results))
	}
	if rep.Stats.Constant == 0 {
		t.Fatal("b[3]/b[4] pairs must be classified constant")
	}
}

func TestParseError(t *testing.T) {
	if _, err := exactdep.AnalyzeSource("for i = \nend\n", exactdep.Options{}); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestDepGraphAndTransformAPI(t *testing.T) {
	rep, err := exactdep.AnalyzeSource(`
for i = 2 to 100
  for j = 1 to 99
    a[i][j] = a[i-1][j+1]
  end
end
`, exactdep.Options{DirectionVectors: true, PruneUnused: true, PruneDistance: true})
	if err != nil {
		t.Fatal(err)
	}
	g := exactdep.BuildDepGraph(rep.Unit, rep.Results)
	if len(g.Edges) == 0 {
		t.Fatal("expected dependence edges")
	}
	foundFlow := false
	for _, e := range g.Edges {
		if e.Kind == exactdep.FlowDep && e.Carried {
			foundFlow = true
		}
	}
	if !foundFlow {
		t.Fatalf("missing carried flow edge:\n%s", g)
	}
	var vectors []exactdep.DirectionVector
	for _, r := range rep.Results {
		if r.Outcome == exactdep.Dependent {
			for _, v := range r.Vectors {
				vectors = append(vectors, exactdep.NormalizeVector(v))
			}
		}
	}
	legal, err := exactdep.InterchangeLegal(vectors, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if legal {
		t.Fatal("(<, >) interchange must be illegal")
	}
	if !exactdep.ParallelizableLevel(vectors, 1) {
		t.Fatal("inner level must be parallel")
	}
	if exactdep.ReversalLegal(vectors, 0) {
		t.Fatal("outer reversal must be illegal")
	}
}

func TestMemoPersistenceAPI(t *testing.T) {
	opts := exactdep.Options{Memoize: true, ImprovedMemo: true}
	prog, err := exactdep.Parse("for i = 1 to 10\n  a[i] = a[i+1]\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	u := exactdep.Lower(prog)
	warm := exactdep.NewAnalyzer(opts)
	if _, err := warm.AnalyzeUnit(u); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := warm.SaveMemo(&buf); err != nil {
		t.Fatal(err)
	}
	cold := exactdep.NewAnalyzer(opts)
	if err := cold.LoadMemo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := cold.AnalyzeUnit(u); err != nil {
		t.Fatal(err)
	}
	if cold.Stats.TotalTests() != 0 {
		t.Fatalf("persisted table must avoid re-testing, ran %d", cold.Stats.TotalTests())
	}
}

func TestParallelizeAPI(t *testing.T) {
	prog, err := exactdep.Parse(`
for i = 1 to 10
  for j = 1 to 10
    a[i+1][j] = a[i][j]
  end
end
`)
	if err != nil {
		t.Fatal(err)
	}
	u := exactdep.Lower(prog)
	rep, err := exactdep.Parallelize(u, exactdep.Options{PruneUnused: true, PruneDistance: true})
	if err != nil {
		t.Fatal(err)
	}
	var outer, inner *exactdep.LoopInfo
	for i := range rep.Loops {
		switch rep.Loops[i].Index {
		case "i":
			outer = &rep.Loops[i]
		case "j":
			inner = &rep.Loops[i]
		}
	}
	if outer == nil || outer.Parallel {
		t.Fatalf("outer must be serial: %+v", rep)
	}
	if inner == nil || !inner.Parallel {
		t.Fatalf("inner must be parallel: %+v", rep)
	}
}

func TestFullDistanceVectorAPI(t *testing.T) {
	rep, err := exactdep.AnalyzeSource(`
for i = 2 to 10
  for j = 3 to 10
    a[i][j] = a[i-1][j-2]
  end
end
`, exactdep.Options{DirectionVectors: true, PruneUnused: true, PruneDistance: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rep.Results {
		if r.Pair.A.Ref.Kind == r.Pair.B.Ref.Kind {
			continue
		}
		d, ok := exactdep.FullDistanceVector(r)
		if !ok {
			t.Fatalf("constant-distance pair must yield a full vector: %+v", r)
		}
		if d.String() != "(1, 2)" {
			t.Fatalf("distance vector = %s", d)
		}
		found = true
	}
	if !found {
		t.Fatal("no flow pair found")
	}
	// an incomplete result yields ok=false
	if _, ok := exactdep.FullDistanceVector(exactdep.Result{}); ok {
		t.Fatal("empty result must not produce a distance vector")
	}
}

func TestPairsHelper(t *testing.T) {
	prog, err := exactdep.Parse("for i = 1 to 10\n  a[i] = a[i-1]\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	u := exactdep.Lower(prog)
	cands := exactdep.Pairs(u)
	if len(cands) != 2 { // write/read + write self-pair
		t.Fatalf("candidates = %d", len(cands))
	}
}

func TestPairsNoSelfAPI(t *testing.T) {
	prog, err := exactdep.Parse("for i = 1 to 10\n  a[i] = a[i-1]\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	u := exactdep.Lower(prog)
	if n := len(exactdep.PairsNoSelf(u)); n != 1 {
		t.Fatalf("PairsNoSelf = %d, want 1", n)
	}
	if n := len(exactdep.Pairs(u)); n != 2 {
		t.Fatalf("Pairs = %d, want 2 (incl. self)", n)
	}
}

func TestAnnotateSourceUnitAPI(t *testing.T) {
	prog, err := exactdep.Parse("for i = 1 to 10\n  k = 2*i\n  a[k] = 1\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	u := exactdep.Lower(prog)
	rep, err := exactdep.Parallelize(u, exactdep.Options{PruneUnused: true, PruneDistance: true})
	if err != nil {
		t.Fatal(err)
	}
	out := exactdep.AnnotateSourceUnit(prog, rep, u)
	if !strings.Contains(out, "private(k)") {
		t.Fatalf("missing private clause:\n%s", out)
	}
}
