// Package exactdep is an exact data dependence analyzer for loop nests,
// reproducing Maydan, Hennessy & Lam, "Efficient and Exact Data Dependence
// Analysis" (PLDI 1991).
//
// Dependence testing decides whether two array references in a loop nest can
// touch the same memory location in different iterations — the core question
// behind loop parallelization. The problem is equivalent to integer
// programming, but this analyzer decides practically arising cases exactly
// and cheaply with the paper's recipe:
//
//   - a cascade of special-case exact tests — Extended GCD preprocessing,
//     the Single Variable Per Constraint test, the Acyclic test, the Loop
//     Residue test, and a Fourier–Motzkin backup with integer heuristics;
//   - memoization of canonicalized problems, so repeated subscript patterns
//     are tested once;
//   - hierarchical direction/distance vector computation with unused-
//     variable and distance pruning;
//   - symbolic unknowns (loop-invariant scalars read from input) folded into
//     the system with no loss of exactness.
//
// # Quick start
//
//	report, err := exactdep.AnalyzeSource(`
//	for i = 1 to 100
//	  a[i+1] = a[i] + 3
//	end
//	`, exactdep.Options{DirectionVectors: true, PruneUnused: true, PruneDistance: true})
//	if err != nil { ... }
//	for _, r := range report.Results {
//	    fmt.Println(r.Pair, r.Outcome, r.Vectors)
//	}
//
// The input language is a small Fortran-flavoured loop language; see Parse.
// Programs can also be assembled directly from the IR types (Loop, Ref,
// Nest) and analyzed pair by pair with Analyzer.AnalyzePair.
package exactdep

import (
	"context"

	"exactdep/internal/core"
	"exactdep/internal/ddg"
	"exactdep/internal/depvec"
	"exactdep/internal/dtest"
	"exactdep/internal/ir"
	"exactdep/internal/lang"
	"exactdep/internal/opt"
	"exactdep/internal/parallel"
	"exactdep/internal/refs"
	"exactdep/internal/stats"
	"exactdep/internal/transform"
)

// Core IR types, re-exported for building problems programmatically.
type (
	// Expr is an affine integer expression over loop indices and symbols.
	Expr = ir.Expr
	// Loop is one normalized loop level with affine bounds.
	Loop = ir.Loop
	// Ref is a single array reference.
	Ref = ir.Ref
	// RefKind distinguishes reads from writes.
	RefKind = ir.RefKind
	// Site is a reference together with its enclosing loop stack.
	Site = ir.Site
	// Pair is a candidate dependence pair.
	Pair = ir.Pair
	// Nest is a tower-shaped loop nest helper for building pairs.
	Nest = ir.Nest
	// Unit is a lowered program: all reference sites plus symbols.
	Unit = ir.Unit
	// Program is a parsed source unit (see Parse).
	Program = lang.Program
	// For is a parsed loop statement (the transformation entry points
	// FuseLoops and DistributeLoop operate on these).
	For = lang.For
	// Stmt is any parsed statement.
	Stmt = lang.Stmt
)

// Analysis types.
type (
	// Options configures the analyzer (memoization, direction vectors,
	// pruning).
	Options = core.Options
	// Result is the verdict for one pair.
	Result = core.Result
	// Analyzer runs the full pipeline and accumulates statistics.
	Analyzer = core.Analyzer
	// MemoStats is the memo-hierarchy introspection snapshot
	// (Analyzer.MemoStats, depanalyze -memostats).
	MemoStats = core.MemoStats
	// Counters is the statistics block in the shape of the paper's tables.
	Counters = stats.Counters
	// Outcome is a test verdict (Independent / Dependent / Unknown / Maybe).
	Outcome = dtest.Outcome
	// Budget bounds the work any single pair may spend in the expensive end
	// of the cascade (Options.Budget); the zero value is unlimited.
	Budget = dtest.Budget
	// TripReason names the budget limit that degraded a Maybe verdict
	// (Result.Trip).
	TripReason = dtest.TripReason
	// TestKind identifies the cascade test that decided.
	TestKind = dtest.Kind
	// DirectionVector is a dependence direction vector, outermost loop
	// first.
	DirectionVector = depvec.Vector
	// Direction is one component of a direction vector.
	Direction = depvec.Direction
	// Distance is a known-constant dependence distance at one level.
	Distance = depvec.Distance
	// Candidate is an enumerated pair with its constant classification.
	Candidate = refs.Candidate
)

// Verdicts. Unknown is a structural limitation of the tests; Maybe is a
// verdict degraded by a resource budget, deadline, or cancellation
// (conservatively "assume dependent", with Result.Trip naming the limit).
const (
	Independent = dtest.Independent
	Dependent   = dtest.Dependent
	Unknown     = dtest.Unknown
	Maybe       = dtest.Maybe
)

// Budget trip reasons (Result.Trip). The first five are budgetary — a
// caller-chosen Budget limit, the clock, or cancellation, where a re-run
// with a larger budget may finish (TripReason.Budgetary reports this).
// TripFMConstraintCap is structural: the Fourier–Motzkin engine's own cap
// on the constraint blow-up of a single elimination round, tripped only by
// adversarial inputs regardless of budget.
const (
	TripNone            = dtest.TripNone
	TripFMEliminations  = dtest.TripFMEliminations
	TripBranchNodes     = dtest.TripBranchNodes
	TripConstraints     = dtest.TripConstraints
	TripDeadline        = dtest.TripDeadline
	TripCancelled       = dtest.TripCancelled
	TripFMConstraintCap = dtest.TripFMConstraintCap
)

// Reference kinds.
const (
	Read  = ir.Read
	Write = ir.Write
)

// Cascade test kinds.
const (
	TestSVPC           = dtest.KindSVPC
	TestAcyclic        = dtest.KindAcyclic
	TestLoopResidue    = dtest.KindLoopResidue
	TestFourierMotzkin = dtest.KindFourierMotzkin
)

// Direction components.
const (
	DirAny     = depvec.Any
	DirLess    = depvec.Less
	DirEqual   = depvec.Equal
	DirGreater = depvec.Greater
)

// How a verdict was reached.
const (
	ByConstant   = core.ByConstant
	ByGCD        = core.ByGCD
	ByTest       = core.ByTest
	ByCache      = core.ByCache
	ByDirections = core.ByDirections
)

// Expression constructors, re-exported from the IR.
var (
	// NewConst returns the constant expression c.
	NewConst = ir.NewConst
	// NewVar returns the expression 1·name.
	NewVar = ir.NewVar
	// NewTerm returns the expression coeff·name.
	NewTerm = ir.NewTerm
)

// Parse parses a program in the analyzer's loop language:
//
//	program name          # optional
//	read(n)               # loop-invariant symbolic unknown
//	x = 100               # scalar assignments (folded by the prepass)
//	for i = 1 to n        # or: do i = 1, n
//	  a[i][2*i+1] = a[i-1][2*i] + 3
//	end
func Parse(src string) (*Program, error) { return lang.Parse(src) }

// Lower runs the optimizer prepass (constant propagation, forward and
// induction-variable substitution, symbolic unknowns) and extracts every
// array reference site.
func Lower(p *Program) *Unit { return opt.Lower(p) }

// Pairs enumerates the candidate dependence pairs of a lowered unit,
// including each write paired with itself (its across-iteration output
// dependence).
func Pairs(u *Unit) []Candidate { return refs.Pairs(u) }

// PairsNoSelf enumerates distinct-reference pairs only (the paper's
// counting unit in the evaluation).
func PairsNoSelf(u *Unit) []Candidate {
	return refs.PairsOpts(u, refs.Options{NoSelfPairs: true})
}

// AnnotateSourceUnit is AnnotateSource plus private(...) clauses for the
// parallelizable loops' body scalars.
func AnnotateSourceUnit(prog *Program, rep *ParallelReport, u *Unit) string {
	return parallel.AnnotateSourceUnit(prog, rep, u)
}

// NewAnalyzer returns an analyzer with the given options.
func NewAnalyzer(opts Options) *Analyzer { return core.New(opts) }

// Report is the result of analyzing one source unit.
type Report struct {
	Unit    *Unit
	Results []Result
	// Stats is a snapshot of the analyzer counters after the run.
	Stats Counters
}

// Degraded returns the results whose verdict is not definitive: Maybe
// verdicts cut short by a budget, deadline, or cancellation (Result.Trip
// names the limit) and structurally inexact Unknowns. These are the pairs a
// client must treat as dependent without proof — the ones worth re-running
// under a larger budget.
func (r *Report) Degraded() []Result {
	var out []Result
	for _, res := range r.Results {
		if !res.Exact {
			out = append(out, res)
		}
	}
	return out
}

// AnalyzeSource parses, lowers, and analyzes a whole program.
func AnalyzeSource(src string, opts Options) (*Report, error) {
	return AnalyzeSourceContext(context.Background(), src, opts)
}

// AnalyzeSourceContext is AnalyzeSource honoring a context: parse and lower,
// then analyze as AnalyzeUnitContext does.
func AnalyzeSourceContext(ctx context.Context, src string, opts Options) (*Report, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return AnalyzeUnitContext(ctx, opt.Lower(prog), opts)
}

// AnalyzeUnit analyzes an already-lowered unit with a fresh analyzer.
func AnalyzeUnit(u *Unit, opts Options) (*Report, error) {
	return AnalyzeUnitContext(context.Background(), u, opts)
}

// AnalyzeUnitContext analyzes an already-lowered unit with a fresh analyzer,
// honoring the context and every Options knob: Options.Workers sizes the
// concurrent driver (0 serial, negative GOMAXPROCS), Options.Budget bounds
// per-pair work, and the context's deadline/cancellation degrade remaining
// pairs to sound Maybe verdicts instead of aborting (see
// Analyzer.AnalyzeAllContext). The report always covers every candidate
// pair; inspect Report.Degraded or Stats.CancelledPairs for the cut-short
// ones. Invalid options (unknown cascade, negative budget) are rejected up
// front with the shared Options.Validate error.
func AnalyzeUnitContext(ctx context.Context, u *Unit, opts Options) (*Report, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	a := core.New(opts)
	res, err := a.AnalyzeAllContext(ctx, refs.Pairs(u), core.PipelineWorkers(opts.Workers))
	if err != nil {
		return nil, err
	}
	return &Report{Unit: u, Results: res, Stats: a.Stats}, nil
}

// Loop-parallelism reporting (the application the paper's introduction
// motivates): a loop parallelizes iff no dependence is carried by it.
type (
	// ParallelReport classifies every loop of a unit as parallel or serial.
	ParallelReport = parallel.Report
	// LoopInfo is one loop's verdict with its carried dependences.
	LoopInfo = parallel.LoopInfo
)

// Parallelize analyzes a unit with direction vectors and reports which
// loops can run their iterations concurrently. Invalid options are
// rejected with the shared Options.Validate error.
func Parallelize(u *Unit, opts Options) (*ParallelReport, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return parallel.Analyze(u, opts)
}

// ParallelizeResults derives the report from precomputed pair results.
func ParallelizeResults(u *Unit, results []Result) *ParallelReport {
	return parallel.FromResults(u, results)
}

// AnnotateSource re-renders a program with every parallelizable loop marked
// `parfor` — a source-to-source parallelizer's output.
func AnnotateSource(prog *Program, rep *ParallelReport) string {
	return parallel.AnnotateSource(prog, rep)
}

// MergeVectors minimizes a direction-vector set, collapsing complete
// {<,=,>} triples into '*' components.
var MergeVectors = depvec.Merge

// Loop distribution (fission) by dependence-graph π-blocks, and fusion.
var (
	// DistributeLoop splits one flat loop into a sequence of loops, one per
	// π-block, in dependence order.
	DistributeLoop = transform.DistributeLoop
	// DistributeProgram applies DistributeLoop to every top-level flat loop.
	DistributeProgram = transform.DistributeProgram
	// FuseLoops merges two identical-header flat loops when no
	// fusion-preventing dependence exists.
	FuseLoops = transform.FuseLoops
)

// Statement-level dependence graph (flow/anti/output edges, π-blocks).
type (
	// DepGraph is the statement-level data dependence graph.
	DepGraph = ddg.Graph
	// DepEdge is one dependence edge with its oriented direction vector.
	DepEdge = ddg.Edge
	// DepEdgeKind classifies edges as flow, anti, or output.
	DepEdgeKind = ddg.EdgeKind
)

// Dependence edge kinds.
const (
	FlowDep   = ddg.Flow
	AntiDep   = ddg.Anti
	OutputDep = ddg.Output
)

// BuildDepGraph constructs the dependence graph from analysis results.
func BuildDepGraph(u *Unit, results []Result) *DepGraph {
	return ddg.Build(u, results)
}

// DistanceVec is a constant dependence distance per loop level, the input
// to skewing-based transformations.
type DistanceVec = transform.DistanceVector

// FullDistanceVector assembles a complete distance vector from a result's
// per-level constant distances. ok is false unless every common level's
// distance is known (requires Options.PruneDistance).
func FullDistanceVector(r Result) (DistanceVec, bool) {
	n := r.Pair.Common
	if len(r.Distances) != n || n == 0 {
		return nil, false
	}
	out := make(DistanceVec, n)
	seen := 0
	for _, d := range r.Distances {
		if d.Level < 0 || d.Level >= n {
			return nil, false
		}
		out[d.Level] = d.Value
		seen++
	}
	return out, seen == n
}

// Loop skewing and distance-vector transformations.
var (
	// Skew applies d[target] += factor·d[source] to every distance vector.
	Skew = transform.Skew
	// PermuteDistances applies a loop permutation to distance vectors.
	PermuteDistances = transform.PermuteDistances
	// AllLexPositive checks the legality condition for unimodular
	// transformations on distances.
	AllLexPositive = transform.AllLexPositive
	// ParallelLevels reports which levels carry no dependence.
	ParallelLevels = transform.ParallelLevels
	// WavefrontSkew finds a skew factor making a 2-deep nest's inner loop
	// parallel after skew + interchange.
	WavefrontSkew = transform.WavefrontSkew
)

// Loop-transformation legality from direction vectors.
var (
	// NormalizeVector orients a vector lexicographically non-negative.
	NormalizeVector = transform.Normalize
	// InterchangeLegal reports whether a loop permutation preserves all
	// dependences.
	InterchangeLegal = transform.InterchangeLegal
	// ReversalLegal reports whether reversing one loop level is safe.
	ReversalLegal = transform.ReversalLegal
	// ParallelizableLevel reports whether a level carries no dependence.
	ParallelizableLevel = transform.ParallelizableLevel
	// InterchangeToParallelize searches for a permutation exposing an
	// outermost parallel loop.
	InterchangeToParallelize = transform.InterchangeToParallelize
)
