// Command benchcmp diffs two bench-json baselines (make benchcmp →
// BENCH_PR5.json vs BENCH_PR6.json): benchmarks are matched by name and the
// ns/op, bytes/op and allocs/op deltas printed side by side, with benchmarks
// present in only one file called out separately. It reads only the
// "benchmarks" array and the "host" section (warning when the two baselines
// come from hosts with different CPU counts, since workers=N scaling deltas
// are then hardware artifacts), so any exactdep-bench/v1 file works
// regardless of which profile sections it carries.
//
// With -gate NAME the command additionally enforces a regression bound on
// that one benchmark: if NEW's ns/op exceeds OLD's by more than -tolerance
// percent (default 15), or the benchmark is missing from either file, the
// exit status is 1. This is the perf gate behind make benchcmp-gate, which
// re-measures just the gated benchmark (benchjson -only) and compares it
// against the committed baseline. The tolerance is deliberately generous:
// it is meant to catch structural regressions (a lost fast path, restored
// per-pair allocations), not scheduler noise on a busy host.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
)

type benchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// hostInfo mirrors benchjson's host section; files predating it simply
// decode to the zero value (CPU count 0 = unknown).
type hostInfo struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

type doc struct {
	Schema     string        `json:"schema"`
	Host       hostInfo      `json:"host"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

func load(path string) (*doc, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(buf, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

// delta renders a signed percentage change; division-by-zero degenerates to
// a plain marker rather than Inf.
func delta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "0.0%"
		}
		return "new>0"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

func run(oldPath, newPath, gate string, tolerance float64) error {
	oldDoc, err := load(oldPath)
	if err != nil {
		return err
	}
	newDoc, err := load(newPath)
	if err != nil {
		return err
	}

	// Scaling series (workers=N records) are hardware-relative: flag a
	// comparison whose sides ran on hosts with different CPU counts, since
	// every ns/op delta then confounds code change with hardware change. A
	// baseline without a host section (pre-PR8) counts as unknown, not as a
	// mismatch.
	if oldDoc.Host.NumCPU != 0 && newDoc.Host.NumCPU != 0 && oldDoc.Host.NumCPU != newDoc.Host.NumCPU {
		fmt.Fprintf(os.Stderr,
			"benchcmp: warning: baselines come from hosts with different CPU counts (%s: %d, %s: %d) — ns/op deltas confound code and hardware\n",
			oldPath, oldDoc.Host.NumCPU, newPath, newDoc.Host.NumCPU)
	}

	oldByName := make(map[string]benchRecord, len(oldDoc.Benchmarks))
	for _, b := range oldDoc.Benchmarks {
		oldByName[b.Name] = b
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "benchmark\tns/op (%s)\tns/op (%s)\tΔns/op\tallocs/op\tΔallocs\n", oldPath, newPath)
	matched := make(map[string]bool)
	for _, nb := range newDoc.Benchmarks {
		ob, ok := oldByName[nb.Name]
		if !ok {
			continue
		}
		matched[nb.Name] = true
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%s\t%d -> %d\t%s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, delta(ob.NsPerOp, nb.NsPerOp),
			ob.AllocsPerOp, nb.AllocsPerOp,
			delta(float64(ob.AllocsPerOp), float64(nb.AllocsPerOp)))
	}
	if err := w.Flush(); err != nil {
		return err
	}

	var onlyNew, onlyOld []string
	for _, nb := range newDoc.Benchmarks {
		if _, ok := oldByName[nb.Name]; !ok {
			onlyNew = append(onlyNew, nb.Name)
		}
	}
	for _, ob := range oldDoc.Benchmarks {
		if !matched[ob.Name] {
			onlyOld = append(onlyOld, ob.Name)
		}
	}
	if len(onlyNew) > 0 {
		fmt.Printf("\nonly in %s:\n", newPath)
		for _, n := range onlyNew {
			fmt.Printf("  %s\n", n)
		}
	}
	if len(onlyOld) > 0 {
		fmt.Printf("\nonly in %s:\n", oldPath)
		for _, n := range onlyOld {
			fmt.Printf("  %s\n", n)
		}
	}
	if gate != "" {
		ob, ok := oldByName[gate]
		if !ok {
			return fmt.Errorf("gate benchmark %q missing from %s", gate, oldPath)
		}
		var nb *benchRecord
		for i := range newDoc.Benchmarks {
			if newDoc.Benchmarks[i].Name == gate {
				nb = &newDoc.Benchmarks[i]
				break
			}
		}
		if nb == nil {
			return fmt.Errorf("gate benchmark %q missing from %s", gate, newPath)
		}
		if ob.NsPerOp <= 0 {
			return fmt.Errorf("gate benchmark %q has non-positive baseline ns/op", gate)
		}
		regress := (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
		if regress > tolerance {
			return fmt.Errorf("gate %q regressed %.1f%% in ns/op (%.0f -> %.0f), tolerance %.1f%%",
				gate, regress, ob.NsPerOp, nb.NsPerOp, tolerance)
		}
		fmt.Printf("\ngate %q ok: %+.1f%% ns/op within %.1f%% tolerance\n", gate, regress, tolerance)
	}
	return nil
}

func main() {
	gate := flag.String("gate", "", "fail (exit 1) if this benchmark's ns/op regresses beyond -tolerance")
	tolerance := flag.Float64("tolerance", 15, "allowed ns/op regression for -gate, in percent")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchcmp [-gate NAME [-tolerance PCT]] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *gate, *tolerance); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}
