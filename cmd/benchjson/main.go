// Command benchjson emits a machine-readable benchmark baseline (make
// bench-json → BENCH_PR10.json): ns/op, bytes/op and allocs/op for the key
// encoder, the lock-free sharded lookup, the memo-hot AnalyzeAll pass, the
// cold very-large-corpus AnalyzeAll pass at several worker counts, the
// incremental corpus driver (cold store fill vs a 1%-dirty warm re-run over
// the fingerprint → verdict store), the pipelined corpus path (cold/warm
// from both in-memory and Dir sources at workers 1/2/4/8, with a per-stage
// timing profile), the budgeted FM-hard degradation pass, and the
// direction-vector refinement strategies (clone-per-node reference vs the
// clone-free trail walk, cold and memoized), and the depserve request
// models (fresh driver per request vs one persistent warm analyzer with a
// per-request latency profile), plus per-program memo hit
// rates over the PERFECT-style suite, the deterministic budget-trip
// profile, and the refinement/FM counter profile. Every file embeds host
// metadata (GOMAXPROCS, CPU count, GOOS/GOARCH, go version) so scaling
// numbers carry their hardware context — cmd/benchcmp warns when two
// baselines come from hosts with different CPU counts. Future PRs diff
// their own run against the committed baseline (cmd/benchcmp, make
// benchcmp) to keep a perf trajectory; the -only flag restricts a run to
// benchmarks whose name contains the given substring (skipping the profile
// sections), which is how the perf gate (make benchcmp-gate) re-measures
// just its gated benchmarks.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"exactdep/internal/core"
	corpuspkg "exactdep/internal/corpus"
	"exactdep/internal/depvec"
	"exactdep/internal/dtest"
	"exactdep/internal/ir"
	"exactdep/internal/memo"
	"exactdep/internal/refs"
	"exactdep/internal/system"
	"exactdep/internal/workload"
)

// largeCorpusNests sizes the very-large-corpus records (matching
// BenchmarkAnalyzeAllLargeCorpus).
const largeCorpusNests = 4096

type benchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// hostInfo is the hardware/runtime context of one baseline: scaling
// records (workers=N series) are meaningless without the CPU count, so the
// "this was a 1-vCPU host" caveat travels with the numbers.
type hostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// stageNs is one corpus run's per-stage pipeline timing (see
// corpus.StageTimes for the semantics; front-end stages are summed across
// workers).
type stageNs struct {
	LoadNs        int64 `json:"load_ns"`
	FingerprintNs int64 `json:"fingerprint_ns"`
	ProbeNs       int64 `json:"probe_ns"`
	SolveNs       int64 `json:"solve_ns"`
	EmitNs        int64 `json:"emit_ns"`
	WallNs        int64 `json:"wall_ns"`
}

// pipelineProfile is the front-end-vs-solver breakdown of one cold and one
// warm Dir-backed corpus run with stage timing enabled.
type pipelineProfile struct {
	Workers int     `json:"workers"`
	Source  string  `json:"source"`
	Cold    stageNs `json:"cold"`
	Warm    stageNs `json:"warm"`
}

// servePathLatency is the per-request latency distribution of one serve
// model over a burst of suite requests.
type servePathLatency struct {
	Requests int     `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// serveBatchProfile contrasts the two depserve request models over the
// same burst: a fresh storeless driver per request (the pre-warm-tier
// model) against one persistent warm analyzer whose memo tables survive
// between requests (the executor model). The gap is the cross-request
// memo dividend.
type serveBatchProfile struct {
	Workers int              `json:"workers"`
	Units   int              `json:"units"`
	PerJob  servePathLatency `json:"perjob"`
	Warm    servePathLatency `json:"warm"`
}

type doc struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Host       hostInfo      `json:"host"`
	Benchmarks []benchRecord `json:"benchmarks"`
	// Pipeline is the per-stage timing split of the pipelined corpus driver
	// (informational: wall times, not gated).
	Pipeline pipelineProfile `json:"pipeline"`
	// ServeBatch is the per-request latency split of the depserve request
	// models (informational: wall times, not gated — the gated twin is the
	// serve_batch_warm benchmark record).
	ServeBatch serveBatchProfile      `json:"serve_batch"`
	MemoSuite  []workload.MemoSummary `json:"memo_suite"`
	// Budget is the degradation profile of the FM-hard adversarial suite
	// under a starvation count budget — the budget layer's effectiveness
	// baseline (trip counts are deterministic, so diffs are meaningful).
	Budget budgetProfile `json:"budget"`
	// Refinement is the direction-vector refinement counter profile of one
	// production-configuration pass over the suite: memo traffic, trail
	// accounting, and FM redundancy elimination (all deterministic).
	Refinement refinementProfile `json:"refinement"`
}

// refinementProfile snapshots the PR 5 counters over the suite.
type refinementProfile struct {
	DirLookups    int `json:"dir_lookups"`
	DirHits       int `json:"dir_hits"`
	UniqueDir     int `json:"unique_dir"`
	TrailPushes   int `json:"trail_pushes"`
	TrailPops     int `json:"trail_pops"`
	TrailMaxDepth int `json:"trail_max_depth"`
	FMDeduped     int `json:"fm_deduped"`
	FMTightened   int `json:"fm_tightened"`
}

// budgetProfile summarizes one budgeted pass over the FM-hard suite.
type budgetProfile struct {
	MaxFMEliminations int            `json:"max_fm_eliminations"`
	Pairs             int            `json:"pairs"`
	Exact             int            `json:"exact"`
	Maybe             int            `json:"maybe"`
	Trips             map[string]int `json:"trips"`
}

func record(name string, fn func(b *testing.B)) benchRecord {
	r := testing.Benchmark(fn)
	return benchRecord{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// mapMemo is a direction-keyed memo for the refinement benchmarks — valid
// because a single canonical system flows through each benchmark loop.
type mapMemo map[string]dtest.Result

func (m mapMemo) Lookup(dirs []byte) (dtest.Result, bool) {
	r, ok := m[string(dirs)]
	return r, ok
}

func (m mapMemo) Store(dirs []byte, r dtest.Result) {
	r.Witness = nil
	m[string(dirs)] = r
}

// deepNest builds the coupled FM-hard nest the refinement benchmarks walk:
// the write couples adjacent levels (a[2i+j+1] vs a[i+2j] per dimension), so
// the cheap cascade stages fail at many refinement nodes and the tree stays
// deep under every strategy.
func deepNest(depth int) (*system.TSystem, error) {
	loops := make([]ir.Loop, depth)
	idx := make([]string, depth)
	for i := range loops {
		idx[i] = fmt.Sprintf("i%d", i+1)
		loops[i] = ir.Loop{Index: idx[i], Lower: ir.NewConst(0), Upper: ir.NewConst(9)}
	}
	var subA, subB []ir.Expr
	for d := 0; d+1 < depth; d++ {
		subA = append(subA, ir.NewTerm(idx[d], 2).Add(ir.NewVar(idx[d+1])).AddConst(1))
		subB = append(subB, ir.NewVar(idx[d]).Add(ir.NewTerm(idx[d+1], 2)))
	}
	subA = append(subA, ir.NewVar(idx[depth-1]))
	subB = append(subB, ir.NewVar(idx[depth-1]))
	nest := &ir.Nest{Label: "fmhard", Loops: loops}
	a := ir.Ref{Array: "a", Subscripts: subA, Kind: ir.Write, Depth: depth}
	b := ir.Ref{Array: "a", Subscripts: subB, Kind: ir.Read, Depth: depth}
	nest.Refs = []ir.Ref{a, b}
	p, err := system.Build(nest.Pair(a, b))
	if err != nil {
		return nil, err
	}
	res, ts, err := system.Preprocess(p)
	if err != nil {
		return nil, err
	}
	if res == system.GCDIndependent {
		return nil, fmt.Errorf("deepNest(%d): unexpectedly GCD-independent", depth)
	}
	return ts, nil
}

// writeLargeCorpusDir renders the LargeCorpus as one .loop file per program
// under a fresh temp dir — the disk-backed twin of LargeCorpusUnits for the
// pipeline records, where the front end pays read + parse per run.
func writeLargeCorpusDir(nests int) (string, error) {
	dir, err := os.MkdirTemp("", "exactdep-bench-corpus-")
	if err != nil {
		return "", err
	}
	for _, s := range workload.LargeCorpus(nests) {
		path := filepath.Join(dir, s.Name+".loop")
		if err := os.WriteFile(path, []byte(workload.Source(s, false)), 0o644); err != nil {
			os.RemoveAll(dir)
			return "", err
		}
	}
	return dir, nil
}

// suiteProblems builds the unique canonical problems of the whole suite —
// the encoder benchmark's input population.
func suiteProblems() ([]*system.Problem, error) {
	var probs []*system.Problem
	for _, s := range workload.Programs() {
		cands, err := workload.Candidates(s, false)
		if err != nil {
			return nil, err
		}
		for _, c := range cands {
			if c.Class != refs.NeedsTest {
				continue
			}
			p, err := system.Build(c.Pair)
			if err != nil {
				return nil, err
			}
			probs = append(probs, p)
		}
	}
	return probs, nil
}

func suiteCandidates() ([]refs.Candidate, error) {
	var all []refs.Candidate
	for _, s := range workload.Programs() {
		cs, err := workload.Candidates(s, false)
		if err != nil {
			return nil, err
		}
		all = append(all, cs...)
	}
	return all, nil
}

func run(out, only string) error {
	probs, err := suiteProblems()
	if err != nil {
		return err
	}
	cands, err := suiteCandidates()
	if err != nil {
		return err
	}

	d := doc{
		Schema:     "exactdep-bench/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Host: hostInfo{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
		},
	}

	// match/add implement the -only filter: a benchmark runs when its name
	// contains the substring (everything runs when the filter is empty).
	match := func(name string) bool {
		return only == "" || strings.Contains(name, only)
	}
	add := func(name string, fn func(b *testing.B)) {
		if match(name) {
			d.Benchmarks = append(d.Benchmarks, record(name, fn))
		}
	}

	add("memo_encode", func(b *testing.B) {
		var e memo.Encoder
		for _, p := range probs {
			e.EncodeFull(p, true)
			e.EncodeEq(p, true)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := probs[i%len(probs)]
			e.EncodeFull(p, true)
			e.EncodeEq(p, true)
		}
	})

	add("sharded_lookup_parallel", func(b *testing.B) {
		tbl := memo.NewShardedTable[int](0)
		var e memo.Encoder
		keys := make([]memo.Key, 0, len(probs))
		for _, p := range probs {
			keys = append(keys, e.EncodeFull(p, true).Clone())
		}
		for i, k := range keys {
			tbl.Insert(k, i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, ok := tbl.Lookup(keys[i%len(keys)]); !ok {
					b.Fatal("lost key")
				}
				i++
			}
		})
	})

	for _, w := range []int{1, 4} {
		w := w
		add(fmt.Sprintf("analyze_all_memo_hot_workers_%d", w), func(b *testing.B) {
			a := core.New(core.Options{Memoize: true, ImprovedMemo: true})
			if _, err := a.AnalyzeAll(cands, w); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.AnalyzeAll(cands, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Cold analysis of a very large synthetic corpus (thousands of nests):
	// the contended path — misses, batched sharded-table inserts, and
	// singleflight dedup — at several worker counts. The corpus is generated
	// only when the filter selects at least one of these records.
	corpusWorkers := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		corpusWorkers = append(corpusWorkers, n)
	}
	corpusWanted := false
	for _, w := range corpusWorkers {
		if match(fmt.Sprintf("analyze_all_large_corpus_workers_%d", w)) {
			corpusWanted = true
		}
	}
	if corpusWanted {
		corpus, err := workload.LargeCorpusCandidates(largeCorpusNests)
		if err != nil {
			return err
		}
		for _, w := range corpusWorkers {
			w := w
			add(fmt.Sprintf("analyze_all_large_corpus_workers_%d", w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					a := core.New(core.Options{Memoize: true, ImprovedMemo: true})
					if _, err := a.AnalyzeAll(corpus, w); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}

	// Incremental corpus driver over the same very large corpus, split into
	// per-nest units: cold (empty store — fingerprint, solve, fill) versus a
	// 1%-dirty warm re-run where 41 mutated nests are re-solved and the rest
	// served from the store. Mirrors BenchmarkCorpusIncremental; the warm
	// ns/op is the corpus layer's headline number and is gated in
	// benchcmp-gate.
	incrWanted := false
	for _, w := range []int{1, 4} {
		if match(fmt.Sprintf("corpus_incremental_cold_workers_%d", w)) ||
			match(fmt.Sprintf("corpus_incremental_warm_1pct_workers_%d", w)) {
			incrWanted = true
		}
	}
	if incrWanted {
		incrOpts := core.Options{Memoize: true, ImprovedMemo: true}
		units, err := workload.LargeCorpusUnits(largeCorpusNests)
		if err != nil {
			return err
		}
		dirtyIdx := make([]int, 41)
		for i := range dirtyIdx {
			dirtyIdx[i] = (i*97 + 5) % len(units)
		}
		seed := corpuspkg.NewDriver(incrOpts, 1)
		if err := seed.SetStore(corpuspkg.NewStore(incrOpts)); err != nil {
			return err
		}
		if err := seed.Run(context.Background(), units, nil); err != nil {
			return err
		}
		filled := seed.Store()
		var deltaSeq int64
		for _, w := range []int{1, 4} {
			w := w
			add(fmt.Sprintf("corpus_incremental_cold_workers_%d", w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					dr := corpuspkg.NewDriver(incrOpts, w)
					if err := dr.SetStore(corpuspkg.NewStore(incrOpts)); err != nil {
						b.Fatal(err)
					}
					if err := dr.Run(context.Background(), units, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
			add(fmt.Sprintf("corpus_incremental_warm_1pct_workers_%d", w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					deltaSeq++
					dirty := workload.MutateNests(units, dirtyIdx, deltaSeq)
					dr := corpuspkg.NewDriver(incrOpts, w)
					if err := dr.SetStore(filled); err != nil {
						b.Fatal(err)
					}
					if err := dr.Run(context.Background(), dirty, nil); err != nil {
						b.Fatal(err)
					}
					if dr.Stats.UnitsSolved != len(dirtyIdx) {
						b.Fatalf("warm run re-solved %d units, want %d", dr.Stats.UnitsSolved, len(dirtyIdx))
					}
				}
			})
		}
	}

	// Pipelined corpus path: cold (empty store — load, fingerprint, solve,
	// fill) and warm (filled store — the front end is the whole run) at
	// workers 1/2/4/8, from an in-memory source and from a Dir source whose
	// 32 files are re-read and re-parsed every run. The warm Dir series is
	// the headline: serial parse+fingerprint used to dominate the
	// incremental win, and the parallel front end is what moves it. On a
	// 1-CPU host (see the host section) the series charts coordination
	// overhead, not speedup.
	pipeWorkers := []int{1, 2, 4, 8}
	pipeWanted := false
	for _, src := range []string{"mem", "dir"} {
		for _, mode := range []string{"cold", "warm"} {
			for _, w := range pipeWorkers {
				if match(fmt.Sprintf("corpus_pipeline_%s_%s_workers_%d", mode, src, w)) {
					pipeWanted = true
				}
			}
		}
	}
	if pipeWanted {
		pipeOpts := core.Options{Memoize: true, ImprovedMemo: true}
		memUnits, err := workload.LargeCorpusUnits(largeCorpusNests)
		if err != nil {
			return err
		}
		dirRoot, err := writeLargeCorpusDir(largeCorpusNests)
		if err != nil {
			return err
		}
		defer os.RemoveAll(dirRoot)
		for _, sc := range []struct {
			name string
			src  corpuspkg.Source
		}{
			{"mem", memUnits},
			{"dir", corpuspkg.Dir(dirRoot)},
		} {
			sc := sc
			seed := corpuspkg.NewDriver(pipeOpts, 1)
			if err := seed.SetStore(corpuspkg.NewStore(pipeOpts)); err != nil {
				return err
			}
			if err := seed.Run(context.Background(), sc.src, nil); err != nil {
				return err
			}
			filled := seed.Store()
			for _, w := range pipeWorkers {
				w := w
				add(fmt.Sprintf("corpus_pipeline_cold_%s_workers_%d", sc.name, w), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						dr := corpuspkg.NewDriver(pipeOpts, w)
						if err := dr.SetStore(corpuspkg.NewStore(pipeOpts)); err != nil {
							b.Fatal(err)
						}
						if err := dr.Run(context.Background(), sc.src, nil); err != nil {
							b.Fatal(err)
						}
					}
				})
				add(fmt.Sprintf("corpus_pipeline_warm_%s_workers_%d", sc.name, w), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						dr := corpuspkg.NewDriver(pipeOpts, w)
						if err := dr.SetStore(filled); err != nil {
							b.Fatal(err)
						}
						if err := dr.Run(context.Background(), sc.src, nil); err != nil {
							b.Fatal(err)
						}
						if dr.Stats.UnitsSolved != 0 {
							b.Fatalf("warm run re-solved %d units", dr.Stats.UnitsSolved)
						}
					}
				})
			}
			// Per-stage timing profile from the Dir source (the one whose
			// front end pays real I/O) at GOMAXPROCS workers: one cold and
			// one warm run with stage accounting on.
			if only == "" && sc.name == "dir" {
				pw := runtime.GOMAXPROCS(0)
				timeRun := func(store *corpuspkg.Store) (stageNs, error) {
					dr := corpuspkg.NewDriver(pipeOpts, pw)
					dr.TimeStages = true
					if err := dr.SetStore(store); err != nil {
						return stageNs{}, err
					}
					if err := dr.Run(context.Background(), sc.src, nil); err != nil {
						return stageNs{}, err
					}
					st := dr.Stats.Stage
					return stageNs{
						LoadNs:        st.Load.Nanoseconds(),
						FingerprintNs: st.Fingerprint.Nanoseconds(),
						ProbeNs:       st.Probe.Nanoseconds(),
						SolveNs:       st.Solve.Nanoseconds(),
						EmitNs:        st.Emit.Nanoseconds(),
						WallNs:        st.Wall.Nanoseconds(),
					}, nil
				}
				cold, err := timeRun(corpuspkg.NewStore(pipeOpts))
				if err != nil {
					return err
				}
				warm, err := timeRun(filled)
				if err != nil {
					return err
				}
				d.Pipeline = pipelineProfile{Workers: pw, Source: "dir", Cold: cold, Warm: warm}
			}
		}
	}

	// Serve request models over a burst of same-class requests, one suite
	// program per request (the depserve executor's unit of work). perjob
	// rebuilds a fresh storeless driver per request — the pre-warm-tier
	// per-request model. warm replays the same burst on one persistent
	// driver whose memo tables survive between requests, with per-request
	// counter resets mirroring the executor. One op = one full burst, so
	// the two series divide cleanly; the warm ns/op and allocs/op are
	// gated in benchcmp-gate.
	serveWanted := false
	for _, w := range []int{1, 4} {
		if match(fmt.Sprintf("serve_batch_perjob_workers_%d", w)) ||
			match(fmt.Sprintf("serve_batch_warm_workers_%d", w)) {
			serveWanted = true
		}
	}
	if serveWanted || only == "" {
		servOpts := core.Options{DirectionVectors: true, PruneUnused: true,
			PruneDistance: true, Memoize: true, ImprovedMemo: true}
		suite, err := workload.SuiteSource(false)
		if err != nil {
			return err
		}
		for _, w := range []int{1, 4} {
			w := w
			add(fmt.Sprintf("serve_batch_perjob_workers_%d", w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for u := range suite {
						dr := corpuspkg.NewDriver(servOpts, w)
						if _, err := dr.RunAll(context.Background(), suite[u:u+1]); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			add(fmt.Sprintf("serve_batch_warm_workers_%d", w), func(b *testing.B) {
				wa := corpuspkg.NewDriver(servOpts, w)
				if _, err := wa.RunAll(context.Background(), suite); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for u := range suite {
						wa.Analyzer().ResetStats()
						if _, err := wa.RunAll(context.Background(), suite[u:u+1]); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
		// Per-request latency profile of the same two models (serial, so the
		// p50/p99 split is scheduling-free).
		if only == "" {
			measure := func(run func(u int) error) (servePathLatency, error) {
				const passes = 5
				lat := make([]float64, 0, passes*len(suite))
				for p := 0; p < passes; p++ {
					for u := range suite {
						t0 := time.Now()
						if err := run(u); err != nil {
							return servePathLatency{}, err
						}
						lat = append(lat, float64(time.Since(t0).Nanoseconds())/1e6)
					}
				}
				sort.Float64s(lat)
				return servePathLatency{
					Requests: len(lat),
					P50Ms:    lat[len(lat)/2],
					P99Ms:    lat[(len(lat)*99)/100],
				}, nil
			}
			perjob, err := measure(func(u int) error {
				dr := corpuspkg.NewDriver(servOpts, 1)
				_, err := dr.RunAll(context.Background(), suite[u:u+1])
				return err
			})
			if err != nil {
				return err
			}
			wa := corpuspkg.NewDriver(servOpts, 1)
			if _, err := wa.RunAll(context.Background(), suite); err != nil {
				return err
			}
			warm, err := measure(func(u int) error {
				wa.Analyzer().ResetStats()
				_, err := wa.RunAll(context.Background(), suite[u:u+1])
				return err
			})
			if err != nil {
				return err
			}
			d.ServeBatch = serveBatchProfile{Workers: 1, Units: len(suite), PerJob: perjob, Warm: warm}
		}
	}

	// Budgeted pass over the FM-hard adversarial suite: how fast the cascade
	// degrades under a starvation budget, and the (deterministic) trip
	// profile it produces.
	hard, err := workload.FMHardSuiteCandidates()
	if err != nil {
		return err
	}
	budOpts := core.Options{Memoize: true, ImprovedMemo: true,
		Budget: dtest.Budget{MaxFMEliminations: 2}}
	add("analyze_fmhard_budgeted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a := core.New(budOpts)
			if _, err := a.AnalyzeAll(hard, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	if only == "" {
		a := core.New(budOpts)
		rs, err := a.AnalyzeAll(hard, 1)
		if err != nil {
			return err
		}
		p := budgetProfile{
			MaxFMEliminations: budOpts.Budget.MaxFMEliminations,
			Pairs:             len(rs),
			Trips:             map[string]int{},
		}
		for _, r := range rs {
			if r.Exact {
				p.Exact++
			}
		}
		p.Maybe = a.Stats.Maybe
		for t := dtest.TripReason(1); int(t) < dtest.NumTripReasons; t++ {
			if n := a.Stats.TripCount(t); n > 0 {
				p.Trips[t.String()] = n
			}
		}
		d.Budget = p
	}

	// Refinement strategy comparison over a coupled deep nest that reaches
	// Fourier–Motzkin at many tree nodes: the clone-per-node reference walk
	// against the clone-free trail walk, cold and over a warm direction memo.
	for _, depth := range []int{3, 4} {
		ts, err := deepNest(depth)
		if err != nil {
			return err
		}
		opts := depvec.Options{PruneUnused: true}
		add(fmt.Sprintf("refinement_deep_reference_depth_%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				depvec.ComputeReference(ts.Clone(), opts, nil)
			}
		})
		add(fmt.Sprintf("refinement_deep_trail_depth_%d", depth), func(b *testing.B) {
			o := opts
			o.Refiner = depvec.NewRefiner()
			o.Pipeline = dtest.DefaultConfig().NewPipeline()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				depvec.ComputeObserved(ts, o, nil)
			}
		})
		add(fmt.Sprintf("refinement_deep_trail_memo_depth_%d", depth), func(b *testing.B) {
			o := opts
			o.Refiner = depvec.NewRefiner()
			o.Pipeline = dtest.DefaultConfig().NewPipeline()
			o.Memo = mapMemo{}
			depvec.ComputeObserved(ts, o, nil) // warm the memo
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				depvec.ComputeObserved(ts, o, nil)
			}
		})
	}

	// Refinement counter profile: one serial production-configuration pass.
	if only == "" {
		a := core.New(core.Options{Memoize: true, ImprovedMemo: true, DirectionVectors: true,
			PruneUnused: true, PruneDistance: true})
		if _, err := a.AnalyzeAll(cands, 1); err != nil {
			return err
		}
		d.Refinement = refinementProfile{
			DirLookups:    a.Stats.DirLookups,
			DirHits:       a.Stats.DirHits,
			UniqueDir:     a.Stats.UniqueDir,
			TrailPushes:   a.Stats.TrailPushes,
			TrailPops:     a.Stats.TrailPops,
			TrailMaxDepth: a.Stats.TrailMaxDepth,
			FMDeduped:     a.Stats.FMDeduped,
			FMTightened:   a.Stats.FMTightened,
		}
	}

	if only == "" {
		d.MemoSuite, err = workload.SuiteMemoSummaries(workload.RunnerOptions{
			Core: core.Options{Memoize: true, ImprovedMemo: true, DirectionVectors: true,
				PruneUnused: true, PruneDistance: true},
		})
		if err != nil {
			return err
		}
	}

	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(out, buf, 0o644)
}

func main() {
	out := flag.String("out", "BENCH_PR10.json", "output path ('-' for stdout)")
	only := flag.String("only", "", "run only benchmarks whose name contains this substring (skips profile sections)")
	flag.Parse()
	if err := run(*out, *only); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
