// Command benchjson emits a machine-readable benchmark baseline (make
// bench-json → BENCH_PR4.json): ns/op, bytes/op and allocs/op for the key
// encoder, the lock-free sharded lookup, the memo-hot AnalyzeAll pass, and
// the budgeted FM-hard degradation pass, plus per-program memo hit rates
// over the PERFECT-style suite and the deterministic budget-trip profile.
// Future PRs diff their own run against the committed baseline to keep a
// perf trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"exactdep/internal/core"
	"exactdep/internal/dtest"
	"exactdep/internal/memo"
	"exactdep/internal/refs"
	"exactdep/internal/system"
	"exactdep/internal/workload"
)

type benchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type doc struct {
	Schema     string                 `json:"schema"`
	GoVersion  string                 `json:"go_version"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Benchmarks []benchRecord          `json:"benchmarks"`
	MemoSuite  []workload.MemoSummary `json:"memo_suite"`
	// Budget is the degradation profile of the FM-hard adversarial suite
	// under a starvation count budget — the budget layer's effectiveness
	// baseline (trip counts are deterministic, so diffs are meaningful).
	Budget budgetProfile `json:"budget"`
}

// budgetProfile summarizes one budgeted pass over the FM-hard suite.
type budgetProfile struct {
	MaxFMEliminations int            `json:"max_fm_eliminations"`
	Pairs             int            `json:"pairs"`
	Exact             int            `json:"exact"`
	Maybe             int            `json:"maybe"`
	Trips             map[string]int `json:"trips"`
}

func record(name string, fn func(b *testing.B)) benchRecord {
	r := testing.Benchmark(fn)
	return benchRecord{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// suiteProblems builds the unique canonical problems of the whole suite —
// the encoder benchmark's input population.
func suiteProblems() ([]*system.Problem, error) {
	var probs []*system.Problem
	for _, s := range workload.Programs() {
		cands, err := workload.Candidates(s, false)
		if err != nil {
			return nil, err
		}
		for _, c := range cands {
			if c.Class != refs.NeedsTest {
				continue
			}
			p, err := system.Build(c.Pair)
			if err != nil {
				return nil, err
			}
			probs = append(probs, p)
		}
	}
	return probs, nil
}

func suiteCandidates() ([]refs.Candidate, error) {
	var all []refs.Candidate
	for _, s := range workload.Programs() {
		cs, err := workload.Candidates(s, false)
		if err != nil {
			return nil, err
		}
		all = append(all, cs...)
	}
	return all, nil
}

func run(out string) error {
	probs, err := suiteProblems()
	if err != nil {
		return err
	}
	cands, err := suiteCandidates()
	if err != nil {
		return err
	}

	d := doc{
		Schema:     "exactdep-bench/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	d.Benchmarks = append(d.Benchmarks, record("memo_encode", func(b *testing.B) {
		var e memo.Encoder
		for _, p := range probs {
			e.EncodeFull(p, true)
			e.EncodeEq(p, true)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := probs[i%len(probs)]
			e.EncodeFull(p, true)
			e.EncodeEq(p, true)
		}
	}))

	d.Benchmarks = append(d.Benchmarks, record("sharded_lookup_parallel", func(b *testing.B) {
		tbl := memo.NewShardedTable[int](0)
		var e memo.Encoder
		keys := make([]memo.Key, 0, len(probs))
		for _, p := range probs {
			keys = append(keys, e.EncodeFull(p, true).Clone())
		}
		for i, k := range keys {
			tbl.Insert(k, i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, ok := tbl.Lookup(keys[i%len(keys)]); !ok {
					b.Fatal("lost key")
				}
				i++
			}
		})
	}))

	for _, w := range []int{1, 4} {
		w := w
		d.Benchmarks = append(d.Benchmarks, record(fmt.Sprintf("analyze_all_memo_hot_workers_%d", w), func(b *testing.B) {
			a := core.New(core.Options{Memoize: true, ImprovedMemo: true})
			if _, err := a.AnalyzeAll(cands, w); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.AnalyzeAll(cands, w); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// Budgeted pass over the FM-hard adversarial suite: how fast the cascade
	// degrades under a starvation budget, and the (deterministic) trip
	// profile it produces.
	hard, err := workload.FMHardSuiteCandidates()
	if err != nil {
		return err
	}
	budOpts := core.Options{Memoize: true, ImprovedMemo: true,
		Budget: dtest.Budget{MaxFMEliminations: 2}}
	d.Benchmarks = append(d.Benchmarks, record("analyze_fmhard_budgeted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a := core.New(budOpts)
			if _, err := a.AnalyzeAll(hard, 1); err != nil {
				b.Fatal(err)
			}
		}
	}))
	{
		a := core.New(budOpts)
		rs, err := a.AnalyzeAll(hard, 1)
		if err != nil {
			return err
		}
		p := budgetProfile{
			MaxFMEliminations: budOpts.Budget.MaxFMEliminations,
			Pairs:             len(rs),
			Trips:             map[string]int{},
		}
		for _, r := range rs {
			if r.Exact {
				p.Exact++
			}
		}
		p.Maybe = a.Stats.Maybe
		for t := dtest.TripReason(1); int(t) < dtest.NumTripReasons; t++ {
			if n := a.Stats.TripCount(t); n > 0 {
				p.Trips[t.String()] = n
			}
		}
		d.Budget = p
	}

	d.MemoSuite, err = workload.SuiteMemoSummaries(workload.RunnerOptions{
		Core: core.Options{Memoize: true, ImprovedMemo: true, DirectionVectors: true,
			PruneUnused: true, PruneDistance: true},
	})
	if err != nil {
		return err
	}

	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(out, buf, 0o644)
}

func main() {
	out := flag.String("out", "BENCH_PR4.json", "output path ('-' for stdout)")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
