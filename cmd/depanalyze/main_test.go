package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"exactdep/internal/wire"
)

// writeLoop drops a source file into a temp dir and returns its path.
func writeLoop(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.loop")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const simpleSrc = `
for i = 1 to 100
  a[i+1] = a[i] + 3
end
`

// fmHardSrc lands in Fourier–Motzkin: chain-coupled bounds defeat every
// cheap test, so tiny budgets visibly trip.
const fmHardSrc = `
for i1 = 1 to 20
  for i2 = 2*i1 to 2*i1+3
    for i3 = 2*i2 to 2*i2+3
      for i4 = 2*i3 to 2*i3+3
        h[i4+1] = h[i4]
      end
    end
  end
end
`

// verdictPrefixes keeps each per-pair line's "A vs B: outcome" prefix —
// the part that must agree across worker counts and cascades (the deciding
// test in the brackets legitimately differs under fm-only).
func verdictPrefixes(out string) string {
	var b strings.Builder
	for _, line := range strings.Split(out, "\n") {
		if line == "" {
			break
		}
		if i := strings.Index(line, "  ["); i >= 0 {
			line = line[:i]
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestFlagMatrix: -workers, -cascade, and -memostats must compose — every
// combination runs cleanly and the verdict lines agree across all of them.
func TestFlagMatrix(t *testing.T) {
	path := writeLoop(t, simpleSrc)
	var wantVerdicts string
	for _, workers := range []string{"1", "4"} {
		for _, cascade := range []string{"full", "fm-only"} {
			for _, memostats := range []bool{false, true} {
				args := []string{"-workers=" + workers, "-cascade=" + cascade}
				if memostats {
					args = append(args, "-memostats")
				}
				args = append(args, path)
				var out, errb bytes.Buffer
				if code := run(args, &out, &errb); code != 0 {
					t.Fatalf("%v: exit %d, stderr %q", args, code, errb.String())
				}
				verdicts := verdictPrefixes(out.String())
				if wantVerdicts == "" {
					wantVerdicts = verdicts
				} else if verdicts != wantVerdicts {
					t.Errorf("%v: verdicts differ from first combination:\n%s\nvs\n%s",
						args, verdicts, wantVerdicts)
				}
				if memostats && !strings.Contains(out.String(), "memo hierarchy:") {
					t.Errorf("%v: -memostats printed no memo hierarchy", args)
				}
				if memostats && !strings.Contains(out.String(), "degraded:") {
					t.Errorf("%v: -memostats printed no degraded-entries line", args)
				}
			}
		}
	}
}

// TestExitCodes pins the contract: 2 for usage errors (bad flag, bad value,
// unknown cascade, negative budget, missing arg), 1 for runtime errors
// (unreadable file, source syntax error), 0 for success.
func TestExitCodes(t *testing.T) {
	good := writeLoop(t, simpleSrc)
	bad := writeLoop(t, "for i = 1 to\n")
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"ok", []string{good}, 0},
		{"no args", []string{}, 2},
		{"unknown flag", []string{"-definitely-not-a-flag", good}, 2},
		{"malformed value", []string{"-workers=banana", good}, 2},
		{"unknown cascade", []string{"-cascade=bogus", good}, 2},
		{"negative budget", []string{"-budget-fm=-1", good}, 2},
		{"missing file", []string{filepath.Join(t.TempDir(), "nope.loop")}, 1},
		{"syntax error", []string{bad}, 1},
		{"cpuprofile missing value", []string{"-cpuprofile"}, 2},
		{"memprofile missing value", []string{"-memprofile"}, 2},
		{"cpuprofile bad path", []string{"-cpuprofile", filepath.Join(t.TempDir(), "no", "dir", "cpu.prof"), good}, 1},
		{"memprofile bad path", []string{"-memprofile", filepath.Join(t.TempDir(), "no", "dir", "mem.prof"), good}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(c.args, &out, &errb); code != c.want {
				t.Fatalf("exit %d, want %d (stderr %q)", code, c.want, errb.String())
			}
		})
	}
}

// TestBudgetFlagDegrades: a starvation elimination budget on an FM-hard nest
// renders 'maybe (assumed: ... budget)' verdicts and the -stats degradation
// line, still exiting 0 — degradation is graceful, not an error.
func TestBudgetFlagDegrades(t *testing.T) {
	path := writeLoop(t, fmHardSrc)
	var out, errb bytes.Buffer
	code := run([]string{"-budget-fm=2", "-stats", "-workers=1", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "maybe (assumed: fm-eliminations budget)") {
		t.Errorf("no degraded verdict rendered:\n%s", s)
	}
	if !strings.Contains(s, "budget trips") {
		t.Errorf("-stats printed no budget-trip line:\n%s", s)
	}
}

// TestBudgetFlagGenerous: the same nest under a generous budget stays exact
// and reports no degradation.
func TestBudgetFlagGenerous(t *testing.T) {
	path := writeLoop(t, fmHardSrc)
	var out, errb bytes.Buffer
	code := run([]string{"-budget-fm=1000000", "-stats", "-workers=1", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	s := out.String()
	if strings.Contains(s, "(assumed") || strings.Contains(s, "budget trips") ||
		!strings.Contains(s, "0 maybe") {
		t.Errorf("generous budget degraded:\n%s", s)
	}
}

// corpusDir lays out a two-file corpus tree and returns its root.
func corpusDir(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(rel, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(root, rel), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.loop", simpleSrc)
	write(filepath.Join("sub", "b.loop"), "for i = 1 to 50\n  b[2*i] = b[2*i+1] + 1\nend\n")
	return root
}

// TestCorpusMode: a directory argument analyzes every *.loop as one corpus,
// a unit header per file in sorted order; multiple file args do the same.
func TestCorpusMode(t *testing.T) {
	root := corpusDir(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-memo", "-stats", root}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "== a.loop ==") || !strings.Contains(s, "== sub/b.loop ==") {
		t.Fatalf("missing unit headers:\n%s", s)
	}
	if strings.Index(s, "== a.loop ==") > strings.Index(s, "== sub/b.loop ==") {
		t.Fatalf("units out of sorted order:\n%s", s)
	}
	if !strings.Contains(s, "corpus: 2 units (0 reused, 2 solved)") {
		t.Fatalf("missing corpus stats:\n%s", s)
	}

	out.Reset()
	files := []string{filepath.Join(root, "sub", "b.loop"), filepath.Join(root, "a.loop")}
	if code := run(files, &out, &errb); code != 0 {
		t.Fatalf("multi-file exit %d, stderr %q", code, errb.String())
	}
	// Explicit file lists keep the given order.
	s = out.String()
	if strings.Index(s, "b.loop") > strings.Index(s, "a.loop ==") {
		t.Fatalf("multi-file order not preserved:\n%s", s)
	}
}

// TestProfileFlags: -cpuprofile and -memprofile write non-empty pprof files
// in both single-file and corpus mode, leaving the exit code at 0.
func TestProfileFlags(t *testing.T) {
	path := writeLoop(t, simpleSrc)
	root := corpusDir(t)
	dir := t.TempDir()
	for _, c := range []struct {
		name string
		args []string
	}{
		{"single", []string{path}},
		{"corpus", []string{root}},
	} {
		t.Run(c.name, func(t *testing.T) {
			cpu := filepath.Join(dir, c.name+".cpu.prof")
			mem := filepath.Join(dir, c.name+".mem.prof")
			args := append([]string{"-cpuprofile", cpu, "-memprofile", mem}, c.args...)
			var out, errb bytes.Buffer
			if code := run(args, &out, &errb); code != 0 {
				t.Fatalf("exit %d, stderr %q", code, errb.String())
			}
			for _, p := range []string{cpu, mem} {
				fi, err := os.Stat(p)
				if err != nil {
					t.Fatalf("profile not written: %v", err)
				}
				if fi.Size() == 0 {
					t.Fatalf("profile %s is empty", p)
				}
			}
		})
	}
}

// TestCorpusStatsPipeline: corpus-mode -stats includes the per-stage
// pipeline timing line at any worker count.
func TestCorpusStatsPipeline(t *testing.T) {
	root := corpusDir(t)
	for _, workers := range []string{"1", "4"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-stats", "-workers=" + workers, root}, &out, &errb); code != 0 {
			t.Fatalf("workers=%s: exit %d, stderr %q", workers, code, errb.String())
		}
		s := out.String()
		if !strings.Contains(s, "pipeline: load ") || !strings.Contains(s, "  wall ") {
			t.Fatalf("workers=%s: missing pipeline stage line:\n%s", workers, s)
		}
	}
}

// TestCorpusStoreIncremental: with -store, the second run serves both units
// from the verdict store, and editing one file re-solves only it.
func TestCorpusStoreIncremental(t *testing.T) {
	root := corpusDir(t)
	store := filepath.Join(t.TempDir(), "verdicts.store")
	args := []string{"-memo", "-stats", "-store", store, root}

	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("cold exit %d, stderr %q", code, errb.String())
	}
	if strings.Contains(out.String(), "served from store") {
		t.Fatalf("cold run claims store hits:\n%s", out.String())
	}

	out.Reset()
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("warm exit %d, stderr %q", code, errb.String())
	}
	if !strings.Contains(out.String(), "== a.loop (unchanged, served from store) ==") ||
		!strings.Contains(out.String(), "corpus: 2 units (2 reused, 0 solved)") {
		t.Fatalf("warm run did not reuse the store:\n%s", out.String())
	}

	edited := strings.ReplaceAll(simpleSrc, "a[i+1]", "a[i+2]")
	if err := os.WriteFile(filepath.Join(root, "a.loop"), []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("dirty exit %d, stderr %q", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "corpus: 2 units (1 reused, 1 solved)") {
		t.Fatalf("edited corpus did not re-solve exactly one unit:\n%s", s)
	}
	if !strings.Contains(s, "== sub/b.loop (unchanged, served from store) ==") {
		t.Fatalf("unchanged unit was not served from the store:\n%s", s)
	}
	if !strings.Contains(s, "a[i + 2]") {
		t.Fatalf("edited unit's fresh results missing:\n%s", s)
	}
}

// TestCorpusModeExitCodes: corpus-specific usage and runtime errors.
func TestCorpusModeExitCodes(t *testing.T) {
	root := corpusDir(t)
	single := writeLoop(t, simpleSrc)
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"store on single file", []string{"-store", filepath.Join(t.TempDir(), "s"), single}, 2},
		{"annotate on corpus", []string{"-annotate", root}, 2},
		{"dot on corpus", []string{"-dot", root}, 2},
		{"distribute on corpus", []string{"-distribute", root}, 2},
		{"empty dir", []string{t.TempDir()}, 1},
		{"missing file in list", []string{single, filepath.Join(t.TempDir(), "nope.loop")}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(c.args, &out, &errb); code != c.want {
				t.Fatalf("exit %d, want %d (stderr %q)", code, c.want, errb.String())
			}
		})
	}
}

// TestJSONOutput: -json emits the versioned wire document in both single
// and corpus mode, with canonical bytes identical to what the text report's
// verdicts render — the CLI and the depserve service speak one schema.
func TestJSONOutput(t *testing.T) {
	single := writeLoop(t, simpleSrc)
	var out, errb bytes.Buffer
	if code := run([]string{"-json", single}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb.String())
	}
	var resp wire.AnalyzeResponse
	if err := json.Unmarshal(out.Bytes(), &resp); err != nil {
		t.Fatalf("output is not a wire document: %v\n%s", err, out.String())
	}
	if resp.SchemaVersion != wire.SchemaVersion || resp.BudgetClass != "exhaustive" {
		t.Errorf("document header %+v", resp)
	}
	if len(resp.Units) != 1 || len(resp.Units[0].Results) == 0 || len(resp.Units[0].Fingerprint) != 32 {
		t.Fatalf("unexpected units %+v", resp.Units)
	}
	if resp.Stats.UnitsSolved != 1 || resp.Counters.Pairs == 0 {
		t.Errorf("stats/counters not filled: %+v %+v", resp.Stats, resp.Counters)
	}

	// Corpus mode: same document shape, one unit per file, and byte-stable
	// across -workers.
	root := corpusDir(t)
	var serial, parallel bytes.Buffer
	if code := run([]string{"-json", "-workers", "1", root}, &serial, &errb); code != 0 {
		t.Fatalf("corpus json exit %d, stderr %q", code, errb.String())
	}
	if code := run([]string{"-json", "-workers", "4", root}, &parallel, &errb); code != 0 {
		t.Fatalf("corpus json -workers exit %d, stderr %q", code, errb.String())
	}
	if serial.String() != parallel.String() {
		t.Error("-json output differs across worker counts")
	}
	var corpusResp wire.AnalyzeResponse
	if err := json.Unmarshal(serial.Bytes(), &corpusResp); err != nil {
		t.Fatal(err)
	}
	if len(corpusResp.Units) != 2 {
		t.Fatalf("corpus document has %d units, want 2", len(corpusResp.Units))
	}

	// A custom budget renders as the "custom" class.
	out.Reset()
	if code := run([]string{"-json", "-budget-fm", "2", single}, &out, &errb); code != 0 {
		t.Fatalf("budget json exit %d", code)
	}
	var budgeted wire.AnalyzeResponse
	if err := json.Unmarshal(out.Bytes(), &budgeted); err != nil {
		t.Fatal(err)
	}
	if budgeted.BudgetClass != "custom" {
		t.Errorf("budget class %q, want custom", budgeted.BudgetClass)
	}

	// -json excludes the per-program text renderers.
	if code := run([]string{"-json", "-annotate", single}, &out, &errb); code != 2 {
		t.Errorf("-json -annotate exit %d, want 2", code)
	}
}
