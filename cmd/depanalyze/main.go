// Command depanalyze runs the exact dependence analyzer on a loop-language
// source file and prints a per-pair dependence report, direction vectors,
// and a loop-parallelization summary.
//
//	depanalyze [flags] file.loop      (or - for stdin)
//	depanalyze [flags] dir            (corpus: every *.loop under dir)
//	depanalyze [flags] a.loop b.loop  (corpus: the listed files)
//
// With a directory argument, or more than one file argument, depanalyze
// analyzes the inputs as one corpus: a single analyzer session with shared
// memo tables, one unit per file in deterministic order. The -store flag
// adds the persistent verdict store, so a re-run re-solves only the files
// whose dependence structure changed. The per-program renderers (-annotate,
// -dot, -distribute) and the parallelization summary need a single parsed
// program and are rejected in corpus mode; single-file behavior and exit
// codes are unchanged.
//
// Flags:
//
//	-vectors=false    skip direction/distance vectors
//	-memo             enable memoization (improved scheme)
//	-memo-file=path   persist the memo table across runs (implies -memo)
//	-store=path       corpus mode: persist the fingerprint → verdict store
//	                  across runs (incremental re-analysis)
//	-workers=N        analysis goroutines (default GOMAXPROCS; 1 = serial)
//	-cascade=full     cascade pipeline: full (cost-ordered) or fm-only
//	                  (Fourier–Motzkin alone, for cross-validation)
//	-budget-fm=N      per-pair cap on Fourier–Motzkin eliminations
//	-budget-nodes=N   per-pair cap on branch-and-bound nodes
//	-budget-cons=N    per-pair cap on derived constraints
//	-budget-ms=N      per-pair wall-clock deadline in milliseconds
//	-timeout=D        whole-run deadline (context.WithTimeout); remaining
//	                  pairs degrade to sound 'maybe' verdicts
//	-stats            print the analyzer counters (in corpus mode also the
//	                  per-stage pipeline timing)
//	-cpuprofile=path  write a CPU profile of the run (pprof format)
//	-memprofile=path  write a heap profile at exit (pprof format)
//	-memostats        print memo table occupancy, shard spread, L1/L2 hit
//	                  rates, and degraded-entry counts (implies -memo)
//	-parallel=false   skip the parallelization summary
//	-annotate         print the source with parallel loops marked 'parfor'
//	-dot              print the dependence graph in Graphviz dot form
//	-distribute       print the program with loops distributed by pi-blocks
//	-json             print results as the versioned wire document
//	                  (internal/wire AnalyzeResponse) the depserve service
//	                  returns, instead of the text report
//
// The flags compose: -workers, -cascade, and -memostats may be combined
// freely (and with the budget flags); -memostats and -memo-file imply
// -memo. Exit status is 0 on success, 1 on a runtime failure (unreadable
// file, source syntax error, analysis failure), and 2 on a usage error
// (bad flag, bad flag value, unknown cascade, negative budget).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"exactdep"
	corpuspkg "exactdep/internal/corpus"
	"exactdep/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so the flag matrix and
// exit codes are testable: 0 ok, 1 runtime error, 2 usage error.
func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("depanalyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	vectors := fs.Bool("vectors", true, "compute direction and distance vectors")
	memo := fs.Bool("memo", false, "memoize repeated dependence problems")
	memoFile := fs.String("memo-file", "", "persist the memo table across runs (implies -memo)")
	storeFile := fs.String("store", "", "corpus mode: persist the fingerprint → verdict store across runs")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "analysis worker goroutines (1 = serial)")
	cascade := fs.String("cascade", "full", "cascade pipeline: full (cost-ordered) or fm-only (cross-validation)")
	budgetFM := fs.Int("budget-fm", 0, "per-pair cap on Fourier-Motzkin eliminations (0 = unlimited)")
	budgetNodes := fs.Int("budget-nodes", 0, "per-pair cap on branch-and-bound nodes (0 = unlimited)")
	budgetCons := fs.Int("budget-cons", 0, "per-pair cap on derived constraints (0 = unlimited)")
	budgetMS := fs.Int("budget-ms", 0, "per-pair wall-clock budget in milliseconds (0 = unlimited)")
	timeout := fs.Duration("timeout", 0, "whole-run deadline; remaining pairs degrade to 'maybe' (0 = none)")
	showStats := fs.Bool("stats", false, "print analyzer statistics")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	memoStats := fs.Bool("memostats", false, "print memo occupancy, shard spread, L1/L2 hit rates, degraded entries (implies -memo)")
	par := fs.Bool("parallel", true, "print the loop-parallelization summary")
	annotate := fs.Bool("annotate", false, "print the source with parallel loops marked 'parfor'")
	dot := fs.Bool("dot", false, "print the statement dependence graph in Graphviz dot form")
	distribute := fs.Bool("distribute", false, "print the program with top-level loops distributed by pi-blocks")
	jsonOut := fs.Bool("json", false, "print the wire AnalyzeResponse JSON document instead of the text report")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if fs.NArg() < 1 {
		fmt.Fprintln(stderr, "usage: depanalyze [flags] file.loop|dir [file.loop ...]  (use - for stdin)")
		fs.Usage()
		return 2
	}
	if *memoFile != "" || *memoStats {
		*memo = true
	}

	// A directory argument or multiple file arguments select corpus mode.
	corpusMode := fs.NArg() > 1
	if fs.NArg() == 1 && fs.Arg(0) != "-" {
		if fi, err := os.Stat(fs.Arg(0)); err == nil && fi.IsDir() {
			corpusMode = true
		}
	}
	if !corpusMode && *storeFile != "" {
		fmt.Fprintln(stderr, "depanalyze: -store applies only to corpus mode (a directory or multiple files)")
		return 2
	}

	opts := exactdep.Options{
		DirectionVectors: *vectors,
		PruneUnused:      *vectors,
		PruneDistance:    *vectors,
		Memoize:          *memo,
		ImprovedMemo:     *memo,
		Cascade:          *cascade,
		Budget: exactdep.Budget{
			MaxFMEliminations: *budgetFM,
			MaxBranchNodes:    *budgetNodes,
			MaxConstraints:    *budgetCons,
			MaxDuration:       time.Duration(*budgetMS) * time.Millisecond,
		},
	}
	// Configuration errors (unknown cascade, negative budget) are usage
	// errors: report them before touching the input.
	if err := opts.Validate(); err != nil {
		fmt.Fprintf(stderr, "depanalyze: %v\n", err)
		return 2
	}

	// Profiles cover everything from here on (parse, lowering, analysis,
	// rendering). An unwritable profile path is a runtime error, like any
	// other bad file argument; the deferred stop also writes the heap
	// profile and upgrades a late failure to exit 1.
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(stderr, "depanalyze: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(stderr, "depanalyze: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	if *jsonOut && (*annotate || *dot || *distribute) {
		fmt.Fprintln(stderr, "depanalyze: -json replaces the text report; drop -annotate, -dot and -distribute")
		return 2
	}
	if corpusMode {
		if *annotate || *dot || *distribute {
			fmt.Fprintln(stderr, "depanalyze: -annotate, -dot and -distribute need a single program, not a corpus")
			return 2
		}
		return runCorpus(corpusConfig{
			args:      fs.Args(),
			opts:      opts,
			workers:   *workers,
			timeout:   *timeout,
			memoFile:  *memoFile,
			storeFile: *storeFile,
			stats:     *showStats,
			memoStats: *memoStats,
			jsonOut:   *jsonOut,
		}, stdout, stderr)
	}

	src, err := readSource(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "depanalyze: %v\n", err)
		return 1
	}
	prog, err := exactdep.Parse(src)
	if err != nil {
		fmt.Fprintf(stderr, "depanalyze: %v\n", err)
		return 1
	}
	unit := exactdep.Lower(prog)
	analyzer := exactdep.NewAnalyzer(opts)
	if *memoFile != "" {
		if f, err := os.Open(*memoFile); err == nil {
			loadErr := analyzer.LoadMemo(f)
			f.Close()
			if loadErr != nil {
				fmt.Fprintf(stderr, "depanalyze: %v\n", loadErr)
				return 1
			}
		} else if !os.IsNotExist(err) {
			fmt.Fprintf(stderr, "depanalyze: %v\n", err)
			return 1
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	results, err := analyzer.AnalyzeAllContext(ctx, exactdep.Pairs(unit), *workers)
	if err != nil {
		fmt.Fprintf(stderr, "depanalyze: %v\n", err)
		return 1
	}
	report := &exactdep.Report{Unit: unit, Results: results, Stats: analyzer.Stats}
	if *memoFile != "" {
		if err := saveMemoFile(analyzer, *memoFile); err != nil {
			fmt.Fprintf(stderr, "depanalyze: %v\n", err)
			return 1
		}
	}

	if *jsonOut {
		name := fs.Arg(0)
		if name == "-" {
			name = "stdin"
		}
		u, err := corpuspkg.FromSource(name, src)
		if err != nil {
			fmt.Fprintf(stderr, "depanalyze: %v\n", err)
			return 1
		}
		var fp corpuspkg.Fingerprinter
		ur := exactdep.UnitResult{
			Name:        name,
			Fingerprint: u.Fingerprint(&fp),
			Results:     results,
			Cost:        corpuspkg.Summarize(results),
			Warnings:    unit.Warnings,
		}
		cs := exactdep.CorpusStats{Units: 1, UnitsSolved: 1, PairsSolved: len(results)}
		if err := writeWireJSON(stdout, []exactdep.UnitResult{ur}, cs, analyzer.Stats, opts); err != nil {
			fmt.Fprintf(stderr, "depanalyze: %v\n", err)
			return 1
		}
		return 0
	}

	for _, w := range report.Unit.Warnings {
		fmt.Fprintf(stderr, "warning: %s\n", w)
	}
	for _, r := range report.Results {
		printResult(stdout, r)
	}

	if *par {
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, "parallelization:")
		fmt.Fprint(stdout, exactdep.ParallelizeResults(report.Unit, report.Results))
	}
	if *annotate {
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, "annotated source:")
		fmt.Fprint(stdout, exactdep.AnnotateSource(prog, exactdep.ParallelizeResults(report.Unit, report.Results)))
	}
	if *dot {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, exactdep.BuildDepGraph(report.Unit, report.Results).Dot())
	}
	if *distribute {
		dist, err := exactdep.DistributeProgram(prog)
		if err != nil {
			fmt.Fprintf(stderr, "depanalyze: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, "distributed:")
		fmt.Fprint(stdout, dist)
	}
	if *showStats {
		s := report.Stats
		fmt.Fprintln(stdout)
		fmt.Fprintf(stdout, "pairs: %d  constant: %d  gcd-independent: %d  tests: %d\n",
			s.Pairs, s.Constant, s.GCDIndependent, s.TotalTests())
		fmt.Fprintf(stdout, "verdicts: %d independent, %d dependent, %d unknown, %d maybe\n",
			s.Independent, s.Dependent, s.Unknown, s.Maybe)
		if s.TotalBudgetTrips() > 0 || s.CancelledPairs > 0 {
			fmt.Fprintf(stdout, "degraded: %d budget trips, %d pairs cancelled\n",
				s.TotalBudgetTrips(), s.CancelledPairs)
		}
		if *memo {
			fmt.Fprintf(stdout, "memo: %d unique cases, %d/%d hits\n",
				s.UniqueFull, s.FullHits, s.FullLookups)
		}
	}
	if *memoStats {
		printMemoStats(stdout, analyzer)
	}
	return 0
}

// startProfiles begins CPU profiling and/or arms a heap-profile write,
// returning the stop function that finishes both. Either path may be empty;
// with both empty the stop function is a no-op.
func startProfiles(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			first = cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err == nil {
				runtime.GC() // settle live-object statistics before the snapshot
				err = pprof.WriteHeapProfile(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if first == nil {
				first = err
			}
		}
		return first
	}, nil
}

// printResult renders one pair verdict line (shared by the single-file and
// corpus modes).
func printResult(w io.Writer, r exactdep.Result) {
	fmt.Fprintf(w, "%s vs %s: %s", r.Pair.A.Ref, r.Pair.B.Ref, r.Outcome)
	if !r.Exact {
		switch {
		case r.Trip == exactdep.TripNone:
			fmt.Fprintf(w, " (assumed)")
		case r.Trip.Budgetary():
			fmt.Fprintf(w, " (assumed: %s budget)", r.Trip)
		default:
			fmt.Fprintf(w, " (assumed: %s structural cap)", r.Trip)
		}
	}
	fmt.Fprintf(w, "  [%s", r.DecidedBy)
	if r.DecidedBy == exactdep.ByTest && r.Kind != 0 {
		fmt.Fprintf(w, ": %s", r.Kind)
	}
	fmt.Fprintf(w, "]")
	if len(r.Vectors) > 0 {
		fmt.Fprintf(w, "  vectors:")
		for _, v := range r.Vectors {
			fmt.Fprintf(w, " %s", v)
		}
	}
	for _, d := range r.Distances {
		fmt.Fprintf(w, "  distance[level %d]=%d", d.Level, d.Value)
	}
	fmt.Fprintln(w)
}

// corpusConfig carries the corpus-mode invocation.
type corpusConfig struct {
	args      []string
	opts      exactdep.Options
	workers   int
	timeout   time.Duration
	memoFile  string
	storeFile string
	stats     bool
	memoStats bool
	jsonOut   bool
}

// runCorpus analyzes a directory or a list of files as one corpus: a single
// incremental driver run with shared memo tables, units in deterministic
// order, optionally against a persistent verdict store.
func runCorpus(cfg corpusConfig, stdout, stderr io.Writer) int {
	var src exactdep.Corpus
	if len(cfg.args) == 1 {
		src = exactdep.CorpusDir(cfg.args[0])
	} else {
		src = exactdep.CorpusFiles(cfg.args...)
	}

	driver := exactdep.NewCorpusDriver(cfg.opts, cfg.workers)
	// Stage accounting is opt-in (per-unit clock reads); -stats asks for it.
	driver.TimeStages = cfg.stats
	analyzer := driver.Analyzer()
	if cfg.memoFile != "" {
		if f, err := os.Open(cfg.memoFile); err == nil {
			loadErr := analyzer.LoadMemo(f)
			f.Close()
			if loadErr != nil {
				fmt.Fprintf(stderr, "depanalyze: %v\n", loadErr)
				return 1
			}
		} else if !os.IsNotExist(err) {
			fmt.Fprintf(stderr, "depanalyze: %v\n", err)
			return 1
		}
	}
	if cfg.storeFile != "" {
		store := exactdep.NewCorpusStore(cfg.opts)
		if f, err := os.Open(cfg.storeFile); err == nil {
			store, err = exactdep.LoadCorpusStore(f, cfg.opts)
			f.Close()
			if err != nil {
				fmt.Fprintf(stderr, "depanalyze: %v\n", err)
				return 1
			}
		} else if !os.IsNotExist(err) {
			fmt.Fprintf(stderr, "depanalyze: %v\n", err)
			return 1
		}
		if err := driver.SetStore(store); err != nil {
			fmt.Fprintf(stderr, "depanalyze: %v\n", err)
			return 1
		}
	}

	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	var jsonResults []exactdep.UnitResult
	first := true
	emit := func(ur exactdep.UnitResult) error {
		if !first {
			fmt.Fprintln(stdout)
		}
		first = false
		fmt.Fprintf(stdout, "== %s", ur.Name)
		if ur.Reused {
			fmt.Fprintf(stdout, " (unchanged, served from store)")
		}
		fmt.Fprintln(stdout, " ==")
		for _, w := range ur.Warnings {
			fmt.Fprintf(stderr, "warning: %s: %s\n", ur.Name, w)
		}
		for _, r := range ur.Results {
			printResult(stdout, r)
		}
		return nil
	}
	if cfg.jsonOut {
		emit = func(ur exactdep.UnitResult) error {
			jsonResults = append(jsonResults, ur)
			return nil
		}
	}
	err := driver.Run(ctx, src, emit)
	if err != nil {
		fmt.Fprintf(stderr, "depanalyze: %v\n", err)
		return 1
	}

	if cfg.memoFile != "" {
		if err := saveMemoFile(analyzer, cfg.memoFile); err != nil {
			fmt.Fprintf(stderr, "depanalyze: %v\n", err)
			return 1
		}
	}
	if cfg.storeFile != "" {
		f, err := os.Create(cfg.storeFile)
		if err == nil {
			err = driver.Store().Save(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "depanalyze: %v\n", err)
			return 1
		}
	}

	if cfg.jsonOut {
		if err := writeWireJSON(stdout, jsonResults, driver.Stats, analyzer.Stats, cfg.opts); err != nil {
			fmt.Fprintf(stderr, "depanalyze: %v\n", err)
			return 1
		}
		return 0
	}
	if cfg.stats {
		cs, s := driver.Stats, analyzer.Stats
		fmt.Fprintln(stdout)
		fmt.Fprintf(stdout, "corpus: %d units (%d reused, %d solved), %d pairs served, %d pairs solved\n",
			cs.Units, cs.UnitsReused, cs.UnitsSolved, cs.PairsServed, cs.PairsSolved)
		fmt.Fprintf(stdout, "pipeline: load %s  fingerprint %s  probe %s  solve %s  emit %s  wall %s\n",
			cs.Stage.Load, cs.Stage.Fingerprint, cs.Stage.Probe, cs.Stage.Solve, cs.Stage.Emit, cs.Stage.Wall)
		fmt.Fprintf(stdout, "pairs: %d  constant: %d  gcd-independent: %d  tests: %d\n",
			s.Pairs, s.Constant, s.GCDIndependent, s.TotalTests())
		fmt.Fprintf(stdout, "verdicts: %d independent, %d dependent, %d unknown, %d maybe\n",
			s.Independent, s.Dependent, s.Unknown, s.Maybe)
		if s.TotalBudgetTrips() > 0 || s.CancelledPairs > 0 {
			fmt.Fprintf(stdout, "degraded: %d budget trips, %d pairs cancelled\n",
				s.TotalBudgetTrips(), s.CancelledPairs)
		}
		if cfg.opts.Memoize {
			fmt.Fprintf(stdout, "memo: %d unique cases, %d/%d hits\n",
				s.UniqueFull, s.FullHits, s.FullLookups)
		}
	}
	if cfg.memoStats {
		printMemoStats(stdout, analyzer)
	}
	return 0
}

// writeWireJSON renders results as the same versioned wire document
// depserve serves, so scripted clients can switch between the CLI and the
// service without a second parser (and diff the two byte for byte after
// wire.Canonical).
func writeWireJSON(w io.Writer, urs []exactdep.UnitResult, cs exactdep.CorpusStats, counters exactdep.Counters, opts exactdep.Options) error {
	resp := &wire.AnalyzeResponse{
		SchemaVersion: wire.SchemaVersion,
		BudgetClass:   wire.ClassName(opts.Budget),
		Units:         make([]wire.UnitVerdicts, len(urs)),
		Stats:         wire.FromCorpusStats(cs),
		Counters:      wire.FromCounters(counters),
	}
	for i := range urs {
		resp.Units[i] = wire.FromUnitResult(&urs[i])
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(resp)
}

// saveMemoFile persists the analyzer's memo tables (degraded entries are
// dropped by SaveMemo — they are budget-class local).
func saveMemoFile(a *exactdep.Analyzer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.SaveMemo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printMemoStats renders the memo hierarchy introspection: table occupancy,
// shard spread of the concurrent form, the L1/L2 split of the lookup
// traffic, and how much capacity holds budget-degraded verdicts.
func printMemoStats(w io.Writer, a *exactdep.Analyzer) {
	m := a.MemoStats()
	fmt.Fprintln(w)
	fmt.Fprintln(w, "memo hierarchy:")
	fmt.Fprintf(w, "  full table: %d entries / %d buckets (%s occupancy)\n",
		m.FullEntries, m.FullBuckets, rate(m.FullEntries, m.FullBuckets))
	fmt.Fprintf(w, "  eq table:   %d entries / %d buckets (%s occupancy)\n",
		m.EqEntries, m.EqBuckets, rate(m.EqEntries, m.EqBuckets))
	fmt.Fprintf(w, "  dir table:  %d entries, %d/%d hits (%s, refinement memo)\n",
		m.DirEntries, m.DirHits, m.DirLookups, rate(m.DirHits, m.DirLookups))
	if m.Shards > 0 {
		fmt.Fprintf(w, "  shards:     %d (entries per shard %d..%d)\n", m.Shards, m.ShardMin, m.ShardMax)
	} else {
		fmt.Fprintf(w, "  shards:     unsharded (serial table)\n")
	}
	if m.L1Capacity > 0 {
		fmt.Fprintf(w, "  L1:         %d/%d slots live, %d/%d hits (%s)\n",
			m.L1Entries, m.L1Capacity, m.L1Hits, m.L1Lookups, rate(m.L1Hits, m.L1Lookups))
	} else {
		fmt.Fprintf(w, "  L1:         disabled\n")
	}
	fmt.Fprintf(w, "  L2:         %d/%d hits (%s)\n", m.L2Hits, m.L2Lookups, rate(m.L2Hits, m.L2Lookups))
	fmt.Fprintf(w, "  degraded:   %d entries (maybe verdicts, valid for this budget class only)\n",
		m.DegradedEntries)
}

func rate(part, whole int) string {
	if whole == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}

func readSource(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}
