// Command depanalyze runs the exact dependence analyzer on a loop-language
// source file and prints a per-pair dependence report, direction vectors,
// and a loop-parallelization summary.
//
//	depanalyze [flags] file.loop      (or - for stdin)
//
// Flags:
//
//	-vectors=false    skip direction/distance vectors
//	-memo             enable memoization (improved scheme)
//	-memo-file=path   persist the memo table across runs (implies -memo)
//	-workers=N        analysis goroutines (default GOMAXPROCS; 1 = serial)
//	-cascade=full     cascade pipeline: full (cost-ordered) or fm-only
//	                  (Fourier–Motzkin alone, for cross-validation)
//	-stats            print the analyzer counters
//	-memostats        print memo table occupancy, shard spread, and L1/L2
//	                  hit rates (implies -memo)
//	-parallel=false   skip the parallelization summary
//	-annotate         print the source with parallel loops marked 'parfor'
//	-dot              print the dependence graph in Graphviz dot form
//	-distribute       print the program with loops distributed by pi-blocks
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"exactdep"
)

func main() {
	vectors := flag.Bool("vectors", true, "compute direction and distance vectors")
	memo := flag.Bool("memo", false, "memoize repeated dependence problems")
	memoFile := flag.String("memo-file", "", "persist the memo table across runs (implies -memo)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "analysis worker goroutines (1 = serial)")
	cascade := flag.String("cascade", "full", "cascade pipeline: full (cost-ordered) or fm-only (cross-validation)")
	showStats := flag.Bool("stats", false, "print analyzer statistics")
	memoStats := flag.Bool("memostats", false, "print memo occupancy, shard spread, and L1/L2 hit rates (implies -memo)")
	par := flag.Bool("parallel", true, "print the loop-parallelization summary")
	annotate := flag.Bool("annotate", false, "print the source with parallel loops marked 'parfor'")
	dot := flag.Bool("dot", false, "print the statement dependence graph in Graphviz dot form")
	distribute := flag.Bool("distribute", false, "print the program with top-level loops distributed by pi-blocks")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: depanalyze [flags] file.loop  (use - for stdin)")
		flag.Usage()
		os.Exit(2)
	}
	src, err := readSource(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *memoFile != "" || *memoStats {
		*memo = true
	}

	opts := exactdep.Options{
		DirectionVectors: *vectors,
		PruneUnused:      *vectors,
		PruneDistance:    *vectors,
		Memoize:          *memo,
		ImprovedMemo:     *memo,
		Cascade:          *cascade,
	}
	prog, err := exactdep.Parse(src)
	if err != nil {
		fatal(err)
	}
	unit := exactdep.Lower(prog)
	analyzer := exactdep.NewAnalyzer(opts)
	if *memoFile != "" {
		if f, err := os.Open(*memoFile); err == nil {
			loadErr := analyzer.LoadMemo(f)
			f.Close()
			if loadErr != nil {
				fatal(loadErr)
			}
		} else if !os.IsNotExist(err) {
			fatal(err)
		}
	}
	results, err := analyzer.AnalyzeAll(exactdep.Pairs(unit), *workers)
	if err != nil {
		fatal(err)
	}
	report := &exactdep.Report{Unit: unit, Results: results, Stats: analyzer.Stats}
	if *memoFile != "" {
		f, err := os.Create(*memoFile)
		if err != nil {
			fatal(err)
		}
		if err := analyzer.SaveMemo(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	for _, w := range report.Unit.Warnings {
		fmt.Fprintf(os.Stderr, "warning: %s\n", w)
	}
	for _, r := range report.Results {
		fmt.Printf("%s vs %s: %s", r.Pair.A.Ref, r.Pair.B.Ref, r.Outcome)
		if !r.Exact {
			fmt.Printf(" (assumed)")
		}
		fmt.Printf("  [%s", r.DecidedBy)
		if r.DecidedBy == exactdep.ByTest {
			fmt.Printf(": %s", r.Kind)
		}
		fmt.Printf("]")
		if len(r.Vectors) > 0 {
			fmt.Printf("  vectors:")
			for _, v := range r.Vectors {
				fmt.Printf(" %s", v)
			}
		}
		for _, d := range r.Distances {
			fmt.Printf("  distance[level %d]=%d", d.Level, d.Value)
		}
		fmt.Println()
	}

	if *par {
		fmt.Println()
		fmt.Println("parallelization:")
		fmt.Print(exactdep.ParallelizeResults(report.Unit, report.Results))
	}
	if *annotate {
		fmt.Println()
		fmt.Println("annotated source:")
		fmt.Print(exactdep.AnnotateSource(prog, exactdep.ParallelizeResults(report.Unit, report.Results)))
	}
	if *dot {
		fmt.Println()
		fmt.Print(exactdep.BuildDepGraph(report.Unit, report.Results).Dot())
	}
	if *distribute {
		dist, err := exactdep.DistributeProgram(prog)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Println("distributed:")
		fmt.Print(dist)
	}
	if *showStats {
		s := report.Stats
		fmt.Println()
		fmt.Printf("pairs: %d  constant: %d  gcd-independent: %d  tests: %d\n",
			s.Pairs, s.Constant, s.GCDIndependent, s.TotalTests())
		fmt.Printf("verdicts: %d independent, %d dependent, %d unknown\n",
			s.Independent, s.Dependent, s.Unknown)
		if *memo {
			fmt.Printf("memo: %d unique cases, %d/%d hits\n",
				s.UniqueFull, s.FullHits, s.FullLookups)
		}
	}
	if *memoStats {
		printMemoStats(analyzer)
	}
}

// printMemoStats renders the memo hierarchy introspection: table occupancy,
// shard spread of the concurrent form, and the L1/L2 split of the lookup
// traffic.
func printMemoStats(a *exactdep.Analyzer) {
	m := a.MemoStats()
	fmt.Println()
	fmt.Println("memo hierarchy:")
	fmt.Printf("  full table: %d entries / %d buckets (%s occupancy)\n",
		m.FullEntries, m.FullBuckets, rate(m.FullEntries, m.FullBuckets))
	fmt.Printf("  eq table:   %d entries / %d buckets (%s occupancy)\n",
		m.EqEntries, m.EqBuckets, rate(m.EqEntries, m.EqBuckets))
	if m.Shards > 0 {
		fmt.Printf("  shards:     %d (entries per shard %d..%d)\n", m.Shards, m.ShardMin, m.ShardMax)
	} else {
		fmt.Printf("  shards:     unsharded (serial table)\n")
	}
	if m.L1Capacity > 0 {
		fmt.Printf("  L1:         %d/%d slots live, %d/%d hits (%s)\n",
			m.L1Entries, m.L1Capacity, m.L1Hits, m.L1Lookups, rate(m.L1Hits, m.L1Lookups))
	} else {
		fmt.Printf("  L1:         disabled\n")
	}
	fmt.Printf("  L2:         %d/%d hits (%s)\n", m.L2Hits, m.L2Lookups, rate(m.L2Hits, m.L2Lookups))
}

func rate(part, whole int) string {
	if whole == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}

func readSource(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "depanalyze: %v\n", err)
	os.Exit(1)
}
