// Command perfect regenerates the paper's evaluation tables and figure on
// the synthetic PERFECT Club suite:
//
//	perfect -table 1     per-program test-call counts (no memoization)
//	perfect -table 2     memoization unique-case percentages
//	perfect -table 3     test calls on unique cases only (memoized)
//	perfect -table 4     direction-vector test counts, no pruning
//	perfect -table 5     direction-vector test counts with pruning
//	perfect -table 6     dependence-test cost vs scalar-compile cost model
//	perfect -table 7     table 5 plus symbolic cases
//	perfect -figure 1    the Loop Residue constraint graph of §3.4
//	perfect -compare     §7 exact-vs-inexact accuracy comparison
//	perfect -shared      §5 standard-table-across-compilations experiment
//	perfect -costs       Table 6 cost model: cascade probes consulted per stage
//	perfect -dump AP     print program AP's generated synthetic source
//	perfect -all         everything above in order
//
// Pass -paper to append the paper's reported rows for side-by-side reading.
package main

import (
	"flag"
	"fmt"
	"os"

	"exactdep/internal/harness"
	"exactdep/internal/workload"
)

func main() {
	table := flag.Int("table", 0, "regenerate table N (1-7)")
	figure := flag.Int("figure", 0, "regenerate figure N (1)")
	compare := flag.Bool("compare", false, "run the §7 exact-vs-inexact comparison")
	shared := flag.Bool("shared", false, "run the §5 standard-table-across-compilations experiment")
	costs := flag.Bool("costs", false, "print the Table 6 cost-model report (cascade probes per stage)")
	dump := flag.String("dump", "", "print the generated synthetic source of one program (e.g. -dump AP)")
	symbolic := flag.Bool("symbolic", false, "with -dump: include the Table 7 symbolic cases")
	all := flag.Bool("all", false, "run every experiment")
	paper := flag.Bool("paper", false, "append the paper's reported numbers")
	flag.Parse()

	h := harness.New(os.Stdout, *paper)
	ran := false
	run := func(name string, f func() error) {
		ran = true
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "perfect: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *all {
		for n := 1; n <= 7; n++ {
			n := n
			run(fmt.Sprintf("table %d", n), func() error { return h.Table(n) })
		}
		run("figure 1", func() error { return h.Figure(1) })
		run("compare", h.Compare)
		run("shared", h.SharedTable)
		run("costs", h.CostReport)
		return
	}
	if *table != 0 {
		run("table", func() error { return h.Table(*table) })
	}
	if *figure != 0 {
		run("figure", func() error { return h.Figure(*figure) })
	}
	if *compare {
		run("compare", h.Compare)
	}
	if *shared {
		run("shared table", h.SharedTable)
	}
	if *costs {
		run("cost report", h.CostReport)
	}
	if *dump != "" {
		run("dump", func() error {
			spec, ok := workload.ProgramByName(*dump)
			if !ok {
				return fmt.Errorf("unknown program %q (AP, CS, LG, LW, MT, NA, OC, SD, SM, SR, TF, TI, WS)", *dump)
			}
			_, err := fmt.Print(workload.Source(spec, *symbolic))
			return err
		})
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
