// Command depserve runs the dependence-analysis service: a long-running
// HTTP daemon serving verdicts, direction/distance vectors, trip
// provenance, and cost counters as JSON over the versioned wire API.
//
//	depserve -addr :8177 -store /var/lib/depserve/warm.store
//
// Endpoints (see internal/wire for the schema, ARCHITECTURE.md "Service
// layer" for the design):
//
//	POST /v1/analyze  analyze posted DSL units as one corpus
//	POST /v1/corpus   analyze a server-local corpus (needs -corpus-root)
//	GET  /v1/healthz  liveness
//	GET  /v1/statsz   queue/store/degradation counters
//
// The process drains gracefully on SIGINT/SIGTERM: queued requests finish,
// the warm tier is saved atomically, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"exactdep"
	"exactdep/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit: 0 ok, 1 runtime error,
// 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("depserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8177", "listen address (host:port; port 0 picks a free one)")
	vectors := fs.Bool("vectors", true, "compute direction and distance vectors")
	memo := fs.Bool("memo", true, "memoize repeated dependence problems within a request")
	cascade := fs.String("cascade", "full", "cascade pipeline: full (cost-ordered) or fm-only (cross-validation)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "per-request analysis workers (1 = serial)")
	class := fs.String("class", "", "default budget class (exhaustive, generous, standard, economy, minimal)")
	queueDepth := fs.Int("queue", 64, "admission queue depth; beyond it requests shed with 429")
	executors := fs.Int("executors", 1, "concurrent request executors")
	maxBatch := fs.Int("max-batch", 8, "max queued same-class requests coalesced into one warm-analyzer batch (1 = no coalescing)")
	memoEvict := fs.Int("memo-evict", 1<<20, "drop a warm analyzer's memo tables past this many entries (-1 = never evict)")
	storePath := fs.String("store", "", "persist the warm verdict tier at this path across restarts")
	snapshot := fs.Duration("snapshot", 30*time.Second, "periodic warm-tier save cadence (0 = only on shutdown)")
	maxDeadline := fs.Duration("max-deadline", 60*time.Second, "cap on any request's analysis deadline")
	corpusRoot := fs.String("corpus-root", "", "enable /v1/corpus over files under this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: depserve [flags]  (no positional arguments)")
		fs.Usage()
		return 2
	}

	srv, err := server.New(server.Config{
		Options: exactdep.Options{
			DirectionVectors: *vectors,
			PruneUnused:      *vectors,
			PruneDistance:    *vectors,
			Memoize:          *memo,
			ImprovedMemo:     *memo,
			Cascade:          *cascade,
			Workers:          *workers,
		},
		DefaultClass:   *class,
		QueueDepth:     *queueDepth,
		Executors:      *executors,
		MaxBatch:       *maxBatch,
		MaxMemoEntries: *memoEvict,
		StorePath:      *storePath,
		SnapshotEvery:  *snapshot,
		MaxDeadline:    *maxDeadline,
		CorpusRoot:     *corpusRoot,
	})
	if err != nil {
		fmt.Fprintf(stderr, "depserve: %v\n", err)
		return 2
	}

	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintf(stderr, "depserve: %v\n", err)
		return 1
	}
	// The load generator and serve-smoke parse this exact line to find the
	// bound port; keep the format stable.
	fmt.Fprintf(stdout, "depserve: listening on %s\n", bound)
	if f, ok := stdout.(interface{ Sync() error }); ok {
		f.Sync()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	fmt.Fprintln(stdout, "depserve: draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(stderr, "depserve: shutdown: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "depserve: stopped")
	return 0
}
