// Command depload is the load generator for depserve: it replays the
// workload suite (optionally including LargeCorpus units) against a
// running server — or one it spawns itself — at a configurable request
// rate, then fires an overload burst, and reports p50/p99 latency,
// degradation and shed rates per phase. It exits non-zero if the server
// ever answers 5xx, and with -check it also replays the suite once and
// asserts the served verdicts are byte-identical to a local batch run —
// the same canonical bytes depanalyze would print.
//
//	depload -spawn ./depserve -spawn-flags "-queue 8" -rate 50 -duration 3s \
//	        -burst 32 -check -merge BENCH_PR9.json
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"exactdep/internal/core"
	"exactdep/internal/corpus"
	"exactdep/internal/wire"
	"exactdep/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// phaseReport is one load phase's outcome.
type phaseReport struct {
	Requests    int     `json:"requests"`
	OK          int     `json:"ok"`
	Degraded    int     `json:"degraded"`
	Shed        int     `json:"shed"`
	Errors5xx   int     `json:"errors5xx"`
	OtherErrors int     `json:"otherErrors"`
	P50Ms       float64 `json:"p50Ms"`
	P99Ms       float64 `json:"p99Ms"`
	// DegradedRate counts degraded-by-load responses per completed request.
	DegradedRate float64 `json:"degradedRate"`
	// ShedRate counts 429s per attempted request.
	ShedRate float64 `json:"shedRate"`
}

// serveReport is the JSON document depload emits (and merges into a
// benchjson baseline under the top-level "serve" key, which benchcmp
// ignores).
type serveReport struct {
	SchemaVersion int          `json:"schemaVersion"`
	RatePerSec    float64      `json:"ratePerSec"`
	Rated         *phaseReport `json:"rated,omitempty"`
	Burst         *phaseReport `json:"burst,omitempty"`
	// ByteIdentical is set by -check: served suite verdicts rendered
	// canonically match a local batch corpus run byte for byte.
	ByteIdentical *bool `json:"byteIdentical,omitempty"`
	// Statsz is the server's final counter snapshot (coalescing batches,
	// cross-request memo hits, fingerprint dedup, evictions, ...), fetched
	// after the load phases.
	Statsz *wire.Statsz `json:"statsz,omitempty"`
}

// getStatsz fetches the server's counter snapshot.
func getStatsz(base string) (*wire.Statsz, error) {
	resp, err := http.Get(base + "/v1/statsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("statsz: %d: %s", resp.StatusCode, msg)
	}
	var st wire.Statsz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("depload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "target server address (host:port); empty with -spawn")
	spawn := fs.String("spawn", "", "spawn this depserve binary on a free port and load it")
	spawnFlags := fs.String("spawn-flags", "", "extra flags for the spawned server, space-separated")
	rate := fs.Float64("rate", 20, "rated phase: requests per second")
	duration := fs.Duration("duration", 3*time.Second, "rated phase length")
	concurrency := fs.Int("concurrency", 4, "rated phase in-flight request cap")
	class := fs.String("class", "", "budget class for rated-phase requests")
	largeNests := fs.Int("large-nests", 32, "include a LargeCorpus request of this many nests (0 = none)")
	burst := fs.Int("burst", 0, "overload phase: this many simultaneous requests (0 = skip)")
	check := fs.Bool("check", false, "replay the suite once and require byte-identity with a local batch run")
	out := fs.String("out", "", "write the serve report to this file (default stdout)")
	merge := fs.String("merge", "", "merge the serve report into this benchjson baseline under \"serve\"")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*addr == "") == (*spawn == "") {
		fmt.Fprintln(stderr, "depload: set exactly one of -addr or -spawn")
		return 2
	}
	if _, ok := wire.ClassIndex(*class); !ok {
		fmt.Fprintf(stderr, "depload: unknown budget class %q\n", *class)
		return 2
	}

	base := "http://" + *addr
	if *spawn != "" {
		srv, baseURL, err := spawnServer(*spawn, *spawnFlags, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "depload: %v\n", err)
			return 1
		}
		base = baseURL
		defer func() {
			if err := srv.stop(); err != nil {
				fmt.Fprintf(stderr, "depload: spawned server: %v\n", err)
			}
		}()
	}

	pool, err := requestPool(*class, *largeNests)
	if err != nil {
		fmt.Fprintf(stderr, "depload: %v\n", err)
		return 1
	}

	report := &serveReport{SchemaVersion: wire.SchemaVersion, RatePerSec: *rate}
	fail := false

	if *duration > 0 && *rate > 0 {
		report.Rated = ratedPhase(base, pool, *rate, *duration, *concurrency)
		fmt.Fprintf(stdout, "depload: rated %v at %.0f req/s: %d requests, p50 %.1fms p99 %.1fms, %.1f%% degraded, %d shed, %d 5xx\n",
			*duration, *rate, report.Rated.Requests, report.Rated.P50Ms, report.Rated.P99Ms,
			100*report.Rated.DegradedRate, report.Rated.Shed, report.Rated.Errors5xx)
		fail = fail || report.Rated.Errors5xx > 0 || report.Rated.OtherErrors > 0
	}
	if *burst > 0 {
		report.Burst = burstPhase(base, pool, *burst)
		fmt.Fprintf(stdout, "depload: burst %d: %d ok, %.1f%% degraded, %d shed, %d 5xx\n",
			*burst, report.Burst.OK, 100*report.Burst.DegradedRate, report.Burst.Shed, report.Burst.Errors5xx)
		fail = fail || report.Burst.Errors5xx > 0 || report.Burst.OtherErrors > 0
	}
	if *check {
		same, err := checkIdentity(base)
		if err != nil {
			fmt.Fprintf(stderr, "depload: check: %v\n", err)
			return 1
		}
		report.ByteIdentical = &same
		if same {
			fmt.Fprintln(stdout, "depload: served suite verdicts byte-identical to the batch run")
		} else {
			fmt.Fprintln(stderr, "depload: served suite verdicts DIVERGE from the batch run")
			fail = true
		}
	}

	if st, err := getStatsz(base); err != nil {
		fmt.Fprintf(stderr, "depload: %v\n", err)
	} else {
		report.Statsz = st
		fmt.Fprintf(stdout, "depload: server coalescing: %d batches (max %d), %d coalesced jobs, %d fp-deduped, %d cross-request memo hits, %d cancelled, %d evictions\n",
			st.Batches, st.MaxBatch, st.CoalescedJobs, st.FingerprintDeduped, st.CrossRequestMemoHits, st.Cancelled, st.MemoEvictions)
	}

	if err := emit(report, *out, *merge, stdout); err != nil {
		fmt.Fprintf(stderr, "depload: %v\n", err)
		return 1
	}
	if fail {
		return 1
	}
	return 0
}

// requestPool builds the replay population: one request per suite program,
// one whole-suite request, the FM-hard adversarial set, and optionally one
// LargeCorpus request.
func requestPool(class string, largeNests int) ([][]byte, error) {
	var reqs []wire.AnalyzeRequest
	var suite []wire.UnitSource
	for _, spec := range workload.Programs() {
		us := wire.UnitSource{Name: spec.Name, Source: workload.Source(spec, false)}
		suite = append(suite, us)
		reqs = append(reqs, wire.AnalyzeRequest{Units: []wire.UnitSource{us}, BudgetClass: class})
	}
	reqs = append(reqs, wire.AnalyzeRequest{Units: suite, BudgetClass: class})
	var fmhard []wire.UnitSource
	for _, spec := range workload.FMHardPrograms() {
		fmhard = append(fmhard, wire.UnitSource{Name: spec.Name, Source: workload.FMHardSource(spec)})
	}
	reqs = append(reqs, wire.AnalyzeRequest{Units: fmhard, BudgetClass: class})
	if largeNests > 0 {
		var large []wire.UnitSource
		for _, spec := range workload.LargeCorpus(largeNests) {
			large = append(large, wire.UnitSource{Name: spec.Name, Source: workload.Source(spec, false)})
		}
		reqs = append(reqs, wire.AnalyzeRequest{Units: large, BudgetClass: class})
	}
	bodies := make([][]byte, len(reqs))
	for i := range reqs {
		b, err := json.Marshal(&reqs[i])
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	return bodies, nil
}

// outcome classifies one response into the phase counters.
type outcome struct {
	status   int
	degraded bool
	latency  time.Duration
}

func post(base string, body []byte) outcome {
	start := time.Now()
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		return outcome{status: -1, latency: time.Since(start)}
	}
	defer resp.Body.Close()
	o := outcome{status: resp.StatusCode}
	if resp.StatusCode == http.StatusOK {
		var ar struct {
			DegradedByLoad bool `json:"degradedByLoad"`
		}
		json.NewDecoder(resp.Body).Decode(&ar)
		o.degraded = ar.DegradedByLoad
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	o.latency = time.Since(start)
	return o
}

func summarize(outcomes []outcome) *phaseReport {
	r := &phaseReport{Requests: len(outcomes)}
	var latencies []time.Duration
	for _, o := range outcomes {
		switch {
		case o.status == http.StatusOK:
			r.OK++
			if o.degraded {
				r.Degraded++
			}
			latencies = append(latencies, o.latency)
		case o.status == http.StatusTooManyRequests:
			r.Shed++
		case o.status >= 500:
			r.Errors5xx++
		default:
			r.OtherErrors++
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	r.P50Ms = percentileMs(latencies, 0.50)
	r.P99Ms = percentileMs(latencies, 0.99)
	if r.OK > 0 {
		r.DegradedRate = float64(r.Degraded) / float64(r.OK)
	}
	if r.Requests > 0 {
		r.ShedRate = float64(r.Shed) / float64(r.Requests)
	}
	return r
}

func percentileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// ratedPhase fires requests at a fixed rate with bounded concurrency,
// cycling through the pool round-robin.
func ratedPhase(base string, pool [][]byte, rate float64, duration time.Duration, concurrency int) *phaseReport {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	if concurrency < 1 {
		concurrency = 1
	}
	ticks := make(chan int)
	var mu sync.Mutex
	var outcomes []outcome
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ticks {
				o := post(base, pool[i%len(pool)])
				mu.Lock()
				outcomes = append(outcomes, o)
				mu.Unlock()
			}
		}()
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	stop := time.After(duration)
	i := 0
loop:
	for {
		select {
		case <-t.C:
			select {
			case ticks <- i: // a worker is free
				i++
			default: // all workers busy: the offered load is dropped, not queued
			}
		case <-stop:
			break loop
		}
	}
	close(ticks)
	wg.Wait()
	return summarize(outcomes)
}

// burstPhase fires n simultaneous requests — the overload probe. Every
// response must be a 200 (possibly degraded) or a shed 429, never a 5xx.
func burstPhase(base string, pool [][]byte, n int) *phaseReport {
	outcomes := make([]outcome, n)
	var wg sync.WaitGroup
	var idx atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j := int(idx.Add(1) - 1)
			outcomes[i] = post(base, pool[j%len(pool)])
		}(i)
	}
	wg.Wait()
	return summarize(outcomes)
}

// checkIdentity replays the suite once at the exhaustive class and compares
// the served canonical bytes to a local batch corpus run under depserve's
// default options.
func checkIdentity(base string) (bool, error) {
	var units []wire.UnitSource
	var mem corpus.Mem
	for _, spec := range workload.Programs() {
		src := workload.Source(spec, false)
		units = append(units, wire.UnitSource{Name: spec.Name, Source: src})
		u, err := corpus.FromSource(spec.Name, src)
		if err != nil {
			return false, err
		}
		mem = append(mem, u)
	}
	body, err := json.Marshal(wire.AnalyzeRequest{Units: units})
	if err != nil {
		return false, err
	}
	resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return false, fmt.Errorf("suite replay: %d: %s", resp.StatusCode, msg)
	}
	var ar wire.AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		return false, err
	}

	// The batch reference: depserve's own default options (see
	// cmd/depserve flags) without any store.
	opts := core.Options{
		DirectionVectors: true, PruneUnused: true, PruneDistance: true,
		Memoize: true, ImprovedMemo: true,
	}
	d := corpus.NewDriver(opts, 1)
	urs, err := d.RunAll(context.Background(), mem)
	if err != nil {
		return false, err
	}
	var want []byte
	for i := range urs {
		want = corpus.AppendCanonical(want, &urs[i])
	}
	return bytes.Equal(wire.Canonical(&ar), want), nil
}

// spawnedServer is a depserve child process.
type spawnedServer struct {
	cmd  *exec.Cmd
	done chan error
}

// spawnServer boots a depserve binary on a free port and parses the bound
// address from its "listening on" line.
func spawnServer(bin, extraFlags string, stderr io.Writer) (*spawnedServer, string, error) {
	args := []string{"-addr", "127.0.0.1:0"}
	if extraFlags != "" {
		args = append(args, strings.Fields(extraFlags)...)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stderr = stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "depserve: listening on "); ok {
			addr = strings.TrimSpace(rest)
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, "", fmt.Errorf("spawned server at %s never reported its address", bin)
	}
	s := &spawnedServer{cmd: cmd, done: make(chan error, 1)}
	go func() {
		// Keep draining stdout so the child never blocks on a full pipe.
		for sc.Scan() {
		}
		s.done <- cmd.Wait()
	}()
	return s, "http://" + addr, nil
}

// stop drains the spawned server with SIGTERM and requires a clean exit —
// the real-process graceful-shutdown check.
func (s *spawnedServer) stop() error {
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-s.done:
		return err
	case <-time.After(60 * time.Second):
		s.cmd.Process.Kill()
		return fmt.Errorf("did not drain within 60s after SIGTERM")
	}
}

// emit writes the report to -out (or stdout) and merges it into a
// benchjson baseline when -merge is set.
func emit(report *serveReport, out, merge string, stdout io.Writer) error {
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out != "" {
		if err := os.WriteFile(out, buf, 0o644); err != nil {
			return err
		}
	} else if merge == "" {
		stdout.Write(buf)
	}
	if merge != "" {
		raw, err := os.ReadFile(merge)
		if err != nil {
			return err
		}
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %v", merge, err)
		}
		doc["serve"] = report
		merged, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(merge, append(merged, '\n'), 0o644)
	}
	return nil
}
