// Quickstart: analyze the two loops from the paper's introduction and print
// their dependence verdicts with direction and distance vectors.
package main

import (
	"fmt"
	"log"

	"exactdep"
)

func main() {
	// The paper's first intro loop: reads and writes never overlap, so all
	// iterations can run concurrently.
	parallelSrc := `
for i = 1 to 10
  a[i] = a[i+10] + 3
end
`
	// The second: each iteration reads the previous iteration's write,
	// forcing sequential execution.
	serialSrc := `
for i = 1 to 10
  a[i+1] = a[i] + 3
end
`
	opts := exactdep.Options{
		DirectionVectors: true,
		PruneUnused:      true,
		PruneDistance:    true,
	}

	for _, src := range []string{parallelSrc, serialSrc} {
		report, err := exactdep.AnalyzeSource(src, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(src)
		for _, r := range report.Results {
			// skip the write-vs-itself output dependence for brevity
			if r.Pair.A.Ref.Kind == r.Pair.B.Ref.Kind {
				continue
			}
			fmt.Printf("  %s vs %s: %s", r.Pair.A.Ref, r.Pair.B.Ref, r.Outcome)
			for _, v := range r.Vectors {
				fmt.Printf("  direction %s", v)
			}
			for _, d := range r.Distances {
				fmt.Printf("  distance %d", d.Value)
			}
			fmt.Println()
		}
		fmt.Print("  ", exactdep.ParallelizeResults(report.Unit, report.Results))
		fmt.Println()
	}
}
