// Paperexamples: every worked example from the paper's text, section by
// section, run through the analyzer — a reproduction notebook. Each entry
// states what the paper says should happen; the output shows the analyzer
// agreeing.
package main

import (
	"fmt"
	"log"

	"exactdep"
)

type example struct {
	section string
	claim   string
	src     string
	flow    bool // report only write-vs-read pairs
}

var examples = []example{
	{"§1", "all iterations can execute concurrently (write range and read range disjoint)", `
for i = 1 to 10
  a[i] = a[i+10] + 3
end
`, true},
	{"§1", "each read refers to the previous iteration's write, forcing sequential execution", `
for i = 1 to 10
  a[i+1] = a[i] + 3
end
`, true},
	{"§3.1", "transformed to one free variable; bounds conflict proves independence", `
for i = 1 to 10
  a[i+10] = a[i]
end
`, true},
	{"§3.2", "coupled subscripts decided exactly by SVPC after GCD preprocessing: independent", `
for i = 1 to 10
  for j = 1 to 10
    a[i][j] = a[j+10][i+9]
  end
end
`, true},
	{"§5", "programs (a) and (b) collapse to the same case under improved memoization", `
for i = 1 to 10
  for j = 1 to 10
    a[i+10] = a[i] + 3
  end
end
for i = 1 to 10
  for j = 1 to 10
    a[j+10] = a[j] + 3
  end
end
`, true},
	{"§6", "dependent with direction '<' only (distance 1)", `
for i = 1 to 10
  a[i+1] = a[i] + 7
end
`, true},
	{"§6", "dependent with direction '=' only — the loop still parallelizes", `
for i = 1 to 10
  a[i] = a[i] + 7
end
`, true},
	{"§6", "dependent with two direction vectors", `
for i = 0 to 10
  for j = 0 to 10
    a[i][j] = a[2*i][j] + 7
  end
end
`, true},
	{"§6", "distance known exactly from GCD: i' - i = 3", `
for i = 0 to 10
  a[i] = a[i-3] + 7
end
`, true},
	{"§6", "unused variable i keeps direction '*'", `
for i = 1 to 10
  for j = 1 to 10
    a[j] = a[j+1]
  end
end
`, true},
	{"§8", "prepass rewrites iz and n into affine subscripts: a[2i+100] vs a[2i+201]", `
n = 100
iz = 0
for i = 1 to 10
  iz = iz + 2
  a[iz+n] = a[iz+2*n+1] + 3
end
`, true},
	{"§8", "symbolic n analyzed without loss of exactness", `
read(n)
for i = 1 to 10
  a[i+n] = a[i+2*n+1] + 3
end
`, true},
}

func main() {
	opts := exactdep.Options{
		Memoize: true, ImprovedMemo: true,
		DirectionVectors: true, PruneUnused: true, PruneDistance: true,
	}
	for _, ex := range examples {
		fmt.Printf("%s — paper: %s\n", ex.section, ex.claim)
		report, err := exactdep.AnalyzeSource(ex.src, opts)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range report.Results {
			if ex.flow && !(r.Pair.A.Ref.Kind == exactdep.Write && r.Pair.B.Ref.Kind == exactdep.Read) {
				continue
			}
			fmt.Printf("  %s vs %s: %s", r.Pair.A.Ref, r.Pair.B.Ref, r.Outcome)
			if r.Outcome == exactdep.Dependent {
				for _, v := range exactdep.MergeVectors(r.Vectors) {
					fmt.Printf("  %s", v)
				}
				for _, d := range r.Distances {
					fmt.Printf("  dist[%d]=%d", d.Level, d.Value)
				}
			}
			if r.DecidedBy == exactdep.ByCache {
				fmt.Printf("  (memoized)")
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
