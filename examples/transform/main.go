// Transform: use the analyzer's direction vectors to answer the classic
// loop-transformation legality questions — can we interchange, reverse, or
// distribute these loops? — and to build the statement-level dependence
// graph with its π-blocks.
package main

import (
	"fmt"
	"log"

	"exactdep"
)

func main() {
	// A wavefront recurrence: dependences (<, =) via w[i-1][j] and (=, <)
	// via w[i][j-1]. Neither loop parallelizes directly; interchange is
	// legal but does not help; skewing would (not implemented here — the
	// point is that the legality answers come straight from the vectors).
	wavefront := `
for i = 2 to 100
  for j = 2 to 100
    w[i][j] = w[i-1][j] + w[i][j-1]
  end
end
`
	// An interchange-hostile kernel: a[i][j] = a[i-1][j+1] has the single
	// vector (<, >); interchanging would reverse execution order of the
	// dependent iterations.
	hostile := `
for i = 2 to 100
  for j = 1 to 99
    a[i][j] = a[i-1][j+1]
  end
end
`
	// An interchange-friendly kernel: the dependence (=, <) lets the j
	// loop move outward, exposing an outer parallel loop.
	friendly := `
for i = 1 to 100
  for j = 2 to 100
    b[i][j] = b[i][j-1]
  end
end
`
	for _, ex := range []struct{ name, src string }{
		{"wavefront", wavefront},
		{"interchange-hostile", hostile},
		{"interchange-friendly", friendly},
	} {
		fmt.Printf("== %s ==\n", ex.name)
		report, err := exactdep.AnalyzeSource(ex.src, exactdep.Options{
			DirectionVectors: true, PruneUnused: true, PruneDistance: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		var vectors []exactdep.DirectionVector
		for _, r := range report.Results {
			if r.Outcome != exactdep.Dependent {
				continue
			}
			for _, v := range r.Vectors {
				nv := exactdep.NormalizeVector(v)
				vectors = append(vectors, nv)
				fmt.Printf("  dependence %s vs %s: %s\n", r.Pair.A.Ref, r.Pair.B.Ref, nv)
			}
		}
		legal, err := exactdep.InterchangeLegal(vectors, []int{1, 0})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  interchange (i<->j) legal: %v\n", legal)
		fmt.Printf("  outer loop parallel: %v, inner loop parallel: %v\n",
			exactdep.ParallelizableLevel(vectors, 0),
			exactdep.ParallelizableLevel(vectors, 1))
		if perm, ok := exactdep.InterchangeToParallelize(vectors); ok {
			fmt.Printf("  permutation %v exposes an outer parallel loop\n", perm)
		} else {
			fmt.Printf("  no interchange exposes an outer parallel loop\n")
		}
		g := exactdep.BuildDepGraph(report.Unit, report.Results)
		fmt.Printf("  dependence graph: %d edges, cycle=%v\n", len(g.Edges), g.HasCycle())
		fmt.Println()
	}

	// Loop distribution: a recurrence π-block plus an independent consumer.
	distribute := `
for i = 2 to 100
  a[i] = b[i-1]
  b[i] = a[i]
  c[i] = a[i-1] + 1
end
`
	fmt.Println("== distribution ==")
	report, err := exactdep.AnalyzeSource(distribute, exactdep.Options{
		DirectionVectors: true, PruneUnused: true, PruneDistance: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	g := exactdep.BuildDepGraph(report.Unit, report.Results)
	fmt.Print(g)
	fmt.Printf("pi-blocks (reverse topological): %v\n", g.SCCs())
	fmt.Printf("fully distributable: %v\n", !g.HasCycle())
	prog, err := exactdep.Parse(distribute)
	if err != nil {
		log.Fatal(err)
	}
	distProg, err := exactdep.DistributeProgram(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("distributed form:")
	fmt.Print(distProg)
	fmt.Println()

	// Fusion: the inverse question. The producer/consumer pair below fuses
	// (the value flows within an iteration); the read-ahead pair does not.
	fmt.Println("== fusion ==")
	fusable := `
for i = 1 to 100
  p[i] = i
end
for i = 1 to 100
  q[i] = p[i] + 1
end
`
	hostileFuse := `
for i = 1 to 100
  p[i] = i
end
for i = 1 to 100
  q[i] = p[i+1] + 1
end
`
	for _, src := range []string{fusable, hostileFuse} {
		fp, err := exactdep.Parse(src)
		if err != nil {
			log.Fatal(err)
		}
		l1 := fp.Stmts[0].(*exactdep.For)
		l2 := fp.Stmts[1].(*exactdep.For)
		if fused, ok, reason := exactdep.FuseLoops(l1, l2); ok {
			fmt.Printf("fused:\n%s\n", fused)
		} else {
			fmt.Printf("not fusable: %s\n", reason)
		}
	}

	// Wavefront skewing: the recurrence w[i][j] = w[i-1][j] + w[i][j-1] has
	// distance vectors (1,0) and (0,1); no loop is parallel, but skewing
	// the inner loop by 1 and interchanging exposes an inner parallel loop
	// — the textbook wavefront schedule, driven entirely by the analyzer's
	// exact distances.
	fmt.Println("== wavefront skewing ==")
	report, err = exactdep.AnalyzeSource(wavefront, exactdep.Options{
		DirectionVectors: true, PruneUnused: true, PruneDistance: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	var dists []exactdep.DistanceVec
	for _, r := range report.Results {
		if r.Outcome != exactdep.Dependent {
			continue
		}
		if d, ok := exactdep.FullDistanceVector(r); ok {
			dists = append(dists, d)
			fmt.Printf("  distance %s from %s vs %s\n", d, r.Pair.A.Ref, r.Pair.B.Ref)
		}
	}
	if f, ok := exactdep.WavefrontSkew(dists, 4); ok {
		skewed, _ := exactdep.Skew(dists, 0, 1, f)
		swapped, _ := exactdep.PermuteDistances(skewed, []int{1, 0})
		par := exactdep.ParallelLevels(swapped, 2)
		fmt.Printf("  skew inner by %d, interchange: distances %v, parallel levels %v\n",
			f, swapped, par)
	} else {
		fmt.Println("  no skew factor found")
	}
}
