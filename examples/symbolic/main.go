// Symbolic: demonstrate the paper's §8 — loop-invariant unknowns read from
// input enter the dependence system as unbounded integer variables with no
// loss of exactness. The prepass (constant propagation, induction-variable
// substitution) first normalizes subscripts so more references qualify.
package main

import (
	"fmt"
	"log"

	"exactdep"
)

func main() {
	// §8's prepass example: the optimizer rewrites iz+n into affine form.
	prepass := `
n = 100
iz = 0
for i = 1 to 10
  iz = iz + 2
  a[iz+n] = a[iz+2*n+1] + 3
end
`
	// §8's symbolic example: n is unknown but loop-invariant. The analyzer
	// asks: do integers i, i', n exist with i+n = i'+2n+1 in bounds? (yes)
	symbolic := `
read(n)
for i = 1 to 10
  a[i+n] = a[i+2*n+1] + 3
end
`
	// With even coefficients the symbol cannot fix the parity mismatch:
	// exact independence, for every possible n.
	parity := `
read(n)
for i = 1 to 10
  a[2*i+2*n] = a[2*i+2*n+1]
end
`
	// A symbolic loop bound: the i ≤ n constraint couples i with n, which
	// moves the case from the SVPC test to the Acyclic test — still exact.
	symbolicBound := `
read(n)
for i = 1 to n
  a[i+1] = a[i]
end
`
	for _, ex := range []struct{ name, src string }{
		{"prepass normalization (iz = iz+2, n = 100)", prepass},
		{"symbolic offset (read n)", symbolic},
		{"symbolic parity (independent for every n)", parity},
		{"symbolic bound (for i = 1 to n)", symbolicBound},
	} {
		report, err := exactdep.AnalyzeSource(ex.src, exactdep.Options{
			DirectionVectors: true, PruneUnused: true, PruneDistance: true,
		})
		if err != nil {
			log.Fatalf("%s: %v", ex.name, err)
		}
		fmt.Printf("== %s ==\n", ex.name)
		for _, r := range report.Results {
			if r.Pair.A.Ref.Kind == r.Pair.B.Ref.Kind {
				continue
			}
			fmt.Printf("  %s vs %s: %s", r.Pair.A.Ref, r.Pair.B.Ref, r.Outcome)
			if r.Exact {
				fmt.Printf(" (exact, by %s", r.DecidedBy)
				if r.DecidedBy == exactdep.ByTest {
					fmt.Printf(": %s", r.Kind)
				}
				fmt.Printf(")")
			}
			for _, v := range r.Vectors {
				fmt.Printf("  %s", v)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
