// Parallelize: run the analyzer over classic numerical kernels — matrix
// multiply, a 2-D Jacobi stencil, a Gauss–Seidel sweep, and an LU-style
// triangular update — and report which loops of each kernel can execute
// their iterations in parallel. This is the compiler decision the paper's
// dependence tests exist to make.
package main

import (
	"fmt"
	"log"

	"exactdep"
)

var kernels = []struct {
	name string
	src  string
}{
	{"matmul (c = a*b)", `
for i = 1 to 500
  for j = 1 to 500
    for k = 1 to 500
      c[i][j] = c[i][j] + a[i][k] * b[k][j]
    end
  end
end
`},
	{"jacobi stencil (new from old)", `
for i = 2 to 499
  for j = 2 to 499
    new[i][j] = old[i-1][j] + old[i+1][j] + old[i][j-1] + old[i][j+1]
  end
end
`},
	{"gauss-seidel sweep (in place)", `
for i = 2 to 499
  for j = 2 to 499
    u[i][j] = u[i-1][j] + u[i+1][j] + u[i][j-1] + u[i][j+1]
  end
end
`},
	{"triangular update (LU-like)", `
for k = 1 to 100
  for i = k+1 to 100
    for j = k+1 to 100
      m[i][j] = m[i][j] - m[i][k] * m[k][j]
    end
  end
end
`},
	{"wavefront recurrence", `
for i = 2 to 100
  for j = 2 to 100
    w[i][j] = w[i-1][j] + w[i][j-1]
  end
end
`},
}

func main() {
	opts := exactdep.Options{
		Memoize:          true,
		ImprovedMemo:     true,
		DirectionVectors: true,
		PruneUnused:      true,
		PruneDistance:    true,
	}
	for _, k := range kernels {
		prog, err := exactdep.Parse(k.src)
		if err != nil {
			log.Fatalf("%s: %v", k.name, err)
		}
		unit := exactdep.Lower(prog)
		rep, err := exactdep.Parallelize(unit, opts)
		if err != nil {
			log.Fatalf("%s: %v", k.name, err)
		}
		fmt.Printf("== %s ==\n", k.name)
		fmt.Print(rep)
		fmt.Println("annotated:")
		fmt.Print(exactdep.AnnotateSourceUnit(prog, rep, unit))
		fmt.Println()
	}
}
