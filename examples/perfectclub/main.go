// Perfectclub: run the complete evaluation — every table, the figure, and
// the exact-vs-inexact comparison — on the synthetic PERFECT Club suite,
// with the paper's reported numbers printed alongside for comparison.
// Equivalent to `perfect -all -paper`.
package main

import (
	"fmt"
	"log"
	"os"

	"exactdep/internal/harness"
)

func main() {
	h := harness.New(os.Stdout, true)
	for n := 1; n <= 7; n++ {
		fmt.Printf("──────────────────────────────────────────────\n")
		if err := h.Table(n); err != nil {
			log.Fatalf("table %d: %v", n, err)
		}
	}
	fmt.Printf("──────────────────────────────────────────────\n")
	if err := h.Figure(1); err != nil {
		log.Fatalf("figure 1: %v", err)
	}
	fmt.Printf("──────────────────────────────────────────────\n")
	if err := h.Compare(); err != nil {
		log.Fatalf("compare: %v", err)
	}
}
