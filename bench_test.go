package exactdep_test

// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus the §7 per-test microbenchmarks. Absolute times differ from the
// paper's 1991 MIPS R2000 by orders of magnitude; the reproduced claims are
// the shapes: per-test cost ordering SVPC < Acyclic < Loop Residue <
// Fourier–Motzkin, memoization collapsing 5,679 tests to ~332, pruning
// collapsing ~12.5k direction tests to ~1k, and dependence testing being a
// tiny fraction of compilation.

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"exactdep"
	"exactdep/internal/core"
	"exactdep/internal/corpus"
	"exactdep/internal/dtest"
	"exactdep/internal/harness"
	"exactdep/internal/ir"
	"exactdep/internal/refs"
	"exactdep/internal/system"
	"exactdep/internal/workload"
)

// suite runs the full 13-program workload under the given configuration.
func suite(b *testing.B, opts core.Options, symbolic bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for _, s := range workload.Programs() {
			if _, err := workload.Analyze(s, opts, symbolic); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable1Suite: every test call, no memoization (Table 1).
func BenchmarkTable1Suite(b *testing.B) {
	suite(b, core.Options{}, false)
}

// BenchmarkTable2Memo: both memoization schemes (Table 2).
func BenchmarkTable2Memo(b *testing.B) {
	b.Run("simple", func(b *testing.B) {
		suite(b, core.Options{Memoize: true}, false)
	})
	b.Run("improved", func(b *testing.B) {
		suite(b, core.Options{Memoize: true, ImprovedMemo: true}, false)
	})
}

// BenchmarkTable3Unique: unique cases only (Table 3).
func BenchmarkTable3Unique(b *testing.B) {
	suite(b, core.Options{Memoize: true, ImprovedMemo: true}, false)
}

// BenchmarkTable4DirVecs: direction vectors without pruning (Table 4).
func BenchmarkTable4DirVecs(b *testing.B) {
	suite(b, core.Options{Memoize: true, ImprovedMemo: true, DirectionVectors: true}, false)
}

// BenchmarkTable5Pruned: direction vectors with both prunings (Table 5).
func BenchmarkTable5Pruned(b *testing.B) {
	suite(b, core.Options{Memoize: true, ImprovedMemo: true, DirectionVectors: true,
		PruneUnused: true, PruneDistance: true}, false)
}

// BenchmarkTable6Cost: the production configuration timed per program
// (Table 6's dependence-test cost column).
func BenchmarkTable6Cost(b *testing.B) {
	opts := core.Options{Memoize: true, ImprovedMemo: true, DirectionVectors: true,
		PruneUnused: true, PruneDistance: true}
	for _, s := range workload.Programs() {
		cands, err := workload.Candidates(s, false)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(s.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := core.New(opts)
				for _, c := range cands {
					if _, err := a.AnalyzeCandidate(c); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkTable7Symbolic: Table 5's configuration plus symbolic cases.
func BenchmarkTable7Symbolic(b *testing.B) {
	suite(b, core.Options{Memoize: true, ImprovedMemo: true, DirectionVectors: true,
		PruneUnused: true, PruneDistance: true}, true)
}

// BenchmarkConcurrentSuite: the concurrent driver (worker pool + sharded
// memoization, core.Analyzer.AnalyzeAll) over the whole suite's candidate
// pairs, serial vs fan-out. Pairs are independent up to the shared cache,
// so wall-clock should drop with workers on multi-core hardware while the
// results stay byte-identical — which is asserted here before timing.
func BenchmarkConcurrentSuite(b *testing.B) {
	opts := core.Options{Memoize: true, ImprovedMemo: true, DirectionVectors: true,
		PruneUnused: true, PruneDistance: true}
	var all []refs.Candidate
	for _, s := range workload.Programs() {
		cs, err := workload.Candidates(s, false)
		if err != nil {
			b.Fatal(err)
		}
		all = append(all, cs...)
	}

	serial := core.New(opts)
	want, err := serial.AnalyzeAll(all, 1)
	if err != nil {
		b.Fatal(err)
	}
	workerCounts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, w := range workerCounts[1:] {
		par := core.New(opts)
		got, err := par.AnalyzeAll(all, w)
		if err != nil {
			b.Fatal(err)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
			b.Fatalf("results with %d workers differ from the 1-worker run", w)
		}
	}

	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := core.New(opts)
				if _, err := a.AnalyzeAll(all, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzeAllMemoHot: the steady-state memo path this PR optimizes —
// a pre-warmed analyzer re-running the whole suite, so every non-constant
// pair is a cache hit (encode, L1/L2 probe, expand). Run with -benchmem:
// per-candidate allocations should be amortized noise (the result slice),
// not per-hit garbage.
func BenchmarkAnalyzeAllMemoHot(b *testing.B) {
	opts := core.Options{Memoize: true, ImprovedMemo: true}
	var all []refs.Candidate
	for _, s := range workload.Programs() {
		cs, err := workload.Candidates(s, false)
		if err != nil {
			b.Fatal(err)
		}
		all = append(all, cs...)
	}
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			a := core.New(opts)
			if _, err := a.AnalyzeAll(all, w); err != nil { // warm the tables
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.AnalyzeAll(all, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzeAllLargeCorpus: the concurrent driver on a very large
// synthetic corpus (thousands of nests, workload.LargeCorpus) with a cold
// analyzer per iteration, so the measured path is the contended one — cache
// misses, batched sharded-table inserts, and singleflight dedup — rather
// than the memo-hot replay BenchmarkAnalyzeAllMemoHot isolates. Worker
// counts 1/2/4 (plus GOMAXPROCS when larger) chart the scaling curve; on a
// single-CPU host the interesting number is how close fan-out stays to
// serial (the coordination overhead), not speedup.
func BenchmarkAnalyzeAllLargeCorpus(b *testing.B) {
	opts := core.Options{Memoize: true, ImprovedMemo: true}
	all, err := workload.LargeCorpusCandidates(4096)
	if err != nil {
		b.Fatal(err)
	}
	workerCounts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a := core.New(opts)
				if _, err := a.AnalyzeAll(all, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCorpusIncremental: the incremental corpus driver on the
// 4096-nest LargeCorpus — cold (empty store: fingerprint, solve, and fill)
// versus a 1%-dirty warm re-run (41 mutated nests re-solved, 4055 served
// from the filled store). Each warm iteration applies a distinct edit
// (delta is a running counter), so the store accumulates across iterations
// the way a live session's does and every iteration really is 1% dirty —
// the mutation itself is timed, because an IDE/CI re-analysis pays it too.
// The warm/cold ratio is the payoff of the corpus layer and is gated in
// benchcmp-gate.
func BenchmarkCorpusIncremental(b *testing.B) {
	opts := core.Options{Memoize: true, ImprovedMemo: true}
	units, err := workload.LargeCorpusUnits(4096)
	if err != nil {
		b.Fatal(err)
	}
	dirtyIdx := make([]int, 41)
	for i := range dirtyIdx {
		dirtyIdx[i] = (i*97 + 5) % len(units)
	}
	seed := corpus.NewDriver(opts, 1)
	if err := seed.SetStore(corpus.NewStore(opts)); err != nil {
		b.Fatal(err)
	}
	if err := seed.Run(context.Background(), units, nil); err != nil {
		b.Fatal(err)
	}
	filled := seed.Store()
	var deltaSeq int64 // distinct per warm iteration, across sub-benchmarks

	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("cold/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := corpus.NewDriver(opts, w)
				if err := d.SetStore(corpus.NewStore(opts)); err != nil {
					b.Fatal(err)
				}
				if err := d.Run(context.Background(), units, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("warm_1pct/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				deltaSeq++
				dirty := workload.MutateNests(units, dirtyIdx, deltaSeq)
				d := corpus.NewDriver(opts, w)
				if err := d.SetStore(filled); err != nil {
					b.Fatal(err)
				}
				if err := d.Run(context.Background(), dirty, nil); err != nil {
					b.Fatal(err)
				}
				if d.Stats.UnitsSolved != 41 {
					b.Fatalf("warm run re-solved %d units, want 41", d.Stats.UnitsSolved)
				}
			}
		})
	}
}

// writeLargeCorpusDir renders the 4096-nest LargeCorpus as one .loop file
// per program (32 files) under a temp dir — the disk-backed twin of
// LargeCorpusUnits for the pipeline benchmarks, where the front end pays
// read + parse per run the way an IDE/CI re-analysis does.
func writeLargeCorpusDir(b *testing.B, nests int) string {
	b.Helper()
	root := b.TempDir()
	for _, s := range workload.LargeCorpus(nests) {
		path := filepath.Join(root, s.Name+".loop")
		if err := os.WriteFile(path, []byte(workload.Source(s, false)), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	return root
}

// BenchmarkCorpusPipeline: the end-to-end pipelined corpus path on the
// 4096-nest LargeCorpus, cold (empty store: load, fingerprint, solve, fill)
// and warm (filled store: the front end is the whole run), from both an
// in-memory source (units pre-built, fingerprints cached after the first
// pass) and a Dir source (32 files re-read and re-parsed every run). Worker
// counts 1/2/4/8 chart the pipeline's scaling; the warm Dir series is the
// headline — serial parse+fingerprint used to dominate the incremental win,
// and the parallel front end is what moves it. Canonical-byte identity
// across these worker counts is pinned by TestPipelineCanonicalIdentity.
func BenchmarkCorpusPipeline(b *testing.B) {
	opts := core.Options{Memoize: true, ImprovedMemo: true}
	const nests = 4096
	units, err := workload.LargeCorpusUnits(nests)
	if err != nil {
		b.Fatal(err)
	}
	sources := []struct {
		name string
		src  corpus.Source
	}{
		{"mem", units},
		{"dir", corpus.Dir(writeLargeCorpusDir(b, nests))},
	}
	for _, sc := range sources {
		// Seed the warm store once per source (unit granularity differs:
		// per-nest for mem, per-file for dir).
		seed := corpus.NewDriver(opts, 1)
		if err := seed.SetStore(corpus.NewStore(opts)); err != nil {
			b.Fatal(err)
		}
		if err := seed.Run(context.Background(), sc.src, nil); err != nil {
			b.Fatal(err)
		}
		filled := seed.Store()

		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("cold/%s/workers=%d", sc.name, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d := corpus.NewDriver(opts, w)
					if err := d.SetStore(corpus.NewStore(opts)); err != nil {
						b.Fatal(err)
					}
					if err := d.Run(context.Background(), sc.src, nil); err != nil {
						b.Fatal(err)
					}
					if d.Stats.UnitsReused != 0 {
						b.Fatalf("cold run reused %d units", d.Stats.UnitsReused)
					}
				}
			})
			b.Run(fmt.Sprintf("warm/%s/workers=%d", sc.name, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d := corpus.NewDriver(opts, w)
					if err := d.SetStore(filled); err != nil {
						b.Fatal(err)
					}
					if err := d.Run(context.Background(), sc.src, nil); err != nil {
						b.Fatal(err)
					}
					if d.Stats.UnitsSolved != 0 {
						b.Fatalf("warm run re-solved %d units", d.Stats.UnitsSolved)
					}
				}
			})
		}
	}
}

// BenchmarkFigure1Residue: the §3.4 residue-graph construction and
// negative-cycle check.
func BenchmarkFigure1Residue(b *testing.B) {
	h := harness.New(io.Discard, false)
	for i := 0; i < b.N; i++ {
		if err := h.Figure(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSection7Baseline: the inexact baseline over the whole suite, for
// the accuracy/cost comparison of §7.
func BenchmarkSection7Baseline(b *testing.B) {
	var cands []refs.Candidate
	for _, s := range workload.Programs() {
		cs, err := workload.Candidates(s, false)
		if err != nil {
			b.Fatal(err)
		}
		cands = append(cands, cs...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := harness.New(io.Discard, false)
		_ = h
		_ = cands
		if err := h.Compare(); err != nil {
			b.Fatal(err)
		}
	}
}

// perTestProblem builds a representative t-space system that the named test
// decides, mirroring §7's per-test timing inputs.
func perTestProblem(b *testing.B, kind dtest.Kind) *system.TSystem {
	b.Helper()
	var src string
	switch kind {
	case dtest.KindSVPC:
		src = "for i = 1 to 100\n  a[i+3] = a[i]\nend\n"
	case dtest.KindAcyclic:
		src = "for i = 1 to 100\n  for j = i to 100\n    a[j+1] = a[j]\n  end\nend\n"
	case dtest.KindLoopResidue:
		src = "for i = 1 to 100\n  for j = i to i+5\n    a[j+1] = a[j]\n  end\nend\n"
	default:
		src = "for i = 1 to 100\n  for j = 2*i to 2*i+5\n    a[j+1] = a[j]\n  end\nend\n"
	}
	prog, err := exactdep.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	unit := exactdep.Lower(prog)
	var pair ir.Pair
	for _, c := range refs.PairsOpts(unit, refs.Options{NoSelfPairs: true}) {
		pair = c.Pair
	}
	prob, err := system.Build(pair)
	if err != nil {
		b.Fatal(err)
	}
	res, ts, err := system.Preprocess(prob)
	if err != nil || res != system.GCDDependent {
		b.Fatalf("preprocess: %v %v", res, err)
	}
	r, _ := dtest.Solve(ts.Clone())
	if r.Kind != kind {
		b.Fatalf("representative problem decided by %v, want %v", r.Kind, kind)
	}
	return ts
}

// benchCascade times the cascade on a problem decided by one test — the
// paper's §7 microbenchmark (0.1 / 0.5 / 0.9 / 3 ms on a 12-MIPS machine;
// the reproduced claim is the ordering). A persistent pipeline reuses its
// scratch across iterations, as the analyzer's workers do, so allocs/op is
// the steady-state figure (0 for the cheap tests).
func benchCascade(b *testing.B, kind dtest.Kind) {
	ts := perTestProblem(b, kind)
	p := dtest.DefaultConfig().NewPipeline()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := p.Run(ts); r.Kind != kind {
			b.Fatalf("decided by %v", r.Kind)
		}
	}
}

func BenchmarkSVPC(b *testing.B)           { benchCascade(b, dtest.KindSVPC) }
func BenchmarkAcyclic(b *testing.B)        { benchCascade(b, dtest.KindAcyclic) }
func BenchmarkLoopResidue(b *testing.B)    { benchCascade(b, dtest.KindLoopResidue) }
func BenchmarkFourierMotzkin(b *testing.B) { benchCascade(b, dtest.KindFourierMotzkin) }

// BenchmarkAblationCascadeVsFMOnly: design-choice ablation — the cascade
// against running the backup test alone on the SVPC-dominated workload,
// via the two registered pipeline configurations.
func BenchmarkAblationCascadeVsFMOnly(b *testing.B) {
	ts := perTestProblem(b, dtest.KindSVPC)
	b.Run("cascade", func(b *testing.B) {
		p := dtest.DefaultConfig().NewPipeline()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Run(ts)
		}
	})
	b.Run("fm-only", func(b *testing.B) {
		p := dtest.FMOnlyConfig().NewPipeline()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Run(ts)
		}
	})
}

// BenchmarkAblationMemo: memoization on/off over a single repetitive
// program (the paper's core efficiency claim).
func BenchmarkAblationMemo(b *testing.B) {
	s, ok := workload.ProgramByName("SR") // 1,290 cases, 14 unique
	if !ok {
		b.Fatal("SR missing")
	}
	cands, err := workload.Candidates(s, false)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, opts core.Options) {
		for i := 0; i < b.N; i++ {
			a := core.New(opts)
			for _, c := range cands {
				if _, err := a.AnalyzeCandidate(c); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, core.Options{}) })
	b.Run("on", func(b *testing.B) { run(b, core.Options{Memoize: true, ImprovedMemo: true}) })
}

// BenchmarkAblationSeparable: hierarchical vs dimension-by-dimension
// direction vectors on a separable multi-direction nest.
func BenchmarkAblationSeparable(b *testing.B) {
	prog, err := exactdep.Parse(`
for i = 0 to 50
  for j = 0 to 50
    for k = 0 to 50
      a[2*i][2*j][2*k] = a[i][j][k]
    end
  end
end
`)
	if err != nil {
		b.Fatal(err)
	}
	unit := exactdep.Lower(prog)
	cands := refs.PairsOpts(unit, refs.Options{NoSelfPairs: true})
	run := func(b *testing.B, opts core.Options) {
		opts.DirectionVectors = true
		for i := 0; i < b.N; i++ {
			a := core.New(opts)
			for _, c := range cands {
				if _, err := a.AnalyzeCandidate(c); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("hierarchical", func(b *testing.B) { run(b, core.Options{}) })
	b.Run("separable", func(b *testing.B) { run(b, core.Options{Separable: true}) })
}

// BenchmarkAblationSymmetric: symmetric cache matching on a mirrored
// workload.
func BenchmarkAblationSymmetric(b *testing.B) {
	var cands []refs.Candidate
	for _, s := range workload.Programs() {
		cs, err := workload.Candidates(s, false)
		if err != nil {
			b.Fatal(err)
		}
		cands = append(cands, cs...)
	}
	run := func(b *testing.B, opts core.Options) {
		for i := 0; i < b.N; i++ {
			a := core.New(opts)
			for _, c := range cands {
				if _, err := a.AnalyzeCandidate(c); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("plain", func(b *testing.B) { run(b, core.Options{Memoize: true, ImprovedMemo: true}) })
	b.Run("symmetric", func(b *testing.B) {
		run(b, core.Options{Memoize: true, ImprovedMemo: true, SymmetricMemo: true})
	})
}

// BenchmarkAblationPruning: direction-vector pruning on/off for one deep
// nest program (Tables 4 vs 5 in miniature).
func BenchmarkAblationPruning(b *testing.B) {
	s, ok := workload.ProgramByName("LG")
	if !ok {
		b.Fatal("LG missing")
	}
	cands, err := workload.Candidates(s, false)
	if err != nil {
		b.Fatal(err)
	}
	base := core.Options{Memoize: true, ImprovedMemo: true, DirectionVectors: true}
	pruned := base
	pruned.PruneUnused = true
	pruned.PruneDistance = true
	run := func(b *testing.B, opts core.Options) {
		for i := 0; i < b.N; i++ {
			a := core.New(opts)
			for _, c := range cands {
				if _, err := a.AnalyzeCandidate(c); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("unpruned", func(b *testing.B) { run(b, base) })
	b.Run("pruned", func(b *testing.B) { run(b, pruned) })
}
