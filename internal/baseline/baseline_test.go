package baseline

import (
	"sort"
	"testing"

	"exactdep/internal/depvec"
	"exactdep/internal/ir"
	"exactdep/internal/system"
)

func pair(t *testing.T, loops []ir.Loop, subA, subB []ir.Expr) *system.Problem {
	t.Helper()
	nest := &ir.Nest{Label: "b", Loops: loops}
	a := ir.Ref{Array: "a", Subscripts: subA, Kind: ir.Write, Depth: len(loops)}
	b := ir.Ref{Array: "a", Subscripts: subB, Kind: ir.Read, Depth: len(loops)}
	nest.Refs = []ir.Ref{a, b}
	p, err := system.Build(nest.Pair(a, b))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func loop(idx string, lo, hi int64) ir.Loop {
	return ir.Loop{Index: idx, Lower: ir.NewConst(lo), Upper: ir.NewConst(hi)}
}

func TestSimpleGCD(t *testing.T) {
	// a[2i] vs a[2i+1]: 2 ∤ 1 → independent
	p := pair(t, []ir.Loop{loop("i", 1, 10)},
		[]ir.Expr{ir.NewTerm("i", 2)}, []ir.Expr{ir.NewTerm("i", 2).AddConst(1)})
	if SimpleGCD(p) {
		t.Fatal("gcd must refute parity mismatch")
	}
	// a[i] vs a[i+1]: gcd 1 → maybe dependent
	p = pair(t, []ir.Loop{loop("i", 1, 10)},
		[]ir.Expr{ir.NewVar("i")}, []ir.Expr{ir.NewVar("i").AddConst(1)})
	if !SimpleGCD(p) {
		t.Fatal("gcd must not refute unit-gcd equation")
	}
	// a[5] vs a[7]: no variables → 0 = -2 impossible... both subscripts
	// constant: handled upstream normally but the test must still refute.
	p = pair(t, []ir.Loop{loop("i", 1, 10)},
		[]ir.Expr{ir.NewConst(5)}, []ir.Expr{ir.NewConst(7)})
	if SimpleGCD(p) {
		t.Fatal("gcd must refute constant mismatch")
	}
}

func TestBanerjeeBounds(t *testing.T) {
	// a[i] vs a[i+20] over i in 1..10: range of i - i' = [-29? ...] h(i,i')
	// = i - i' must equal 20... write a[i], read a[i+20]: i = i'+20 →
	// i - i' = 20, range over box [1,10]² is [-9, 9] → independent.
	p := pair(t, []ir.Loop{loop("i", 1, 10)},
		[]ir.Expr{ir.NewVar("i")}, []ir.Expr{ir.NewVar("i").AddConst(20)})
	if Banerjee(p) {
		t.Fatal("bounds test must refute out-of-range offset")
	}
	// a[i] vs a[i+5]: range [-9,9] contains -5 → maybe dependent
	p = pair(t, []ir.Loop{loop("i", 1, 10)},
		[]ir.Expr{ir.NewVar("i")}, []ir.Expr{ir.NewVar("i").AddConst(5)})
	if !Banerjee(p) {
		t.Fatal("bounds test must not refute in-range offset")
	}
}

func TestBanerjeeInexactOnCoupledSubscripts(t *testing.T) {
	// Coupled subscripts (Shen, Li & Yew): a[i][i] vs a[i-1][i]. Dimension
	// 0 needs i = i'-1 and dimension 1 needs i = i'; each alone is feasible
	// over 1..10, so the per-dimension bounds test must (incorrectly)
	// report "maybe dependent" — this is exactly the §7 gap the exact
	// cascade closes.
	p := pair(t, []ir.Loop{loop("i", 1, 10)},
		[]ir.Expr{ir.NewVar("i"), ir.NewVar("i")},
		[]ir.Expr{ir.NewVar("i").AddConst(-1), ir.NewVar("i")})
	if !SimpleGCD(p) || !Banerjee(p) {
		t.Fatal("baseline should fail to refute the coupled example (that is its weakness)")
	}
	// The exact pipeline refutes it: i = i'-1 ∧ i = i' is inconsistent.
	res, _, err := system.Preprocess(p)
	if err != nil {
		t.Fatal(err)
	}
	if res != system.GCDIndependent {
		t.Fatal("extended GCD must refute the coupled system outright")
	}
}

func TestBanerjeeDirRefinesCorrectly(t *testing.T) {
	// a[i+1] vs a[i]: i+1 = i' → direction '<' feasible, '=' and '>' not.
	p := pair(t, []ir.Loop{loop("i", 1, 10)},
		[]ir.Expr{ir.NewVar("i").AddConst(1)}, []ir.Expr{ir.NewVar("i")})
	if !BanerjeeDir(p, []depvec.Direction{depvec.Less}) {
		t.Fatal("'<' must survive")
	}
	if BanerjeeDir(p, []depvec.Direction{depvec.Equal}) {
		t.Fatal("'=' must be refuted")
	}
	if BanerjeeDir(p, []depvec.Direction{depvec.Greater}) {
		t.Fatal("'>' must be refuted")
	}
}

func TestBanerjeeDirEmptyRegion(t *testing.T) {
	// single-iteration loop: i < i' impossible
	p := pair(t, []ir.Loop{loop("i", 3, 3)},
		[]ir.Expr{ir.NewVar("i")}, []ir.Expr{ir.NewVar("i")})
	if BanerjeeDir(p, []depvec.Direction{depvec.Less}) {
		t.Fatal("'<' impossible in a single-iteration loop")
	}
	if !BanerjeeDir(p, []depvec.Direction{depvec.Equal}) {
		t.Fatal("'=' must survive")
	}
}

func TestVectorsBaseline(t *testing.T) {
	p := pair(t, []ir.Loop{loop("i", 1, 10)},
		[]ir.Expr{ir.NewVar("i").AddConst(1)}, []ir.Expr{ir.NewVar("i")})
	vs := Vectors(p, true)
	if len(vs) != 1 || vs[0].String() != "(<)" {
		t.Fatalf("vectors = %v", vs)
	}
}

func TestVectorsBaselineOverestimates(t *testing.T) {
	// Triangular bounds degrade the rectangular baseline to "unbounded":
	// for i = 1 to 10, for j = i to 10 { a[j] = a[j] } — the exact answer
	// for level i is only... baseline with unbounded j box must report all
	// three j directions at the minimum.
	loops := []ir.Loop{
		loop("i", 1, 10),
		{Index: "j", Lower: ir.NewVar("i"), Upper: ir.NewConst(10)},
	}
	p := pair(t, loops, []ir.Expr{ir.NewVar("j")}, []ir.Expr{ir.NewVar("j").AddConst(1)})
	vs := Vectors(p, true)
	// exact: only (*, <). baseline: cannot bound j (non-constant lower) →
	// every direction survives → 3 vectors.
	if len(vs) <= 1 {
		t.Fatalf("baseline should overestimate on triangular bounds: %v", vs)
	}
}

func TestVectorsUnusedPruning(t *testing.T) {
	p := pair(t, []ir.Loop{loop("i", 1, 10), loop("j", 1, 10)},
		[]ir.Expr{ir.NewVar("j"), ir.NewConst(0)}, []ir.Expr{ir.NewVar("j").AddConst(1), ir.NewConst(0)})
	pruned := Vectors(p, true)
	unpruned := Vectors(p, false)
	if len(unpruned) != 3*len(pruned) {
		t.Fatalf("unused-variable pruning: %v vs %v", pruned, unpruned)
	}
	for _, v := range pruned {
		if v[0] != depvec.Any {
			t.Fatalf("pruned vector must keep '*': %v", v)
		}
	}
}

func TestVectorsGCDShortCircuit(t *testing.T) {
	p := pair(t, []ir.Loop{loop("i", 1, 10)},
		[]ir.Expr{ir.NewTerm("i", 2)}, []ir.Expr{ir.NewTerm("i", 2).AddConst(1)})
	if vs := Vectors(p, true); vs != nil {
		t.Fatalf("gcd-refuted pair must yield no vectors: %v", vs)
	}
}

func TestVectorsSorted(t *testing.T) {
	// sanity: deterministic order (<, =, >) per level
	p := pair(t, []ir.Loop{loop("i", 1, 10)},
		[]ir.Expr{ir.NewVar("i")}, []ir.Expr{ir.NewVar("i")})
	vs := Vectors(p, true)
	strs := make([]string, len(vs))
	for i, v := range vs {
		strs[i] = v.String()
	}
	if !sort.StringsAreSorted(strs) && len(strs) > 1 {
		t.Logf("order: %v", strs) // informational; order is <,=,> by construction
	}
	// a[i] vs a[i] over 1..10: real region allows i<i', i=i', i>i' —
	// baseline reports all three (exact answer is only '=' for the flow
	// pair? no: a[i] write vs a[i] read — conflict iff i=i', so exact is
	// (=) only... wait i = i' exactly. Banerjee '<': range of i - i' under
	// i<i' is [-9,-1], does it contain 0? No! So baseline correctly refutes
	// '<' and '>' here.
	if len(vs) != 1 || vs[0].String() != "(=)" {
		t.Fatalf("vectors = %v", vs)
	}
}
