// Package baseline implements the inexact dependence tests the paper
// compares against in §7: the simple per-dimension GCD test (Banerjee's
// algorithm 5.4.1) and the Banerjee bounds test over rectangular regions,
// extended to direction vectors following Wolfe (algorithm 2.5.2 in
// "Optimizing Supercompilers for Supercomputers"). Both tests can only prove
// independence; when they fail they assume dependence, which is what makes
// them inexact. The paper reports that on the PERFECT Club they miss 16% of
// the independent pairs and emit 22% extra direction vectors.
package baseline

import (
	"exactdep/internal/depvec"
	"exactdep/internal/linalg"
	"exactdep/internal/system"
)

// SimpleGCD runs the per-dimension GCD test: dimension d is feasible only if
// gcd of its coefficients divides the constant. It reports false when some
// dimension proves the pair independent, true otherwise ("assume
// dependent").
func SimpleGCD(p *system.Problem) bool {
	for d := 0; d < p.Eq.Cols; d++ {
		var g int64
		for k := range p.Vars {
			g = linalg.GCD(g, p.Eq.At(k, d))
		}
		if g == 0 {
			if p.RHS[d] != 0 {
				return false
			}
			continue
		}
		if p.RHS[d]%g != 0 {
			return false
		}
	}
	return true
}

// interval is a possibly-unbounded (or empty) real interval.
type interval struct {
	lo, hi     int64
	noLo, noHi bool
	empty      bool
}

func (iv interval) add(o interval) interval {
	out := interval{noLo: iv.noLo || o.noLo, noHi: iv.noHi || o.noHi, empty: iv.empty || o.empty}
	if !out.noLo {
		out.lo = iv.lo + o.lo
	}
	if !out.noHi {
		out.hi = iv.hi + o.hi
	}
	return out
}

// scale multiplies the interval by a (flipping ends for negative a).
func (iv interval) scale(a int64) interval {
	if a == 0 {
		return interval{}
	}
	if a > 0 {
		return interval{lo: a * iv.lo, hi: a * iv.hi, noLo: iv.noLo, noHi: iv.noHi}
	}
	return interval{lo: a * iv.hi, hi: a * iv.lo, noLo: iv.noHi, noHi: iv.noLo}
}

// contains reports whether v lies in the interval.
func (iv interval) contains(v int64) bool {
	if iv.empty {
		return false
	}
	if !iv.noLo && v < iv.lo {
		return false
	}
	if !iv.noHi && v > iv.hi {
		return false
	}
	return true
}

// constBounds extracts the constant rectangular bounds of variable k, or an
// unbounded interval when a bound is missing or non-constant (triangular or
// symbolic bounds degrade conservatively — the rectangular test cannot use
// them).
func constBounds(p *system.Problem, k int) interval {
	iv := interval{noLo: true, noHi: true}
	if p.Lower[k].Has && p.Lower[k].Expr.IsConst() {
		iv.noLo, iv.lo = false, p.Lower[k].Expr.Const
	}
	if p.Upper[k].Has && p.Upper[k].Expr.IsConst() {
		iv.noHi, iv.hi = false, p.Upper[k].Expr.Const
	}
	return iv
}

// Banerjee runs the bounds test without direction constraints: for each
// dimension, the range of Σ coeff·x over the rectangular region must contain
// the constant. It reports false when some dimension proves independence.
func Banerjee(p *system.Problem) bool {
	return BanerjeeDir(p, allAny(p.Common))
}

func allAny(n int) []depvec.Direction {
	out := make([]depvec.Direction, n)
	for i := range out {
		out[i] = depvec.Any
	}
	return out
}

// BanerjeeDir runs the bounds test under a direction vector over the common
// loops (Wolfe's extension). Pairs (i_k, i'_k) at a common level contribute
// jointly: the extreme values of a·i - b·i' over the constrained square are
// attained at the vertices of the region cut by the direction constraint.
func BanerjeeDir(p *system.Problem, dirs []depvec.Direction) bool {
	for d := 0; d < p.Eq.Cols; d++ {
		rng := interval{} // starts at [0,0]
		handled := make([]bool, len(p.Vars))
		// common-level pairs under their direction
		for lvl := 0; lvl < p.Common; lvl++ {
			ai, bi := p.CommonPair(lvl)
			if ai < 0 || bi < 0 {
				continue
			}
			handled[ai], handled[bi] = true, true
			a := p.Eq.At(ai, d)
			b := -p.Eq.At(bi, d) // term is a·i - b·i'
			if a == 0 && b == 0 {
				continue
			}
			dir := depvec.Any
			if lvl < len(dirs) {
				dir = dirs[lvl]
			}
			box := constBounds(p, ai) // assume both instances share bounds
			rng = rng.add(pairRange(a, b, box, dir))
		}
		// remaining variables contribute independently
		for k := range p.Vars {
			if handled[k] {
				continue
			}
			a := p.Eq.At(k, d)
			if a == 0 {
				continue
			}
			rng = rng.add(constBounds(p, k).scale(a))
		}
		if !rng.contains(p.RHS[d]) {
			return false
		}
	}
	return true
}

// pairRange computes the real range of a·i - b·i' for i, i' in box under the
// direction constraint, by evaluating the vertices of the (convex) feasible
// polygon. Unbounded boxes yield unbounded ranges.
func pairRange(a, b int64, box interval, dir depvec.Direction) interval {
	if box.noLo || box.noHi {
		// With an open square the term range is unbounded on any side where
		// a or b is active; be fully conservative.
		if a == 0 && b == 0 {
			return interval{}
		}
		return interval{noLo: true, noHi: true}
	}
	L, U := box.lo, box.hi
	f := func(i, ip int64) int64 { return a*i - b*ip }
	var vals []int64
	switch dir {
	case depvec.Less: // i ≤ i' - 1
		if L+1 > U {
			// the direction admits no iteration pair at all
			return interval{empty: true}
		}
		vals = []int64{f(L, L+1), f(L, U), f(U-1, U)}
	case depvec.Greater:
		if L+1 > U {
			return interval{empty: true}
		}
		vals = []int64{f(L+1, L), f(U, L), f(U, U-1)}
	case depvec.Equal:
		vals = []int64{f(L, L), f(U, U)}
	default: // '*'
		vals = []int64{f(L, L), f(L, U), f(U, L), f(U, U)}
	}
	out := interval{lo: vals[0], hi: vals[0]}
	for _, v := range vals[1:] {
		if v < out.lo {
			out.lo = v
		}
		if v > out.hi {
			out.hi = v
		}
	}
	return out
}

// Vectors computes the direction vectors the inexact pipeline reports:
// hierarchical refinement where each candidate vector survives if both the
// per-dimension GCD test and the direction-constrained Banerjee test fail to
// refute it. With pruneUnused, loop levels not appearing in the equations
// keep '*' (the paper's §7 methodology eliminates unused variables so the
// baseline is not unfairly penalized).
func Vectors(p *system.Problem, pruneUnused bool) []depvec.Vector {
	if !SimpleGCD(p) {
		return nil
	}
	levels := p.Common
	used := make([]bool, levels)
	for lvl := 0; lvl < levels; lvl++ {
		ai, bi := p.CommonPair(lvl)
		for d := 0; d < p.Eq.Cols; d++ {
			if (ai >= 0 && p.Eq.At(ai, d) != 0) || (bi >= 0 && p.Eq.At(bi, d) != 0) {
				used[lvl] = true
			}
		}
		if !pruneUnused {
			used[lvl] = true
		}
	}
	cur := allAny(levels)
	var out []depvec.Vector
	var refine func(lvl int)
	refine = func(lvl int) {
		for lvl < levels && !used[lvl] {
			lvl++
		}
		if lvl >= levels {
			out = append(out, append(depvec.Vector(nil), cur...))
			return
		}
		for _, dir := range []depvec.Direction{depvec.Less, depvec.Equal, depvec.Greater} {
			cur[lvl] = dir
			if BanerjeeDir(p, cur) {
				refine(lvl + 1)
			}
			cur[lvl] = depvec.Any
		}
	}
	if !BanerjeeDir(p, cur) {
		return nil
	}
	if levels == 0 {
		return []depvec.Vector{{}}
	}
	refine(0)
	return out
}
