package interp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"exactdep/internal/core"
	"exactdep/internal/dtest"
	"exactdep/internal/lang"
	"exactdep/internal/opt"
	"exactdep/internal/refs"
)

// Source-level differential: generate random programs exercising the whole
// front end — non-unit steps, scalar forward substitution, induction
// variables, triangular bounds — execute them with the reference
// interpreter, and require that whenever the analyzer says a statement pair
// is independent, the execution trace shows no conflicting access. This is
// the strongest end-to-end soundness check in the suite: a bug anywhere in
// constant propagation, induction substitution, step normalization, system
// construction, or the tests themselves shows up as an observed conflict
// the analyzer claimed impossible.

// genProgram emits a random program over small iteration spaces.
func genProgram(rng *rand.Rand) string {
	var b strings.Builder
	arrays := []string{"a", "b"}
	sub := func(indices []string) string {
		e := fmt.Sprintf("%d", rng.Intn(7)-3)
		for _, v := range indices {
			if rng.Intn(2) == 0 {
				c := rng.Intn(5) - 2
				e += fmt.Sprintf(" + %d*%s", c, v)
			}
		}
		return e
	}
	stmt := func(indent string, indices []string) {
		arr := arrays[rng.Intn(len(arrays))]
		arr2 := arrays[rng.Intn(len(arrays))]
		fmt.Fprintf(&b, "%s%s[%s] = %s[%s] + 1\n", indent, arr, sub(indices), arr2, sub(indices))
	}
	var loop func(indent string, indices []string, depth int)
	loop = func(indent string, indices []string, depth int) {
		idx := fmt.Sprintf("i%d", depth)
		lo := rng.Intn(3)
		hi := lo + rng.Intn(5)
		step := ""
		if rng.Intn(4) == 0 {
			step = fmt.Sprintf(" step %d", 2+rng.Intn(2))
		}
		// occasional triangular bound
		loS := fmt.Sprintf("%d", lo)
		if len(indices) > 0 && rng.Intn(4) == 0 && step == "" {
			loS = indices[rng.Intn(len(indices))]
		}
		fmt.Fprintf(&b, "%sfor %s = %s to %d%s\n", indent, idx, loS, hi, step)
		inner := append(append([]string(nil), indices...), idx)
		// optional scalar definition (forward substitution fodder)
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&b, "%s  k%d = 2*%s + %d\n", indent, depth, idx, rng.Intn(3))
			inner = append(inner, fmt.Sprintf("k%d", depth))
		}
		// optional induction variable
		if rng.Intn(4) == 0 {
			fmt.Fprintf(&b, "%s  z%d = z%d + %d\n", indent, depth, depth, 1+rng.Intn(3))
			inner = append(inner, fmt.Sprintf("z%d", depth))
		}
		n := 1 + rng.Intn(2)
		for s := 0; s < n; s++ {
			if depth < 2 && rng.Intn(3) == 0 {
				loop(indent+"  ", inner, depth+1)
			} else {
				stmt(indent+"  ", inner)
			}
		}
		fmt.Fprintf(&b, "%send\n", indent)
	}
	// induction seeds
	b.WriteString("z0 = 0\nz1 = 0\nz2 = 0\n")
	for i := 0; i < 1+rng.Intn(2); i++ {
		loop("", nil, 0)
	}
	return b.String()
}

func TestSourceLevelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1207))
	checkedPairs := 0
	for iter := 0; iter < 600; iter++ {
		src := genProgram(rng)
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("iter %d: generated program does not parse: %v\n%s", iter, err, src)
		}
		unit := opt.Lower(prog)
		// A warned (skipped) reference leaves its statement's pairs covered
		// only by the conservative assumption; rather than track which, skip
		// the whole program (rare with this generator).
		if len(unit.Warnings) > 0 {
			continue
		}
		trace, err := Run(prog, nil, Limits{MaxSteps: 200000})
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, src)
		}
		truth := trace.Conflicts()

		a := core.New(core.Options{})
		// verdict per (array, stmt pair): independent only if EVERY ref
		// pair between the statements is independent
		type pk = ConflictKey
		analyzerDep := map[pk]bool{}
		seen := map[pk]bool{}
		for _, c := range refs.PairsOpts(unit, refs.Options{NoSelfPairs: false}) {
			res, err := a.AnalyzeCandidate(c)
			if err != nil {
				t.Fatalf("iter %d: %v\n%s", iter, err, src)
			}
			s1, s2 := c.Pair.A.Ref.Stmt, c.Pair.B.Ref.Stmt
			if s1 > s2 {
				s1, s2 = s2, s1
			}
			k := pk{Array: c.Pair.A.Ref.Array, StmtA: s1, StmtB: s2}
			seen[k] = true
			if res.Outcome != dtest.Independent {
				analyzerDep[k] = true
			}
		}
		for k := range seen {
			checkedPairs++
			if truth[k] && !analyzerDep[k] {
				t.Fatalf("iter %d: analyzer says %s stmts %d/%d independent, execution conflicts\n%s",
					iter, k.Array, k.StmtA, k.StmtB, src)
			}
		}
	}
	if checkedPairs < 2000 {
		t.Fatalf("only %d pairs checked — generator drifted", checkedPairs)
	}
}
