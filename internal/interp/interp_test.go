package interp

import (
	"testing"

	"exactdep/internal/ir"
	"exactdep/internal/lang"
)

func run(t *testing.T, src string, inputs map[string]int64) *Trace {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Run(prog, inputs, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSimpleExecution(t *testing.T) {
	tr := run(t, `
for i = 1 to 3
  a[i] = i
end
`, nil)
	if len(tr.Accesses) != 3 {
		t.Fatalf("accesses = %d", len(tr.Accesses))
	}
	for k, a := range tr.Accesses {
		if a.Kind != ir.Write || a.Array != "a" || a.Index[0] != int64(k+1) {
			t.Fatalf("access %d = %+v", k, a)
		}
	}
}

func TestReadsAndValues(t *testing.T) {
	// prefix sum: b[i] = b[i-1] + a[i] exercises value flow
	tr := run(t, `
a[1] = 5
a[2] = 7
b[0] = 0
b[1] = b[0] + a[1]
b[2] = b[1] + a[2]
c[b[2]] = 1
`, nil)
	// c's write address must be 12 (5+7)
	var cIdx int64 = -1
	for _, a := range tr.Accesses {
		if a.Array == "c" && a.Kind == ir.Write {
			cIdx = a.Index[0]
		}
	}
	if cIdx != 12 {
		t.Fatalf("c write address = %d, want 12", cIdx)
	}
}

func TestSteppedAndNegativeLoops(t *testing.T) {
	tr := run(t, `
for i = 1 to 9 step 2
  a[i] = 0
end
for j = 10 to 1 step -3
  b[j] = 0
end
`, nil)
	var as, bs []int64
	for _, a := range tr.Accesses {
		if a.Array == "a" {
			as = append(as, a.Index[0])
		} else {
			bs = append(bs, a.Index[0])
		}
	}
	if len(as) != 5 || as[0] != 1 || as[4] != 9 {
		t.Fatalf("a addresses = %v", as)
	}
	if len(bs) != 4 || bs[0] != 10 || bs[3] != 1 {
		t.Fatalf("b addresses = %v", bs)
	}
}

func TestInputs(t *testing.T) {
	tr := run(t, `
read(n)
for i = 1 to n
  a[i+n] = 0
end
`, map[string]int64{"n": 3})
	if len(tr.Accesses) != 3 || tr.Accesses[0].Index[0] != 4 {
		t.Fatalf("accesses = %+v", tr.Accesses)
	}
	prog, _ := lang.Parse("read(n)\n")
	if _, err := Run(prog, nil, Limits{}); err == nil {
		t.Fatal("missing input must error")
	}
}

func TestStepLimit(t *testing.T) {
	prog, err := lang.Parse("for i = 1 to 1000000\n  a[i] = 0\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, nil, Limits{MaxSteps: 100}); err != ErrLimit {
		t.Fatalf("want ErrLimit, got %v", err)
	}
}

func TestZeroStepRejected(t *testing.T) {
	prog, err := lang.Parse("for i = 1 to 10 step 0\n  a[i] = 0\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, nil, Limits{}); err == nil {
		t.Fatal("zero step must error")
	}
}

func TestConflicts(t *testing.T) {
	tr := run(t, `
for i = 1 to 5
  a[i] = a[i-1]
  b[i] = a[i+10]
end
`, nil)
	conf := tr.Conflicts()
	// stmt 1 writes a[1..5] and reads a[0..4]: self conflict on a
	if !conf[ConflictKey{Array: "a", StmtA: 1, StmtB: 1}] {
		t.Fatalf("missing a:1-1 conflict: %v", conf)
	}
	// stmt 2 reads a[11..15]: no overlap with stmt 1's a accesses
	if conf[ConflictKey{Array: "a", StmtA: 1, StmtB: 2}] {
		t.Fatalf("spurious a:1-2 conflict: %v", conf)
	}
	// b written only by stmt 2: self output conflict requires same address
	// twice — b[1..5] are distinct, so no conflict
	if conf[ConflictKey{Array: "b", StmtA: 2, StmtB: 2}] {
		t.Fatalf("spurious b self conflict: %v", conf)
	}
}

func TestMultiDimAddressing(t *testing.T) {
	tr := run(t, `
a[1][2] = 1
a[2][1] = 2
b[0] = a[1][2]
`, nil)
	conf := tr.Conflicts()
	if !conf[ConflictKey{Array: "a", StmtA: 1, StmtB: 3}] {
		t.Fatal("a[1][2] write/read must conflict")
	}
	if conf[ConflictKey{Array: "a", StmtA: 2, StmtB: 3}] {
		t.Fatal("a[2][1] must not collide with a[1][2] (dimension mixing)")
	}
}

func TestScalarShadowRestored(t *testing.T) {
	tr := run(t, `
i = 42
for i = 1 to 2
  a[i] = 0
end
b[i] = 0
`, nil)
	last := tr.Accesses[len(tr.Accesses)-1]
	if last.Array != "b" || last.Index[0] != 42 {
		t.Fatalf("outer i not restored: %+v", last)
	}
}
