package interp

import (
	"math/rand"
	"testing"

	"exactdep/internal/core"
	"exactdep/internal/dtest"
	"exactdep/internal/ir"
	"exactdep/internal/lang"
	"exactdep/internal/opt"
	"exactdep/internal/refs"
)

// Direction-vector ground truth through the full front end: execute random
// programs, derive the realized direction of every conflicting access pair
// from the iteration ordinals, and require the analyzer's vectors to cover
// each one. This validates direction vectors across step normalization and
// induction substitution, which the IR-level differential cannot reach.

// dirKey aggregates realized directions per (array, stmt pair).
type dirKey struct {
	array        string
	stmtA, stmtB int
}

// realizedDirections scans the trace for conflicting access pairs and
// records, per statement pair, the direction string over the first `common`
// iteration ordinals (truncated to the shorter stack).
func realizedDirections(tr *Trace, common map[dirKey]int) map[dirKey]map[string]bool {
	type acc struct {
		kind ir.RefKind
		stmt int
		iter []int64
	}
	byAddr := map[string][]acc{}
	for _, a := range tr.Accesses {
		k := a.Array + "\x00" + key(a.Index)
		byAddr[k] = append(byAddr[k], acc{kind: a.Kind, stmt: a.Stmt, iter: a.Coord})
	}
	out := map[dirKey]map[string]bool{}
	for k, accs := range byAddr {
		array := k[:indexByte(k)]
		for i, a1 := range accs {
			for _, a2 := range accs[i:] {
				if a1.kind != ir.Write && a2.kind != ir.Write {
					continue
				}
				x, y := a1, a2
				if x.stmt > y.stmt {
					x, y = y, x
				}
				dk := dirKey{array: array, stmtA: x.stmt, stmtB: y.stmt}
				d, ok := common[dk]
				if !ok {
					continue
				}
				if len(x.iter) < d || len(y.iter) < d {
					continue
				}
				vec := make([]byte, d)
				for l := 0; l < d; l++ {
					switch {
					case x.iter[l] < y.iter[l]:
						vec[l] = '<'
					case x.iter[l] > y.iter[l]:
						vec[l] = '>'
					default:
						vec[l] = '='
					}
				}
				if out[dk] == nil {
					out[dk] = map[string]bool{}
				}
				out[dk][string(vec)] = true
			}
		}
	}
	return out
}

// expand unions all analyzer vectors with '*' expansion into direction
// strings.
func expand(vectors []string) map[string]bool {
	out := map[string]bool{}
	var rec func(prefix string, rest string)
	rec = func(prefix, rest string) {
		if rest == "" {
			out[prefix] = true
			return
		}
		if rest[0] == '*' {
			for _, d := range []byte{'<', '=', '>'} {
				rec(prefix+string(d), rest[1:])
			}
			return
		}
		rec(prefix+string(rest[0]), rest[1:])
	}
	for _, v := range vectors {
		rec("", v)
	}
	return out
}

func TestDirectionVectorsMatchExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	checked := 0
	for iter := 0; iter < 400; iter++ {
		src := genProgram(rng)
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		unit := opt.Lower(prog)
		if len(unit.Warnings) > 0 {
			continue
		}
		tr, err := Run(prog, nil, Limits{MaxSteps: 200000})
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, src)
		}

		a := core.New(core.Options{DirectionVectors: true, PruneUnused: true, PruneDistance: true})
		common := map[dirKey]int{}
		vectors := map[dirKey][]string{}
		dependentPair := map[dirKey]bool{}
		for _, c := range refs.PairsOpts(unit, refs.Options{NoSelfPairs: false}) {
			res, err := a.AnalyzeCandidate(c)
			if err != nil {
				t.Fatalf("iter %d: %v\n%s", iter, err, src)
			}
			s1, s2 := c.Pair.A.Ref.Stmt, c.Pair.B.Ref.Stmt
			swapped := s1 > s2
			if swapped {
				s1, s2 = s2, s1
			}
			dk := dirKey{array: c.Pair.A.Ref.Array, stmtA: s1, stmtB: s2}
			if prev, ok := common[dk]; ok && prev != c.Pair.Common {
				// mixed nesting depths for one stmt pair: skip it
				delete(common, dk)
				continue
			}
			common[dk] = c.Pair.Common
			if res.Outcome == dtest.Independent {
				continue
			}
			dependentPair[dk] = true
			for _, v := range res.Vectors {
				bs := make([]byte, len(v))
				for i, d := range v {
					bs[i] = byte(d)
				}
				sv := string(bs)
				if swapped {
					sv = mirrorDirs(sv)
				}
				vectors[dk] = append(vectors[dk], sv)
			}
		}

		truth := realizedDirections(tr, common)
		for dk, dirs := range truth {
			if !dependentPair[dk] {
				// a realized conflict on a pair the analyzer called
				// independent is caught by the other differential; here we
				// focus on vectors
				continue
			}
			got := expand(vectors[dk])
			for d := range dirs {
				checked++
				// Orientation: both sides were normalized to stmtA ≤ stmtB,
				// so distinct-statement directions must match exactly. For a
				// statement paired with itself the two accesses have no
				// inherent order, so the mirrored direction also counts.
				covered := got[d] || (dk.stmtA == dk.stmtB && got[mirrorDirs(d)])
				if !covered {
					t.Fatalf("iter %d: pair %+v realized direction %q not covered by vectors %v\n%s",
						iter, dk, d, vectors[dk], src)
				}
			}
		}
	}
	if checked < 500 {
		t.Fatalf("only %d realized directions checked — generator drifted", checked)
	}
}

func mirrorDirs(s string) string {
	b := []byte(s)
	for i := range b {
		switch b[i] {
		case '<':
			b[i] = '>'
		case '>':
			b[i] = '<'
		}
	}
	return string(b)
}
