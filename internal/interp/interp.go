// Package interp is a reference interpreter for the loop language. It
// executes a program concretely — scalars as int64, arrays as sparse maps —
// and records every array access with its flattened address. The recorded
// trace yields ground-truth dependences, which the differential tests use
// to validate the whole analysis stack (prepass, normalization, extraction,
// tests) against actual program behaviour.
package interp

import (
	"fmt"

	"exactdep/internal/ir"
	"exactdep/internal/lang"
)

// Access is one recorded array access.
type Access struct {
	Array string
	// Index is the evaluated subscript tuple.
	Index []int64
	Kind  ir.RefKind
	// Stmt is the 1-based assignment ordinal, matching the lowerer's
	// statement numbering.
	Stmt int
	// Time is the access's position in the execution trace.
	Time int
	// Iter is the stack of iteration ordinals (0-based trip counts) of the
	// enclosing loops, outermost first.
	Iter []int64
	// Coord is the stack of analyzer-visible loop coordinates: the index
	// value for unit-step loops, the iteration ordinal for loops the
	// lowerer normalizes (non-unit steps) — the space the analyzer's
	// direction vectors live in.
	Coord []int64
}

// Trace is the record of one execution.
type Trace struct {
	Accesses []Access
	// Final is the memory state at program exit: array → encoded index →
	// value. Index encodings are opaque but stable, so two Finals compare
	// meaningfully.
	Final map[string]map[string]int64
}

// FinalEqual reports whether two executions ended with identical array
// memory (missing cells count as zero, matching the interpreter's default).
func (t *Trace) FinalEqual(o *Trace) bool {
	covered := func(a, b map[string]map[string]int64) bool {
		for arr, cells := range a {
			for k, v := range cells {
				if b[arr][k] != v {
					return false
				}
			}
		}
		return true
	}
	return covered(t.Final, o.Final) && covered(o.Final, t.Final)
}

// Limits bounds an execution so adversarial inputs terminate.
type Limits struct {
	// MaxSteps bounds the number of executed assignments (default 1e6).
	MaxSteps int
}

// ErrLimit is returned when an execution exceeds its step budget.
var ErrLimit = fmt.Errorf("interp: step limit exceeded")

type machine struct {
	scalars map[string]int64
	arrays  map[string]map[string]int64
	inputs  map[string]int64
	trace   *Trace
	// stmtOf numbers assignment statements syntactically, in the same
	// pre-order the lowerer uses, so trace entries align with ir.Ref.Stmt.
	stmtOf map[*lang.Assign]int
	steps  int
	limit  int
	time   int
	iters  []int64 // current iteration-ordinal stack
	coords []int64 // current analyzer-coordinate stack
}

// Run executes the program. inputs provides the values consumed by read()
// statements (and any scalars used before definition).
func Run(prog *lang.Program, inputs map[string]int64, lim Limits) (*Trace, error) {
	if lim.MaxSteps == 0 {
		lim.MaxSteps = 1_000_000
	}
	m := &machine{
		scalars: map[string]int64{},
		arrays:  map[string]map[string]int64{},
		inputs:  inputs,
		trace:   &Trace{},
		stmtOf:  numberStatements(prog.Stmts),
		limit:   lim.MaxSteps,
	}
	if err := m.stmts(prog.Stmts); err != nil {
		return nil, err
	}
	m.trace.Final = m.arrays
	return m.trace, nil
}

func (m *machine) stmts(ss []lang.Stmt) error {
	for _, s := range ss {
		if err := m.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (m *machine) stmt(s lang.Stmt) error {
	switch s := s.(type) {
	case *lang.Read:
		v, ok := m.inputs[s.Var]
		if !ok {
			return fmt.Errorf("interp: no input for read(%s)", s.Var)
		}
		m.scalars[s.Var] = v
		return nil
	case *lang.Assign:
		return m.assign(s)
	case *lang.For:
		return m.forLoop(s)
	default:
		return fmt.Errorf("interp: unknown statement %T", s)
	}
}

func (m *machine) assign(s *lang.Assign) error {
	m.steps++
	if m.steps > m.limit {
		return ErrLimit
	}
	stmt := m.stmtOf[s]
	// Evaluate the RHS first (its reads execute before the write).
	rhs, err := m.eval(s.RHS, stmt)
	if err != nil {
		return err
	}
	if s.LHSArray != nil {
		idx := make([]int64, len(s.LHSArray.Subs))
		for i, sub := range s.LHSArray.Subs {
			v, err := m.eval(sub, stmt)
			if err != nil {
				return err
			}
			idx[i] = v
		}
		m.record(s.LHSArray.Array, idx, ir.Write, stmt)
		arr := m.arrays[s.LHSArray.Array]
		if arr == nil {
			arr = map[string]int64{}
			m.arrays[s.LHSArray.Array] = arr
		}
		arr[key(idx)] = rhs
		return nil
	}
	m.scalars[s.LHSVar] = rhs
	return nil
}

func (m *machine) forLoop(s *lang.For) error {
	lo, err := m.eval(s.Lo, 0)
	if err != nil {
		return err
	}
	hi, err := m.eval(s.Hi, 0)
	if err != nil {
		return err
	}
	step := int64(1)
	if s.Step != nil {
		if step, err = m.eval(s.Step, 0); err != nil {
			return err
		}
		if step == 0 {
			return fmt.Errorf("interp: zero loop step for %q", s.Index)
		}
	}
	saved, had := m.scalars[s.Index]
	m.iters = append(m.iters, 0)
	m.coords = append(m.coords, 0)
	depth := len(m.iters) - 1
	for i := lo; (step > 0 && i <= hi) || (step < 0 && i >= hi); i += step {
		m.scalars[s.Index] = i
		if step == 1 {
			m.coords[depth] = i
		} else {
			m.coords[depth] = m.iters[depth]
		}
		if err := m.stmts(s.Body); err != nil {
			return err
		}
		m.iters[depth]++
		m.steps++
		if m.steps > m.limit {
			return ErrLimit
		}
	}
	m.iters = m.iters[:depth]
	m.coords = m.coords[:depth]
	if had {
		m.scalars[s.Index] = saved
	} else {
		delete(m.scalars, s.Index)
	}
	return nil
}

func (m *machine) eval(e lang.Expr, stmt int) (int64, error) {
	switch e := e.(type) {
	case *lang.Num:
		return e.Value, nil
	case *lang.Ident:
		if v, ok := m.scalars[e.Name]; ok {
			return v, nil
		}
		if v, ok := m.inputs[e.Name]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("interp: undefined scalar %q", e.Name)
	case *lang.Neg:
		v, err := m.eval(e.X, stmt)
		return -v, err
	case *lang.BinOp:
		l, err := m.eval(e.L, stmt)
		if err != nil {
			return 0, err
		}
		r, err := m.eval(e.R, stmt)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case '+':
			return l + r, nil
		case '-':
			return l - r, nil
		case '*':
			return l * r, nil
		}
		return 0, fmt.Errorf("interp: unknown operator %q", e.Op)
	case *lang.Index:
		idx := make([]int64, len(e.Subs))
		for i, sub := range e.Subs {
			v, err := m.eval(sub, stmt)
			if err != nil {
				return 0, err
			}
			idx[i] = v
		}
		m.record(e.Array, idx, ir.Read, stmt)
		return m.arrays[e.Array][key(idx)], nil
	default:
		return 0, fmt.Errorf("interp: unknown expression %T", e)
	}
}

func (m *machine) record(array string, idx []int64, kind ir.RefKind, stmt int) {
	m.time++
	m.trace.Accesses = append(m.trace.Accesses, Access{
		Array: array,
		Index: append([]int64(nil), idx...),
		Kind:  kind,
		Stmt:  stmt,
		Time:  m.time,
		Iter:  append([]int64(nil), m.iters...),
		Coord: append([]int64(nil), m.coords...),
	})
}

func key(idx []int64) string {
	b := make([]byte, 0, len(idx)*9)
	for _, v := range idx {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(v>>s))
		}
		b = append(b, ',')
	}
	return string(b)
}

// numberStatements assigns 1-based ordinals to assignment statements in the
// lowerer's pre-order.
func numberStatements(ss []lang.Stmt) map[*lang.Assign]int {
	out := map[*lang.Assign]int{}
	n := 0
	var walk func(ss []lang.Stmt)
	walk = func(ss []lang.Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *lang.Assign:
				n++
				out[s] = n
			case *lang.For:
				walk(s.Body)
			}
		}
	}
	walk(ss)
	return out
}

// ConflictKey identifies a statement pair on one array.
type ConflictKey struct {
	Array        string
	StmtA, StmtB int // StmtA ≤ StmtB
}

// Conflicts derives ground-truth dependences from a trace: for every array
// and statement pair, whether some address is touched by both statements
// with at least one write.
func (t *Trace) Conflicts() map[ConflictKey]bool {
	type cell struct {
		reads  map[int]int // stmt → access count
		writes map[int]int
	}
	cells := map[string]*cell{}
	for _, a := range t.Accesses {
		k := a.Array + "\x00" + key(a.Index)
		c := cells[k]
		if c == nil {
			c = &cell{reads: map[int]int{}, writes: map[int]int{}}
			cells[k] = c
		}
		if a.Kind == ir.Write {
			c.writes[a.Stmt]++
		} else {
			c.reads[a.Stmt]++
		}
	}
	out := map[ConflictKey]bool{}
	mark := func(array string, s1, s2 int) {
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		out[ConflictKey{Array: array, StmtA: s1, StmtB: s2}] = true
	}
	for k, c := range cells {
		array := k[:indexByte(k)]
		for w, wn := range c.writes {
			for w2 := range c.writes {
				if w == w2 && wn < 2 {
					continue // a single write does not conflict with itself
				}
				mark(array, w, w2)
			}
			for r := range c.reads {
				mark(array, w, r)
			}
		}
	}
	return out
}

func indexByte(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == 0 {
			return i
		}
	}
	return len(s)
}
