package system

import (
	"fmt"
	"reflect"
	"testing"

	"exactdep/internal/ir"
)

// builderPairs assembles a varied population of pairs: every shape the
// other system tests exercise (constant, strided, coupled, triangular,
// banded, scaled, symbolic) so the scratch-reusing Builder is compared
// against the allocating Build on the same inputs it will see in anger.
func builderPairs(t *testing.T) []ir.Pair {
	t.Helper()
	mk := func(loops []ir.Loop, subA, subB []ir.Expr) ir.Pair {
		nest := &ir.Nest{Label: "t", Loops: loops}
		a := ir.Ref{Array: "a", Subscripts: subA, Kind: ir.Write, Depth: len(loops)}
		b := ir.Ref{Array: "a", Subscripts: subB, Kind: ir.Read, Depth: len(loops)}
		nest.Refs = []ir.Ref{a, b}
		return nest.Pair(a, b)
	}
	i1 := func(n string) ir.Expr { return ir.NewVar(n) }
	var pairs []ir.Pair

	// Single loop, constant distance.
	pairs = append(pairs, mk(
		[]ir.Loop{{Index: "i", Lower: ir.NewConst(1), Upper: ir.NewConst(100)}},
		[]ir.Expr{i1("i").AddConst(3)}, []ir.Expr{i1("i")}))
	// Strided subscripts (GCD territory).
	pairs = append(pairs, mk(
		[]ir.Loop{{Index: "i", Lower: ir.NewConst(1), Upper: ir.NewConst(50)}},
		[]ir.Expr{ir.NewTerm("i", 2)}, []ir.Expr{ir.NewTerm("i", 2).AddConst(1)}))
	// Coupled 2-D subscripts.
	pairs = append(pairs, mk(
		[]ir.Loop{
			{Index: "i", Lower: ir.NewConst(1), Upper: ir.NewConst(40)},
			{Index: "j", Lower: ir.NewConst(1), Upper: ir.NewConst(40)}},
		[]ir.Expr{i1("i"), i1("j")},
		[]ir.Expr{i1("j").AddConst(2), i1("i").AddConst(1)}))
	// Triangular bounds (inner bound uses the outer index).
	pairs = append(pairs, mk(
		[]ir.Loop{
			{Index: "i", Lower: ir.NewConst(1), Upper: ir.NewConst(30)},
			{Index: "j", Lower: ir.NewVar("i"), Upper: ir.NewConst(30)}},
		[]ir.Expr{i1("j").AddConst(1)}, []ir.Expr{i1("j")}))
	// Banded scaled bounds (Loop Residue / FM territory).
	pairs = append(pairs, mk(
		[]ir.Loop{
			{Index: "i", Lower: ir.NewConst(1), Upper: ir.NewConst(30)},
			{Index: "j", Lower: ir.NewTerm("i", 2), Upper: ir.NewTerm("i", 2).AddConst(5)}},
		[]ir.Expr{i1("j").AddConst(1)}, []ir.Expr{i1("j")}))
	// Symbolic bound and subscript offset.
	pairs = append(pairs, mk(
		[]ir.Loop{{Index: "i", Lower: ir.NewConst(1), Upper: ir.NewVar("n")}},
		[]ir.Expr{i1("i").Add(ir.NewVar("n")).AddConst(1)},
		[]ir.Expr{i1("i").Add(ir.NewTerm("n", 2))}))
	return pairs
}

// TestBuilderMatchesBuild: the scratch-reusing Builder must produce exactly
// the Problem the allocating Build produces — same string rendering, same
// variables, same GCD preprocessing verdict — on every pair shape,
// including back-to-back builds over the same scratch.
func TestBuilderMatchesBuild(t *testing.T) {
	var bld Builder
	for round := 0; round < 2; round++ { // round 2 re-uses warm scratch
		for pi, pair := range builderPairs(t) {
			want, werr := Build(pair)
			got, gerr := bld.Build(pair)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("round %d pair %d: Build err %v, Builder err %v", round, pi, werr, gerr)
			}
			if werr != nil {
				continue
			}
			if ws, gs := want.String(), got.String(); ws != gs {
				t.Fatalf("round %d pair %d: problems differ\nBuild:\n%s\nBuilder:\n%s", round, pi, ws, gs)
			}
			if !reflect.DeepEqual(want.Vars, got.Vars) {
				t.Fatalf("round %d pair %d: vars %v vs %v", round, pi, want.Vars, got.Vars)
			}
			wres, wts, werr := Preprocess(want)
			gres, gts, gerr := Preprocess(got)
			if werr != nil || gerr != nil || wres != gres {
				t.Fatalf("round %d pair %d: preprocess (%v,%v) vs (%v,%v)", round, pi, wres, werr, gres, gerr)
			}
			if (wts == nil) != (gts == nil) {
				t.Fatalf("round %d pair %d: t-system presence differs", round, pi)
			}
			if wts != nil && fmt.Sprintf("%+v", wts) != fmt.Sprintf("%+v", gts) {
				t.Fatalf("round %d pair %d: t-systems differ", round, pi)
			}
		}
	}
}

// TestBuilderScratchInvalidation documents the aliasing contract: a Problem
// returned by Builder.Build is only valid until the next Build on the same
// Builder. The test pins that the previous Problem really is overwritten
// (so callers that need persistence must copy), which is what makes the
// allocation-free steady state possible.
func TestBuilderScratchInvalidation(t *testing.T) {
	pairs := builderPairs(t)
	var bld Builder
	p1, err := bld.Build(pairs[0])
	if err != nil {
		t.Fatal(err)
	}
	before := p1.String()
	if _, err := bld.Build(pairs[2]); err != nil {
		t.Fatal(err)
	}
	if p1.String() == before {
		t.Skip("scratch happened to be disjoint for these shapes")
	}
}
