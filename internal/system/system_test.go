package system

import (
	"math/rand"
	"strings"
	"testing"

	"exactdep/internal/ir"
)

// singleLoopPair builds the pair for:
//
//	for i = lo to hi { a[subA] = a[subB] }
func singleLoopPair(lo, hi int64, subA, subB ir.Expr) ir.Pair {
	nest := &ir.Nest{
		Label: "test",
		Loops: []ir.Loop{{Index: "i", Lower: ir.NewConst(lo), Upper: ir.NewConst(hi)}},
	}
	a := ir.Ref{Array: "a", Subscripts: []ir.Expr{subA}, Kind: ir.Write, Depth: 1}
	b := ir.Ref{Array: "a", Subscripts: []ir.Expr{subB}, Kind: ir.Read, Depth: 1}
	nest.Refs = []ir.Ref{a, b}
	return nest.Pair(a, b)
}

// doubleLoopPair builds a 2-deep nest with two 2-D references.
func doubleLoopPair(subA, subB []ir.Expr) ir.Pair {
	nest := &ir.Nest{
		Label: "test2",
		Loops: []ir.Loop{
			{Index: "i", Lower: ir.NewConst(1), Upper: ir.NewConst(10)},
			{Index: "j", Lower: ir.NewConst(1), Upper: ir.NewConst(10)},
		},
	}
	a := ir.Ref{Array: "a", Subscripts: subA, Kind: ir.Write, Depth: 2}
	b := ir.Ref{Array: "a", Subscripts: subB, Kind: ir.Read, Depth: 2}
	nest.Refs = []ir.Ref{a, b}
	return nest.Pair(a, b)
}

func TestBuildSimple(t *testing.T) {
	// paper §3.1: for i = 1 to 10 { a[i+10] = a[i] }: find i, i' with
	// i + 10 = i', 1 ≤ i,i' ≤ 10.
	p, err := Build(singleLoopPair(1, 10, ir.NewVar("i").AddConst(10), ir.NewVar("i")))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Vars) != 2 || p.Vars[0].Name != "i" || p.Vars[1].Name != "i'" {
		t.Fatalf("vars = %v", p.Vars)
	}
	// equation: 1·i - 1·i' = -10  (subA - subB': (i+10) - i' )
	if p.Eq.At(0, 0) != 1 || p.Eq.At(1, 0) != -1 || p.RHS[0] != -10 {
		t.Fatalf("equation wrong: %v rhs %v", p.Eq, p.RHS)
	}
	for i := range p.Vars {
		if !p.Lower[i].Has || !p.Upper[i].Has {
			t.Fatalf("var %d missing bounds", i)
		}
	}
	if p.Common != 1 {
		t.Fatalf("Common = %d", p.Common)
	}
}

func TestBuildErrors(t *testing.T) {
	pair := singleLoopPair(1, 10, ir.NewVar("i"), ir.NewVar("i"))
	pair.B.Ref.Array = "b"
	if _, err := Build(pair); err == nil {
		t.Fatal("different arrays must error")
	}
	pair = singleLoopPair(1, 10, ir.NewVar("i"), ir.NewVar("i"))
	pair.B.Ref.Subscripts = append(pair.B.Ref.Subscripts, ir.NewConst(0))
	if _, err := Build(pair); err == nil {
		t.Fatal("mismatched dimensionality must error")
	}
	pair = singleLoopPair(1, 10, ir.NewVar("k"), ir.NewVar("i"))
	if _, err := Build(pair); err == nil {
		t.Fatal("unknown subscript variable must error")
	}
}

func TestPreprocessGCDIndependent(t *testing.T) {
	// a[2i] = a[2i+1]: gcd 2 does not divide 1 → independent by GCD alone.
	p, err := Build(singleLoopPair(1, 10, ir.NewTerm("i", 2), ir.NewTerm("i", 2).AddConst(1)))
	if err != nil {
		t.Fatal(err)
	}
	res, ts, err := Preprocess(p)
	if err != nil {
		t.Fatal(err)
	}
	if res != GCDIndependent || ts != nil {
		t.Fatalf("res = %v, ts = %v", res, ts)
	}
}

func TestPreprocessPaperExample(t *testing.T) {
	// Paper §3.1: for i = 1 to 10 { a[i+10] = a[i] } transforms to
	// ∃ t: 1 ≤ t ≤ 10 and 1 ≤ t+10 ≤ 10 (one free variable). The resulting
	// t-system must have 1 variable and 4 single-variable constraints whose
	// integer hull is empty.
	p, err := Build(singleLoopPair(1, 10, ir.NewVar("i").AddConst(10), ir.NewVar("i")))
	if err != nil {
		t.Fatal(err)
	}
	res, ts, err := Preprocess(p)
	if err != nil {
		t.Fatal(err)
	}
	if res != GCDDependent {
		t.Fatal("equality system is integer-solvable; GCD must not reject")
	}
	if ts.NumT != 1 {
		t.Fatalf("NumT = %d, want 1 (one equation eliminates one var)", ts.NumT)
	}
	if len(ts.Cons) != 4 {
		t.Fatalf("constraints = %d, want 4 (two per loop var)", len(ts.Cons))
	}
	for _, c := range ts.Cons {
		if c.NumVarsUsed() != 1 {
			t.Fatalf("constraint %v uses %d vars, want 1", c, c.NumVarsUsed())
		}
	}
	// The parameterization must satisfy the equation: i(t) + 10 = i'(t).
	iT, ipT := ts.XOf[0], ts.XOf[1]
	diff, err := ipT.Sub(iT)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.IsConst() || diff.Const != 10 {
		t.Fatalf("i' - i = %v, want constant 10", diff)
	}
}

func TestPreprocessDistance(t *testing.T) {
	// a[i] = a[i-3]: distance should be the constant i' - i = ... with
	// i = i'-3, distance iB - iA = -3... direction depends on ordering:
	// write a[i], read a[i-3]: i = i' - 3 → i' = i + 3, distance +3.
	p, err := Build(singleLoopPair(0, 10, ir.NewVar("i"), ir.NewVar("i").AddConst(-3)))
	if err != nil {
		t.Fatal(err)
	}
	res, ts, err := Preprocess(p)
	if err != nil || res != GCDDependent {
		t.Fatalf("res=%v err=%v", res, err)
	}
	d, err := ts.Distance(0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsConst() || d.Const != 3 {
		t.Fatalf("distance = %v, want constant 3", d)
	}
}

func TestCoupledSubscripts(t *testing.T) {
	// Paper §3.2 worked example: a[i1][i2] = a[i2+10][i1+9] over 1..10 ×
	// 1..10. After GCD, SVPC-style constraints must show lb(t1) > ub(t1).
	p, err := Build(doubleLoopPair(
		[]ir.Expr{ir.NewVar("i"), ir.NewVar("j")},
		[]ir.Expr{ir.NewVar("j").AddConst(10), ir.NewVar("i").AddConst(9)},
	))
	if err != nil {
		t.Fatal(err)
	}
	res, ts, err := Preprocess(p)
	if err != nil {
		t.Fatal(err)
	}
	if res != GCDDependent {
		t.Fatal("GCD alone cannot reject the coupled example")
	}
	// 4 vars, 2 equations → 2 free variables, 8 bound constraints, all
	// single-variable (this is what makes SVPC applicable).
	if ts.NumT != 2 {
		t.Fatalf("NumT = %d, want 2", ts.NumT)
	}
	if len(ts.Cons) != 8 {
		t.Fatalf("constraints = %d, want 8", len(ts.Cons))
	}
	for _, c := range ts.Cons {
		if c.NumVarsUsed() != 1 {
			t.Fatalf("constraint %v not single-variable", c)
		}
	}
}

func TestTriangularBounds(t *testing.T) {
	// for i = 1 to 10, for j = i to 10 { a[j] = a[j-1] }: the inner bound
	// references the outer index, producing multi-variable constraints.
	nest := &ir.Nest{
		Label: "tri",
		Loops: []ir.Loop{
			{Index: "i", Lower: ir.NewConst(1), Upper: ir.NewConst(10)},
			{Index: "j", Lower: ir.NewVar("i"), Upper: ir.NewConst(10)},
		},
	}
	a := ir.Ref{Array: "a", Subscripts: []ir.Expr{ir.NewVar("j")}, Kind: ir.Write, Depth: 2}
	b := ir.Ref{Array: "a", Subscripts: []ir.Expr{ir.NewVar("j").AddConst(-1)}, Kind: ir.Read, Depth: 2}
	nest.Refs = []ir.Ref{a, b}
	p, err := Build(nest.Pair(a, b))
	if err != nil {
		t.Fatal(err)
	}
	res, ts, err := Preprocess(p)
	if err != nil || res != GCDDependent {
		t.Fatalf("res=%v err=%v", res, err)
	}
	multi := 0
	for _, c := range ts.Cons {
		if c.NumVarsUsed() > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("triangular bounds must produce multi-variable constraints")
	}
}

func TestSymbolicVariable(t *testing.T) {
	// paper §8: read(n); for i = 1 to 10 { a[i+n] = a[i+2n+1] }.
	nest := &ir.Nest{
		Label:   "sym",
		Symbols: []string{"n"},
		Loops:   []ir.Loop{{Index: "i", Lower: ir.NewConst(1), Upper: ir.NewConst(10)}},
	}
	a := ir.Ref{Array: "a", Subscripts: []ir.Expr{ir.NewVar("i").Add(ir.NewVar("n"))}, Kind: ir.Write, Depth: 1}
	b := ir.Ref{Array: "a", Subscripts: []ir.Expr{ir.NewVar("i").Add(ir.NewTerm("n", 2)).AddConst(1)}, Kind: ir.Read, Depth: 1}
	nest.Refs = []ir.Ref{a, b}
	p, err := Build(nest.Pair(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Vars) != 3 {
		t.Fatalf("vars = %v, want i, i', n", p.Vars)
	}
	if p.Vars[2].Kind != Symbol {
		t.Fatal("n must be a Symbol variable")
	}
	if p.Lower[2].Has || p.Upper[2].Has {
		t.Fatal("symbols carry no bounds")
	}
	res, ts, err := Preprocess(p)
	if err != nil || res != GCDDependent {
		t.Fatalf("res=%v err=%v", res, err)
	}
	// i + n = i' + 2n + 1 → i - i' - n = 1: one equation, three vars, two
	// free t. Bounds only constrain i and i'.
	if ts.NumT != 2 {
		t.Fatalf("NumT = %d", ts.NumT)
	}
}

func TestAddDirection(t *testing.T) {
	p, err := Build(singleLoopPair(1, 10, ir.NewVar("i").AddConst(1), ir.NewVar("i")))
	if err != nil {
		t.Fatal(err)
	}
	_, ts, err := Preprocess(p)
	if err != nil {
		t.Fatal(err)
	}
	// For a[i+1] vs a[i] the distance is the constant 1, so '<' (i < i') is
	// vacuously true: the added constraint normalizes away and the system
	// must stay feasible and unchanged.
	lt := ts.Clone()
	if err := lt.AddDirection(0, '<'); err != nil {
		t.Fatal(err)
	}
	if lt.Infeasible || len(lt.Cons) != len(ts.Cons) {
		t.Fatalf("'<' on constant distance 1: infeasible=%v cons=%d", lt.Infeasible, len(lt.Cons))
	}
	eq := ts.Clone()
	if err := eq.AddDirection(0, '='); err != nil {
		t.Fatal(err)
	}
	// For a[i+1] vs a[i], i' = i+1 so i=i' is the constant inequality
	// 1 ≤ 0: the system must become infeasible immediately.
	if !eq.Infeasible {
		t.Fatal("'=' direction on distance-1 dependence must be infeasible")
	}
	if err := ts.Clone().AddDirection(0, '?'); err == nil {
		t.Fatal("unknown direction must error")
	}
	if err := ts.Clone().AddDirection(5, '<'); err == nil {
		t.Fatal("bad level must error")
	}
}

func TestAddDirectionFreeDistance(t *testing.T) {
	// a[5] vs a[5]: the iteration variables are unconstrained by the
	// subscripts, so a direction constraint must materialize.
	p, err := Build(singleLoopPair(1, 10, ir.NewConst(5), ir.NewConst(5)))
	if err != nil {
		t.Fatal(err)
	}
	_, ts, err := Preprocess(p)
	if err != nil {
		t.Fatal(err)
	}
	lt := ts.Clone()
	if err := lt.AddDirection(0, '<'); err != nil {
		t.Fatal(err)
	}
	if len(lt.Cons) != len(ts.Cons)+1 {
		t.Fatalf("'<' with free distance must add one constraint: %d → %d", len(ts.Cons), len(lt.Cons))
	}
	gt := ts.Clone()
	if err := gt.AddDirection(0, '>'); err != nil {
		t.Fatal(err)
	}
	if len(gt.Cons) != len(ts.Cons)+1 {
		t.Fatalf("'>' with free distance must add one constraint: %d → %d", len(ts.Cons), len(gt.Cons))
	}
	eq := ts.Clone()
	if err := eq.AddDirection(0, '='); err != nil {
		t.Fatal(err)
	}
	if eq.Infeasible {
		t.Fatal("'=' with free distance must stay feasible")
	}
	d, err := ts.Distance(0)
	if err != nil {
		t.Fatal(err)
	}
	if d.IsConst() {
		t.Fatal("distance must be non-constant for a[5] vs a[5]")
	}
}

func TestLevelUsed(t *testing.T) {
	// for i, for j { a[i] = a[i+1] }: j is unused.
	nest := &ir.Nest{
		Label: "unused",
		Loops: []ir.Loop{
			{Index: "i", Lower: ir.NewConst(1), Upper: ir.NewConst(10)},
			{Index: "j", Lower: ir.NewConst(1), Upper: ir.NewConst(10)},
		},
	}
	a := ir.Ref{Array: "a", Subscripts: []ir.Expr{ir.NewVar("i")}, Kind: ir.Write, Depth: 2}
	b := ir.Ref{Array: "a", Subscripts: []ir.Expr{ir.NewVar("i").AddConst(1)}, Kind: ir.Read, Depth: 2}
	nest.Refs = []ir.Ref{a, b}
	p, err := Build(nest.Pair(a, b))
	if err != nil {
		t.Fatal(err)
	}
	_, ts, err := Preprocess(p)
	if err != nil {
		t.Fatal(err)
	}
	if !ts.LevelUsed(0) {
		t.Fatal("level 0 (i) is used")
	}
	if ts.LevelUsed(1) {
		t.Fatal("level 1 (j) is unused")
	}
}

func TestConstraintNormalize(t *testing.T) {
	c := Constraint{Coef: []int64{2, 4}, C: 7}
	n, ok := c.Normalize()
	if !ok || n.Coef[0] != 1 || n.Coef[1] != 2 || n.C != 3 {
		t.Fatalf("Normalize = %v ok=%v, want [1 2] ≤ 3", n, ok)
	}
	// constant constraints
	if _, ok := (Constraint{Coef: []int64{0}, C: -1}).Normalize(); ok {
		t.Fatal("0 ≤ -1 must be infeasible")
	}
	if _, ok := (Constraint{Coef: []int64{0}, C: 0}).Normalize(); !ok {
		t.Fatal("0 ≤ 0 is feasible")
	}
}

func TestProblemString(t *testing.T) {
	p, err := Build(singleLoopPair(1, 10, ir.NewVar("i").AddConst(10), ir.NewVar("i")))
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"vars: i i'", "= -10", "1 ≤ i ≤ 10"} {
		if !strings.Contains(s, want) {
			t.Errorf("Problem.String missing %q:\n%s", want, s)
		}
	}
	_, ts, err := Preprocess(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ts.String(), "t-system") {
		t.Error("TSystem.String malformed")
	}
}

// TestParameterizationSoundness: for random problems, every integer choice
// of the free t variables must satisfy the subscript equations through the
// x = t·U parameterization — the core invariant of the Extended GCD
// preprocessing.
func TestParameterizationSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 500; iter++ {
		depth := 1 + rng.Intn(2)
		names := []string{"i", "j"}[:depth]
		loops := make([]ir.Loop, depth)
		for d := range loops {
			loops[d] = ir.Loop{Index: names[d],
				Lower: ir.NewConst(int64(rng.Intn(3))),
				Upper: ir.NewConst(int64(5 + rng.Intn(5)))}
		}
		mk := func() []ir.Expr {
			e := ir.NewConst(int64(rng.Intn(7) - 3))
			for _, v := range names {
				e = e.Add(ir.NewTerm(v, int64(rng.Intn(5)-2)))
			}
			return []ir.Expr{e}
		}
		nest := &ir.Nest{Label: "prop", Loops: loops}
		a := ir.Ref{Array: "a", Subscripts: mk(), Kind: ir.Write, Depth: depth}
		b := ir.Ref{Array: "a", Subscripts: mk(), Kind: ir.Read, Depth: depth}
		nest.Refs = []ir.Ref{a, b}
		prob, err := Build(nest.Pair(a, b))
		if err != nil {
			t.Fatal(err)
		}
		res, ts, err := Preprocess(prob)
		if err != nil {
			t.Fatal(err)
		}
		if res == GCDIndependent {
			continue
		}
		// random t assignment
		tval := make([]int64, ts.NumT)
		for k := range tval {
			tval[k] = int64(rng.Intn(11) - 5)
		}
		// evaluate each x variable
		xval := make([]int64, len(prob.Vars))
		for i, xe := range ts.XOf {
			v := xe.Const
			for k, c := range xe.Coef {
				v += c * tval[k]
			}
			xval[i] = v
		}
		// every equation column must hold: Σ Eq[i][d]·x_i = RHS[d]
		for d := 0; d < prob.Eq.Cols; d++ {
			var sum int64
			for i := range prob.Vars {
				sum += prob.Eq.At(i, d) * xval[i]
			}
			if sum != prob.RHS[d] {
				t.Fatalf("iter %d: parameterization violates equation %d: %d != %d\n%s",
					iter, d, sum, prob.RHS[d], prob.String())
			}
		}
	}
}

func TestTExprString(t *testing.T) {
	e := TExpr{Const: -3, Coef: []int64{2, 0, -1}}
	if got := e.String(); got != "2*t1 - t3 - 3" {
		t.Fatalf("TExpr.String = %q", got)
	}
	if got := (TExpr{Coef: []int64{0}}).String(); got != "0" {
		t.Fatalf("zero TExpr = %q", got)
	}
}
