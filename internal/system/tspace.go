package system

import (
	"fmt"
	"strings"

	"exactdep/internal/ir"
	"exactdep/internal/linalg"
)

// TExpr is an affine expression over the free t variables:
// Const + Σ Coef[f]·t_f.
type TExpr struct {
	Const int64
	Coef  []int64
}

// IsConst reports whether the expression has no t terms.
func (e TExpr) IsConst() bool {
	for _, c := range e.Coef {
		if c != 0 {
			return false
		}
	}
	return true
}

// Sub returns e - f (both must share a coefficient length).
func (e TExpr) Sub(f TExpr) (TExpr, error) {
	out := TExpr{Coef: make([]int64, len(e.Coef))}
	var err error
	if out.Const, err = linalg.AddChecked(e.Const, -f.Const); err != nil {
		return TExpr{}, err
	}
	for i := range e.Coef {
		if out.Coef[i], err = linalg.AddChecked(e.Coef[i], -f.Coef[i]); err != nil {
			return TExpr{}, err
		}
	}
	return out, nil
}

// String renders e over t1..tn.
func (e TExpr) String() string {
	var b strings.Builder
	first := true
	for i, c := range e.Coef {
		if c == 0 {
			continue
		}
		writeT(&b, c, i+1, first)
		first = false
	}
	if e.Const != 0 || first {
		if !first {
			if e.Const >= 0 {
				fmt.Fprintf(&b, " + %d", e.Const)
			} else {
				fmt.Fprintf(&b, " - %d", -e.Const)
			}
		} else {
			fmt.Fprintf(&b, "%d", e.Const)
		}
	}
	return b.String()
}

func writeT(b *strings.Builder, c int64, idx int, first bool) {
	switch {
	case first && c < 0:
		b.WriteString("-")
		c = -c
	case !first && c < 0:
		b.WriteString(" - ")
		c = -c
	case !first:
		b.WriteString(" + ")
	}
	if c != 1 {
		fmt.Fprintf(b, "%d*", c)
	}
	fmt.Fprintf(b, "t%d", idx)
}

// Constraint is the inequality Σ Coef[f]·t_f ≤ C.
type Constraint struct {
	Coef []int64
	C    int64
}

// NumVarsUsed returns the count of nonzero coefficients.
func (c Constraint) NumVarsUsed() int {
	n := 0
	for _, v := range c.Coef {
		if v != 0 {
			n++
		}
	}
	return n
}

// String renders the constraint.
func (c Constraint) String() string {
	e := TExpr{Coef: c.Coef}
	return fmt.Sprintf("%s <= %d", e.String(), c.C)
}

// Normalize divides the constraint by the gcd of its coefficients,
// tightening the constant with a floor (valid for integer solutions). It
// reports ok=false when the constraint is an unsatisfiable "0 ≤ negative".
func (c Constraint) Normalize() (Constraint, bool) {
	g := linalg.GCDAll(c.Coef)
	if g == 0 {
		// no variables: feasible iff 0 ≤ C
		return c, c.C >= 0
	}
	if g > 1 {
		out := Constraint{Coef: make([]int64, len(c.Coef)), C: linalg.FloorDiv(c.C, g)}
		for i, v := range c.Coef {
			out.Coef[i] = v / g
		}
		return out, true
	}
	return c, true
}

// NormalizeInPlace is Normalize for a constraint whose coefficient row is
// owned by the caller (e.g. a Scratch row): the gcd division writes back
// into c.Coef instead of allocating a fresh row. The arithmetic is identical
// to Normalize.
func (c Constraint) NormalizeInPlace() (Constraint, bool) {
	g := linalg.GCDAll(c.Coef)
	if g == 0 {
		return c, c.C >= 0
	}
	if g > 1 {
		for i, v := range c.Coef {
			c.Coef[i] = v / g
		}
		c.C = linalg.FloorDiv(c.C, g)
	}
	return c, true
}

// TSystem is the dependence problem after Extended GCD preprocessing: an
// inequality system over the free t variables, plus the parameterization of
// the original x variables in terms of t (used for distance vectors and
// direction constraints).
type TSystem struct {
	NumT int
	Cons []Constraint
	// XOf[i] expresses original variable i as an affine function of t.
	XOf []TExpr
	// Prob points back to the x-space problem.
	Prob *Problem
	// Infeasible is set when a bound constraint degenerated to an
	// unsatisfiable constant inequality during construction.
	Infeasible bool
}

// Clone returns a deep copy of the system sharing XOf/Prob (which are
// immutable after construction) but with an independent constraint slice.
func (s *TSystem) Clone() *TSystem {
	out := *s
	out.Cons = make([]Constraint, len(s.Cons))
	copy(out.Cons, s.Cons)
	return &out
}

// GCDResult reports the outcome of the Extended GCD test.
type GCDResult int

const (
	// GCDIndependent: the equality system alone has no integer solution.
	GCDIndependent GCDResult = iota
	// GCDDependent: integer solutions exist ignoring bounds; the returned
	// TSystem carries the bound constraints for the exact tests.
	GCDDependent
)

// Preprocess runs the Extended GCD test and, when it does not prove
// independence, builds the t-space inequality system.
func Preprocess(p *Problem) (GCDResult, *TSystem, error) {
	ech, err := linalg.Factor(p.Eq)
	if err != nil {
		return 0, nil, err
	}
	sol, ok, err := ech.Solve(p.RHS)
	if err != nil {
		return 0, nil, err
	}
	if !ok {
		return GCDIndependent, nil, nil
	}
	n := len(p.Vars)
	numT := n - ech.Rank
	// x_k = Σ_{i<rank} sol_i·U[i][k] + Σ_{f} t_f·U[rank+f][k]
	xof := make([]TExpr, n)
	for k := 0; k < n; k++ {
		e := TExpr{Coef: make([]int64, numT)}
		for i := 0; i < ech.Rank; i++ {
			prod, err := linalg.MulChecked(sol[i], ech.U.At(i, k))
			if err != nil {
				return 0, nil, err
			}
			if e.Const, err = linalg.AddChecked(e.Const, prod); err != nil {
				return 0, nil, err
			}
		}
		for f := 0; f < numT; f++ {
			e.Coef[f] = ech.U.At(ech.Rank+f, k)
		}
		xof[k] = e
	}
	ts := &TSystem{NumT: numT, XOf: xof, Prob: p}
	// Transform each bound into a t-space constraint.
	for i := range p.Vars {
		if p.Lower[i].Has {
			// L(x) ≤ x_i  →  L(x) - x_i ≤ 0
			lhs, err := p.exprToT(p.Lower[i].Expr, xof)
			if err != nil {
				return 0, nil, err
			}
			diff, err := lhs.Sub(xof[i])
			if err != nil {
				return 0, nil, err
			}
			ts.addConstraint(diff)
		}
		if p.Upper[i].Has {
			// x_i ≤ U(x)  →  x_i - U(x) ≤ 0
			rhs, err := p.exprToT(p.Upper[i].Expr, xof)
			if err != nil {
				return 0, nil, err
			}
			diff, err := xof[i].Sub(rhs)
			if err != nil {
				return 0, nil, err
			}
			ts.addConstraint(diff)
		}
	}
	return GCDDependent, ts, nil
}

// exprToT converts an affine x-space expression into a TExpr by substituting
// each variable's t parameterization.
func (p *Problem) exprToT(e ir.Expr, xof []TExpr) (TExpr, error) {
	var numT int
	if len(xof) > 0 {
		numT = len(xof[0].Coef)
	}
	out := TExpr{Coef: make([]int64, numT), Const: e.Const}
	var err error
	for _, v := range e.Vars() {
		i := p.VarIndex(v)
		if i < 0 {
			return TExpr{}, fmt.Errorf("system: unknown variable %q in bound", v)
		}
		c := e.Coeff(v)
		prod, err2 := linalg.MulChecked(c, xof[i].Const)
		if err2 != nil {
			return TExpr{}, err2
		}
		if out.Const, err = linalg.AddChecked(out.Const, prod); err != nil {
			return TExpr{}, err
		}
		for f := 0; f < numT; f++ {
			prod, err2 := linalg.MulChecked(c, xof[i].Coef[f])
			if err2 != nil {
				return TExpr{}, err2
			}
			if out.Coef[f], err = linalg.AddChecked(out.Coef[f], prod); err != nil {
				return TExpr{}, err
			}
		}
	}
	return out, nil
}

// addConstraint appends "expr ≤ 0" as a normalized constraint, folding the
// constant to the right-hand side. Trivially true constraints are dropped;
// trivially false ones mark the system infeasible.
func (s *TSystem) addConstraint(e TExpr) {
	c := Constraint{Coef: e.Coef, C: -e.Const}
	c, ok := c.Normalize()
	if !ok {
		s.Infeasible = true
		return
	}
	if c.NumVarsUsed() == 0 {
		return // 0 ≤ C with C ≥ 0: vacuous
	}
	s.Cons = append(s.Cons, c)
}

// AddDirection appends the constraint for direction dir at common loop level
// lvl: '<' means iA < iB, '=' equality (two inequalities), '>' iA > iB.
// It returns an error for unknown directions or overflow.
func (s *TSystem) AddDirection(lvl int, dir byte) error {
	return s.PushDirection(lvl, dir, nil)
}

// TrailMark is a snapshot of the constraint stack, taken by Mark and
// restored by PopTo. It captures the constraint count and the infeasibility
// flag — everything PushDirection can change.
type TrailMark struct {
	cons       int
	infeasible bool
}

// Mark snapshots the constraint stack for a later PopTo. The refinement
// walk brackets every direction push with Mark/PopTo so one scratch system
// serves the whole DFS instead of a clone per tree node.
func (s *TSystem) Mark() TrailMark {
	return TrailMark{cons: len(s.Cons), infeasible: s.Infeasible}
}

// PopTo restores the system to a Mark, dropping every constraint pushed
// since. Marks must be popped in LIFO order. Constraint rows handed out by
// an arena between Mark and PopTo may be released with it (the dropped
// constraints are the only references).
func (s *TSystem) PopTo(m TrailMark) {
	s.Cons = s.Cons[:m.cons]
	s.Infeasible = m.infeasible
}

// PushDirection is AddDirection drawing its constraint rows from sc, so a
// Mark/PushDirection/PopTo bracket allocates nothing once the arena is warm
// (pass sc=nil to allocate fresh rows, which is what AddDirection does).
// The pushed constraints are bit-identical to AddDirection's. On error the
// system is unchanged.
func (s *TSystem) PushDirection(lvl int, dir byte, sc *Scratch) error {
	ai, bi := s.Prob.CommonPair(lvl)
	if ai < 0 || bi < 0 {
		return fmt.Errorf("system: level %d is not a common loop", lvl)
	}
	a, b := s.XOf[ai], s.XOf[bi]
	dc, err := linalg.AddChecked(a.Const, -b.Const) // (iA - iB).Const
	if err != nil {
		return err
	}
	// row materializes sign·(iA - iB)'s coefficients. Only the element-wise
	// subtraction is checked, matching TExpr.Sub; the sign flip mirrors
	// AddDirection's unchecked negation.
	row := func(sign int64) ([]int64, error) {
		var r []int64
		if sc != nil {
			r = sc.Row(len(a.Coef))
		} else {
			r = make([]int64, len(a.Coef))
		}
		for i := range r {
			d, err := linalg.AddChecked(a.Coef[i], -b.Coef[i])
			if err != nil {
				return nil, err
			}
			r[i] = sign * d
		}
		return r, nil
	}
	switch dir {
	case '<': // iA - iB ≤ -1
		r, err := row(1)
		if err != nil {
			return err
		}
		s.pushConstraint(r, -(dc + 1))
	case '=': // iA - iB ≤ 0 and iB - iA ≤ 0
		r1, err := row(1)
		if err != nil {
			return err
		}
		r2, err := row(-1)
		if err != nil {
			return err
		}
		s.pushConstraint(r1, -dc)
		s.pushConstraint(r2, dc)
	case '>': // iB - iA ≤ -1
		r, err := row(-1)
		if err != nil {
			return err
		}
		s.pushConstraint(r, dc-1)
	default:
		return fmt.Errorf("system: unknown direction %q", string(dir))
	}
	return nil
}

// pushConstraint is addConstraint for a caller-owned coefficient row: the
// gcd normalization writes in place instead of allocating. Same dropping and
// infeasibility rules.
func (s *TSystem) pushConstraint(coef []int64, c int64) {
	nc, ok := (Constraint{Coef: coef, C: c}).NormalizeInPlace()
	if !ok {
		s.Infeasible = true
		return
	}
	if nc.NumVarsUsed() == 0 {
		return // 0 ≤ C with C ≥ 0: vacuous
	}
	s.Cons = append(s.Cons, nc)
}

// Distance returns iB - iA at common level lvl as a t-space expression. A
// constant result is a known dependence distance (paper §6).
func (s *TSystem) Distance(lvl int) (TExpr, error) {
	ai, bi := s.Prob.CommonPair(lvl)
	if ai < 0 || bi < 0 {
		return TExpr{}, fmt.Errorf("system: level %d is not a common loop", lvl)
	}
	return s.XOf[bi].Sub(s.XOf[ai])
}

// LevelUsed reports whether common level lvl's index variables actually
// constrain the problem (see Problem.LevelUsed).
func (s *TSystem) LevelUsed(lvl int) bool { return s.Prob.LevelUsed(lvl) }

// LevelUsed reports whether common level lvl's index variables actually
// constrain the problem: either instance appears in a subscript equation or
// in the bound of any variable. Unused levels always admit every direction
// (the paper's unused-variable pruning, §5 and §6).
func (p *Problem) LevelUsed(lvl int) bool {
	ai, bi := p.CommonPair(lvl)
	for _, i := range []int{ai, bi} {
		if i < 0 {
			continue
		}
		for d := 0; d < p.Eq.Cols; d++ {
			if p.Eq.At(i, d) != 0 {
				return true
			}
		}
		name := p.Vars[i].Name
		for j := range p.Vars {
			if j == i {
				continue
			}
			if p.Lower[j].Has && p.Lower[j].Expr.Uses(name) {
				return true
			}
			if p.Upper[j].Has && p.Upper[j].Expr.Uses(name) {
				return true
			}
		}
	}
	return false
}

// String renders the t-space system.
func (s *TSystem) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t-system (%d vars, %d constraints)\n", s.NumT, len(s.Cons))
	for i, x := range s.XOf {
		fmt.Fprintf(&b, "  %s = %s\n", s.Prob.Vars[i].Name, x.String())
	}
	for _, c := range s.Cons {
		fmt.Fprintf(&b, "  %s\n", c.String())
	}
	return b.String()
}
