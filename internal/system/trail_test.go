package system

// Unit tests for the constraint push/pop trail (PR 5's clone-free
// refinement substrate): PushDirection must push bit-identical constraints
// to AddDirection, PopTo must restore the system exactly (constraints and
// the infeasibility flag), and the row arena's Mark/Release must behave
// under growth.

import (
	"reflect"
	"testing"

	"exactdep/internal/ir"
)

func trailSystem(t *testing.T) *TSystem {
	t.Helper()
	p, err := Build(doubleLoopPair(
		[]ir.Expr{ir.NewTerm("i", 2).Add(ir.NewVar("j")), ir.NewTerm("j", 2).AddConst(1)},
		[]ir.Expr{ir.NewVar("i").AddConst(1), ir.NewVar("j")}))
	if err != nil {
		t.Fatal(err)
	}
	_, ts, err := Preprocess(p)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// TestPushDirectionMatchesAddDirection: for every level and direction, a
// push onto the shared system must yield exactly the system a clone +
// AddDirection yields, and PopTo must then restore the original exactly.
func TestPushDirectionMatchesAddDirection(t *testing.T) {
	ts := trailSystem(t)
	before := ts.String()
	var sc Scratch
	for lvl := 0; lvl < ts.Prob.Common; lvl++ {
		for _, dir := range []byte{'<', '=', '>'} {
			cloned := ts.Clone()
			if err := cloned.AddDirection(lvl, dir); err != nil {
				t.Fatalf("AddDirection(%d, %c): %v", lvl, dir, err)
			}
			m := ts.Mark()
			am := sc.Mark()
			if err := ts.PushDirection(lvl, dir, &sc); err != nil {
				t.Fatalf("PushDirection(%d, %c): %v", lvl, dir, err)
			}
			if !reflect.DeepEqual(ts.Cons, cloned.Cons) || ts.Infeasible != cloned.Infeasible {
				t.Fatalf("level %d dir %c: pushed system differs from cloned\n push %v\nclone %v",
					lvl, dir, ts.Cons, cloned.Cons)
			}
			ts.PopTo(m)
			sc.Release(am)
			if got := ts.String(); got != before {
				t.Fatalf("PopTo did not restore the system:\nbefore %s\nafter  %s", before, got)
			}
		}
	}
}

// TestTrailNestedPushes exercises the DFS discipline: nested pushes across
// levels, popped LIFO, must restore each intermediate state including the
// infeasibility flag.
func TestTrailNestedPushes(t *testing.T) {
	ts := trailSystem(t)
	var sc Scratch
	before := ts.String()

	m0 := ts.Mark()
	a0 := sc.Mark()
	if err := ts.PushDirection(0, '<', &sc); err != nil {
		t.Fatal(err)
	}
	mid := ts.String()

	m1 := ts.Mark()
	a1 := sc.Mark()
	nCons := len(ts.Cons)
	if err := ts.PushDirection(1, '=', &sc); err != nil {
		t.Fatal(err)
	}
	if len(ts.Cons) <= nCons {
		t.Fatal("inner push must add constraints")
	}
	ts.PopTo(m1)
	sc.Release(a1)
	if got := ts.String(); got != mid {
		t.Fatalf("inner pop must restore the outer push state:\nwant %s\ngot  %s", mid, got)
	}
	ts.PopTo(m0)
	sc.Release(a0)
	if got := ts.String(); got != before {
		t.Fatalf("outer pop must restore the original:\nwant %s\ngot  %s", before, got)
	}
}

// TestTrailInfeasibleRestore: a push that makes the system infeasible must
// be fully undone by PopTo.
func TestTrailInfeasibleRestore(t *testing.T) {
	p, err := Build(singleLoopPair(1, 10, ir.NewVar("i").AddConst(1), ir.NewVar("i")))
	if err != nil {
		t.Fatal(err)
	}
	_, ts, err := Preprocess(p)
	if err != nil {
		t.Fatal(err)
	}
	var sc Scratch
	m := ts.Mark()
	am := sc.Mark()
	// a[i+1] vs a[i] has constant distance 1, so '=' is the constant
	// falsehood 1 ≤ 0.
	if err := ts.PushDirection(0, '=', &sc); err != nil {
		t.Fatal(err)
	}
	if !ts.Infeasible {
		t.Fatal("'=' on distance-1 dependence must be infeasible")
	}
	ts.PopTo(m)
	sc.Release(am)
	if ts.Infeasible {
		t.Fatal("PopTo must clear the infeasibility pushed after the mark")
	}
}

// TestScratchMarkReleaseAcrossGrow pins the arena's generation rule: a
// Release whose Mark predates a growth is a no-op (the rows leak until
// Reset), and rows handed out before the growth stay intact.
func TestScratchMarkReleaseAcrossGrow(t *testing.T) {
	var sc Scratch
	r1 := sc.Row(4)
	for i := range r1 {
		r1[i] = int64(i + 1)
	}
	m := sc.Mark()
	sc.Row(8)
	// Force growth: ask for more than the current buffer can hold, but less
	// than the doubled size, so later small rows still fit.
	big := sc.Row(300)
	if len(big) != 300 {
		t.Fatalf("grown row has length %d", len(big))
	}
	off := sc.Mark()
	sc.Release(m) // stale: points into the retired buffer
	if got := sc.Mark(); got != off {
		t.Fatal("stale Release must be a no-op after growth")
	}
	for i := range r1 {
		if r1[i] != int64(i+1) {
			t.Fatal("pre-growth row corrupted by growth")
		}
	}
	// A post-growth mark still releases normally.
	m2 := sc.Mark()
	sc.Row(16)
	sc.Release(m2)
	if sc.Mark() != m2 {
		t.Fatal("post-growth Release must reclaim")
	}
	sc.Reset()
	if sc.Mark() != (ScratchMark{off: 0, gen: sc.gen}) {
		t.Fatal("Reset must rewind the offset")
	}
}
