package system

// Scratch is a reusable arena of coefficient rows. The cascade allocates a
// fresh []int64 for every cloned, substituted, or re-expanded constraint; on
// the steady-state path that garbage dominates the cost of the cheap tests
// (§7 prices SVPC at a tenth of a millisecond — a handful of mallocs is
// visible at that scale). A Scratch hands out rows carved from one growing
// buffer instead, and Reset reclaims them all at once between problems.
//
// Rows stay valid until the arena is next Reset, even if the arena grows in
// between (growth allocates a new buffer; rows already handed out keep
// aliasing the old one). A Scratch is not safe for concurrent use — give
// each worker its own.
type Scratch struct {
	buf []int64
	off int
	gen int // bumped by grow, so stale Marks release as no-ops
}

// Reset reclaims every row handed out since the last Reset. Rows obtained
// earlier must no longer be referenced.
func (s *Scratch) Reset() { s.off = 0 }

// ScratchMark is a position in the arena, for stack-style release (the
// direction-vector refinement trail).
type ScratchMark struct {
	off, gen int
}

// Mark snapshots the arena position. Rows handed out after a Mark can be
// reclaimed together with Release, giving the refinement trail stack
// discipline without a full Reset.
func (s *Scratch) Mark() ScratchMark { return ScratchMark{off: s.off, gen: s.gen} }

// Release reclaims every row handed out since the matching Mark. Marks must
// be released in LIFO order. If the arena grew in between, the mark points
// into a retired buffer and the release is a no-op: the rows leak until the
// next Reset, which is safe (growth is rare and Reset runs per problem).
func (s *Scratch) Release(m ScratchMark) {
	if m.gen == s.gen {
		s.off = m.off
	}
}

// Row returns an uninitialized coefficient row of length n. The caller must
// overwrite every element (use ZeroRow when a zeroed row is needed). The
// row's capacity is clipped to n so an append can never clobber a
// neighbouring row.
func (s *Scratch) Row(n int) []int64 {
	if s.off+n > len(s.buf) {
		s.grow(n)
	}
	r := s.buf[s.off : s.off+n : s.off+n]
	s.off += n
	return r
}

// ZeroRow returns a zeroed coefficient row of length n.
func (s *Scratch) ZeroRow(n int) []int64 {
	r := s.Row(n)
	for i := range r {
		r[i] = 0
	}
	return r
}

// grow replaces the backing buffer with one that fits n more elements,
// at least doubling so the arena reaches a steady state after a few
// problems. Rows already handed out keep aliasing the old buffer.
func (s *Scratch) grow(n int) {
	size := 2 * len(s.buf)
	const minSize = 256
	if size < minSize {
		size = minSize
	}
	if size < n {
		size = n
	}
	s.buf = make([]int64, size)
	s.off = 0
	s.gen++
}
