package system

import (
	"fmt"

	"exactdep/internal/ir"
	"exactdep/internal/linalg"
)

// Builder constructs dependence problems into reusable scratch storage. It
// exists because Build runs once per candidate pair even when the verdict
// comes out of the memo tables, so its per-call allocations (the variable
// index map, the Eq matrix, renamed subscript copies, primed-name strings)
// dominate the memo-hot allocation profile. A Builder keeps the Problem
// shell, its slices, the Eq matrix backing, and the primed-name cache alive
// across calls and fills the equality matrix directly from the subscript
// term maps instead of materializing renamed/subtracted expression copies.
//
// The Problem returned by Build aliases the Builder's scratch and is valid
// until the next Build call on the same Builder. Builders are not safe for
// concurrent use; give each worker its own.
type Builder struct {
	prob   Problem
	eq     linalg.Matrix
	primed map[string]string
}

// primedName returns the cached B-side instance name of a loop index.
func (b *Builder) primedName(name string) string {
	if b.primed == nil {
		b.primed = make(map[string]string)
	}
	p, ok := b.primed[name]
	if !ok {
		p = primed(name)
		b.primed[name] = p
	}
	return p
}

// findVar returns the position of name among the variables built so far, or
// -1. Problems are small (a handful of indices plus symbols), so a linear
// scan beats building a map per call.
func (b *Builder) findVar(name string) int {
	for i := range b.prob.Vars {
		if b.prob.Vars[i].Name == name {
			return i
		}
	}
	return -1
}

// Build constructs the dependence problem for a candidate pair into the
// Builder's scratch. Semantics (variable order, equalities, bounds,
// validation, error cases) match the package-level Build; only the storage
// discipline differs.
func (b *Builder) Build(p ir.Pair) (*Problem, error) {
	ra, rb := p.A.Ref, p.B.Ref
	if ra.Array != rb.Array {
		return nil, fmt.Errorf("system: references to different arrays %q, %q", ra.Array, rb.Array)
	}
	if len(ra.Subscripts) != len(rb.Subscripts) {
		return nil, fmt.Errorf("system: %q referenced with %d and %d subscripts",
			ra.Array, len(ra.Subscripts), len(rb.Subscripts))
	}
	loopsA := p.A.Loops
	loopsB := p.B.Loops
	common := p.Common
	if common > len(loopsA) || common > len(loopsB) {
		return nil, fmt.Errorf("system: common depth %d exceeds stacks (%d, %d)",
			common, len(loopsA), len(loopsB))
	}

	prob := &b.prob
	prob.Common = common
	prob.Pair = p

	// Variable order: A-side indices outer→inner, B-side indices
	// outer→inner, then symbols. The order is part of the memoization key.
	prob.Vars = prob.Vars[:0]
	for lvl, l := range loopsA {
		prob.Vars = append(prob.Vars, Variable{Name: l.Index, Kind: IndexA, Level: lvl})
	}
	for lvl, l := range loopsB {
		prob.Vars = append(prob.Vars, Variable{Name: b.primedName(l.Index), Kind: IndexB, Level: lvl})
	}
	for _, s := range p.Symbols {
		prob.Vars = append(prob.Vars, Variable{Name: s, Kind: Symbol, Level: -1})
	}
	for i := 1; i < len(prob.Vars); i++ {
		for j := 0; j < i; j++ {
			if prob.Vars[j].Name == prob.Vars[i].Name {
				return nil, fmt.Errorf("system: duplicate variable %q", prob.Vars[i].Name)
			}
		}
	}

	// Subscript equalities: subA(i, s) = subB(i', s). Instead of renaming the
	// B-side expression onto primed indices and subtracting (two map clones
	// per dimension), add subA's coefficients and subtract subB's directly at
	// the variable positions the renames would have produced: a B-side term
	// naming loop level lvl lands at position len(loopsA)+lvl, everything
	// else (symbols, or A-side names a degenerate pair may share) resolves by
	// name against the variable list, exactly as Build's index map would.
	dims := len(ra.Subscripts)
	b.eq.Reshape(len(prob.Vars), dims)
	prob.Eq = &b.eq
	if cap(prob.RHS) < dims {
		prob.RHS = make([]int64, dims)
	}
	prob.RHS = prob.RHS[:dims]
	for d := 0; d < dims; d++ {
		subA := ra.Subscripts[d]
		subB := rb.Subscripts[d]
		for v, c := range subA.Terms {
			i := b.findVar(v)
			if i < 0 {
				return nil, fmt.Errorf("system: subscript uses unknown variable %q", v)
			}
			prob.Eq.Set(i, d, prob.Eq.At(i, d)+c)
		}
		for v, c := range subB.Terms {
			i := -1
			for lvl := range loopsB {
				if loopsB[lvl].Index == v {
					i = len(loopsA) + lvl
					break
				}
			}
			if i < 0 {
				i = b.findVar(v)
			}
			if i < 0 {
				return nil, fmt.Errorf("system: subscript uses unknown variable %q", v)
			}
			prob.Eq.Set(i, d, prob.Eq.At(i, d)-c)
		}
		prob.RHS[d] = subB.Const - subA.Const
	}

	// Bounds: A-side bounds over unprimed outer indices and symbols; B-side
	// bounds renamed onto primed indices (Rename is a no-op pass-through when
	// the outer index does not occur, the common rectangular case).
	prob.Lower = resizeBounds(prob.Lower, len(prob.Vars))
	prob.Upper = resizeBounds(prob.Upper, len(prob.Vars))
	for _, l := range loopsA {
		i := b.findVar(l.Index)
		if !l.NoLower {
			prob.Lower[i] = Bound{Has: true, Expr: l.Lower}
		}
		if !l.NoUpper {
			prob.Upper[i] = Bound{Has: true, Expr: l.Upper}
		}
	}
	for lvl, l := range loopsB {
		i := len(loopsA) + lvl
		lo, hi := l.Lower, l.Upper
		for _, outer := range loopsB[:lvl] {
			pn := b.primedName(outer.Index)
			lo = lo.Rename(outer.Index, pn)
			hi = hi.Rename(outer.Index, pn)
		}
		if !l.NoLower {
			prob.Lower[i] = Bound{Has: true, Expr: lo}
		}
		if !l.NoUpper {
			prob.Upper[i] = Bound{Has: true, Expr: hi}
		}
	}
	// Validate that bound expressions only mention known variables, walking
	// the term maps directly (Expr.Vars sorts into a fresh slice per call).
	for i := range prob.Vars {
		for _, bd := range [2]Bound{prob.Lower[i], prob.Upper[i]} {
			if !bd.Has {
				continue
			}
			for v := range bd.Expr.Terms {
				if b.findVar(v) < 0 {
					return nil, fmt.Errorf("system: bound of %q uses unknown variable %q", prob.Vars[i].Name, v)
				}
			}
		}
	}
	return prob, nil
}

// resizeBounds returns bs resized to n cleared Bound slots, reusing the
// backing array when possible.
func resizeBounds(bs []Bound, n int) []Bound {
	if cap(bs) < n {
		return make([]Bound, n)
	}
	bs = bs[:n]
	for i := range bs {
		bs[i] = Bound{}
	}
	return bs
}
