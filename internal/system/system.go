// Package system builds the integer dependence problem for a pair of array
// references and applies Banerjee's Extended GCD preprocessing (Maydan,
// Hennessy & Lam §3.1): the subscript equality system x·A = c is factored
// through U·A = D (U unimodular, D echelon); if t·D = c has no integer
// solution the references are independent outright, and otherwise the loop
// bounds are re-expressed as inequality constraints over the free t
// variables, the form all later exact tests consume.
package system

import (
	"fmt"
	"strings"

	"exactdep/internal/ir"
	"exactdep/internal/linalg"
)

// VarKind classifies the variables of a dependence problem.
type VarKind int

const (
	// IndexA is a loop index instance for the first reference's iteration.
	IndexA VarKind = iota
	// IndexB is a loop index instance for the second reference's iteration.
	IndexB
	// Symbol is a loop-invariant unknown shared by both iterations (§8).
	Symbol
)

// Variable is one unknown of the x-space system.
type Variable struct {
	Name  string
	Kind  VarKind
	Level int // loop nesting level for index variables, -1 for symbols
}

// Bound is an optional affine bound over other problem variables.
type Bound struct {
	Has  bool
	Expr ir.Expr
}

// Problem is the x-space dependence problem: find integer x with
// x·Eq = RHS subject to Lower[k] ≤ x_k ≤ Upper[k] where present.
type Problem struct {
	Vars   []Variable
	Eq     *linalg.Matrix // len(Vars) × dims
	RHS    []int64
	Lower  []Bound
	Upper  []Bound
	Common int // number of loops shared by the two references
	// Pair retains the source references for reporting (may be zero value).
	Pair ir.Pair
}

// primed returns the B-side instance name of a loop index.
func primed(name string) string { return name + "'" }

// Build constructs the dependence problem for a candidate pair. The two
// references must name the same array with equal dimensionality.
func Build(p ir.Pair) (*Problem, error) {
	a, b := p.A.Ref, p.B.Ref
	if a.Array != b.Array {
		return nil, fmt.Errorf("system: references to different arrays %q, %q", a.Array, b.Array)
	}
	if len(a.Subscripts) != len(b.Subscripts) {
		return nil, fmt.Errorf("system: %q referenced with %d and %d subscripts",
			a.Array, len(a.Subscripts), len(b.Subscripts))
	}
	loopsA := p.A.Loops
	loopsB := p.B.Loops
	common := p.Common
	if common > len(loopsA) || common > len(loopsB) {
		return nil, fmt.Errorf("system: common depth %d exceeds stacks (%d, %d)",
			common, len(loopsA), len(loopsB))
	}

	prob := &Problem{Common: common, Pair: p}
	// Variable order: A-side indices outer→inner, B-side indices
	// outer→inner, then symbols. The order is part of the memoization key.
	for lvl, l := range loopsA {
		prob.Vars = append(prob.Vars, Variable{Name: l.Index, Kind: IndexA, Level: lvl})
	}
	for lvl, l := range loopsB {
		prob.Vars = append(prob.Vars, Variable{Name: primed(l.Index), Kind: IndexB, Level: lvl})
	}
	for _, s := range p.Symbols {
		prob.Vars = append(prob.Vars, Variable{Name: s, Kind: Symbol, Level: -1})
	}
	index := make(map[string]int, len(prob.Vars))
	for i, v := range prob.Vars {
		if _, dup := index[v.Name]; dup {
			return nil, fmt.Errorf("system: duplicate variable %q", v.Name)
		}
		index[v.Name] = i
	}

	// Subscript equalities: subA(i, s) = subB(i', s). The B-side expression
	// is renamed onto primed loop indices; symbols stay shared.
	dims := len(a.Subscripts)
	prob.Eq = linalg.NewMatrix(len(prob.Vars), dims)
	prob.RHS = make([]int64, dims)
	for d := 0; d < dims; d++ {
		subA := a.Subscripts[d]
		subB := b.Subscripts[d]
		for _, l := range loopsB {
			subB = subB.Rename(l.Index, primed(l.Index))
		}
		diff := subA.Sub(subB) // Σ coeff·x = RHS form with RHS = -const
		for v, c := range diff.Terms {
			i, ok := index[v]
			if !ok {
				return nil, fmt.Errorf("system: subscript uses unknown variable %q", v)
			}
			prob.Eq.Set(i, d, c)
		}
		prob.RHS[d] = -diff.Const
	}

	// Bounds: A-side bounds over unprimed outer indices and symbols; B-side
	// bounds renamed onto primed indices.
	prob.Lower = make([]Bound, len(prob.Vars))
	prob.Upper = make([]Bound, len(prob.Vars))
	for _, l := range loopsA {
		i := index[l.Index]
		if !l.NoLower {
			prob.Lower[i] = Bound{Has: true, Expr: l.Lower}
		}
		if !l.NoUpper {
			prob.Upper[i] = Bound{Has: true, Expr: l.Upper}
		}
	}
	for lvl, l := range loopsB {
		i := index[primed(l.Index)]
		lo, hi := l.Lower, l.Upper
		for _, outer := range loopsB[:lvl] {
			lo = lo.Rename(outer.Index, primed(outer.Index))
			hi = hi.Rename(outer.Index, primed(outer.Index))
		}
		if !l.NoLower {
			prob.Lower[i] = Bound{Has: true, Expr: lo}
		}
		if !l.NoUpper {
			prob.Upper[i] = Bound{Has: true, Expr: hi}
		}
	}
	// Validate that bound expressions only mention known variables.
	for i := range prob.Vars {
		for _, b := range []Bound{prob.Lower[i], prob.Upper[i]} {
			if !b.Has {
				continue
			}
			for _, v := range b.Expr.Vars() {
				if _, ok := index[v]; !ok {
					return nil, fmt.Errorf("system: bound of %q uses unknown variable %q", prob.Vars[i].Name, v)
				}
			}
		}
	}
	return prob, nil
}

// VarIndex returns the position of the named variable, or -1.
func (p *Problem) VarIndex(name string) int {
	for i, v := range p.Vars {
		if v.Name == name {
			return i
		}
	}
	return -1
}

// CommonPair returns the x-space indices of the A-side and B-side instances
// of common loop level lvl.
func (p *Problem) CommonPair(lvl int) (ai, bi int) {
	ai, bi = -1, -1
	for i, v := range p.Vars {
		if v.Level != lvl {
			continue
		}
		switch v.Kind {
		case IndexA:
			ai = i
		case IndexB:
			bi = i
		}
	}
	return ai, bi
}

// String renders the problem for debugging.
func (p *Problem) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vars:")
	for _, v := range p.Vars {
		fmt.Fprintf(&b, " %s", v.Name)
	}
	b.WriteByte('\n')
	for d := 0; d < p.Eq.Cols; d++ {
		first := true
		for i := range p.Vars {
			c := p.Eq.At(i, d)
			if c == 0 {
				continue
			}
			if !first {
				b.WriteString(" + ")
			}
			fmt.Fprintf(&b, "%d·%s", c, p.Vars[i].Name)
			first = false
		}
		if first {
			b.WriteString("0")
		}
		fmt.Fprintf(&b, " = %d\n", p.RHS[d])
	}
	for i, v := range p.Vars {
		lo, hi := "-inf", "+inf"
		if p.Lower[i].Has {
			lo = p.Lower[i].Expr.String()
		}
		if p.Upper[i].Has {
			hi = p.Upper[i].Expr.String()
		}
		fmt.Fprintf(&b, "%s ≤ %s ≤ %s\n", lo, v.Name, hi)
	}
	return b.String()
}
