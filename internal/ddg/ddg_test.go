package ddg

import (
	"strings"
	"testing"

	"exactdep/internal/core"
	"exactdep/internal/depvec"
	"exactdep/internal/ir"
	"exactdep/internal/lang"
	"exactdep/internal/opt"
)

func build(t *testing.T, src string) (*ir.Unit, *Graph) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	u := opt.Lower(prog)
	a := core.New(core.Options{DirectionVectors: true, PruneUnused: true, PruneDistance: true})
	results, err := a.AnalyzeUnit(u)
	if err != nil {
		t.Fatal(err)
	}
	return u, Build(u, results)
}

func TestFlowEdge(t *testing.T) {
	// s1 writes a[i], s2 reads a[i-1]: flow dependence s1 → s2 carried by
	// the loop.
	_, g := build(t, `
for i = 1 to 10
  a[i] = 0
  b[i] = a[i-1]
end
`)
	var flow *Edge
	for i := range g.Edges {
		if g.Edges[i].Kind == Flow && g.Edges[i].Array == "a" {
			flow = &g.Edges[i]
		}
	}
	if flow == nil {
		t.Fatalf("missing flow edge:\n%s", g)
	}
	if flow.From != 1 || flow.To != 2 {
		t.Fatalf("flow edge %d→%d, want 1→2", flow.From, flow.To)
	}
	if !flow.Carried || flow.Vector.String() != "(<)" {
		t.Fatalf("flow edge: %+v", flow)
	}
}

func TestAntiEdgeOrientation(t *testing.T) {
	// s1 writes a[i], s2 reads a[i+1]: the read of iteration k touches
	// a[k+1], written at iteration k+1 — the read happens first, so this is
	// an anti dependence s2 → s1.
	_, g := build(t, `
for i = 1 to 10
  a[i] = 0
  b[i] = a[i+1]
end
`)
	var anti *Edge
	for i := range g.Edges {
		if g.Edges[i].Kind == Anti {
			anti = &g.Edges[i]
		}
	}
	if anti == nil {
		t.Fatalf("missing anti edge:\n%s", g)
	}
	if anti.From != 2 || anti.To != 1 {
		t.Fatalf("anti edge %d→%d, want 2→1", anti.From, anti.To)
	}
	if anti.Vector.String() != "(<)" {
		t.Fatalf("anti edge vector = %s, want normalized (<)", anti.Vector)
	}
}

func TestOutputEdge(t *testing.T) {
	_, g := build(t, `
for i = 1 to 10
  a[i] = 1
  a[i] = 2
end
`)
	found := false
	for _, e := range g.Edges {
		if e.Kind == Output && e.From == 1 && e.To == 2 && !e.Carried {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing loop-independent output edge 1→2:\n%s", g)
	}
}

func TestSCCsAndDistribution(t *testing.T) {
	// s1 and s2 form a recurrence cycle (s1 feeds s2 in this iteration, s2
	// feeds s1 in the next); s3 only consumes — it can be distributed off.
	_, g := build(t, `
for i = 2 to 10
  a[i] = b[i-1]
  b[i] = a[i]
  c[i] = a[i-1]
end
`)
	sccs := g.SCCs()
	var sizes []int
	for _, c := range sccs {
		sizes = append(sizes, len(c))
	}
	two := 0
	for _, n := range sizes {
		if n == 2 {
			two++
		}
	}
	if two != 1 {
		t.Fatalf("expected exactly one 2-statement π-block, got %v\n%s", sccs, g)
	}
	if !g.HasCycle() {
		t.Fatal("recurrence must register as a cycle")
	}
}

func TestNoCycleFullyDistributable(t *testing.T) {
	_, g := build(t, `
for i = 1 to 10
  a[i] = 0
  b[i] = a[i]
end
`)
	if g.HasCycle() {
		t.Fatalf("straight-line flow must not cycle:\n%s", g)
	}
	if len(g.SCCs()) != 2 {
		t.Fatalf("SCCs = %v", g.SCCs())
	}
}

func TestSelfCycleReduction(t *testing.T) {
	// a[i] = a[i-1]: the statement depends on itself across iterations.
	_, g := build(t, `
for i = 2 to 10
  a[i] = a[i-1]
end
`)
	if !g.HasCycle() {
		t.Fatalf("self recurrence must cycle:\n%s", g)
	}
}

func TestRendering(t *testing.T) {
	_, g := build(t, `
for i = 2 to 10
  a[i] = a[i-1]
end
`)
	if !strings.Contains(g.Dot(), "digraph ddg") {
		t.Fatal("Dot output malformed")
	}
	if !strings.Contains(g.String(), "flow on a") {
		t.Fatalf("String output malformed:\n%s", g)
	}
}

func TestConservativeWithoutVectors(t *testing.T) {
	// direction vectors disabled: dependent pairs get a '*' vector and are
	// treated as carried.
	prog, err := lang.Parse("for i = 1 to 10\n  a[i] = a[i-1]\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	u := opt.Lower(prog)
	a := core.New(core.Options{})
	results, err := a.AnalyzeUnit(u)
	if err != nil {
		t.Fatal(err)
	}
	g := Build(u, results)
	for _, e := range g.Edges {
		if len(e.Vector) != 1 || e.Vector[0] != depvec.Any {
			t.Fatalf("expected conservative '*' vector: %+v", e)
		}
		if !e.Carried {
			t.Fatal("conservative edges must count as carried")
		}
	}
}

func TestAmbiguousVectorCreatesCycle(t *testing.T) {
	// a[0] is written and read with a free (unused-level '*') direction:
	// conflicts run in both orders, so the two statements must form one
	// π-block (splitting them is the distribution soundness bug this
	// guards against).
	_, g := build(t, `
for i = 1 to 5
  a[0] = i
  b[i] = a[0]
end
`)
	forward, backward := false, false
	for _, e := range g.Edges {
		if e.Array != "a" || e.From == e.To {
			continue
		}
		if e.From == 1 && e.To == 2 {
			forward = true
		}
		if e.From == 2 && e.To == 1 {
			backward = true
		}
	}
	if !forward || !backward {
		t.Fatalf("ambiguous dependence must produce both orientations:\n%s", g)
	}
	if !g.HasCycle() {
		t.Fatalf("the pair must be one π-block:\n%s", g)
	}
}
