// Package ddg builds the statement-level data dependence graph from the
// analyzer's per-pair results: flow (write→read), anti (read→write), and
// output (write→write) edges annotated with direction vectors, oriented by
// the source-before-sink execution order the vectors encode. The graph's
// strongly connected components are the classic π-blocks: statements that
// must stay together under loop distribution, while edges between different
// components allow the loop to be split.
package ddg

import (
	"fmt"
	"sort"
	"strings"

	"exactdep/internal/core"
	"exactdep/internal/depvec"
	"exactdep/internal/dtest"
	"exactdep/internal/ir"
)

// EdgeKind classifies a dependence edge.
type EdgeKind int

const (
	// Flow is a true dependence: a write reaching a later read.
	Flow EdgeKind = iota
	// Anti is a read followed by a write of the same location.
	Anti
	// Output is a write followed by another write.
	Output
)

func (k EdgeKind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	default:
		return "?"
	}
}

// Edge is one dependence between two statements.
type Edge struct {
	From, To int // statement ids
	Kind     EdgeKind
	// Vector is the direction vector oriented from the source iteration to
	// the sink iteration (lexicographically non-negative).
	Vector depvec.Vector
	// Carried is true when the dependence crosses iterations of some
	// common loop (the vector has a '<' or '*' component before any '>').
	Carried bool
	// Array names the conflicting array.
	Array string
}

// Graph is the statement-level dependence graph of one unit.
type Graph struct {
	// Stmts lists the statement ids in program order.
	Stmts []int
	Edges []Edge
}

// Build constructs the graph from analysis results. Pairs whose outcome is
// independent contribute nothing; dependent pairs contribute one edge per
// direction vector, oriented so the source executes first.
func Build(u *ir.Unit, results []core.Result) *Graph {
	g := &Graph{}
	seen := map[int]bool{}
	for _, s := range u.Sites {
		if !seen[s.Ref.Stmt] {
			seen[s.Ref.Stmt] = true
			g.Stmts = append(g.Stmts, s.Ref.Stmt)
		}
	}
	sort.Ints(g.Stmts)

	for _, res := range results {
		if res.Outcome == dtest.Independent {
			continue
		}
		vectors := res.Vectors
		if len(vectors) == 0 {
			// no direction information: a single conservative any-vector
			all := make(depvec.Vector, res.Pair.Common)
			for i := range all {
				all[i] = depvec.Any
			}
			vectors = []depvec.Vector{all}
		}
		for _, v := range vectors {
			g.addEdge(res.Pair, v)
		}
	}
	return g
}

// addEdge orients one direction vector into source→sink edges. A vector
// whose lexicographic sign is decided ('<' or '>' before any '*') yields one
// edge; an ambiguous vector (a '*' first) admits conflicts in both
// execution orders and yields an edge each way, which correctly fuses the
// statements into one π-block for distribution purposes.
func (g *Graph) addEdge(p ir.Pair, v depvec.Vector) {
	a, b := p.A.Ref, p.B.Ref
	sgn, ambiguous := sign(v)
	if ambiguous && a.Stmt != b.Stmt {
		g.appendEdge(a, b, v.Clone())
		g.appendEdge(b, a, mirror(v))
		return
	}
	vec := v.Clone()
	src, dst := a, b
	switch {
	case sgn == -1:
		// The conflict's source iteration belongs to B: flip the pair and
		// mirror the vector so the edge runs execution-forward.
		src, dst = b, a
		vec = mirror(v)
	case sgn == 0 && !ambiguous:
		// Loop-independent: orient by statement order (the lowerer emits
		// the write site before its statement's reads, so a same-statement
		// pair runs write→read; the conflict is on the same iteration;
		// order by statement id with A first on ties).
		if b.Stmt < a.Stmt {
			src, dst = b, a
			vec = mirror(v)
		}
	}
	g.appendEdge(src, dst, vec)
}

// appendEdge records one oriented edge.
func (g *Graph) appendEdge(src, dst ir.Ref, vec depvec.Vector) {
	kind := Flow
	switch {
	case src.Kind == ir.Write && dst.Kind == ir.Write:
		kind = Output
	case src.Kind == ir.Read:
		kind = Anti
	}
	g.Edges = append(g.Edges, Edge{
		From:    src.Stmt,
		To:      dst.Stmt,
		Kind:    kind,
		Vector:  vec,
		Carried: carried(vec),
		Array:   src.Array,
	})
}

// sign returns the lexicographic sign of a direction vector (+1 '<' first,
// -1 '>' first, 0 all-'=') and whether a '*' makes the sign ambiguous.
func sign(v depvec.Vector) (int, bool) {
	for _, d := range v {
		switch d {
		case depvec.Less:
			return 1, false
		case depvec.Greater:
			return -1, false
		case depvec.Any:
			return 0, true
		}
	}
	return 0, false
}

// mirror flips every component ('<' ↔ '>').
func mirror(v depvec.Vector) depvec.Vector {
	out := make(depvec.Vector, len(v))
	for i, d := range v {
		switch d {
		case depvec.Less:
			out[i] = depvec.Greater
		case depvec.Greater:
			out[i] = depvec.Less
		default:
			out[i] = d
		}
	}
	return out
}

// carried reports whether the vector crosses iterations of some loop.
func carried(v depvec.Vector) bool {
	for _, d := range v {
		if d == depvec.Less || d == depvec.Greater || d == depvec.Any {
			return true
		}
	}
	return false
}

// SCCs returns the strongly connected components of the graph in reverse
// topological order (Tarjan). Components with more than one statement — or
// a single statement with a self-edge — are π-blocks that must execute as a
// unit; the rest may be distributed into separate loops.
func (g *Graph) SCCs() [][]int {
	adj := map[int][]int{}
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	index := map[int]int{}
	low := map[int]int{}
	onStack := map[int]bool{}
	var stack []int
	var out [][]int
	next := 0
	var strong func(v int)
	strong = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Ints(comp)
			out = append(out, comp)
		}
	}
	for _, v := range g.Stmts {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	return out
}

// HasCycle reports whether any π-block is nontrivial (a multi-statement
// component or a self-loop), which blocks full loop distribution.
func (g *Graph) HasCycle() bool {
	self := map[int]bool{}
	for _, e := range g.Edges {
		if e.From == e.To && e.Carried {
			self[e.From] = true
		}
	}
	for _, c := range g.SCCs() {
		if len(c) > 1 {
			return true
		}
		if self[c[0]] {
			return true
		}
	}
	return false
}

// Dot renders the graph in Graphviz syntax, edges labelled kind/vector.
func (g *Graph) Dot() string {
	var b strings.Builder
	b.WriteString("digraph ddg {\n")
	for _, s := range g.Stmts {
		fmt.Fprintf(&b, "  s%d;\n", s)
	}
	for _, e := range g.Edges {
		style := ""
		if !e.Carried {
			style = ", style=dashed"
		}
		fmt.Fprintf(&b, "  s%d -> s%d [label=\"%s %s %s\"%s];\n",
			e.From, e.To, e.Kind, e.Array, e.Vector, style)
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders a compact edge list.
func (g *Graph) String() string {
	var b strings.Builder
	for _, e := range g.Edges {
		carried := "loop-independent"
		if e.Carried {
			carried = "loop-carried"
		}
		fmt.Fprintf(&b, "s%d -> s%d: %s on %s %s (%s)\n",
			e.From, e.To, e.Kind, e.Array, e.Vector, carried)
	}
	return b.String()
}
