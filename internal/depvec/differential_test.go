package depvec

// Differential suite for the clone-free refinement walk: ComputeObserved
// (trail + optional memo) must agree with ComputeReference (the retained
// clone-per-node walk) on every observable — verdict, exactness, trip,
// vectors, distances, and test counts — across random nests, FM-hard
// shapes, pruning variants, and budget limits. The two walks enumerate
// directions in the same order, so even the vector order must match.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"exactdep/internal/dtest"
	"exactdep/internal/ir"
	"exactdep/internal/system"
)

// randNest builds a random nest of the given depth with one write/read pair
// whose subscripts are random affine combinations of the loop indices.
// Returns nil when preprocessing rejects the pair (GCD-independent), which
// the caller skips.
func randNest(rng *rand.Rand, depth int) *system.TSystem {
	loops := make([]ir.Loop, depth)
	idx := make([]string, depth)
	for i := range loops {
		idx[i] = fmt.Sprintf("i%d", i+1)
		lo := rng.Int63n(3)
		loops[i] = loop(idx[i], lo, lo+2+rng.Int63n(12))
	}
	dims := 1 + rng.Intn(2)
	sub := func() []ir.Expr {
		out := make([]ir.Expr, dims)
		for d := range out {
			e := ir.NewConst(rng.Int63n(5) - 2)
			for _, v := range idx {
				if c := rng.Int63n(5) - 2; c != 0 && rng.Intn(2) == 0 {
					e = e.Add(ir.NewTerm(v, c))
				}
			}
			out[d] = e
		}
		return out
	}
	nest := &ir.Nest{Label: "rand", Loops: loops}
	a := ir.Ref{Array: "a", Subscripts: sub(), Kind: ir.Write, Depth: depth}
	b := ir.Ref{Array: "a", Subscripts: sub(), Kind: ir.Read, Depth: depth}
	nest.Refs = []ir.Ref{a, b}
	p, err := system.Build(nest.Pair(a, b))
	if err != nil {
		return nil
	}
	res, ts, err := system.Preprocess(p)
	if err != nil || res == system.GCDIndependent {
		return nil
	}
	return ts
}

// fmHardNest is a coupled deep nest that reaches Fourier–Motzkin: the write
// couples adjacent levels (a[i1+i2][i3+i4+1]... style), defeating the cheap
// stages at many refinement nodes.
func fmHardNest(t testing.TB, depth int) *system.TSystem {
	t.Helper()
	loops := make([]ir.Loop, depth)
	idx := make([]string, depth)
	for i := range loops {
		idx[i] = fmt.Sprintf("i%d", i+1)
		loops[i] = loop(idx[i], 0, 9)
	}
	var subA, subB []ir.Expr
	for d := 0; d+1 < depth; d++ {
		subA = append(subA, ir.NewTerm(idx[d], 2).Add(ir.NewVar(idx[d+1])).AddConst(1))
		subB = append(subB, ir.NewVar(idx[d]).Add(ir.NewTerm(idx[d+1], 2)))
	}
	subA = append(subA, ir.NewVar(idx[depth-1]))
	subB = append(subB, ir.NewVar(idx[depth-1]))
	nest := &ir.Nest{Label: "fmhard", Loops: loops}
	a := ir.Ref{Array: "a", Subscripts: subA, Kind: ir.Write, Depth: depth}
	b := ir.Ref{Array: "a", Subscripts: subB, Kind: ir.Read, Depth: depth}
	nest.Refs = []ir.Ref{a, b}
	p, err := system.Build(nest.Pair(a, b))
	if err != nil {
		t.Fatal(err)
	}
	res, ts, err := system.Preprocess(p)
	if err != nil {
		t.Fatal(err)
	}
	if res == system.GCDIndependent {
		t.Fatal("fmHardNest must not be GCD-independent")
	}
	return ts
}

// mapMemo is a test double for Options.Memo keyed by the direction bytes
// alone — valid only while a single canonical system flows through it.
type mapMemo map[string]dtest.Result

func (m mapMemo) Lookup(dirs []byte) (dtest.Result, bool) {
	r, ok := m[string(dirs)]
	return r, ok
}

func (m mapMemo) Store(dirs []byte, r dtest.Result) {
	r.Witness = nil
	m[string(dirs)] = r
}

// comparable strips the counters that legitimately differ between the two
// walks (trail and memo accounting exists only in the optimized one).
func comparable(s Summary) Summary {
	s.MemoHits = 0
	s.TrailPushes, s.TrailPops, s.TrailMaxDepth = 0, 0, 0
	return s
}

func diffOne(t *testing.T, ts *system.TSystem, opts Options, label string) {
	t.Helper()
	obs := ComputeObserved(ts.Clone(), opts, nil)
	ref := ComputeReference(ts.Clone(), opts, nil)
	if !reflect.DeepEqual(comparable(obs), comparable(ref)) {
		t.Errorf("%s: observed and reference walks disagree\n obs %+v\n ref %+v", label, obs, ref)
	}
	if obs.TrailPushes != obs.TrailPops {
		t.Errorf("%s: unbalanced trail: %d pushes, %d pops", label, obs.TrailPushes, obs.TrailPops)
	}
}

var diffOpts = []Options{
	{},
	{PruneUnused: true},
	{PruneDistance: true},
	{PruneUnused: true, PruneDistance: true},
	{PruneUnused: true, PruneDistance: true, Separable: true},
}

// TestRefineDifferentialRandom sweeps random nests of depth 1–4 through
// every pruning variant.
func TestRefineDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tested := 0
	for tested < 120 {
		ts := randNest(rng, 1+rng.Intn(4))
		if ts == nil {
			continue
		}
		tested++
		for i, opts := range diffOpts {
			diffOne(t, ts, opts, fmt.Sprintf("random %d opts %d", tested, i))
		}
	}
}

// TestRefineDifferentialFMHard drives the coupled deep nests, with and
// without a per-test budget: budget-degraded walks must degrade identically.
func TestRefineDifferentialFMHard(t *testing.T) {
	for _, depth := range []int{2, 3, 4} {
		ts := fmHardNest(t, depth)
		for i, opts := range diffOpts {
			diffOne(t, ts, opts, fmt.Sprintf("fmhard depth %d opts %d", depth, i))
		}
		for _, lim := range []int{1, 2, 8} {
			po := dtest.DefaultConfig().NewPipeline()
			po.SetBudget(dtest.Budget{MaxFMEliminations: lim})
			pr := dtest.DefaultConfig().NewPipeline()
			pr.SetBudget(dtest.Budget{MaxFMEliminations: lim})
			obs := ComputeObserved(ts.Clone(), Options{Pipeline: po}, nil)
			ref := ComputeReference(ts.Clone(), Options{Pipeline: pr}, nil)
			if !reflect.DeepEqual(comparable(obs), comparable(ref)) {
				t.Errorf("fmhard depth %d budget %d: walks disagree\n obs %+v\n ref %+v",
					depth, lim, obs, ref)
			}
		}
	}
}

// TestRefineMemoHits pins the memo contract: a second walk of the same
// system over a warm memo runs zero cascade tests, answers everything from
// the memo, and reproduces the cold walk's observables exactly.
func TestRefineMemoHits(t *testing.T) {
	ts := fmHardNest(t, 3)
	memo := mapMemo{}
	opts := Options{PruneUnused: true, Memo: memo}
	cold := ComputeObserved(ts.Clone(), opts, nil)
	if cold.TestsRun == 0 || cold.MemoHits != 0 {
		t.Fatalf("cold walk: %+v", cold)
	}
	var observed int
	warm := ComputeObserved(ts.Clone(), opts, func(dtest.Result) { observed++ })
	if warm.TestsRun != 0 {
		t.Errorf("warm walk ran %d cascade tests, want 0", warm.TestsRun)
	}
	if warm.MemoHits != cold.TestsRun {
		t.Errorf("warm walk hit %d times, want %d", warm.MemoHits, cold.TestsRun)
	}
	if observed != warm.MemoHits {
		t.Errorf("observer saw %d events, want %d (hits must still be observed)", observed, warm.MemoHits)
	}
	if !reflect.DeepEqual(warm.Vectors, cold.Vectors) || warm.Dependent != cold.Dependent ||
		warm.Exact != cold.Exact || warm.Trip != cold.Trip {
		t.Errorf("warm walk observables differ:\n warm %+v\n cold %+v", warm, cold)
	}
}

// TestRefineRestoresSystem pins the trail discipline: ComputeObserved
// mutates ts during the walk but must restore it — same constraint count,
// same rendering — before returning.
func TestRefineRestoresSystem(t *testing.T) {
	ts := fmHardNest(t, 3)
	before := ts.String()
	nCons := len(ts.Cons)
	ComputeObserved(ts, Options{PruneUnused: true, PruneDistance: true}, nil)
	if len(ts.Cons) != nCons {
		t.Fatalf("walk left %d constraints, want %d", len(ts.Cons), nCons)
	}
	if after := ts.String(); after != before {
		t.Fatalf("walk did not restore the system:\nbefore %s\nafter  %s", before, after)
	}
}
