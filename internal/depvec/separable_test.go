package depvec

import (
	"testing"

	"exactdep/internal/ir"
)

func TestSeparableDetection(t *testing.T) {
	// a[i][j] vs a[i-1][j-2]: each dimension touches one level → separable.
	sep := prep(t, []ir.Loop{loop("i", 0, 10), loop("j", 0, 10)},
		[]ir.Expr{ir.NewVar("i"), ir.NewVar("j")},
		[]ir.Expr{ir.NewVar("i").AddConst(-1), ir.NewVar("j").AddConst(-2)})
	if !Separable(sep) {
		t.Fatal("independent dimensions must be separable")
	}
	// coupled: a[i+j] vs a[i+j+1]
	coupled := prep(t, []ir.Loop{loop("i", 0, 10), loop("j", 0, 10)},
		[]ir.Expr{ir.NewVar("i").Add(ir.NewVar("j"))},
		[]ir.Expr{ir.NewVar("i").Add(ir.NewVar("j")).AddConst(1)})
	if Separable(coupled) {
		t.Fatal("coupled subscripts must not be separable")
	}
	// triangular bounds couple levels
	tri := prep(t, []ir.Loop{
		loop("i", 1, 10),
		{Index: "j", Lower: ir.NewVar("i"), Upper: ir.NewConst(10)},
	},
		[]ir.Expr{ir.NewVar("j")}, []ir.Expr{ir.NewVar("j").AddConst(1)})
	if Separable(tri) {
		t.Fatal("triangular bounds must not be separable")
	}
}

func TestSeparableMatchesHierarchical(t *testing.T) {
	// Compare the two methods on a 2-D separable case with a genuinely
	// multi-direction level: a[2i][j] vs a[i][j] and variants.
	cases := []struct{ subsA, subsB []ir.Expr }{
		{
			[]ir.Expr{ir.NewVar("i"), ir.NewVar("j")},
			[]ir.Expr{ir.NewTerm("i", 2), ir.NewVar("j")},
		},
		{
			[]ir.Expr{ir.NewVar("i"), ir.NewVar("j")},
			[]ir.Expr{ir.NewVar("i").AddConst(-1), ir.NewTerm("j", 2)},
		},
		{
			[]ir.Expr{ir.NewConst(5), ir.NewVar("j")},
			[]ir.Expr{ir.NewConst(5), ir.NewVar("j").AddConst(1)},
		},
	}
	for ci, c := range cases {
		ts := prep(t, []ir.Loop{loop("i", 0, 10), loop("j", 0, 10)}, c.subsA, c.subsB)
		if !Separable(ts) {
			t.Fatalf("case %d must be separable", ci)
		}
		hier := Compute(ts.Clone(), Options{})
		sep := Compute(ts.Clone(), Options{Separable: true})
		if hier.Dependent != sep.Dependent || hier.Exact != sep.Exact {
			t.Fatalf("case %d: verdicts differ: %+v vs %+v", ci, hier, sep)
		}
		hs, ss := vecStrings(hier.Vectors), vecStrings(sep.Vectors)
		if !equalStrings(hs, ss) {
			t.Fatalf("case %d: vectors differ: %v vs %v", ci, hs, ss)
		}
		if sep.TestsRun > hier.TestsRun {
			t.Fatalf("case %d: separable method ran more tests (%d vs %d)",
				ci, sep.TestsRun, hier.TestsRun)
		}
	}
}

func TestSeparableSavesTests(t *testing.T) {
	// 3 levels, each with all three directions feasible: hierarchical costs
	// 3 + 9 + 27 tests on the surviving paths; separable costs 9.
	ts := prep(t,
		[]ir.Loop{loop("i", 0, 10), loop("j", 0, 10), loop("k", 0, 10)},
		[]ir.Expr{ir.NewTerm("i", 2), ir.NewTerm("j", 2), ir.NewTerm("k", 2)},
		[]ir.Expr{ir.NewVar("i"), ir.NewVar("j"), ir.NewVar("k")})
	hier := Compute(ts.Clone(), Options{})
	sep := Compute(ts.Clone(), Options{Separable: true})
	if !equalStrings(vecStrings(hier.Vectors), vecStrings(sep.Vectors)) {
		t.Fatalf("vector sets differ:\n%v\n%v", vecStrings(hier.Vectors), vecStrings(sep.Vectors))
	}
	if sep.TestsRun >= hier.TestsRun {
		t.Fatalf("separable must be cheaper: %d vs %d tests", sep.TestsRun, hier.TestsRun)
	}
	if sep.TestsRun != 1+9 {
		t.Fatalf("separable tests = %d, want 10 (base + 3 per level)", sep.TestsRun)
	}
}

func TestSeparableFallsBack(t *testing.T) {
	// Coupled case with Separable requested: must silently use the
	// hierarchical method and stay correct.
	ts := prep(t, []ir.Loop{loop("i", 0, 10), loop("j", 0, 10)},
		[]ir.Expr{ir.NewVar("i").Add(ir.NewVar("j"))},
		[]ir.Expr{ir.NewVar("i").Add(ir.NewVar("j")).AddConst(1)})
	plain := Compute(ts.Clone(), Options{})
	sep := Compute(ts.Clone(), Options{Separable: true})
	if !equalStrings(vecStrings(plain.Vectors), vecStrings(sep.Vectors)) {
		t.Fatalf("fallback changed vectors: %v vs %v",
			vecStrings(plain.Vectors), vecStrings(sep.Vectors))
	}
}

func TestSeparableWithPruning(t *testing.T) {
	// Constant distances prune entirely, so the separable method shouldn't
	// even test those levels.
	ts := prep(t, []ir.Loop{loop("i", 0, 10), loop("j", 0, 10)},
		[]ir.Expr{ir.NewVar("i").AddConst(1), ir.NewVar("j")},
		[]ir.Expr{ir.NewVar("i"), ir.NewVar("j")})
	sum := Compute(ts, Options{Separable: true, PruneDistance: true, PruneUnused: true})
	if !sum.Dependent || len(sum.Vectors) != 1 || sum.Vectors[0].String() != "(<, =)" {
		t.Fatalf("%+v", sum)
	}
	if sum.TestsRun != 1 {
		t.Fatalf("fully pruned separable case must only run the base test, got %d", sum.TestsRun)
	}
}
