// Package depvec computes dependence direction and distance vectors
// (Maydan, Hennessy & Lam §6) on top of the exact test cascade. It follows
// the hierarchical scheme of Burke and Cytron — test (*,…,*), then refine
// each '*' into '<', '=', '>' while dependence persists — with the paper's
// two pruning optimizations: unused loop variables keep '*' without any
// testing, and constant GCD-derived distances fix their direction outright.
//
// The refinement also yields the paper's implicit branch-and-bound: a pair
// whose base test is (possibly inexactly) dependent but whose every full
// direction vector is refuted is in fact independent — the four PERFECT
// cases with real dependence distance strictly between 0 and 1.
package depvec

import (
	"strings"

	"exactdep/internal/dtest"
	"exactdep/internal/system"
)

// Direction is one component of a direction vector.
type Direction byte

const (
	// Any is the unrefined '*' direction.
	Any Direction = '*'
	// Less is '<': the first reference's iteration precedes the second's.
	Less Direction = '<'
	// Equal is '=': both references touch the location in the same iteration.
	Equal Direction = '='
	// Greater is '>': the first reference's iteration follows the second's.
	Greater Direction = '>'
)

// Vector is a direction vector over the common loops, outermost first.
type Vector []Direction

// String renders the vector in the paper's "(<, =, *)" notation.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, d := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte(byte(d))
	}
	b.WriteByte(')')
	return b.String()
}

// Clone returns a copy of the vector.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// Merge minimizes a vector set by repeatedly collapsing triples that differ
// only in one component covering all of '<', '=', '>' into a single '*'
// vector (e.g. (<,<),(<,=),(<,>) → (<,*)). The result denotes the same set
// of directions in fewer vectors — the compact form compilers report.
func Merge(vs []Vector) []Vector {
	set := map[string]bool{}
	var order []string
	for _, v := range vs {
		k := string(bytesOf(v))
		if !set[k] {
			set[k] = true
			order = append(order, k)
		}
	}
	changed := true
	for changed {
		changed = false
		for _, k := range order {
			if !set[k] {
				continue
			}
			for pos := 0; pos < len(k); pos++ {
				if k[pos] == byte(Any) {
					continue
				}
				k1 := replaceAt(k, pos, byte(Less))
				k2 := replaceAt(k, pos, byte(Equal))
				k3 := replaceAt(k, pos, byte(Greater))
				if set[k1] && set[k2] && set[k3] {
					delete(set, k1)
					delete(set, k2)
					delete(set, k3)
					merged := replaceAt(k, pos, byte(Any))
					if !set[merged] {
						set[merged] = true
						order = append(order, merged)
					}
					changed = true
				}
			}
		}
	}
	var out []Vector
	for _, k := range order {
		if set[k] {
			v := make(Vector, len(k))
			for i := 0; i < len(k); i++ {
				v[i] = Direction(k[i])
			}
			out = append(out, v)
		}
	}
	return out
}

func bytesOf(v Vector) []byte {
	out := make([]byte, len(v))
	for i, d := range v {
		out[i] = byte(d)
	}
	return out
}

func replaceAt(s string, pos int, b byte) string {
	bs := []byte(s)
	bs[pos] = b
	return string(bs)
}

// Distance is a known-constant dependence distance at one loop level.
type Distance struct {
	Level int
	Value int64
}

// Options selects the pruning optimizations.
type Options struct {
	// PruneUnused keeps '*' for loop indices that appear in no subscript
	// and no transitive bound, without testing them (§6).
	PruneUnused bool
	// PruneDistance fixes the direction of any level whose GCD-derived
	// distance is constant (§6).
	PruneDistance bool
	// Separable enables the Burke–Cytron dimension-by-dimension method for
	// systems whose levels are not interrelated: 3·L direction tests
	// instead of up to 3^L. Non-separable systems fall back to the
	// hierarchical method.
	Separable bool
	// Pipeline, when non-nil, runs every cascade invocation through this
	// engine (reusing its scratch and feeding its per-stage cost metrics)
	// instead of a throwaway dtest.Solve. The analyzer passes its worker's
	// pipeline here so direction tests are cost-accounted like base tests.
	Pipeline *dtest.Pipeline
}

// Summary is the direction-vector analysis result for one pair.
type Summary struct {
	// Dependent is the final verdict after refinement (which may override
	// an inexact base "dependent" — the implicit branch-and-bound).
	Dependent bool
	// Vectors lists every direction vector under which the references
	// depend. Pruned levels show '*' (unused) or their fixed direction.
	Vectors []Vector
	// Distances lists the levels with known constant distance.
	Distances []Distance
	// TestsRun counts cascade invocations, the quantity of Tables 4 and 5.
	TestsRun int
	// Exact is false if any cascade invocation returned an inexact verdict
	// (Unknown, or Maybe under a resource budget).
	Exact bool
	// Trip is the first budget limit that degraded a cascade invocation
	// (dtest.TripNone when none did). It is cleared when the implicit
	// branch-and-bound later proves exact independence: a budget trip only
	// forces descent, and a subtree with no surviving vector was refuted by
	// exact tests alone.
	Trip dtest.TripReason
	// ImplicitBB marks pairs proven independent only by refuting every
	// direction vector.
	ImplicitBB bool
}

// Compute runs the hierarchical direction vector analysis. onTest, when
// non-nil, observes every cascade invocation (for the experiment counters).
func Compute(ts *system.TSystem, opts Options) Summary {
	return ComputeObserved(ts, opts, nil)
}

// ComputeObserved is Compute with a per-test observer.
func ComputeObserved(ts *system.TSystem, opts Options, onTest func(dtest.Result)) Summary {
	levels := 0
	if ts.Prob != nil {
		levels = ts.Prob.Common
	}
	sum := Summary{Exact: true}

	// Fix pruned levels up front.
	fixed := make([]Direction, levels) // 0 = refinable
	for lvl := 0; lvl < levels; lvl++ {
		if opts.PruneUnused && !ts.LevelUsed(lvl) {
			fixed[lvl] = Any
			continue
		}
		if opts.PruneDistance {
			d, err := ts.Distance(lvl)
			if err == nil && d.IsConst() {
				sum.Distances = append(sum.Distances, Distance{Level: lvl, Value: d.Const})
				switch {
				case d.Const > 0:
					fixed[lvl] = Less
				case d.Const < 0:
					fixed[lvl] = Greater
				default:
					fixed[lvl] = Equal
				}
			}
		}
	}

	run := func(s *system.TSystem) dtest.Result {
		var r dtest.Result
		if opts.Pipeline != nil {
			r = opts.Pipeline.Run(s)
		} else {
			r, _ = dtest.Solve(s)
		}
		sum.TestsRun++
		if !r.Exact {
			sum.Exact = false
			if r.Trip != dtest.TripNone && sum.Trip == dtest.TripNone {
				sum.Trip = r.Trip
			}
		}
		if onTest != nil {
			onTest(r)
		}
		return r
	}

	// Base test: the (*,…,*) vector.
	base := run(ts)
	if base.Outcome == dtest.Independent {
		return sum
	}

	if opts.Separable && levels > 0 && Separable(ts) {
		computeSeparable(ts, fixed, &sum, run)
		return sum
	}

	cur := make(Vector, levels)
	for i := range cur {
		cur[i] = Any
	}
	var refine func(s *system.TSystem, lvl int)
	refine = func(s *system.TSystem, lvl int) {
		// advance over fixed levels without testing
		for lvl < levels && fixed[lvl] != 0 {
			cur[lvl] = fixed[lvl]
			lvl++
		}
		if lvl >= levels {
			sum.Vectors = append(sum.Vectors, cur.Clone())
			return
		}
		for _, dir := range []Direction{Less, Equal, Greater} {
			sub := s.Clone()
			if err := sub.AddDirection(lvl, byte(dir)); err != nil {
				sum.Exact = false
				continue
			}
			r := run(sub)
			if r.Outcome == dtest.Independent {
				continue
			}
			cur[lvl] = dir
			refine(sub, lvl+1)
			cur[lvl] = Any
		}
	}
	refine(ts, 0)

	if len(sum.Vectors) == 0 && levels > 0 {
		// Every direction vector was refuted: the pair is independent even
		// though the base (*,…,*) test said otherwise (§6's implicit
		// branch-and-bound; possible because direction constraints cut the
		// fractional region the base test could not exclude).
		sum.ImplicitBB = true
		sum.Dependent = false
		sum.Exact = true
		sum.Trip = dtest.TripNone
		return sum
	}
	sum.Dependent = true
	if levels == 0 {
		// No common loops: dependence is loop-independent; represent it
		// with the empty vector.
		sum.Vectors = append(sum.Vectors, Vector{})
	}
	return sum
}
