// Package depvec computes dependence direction and distance vectors
// (Maydan, Hennessy & Lam §6) on top of the exact test cascade. It follows
// the hierarchical scheme of Burke and Cytron — test (*,…,*), then refine
// each '*' into '<', '=', '>' while dependence persists — with the paper's
// two pruning optimizations: unused loop variables keep '*' without any
// testing, and constant GCD-derived distances fix their direction outright.
//
// The refinement also yields the paper's implicit branch-and-bound: a pair
// whose base test is (possibly inexactly) dependent but whose every full
// direction vector is refuted is in fact independent — the four PERFECT
// cases with real dependence distance strictly between 0 and 1.
package depvec

import (
	"strings"

	"exactdep/internal/dtest"
	"exactdep/internal/system"
)

// Direction is one component of a direction vector.
type Direction byte

const (
	// Any is the unrefined '*' direction.
	Any Direction = '*'
	// Less is '<': the first reference's iteration precedes the second's.
	Less Direction = '<'
	// Equal is '=': both references touch the location in the same iteration.
	Equal Direction = '='
	// Greater is '>': the first reference's iteration follows the second's.
	Greater Direction = '>'
)

// Vector is a direction vector over the common loops, outermost first.
type Vector []Direction

// String renders the vector in the paper's "(<, =, *)" notation.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, d := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte(byte(d))
	}
	b.WriteByte(')')
	return b.String()
}

// Clone returns a copy of the vector.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// Merge minimizes a vector set by repeatedly collapsing triples that differ
// only in one component covering all of '<', '=', '>' into a single '*'
// vector (e.g. (<,<),(<,=),(<,>) → (<,*)). The result denotes the same set
// of directions in fewer vectors — the compact form compilers report.
func Merge(vs []Vector) []Vector {
	set := map[string]bool{}
	var order []string
	for _, v := range vs {
		k := string(bytesOf(v))
		if !set[k] {
			set[k] = true
			order = append(order, k)
		}
	}
	changed := true
	for changed {
		changed = false
		for _, k := range order {
			if !set[k] {
				continue
			}
			for pos := 0; pos < len(k); pos++ {
				if k[pos] == byte(Any) {
					continue
				}
				k1 := replaceAt(k, pos, byte(Less))
				k2 := replaceAt(k, pos, byte(Equal))
				k3 := replaceAt(k, pos, byte(Greater))
				if set[k1] && set[k2] && set[k3] {
					delete(set, k1)
					delete(set, k2)
					delete(set, k3)
					merged := replaceAt(k, pos, byte(Any))
					if !set[merged] {
						set[merged] = true
						order = append(order, merged)
					}
					changed = true
				}
			}
		}
	}
	var out []Vector
	for _, k := range order {
		if set[k] {
			v := make(Vector, len(k))
			for i := 0; i < len(k); i++ {
				v[i] = Direction(k[i])
			}
			out = append(out, v)
		}
	}
	return out
}

func bytesOf(v Vector) []byte {
	out := make([]byte, len(v))
	for i, d := range v {
		out[i] = byte(d)
	}
	return out
}

func replaceAt(s string, pos int, b byte) string {
	bs := []byte(s)
	bs[pos] = b
	return string(bs)
}

// Distance is a known-constant dependence distance at one loop level.
type Distance struct {
	Level int
	Value int64
}

// Options selects the pruning optimizations.
type Options struct {
	// PruneUnused keeps '*' for loop indices that appear in no subscript
	// and no transitive bound, without testing them (§6).
	PruneUnused bool
	// PruneDistance fixes the direction of any level whose GCD-derived
	// distance is constant (§6).
	PruneDistance bool
	// Separable enables the Burke–Cytron dimension-by-dimension method for
	// systems whose levels are not interrelated: 3·L direction tests
	// instead of up to 3^L. Non-separable systems fall back to the
	// hierarchical method.
	Separable bool
	// Pipeline, when non-nil, runs every cascade invocation through this
	// engine (reusing its scratch and feeding its per-stage cost metrics)
	// instead of a throwaway dtest.Solve. The analyzer passes its worker's
	// pipeline here so direction tests are cost-accounted like base tests.
	Pipeline *dtest.Pipeline
	// Refiner, when non-nil, supplies the reusable refinement workspace
	// (direction-row arena and per-level buffers) so a warm analysis
	// allocates nothing per refinement node. nil uses a throwaway.
	Refiner *Refiner
	// Memo, when non-nil, memoizes cascade invocations by direction
	// combination: every test — the base (*,…,*) test included — first asks
	// Lookup and, when it ran the cascade, offers the verdict to Store. The
	// analyzer passes an adapter onto its shared memo hierarchy here, which
	// is what lets refinement subproblems hit across pairs and across
	// refinement trees (§5's claim covers these tests too).
	Memo Memo
}

// Memo memoizes direction-refinement subproblems. dirs holds one byte per
// common level, outermost first: '*' for an unconstrained level or the
// pushed '<'/'='/'>' direction. The implementation owns canonicalization
// and storage policy; either method may decline (Lookup by ok=false, Store
// by dropping). A cached Result must be exactly what the cascade returned
// for that system+directions (minus the witness), so a hit is
// indistinguishable from a fresh run.
type Memo interface {
	Lookup(dirs []byte) (dtest.Result, bool)
	Store(dirs []byte, r dtest.Result)
}

// Refiner is the reusable workspace of the clone-free refinement walk: the
// arena that backs pushed direction rows, and the per-level direction and
// vector buffers. One Refiner serves many ComputeObserved calls (the
// analyzer keeps one per worker); it is not safe for concurrent use.
type Refiner struct {
	arena system.Scratch
	fixed []Direction
	cur   Vector
	dirs  []byte
}

// NewRefiner returns an empty Refiner; buffers grow on first use.
func NewRefiner() *Refiner { return &Refiner{} }

// reset sizes the buffers for an analysis over the given number of levels:
// fixed zeroed, cur all Any, dirs all '*'.
func (rf *Refiner) reset(levels int) {
	if cap(rf.fixed) < levels {
		rf.fixed = make([]Direction, levels)
		rf.cur = make(Vector, levels)
		rf.dirs = make([]byte, levels)
	}
	rf.fixed = rf.fixed[:levels]
	rf.cur = rf.cur[:levels]
	rf.dirs = rf.dirs[:levels]
	for i := 0; i < levels; i++ {
		rf.fixed[i] = 0
		rf.cur[i] = Any
		rf.dirs[i] = byte(Any)
	}
}

// Summary is the direction-vector analysis result for one pair.
type Summary struct {
	// Dependent is the final verdict after refinement (which may override
	// an inexact base "dependent" — the implicit branch-and-bound).
	Dependent bool
	// Vectors lists every direction vector under which the references
	// depend. Pruned levels show '*' (unused) or their fixed direction.
	Vectors []Vector
	// Distances lists the levels with known constant distance.
	Distances []Distance
	// TestsRun counts cascade invocations, the quantity of Tables 4 and 5.
	TestsRun int
	// Exact is false if any cascade invocation returned an inexact verdict
	// (Unknown, or Maybe under a resource budget).
	Exact bool
	// Trip is the first budget limit that degraded a cascade invocation
	// (dtest.TripNone when none did). It is cleared when the implicit
	// branch-and-bound later proves exact independence: a budget trip only
	// forces descent, and a subtree with no surviving vector was refuted by
	// exact tests alone.
	Trip dtest.TripReason
	// ImplicitBB marks pairs proven independent only by refuting every
	// direction vector.
	ImplicitBB bool
	// MemoHits counts cascade invocations answered from Options.Memo
	// instead of running the tests (not included in TestsRun).
	MemoHits int
	// TrailPushes and TrailPops count direction constraints pushed onto and
	// popped off the scratch system's trail; they match when the walk
	// completes. TrailMaxDepth is the deepest simultaneous stack of pushed
	// directions (≤ the number of refinable levels).
	TrailPushes, TrailPops, TrailMaxDepth int
}

// note folds one cascade verdict into the exactness/trip summary. The first
// trip is recorded, but a budgetary trip (a Budget limit, the clock, or
// cancellation — "re-run with more and the analysis may finish") takes
// precedence over a structural one (a cap of the test itself): the pair's
// verdict must be Maybe if *any* subproblem was budget-limited.
func (s *Summary) note(r dtest.Result) {
	if r.Exact {
		return
	}
	s.Exact = false
	if r.Trip == dtest.TripNone {
		return
	}
	if s.Trip == dtest.TripNone || (!s.Trip.Budgetary() && r.Trip.Budgetary()) {
		s.Trip = r.Trip
	}
}

// Compute runs the hierarchical direction vector analysis. onTest, when
// non-nil, observes every cascade invocation (for the experiment counters).
func Compute(ts *system.TSystem, opts Options) Summary {
	return ComputeObserved(ts, opts, nil)
}

// ComputeObserved is Compute with a per-test observer.
//
// The refinement walks ts itself: each tree node pushes its direction
// constraint onto the system's trail (system.TSystem.PushDirection), tests,
// recurses, and pops — one scratch system DFS-style instead of a deep clone
// per node, which on a d-level nest eliminates O(3^d) copies. ts is mutated
// during the call and restored before it returns. ComputeReference retains
// the clone-based walk as a differential oracle.
func ComputeObserved(ts *system.TSystem, opts Options, onTest func(dtest.Result)) Summary {
	levels := 0
	if ts.Prob != nil {
		levels = ts.Prob.Common
	}
	sum := Summary{Exact: true}

	rf := opts.Refiner
	if rf == nil {
		rf = NewRefiner()
	}
	rf.reset(levels)
	fixed, cur, dirs := rf.fixed, rf.cur, rf.dirs

	// Fix pruned levels up front (fixed[lvl] = 0 means refinable).
	for lvl := 0; lvl < levels; lvl++ {
		if opts.PruneUnused && !ts.LevelUsed(lvl) {
			fixed[lvl] = Any
			continue
		}
		if opts.PruneDistance {
			d, err := ts.Distance(lvl)
			if err == nil && d.IsConst() {
				sum.Distances = append(sum.Distances, Distance{Level: lvl, Value: d.Const})
				switch {
				case d.Const > 0:
					fixed[lvl] = Less
				case d.Const < 0:
					fixed[lvl] = Greater
				default:
					fixed[lvl] = Equal
				}
			}
		}
	}

	// run tests the system under the currently pushed directions (dirs),
	// consulting the memo first. A hit feeds the observer and the summary
	// exactly as a fresh run would — cached verdicts are what the cascade
	// returned — but does not count as a test run.
	run := func(s *system.TSystem) dtest.Result {
		if opts.Memo != nil {
			if r, ok := opts.Memo.Lookup(dirs); ok {
				sum.MemoHits++
				sum.note(r)
				if onTest != nil {
					onTest(r)
				}
				return r
			}
		}
		var r dtest.Result
		if opts.Pipeline != nil {
			r = opts.Pipeline.Run(s)
		} else {
			r, _ = dtest.Solve(s)
		}
		if opts.Memo != nil {
			opts.Memo.Store(dirs, r)
		}
		sum.TestsRun++
		sum.note(r)
		if onTest != nil {
			onTest(r)
		}
		return r
	}

	// Base test: the (*,…,*) vector.
	base := run(ts)
	if base.Outcome == dtest.Independent {
		return sum
	}

	if opts.Separable && levels > 0 && Separable(ts) {
		computeSeparable(ts, fixed, dirs, &sum, rf, run)
		return sum
	}

	var refine func(lvl, depth int)
	refine = func(lvl, depth int) {
		// advance over fixed levels without testing
		for lvl < levels && fixed[lvl] != 0 {
			cur[lvl] = fixed[lvl]
			lvl++
		}
		if lvl >= levels {
			sum.Vectors = append(sum.Vectors, cur.Clone())
			return
		}
		for _, dir := range []Direction{Less, Equal, Greater} {
			tm := ts.Mark()
			am := rf.arena.Mark()
			if err := ts.PushDirection(lvl, byte(dir), &rf.arena); err != nil {
				// Overflow building the direction rows; the system is
				// unchanged, but release any rows carved before the error.
				rf.arena.Release(am)
				sum.Exact = false
				continue
			}
			sum.TrailPushes++
			if depth+1 > sum.TrailMaxDepth {
				sum.TrailMaxDepth = depth + 1
			}
			dirs[lvl] = byte(dir)
			if r := run(ts); r.Outcome != dtest.Independent {
				cur[lvl] = dir
				refine(lvl+1, depth+1)
				cur[lvl] = Any
			}
			dirs[lvl] = byte(Any)
			ts.PopTo(tm)
			rf.arena.Release(am)
			sum.TrailPops++
		}
	}
	refine(0, 0)

	if len(sum.Vectors) == 0 && levels > 0 {
		// Every direction vector was refuted: the pair is independent even
		// though the base (*,…,*) test said otherwise (§6's implicit
		// branch-and-bound; possible because direction constraints cut the
		// fractional region the base test could not exclude).
		sum.ImplicitBB = true
		sum.Dependent = false
		sum.Exact = true
		sum.Trip = dtest.TripNone
		return sum
	}
	sum.Dependent = true
	if levels == 0 {
		// No common loops: dependence is loop-independent; represent it
		// with the empty vector.
		sum.Vectors = append(sum.Vectors, Vector{})
	}
	return sum
}
