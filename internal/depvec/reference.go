package depvec

import (
	"exactdep/internal/dtest"
	"exactdep/internal/system"
)

// ComputeReference is the clone-per-node refinement walk the trail-based
// ComputeObserved replaced, retained verbatim as a differential oracle: it
// ignores Options.Refiner and Options.Memo, deep-copies the system at every
// tree node, and never consults a memo, so its Summary (modulo the trail
// and memo counters, which stay zero) is the ground truth the optimized
// walk is pinned against (TestRefineDifferential). It is not part of any
// production path.
func ComputeReference(ts *system.TSystem, opts Options, onTest func(dtest.Result)) Summary {
	levels := 0
	if ts.Prob != nil {
		levels = ts.Prob.Common
	}
	sum := Summary{Exact: true}

	fixed := make([]Direction, levels) // 0 = refinable
	for lvl := 0; lvl < levels; lvl++ {
		if opts.PruneUnused && !ts.LevelUsed(lvl) {
			fixed[lvl] = Any
			continue
		}
		if opts.PruneDistance {
			d, err := ts.Distance(lvl)
			if err == nil && d.IsConst() {
				sum.Distances = append(sum.Distances, Distance{Level: lvl, Value: d.Const})
				switch {
				case d.Const > 0:
					fixed[lvl] = Less
				case d.Const < 0:
					fixed[lvl] = Greater
				default:
					fixed[lvl] = Equal
				}
			}
		}
	}

	run := func(s *system.TSystem) dtest.Result {
		var r dtest.Result
		if opts.Pipeline != nil {
			r = opts.Pipeline.Run(s)
		} else {
			r, _ = dtest.Solve(s)
		}
		sum.TestsRun++
		sum.note(r)
		if onTest != nil {
			onTest(r)
		}
		return r
	}

	base := run(ts)
	if base.Outcome == dtest.Independent {
		return sum
	}

	if opts.Separable && levels > 0 && Separable(ts) {
		referenceSeparable(ts, fixed, &sum, run)
		return sum
	}

	cur := make(Vector, levels)
	for i := range cur {
		cur[i] = Any
	}
	var refine func(s *system.TSystem, lvl int)
	refine = func(s *system.TSystem, lvl int) {
		for lvl < levels && fixed[lvl] != 0 {
			cur[lvl] = fixed[lvl]
			lvl++
		}
		if lvl >= levels {
			sum.Vectors = append(sum.Vectors, cur.Clone())
			return
		}
		for _, dir := range []Direction{Less, Equal, Greater} {
			sub := s.Clone()
			if err := sub.AddDirection(lvl, byte(dir)); err != nil {
				sum.Exact = false
				continue
			}
			r := run(sub)
			if r.Outcome == dtest.Independent {
				continue
			}
			cur[lvl] = dir
			refine(sub, lvl+1)
			cur[lvl] = Any
		}
	}
	refine(ts, 0)

	if len(sum.Vectors) == 0 && levels > 0 {
		sum.ImplicitBB = true
		sum.Dependent = false
		sum.Exact = true
		sum.Trip = dtest.TripNone
		return sum
	}
	sum.Dependent = true
	if levels == 0 {
		sum.Vectors = append(sum.Vectors, Vector{})
	}
	return sum
}

// referenceSeparable is the clone-based computeSeparable.
func referenceSeparable(ts *system.TSystem, fixed []Direction, sum *Summary,
	run func(*system.TSystem) dtest.Result) {
	levels := ts.Prob.Common
	perLevel := make([][]Direction, levels)
	for lvl := 0; lvl < levels; lvl++ {
		if fixed[lvl] != 0 {
			perLevel[lvl] = []Direction{fixed[lvl]}
			continue
		}
		for _, dir := range []Direction{Less, Equal, Greater} {
			sub := ts.Clone()
			if err := sub.AddDirection(lvl, byte(dir)); err != nil {
				sum.Exact = false
				continue
			}
			if r := run(sub); r.Outcome != dtest.Independent {
				perLevel[lvl] = append(perLevel[lvl], dir)
			}
		}
		if len(perLevel[lvl]) == 0 {
			sum.ImplicitBB = true
			sum.Dependent = false
			sum.Exact = true
			sum.Trip = dtest.TripNone
			sum.Vectors = nil
			return
		}
	}
	cur := make(Vector, levels)
	var build func(lvl int)
	build = func(lvl int) {
		if lvl == levels {
			sum.Vectors = append(sum.Vectors, cur.Clone())
			return
		}
		for _, d := range perLevel[lvl] {
			cur[lvl] = d
			build(lvl + 1)
		}
	}
	build(0)
	sum.Dependent = true
}
