package depvec

import (
	"sort"
	"testing"

	"exactdep/internal/dtest"
	"exactdep/internal/ir"
	"exactdep/internal/system"
)

func loop(idx string, lo, hi int64) ir.Loop {
	return ir.Loop{Index: idx, Lower: ir.NewConst(lo), Upper: ir.NewConst(hi)}
}

// prep builds and preprocesses a pair in the given loops.
func prep(t *testing.T, loops []ir.Loop, subA, subB []ir.Expr) *system.TSystem {
	t.Helper()
	nest := &ir.Nest{Label: "dv", Loops: loops}
	a := ir.Ref{Array: "a", Subscripts: subA, Kind: ir.Write, Depth: len(loops)}
	b := ir.Ref{Array: "a", Subscripts: subB, Kind: ir.Read, Depth: len(loops)}
	nest.Refs = []ir.Ref{a, b}
	p, err := system.Build(nest.Pair(a, b))
	if err != nil {
		t.Fatal(err)
	}
	res, ts, err := system.Preprocess(p)
	if err != nil {
		t.Fatal(err)
	}
	if res == system.GCDIndependent {
		t.Fatal("test expects a GCD-dependent pair")
	}
	return ts
}

func vecStrings(vs []Vector) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	sort.Strings(out)
	return out
}

func TestDistanceOneVector(t *testing.T) {
	// paper §6 first example: a[i+1] = a[i]: dependent with '<' only.
	ts := prep(t, []ir.Loop{loop("i", 1, 10)},
		[]ir.Expr{ir.NewVar("i").AddConst(1)}, []ir.Expr{ir.NewVar("i")})
	for _, opts := range []Options{{}, {PruneUnused: true, PruneDistance: true}} {
		sum := Compute(ts.Clone(), opts)
		if !sum.Dependent || !sum.Exact {
			t.Fatalf("opts %+v: %+v", opts, sum)
		}
		if got := vecStrings(sum.Vectors); len(got) != 1 || got[0] != "(<)" {
			t.Fatalf("opts %+v: vectors = %v, want [(<)]", opts, got)
		}
	}
}

func TestEqualOnlyVector(t *testing.T) {
	// paper §6 second example: a[i] = a[i]+7: dependent with '=' only.
	ts := prep(t, []ir.Loop{loop("i", 1, 10)},
		[]ir.Expr{ir.NewVar("i")}, []ir.Expr{ir.NewVar("i")})
	sum := Compute(ts, Options{PruneDistance: true})
	if got := vecStrings(sum.Vectors); len(got) != 1 || got[0] != "(=)" {
		t.Fatalf("vectors = %v, want [(=)]", got)
	}
	if len(sum.Distances) != 1 || sum.Distances[0].Value != 0 {
		t.Fatalf("distances = %v", sum.Distances)
	}
	// Distance pruning must have avoided all refinement tests: base only.
	if sum.TestsRun != 1 {
		t.Fatalf("TestsRun = %d, want 1 (distance-pruned)", sum.TestsRun)
	}
}

func TestDistancePruningSkipsTests(t *testing.T) {
	ts := prep(t, []ir.Loop{loop("i", 1, 10)},
		[]ir.Expr{ir.NewVar("i").AddConst(3)}, []ir.Expr{ir.NewVar("i")})
	pruned := Compute(ts.Clone(), Options{PruneDistance: true})
	unpruned := Compute(ts.Clone(), Options{})
	if vecStrings(pruned.Vectors)[0] != "(<)" || vecStrings(unpruned.Vectors)[0] != "(<)" {
		t.Fatalf("vectors: pruned %v unpruned %v", pruned.Vectors, unpruned.Vectors)
	}
	if pruned.TestsRun >= unpruned.TestsRun {
		t.Fatalf("pruning must reduce tests: %d vs %d", pruned.TestsRun, unpruned.TestsRun)
	}
	if len(pruned.Distances) != 1 || pruned.Distances[0].Value != 3 {
		t.Fatalf("distances = %v", pruned.Distances)
	}
}

func TestUnusedVariablePruning(t *testing.T) {
	// paper §6: for i, for j { a[i] = a[j+1]?? } — use their exact example:
	// for i=1 to 10, for j=1 to 10 { a[j] = a[j+1] }: i is unused, result
	// should be (*, <areas>) with '*' prepended.
	loops := []ir.Loop{loop("i", 1, 10), loop("j", 1, 10)}
	ts := prep(t, loops, []ir.Expr{ir.NewVar("j")}, []ir.Expr{ir.NewVar("j").AddConst(1)})
	pruned := Compute(ts.Clone(), Options{PruneUnused: true, PruneDistance: true})
	if !pruned.Dependent {
		t.Fatal("a[j] vs a[j+1] depends")
	}
	for _, v := range pruned.Vectors {
		if v[0] != Any {
			t.Fatalf("outer direction must stay '*': %v", v)
		}
	}
	// without pruning, the i level is enumerated into <, =, >
	unpruned := Compute(ts.Clone(), Options{})
	if len(unpruned.Vectors) != 3*len(pruned.Vectors) {
		t.Fatalf("expected 3x vectors without pruning: %v vs %v",
			vecStrings(unpruned.Vectors), vecStrings(pruned.Vectors))
	}
	if pruned.TestsRun >= unpruned.TestsRun {
		t.Fatalf("pruning must reduce tests: %d vs %d", pruned.TestsRun, unpruned.TestsRun)
	}
}

func TestMultipleVectors(t *testing.T) {
	// paper §6: for i=0 to 10, for j=0 to 10 { a[i][j] = a[2i][j]+7 }:
	// dependent with both (<, =) and (=, =) — the write at iteration
	// (2t, j) conflicts with the read at (t, j), so iA=2t > iB=t for t>0
	// giving '>'... direction is defined by the first reference's
	// iteration vs the second's: write a[i][j] at i=2t vs read a[2i][j] at
	// i=t. Enumerate exactly and compare against brute force.
	loops := []ir.Loop{loop("i", 0, 10), loop("j", 0, 10)}
	ts := prep(t, loops,
		[]ir.Expr{ir.NewVar("i"), ir.NewVar("j")},
		[]ir.Expr{ir.NewTerm("i", 2), ir.NewVar("j")})
	sum := Compute(ts, Options{})
	if !sum.Dependent || !sum.Exact {
		t.Fatalf("%+v", sum)
	}
	want := bruteDirections(0, 10, func(iA, jA, iB, jB int64) bool {
		return iA == 2*iB && jA == jB
	})
	if got := vecStrings(sum.Vectors); !equalStrings(got, want) {
		t.Fatalf("vectors = %v, want %v", got, want)
	}
}

// bruteDirections enumerates direction vectors of a 2-deep nest by brute
// force over the iteration box.
func bruteDirections(lo, hi int64, conflict func(iA, jA, iB, jB int64) bool) []string {
	set := map[string]bool{}
	dir := func(a, b int64) byte {
		switch {
		case a < b:
			return '<'
		case a > b:
			return '>'
		default:
			return '='
		}
	}
	for iA := lo; iA <= hi; iA++ {
		for jA := lo; jA <= hi; jA++ {
			for iB := lo; iB <= hi; iB++ {
				for jB := lo; jB <= hi; jB++ {
					if conflict(iA, jA, iB, jB) {
						set[string([]byte{'(', dir(iA, iB), ',', ' ', dir(jA, jB), ')'})] = true
					}
				}
			}
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIndependentPairNoVectors(t *testing.T) {
	ts := prep(t, []ir.Loop{loop("i", 1, 10)},
		[]ir.Expr{ir.NewVar("i").AddConst(10)}, []ir.Expr{ir.NewVar("i")})
	sum := Compute(ts, Options{PruneUnused: true, PruneDistance: true})
	if sum.Dependent || len(sum.Vectors) != 0 {
		t.Fatalf("%+v", sum)
	}
	if sum.TestsRun != 1 {
		t.Fatalf("independent base must use exactly 1 test, got %d", sum.TestsRun)
	}
}

func TestImplicitBranchAndBound(t *testing.T) {
	// Reproduces the paper's §6 endnote: with explicit branch-and-bound
	// disabled (as in the paper's implementation), a system whose real
	// dependence has fractional distance yields Unknown at the base test,
	// and every direction vector is then refuted — implicit branch-and-
	// bound concludes independent. Built directly in t-space: the region
	// 2t1 - 3t2 = 1, t2 = 0 contains only t1 = 1/2.
	dtest.EnableExplicitBranchAndBound = false
	defer func() { dtest.EnableExplicitBranchAndBound = true }()

	prob := &system.Problem{
		Vars: []system.Variable{
			{Name: "i", Kind: system.IndexA, Level: 0},
			{Name: "i'", Kind: system.IndexB, Level: 0},
		},
		Common: 1,
	}
	ts := &system.TSystem{
		NumT: 2,
		XOf: []system.TExpr{
			{Coef: []int64{1, 0}}, // i  = t1
			{Coef: []int64{0, 1}}, // i' = t2
		},
		Cons: []system.Constraint{
			{Coef: []int64{2, -3}, C: 1},  // 2t1 - 3t2 ≤ 1
			{Coef: []int64{-2, 3}, C: -1}, // 2t1 - 3t2 ≥ 1
			{Coef: []int64{0, 1}, C: 0},   // t2 ≤ 0
			{Coef: []int64{0, -1}, C: 0},  // t2 ≥ 0
		},
		Prob: prob,
	}
	base, _ := dtest.Solve(ts.Clone())
	if base.Outcome != dtest.Unknown {
		t.Fatalf("premise: base must be Unknown without explicit B&B, got %v", base)
	}
	// LevelUsed needs an Eq matrix; give the problem a trivial one marking
	// both variables used.
	eqProb(prob)
	sum := Compute(ts, Options{})
	if sum.Dependent {
		t.Fatalf("implicit B&B must conclude independent: %+v", sum)
	}
	if !sum.ImplicitBB || !sum.Exact {
		t.Fatalf("expected exact ImplicitBB verdict: %+v", sum)
	}
}

// eqProb attaches a 2x1 equation marking both variables used.
func eqProb(p *system.Problem) {
	nest := &ir.Nest{Loops: []ir.Loop{loop("i", 0, 10)}}
	a := ir.Ref{Array: "a", Subscripts: []ir.Expr{ir.NewTerm("i", 2)}, Kind: ir.Write, Depth: 1}
	b := ir.Ref{Array: "a", Subscripts: []ir.Expr{ir.NewTerm("i", 3).AddConst(1)}, Kind: ir.Read, Depth: 1}
	nest.Refs = []ir.Ref{a, b}
	built, err := system.Build(nest.Pair(a, b))
	if err != nil {
		panic(err)
	}
	p.Eq = built.Eq
	p.RHS = built.RHS
	p.Lower = built.Lower
	p.Upper = built.Upper
}

func TestObserverCounts(t *testing.T) {
	ts := prep(t, []ir.Loop{loop("i", 0, 10)},
		[]ir.Expr{ir.NewVar("i")}, []ir.Expr{ir.NewTerm("i", 2)})
	var observed int
	sum := ComputeObserved(ts, Options{}, func(dtest.Result) { observed++ })
	if observed != sum.TestsRun {
		t.Fatalf("observer saw %d, summary says %d", observed, sum.TestsRun)
	}
	if observed < 2 {
		t.Fatalf("refinement must run multiple tests, got %d", observed)
	}
}

func TestVectorString(t *testing.T) {
	v := Vector{Less, Equal, Any, Greater}
	if got := v.String(); got != "(<, =, *, >)" {
		t.Fatalf("String = %q", got)
	}
	if got := (Vector{}).String(); got != "()" {
		t.Fatalf("empty = %q", got)
	}
}

func TestMergeVectors(t *testing.T) {
	mk := func(s string) Vector {
		v := make(Vector, len(s))
		for i := range s {
			v[i] = Direction(s[i])
		}
		return v
	}
	// full triple collapses
	out := Merge([]Vector{mk("<<"), mk("<="), mk("<>")})
	if len(out) != 1 || out[0].String() != "(<, *)" {
		t.Fatalf("Merge = %v", out)
	}
	// cascading: 9 vectors over 2 levels collapse to (*, *)
	var all []Vector
	for _, a := range "<=>" {
		for _, b := range "<=>" {
			all = append(all, mk(string(a)+string(b)))
		}
	}
	out = Merge(all)
	if len(out) != 1 || out[0].String() != "(*, *)" {
		t.Fatalf("Merge(all 9) = %v", out)
	}
	// partial sets stay put
	out = Merge([]Vector{mk("<<"), mk("<=")})
	if len(out) != 2 {
		t.Fatalf("incomplete triple merged: %v", out)
	}
	// duplicates removed
	out = Merge([]Vector{mk("<"), mk("<")})
	if len(out) != 1 {
		t.Fatalf("duplicates survive: %v", out)
	}
	if got := Merge(nil); got != nil {
		t.Fatalf("Merge(nil) = %v", got)
	}
}
