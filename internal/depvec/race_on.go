//go:build race

package depvec

// raceEnabled reports whether the race detector is compiled in. Allocation
// assertions skip under it: the instrumentation allocates on its own, so
// testing.AllocsPerRun counts would be meaningless.
const raceEnabled = true
