//go:build !race

package depvec

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
