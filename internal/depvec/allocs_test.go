package depvec

// Allocation gates and benchmarks for the clone-free refinement walk. The
// point of the trail is that a refinement *node* — mark, push direction
// rows, test, pop, release — costs no allocations once the workspace is
// warm; the old walk cloned the whole system per node, O(3^d) deep copies
// on a d-level nest. Result materialization (appending surviving vectors to
// the Summary) still allocates per *surviving leaf*, which is output, not
// walk overhead; the gates below therefore drive walks with no surviving
// vectors. The cascade's own zero-allocation property is gated separately
// in internal/dtest (TestCascadeZeroAllocs, TestFMSolveZeroAllocs).

import (
	"testing"

	"exactdep/internal/dtest"
	"exactdep/internal/ir"
	"exactdep/internal/system"
)

// fractionalSystem is the §6 endnote system whose only rational solution is
// t1 = 1/2: base test Unknown (with explicit branch-and-bound disabled),
// every direction refuted — the implicit branch-and-bound walk, which
// visits every refinement node yet materializes no vectors.
func fractionalSystem() *system.TSystem {
	prob := &system.Problem{
		Vars: []system.Variable{
			{Name: "i", Kind: system.IndexA, Level: 0},
			{Name: "i'", Kind: system.IndexB, Level: 0},
		},
		Common: 1,
	}
	return &system.TSystem{
		NumT: 2,
		XOf: []system.TExpr{
			{Coef: []int64{1, 0}},
			{Coef: []int64{0, 1}},
		},
		Cons: []system.Constraint{
			{Coef: []int64{2, -3}, C: 1},
			{Coef: []int64{-2, 3}, C: -1},
			{Coef: []int64{0, 1}, C: 0},
			{Coef: []int64{0, -1}, C: 0},
		},
		Prob: prob,
	}
}

// independentPair is refuted at the base (*) test: a[i+10] vs a[i] over
// i = 1..10.
func independentPair(t testing.TB) *system.TSystem {
	nest := &ir.Nest{Label: "alloc", Loops: []ir.Loop{loop("i", 1, 10)}}
	a := ir.Ref{Array: "a", Subscripts: []ir.Expr{ir.NewVar("i").AddConst(10)}, Kind: ir.Write, Depth: 1}
	b := ir.Ref{Array: "a", Subscripts: []ir.Expr{ir.NewVar("i")}, Kind: ir.Read, Depth: 1}
	nest.Refs = []ir.Ref{a, b}
	p, err := system.Build(nest.Pair(a, b))
	if err != nil {
		t.Fatal(err)
	}
	_, ts, err := system.Preprocess(p)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// TestRefineZeroAllocs enforces the PR's acceptance criterion: the
// refinement walk's steady state allocates nothing per node.
func TestRefineZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts include race-detector instrumentation")
	}
	t.Run("independent-base", func(t *testing.T) {
		// One cascade test, no refinement: the Refiner+Pipeline pair must
		// make the whole call allocation-free.
		ts := independentPair(t)
		rf := NewRefiner()
		p := dtest.DefaultConfig().NewPipeline()
		opts := Options{PruneUnused: true, Refiner: rf, Pipeline: p}
		if sum := ComputeObserved(ts, opts, nil); sum.Dependent {
			t.Fatalf("premise: pair must be independent, got %+v", sum)
		}
		for i := 0; i < 3; i++ {
			ComputeObserved(ts, opts, nil)
		}
		if n := testing.AllocsPerRun(100, func() { ComputeObserved(ts, opts, nil) }); n != 0 {
			t.Errorf("steady-state base test allocated %.1f times per call", n)
		}
	})
	t.Run("memoized-walk", func(t *testing.T) {
		// The implicit branch-and-bound walk over a warm memo: base Unknown,
		// every direction refuted — all refinement nodes visited (mark, push,
		// lookup, pop, release), no vectors materialized, no cascade runs.
		// This is the pure per-node trail bracket.
		dtest.EnableExplicitBranchAndBound = false
		defer func() { dtest.EnableExplicitBranchAndBound = true }()
		ts := fractionalSystem()
		rf := NewRefiner()
		memo := mapMemo{}
		opts := Options{Refiner: rf, Memo: memo}
		cold := ComputeObserved(ts, opts, nil)
		if !cold.ImplicitBB || cold.TestsRun == 0 {
			t.Fatalf("premise: cold walk must refine to implicit B&B, got %+v", cold)
		}
		for i := 0; i < 3; i++ {
			if sum := ComputeObserved(ts, opts, nil); sum.TestsRun != 0 {
				t.Fatalf("warm walk must be all memo hits, got %+v", sum)
			}
		}
		if n := testing.AllocsPerRun(100, func() { ComputeObserved(ts, opts, nil) }); n != 0 {
			t.Errorf("steady-state memoized walk allocated %.1f times per call", n)
		}
	})
}

// BenchmarkRefinementDeep compares the refinement strategies over coupled
// 3- and 4-level nests that reach Fourier–Motzkin at many nodes: the
// clone-per-node reference walk, the clone-free trail walk, and the trail
// walk over a warm direction memo. tests/op reports cascade invocations per
// analyzed pair — the quantity the direction memo eliminates.
func BenchmarkRefinementDeep(b *testing.B) {
	for _, depth := range []int{3, 4} {
		ts := fmHardNest(b, depth)
		opts := Options{PruneUnused: true}
		b.Run(benchName("reference", depth), func(b *testing.B) {
			tests := 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sum := ComputeReference(ts.Clone(), opts, nil)
				tests += sum.TestsRun
			}
			b.ReportMetric(float64(tests)/float64(b.N), "tests/op")
		})
		b.Run(benchName("trail", depth), func(b *testing.B) {
			rf := NewRefiner()
			p := dtest.DefaultConfig().NewPipeline()
			o := opts
			o.Refiner, o.Pipeline = rf, p
			tests := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sum := ComputeObserved(ts, o, nil)
				tests += sum.TestsRun
			}
			b.ReportMetric(float64(tests)/float64(b.N), "tests/op")
		})
		b.Run(benchName("trail-memo", depth), func(b *testing.B) {
			rf := NewRefiner()
			p := dtest.DefaultConfig().NewPipeline()
			o := opts
			o.Refiner, o.Pipeline, o.Memo = rf, p, mapMemo{}
			ComputeObserved(ts, o, nil) // warm the memo
			tests := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sum := ComputeObserved(ts, o, nil)
				tests += sum.TestsRun
			}
			b.ReportMetric(float64(tests)/float64(b.N), "tests/op")
		})
	}
}

func benchName(kind string, depth int) string {
	return kind + "/depth=" + string(rune('0'+depth))
}
