package depvec

import (
	"exactdep/internal/dtest"
	"exactdep/internal/system"
)

// The dimension-by-dimension optimization Burke and Cytron suggest and the
// paper cites at the end of §6: when the loop levels are not interrelated —
// no subscript equation and no bound couples two levels — each component of
// the direction vector can be computed independently (3·L tests) instead of
// hierarchically (up to 3^L). The full vector set is then the cross product
// of the per-level direction sets.

// Separable reports whether the problem decomposes by loop level: every
// variable is a common loop index (no symbols, no non-common loops), every
// equation touches at most one level, and every bound is constant.
func Separable(ts *system.TSystem) bool {
	p := ts.Prob
	if p == nil {
		return false
	}
	levelOf := make([]int, len(p.Vars))
	for i, v := range p.Vars {
		if v.Kind == system.Symbol || v.Level < 0 || v.Level >= p.Common {
			return false
		}
		levelOf[i] = v.Level
	}
	for d := 0; d < p.Eq.Cols; d++ {
		lvl := -1
		for i := range p.Vars {
			if p.Eq.At(i, d) == 0 {
				continue
			}
			if lvl == -1 {
				lvl = levelOf[i]
			} else if lvl != levelOf[i] {
				return false // coupled subscript dimension
			}
		}
	}
	for i := range p.Vars {
		for _, b := range []system.Bound{p.Lower[i], p.Upper[i]} {
			if b.Has && !b.Expr.IsConst() {
				return false // triangular or symbolic bound couples levels
			}
		}
	}
	return true
}

// computeSeparable runs the dimension-wise method. It must only be called
// on separable systems whose base (*,…,*) test was dependent; fixed is the
// pruning array from ComputeObserved (nonzero entries are not re-tested).
// Each single-level test pushes its direction onto ts's trail and pops it —
// dirs mirrors the pushed state so the memo sees the same canonical key
// space the hierarchical walk uses (one non-'*' level).
func computeSeparable(ts *system.TSystem, fixed []Direction, dirs []byte, sum *Summary,
	rf *Refiner, run func(*system.TSystem) dtest.Result) {
	levels := ts.Prob.Common
	perLevel := make([][]Direction, levels)
	for lvl := 0; lvl < levels; lvl++ {
		if fixed[lvl] != 0 {
			perLevel[lvl] = []Direction{fixed[lvl]}
			continue
		}
		for _, dir := range []Direction{Less, Equal, Greater} {
			tm := ts.Mark()
			am := rf.arena.Mark()
			if err := ts.PushDirection(lvl, byte(dir), &rf.arena); err != nil {
				rf.arena.Release(am)
				sum.Exact = false
				continue
			}
			sum.TrailPushes++
			if sum.TrailMaxDepth < 1 {
				sum.TrailMaxDepth = 1
			}
			dirs[lvl] = byte(dir)
			if r := run(ts); r.Outcome != dtest.Independent {
				perLevel[lvl] = append(perLevel[lvl], dir)
			}
			dirs[lvl] = byte(Any)
			ts.PopTo(tm)
			rf.arena.Release(am)
			sum.TrailPops++
		}
		if len(perLevel[lvl]) == 0 {
			// The base test said dependent, so a separable system has at
			// least one feasible direction per level; reaching this means
			// the base verdict was inexact and the level refutes it.
			sum.ImplicitBB = true
			sum.Dependent = false
			sum.Exact = true
			sum.Trip = dtest.TripNone
			sum.Vectors = nil
			return
		}
	}
	// cross product
	cur := make(Vector, levels)
	var build func(lvl int)
	build = func(lvl int) {
		if lvl == levels {
			sum.Vectors = append(sum.Vectors, cur.Clone())
			return
		}
		for _, d := range perLevel[lvl] {
			cur[lvl] = d
			build(lvl + 1)
		}
	}
	build(0)
	sum.Dependent = true
}
