package workload

import (
	"bytes"
	"context"
	"testing"

	"exactdep/internal/core"
	"exactdep/internal/corpus"
)

// TestLargeCorpusIncremental is the acceptance test of the corpus layer on
// the 4096-nest LargeCorpus: mutate k (1%) of the nests, and the
// incremental driver must re-solve exactly those k — with analyzer traffic
// at most 2% of a cold run's — while producing output byte-identical to a
// cold full analysis of the mutated corpus at workers = 1 and workers = 4,
// through a store that survived a save/load round trip.
func TestLargeCorpusIncremental(t *testing.T) {
	const nests = 4096
	const k = 41 // ~1% dirty

	opts := core.Options{Memoize: true, ImprovedMemo: true,
		DirectionVectors: true, PruneUnused: true, PruneDistance: true}

	units, err := LargeCorpusUnits(nests)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != nests {
		t.Fatalf("LargeCorpusUnits(%d) = %d units, want one per nest", nests, len(units))
	}

	// Cold run, filling the store.
	coldDriver := corpus.NewDriver(opts, 1)
	if err := coldDriver.SetStore(corpus.NewStore(opts)); err != nil {
		t.Fatal(err)
	}
	if _, err := coldDriver.RunAll(context.Background(), units); err != nil {
		t.Fatal(err)
	}
	coldPairs := coldDriver.Analyzer().Stats.Pairs
	if cs := coldDriver.Stats; cs.Units != nests || cs.UnitsSolved != nests || cs.UnitsReused != 0 {
		t.Fatalf("cold stats: %+v", cs)
	}
	if coldDriver.Store().Len() == 0 {
		t.Fatal("cold run filled no store entries")
	}

	// Persist the filled store; the warm runs below each load a pristine
	// copy, proving the round trip (and keeping the two runs independent).
	var snapshot bytes.Buffer
	if err := coldDriver.Store().Save(&snapshot); err != nil {
		t.Fatal(err)
	}
	loadSnapshot := func() *corpus.Store {
		t.Helper()
		s, err := corpus.LoadStore(bytes.NewReader(snapshot.Bytes()), opts)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Mutate k distinct nests, spread across the corpus.
	dirty := units
	for i := 0; i < k; i++ {
		dirty = MutateNest(dirty, (i*97+5)%nests, 1)
	}

	// Reference: a cold full analysis of the mutated corpus.
	refDriver := corpus.NewDriver(opts, 1)
	want, err := refDriver.Canonical(context.Background(), dirty)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		d := corpus.NewDriver(opts, workers)
		if err := d.SetStore(loadSnapshot()); err != nil {
			t.Fatal(err)
		}
		got, err := d.Canonical(context.Background(), dirty)
		if err != nil {
			t.Fatal(err)
		}
		if cs := d.Stats; cs.UnitsSolved != k || cs.UnitsReused != nests-k {
			t.Fatalf("workers=%d: driver re-solved %d units, reused %d; want exactly %d and %d",
				workers, cs.UnitsSolved, cs.UnitsReused, k, nests-k)
		}
		warmPairs := d.Analyzer().Stats.Pairs
		if warmPairs*50 > coldPairs {
			t.Fatalf("workers=%d: warm run analyzed %d pairs, more than 2%% of cold's %d",
				workers, warmPairs, coldPairs)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: incremental output diverged from cold full analysis (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}
}

// TestMutateNest pins the mutation helper itself: only the targeted unit
// changes, and its fingerprint moves.
func TestMutateNest(t *testing.T) {
	units, err := LargeCorpusUnits(256)
	if err != nil {
		t.Fatal(err)
	}
	var f corpus.Fingerprinter
	before := make([]string, len(units))
	for i := range units {
		before[i] = f.Unit(units[i]).String()
	}
	mut := MutateNest(units, 3, 2)
	for i := range mut {
		after := f.Unit(mut[i]).String()
		if i == 3 {
			if after == before[i] {
				t.Fatal("mutated unit kept its fingerprint")
			}
			continue
		}
		if after != before[i] {
			t.Fatalf("unit %d changed without being mutated", i)
		}
	}
	// The input corpus is untouched (deep-enough copy).
	if got := f.Unit(units[3]).String(); got != before[3] {
		t.Fatal("MutateNest mutated its input")
	}
}
