package workload

import (
	"testing"

	"exactdep/internal/core"
	"exactdep/internal/dtest"
)

// TestCalibrationTable1 locks the workload to the paper's Table 1: per
// program, the pipeline must classify exactly the specified number of cases
// into each column.
func TestCalibrationTable1(t *testing.T) {
	for _, s := range Programs() {
		a, err := Analyze(s, core.Options{}, false)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		st := &a.Stats
		if st.Constant != s.Constant {
			t.Errorf("%s: constants = %d, want %d", s.Name, st.Constant, s.Constant)
		}
		if st.GCDIndependent != s.GCD.Total {
			t.Errorf("%s: gcd = %d, want %d", s.Name, st.GCDIndependent, s.GCD.Total)
		}
		checks := []struct {
			kind dtest.Kind
			want int
			name string
		}{
			{dtest.KindSVPC, s.SVPC.Total, "SVPC"},
			{dtest.KindAcyclic, s.Acyclic.Total, "Acyclic"},
			{dtest.KindLoopResidue, s.Residue.Total, "LoopResidue"},
			{dtest.KindFourierMotzkin, s.FM.Total, "FourierMotzkin"},
		}
		for _, c := range checks {
			if got := st.TestCount(c.kind); got != c.want {
				t.Errorf("%s: %s = %d, want %d", s.Name, c.name, got, c.want)
			}
		}
		if st.Unknown != 0 {
			t.Errorf("%s: %d unknown verdicts (cascade must stay exact)", s.Name, st.Unknown)
		}
	}
}

// TestCalibrationTable3 locks the unique-case counts under memoization.
func TestCalibrationTable3(t *testing.T) {
	for _, s := range Programs() {
		a, err := Analyze(s, core.Options{Memoize: true, ImprovedMemo: true}, false)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		st := &a.Stats
		checks := []struct {
			kind dtest.Kind
			want int
			name string
		}{
			{dtest.KindSVPC, s.SVPC.Unique, "SVPC"},
			{dtest.KindAcyclic, s.Acyclic.Unique, "Acyclic"},
			{dtest.KindLoopResidue, s.Residue.Unique, "LoopResidue"},
			{dtest.KindFourierMotzkin, s.FM.Unique, "FourierMotzkin"},
		}
		for _, c := range checks {
			if got := st.TestCount(c.kind); got != c.want {
				t.Errorf("%s: unique %s = %d, want %d", s.Name, c.name, got, c.want)
			}
		}
	}
}

// TestSuiteTotals checks the headline numbers: 11,859 constants, 384 GCD,
// 5,679 tests reducing to 332 unique.
func TestSuiteTotals(t *testing.T) {
	plain := core.New(core.Options{})
	memod := core.New(core.Options{Memoize: true, ImprovedMemo: true})
	for _, s := range Programs() {
		if err := AnalyzeInto(plain, s, false); err != nil {
			t.Fatal(err)
		}
		if err := AnalyzeInto(memod, s, false); err != nil {
			t.Fatal(err)
		}
	}
	if plain.Stats.Constant != 11859 {
		t.Errorf("suite constants = %d, want 11859", plain.Stats.Constant)
	}
	if plain.Stats.GCDIndependent != 384 {
		t.Errorf("suite gcd = %d, want 384", plain.Stats.GCDIndependent)
	}
	if plain.Stats.TotalTests() != 5679 {
		t.Errorf("suite tests = %d, want 5679", plain.Stats.TotalTests())
	}
	// Memoized: per-program tables are shared across the suite here, so the
	// unique total can only be ≤ the per-program sum (332); cross-program
	// sharing is the paper's "standard table" idea.
	if got := memod.Stats.TotalTests(); got > 332 {
		t.Errorf("suite unique tests = %d, want ≤ 332", got)
	}
	if got := memod.Stats.TotalTests(); got < 200 {
		t.Errorf("suite unique tests = %d, suspiciously low", got)
	}
}

// TestSymbolicAddsCases: Table 7's symbolic cases must add tests and shift
// some toward Acyclic/FM.
func TestSymbolicAddsCases(t *testing.T) {
	for _, s := range Programs() {
		if (s.Sym == SymSpec{}) {
			continue
		}
		base, err := Analyze(s, core.Options{Memoize: true, ImprovedMemo: true}, false)
		if err != nil {
			t.Fatal(err)
		}
		sym, err := Analyze(s, core.Options{Memoize: true, ImprovedMemo: true}, true)
		if err != nil {
			t.Fatal(err)
		}
		if sym.Stats.TotalTests() <= base.Stats.TotalTests() {
			t.Errorf("%s: symbolic run must add unique tests (%d vs %d)",
				s.Name, sym.Stats.TotalTests(), base.Stats.TotalTests())
		}
		if sym.Stats.Unknown != 0 {
			t.Errorf("%s: symbolic cases must stay exact", s.Name)
		}
	}
}

// TestIndependentMix checks the suite-wide independent-pair population used
// by the §7 comparison (the paper's 482 independent pairs out of 5,679).
func TestIndependentMix(t *testing.T) {
	a := core.New(core.Options{})
	for _, s := range Programs() {
		if err := AnalyzeInto(a, s, false); err != nil {
			t.Fatal(err)
		}
	}
	// independent pairs among tested (excluding constants): GCD cases are
	// all independent; SVPC/... carry the IndepUnique share.
	indepTested := a.Stats.Independent - constantIndependents()
	if indepTested < 300 || indepTested > 700 {
		t.Errorf("independent tested pairs = %d, want a few hundred (paper: 482)", indepTested)
	}
}

// constantIndependents counts the constant-class independent pairs the suite
// generates (4 of every 5 constant cases differ).
func constantIndependents() int {
	n := 0
	for _, s := range Programs() {
		for i := 0; i < s.Constant; i++ {
			if i%5 != 4 {
				n++
			}
		}
	}
	return n
}

// TestDepthWrapping: wrapped patterns must carry both the unused outer
// loops and the used constant-distance dimensions.
func TestDepthWrapping(t *testing.T) {
	s, ok := ProgramByName("LG")
	if !ok || s.Free != 2 || s.Depth != 2 {
		t.Fatalf("LG spec changed: %+v", s)
	}
	src := Source(s, false)
	for _, want := range []string{"for w2", "for u2", "[u1][u2]", "[u1-1][u2-1]"} {
		if !contains(src, want) {
			t.Fatalf("LG source lacks %q", want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

// TestSourcesParse ensures every generated source (plain and symbolic) is
// valid input.
func TestSourcesParse(t *testing.T) {
	for _, s := range Programs() {
		for _, symbolic := range []bool{false, true} {
			if _, err := Analyze(s, core.Options{}, symbolic); err != nil {
				t.Errorf("%s symbolic=%v: %v", s.Name, symbolic, err)
			}
		}
	}
}
