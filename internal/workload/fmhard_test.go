package workload

import (
	"fmt"
	"testing"
	"time"

	"exactdep/internal/core"
	"exactdep/internal/dtest"
	"exactdep/internal/refs"
)

func fmHardSuite(t *testing.T) []refs.Candidate {
	t.Helper()
	cands, err := FMHardSuiteCandidates()
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("FM-hard suite produced no candidates")
	}
	return cands
}

// TestFMHardLandsInFM proves the generator earns its name: under the full
// cost-ordered cascade every pair falls through the cheap tests and is
// decided by Fourier–Motzkin, exactly.
func TestFMHardLandsInFM(t *testing.T) {
	a := core.New(core.Options{})
	for _, c := range fmHardSuite(t) {
		r, err := a.AnalyzeCandidate(c)
		if err != nil {
			t.Fatal(err)
		}
		if r.Kind != dtest.KindFourierMotzkin {
			t.Errorf("pair %v decided by %v, want Fourier–Motzkin", r.Pair, r.Kind)
		}
		if !r.Exact || (r.Outcome != dtest.Independent && r.Outcome != dtest.Dependent) {
			t.Errorf("pair %v: outcome %v exact=%v, want exact Independent/Dependent",
				r.Pair, r.Outcome, r.Exact)
		}
	}
	if got := a.Stats.TotalBudgetTrips(); got != 0 {
		t.Errorf("unbudgeted run recorded %d budget trips", got)
	}
}

// TestFMHardTinyBudgetTrips hammers the suite with a starvation budget: the
// run must complete, degrade some pairs to Maybe with trip provenance, and —
// because count budgets are deterministic — stay byte-identical between the
// serial driver and every concurrent worker count.
func TestFMHardTinyBudgetTrips(t *testing.T) {
	cands := fmHardSuite(t)
	opts := core.Options{
		Memoize:      true,
		ImprovedMemo: true,
		Budget:       dtest.Budget{MaxFMEliminations: 2},
	}
	serial := core.New(opts)
	base, err := serial.AnalyzeAll(cands, 1)
	if err != nil {
		t.Fatal(err)
	}
	maybes := 0
	for _, r := range base {
		switch r.Outcome {
		case dtest.Maybe:
			maybes++
			if r.Trip == dtest.TripNone {
				t.Errorf("pair %v: Maybe without a trip reason", r.Pair)
			}
			if r.Exact {
				t.Errorf("pair %v: Maybe marked exact", r.Pair)
			}
		case dtest.Independent, dtest.Dependent:
			// Pairs cheap enough to finish inside the budget stay exact.
		default:
			t.Errorf("pair %v: unexpected outcome %v under count budget", r.Pair, r.Outcome)
		}
	}
	if maybes == 0 {
		t.Fatal("starvation budget (MaxFMEliminations=2) tripped no pair")
	}
	if got := serial.Stats.TotalBudgetTrips(); got == 0 {
		t.Error("stats recorded no budget trips")
	}
	want := fmt.Sprintf("%+v", base)
	for _, workers := range []int{2, 4, 8} {
		a := core.New(opts)
		rs, err := a.AnalyzeAll(cands, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprintf("%+v", rs); got != want {
			t.Errorf("workers=%d: results differ from serial under count budget", workers)
		}
	}
}

// TestFMHardGenerousBudgetExact cross-validates: under a generous count
// budget the full cascade must reproduce, pair for pair, the exact verdicts
// of an unbudgeted fm-only analyzer.
func TestFMHardGenerousBudgetExact(t *testing.T) {
	cands := fmHardSuite(t)
	budgeted := core.New(core.Options{Budget: dtest.Budget{
		MaxFMEliminations: 1 << 30,
		MaxBranchNodes:    1 << 30,
		MaxConstraints:    1 << 30,
	}})
	fmOnly := core.New(core.Options{Cascade: "fm-only"})
	for i, c := range cands {
		rb, err := budgeted.AnalyzeCandidate(c)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := fmOnly.AnalyzeCandidate(c)
		if err != nil {
			t.Fatal(err)
		}
		if rb.Outcome != rf.Outcome || rb.Exact != rf.Exact {
			t.Errorf("candidate %d: budgeted full cascade %v/%v, fm-only %v/%v",
				i, rb.Outcome, rb.Exact, rf.Outcome, rf.Exact)
		}
		if rb.Trip != dtest.TripNone {
			t.Errorf("candidate %d: generous budget tripped (%v)", i, rb.Trip)
		}
	}
	if got := budgeted.Stats.TotalBudgetTrips(); got != 0 {
		t.Errorf("generous budget recorded %d trips", got)
	}
}

// TestFMHardDeadlineCompletesSoundly runs the suite under a 10ms-per-problem
// wall-clock budget: the driver must finish, and every pair must come back
// either exact or gracefully degraded to Maybe — never stuck, never unsound.
func TestFMHardDeadlineCompletesSoundly(t *testing.T) {
	cands := fmHardSuite(t)
	a := core.New(core.Options{Budget: dtest.Budget{MaxDuration: 10 * time.Millisecond}})
	rs, err := a.AnalyzeAll(cands, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(cands) {
		t.Fatalf("got %d results for %d candidates", len(rs), len(cands))
	}
	for _, r := range rs {
		switch r.Outcome {
		case dtest.Independent, dtest.Dependent:
			if !r.Exact {
				t.Errorf("pair %v: inexact %v without degradation to Maybe", r.Pair, r.Outcome)
			}
		case dtest.Maybe:
			if r.Trip == dtest.TripNone {
				t.Errorf("pair %v: Maybe without trip provenance", r.Pair)
			}
		default:
			t.Errorf("pair %v: outcome %v, want exact verdict or Maybe", r.Pair, r.Outcome)
		}
	}
}
