package workload

import (
	"fmt"
	"testing"

	"exactdep/internal/core"
)

// TestLargeCorpusShape pins the corpus contract: deterministic output, one
// candidate pair per requested nest (rounded up to whole programs), and a
// population that exercises every test category.
func TestLargeCorpusShape(t *testing.T) {
	specs := LargeCorpus(300)
	if len(specs) != 3 {
		t.Fatalf("LargeCorpus(300) = %d programs, want 3", len(specs))
	}
	again := LargeCorpus(300)
	for i := range specs {
		if specs[i] != again[i] {
			t.Fatalf("LargeCorpus not deterministic: program %d differs", i)
		}
	}
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Fatalf("duplicate corpus program name %q", s.Name)
		}
		names[s.Name] = true
		total := s.Constant + s.GCD.Total + s.SVPC.Total + s.Acyclic.Total +
			s.Residue.Total + s.FM.Total
		if total != corpusProgramNests {
			t.Fatalf("program %s has %d nests, want %d", s.Name, total, corpusProgramNests)
		}
		for _, c := range []CatSpec{s.GCD, s.SVPC, s.Acyclic, s.Residue, s.FM} {
			if c.Unique > c.Total || c.IndepUnique > c.Unique {
				t.Fatalf("program %s has inconsistent category %+v", s.Name, c)
			}
		}
	}

	cands, err := LargeCorpusCandidates(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 3*corpusProgramNests {
		t.Fatalf("LargeCorpusCandidates(300) = %d pairs, want %d", len(cands), 3*corpusProgramNests)
	}
}

// TestLargeCorpusSerialConcurrentIdentical: the corpus is the concurrent
// driver's stress input, so serial and fan-out analysis of it must agree
// byte for byte (the determinism contract AnalyzeAll documents).
func TestLargeCorpusSerialConcurrentIdentical(t *testing.T) {
	cands, err := LargeCorpusCandidates(256)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Memoize: true, ImprovedMemo: true}
	serial := core.New(opts)
	want, err := serial.AnalyzeAll(cands, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		par := core.New(opts)
		got, err := par.AnalyzeAll(cands, w)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
			t.Fatalf("corpus results with %d workers differ from serial", w)
		}
		if par.Stats.Pairs != serial.Stats.Pairs ||
			par.Stats.Independent != serial.Stats.Independent ||
			par.Stats.Dependent != serial.Stats.Dependent {
			t.Fatalf("corpus verdict tallies with %d workers differ from serial", w)
		}
	}
}
