package workload

import (
	"fmt"

	"exactdep/internal/core"
	"exactdep/internal/lang"
	"exactdep/internal/opt"
	"exactdep/internal/refs"
)

// Analyze runs one synthetic program through the full pipeline (parse →
// prepass → pair extraction → analyzer) and returns the analyzer with its
// counters. Pairs are enumerated without self-pairs: the harness counts
// distinct-reference pairs, the paper's notion of a dependence-test call.
func Analyze(s Spec, opts core.Options, symbolic bool) (*core.Analyzer, error) {
	a := core.New(opts)
	if err := AnalyzeInto(a, s, symbolic); err != nil {
		return nil, err
	}
	return a, nil
}

// AnalyzeInto runs one synthetic program through an existing analyzer
// (sharing its memo tables, as a compiler would across a session).
func AnalyzeInto(a *core.Analyzer, s Spec, symbolic bool) error {
	cands, err := Candidates(s, symbolic)
	if err != nil {
		return err
	}
	for _, c := range cands {
		if _, err := a.AnalyzeCandidate(c); err != nil {
			return fmt.Errorf("workload %s: %w", s.Name, err)
		}
	}
	return nil
}

// Candidates parses and lowers one synthetic program and enumerates its
// candidate pairs (without self-pairs — the paper's counting unit).
func Candidates(s Spec, symbolic bool) ([]refs.Candidate, error) {
	src := Source(s, symbolic)
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", s.Name, err)
	}
	unit := opt.Lower(prog)
	if len(unit.Warnings) > 0 {
		return nil, fmt.Errorf("workload %s: unexpected lowering warnings: %v", s.Name, unit.Warnings)
	}
	return refs.PairsOpts(unit, refs.Options{NoSelfPairs: true}), nil
}
