package workload

import (
	"context"
	"fmt"

	"exactdep/internal/core"
	"exactdep/internal/corpus"
	"exactdep/internal/lang"
	"exactdep/internal/opt"
	"exactdep/internal/refs"
)

// RunnerOptions configures one suite-runner invocation.
type RunnerOptions struct {
	// Core configures the analyzer (memoization, direction vectors, …).
	Core core.Options
	// Symbolic appends the Table 7 symbolic cases to each program.
	Symbolic bool
	// Workers is the fan-out of the concurrent driver (core.AnalyzeAll):
	// 0 or 1 analyzes serially on the calling goroutine, N > 1 shares the
	// analyzer's sharded memo tables across N goroutines. Results and
	// verdict tallies are identical either way; only wall-clock changes.
	Workers int
	// Cascade selects the dtest pipeline configuration by name ("" keeps
	// Core.Cascade; "full" is the paper's cost-ordered cascade, "fm-only"
	// runs Fourier–Motzkin alone for cross-validation). When non-empty it
	// overrides Core.Cascade in Run/RunSuite.
	Cascade string
}

// coreOpts resolves the analyzer options, applying the Cascade override.
func (ro RunnerOptions) coreOpts() core.Options {
	c := ro.Core
	if ro.Cascade != "" {
		c.Cascade = ro.Cascade
	}
	return c
}

// Run analyzes one synthetic program with a fresh analyzer and returns the
// analyzer with its counters.
func Run(s Spec, ro RunnerOptions) (*core.Analyzer, error) {
	a := core.New(ro.coreOpts())
	if _, err := RunInto(a, s, ro); err != nil {
		return nil, err
	}
	return a, nil
}

// driverWorkers maps the runner's worker convention (0 or 1 serial, N > 1
// pool of N) onto the corpus driver's (where <= 0 means GOMAXPROCS).
func driverWorkers(w int) int {
	if w <= 1 {
		return 1
	}
	return w
}

// RunInto runs one synthetic program through an existing analyzer (sharing
// its memo tables, as a compiler would across a session) and returns the
// per-pair results in candidate order. It is a corpus-of-one run of the
// incremental driver with no store attached: the driver batches the unit
// straight through the analyzer, serially at Workers <= 1, so counters are
// identical to a direct AnalyzeCandidate loop.
func RunInto(a *core.Analyzer, s Spec, ro RunnerOptions) ([]core.Result, error) {
	cands, err := Candidates(s, ro.Symbolic)
	if err != nil {
		return nil, err
	}
	d := corpus.NewDriverOver(a, driverWorkers(ro.Workers))
	urs, err := d.RunAll(context.Background(), corpus.Mem{{Name: s.Name, Cands: cands}})
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", s.Name, err)
	}
	return urs[0].Results, nil
}

// RunSuite runs every program of the suite through one analyzer (shared
// memo tables, one compiler session) and returns it with merged counters.
// The suite is a thirteen-unit corpus: one driver run, one analyzer batch.
func RunSuite(ro RunnerOptions) (*core.Analyzer, error) {
	src, err := SuiteSource(ro.Symbolic)
	if err != nil {
		return nil, err
	}
	d := corpus.NewDriver(ro.coreOpts(), driverWorkers(ro.Workers))
	if err := d.Run(context.Background(), src, nil); err != nil {
		return nil, err
	}
	return d.Analyzer(), nil
}

// Analyze runs one synthetic program through the full pipeline (parse →
// prepass → pair extraction → analyzer) and returns the analyzer with its
// counters. Pairs are enumerated without self-pairs: the harness counts
// distinct-reference pairs, the paper's notion of a dependence-test call.
func Analyze(s Spec, opts core.Options, symbolic bool) (*core.Analyzer, error) {
	return Run(s, RunnerOptions{Core: opts, Symbolic: symbolic})
}

// AnalyzeInto runs one synthetic program through an existing analyzer
// (sharing its memo tables, as a compiler would across a session).
func AnalyzeInto(a *core.Analyzer, s Spec, symbolic bool) error {
	_, err := RunInto(a, s, RunnerOptions{Symbolic: symbolic})
	return err
}

// Candidates parses and lowers one synthetic program and enumerates its
// candidate pairs (without self-pairs — the paper's counting unit).
func Candidates(s Spec, symbolic bool) ([]refs.Candidate, error) {
	src := Source(s, symbolic)
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", s.Name, err)
	}
	unit := opt.Lower(prog)
	if len(unit.Warnings) > 0 {
		return nil, fmt.Errorf("workload %s: unexpected lowering warnings: %v", s.Name, unit.Warnings)
	}
	return refs.PairsOpts(unit, refs.Options{NoSelfPairs: true}), nil
}
