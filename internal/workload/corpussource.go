package workload

import (
	"exactdep/internal/corpus"
	"exactdep/internal/ir"
	"exactdep/internal/refs"
)

// Corpus adapters: the synthetic workloads exposed as corpus.Sources, so
// the suite runner, the incremental tests, and the corpus benchmarks all
// feed the same driver the DSL-file sources do.

// SuiteSource returns the paper-calibrated program suite as an in-memory
// corpus, one unit per program in suite order.
func SuiteSource(symbolic bool) (corpus.Mem, error) {
	var m corpus.Mem
	for _, s := range Programs() {
		cands, err := Candidates(s, symbolic)
		if err != nil {
			return nil, err
		}
		m = append(m, corpus.Unit{Name: s.Name, Cands: cands})
	}
	return m, nil
}

// LargeCorpusUnits returns a LargeCorpus of the given size as per-nest
// units — the invalidation granularity of incremental analysis. Every
// LargeCorpus nest is one assignment over a distinct array, so a program's
// candidate list splits into nests on contiguous runs sharing an array
// name; unit names are "<program>/<array>".
func LargeCorpusUnits(nests int) (corpus.Mem, error) {
	specs := LargeCorpus(nests)
	var m corpus.Mem
	for _, s := range specs {
		cands, err := Candidates(s, false)
		if err != nil {
			return nil, err
		}
		for lo := 0; lo < len(cands); {
			hi := lo + 1
			arr := cands[lo].Pair.A.Ref.Array
			for hi < len(cands) && cands[hi].Pair.A.Ref.Array == arr {
				hi++
			}
			m = append(m, corpus.Unit{Name: s.Name + "/" + arr, Cands: cands[lo:hi:hi]})
			lo = hi
		}
	}
	return m, nil
}

// MutateNest returns a deep-enough copy of units with unit i edited the way
// a programmer would: the first candidate's A-side first subscript gets its
// constant shifted by delta (a[i+1] instead of a[i]), and the candidate is
// re-classified. Unedited units share memory with the input — the corpus
// driver never mutates units, so the aliasing is safe and keeps the k-dirty
// test and benchmark setup cheap.
func MutateNest(units corpus.Mem, i int, delta int64) corpus.Mem {
	return MutateNests(units, []int{i}, delta)
}

// MutateNests is the bulk form: one shared copy of the unit slice with
// every index in idxs edited, so dirtying 1% of a 4096-nest corpus costs
// one slice copy, not k.
func MutateNests(units corpus.Mem, idxs []int, delta int64) corpus.Mem {
	out := make(corpus.Mem, len(units))
	copy(out, units)
	for _, i := range idxs {
		out[i] = mutateUnit(units[i], delta)
	}
	return out
}

// mutateUnit builds a fresh Unit value — not a struct copy — so the
// original's cached fingerprint is dropped along with the shared slices.
func mutateUnit(u corpus.Unit, delta int64) corpus.Unit {
	cands := make([]refs.Candidate, len(u.Cands))
	copy(cands, u.Cands)
	c := cands[0]
	subs := make([]ir.Expr, len(c.Pair.A.Ref.Subscripts))
	for j := range subs {
		subs[j] = c.Pair.A.Ref.Subscripts[j].Clone()
	}
	subs[0].Const += delta
	c.Pair.A.Ref.Subscripts = subs
	c.Class = refs.Classify(c.Pair.A.Ref, c.Pair.B.Ref)
	cands[0] = c
	return corpus.Unit{Name: u.Name, Cands: cands, Warnings: u.Warnings}
}
