package workload

// MemoSummary is one program's memo traffic under a given configuration —
// the per-suite hit-rate shape the BENCH_PR3.json baseline records so
// future PRs can spot cache regressions, not just time ones.
type MemoSummary struct {
	Program     string  `json:"program"`
	Pairs       int     `json:"pairs"`
	FullLookups int     `json:"full_lookups"`
	FullHits    int     `json:"full_hits"`
	L1Hits      int     `json:"l1_hits"`
	L2Hits      int     `json:"l2_hits"`
	UniqueFull  int     `json:"unique_full"`
	HitRate     float64 `json:"hit_rate"`
}

// SuiteMemoSummaries runs every suite program through a fresh analyzer and
// returns its memo summary (fresh per program, like the harness reports, so
// each row is self-contained).
func SuiteMemoSummaries(ro RunnerOptions) ([]MemoSummary, error) {
	out := make([]MemoSummary, 0, len(Programs()))
	for _, s := range Programs() {
		a, err := Run(s, ro)
		if err != nil {
			return nil, err
		}
		m := MemoSummary{
			Program:     s.Name,
			Pairs:       a.Stats.Pairs,
			FullLookups: a.Stats.FullLookups,
			FullHits:    a.Stats.FullHits,
			L1Hits:      a.Stats.L1Hits,
			L2Hits:      a.Stats.L2Hits,
			UniqueFull:  a.Stats.UniqueFull,
		}
		if m.FullLookups > 0 {
			m.HitRate = float64(m.FullHits) / float64(m.FullLookups)
		}
		out = append(out, m)
	}
	return out, nil
}
