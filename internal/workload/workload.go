// Package workload synthesizes the evaluation suite. The paper evaluates on
// the 13 PERFECT Club Fortran programs, which are not freely
// redistributable; this package substitutes generators that emit loop-
// language source whose population of dependence problems matches, per
// program, the category mix the paper reports in Tables 1 and 3: constant-
// subscript pairs, GCD-independent pairs, and pairs decided by SVPC /
// Acyclic / Loop Residue / Fourier–Motzkin, with the reported unique-pattern
// counts so the memoization behaviour (Table 2) and the direction-vector
// costs (Tables 4, 5, 7) emerge from the same mechanisms as in the paper.
//
// Every generated case is one assignment over a distinct array, so each
// contributes exactly one candidate pair when self-pairs are excluded.
// Pattern→test-category mappings are locked in by tests in this package
// against the real pipeline.
//
// The suite runner (Run/RunInto/RunSuite, configured by RunnerOptions)
// drives generated programs through the analyzer; RunnerOptions.Workers
// selects between the serial path and the concurrent driver
// (core.Analyzer.AnalyzeAll) without changing results.
package workload

import (
	"fmt"
	"strings"
)

// CatSpec sizes one test category for a program: Total cases, of which
// Unique distinct patterns (each repeated Total/Unique times), of which
// IndepUnique patterns are independent (the rest dependent).
type CatSpec struct {
	Total, Unique, IndepUnique int
}

// SymSpec sizes the extra symbolic patterns of Table 7: unique patterns
// whose base test lands in SVPC / Acyclic / Fourier–Motzkin respectively.
type SymSpec struct {
	SVPC, Acyclic, FM int
}

// Spec describes one synthetic program of the suite.
type Spec struct {
	Name  string
	Lines int // the paper's source-line count, used for reporting
	// Paper-calibrated category sizes (Tables 1 and 3).
	Constant int
	GCD      CatSpec
	SVPC     CatSpec
	Acyclic  CatSpec
	Residue  CatSpec
	FM       CatSpec
	// Sym adds Table 7's symbolic-only cases.
	Sym SymSpec
	// Depth is the number of *used* enclosing dimensions wrapped around
	// each pattern (constant-distance subscripts, pruned by the distance
	// vectors of Table 5). Free is the number of *unused* enclosing loops
	// (3-way direction branching in Table 4, pruned as '*' in Table 5).
	// Together they drive the direction-vector costs exactly as nesting
	// does in the real programs.
	Depth int
	Free  int
}

// Programs returns the 13 program specs, calibrated to the paper's Tables 1
// and 3 (totals and unique counts per test) with hand-assigned unique splits
// for the categories the paper does not break down (constants, GCD,
// independents).
func Programs() []Spec {
	return []Spec{
		{Name: "AP", Lines: 6104, Constant: 229, GCD: CatSpec{91, 4, 4},
			SVPC: CatSpec{613, 27, 1}, Depth: 1, Free: 1,
			Sym: SymSpec{SVPC: 6, Acyclic: 8}},
		{Name: "CS", Lines: 18520, Constant: 50,
			SVPC: CatSpec{127, 14, 1}, Acyclic: CatSpec{15, 6, 1}, Free: 1,
			Sym: SymSpec{SVPC: 4, Acyclic: 6, FM: 2}},
		{Name: "LG", Lines: 2327, Constant: 6961,
			SVPC: CatSpec{73, 23, 1}, Depth: 2, Free: 2,
			Sym: SymSpec{SVPC: 4}},
		{Name: "LW", Lines: 1237, Constant: 54,
			SVPC: CatSpec{34, 15, 0}, Acyclic: CatSpec{43, 2, 0}, Free: 1},
		{Name: "MT", Lines: 3785, Constant: 49,
			SVPC: CatSpec{326, 14, 0}, Free: 1, Sym: SymSpec{SVPC: 5}},
		{Name: "NA", Lines: 3976, Constant: 45,
			SVPC: CatSpec{679, 48, 1}, Acyclic: CatSpec{202, 11, 0},
			Residue: CatSpec{1, 1, 0}, FM: CatSpec{2, 1, 0}, Free: 1,
			Sym: SymSpec{SVPC: 7, Acyclic: 20, FM: 5}},
		{Name: "OC", Lines: 2739, Constant: 2, GCD: CatSpec{7, 2, 2},
			SVPC: CatSpec{36, 5, 0}, Free: 1, Sym: SymSpec{Acyclic: 1}},
		{Name: "SD", Lines: 7607, Constant: 949,
			SVPC: CatSpec{526, 36, 1}, Acyclic: CatSpec{17, 6, 0},
			Residue: CatSpec{5, 3, 0}, FM: CatSpec{12, 4, 1}, Free: 1},
		{Name: "SM", Lines: 2759, Constant: 1004, GCD: CatSpec{98, 4, 4},
			SVPC: CatSpec{264, 8, 0}, Depth: 1, Free: 1},
		{Name: "SR", Lines: 3970, Constant: 1679,
			SVPC: CatSpec{1290, 14, 0}, Free: 1,
			Sym: SymSpec{SVPC: 7, Acyclic: 1, FM: 1}},
		{Name: "TF", Lines: 2020, Constant: 801, GCD: CatSpec{6, 2, 2},
			SVPC: CatSpec{826, 20, 0}, Free: 1, Sym: SymSpec{SVPC: 20}},
		{Name: "TI", Lines: 484,
			SVPC: CatSpec{4, 3, 0}, Acyclic: CatSpec{42, 8, 1}, Depth: 1, Free: 1},
		{Name: "WS", Lines: 3884, Constant: 36, GCD: CatSpec{182, 8, 8},
			SVPC: CatSpec{378, 35, 1}, Acyclic: CatSpec{4, 1, 0},
			FM: CatSpec{160, 27, 1}, Free: 1, Sym: SymSpec{Acyclic: 4, FM: 2}},
	}
}

// ProgramByName returns the spec with the given name.
func ProgramByName(name string) (Spec, bool) {
	for _, s := range Programs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// salt derives a small per-program integer from the name, so two programs'
// v-th patterns differ structurally (as distinct real programs would) and
// cross-program memoization still finds mostly fresh cases.
func salt(name string) int {
	h := 0
	for _, c := range name {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return h % 37
}

// gen accumulates generated source.
type gen struct {
	b     strings.Builder
	array int // distinct array name counter
	free  int // unused wrapper loops for the next pattern (outermost)
	used  int // used wrapper dimensions (constant-distance subscripts)
	salt  int // per-program parameter salt (keeps programs' patterns distinct)
}

func (g *gen) arr() string {
	g.array++
	return fmt.Sprintf("a%d", g.array)
}

// wrap emits the pattern body inside the program's outer loops: g.free
// *unused* loops first (their indices never appear in a subscript — they
// cost three-way direction branching until pruned as '*'), then up to
// wantUsed *used* dimensions whose subscript prefixes ("[u1]…" on the A
// side, "[u1-1]…" on the B side) give constant dependence distances the way
// real array kernels do (pruned by distance vectors).
func (g *gen) wrap(wantUsed int, body func(indent, subA, subB string)) {
	used := g.used
	if wantUsed < used {
		used = wantUsed
	}
	total := g.free + used
	indent := ""
	subA, subB := "", ""
	for d := 0; d < g.free; d++ {
		fmt.Fprintf(&g.b, "%sfor w%d = 1 to 10\n", indent, d+1)
		indent += "  "
	}
	for d := 0; d < used; d++ {
		fmt.Fprintf(&g.b, "%sfor u%d = 1 to 10\n", indent, d+1)
		indent += "  "
		subA += fmt.Sprintf("[u%d]", d+1)
		subB += fmt.Sprintf("[u%d-1]", d+1)
	}
	body(indent, subA, subB)
	for d := total - 1; d >= 0; d-- {
		g.b.WriteString(strings.Repeat("  ", d) + "end\n")
	}
}

// Source generates the program's loop-language source. With symbolic=true
// the Table 7 extra symbolic cases are appended.
func Source(s Spec, symbolic bool) string {
	g := &gen{free: s.Free, used: s.Depth, salt: salt(s.Name)}
	fmt.Fprintf(&g.b, "program %s\n", s.Name)
	if symbolic && (s.Sym != SymSpec{}) {
		g.b.WriteString("read(n)\n")
	}

	// Constant cases: a[c1] = a[c2], cycling over a small variety with
	// every fifth pair equal (trivially dependent).
	for i := 0; i < s.Constant; i++ {
		a := g.arr()
		c1 := 3 + i%5
		c2 := c1 + 1
		if i%5 == 4 {
			c2 = c1
		}
		fmt.Fprintf(&g.b, "%s[%d] = %s[%d]\n", a, c1, a, c2)
	}

	emit := func(spec CatSpec, pattern func(g *gen, v int, indep bool)) {
		if spec.Unique == 0 {
			return
		}
		reps := spec.Total / spec.Unique
		extra := spec.Total - reps*spec.Unique
		for v := 0; v < spec.Unique; v++ {
			n := reps
			if v < extra {
				n++
			}
			for r := 0; r < n; r++ {
				// Every fourth repetition appears under one extra unused
				// loop, the way the same subscript pattern recurs across
				// differently nested loops in real code. The improved memo
				// scheme collapses the variants; the simple scheme sees
				// distinct keys (the Table 2 gap).
				g.free = s.Free
				if r%4 == 3 {
					g.free = s.Free + 1
				}
				pattern(g, v, v < spec.IndepUnique)
			}
		}
		g.free = s.Free
	}

	emit(s.GCD, gcdPattern)
	emit(s.SVPC, svpcPattern)
	emit(s.Acyclic, acyclicPattern)
	emit(s.Residue, residuePattern)
	emit(s.FM, fmPattern)

	if symbolic {
		emit(CatSpec{Total: 2 * s.Sym.SVPC, Unique: s.Sym.SVPC}, symSVPCPattern)
		emit(CatSpec{Total: 2 * s.Sym.Acyclic, Unique: s.Sym.Acyclic}, symAcyclicPattern)
		emit(CatSpec{Total: 2 * s.Sym.FM, Unique: s.Sym.FM}, symFMPattern)
	}
	return g.b.String()
}

// gcdPattern: rejected by Extended GCD. Most variants are parity cases
// (a[g·i] = a[g·i+off] with g ∤ off), which the simple per-dimension GCD
// baseline also catches; variant v == 1 is instead a coupled-subscript
// inconsistency (a[i][i] = a[i-c][i]) that only the Extended GCD sees —
// these are the pairs the §7 baseline misses (the paper's 16%).
func gcdPattern(g *gen, v int, _ bool) {
	a := g.arr()
	n := 100 + 2*v + g.salt
	if v == 1 {
		c := 1 + (v+g.salt)%3
		g.wrap(0, func(ind, _, _ string) {
			fmt.Fprintf(&g.b, "%sfor i = 1 to %d\n%s  %s[i][i] = %s[i-%d][i]\n%send\n",
				ind, n, ind, a, a, c, ind)
		})
		return
	}
	coeff := 2 + (v+g.salt)%3
	off := 1 + (v+g.salt)%coeff
	if off%coeff == 0 {
		off++
	}
	g.wrap(0, func(ind, _, _ string) {
		fmt.Fprintf(&g.b, "%sfor i = 1 to %d\n%s  %s[%d*i] = %s[%d*i+%d]\n%send\n",
			ind, n, ind, a, coeff, a, coeff, off, ind)
	})
}

// svpcPattern: single loop, constant-distance (dependent) or out-of-range
// offset (independent); every fourth variant uses the paper's coupled 2-D
// form, which SVPC still decides after GCD preprocessing.
func svpcPattern(g *gen, v int, indep bool) {
	a := g.arr()
	n := 100 + 2*v + g.salt
	if v%4 == 3 {
		// coupled subscripts: a[i][j] = a[j+c][i+d]
		c, d := 1+(v+g.salt)%3, 2+(v+g.salt)%3
		if indep {
			c, d = n+10, n+9 // unreachable offsets → independent
		}
		g.wrap(g.used, func(ind, pA, pB string) {
			fmt.Fprintf(&g.b, "%sfor i = 1 to %d\n%s  for j = 1 to %d\n%s    %s%s[i][j] = %s%s[j+%d][i+%d]\n%s  end\n%send\n",
				ind, n, ind, n, ind, a, pA, a, pB, c, d, ind, ind)
		})
		return
	}
	k := 1 + (v+g.salt)%9
	if indep {
		k = n + 10 + v
	}
	if v%5 == 2 && !indep && v > 0 {
		// mirrored orientation (anti-dependence flavour): the exact mirror
		// of variant v-1 — a distinct case to the plain memo schemes, but
		// the same case under the symmetric-matching extension, as in real
		// programs where a kernel both reads ahead and writes behind the
		// same stencil.
		mn := 100 + 2*(v-1) + g.salt
		mk := 1 + (v-1+g.salt)%9
		g.wrap(g.used, func(ind, pA, pB string) {
			fmt.Fprintf(&g.b, "%sfor i = 1 to %d\n%s  %s%s[i] = %s%s[i+%d]\n%send\n",
				ind, mn, ind, a, pA, a, pB, mk, ind)
		})
		return
	}
	g.wrap(g.used, func(ind, pA, pB string) {
		fmt.Fprintf(&g.b, "%sfor i = 1 to %d\n%s  %s%s[i+%d] = %s%s[i]\n%send\n",
			ind, n, ind, a, pA, k, a, pB, ind)
	})
}

// acyclicPattern: triangular inner bound (for j = i to n) makes the
// t-space constraints multi-variable but acyclic.
func acyclicPattern(g *gen, v int, indep bool) {
	a := g.arr()
	n := 100 + 2*v + g.salt
	k := 1 + (v+g.salt)%7
	if indep {
		k = n + 60 + v
	}
	g.wrap(g.used, func(ind, pA, pB string) {
		fmt.Fprintf(&g.b, "%sfor i = 1 to %d\n%s  for j = i to %d\n%s    %s%s[j+%d] = %s%s[j]\n%s  end\n%send\n",
			ind, n, ind, n, ind, a, pA, k, a, pB, ind, ind)
	})
}

// residuePattern: a banded inner loop (for j = i to i+K) bounds j from both
// sides by i, producing a difference-constraint cycle — Loop Residue
// territory.
func residuePattern(g *gen, v int, _ bool) {
	a := g.arr()
	n := 100 + 2*v + g.salt
	band := 3 + (v+g.salt)%5
	k := 1 + (v+g.salt)%3
	g.wrap(g.used, func(ind, pA, pB string) {
		fmt.Fprintf(&g.b, "%sfor i = 1 to %d\n%s  for j = i to i+%d\n%s    %s%s[j+%d] = %s%s[j]\n%s  end\n%send\n",
			ind, n, ind, band, ind, a, pA, k, a, pB, ind, ind)
	})
}

// fmPattern: a scaled band (for j = 2i to 2i+K) produces two-variable
// constraints with unequal coefficients; only Fourier–Motzkin applies.
func fmPattern(g *gen, v int, indep bool) {
	a := g.arr()
	n := 100 + 2*v + g.salt
	band := 3 + (v+g.salt)%4
	k := 1 + (v+g.salt)%5
	if indep {
		// out-of-range offset across the whole scaled band
		k = 2*n + band + 10 + v
	}
	g.wrap(g.used, func(ind, pA, pB string) {
		fmt.Fprintf(&g.b, "%sfor i = 1 to %d\n%s  for j = 2*i to 2*i+%d\n%s    %s%s[j+%d] = %s%s[j]\n%s  end\n%send\n",
			ind, n, ind, band, ind, a, pA, k, a, pB, ind, ind)
	})
}

// symSVPCPattern: the symbol cancels in the subscript difference, so SVPC
// still decides; the case is only expressible with symbolic support.
func symSVPCPattern(g *gen, v int, _ bool) {
	a := g.arr()
	n := 100 + 2*v + g.salt
	k := 1 + (v+g.salt)%5
	g.wrap(0, func(ind, _, _ string) {
		fmt.Fprintf(&g.b, "%sfor i = 1 to %d\n%s  %s[i+n+%d] = %s[i+n]\n%send\n",
			ind, n, ind, a, k, a, ind)
	})
}

// symAcyclicPattern: a symbolic triangular nest — both the i ≤ n bound and
// the j ≥ i bound are multi-variable constraints, pushing the case to the
// Acyclic test and leaving non-constant distances for the direction
// refinement to enumerate (the Table 7 shift from SVPC toward Acyclic the
// paper observes).
func symAcyclicPattern(g *gen, v int, _ bool) {
	a := g.arr()
	k := 1 + (v+g.salt)%5
	g.wrap(0, func(ind, _, _ string) {
		fmt.Fprintf(&g.b, "%sfor i = 1 to n\n%s  for j = i to n\n%s    %s[j+%d] = %s[j]\n%s  end\n%send\n",
			ind, ind, ind, a, k, a, ind, ind)
	})
}

// symFMPattern: the paper's §8 example shape a[i+n] = a[i+2n+1]: the symbol
// survives into the equations with different coefficients, requiring the
// backup test.
func symFMPattern(g *gen, v int, _ bool) {
	a := g.arr()
	n := 100 + 2*v + g.salt
	g.wrap(0, func(ind, _, _ string) {
		fmt.Fprintf(&g.b, "%sfor i = 1 to %d\n%s  %s[i+n] = %s[i+2*n+%d]\n%send\n",
			ind, n, ind, a, a, 1+v%3, ind)
	})
}
