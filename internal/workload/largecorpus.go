package workload

import (
	"fmt"

	"exactdep/internal/refs"
)

// corpusProgramNests is the number of single-assignment loop nests each
// LargeCorpus program contributes (the sum of its category totals below).
const corpusProgramNests = 128

// LargeCorpus synthesizes a corpus of at least the requested number of loop
// nests, spread over programs of corpusProgramNests nests each — the
// scale-stress companion to the paper-calibrated Programs suite. Each nest
// is one assignment over a distinct array (one candidate pair), and every
// program cycles category mixes, unique-pattern counts, nesting depth, and
// free outer loops deterministically by program index, so the corpus has
// the suite's population shape (constant, GCD-independent, SVPC / Acyclic /
// Loop Residue / Fourier–Motzkin) at whatever size the caller asks for.
// Per-program name salts keep most patterns distinct across programs, with
// enough cross-program repetition for the shared memo tables to matter —
// the population a compiler session over a large build sees.
//
// The result is deterministic in nests: the same corpus every call.
func LargeCorpus(nests int) []Spec {
	n := (nests + corpusProgramNests - 1) / corpusProgramNests
	if n < 1 {
		n = 1
	}
	specs := make([]Spec, 0, n)
	for i := 0; i < n; i++ {
		specs = append(specs, corpusSpec(i))
	}
	return specs
}

// corpusSpec builds the i-th corpus program. The category totals always sum
// to corpusProgramNests; unique counts, independence splits, and nesting
// vary with i so neighbouring programs stress different pattern shapes.
func corpusSpec(i int) Spec {
	return Spec{
		Name:     fmt.Sprintf("X%03d", i),
		Lines:    1200,
		Constant: 16,
		GCD:      CatSpec{Total: 16, Unique: 2 + i%3, IndepUnique: 2 + i%3},
		SVPC:     CatSpec{Total: 48, Unique: 10 + i%7, IndepUnique: 1 + i%2},
		Acyclic:  CatSpec{Total: 24, Unique: 4 + i%4, IndepUnique: i % 2},
		Residue:  CatSpec{Total: 8, Unique: 2 + i%2},
		FM:       CatSpec{Total: 16, Unique: 3 + i%3, IndepUnique: 1},
		Depth:    i % 3,
		Free:     1 + i%2,
	}
}

// LargeCorpusCandidates generates, parses, and lowers a LargeCorpus of the
// given size and returns every candidate pair in corpus order — the input
// the very-large-corpus benchmarks feed to core.Analyzer.AnalyzeAll.
func LargeCorpusCandidates(nests int) ([]refs.Candidate, error) {
	specs := LargeCorpus(nests)
	all := make([]refs.Candidate, 0, len(specs)*corpusProgramNests)
	for _, s := range specs {
		cs, err := Candidates(s, false)
		if err != nil {
			return nil, err
		}
		all = append(all, cs...)
	}
	return all, nil
}
