package workload

import (
	"reflect"
	"testing"

	"exactdep/internal/core"
)

// prodOpts is the production analyzer configuration the paper evaluates.
var prodOpts = core.Options{
	Memoize: true, ImprovedMemo: true,
	DirectionVectors: true, PruneUnused: true, PruneDistance: true,
}

// TestRunIntoWorkersDeterministic pins RunnerOptions.Workers to the serial
// path: same per-pair results, same verdict tallies.
func TestRunIntoWorkersDeterministic(t *testing.T) {
	s, ok := ProgramByName("NA") // widest test-category mix of the suite
	if !ok {
		t.Fatal("NA missing")
	}

	serial := core.New(prodOpts)
	want, err := RunInto(serial, s, RunnerOptions{Core: prodOpts, Symbolic: true})
	if err != nil {
		t.Fatal(err)
	}

	par := core.New(prodOpts)
	got, err := RunInto(par, s, RunnerOptions{Core: prodOpts, Symbolic: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("RunInto with Workers: 4 differs from the serial run")
	}
	for _, tt := range []struct {
		name         string
		serial, conc int
	}{
		{"Pairs", serial.Stats.Pairs, par.Stats.Pairs},
		{"Independent", serial.Stats.Independent, par.Stats.Independent},
		{"Dependent", serial.Stats.Dependent, par.Stats.Dependent},
		{"Unknown", serial.Stats.Unknown, par.Stats.Unknown},
		{"UniqueFull", serial.Stats.UniqueFull, par.Stats.UniqueFull},
	} {
		if tt.serial != tt.conc {
			t.Errorf("%s: serial %d, concurrent %d", tt.name, tt.serial, tt.conc)
		}
	}
}

// TestRunSuiteWorkers runs the whole suite concurrently through one shared
// analyzer and checks the session-level tallies match a serial session.
func TestRunSuiteWorkers(t *testing.T) {
	opts := core.Options{Memoize: true, ImprovedMemo: true}
	serial, err := RunSuite(RunnerOptions{Core: opts})
	if err != nil {
		t.Fatal(err)
	}
	conc, err := RunSuite(RunnerOptions{Core: opts, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Stats.Pairs == 0 {
		t.Fatal("suite analyzed no pairs")
	}
	if conc.Stats.Pairs != serial.Stats.Pairs ||
		conc.Stats.Independent != serial.Stats.Independent ||
		conc.Stats.Dependent != serial.Stats.Dependent ||
		conc.Stats.Unknown != serial.Stats.Unknown ||
		conc.Stats.UniqueFull != serial.Stats.UniqueFull ||
		conc.Stats.UniqueEq != serial.Stats.UniqueEq {
		t.Fatalf("suite tallies differ:\nserial     %+v\nconcurrent %+v", serial.Stats, conc.Stats)
	}
}
