package workload

// FM-hard adversarial generator: programs whose every candidate pair defeats
// the cheap tests and lands in Fourier–Motzkin with many coupled free
// variables — the worst-case (exponential) end of the cascade that
// core.Options.Budget exists to bound. Each nest is a chain of loops whose
// bounds scale the previous index by 2 (for ik = 2*i(k-1) to 2*i(k-1)+B):
// the coefficient 2 keeps Loop Residue inapplicable, the two-sided bound
// constraints defeat the Acyclic test, and the multi-variable constraints
// rule out SVPC, so the backup test must eliminate the whole coupled chain.

import (
	"fmt"
	"strings"

	"exactdep/internal/lang"
	"exactdep/internal/opt"
	"exactdep/internal/refs"
)

// FMHardSpec sizes one adversarial program.
type FMHardSpec struct {
	Name string
	// Depth is the chain length: Depth nested loops, each bound-coupled to
	// the previous index. The dependence system couples 2·Depth iteration
	// variables, so Fourier–Motzkin's work grows quickly with Depth.
	Depth int
	// Cases is the number of assignment patterns (candidate pairs).
	Cases int
}

// FMHardPrograms returns the adversarial suite: deep enough to make the
// backup test sweat, small enough that an unbudgeted run still terminates
// (the budget hammer tests depend on both ends).
func FMHardPrograms() []FMHardSpec {
	return []FMHardSpec{
		{Name: "FMH3", Depth: 3, Cases: 6},
		{Name: "FMH4", Depth: 4, Cases: 6},
		{Name: "FMH5", Depth: 5, Cases: 4},
	}
}

// FMHardSource generates the program's loop-language source.
func FMHardSource(s FMHardSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", s.Name)
	for v := 0; v < s.Cases; v++ {
		emitFMHardCase(&b, s.Name, s.Depth, v)
	}
	return b.String()
}

// emitFMHardCase writes one chain nest with the v-th body pattern. The
// patterns cycle through a dependent small shift, an out-of-range
// (independent) shift, and a cross-coupled two-dimensional subscript.
func emitFMHardCase(b *strings.Builder, name string, depth, v int) {
	n := 20 + v
	band := 3 + v%4
	indent := ""
	for d := 1; d <= depth; d++ {
		if d == 1 {
			fmt.Fprintf(b, "for i1 = 1 to %d\n", n)
		} else {
			fmt.Fprintf(b, "%sfor i%d = 2*i%d to 2*i%d+%d\n", indent, d, d-1, d-1, band)
		}
		indent += "  "
	}
	last := fmt.Sprintf("i%d", depth)
	prev := fmt.Sprintf("i%d", depth-1)
	a := fmt.Sprintf("%s_%d", strings.ToLower(name), v)
	switch v % 3 {
	case 0:
		// Small shift within the index range: dependent.
		fmt.Fprintf(b, "%s%s[%s+%d] = %s[%s]\n", indent, a, last, 1+v, a, last)
	case 1:
		// Shift beyond the deepest index's entire range: independent, and
		// only Fourier–Motzkin can certify it.
		far := (1 << uint(depth)) * (n + band + 4)
		fmt.Fprintf(b, "%s%s[%s+%d] = %s[%s]\n", indent, a, last, far, a, last)
	default:
		// Cross-coupled subscripts over the two deepest indices with swapped
		// unequal coefficients: a dense multi-variable equality.
		fmt.Fprintf(b, "%s%s[2*%s+3*%s+%d] = %s[3*%s+2*%s]\n", indent, a, prev, last, 1+v, a, prev, last)
	}
	for d := depth - 1; d >= 0; d-- {
		b.WriteString(strings.Repeat("  ", d) + "end\n")
	}
}

// FMHardCandidates parses and lowers one adversarial program and enumerates
// its candidate pairs (without self-pairs).
func FMHardCandidates(s FMHardSpec) ([]refs.Candidate, error) {
	prog, err := lang.Parse(FMHardSource(s))
	if err != nil {
		return nil, fmt.Errorf("workload fm-hard %s: %w", s.Name, err)
	}
	return refs.PairsOpts(opt.Lower(prog), refs.Options{NoSelfPairs: true}), nil
}

// FMHardSuiteCandidates concatenates every adversarial program's candidates.
func FMHardSuiteCandidates() ([]refs.Candidate, error) {
	var all []refs.Candidate
	for _, s := range FMHardPrograms() {
		cs, err := FMHardCandidates(s)
		if err != nil {
			return nil, err
		}
		all = append(all, cs...)
	}
	return all, nil
}
