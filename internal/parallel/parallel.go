// Package parallel derives loop-level parallelism from dependence direction
// vectors — the application that motivates the paper's introduction: a loop
// can run its iterations concurrently iff no dependence is carried by it.
// A dependence with direction vector ψ is carried by the outermost level k
// whose component is not '=' ; if that component is '<' (or '>'), the two
// iterations conflict across different iterations of loop k, serializing it.
//
// Naming note: this package is about parallelism *in the analyzed program*
// (loop-parallelism detection, the paper's application). The concurrency of
// the analyzer itself — fanning candidate pairs over a goroutine worker
// pool with sharded memoization — is the concurrent driver in
// internal/core (Analyzer.AnalyzeAll).
package parallel

import (
	"fmt"
	"sort"
	"strings"

	"exactdep/internal/core"
	"exactdep/internal/depvec"
	"exactdep/internal/dtest"
	"exactdep/internal/ir"
)

// LoopInfo is the parallelism verdict for one loop.
type LoopInfo struct {
	// Index is the loop's index variable name; Level its nesting depth
	// within its stack (0 = outermost); ID the syntactic loop identity.
	Index string
	Level int
	ID    int
	// Parallel is true when no dependence is carried by the loop.
	Parallel bool
	// Carried lists, for a serial loop, the dependences carried by it.
	Carried []Carrier
}

// Carrier describes one dependence carried by a loop: either an array
// dependence with its direction vector, or a loop-carried scalar (Scalar
// non-empty), e.g. the accumulator of a reduction.
type Carrier struct {
	Pair      ir.Pair
	Vector    depvec.Vector
	Direction depvec.Direction
	Scalar    string
}

// Report summarizes the parallelism of every loop in a unit.
type Report struct {
	Loops []LoopInfo
}

// String renders the report, outermost loops first.
func (r *Report) String() string {
	var b strings.Builder
	for _, l := range r.Loops {
		verdict := "PARALLEL"
		if !l.Parallel {
			verdict = "serial"
		}
		fmt.Fprintf(&b, "%sloop %s: %s\n", strings.Repeat("  ", l.Level), l.Index, verdict)
		for _, c := range l.Carried {
			if c.Scalar != "" {
				fmt.Fprintf(&b, "%s  carried: scalar %s\n", strings.Repeat("  ", l.Level), c.Scalar)
				continue
			}
			fmt.Fprintf(&b, "%s  carried: %s vs %s %s\n",
				strings.Repeat("  ", l.Level), c.Pair.A.Ref, c.Pair.B.Ref, c.Vector)
		}
	}
	return b.String()
}

// Analyze runs the dependence analyzer over the unit (with direction
// vectors) and classifies every loop. The analyzer options are forced to
// compute direction vectors.
func Analyze(u *ir.Unit, opts core.Options) (*Report, error) {
	opts.DirectionVectors = true
	a := core.New(opts)
	results, err := a.AnalyzeUnit(u)
	if err != nil {
		return nil, err
	}
	return FromResults(u, results), nil
}

// FromResults builds the report from precomputed per-pair results.
func FromResults(u *ir.Unit, results []core.Result) *Report {
	// Collect every distinct loop in the unit.
	type key struct {
		id    int
		index string
		level int
	}
	loops := map[key]*LoopInfo{}
	order := []key{}
	for _, site := range u.Sites {
		for lvl, l := range site.Loops {
			k := key{id: l.ID, index: l.Index, level: lvl}
			if _, ok := loops[k]; !ok {
				loops[k] = &LoopInfo{Index: l.Index, Level: lvl, ID: l.ID, Parallel: true}
				order = append(order, k)
			}
		}
	}

	// mark records that res carries a dependence on the loop at level lvl of
	// res.Pair.A's stack.
	mark := func(res core.Result, lvl int, v depvec.Vector, dir depvec.Direction) {
		l := res.Pair.A.Loops[lvl]
		k := key{id: l.ID, index: l.Index, level: lvl}
		info, ok := loops[k]
		if !ok {
			info = &LoopInfo{Index: l.Index, Level: lvl, ID: l.ID, Parallel: true}
			loops[k] = info
			order = append(order, k)
		}
		info.Parallel = false
		info.Carried = append(info.Carried, Carrier{Pair: res.Pair, Vector: v, Direction: dir})
	}

	for _, res := range results {
		if res.Outcome == dtest.Independent {
			continue
		}
		common := res.Pair.Common
		vectors := res.Vectors
		if res.Outcome == dtest.Maybe {
			// A budget-degraded verdict: the refinement walk may have been
			// cut short before some subtree was explored, so the vector set
			// is partial evidence — a loop absent from every vector is not
			// thereby proven carrier-free. Discard the vectors so the
			// conservative treatment below serializes every common loop,
			// exactly as if the dependence were proven.
			vectors = nil
		}
		if len(vectors) == 0 && common > 0 {
			// No direction information (direction vectors disabled, or a
			// budget-degraded Maybe): any common loop could carry the
			// dependence, so conservatively serialize them all. A synthetic
			// all-'*' vector would not do it — its carrier level is the
			// outermost loop only, leaving inner loops wrongly parallel.
			all := make(depvec.Vector, common)
			for i := range all {
				all[i] = depvec.Any
			}
			for lvl := 0; lvl < common && lvl < len(res.Pair.A.Loops); lvl++ {
				mark(res, lvl, all, depvec.Any)
			}
			continue
		}
		for _, v := range vectors {
			lvl, dir := carrierLevel(v)
			if lvl < 0 || lvl >= common || lvl >= len(res.Pair.A.Loops) {
				continue // loop-independent dependence ('=...=') carries nothing
			}
			mark(res, lvl, v, dir)
		}
	}

	// Loop-carried scalars (reductions, accumulators) serialize their loop
	// regardless of array dependences.
	for k, info := range loops {
		for _, name := range u.ScalarCarried[k.id] {
			info.Parallel = false
			info.Carried = append(info.Carried, Carrier{Scalar: name})
		}
	}

	sort.SliceStable(order, func(i, j int) bool {
		if order[i].level != order[j].level {
			return order[i].level < order[j].level
		}
		return order[i].id < order[j].id
	})
	rep := &Report{}
	for _, k := range order {
		rep.Loops = append(rep.Loops, *loops[k])
	}
	return rep
}

// carrierLevel returns the outermost non-'=' level of the vector, or -1 for
// an all-'=' (loop-independent) dependence. A '*' component may hide any
// direction, so it carries conservatively.
func carrierLevel(v depvec.Vector) (int, depvec.Direction) {
	for i, d := range v {
		if d != depvec.Equal {
			return i, d
		}
	}
	return -1, depvec.Equal
}
