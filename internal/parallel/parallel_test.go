package parallel

import (
	"strings"
	"testing"

	"exactdep/internal/core"
	"exactdep/internal/lang"
	"exactdep/internal/opt"
)

func report(t *testing.T, src string) *Report {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	u := opt.Lower(prog)
	rep, err := Analyze(u, core.Options{PruneUnused: true, PruneDistance: true})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func loopByIndex(rep *Report, idx string) *LoopInfo {
	for i := range rep.Loops {
		if rep.Loops[i].Index == idx {
			return &rep.Loops[i]
		}
	}
	return nil
}

func TestIntroExamples(t *testing.T) {
	// Paper introduction: first loop fully parallel, second serial.
	rep := report(t, `
for i = 1 to 10
  a[i] = a[i+10] + 3
end
`)
	if l := loopByIndex(rep, "i"); l == nil || !l.Parallel {
		t.Fatalf("a[i] = a[i+10]: loop must be parallel: %+v", rep)
	}

	rep = report(t, `
for i = 1 to 10
  a[i+1] = a[i] + 3
end
`)
	l := loopByIndex(rep, "i")
	if l == nil || l.Parallel {
		t.Fatalf("a[i+1] = a[i]: loop must be serial: %+v", rep)
	}
	if len(l.Carried) == 0 {
		t.Fatal("serial loop must list its carried dependences")
	}
}

func TestLoopIndependentDependence(t *testing.T) {
	// a[i] = a[i] + 7: dependence with direction '=' only — not carried,
	// the loop still parallelizes (the paper's §6 second example).
	rep := report(t, `
for i = 1 to 10
  a[i] = a[i] + 7
end
`)
	if l := loopByIndex(rep, "i"); l == nil || !l.Parallel {
		t.Fatalf("loop-independent dependence must not serialize: %+v", rep)
	}
}

func TestInnerParallelOuterSerial(t *testing.T) {
	// a[i+1][j] = a[i][j]: carried by i, j parallel.
	rep := report(t, `
for i = 1 to 10
  for j = 1 to 10
    a[i+1][j] = a[i][j]
  end
end
`)
	if l := loopByIndex(rep, "i"); l == nil || l.Parallel {
		t.Fatalf("outer loop must be serial: %+v", rep)
	}
	if l := loopByIndex(rep, "j"); l == nil || !l.Parallel {
		t.Fatalf("inner loop must be parallel: %+v", rep)
	}
}

func TestUnusedLoopConservative(t *testing.T) {
	// a[j+1] = a[j] inside i and j loops: j carries; i's direction is '*',
	// so i must be conservatively serialized ('*' includes '<').
	rep := report(t, `
for i = 1 to 10
  for j = 1 to 10
    a[j+1] = a[j]
  end
end
`)
	if l := loopByIndex(rep, "j"); l != nil && l.Parallel {
		// j's vector is (*, <): the carrier level is 0 (the '*'), so j
		// itself is not marked carried by this analysis — but i is.
		t.Logf("j loop: %+v", l)
	}
	if l := loopByIndex(rep, "i"); l == nil || l.Parallel {
		t.Fatalf("'*' at the outer level must serialize it: %+v", rep)
	}
}

func TestReportString(t *testing.T) {
	rep := report(t, `
for i = 1 to 10
  a[i+1] = a[i]
end
`)
	s := rep.String()
	if !strings.Contains(s, "loop i: serial") || !strings.Contains(s, "carried:") {
		t.Fatalf("report rendering:\n%s", s)
	}
}

func TestMatmulAllParallel(t *testing.T) {
	// Classic matmul without accumulation conflicts on c's k loop is
	// carried: c[i][j] updated across k. i and j parallelize.
	rep := report(t, `
for i = 1 to 100
  for j = 1 to 100
    for k = 1 to 100
      c[i][j] = c[i][j] + a[i][k] * b[k][j]
    end
  end
end
`)
	if l := loopByIndex(rep, "i"); l == nil || !l.Parallel {
		t.Fatalf("i must be parallel: %+v", rep)
	}
	if l := loopByIndex(rep, "j"); l == nil || !l.Parallel {
		t.Fatalf("j must be parallel: %+v", rep)
	}
	// k carries the reduction on c[i][j]? c[i][j] vs c[i][j]: directions
	// (=,=,<) etc. — carried by k... direction at k level for the c pair:
	// i=i', j=j', k free → '<' possible → k serial.
	if l := loopByIndex(rep, "k"); l == nil || l.Parallel {
		t.Fatalf("k must be serial (reduction): %+v", rep)
	}
}

func TestFromResultsWithoutVectors(t *testing.T) {
	// Results lacking vectors (direction analysis off) must conservatively
	// serialize all common loops of dependent pairs.
	prog, err := lang.Parse(`
for i = 1 to 10
  a[i+1] = a[i]
end
`)
	if err != nil {
		t.Fatal(err)
	}
	u := opt.Lower(prog)
	a := core.New(core.Options{}) // no direction vectors
	results, err := a.AnalyzeUnit(u)
	if err != nil {
		t.Fatal(err)
	}
	rep := FromResults(u, results)
	if l := loopByIndex(rep, "i"); l == nil || l.Parallel {
		t.Fatalf("conservative fallback must serialize: %+v", rep)
	}
}

func TestAnnotateSource(t *testing.T) {
	src := `program demo
for i = 1 to 10
  for j = 1 to 10
    a[i+1][j] = a[i][j]
  end
end
for k = 1 to 9 step 2
  b[k] = b[k] + 1
end
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	u := opt.Lower(prog)
	rep, err := Analyze(u, core.Options{PruneUnused: true, PruneDistance: true})
	if err != nil {
		t.Fatal(err)
	}
	out := AnnotateSource(prog, rep)
	if !strings.Contains(out, "for i = 1 to 10") {
		t.Fatalf("serial outer loop must stay 'for':\n%s", out)
	}
	if !strings.Contains(out, "parfor j = 1 to 10") {
		t.Fatalf("parallel inner loop must become 'parfor':\n%s", out)
	}
	if !strings.Contains(out, "parfor k = 1 to 9 step 2") {
		t.Fatalf("independent stepped loop must become 'parfor':\n%s", out)
	}
	if !strings.Contains(out, "program demo") {
		t.Fatalf("program header lost:\n%s", out)
	}
}

func TestScalarReductionSerializes(t *testing.T) {
	// s = s + a[i]: a classic reduction. No array dependence serializes the
	// loop, but the scalar accumulator must.
	rep := report(t, `
s = 0
for i = 1 to 100
  s = s + a[i]
end
`)
	l := loopByIndex(rep, "i")
	if l == nil || l.Parallel {
		t.Fatalf("reduction loop must be serial: %+v", rep)
	}
	foundScalar := false
	for _, c := range l.Carried {
		if c.Scalar == "s" {
			foundScalar = true
		}
	}
	if !foundScalar {
		t.Fatalf("carried scalar 's' must be reported: %+v", l.Carried)
	}
}

func TestPrivateScalarDoesNotSerialize(t *testing.T) {
	// k = a[i] is written before every use in the iteration: private, no
	// serialization (uses of k in subscripts are skipped as non-affine but
	// the loop itself stays parallel for b).
	rep := report(t, `
for i = 1 to 100
  k = 2*i
  b[k] = b[k] + 1
end
`)
	l := loopByIndex(rep, "i")
	if l == nil || !l.Parallel {
		t.Fatalf("privatizable scalar must not serialize: %+v", rep)
	}
}

func TestInductionVariableDoesNotSerialize(t *testing.T) {
	// iz = iz + 2 is a substituted induction: all uses were rewritten to
	// closed forms, so no cross-iteration flow remains.
	rep := report(t, `
iz = 0
for i = 1 to 100
  iz = iz + 2
  a[iz] = 1
end
`)
	l := loopByIndex(rep, "i")
	if l == nil || !l.Parallel {
		t.Fatalf("substituted induction must not serialize: %+v", rep)
	}
}

func TestAnnotatePrivateClause(t *testing.T) {
	src := `
for i = 1 to 10
  k = 2*i
  a[k] = a[k] + 1
end
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	u := opt.Lower(prog)
	rep, err := Analyze(u, core.Options{PruneUnused: true, PruneDistance: true})
	if err != nil {
		t.Fatal(err)
	}
	out := AnnotateSourceUnit(prog, rep, u)
	if !strings.Contains(out, "parfor i = 1 to 10  # private(k)") {
		t.Fatalf("missing private clause:\n%s", out)
	}
}
