package parallel

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"exactdep/internal/core"
	"exactdep/internal/interp"
	"exactdep/internal/lang"
	"exactdep/internal/opt"
)

// Execution-order validation of the parallelism verdicts: a loop whose
// iterations can run concurrently must in particular give identical results
// when run in reverse. For every random program, each top-level loop the
// report marks PARALLEL is reversed (for i = hi to lo step -1) and the
// final memories compared. A wrong "parallel" verdict — from the analyzer,
// the carrier logic, or the scalar-carried detection — shows up as a
// divergence. (The converse is not checked: commutative reductions are
// reversal-invariant yet serial.)

func genFlatProgram(rng *rand.Rand) string {
	var b strings.Builder
	arrays := []string{"a", "b", "c"}
	nloops := 1 + rng.Intn(2)
	for l := 0; l < nloops; l++ {
		lo := 1 + rng.Intn(2)
		hi := lo + 4 + rng.Intn(8)
		fmt.Fprintf(&b, "for i = %d to %d\n", lo, hi)
		if rng.Intn(4) == 0 {
			// possible reduction
			fmt.Fprintf(&b, "  s%d = s%d + %d\n", l, l, 1+rng.Intn(3))
		}
		for s := 0; s < 1+rng.Intn(3); s++ {
			w := arrays[rng.Intn(len(arrays))]
			r := arrays[rng.Intn(len(arrays))]
			fmt.Fprintf(&b, "  %s[i+%d] = %s[i+%d] + %d\n",
				w, rng.Intn(3)-1, r, rng.Intn(3)-1, s+1)
		}
		b.WriteString("end\n")
	}
	return "s0 = 0\ns1 = 0\n" + b.String()
}

// reverseLoop returns the program with the n-th top-level loop reversed.
func reverseLoop(prog *lang.Program, n int) *lang.Program {
	out := &lang.Program{Name: prog.Name}
	seen := 0
	for _, st := range prog.Stmts {
		f, ok := st.(*lang.For)
		if !ok {
			out.Stmts = append(out.Stmts, st)
			continue
		}
		seen++
		if seen != n {
			out.Stmts = append(out.Stmts, st)
			continue
		}
		rev := &lang.For{
			Index: f.Index,
			Lo:    f.Hi,
			Hi:    f.Lo,
			Step:  &lang.Num{Value: -1},
			Body:  f.Body,
			Pos:   f.Pos,
		}
		out.Stmts = append(out.Stmts, rev)
	}
	return out
}

func TestParallelVerdictsSurviveReversal(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	validated := 0
	for iter := 0; iter < 500; iter++ {
		src := genFlatProgram(rng)
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, src)
		}
		unit := opt.Lower(prog)
		if len(unit.Warnings) > 0 {
			continue
		}
		rep, err := Analyze(unit, core.Options{PruneUnused: true, PruneDistance: true})
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, src)
		}
		base, err := interp.Run(prog, nil, interp.Limits{})
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, src)
		}
		// The report's loops are numbered by the lowerer's pre-order, which
		// for a flat program is the top-level loop order.
		loopNo := 0
		for _, st := range prog.Stmts {
			if _, ok := st.(*lang.For); !ok {
				continue
			}
			loopNo++
			var info *LoopInfo
			for i := range rep.Loops {
				if rep.Loops[i].ID == loopNo {
					info = &rep.Loops[i]
				}
			}
			if info == nil || !info.Parallel {
				continue
			}
			validated++
			revTrace, err := interp.Run(reverseLoop(prog, loopNo), nil, interp.Limits{})
			if err != nil {
				t.Fatalf("iter %d: %v\n%s", iter, err, src)
			}
			if !base.FinalEqual(revTrace) {
				t.Fatalf("iter %d: loop %d marked PARALLEL but reversal changes results\n%s\nreport:\n%s",
					iter, loopNo, src, rep)
			}
		}
	}
	if validated < 100 {
		t.Fatalf("only %d parallel loops validated — generator drifted", validated)
	}
}
