package parallel

import (
	"fmt"
	"strings"

	"exactdep/internal/ir"
	"exactdep/internal/lang"
)

// AnnotateSource re-renders a parsed program with every parallelizable loop
// marked `parfor` — the output a parallelizing source-to-source compiler
// would produce. Loops are matched to the report by the lowerer's pre-order
// numbering (the lowerer assigns loop IDs 1, 2, … as it encounters loops).
// Use AnnotateSourceUnit to additionally emit private(...) clauses.
func AnnotateSource(prog *lang.Program, rep *Report) string {
	return AnnotateSourceUnit(prog, rep, nil)
}

// AnnotateSourceUnit is AnnotateSource with access to the lowered unit's
// scalar classification: parallel loops list their privatizable scalars.
func AnnotateSourceUnit(prog *lang.Program, rep *Report, unit *ir.Unit) string {
	parallelIDs := map[int]bool{}
	for _, l := range rep.Loops {
		if l.Parallel {
			parallelIDs[l.ID] = true
		}
	}
	var b strings.Builder
	if prog.Name != "" {
		fmt.Fprintf(&b, "program %s\n", prog.Name)
	}
	id := 0
	var render func(ss []lang.Stmt, indent string)
	render = func(ss []lang.Stmt, indent string) {
		for _, s := range ss {
			switch s := s.(type) {
			case *lang.For:
				id++
				kw := "for"
				suffix := ""
				if parallelIDs[id] {
					kw = "parfor"
					if unit != nil && len(unit.ScalarPrivate[id]) > 0 {
						suffix = "  # private(" + strings.Join(unit.ScalarPrivate[id], ", ") + ")"
					}
				}
				if s.Step != nil {
					fmt.Fprintf(&b, "%s%s %s = %s to %s step %s%s\n", indent, kw, s.Index, s.Lo, s.Hi, s.Step, suffix)
				} else {
					fmt.Fprintf(&b, "%s%s %s = %s to %s%s\n", indent, kw, s.Index, s.Lo, s.Hi, suffix)
				}
				render(s.Body, indent+"  ")
				fmt.Fprintf(&b, "%send\n", indent)
			default:
				fmt.Fprintf(&b, "%s%s\n", indent, s)
			}
		}
	}
	render(prog.Stmts, "")
	return b.String()
}
