// Package opt lowers parsed programs into the affine IR, applying the
// optimizer prepass the paper relies on (§2, §8): constant propagation,
// forward substitution of scalar definitions, and induction-variable
// substitution. Loop-invariant unknowns introduced by read statements become
// symbolic variables; everything else that fails to normalize to an affine
// form degrades soundly (bounds become unbounded, non-affine references are
// skipped with a warning — the caller must assume dependence for them).
package opt

import (
	"fmt"
	"sort"

	"exactdep/internal/ir"
	"exactdep/internal/lang"
	"exactdep/internal/linalg"
)

// value is the abstract value of a scalar: either a known affine expression
// over active loop indices and symbols, or unknown.
type value struct {
	known bool
	expr  ir.Expr
}

type lowerer struct {
	env      map[string]value
	symbols  map[string]bool
	symOrder []string
	loops    []ir.Loop
	active   map[string]bool // loop indices currently in scope
	sites    []ir.Site
	warnings []string
	stmtID   int
	loopID   int
	carried  map[int][]string // loop ID → loop-carried scalars
	private  map[int][]string // loop ID → privatizable scalars
}

// Lower converts a parsed program into a Unit of reference sites.
func Lower(prog *lang.Program) *ir.Unit {
	lw := &lowerer{
		env:     make(map[string]value),
		symbols: make(map[string]bool),
		active:  make(map[string]bool),
	}
	lw.stmts(prog.Stmts)
	return &ir.Unit{
		Name:          prog.Name,
		Sites:         lw.sites,
		Symbols:       lw.symOrder,
		Warnings:      lw.warnings,
		ScalarCarried: lw.carried,
		ScalarPrivate: lw.private,
	}
}

func (lw *lowerer) warnf(format string, args ...any) {
	lw.warnings = append(lw.warnings, fmt.Sprintf(format, args...))
}

func (lw *lowerer) stmts(ss []lang.Stmt) {
	for _, s := range ss {
		lw.lowerStmt(s)
	}
}

func (lw *lowerer) lowerStmt(s lang.Stmt) {
	switch s := s.(type) {
	case *lang.Read:
		if !lw.symbols[s.Var] {
			lw.symbols[s.Var] = true
			lw.symOrder = append(lw.symOrder, s.Var)
		}
		lw.env[s.Var] = value{known: true, expr: ir.NewVar(s.Var)}
	case *lang.Assign:
		lw.assign(s)
	case *lang.For:
		lw.forLoop(s)
	}
}

func (lw *lowerer) assign(s *lang.Assign) {
	lw.stmtID++
	// The write site is emitted before the RHS reads, matching the paper's
	// convention of listing the pair as a[f(i)] = a[f'(i')] with the LHS
	// first; direction vectors then read naturally (a[i+1] = a[i] has
	// direction '<').
	if s.LHSArray != nil {
		lw.addSite(s.LHSArray, ir.Write)
		for _, sub := range s.LHSArray.Subs {
			lw.collectReads(sub) // reads nested in the write's subscripts
		}
		lw.collectReads(s.RHS)
		return
	}
	// RHS array reads are reference sites regardless of affinity of the
	// overall expression.
	lw.collectReads(s.RHS)
	rhs, rhsOK := lw.eval(s.RHS)
	// scalar assignment
	if s.LHSVar != "" {
		if lw.active[s.LHSVar] {
			lw.warnf("%s: assignment to active loop index %q ignored", s.Pos, s.LHSVar)
			return
		}
		if rhsOK {
			lw.env[s.LHSVar] = value{known: true, expr: rhs}
		} else {
			lw.env[s.LHSVar] = value{}
		}
	}
}

// addSite evaluates the subscripts of an array reference and records it.
func (lw *lowerer) addSite(idx *lang.Index, kind ir.RefKind) {
	subs := make([]ir.Expr, len(idx.Subs))
	for i, se := range idx.Subs {
		e, ok := lw.eval(se)
		if !ok {
			lw.warnf("%s: non-affine subscript %d of %q; reference skipped (assume dependence)",
				idx.Pos, i+1, idx.Array)
			return
		}
		subs[i] = e
	}
	loops := make([]ir.Loop, len(lw.loops))
	copy(loops, lw.loops)
	lw.sites = append(lw.sites, ir.Site{
		Loops: loops,
		Ref: ir.Ref{
			Array:      idx.Array,
			Subscripts: subs,
			Kind:       kind,
			Depth:      len(loops),
			Stmt:       lw.stmtID,
		},
	})
}

// collectReads records every array read inside an expression.
func (lw *lowerer) collectReads(e lang.Expr) {
	switch e := e.(type) {
	case *lang.Index:
		lw.addSite(e, ir.Read)
		for _, s := range e.Subs {
			lw.collectReads(s)
		}
	case *lang.BinOp:
		lw.collectReads(e.L)
		lw.collectReads(e.R)
	case *lang.Neg:
		lw.collectReads(e.X)
	}
}

// eval normalizes an AST expression to an affine ir.Expr, substituting
// known scalar values (constant propagation + forward substitution).
func (lw *lowerer) eval(e lang.Expr) (ir.Expr, bool) {
	switch e := e.(type) {
	case *lang.Num:
		return ir.NewConst(e.Value), true
	case *lang.Ident:
		if lw.active[e.Name] {
			return ir.NewVar(e.Name), true
		}
		if v, ok := lw.env[e.Name]; ok {
			if v.known {
				return v.expr, true
			}
			return ir.Expr{}, false
		}
		// An undefined scalar read is implicitly symbolic: real compilers
		// see these as unanalyzed procedure parameters (paper §8 treats any
		// loop-invariant unknown this way).
		lw.symbols[e.Name] = true
		lw.symOrder = appendUnique(lw.symOrder, e.Name)
		lw.env[e.Name] = value{known: true, expr: ir.NewVar(e.Name)}
		return ir.NewVar(e.Name), true
	case *lang.Neg:
		x, ok := lw.eval(e.X)
		if !ok {
			return ir.Expr{}, false
		}
		return x.Neg(), true
	case *lang.BinOp:
		l, lok := lw.eval(e.L)
		r, rok := lw.eval(e.R)
		if !lok || !rok {
			return ir.Expr{}, false
		}
		switch e.Op {
		case '+':
			return l.Add(r), true
		case '-':
			return l.Sub(r), true
		case '*':
			return l.Mul(r)
		}
		return ir.Expr{}, false
	case *lang.Index:
		return ir.Expr{}, false // array element values are never affine
	default:
		return ir.Expr{}, false
	}
}

func appendUnique(ss []string, s string) []string {
	for _, x := range ss {
		if x == s {
			return ss
		}
	}
	return append(ss, s)
}

// induction describes one recognized induction variable of a loop body:
// a scalar with a single top-level self-increment by a constant.
type induction struct {
	name  string
	step  int64
	entry ir.Expr
	stmt  *lang.Assign
}

// forLoop processes one loop with induction recognition. Non-unit constant
// steps are normalized away (paper §2: "we normalize the step size to 1")
// by introducing a fresh iteration counter i' with i = lo + step·i'.
func (lw *lowerer) forLoop(s *lang.For) {
	step := int64(1)
	if s.Step != nil {
		c, ok := constOf(s.Step, lw)
		if !ok || c == 0 {
			lw.warnf("%s: non-constant or zero step of loop %q; loop body analyzed with unknown index",
				s.Pos, s.Index)
			lw.forLoopOpaque(s)
			return
		}
		step = c
	}
	lo, loOK := lw.eval(s.Lo)
	hi, hiOK := lw.eval(s.Hi)
	lw.loopID++

	var loop ir.Loop
	indexVal := value{}
	iterOffset := ir.Expr{} // completed iterations at the top of the body
	if step == 1 {
		loop = ir.Loop{Index: s.Index, NoLower: !loOK, NoUpper: !hiOK, ID: lw.loopID}
		if loOK {
			loop.Lower = lo
		} else {
			lw.warnf("%s: non-affine lower bound of loop %q; treated as unbounded", s.Pos, s.Index)
		}
		if hiOK {
			loop.Upper = hi
		} else {
			lw.warnf("%s: non-affine upper bound of loop %q; treated as unbounded", s.Pos, s.Index)
		}
		indexVal = value{known: true, expr: ir.NewVar(s.Index)}
		if loOK {
			iterOffset = ir.NewVar(s.Index).Sub(lo)
		}
	} else {
		// normalized counter: i' = 0 .. ⌊(hi-lo)/step⌋, i = lo + step·i'
		norm := fmt.Sprintf("%s#%d", s.Index, lw.loopID)
		loop = ir.Loop{Index: norm, Lower: ir.NewConst(0), ID: lw.loopID}
		trip, ok := tripBound(lo, loOK, hi, hiOK, step)
		if ok {
			loop.Upper = trip
		} else {
			loop.NoUpper = true
			lw.warnf("%s: trip count of loop %q (step %d) is not affine; upper bound dropped",
				s.Pos, s.Index, step)
		}
		if loOK {
			indexVal = value{known: true, expr: lo.Add(ir.NewTerm(norm, step))}
		} else {
			lw.warnf("%s: non-affine lower bound of stepped loop %q; index unknown", s.Pos, s.Index)
		}
		iterOffset = ir.NewVar(norm)
	}

	// Pre-scan for induction variables (paper §8's iz = iz + 2 example);
	// they need a known iteration offset.
	var inds []induction
	if step != 1 || loOK {
		inds = lw.findInductions(s)
	}
	lw.recordCarriedScalars(loop.ID, s.Body, inds)

	// Enter loop scope. The normalized counter (if any) is the active
	// variable; the source index name resolves through env to its value.
	savedActive := lw.active[s.Index]
	savedVal, hadVal := lw.env[s.Index]
	lw.active[loop.Index] = true
	if loop.Index != s.Index {
		lw.env[s.Index] = indexVal
	} else {
		delete(lw.env, s.Index)
	}
	lw.loops = append(lw.loops, loop)

	// Any scalar assigned in the body holds a loop-varying value at the top
	// of an arbitrary iteration: havoc it, unless it is a recognized
	// induction variable, whose closed form we know exactly. (Without the
	// havoc, self-referential accumulators like x = x + i would incorrectly
	// keep their first-iteration value.)
	assigned := scalarsAssigned(s.Body, map[string]bool{})
	isInd := make(map[string]bool, len(inds))
	for _, ind := range inds {
		isInd[ind.name] = true
	}
	for name := range assigned {
		if !isInd[name] && !lw.active[name] {
			lw.env[name] = value{}
		}
	}
	// Before the increment executes, an induction variable's value is
	// entry + step·(completed iterations).
	for _, ind := range inds {
		lw.env[ind.name] = value{known: true, expr: ind.entry.Add(iterOffset.Scale(ind.step))}
	}

	for _, st := range s.Body {
		lw.stmt1InLoop(st, inds)
	}

	// Exit loop scope: body-assigned scalars are unknown afterwards
	// (conservative; exact trip-count exit values are not needed by the
	// dependence tests).
	lw.loops = lw.loops[:len(lw.loops)-1]
	delete(lw.active, loop.Index)
	lw.active[s.Index] = savedActive
	if hadVal {
		lw.env[s.Index] = savedVal
	} else {
		delete(lw.env, s.Index)
	}
	for name := range assigned {
		if !lw.active[name] {
			lw.env[name] = value{}
		}
	}
	// Values referencing the (now dead) loop variables are stale too.
	for name, v := range lw.env {
		if v.known && (v.expr.Uses(s.Index) && !lw.active[s.Index] || v.expr.Uses(loop.Index)) {
			lw.env[name] = value{}
		}
	}
}

// tripBound computes ⌊(hi-lo)/step⌋ (or ⌊(lo-hi)/|step|⌋ for negative
// steps) as an affine expression when possible: either the difference is
// constant, or every coefficient divides evenly.
func tripBound(lo ir.Expr, loOK bool, hi ir.Expr, hiOK bool, step int64) (ir.Expr, bool) {
	if !loOK || !hiOK {
		return ir.Expr{}, false
	}
	diff := hi.Sub(lo)
	mag := step
	if mag < 0 {
		mag = -mag
		diff = lo.Sub(hi)
	}
	if diff.IsConst() {
		return ir.NewConst(linalg.FloorDiv(diff.Const, mag)), true
	}
	// exact division of every term
	out := ir.Expr{}
	if diff.Const%mag != 0 {
		// ⌊(e+c)/m⌋ with variable e is not affine unless everything divides
		return ir.Expr{}, false
	}
	out.Const = diff.Const / mag
	for _, v := range diff.Vars() {
		c := diff.Coeff(v)
		if c%mag != 0 {
			return ir.Expr{}, false
		}
		out = out.Add(ir.NewTerm(v, c/mag))
	}
	return out, true
}

// forLoopOpaque handles loops whose step cannot be analyzed: the body is
// still walked (to surface reference sites behind warnings and to keep
// nested structure), but the index is unknown, so references using it are
// skipped conservatively.
func (lw *lowerer) forLoopOpaque(s *lang.For) {
	lw.loopID++
	loop := ir.Loop{Index: s.Index, NoLower: true, NoUpper: true, ID: lw.loopID}
	lw.recordCarriedScalars(loop.ID, s.Body, nil)
	savedActive := lw.active[s.Index]
	savedVal, hadVal := lw.env[s.Index]
	lw.active[s.Index] = false
	lw.env[s.Index] = value{} // unknown
	lw.loops = append(lw.loops, loop)
	assigned := scalarsAssigned(s.Body, map[string]bool{})
	for name := range assigned {
		if !lw.active[name] {
			lw.env[name] = value{}
		}
	}
	for _, st := range s.Body {
		lw.lowerStmt(st)
	}
	lw.loops = lw.loops[:len(lw.loops)-1]
	lw.active[s.Index] = savedActive
	if hadVal {
		lw.env[s.Index] = savedVal
	} else {
		delete(lw.env, s.Index)
	}
	for name := range assigned {
		if !lw.active[name] {
			lw.env[name] = value{}
		}
	}
}

// stmt1InLoop processes a body statement, flipping induction phases at their
// increment statements.
func (lw *lowerer) stmt1InLoop(st lang.Stmt, inds []induction) {
	if a, ok := st.(*lang.Assign); ok {
		for _, ind := range inds {
			if a == ind.stmt {
				// after the increment, value advances by one step
				v := lw.env[ind.name]
				lw.env[ind.name] = value{known: true, expr: v.expr.AddConst(ind.step)}
				lw.stmtID++
				lw.collectReads(a.RHS)
				return
			}
		}
	}
	lw.lowerStmt(st)
}

// findInductions recognizes scalars with exactly one assignment in the loop
// body, of the form v = v ± const at the top level, whose entry value is a
// known affine expression.
func (lw *lowerer) findInductions(s *lang.For) []induction {
	counts := map[string]int{}
	countAssignments(s.Body, counts)
	var out []induction
	for _, st := range s.Body {
		a, ok := st.(*lang.Assign)
		if !ok || a.LHSVar == "" {
			continue
		}
		v := a.LHSVar
		if counts[v] != 1 {
			continue
		}
		step, ok := selfIncrement(a, v, lw)
		if !ok {
			continue
		}
		entry, known := lw.env[v]
		if !known || !entry.known {
			continue
		}
		out = append(out, induction{name: v, step: step, entry: entry.expr, stmt: a})
	}
	return out
}

// scalarsAssigned collects every scalar assigned anywhere in the statement
// list (including nested loops) into set, and returns it.
func scalarsAssigned(ss []lang.Stmt, set map[string]bool) map[string]bool {
	for _, s := range ss {
		switch s := s.(type) {
		case *lang.Assign:
			if s.LHSVar != "" {
				set[s.LHSVar] = true
			}
		case *lang.For:
			scalarsAssigned(s.Body, set)
		case *lang.Read:
			set[s.Var] = true
		}
	}
	return set
}

// countAssignments counts assignments (and reads) per scalar across the
// statement list, including nested loops.
func countAssignments(ss []lang.Stmt, counts map[string]int) {
	for _, s := range ss {
		switch s := s.(type) {
		case *lang.Assign:
			if s.LHSVar != "" {
				counts[s.LHSVar]++
			}
		case *lang.For:
			countAssignments(s.Body, counts)
		case *lang.Read:
			counts[s.Var]++
		}
	}
}

// selfIncrement matches v = v + c / v = v - c / v = c + v with constant c.
func selfIncrement(a *lang.Assign, v string, lw *lowerer) (int64, bool) {
	b, ok := a.RHS.(*lang.BinOp)
	if !ok || (b.Op != '+' && b.Op != '-') {
		return 0, false
	}
	if id, ok := b.L.(*lang.Ident); ok && id.Name == v {
		if c, ok := constOf(b.R, lw); ok {
			if b.Op == '-' {
				return -c, true
			}
			return c, true
		}
	}
	if b.Op == '+' {
		if id, ok := b.R.(*lang.Ident); ok && id.Name == v {
			if c, ok := constOf(b.L, lw); ok {
				return c, true
			}
		}
	}
	return 0, false
}

// constOf evaluates an expression to a constant if possible (without
// introducing new symbols).
func constOf(e lang.Expr, lw *lowerer) (int64, bool) {
	switch e := e.(type) {
	case *lang.Num:
		return e.Value, true
	case *lang.Neg:
		c, ok := constOf(e.X, lw)
		return -c, ok
	case *lang.Ident:
		if v, ok := lw.env[e.Name]; ok && v.known && v.expr.IsConst() {
			return v.expr.Const, true
		}
		return 0, false
	case *lang.BinOp:
		l, lok := constOf(e.L, lw)
		r, rok := constOf(e.R, lw)
		if !lok || !rok {
			return 0, false
		}
		switch e.Op {
		case '+':
			return l + r, true
		case '-':
			return l - r, true
		case '*':
			return l * r, true
		}
	}
	return 0, false
}

// recordCarriedScalars finds scalars whose value flows across iterations of
// the loop body: read at some program point with no prior assignment in the
// body. Recognized induction variables are excluded (their uses were
// substituted by closed forms, so no cross-iteration flow remains). These
// scalars serialize the loop regardless of array dependences (classic
// reductions like s = s + a[i]).
func (lw *lowerer) recordCarriedScalars(loopID int, body []lang.Stmt, inds []induction) {
	exclude := make(map[string]bool, len(inds))
	for _, ind := range inds {
		exclude[ind.name] = true
	}
	carried := carriedScalars(body, exclude)
	if len(carried) > 0 {
		if lw.carried == nil {
			lw.carried = make(map[int][]string)
		}
		lw.carried[loopID] = carried
	}
	carriedSet := make(map[string]bool, len(carried))
	for _, name := range carried {
		carriedSet[name] = true
	}
	var private []string
	for name := range scalarsAssigned(body, map[string]bool{}) {
		if !carriedSet[name] {
			private = append(private, name)
		}
	}
	if len(private) > 0 {
		sort.Strings(private)
		if lw.private == nil {
			lw.private = make(map[int][]string)
		}
		lw.private[loopID] = private
	}
}

// carriedScalars walks the body in program order tracking which scalars have
// been assigned; a read of a body-assigned, not-yet-written scalar is a
// loop-carried use.
func carriedScalars(body []lang.Stmt, exclude map[string]bool) []string {
	assigned := scalarsAssigned(body, map[string]bool{})
	written := map[string]bool{}
	carriedSet := map[string]bool{}
	var walkExpr func(e lang.Expr)
	walkExpr = func(e lang.Expr) {
		switch e := e.(type) {
		case *lang.Ident:
			if assigned[e.Name] && !written[e.Name] && !exclude[e.Name] {
				carriedSet[e.Name] = true
			}
		case *lang.BinOp:
			walkExpr(e.L)
			walkExpr(e.R)
		case *lang.Neg:
			walkExpr(e.X)
		case *lang.Index:
			for _, sub := range e.Subs {
				walkExpr(sub)
			}
		}
	}
	var walkStmt func(st lang.Stmt)
	walkStmt = func(st lang.Stmt) {
		switch st := st.(type) {
		case *lang.Assign:
			if st.LHSArray != nil {
				for _, sub := range st.LHSArray.Subs {
					walkExpr(sub)
				}
			}
			walkExpr(st.RHS)
			if st.LHSVar != "" {
				written[st.LHSVar] = true
			}
		case *lang.For:
			walkExpr(st.Lo)
			walkExpr(st.Hi)
			if st.Step != nil {
				walkExpr(st.Step)
			}
			for _, inner := range st.Body {
				walkStmt(inner)
			}
		case *lang.Read:
			written[st.Var] = true
		}
	}
	for _, st := range body {
		walkStmt(st)
	}
	out := make([]string, 0, len(carriedSet))
	for name := range carriedSet {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
