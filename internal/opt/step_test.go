package opt

import (
	"strings"
	"testing"

	"exactdep/internal/core"
	"exactdep/internal/dtest"
	"exactdep/internal/lang"
	"exactdep/internal/refs"
)

func TestStepNormalization(t *testing.T) {
	// for i = 1 to 9 step 2 { a[i] = … }: i ∈ {1,3,5,7,9} normalizes to
	// i = 1 + 2·i' with i' ∈ 0..4.
	u := lower(t, `
for i = 1 to 9 step 2
  a[i] = 0
end
`)
	if len(u.Warnings) != 0 {
		t.Fatalf("warnings: %v", u.Warnings)
	}
	if len(u.Sites) != 1 {
		t.Fatalf("sites: %v", u.Sites)
	}
	site := u.Sites[0]
	if len(site.Loops) != 1 {
		t.Fatalf("loops: %v", site.Loops)
	}
	l := site.Loops[0]
	if l.Lower.Const != 0 || l.Upper.Const != 4 || l.NoUpper {
		t.Fatalf("normalized bounds: %v", l)
	}
	// subscript must be 2·i' + 1 over the normalized counter
	sub := site.Ref.Subscripts[0]
	if sub.Const != 1 || sub.Coeff(l.Index) != 2 {
		t.Fatalf("subscript = %v over %q", sub, l.Index)
	}
}

func TestStepCommaSyntax(t *testing.T) {
	// Fortran flavour: do i = 1, 10, 3
	u := lower(t, "do i = 1, 10, 3\n  a[i] = 0\nend\n")
	l := u.Sites[0].Loops[0]
	if l.Upper.Const != 3 { // i ∈ {1,4,7,10}: 4 iterations, i' ≤ 3
		t.Fatalf("trip bound = %v", l.Upper)
	}
}

func TestNegativeStep(t *testing.T) {
	// for i = 10 to 1 step -3: i ∈ {10,7,4,1}: 4 iterations.
	u := lower(t, "for i = 10 to 1 step -3\n  a[i] = 0\nend\n")
	l := u.Sites[0].Loops[0]
	if l.Upper.Const != 3 {
		t.Fatalf("trip bound = %v", l.Upper)
	}
	sub := u.Sites[0].Ref.Subscripts[0]
	if sub.Const != 10 || sub.Coeff(l.Index) != -3 {
		t.Fatalf("subscript = %v", sub)
	}
}

func TestZeroStepDegrades(t *testing.T) {
	u := lower(t, "for i = 1 to 10 step 0\n  a[i] = 0\nend\n")
	if len(u.Warnings) == 0 {
		t.Fatal("zero step must warn")
	}
	if len(u.Sites) != 0 {
		t.Fatalf("refs using an unknown index must be skipped: %v", u.Sites)
	}
}

func TestSymbolicStepDegrades(t *testing.T) {
	u := lower(t, `
read(s)
for i = 1 to 10 step s
  a[i] = 0
  b[5] = 1
end
`)
	if len(u.Warnings) == 0 {
		t.Fatal("symbolic step must warn")
	}
	// b[5] does not use i: it must survive
	found := false
	for _, s := range u.Sites {
		if s.Ref.Array == "b" {
			found = true
		}
		if s.Ref.Array == "a" {
			t.Fatalf("a[i] must be skipped with unknown index: %v", s)
		}
	}
	if !found {
		t.Fatal("index-free reference must survive an opaque loop")
	}
}

func TestSymbolicBoundsWithStep(t *testing.T) {
	// for i = 1 to n step 2: trip count ⌊(n-1)/2⌋ is not affine → upper
	// bound dropped, but the subscript mapping 2i'+1 is still exact.
	u := lower(t, `
read(n)
for i = 1 to n step 2
  a[i] = a[i+2]
end
`)
	l := u.Sites[0].Loops[0]
	if !l.NoUpper {
		t.Fatalf("non-divisible symbolic trip count must drop the bound: %v", l)
	}
	if u.Sites[0].Ref.Subscripts[0].Coeff(l.Index) != 2 {
		t.Fatalf("subscript mapping lost: %v", u.Sites[0].Ref.Subscripts[0])
	}
}

func TestDivisibleSymbolicTrip(t *testing.T) {
	// for i = 0 to 2*n step 2: trip count (2n-0)/2 = n is affine.
	u := lower(t, `
read(n)
for i = 0 to 2*n step 2
  a[i] = 0
end
`)
	l := u.Sites[0].Loops[0]
	if l.NoUpper || l.Upper.Coeff("n") != 1 || l.Upper.Const != 0 {
		t.Fatalf("divisible symbolic trip bound = %v (NoUpper=%v)", l.Upper, l.NoUpper)
	}
}

func TestSteppedLoopDependence(t *testing.T) {
	// Classic: for i = 0 to 100 step 2 { a[i] = a[i+1] }: even writes never
	// meet odd reads → independent via GCD after normalization.
	src := `
for i = 0 to 100 step 2
  a[i] = a[i+1]
end
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	u := Lower(prog)
	a := core.New(core.Options{})
	for _, c := range refs.PairsOpts(u, refs.Options{NoSelfPairs: true}) {
		res, err := a.AnalyzeCandidate(c)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != dtest.Independent {
			t.Fatalf("stride-2 parity pair must be independent: %+v", res)
		}
	}

	// And the dependent flavour: a[i] = a[i-2] along the same stride.
	src = `
for i = 0 to 100 step 2
  a[i] = a[i-2]
end
`
	prog, err = lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	u = Lower(prog)
	a = core.New(core.Options{DirectionVectors: true, PruneDistance: true, PruneUnused: true})
	for _, c := range refs.PairsOpts(u, refs.Options{NoSelfPairs: true}) {
		res, err := a.AnalyzeCandidate(c)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != dtest.Dependent {
			t.Fatalf("stride-2 chain must be dependent: %+v", res)
		}
		// distance in normalized iterations is 1
		if len(res.Distances) != 1 || res.Distances[0].Value != 1 {
			t.Fatalf("normalized distance = %v", res.Distances)
		}
	}
}

func TestInductionInsideSteppedLoop(t *testing.T) {
	// induction variable with the loop counter normalized: iz advances 3
	// per iteration of the stride-2 loop.
	u := lower(t, `
iz = 0
for i = 0 to 10 step 2
  iz = iz + 3
  a[iz] = 0
end
`)
	if len(u.Sites) != 1 {
		t.Fatalf("sites = %v warnings = %v", u.Sites, u.Warnings)
	}
	sub := u.Sites[0].Ref.Subscripts[0]
	l := u.Sites[0].Loops[0]
	// after the k-th iteration's increment: iz = 3(k+1) = 3·i' + 3
	if sub.Coeff(l.Index) != 3 || sub.Const != 3 {
		t.Fatalf("induction closed form = %v", sub)
	}
}

func TestStepStringRoundTrip(t *testing.T) {
	prog, err := lang.Parse("for i = 1 to 9 step 2\n  a[i] = 0\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.String(), "step 2") {
		t.Fatalf("rendering lost the step:\n%s", prog)
	}
	if _, err := lang.Parse(prog.String()); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

func TestStepExpressionConstantFolding(t *testing.T) {
	// step expressions fold through constOf: 1+1, -(2), 2*2, and a
	// propagated scalar all work.
	for _, c := range []struct {
		src  string
		trip int64 // expected normalized upper bound
	}{
		{"for i = 0 to 8 step 1+1\n  a[i] = 0\nend\n", 4},
		{"for i = 8 to 0 step -(2)\n  a[i] = 0\nend\n", 4},
		{"for i = 0 to 8 step 2*2\n  a[i] = 0\nend\n", 2},
		{"s = 3\nfor i = 0 to 9 step s\n  a[i] = 0\nend\n", 3},
		{"s = 5\nfor i = 0 to 9 step s - 2\n  a[i] = 0\nend\n", 3},
	} {
		u := lower(t, c.src)
		if len(u.Sites) != 1 {
			t.Fatalf("%q: sites = %v, warnings = %v", c.src, u.Sites, u.Warnings)
		}
		l := u.Sites[0].Loops[0]
		if l.NoUpper || l.Upper.Const != c.trip {
			t.Fatalf("%q: trip bound = %v (NoUpper=%v), want %d", c.src, l.Upper, l.NoUpper, c.trip)
		}
	}
}
