package opt

import (
	"strings"
	"testing"

	"exactdep/internal/ir"
	"exactdep/internal/lang"
)

func lower(t *testing.T, src string) *ir.Unit {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return Lower(prog)
}

// site finds the n-th site of the unit (0-based) and fails on overflow.
func site(t *testing.T, u *ir.Unit, n int) ir.Site {
	t.Helper()
	if n >= len(u.Sites) {
		t.Fatalf("unit has %d sites, wanted index %d", len(u.Sites), n)
	}
	return u.Sites[n]
}

func TestLowerSimpleLoop(t *testing.T) {
	u := lower(t, `
for i = 1 to 10
  a[i+10] = a[i] + 3
end
`)
	if len(u.Sites) != 2 {
		t.Fatalf("sites = %d (%v)", len(u.Sites), u.Sites)
	}
	// the write site is emitted before the reads of the same statement
	wr, rd := site(t, u, 0), site(t, u, 1)
	if rd.Ref.Kind != ir.Read || wr.Ref.Kind != ir.Write {
		t.Fatalf("kinds = %v, %v", rd.Ref.Kind, wr.Ref.Kind)
	}
	if wr.Ref.Subscripts[0].String() != "i + 10" {
		t.Fatalf("write sub = %s", wr.Ref.Subscripts[0])
	}
	if len(wr.Loops) != 1 || wr.Loops[0].Index != "i" {
		t.Fatalf("loops = %v", wr.Loops)
	}
	if wr.Loops[0].Lower.Const != 1 || wr.Loops[0].Upper.Const != 10 {
		t.Fatalf("bounds = %v", wr.Loops[0])
	}
	if len(u.Warnings) != 0 {
		t.Fatalf("warnings: %v", u.Warnings)
	}
}

func TestConstantPropagation(t *testing.T) {
	// paper §8: n = 100 … a[iz+n] etc. constants must fold into subscripts.
	u := lower(t, `
n = 100
for i = 1 to 10
  a[i+n] = a[i+2*n+1] + 3
end
`)
	wr := u.Sites[0]
	if got := wr.Ref.Subscripts[0].String(); got != "i + 100" {
		t.Fatalf("write sub = %s, want i + 100", got)
	}
	rd := u.Sites[1]
	if got := rd.Ref.Subscripts[0].String(); got != "i + 201" {
		t.Fatalf("read sub = %s, want i + 201", got)
	}
	if len(u.Symbols) != 0 {
		t.Fatalf("no symbols expected, got %v", u.Symbols)
	}
}

func TestInductionVariableSubstitution(t *testing.T) {
	// The paper's §8 example: iz = 0; for i { iz = iz+2; a[iz+n] = … } with
	// n = 100 becomes a[2i+100] = a[2i+201].
	u := lower(t, `
n = 100
iz = 0
for i = 1 to 10
  iz = iz + 2
  a[iz+n] = a[iz+2*n+1] + 3
end
`)
	if len(u.Sites) != 2 {
		t.Fatalf("sites = %d, warnings = %v", len(u.Sites), u.Warnings)
	}
	wr := u.Sites[0]
	// iz after increment in iteration i (lo=1): 0 + 2(i-1) + 2 = 2i
	if got := wr.Ref.Subscripts[0].String(); got != "2*i + 100" {
		t.Fatalf("write sub = %s, want 2*i + 100", got)
	}
	rd := u.Sites[1]
	if got := rd.Ref.Subscripts[0].String(); got != "2*i + 201" {
		t.Fatalf("read sub = %s, want 2*i + 201", got)
	}
}

func TestForwardSubstitution(t *testing.T) {
	u := lower(t, `
for i = 1 to 10
  k = 2*i + 1
  a[k] = a[k-1]
end
`)
	wr := u.Sites[0]
	if got := wr.Ref.Subscripts[0].String(); got != "2*i + 1" {
		t.Fatalf("write sub = %s", got)
	}
	rd := u.Sites[1]
	if got := rd.Ref.Subscripts[0].String(); got != "2*i" {
		t.Fatalf("read sub = %s", got)
	}
}

func TestReadIntroducesSymbol(t *testing.T) {
	// paper §8: read(n); for i = 1 to 10 { a[i+n] = a[i+2n+1]+3 }.
	u := lower(t, `
read(n)
for i = 1 to 10
  a[i+n] = a[i+2*n+1] + 3
end
`)
	if len(u.Symbols) != 1 || u.Symbols[0] != "n" {
		t.Fatalf("symbols = %v", u.Symbols)
	}
	wr := u.Sites[0]
	if got := wr.Ref.Subscripts[0].String(); got != "i + n" {
		t.Fatalf("write sub = %s", got)
	}
}

func TestUndefinedScalarBecomesSymbol(t *testing.T) {
	u := lower(t, `
for i = 1 to m
  a[i] = a[i+1]
end
`)
	if len(u.Symbols) != 1 || u.Symbols[0] != "m" {
		t.Fatalf("symbols = %v", u.Symbols)
	}
	if u.Sites[0].Loops[0].NoUpper {
		t.Fatal("symbolic upper bound must stay affine (m)")
	}
	if got := u.Sites[0].Loops[0].Upper.String(); got != "m" {
		t.Fatalf("upper = %s", got)
	}
}

func TestNonAffineSubscriptSkipped(t *testing.T) {
	u := lower(t, `
for i = 1 to 10
  a[i*i] = 1
end
`)
	if len(u.Sites) != 0 {
		t.Fatalf("non-affine ref must be skipped: %v", u.Sites)
	}
	if len(u.Warnings) == 0 || !strings.Contains(u.Warnings[0], "non-affine subscript") {
		t.Fatalf("warnings = %v", u.Warnings)
	}
}

func TestArrayValuedScalarUnknown(t *testing.T) {
	// x = a[i] is not affine; a later use in a subscript must be skipped,
	// but the read of a[i] itself is still a site.
	u := lower(t, `
for i = 1 to 10
  x = a[i]
  b[x] = 0
end
`)
	if len(u.Sites) != 1 || u.Sites[0].Ref.Array != "a" {
		t.Fatalf("sites = %v", u.Sites)
	}
	if len(u.Warnings) == 0 {
		t.Fatal("expected warning for b[x]")
	}
}

func TestNestedLoopsAndSiblings(t *testing.T) {
	u := lower(t, `
for i = 1 to 10
  for j = 1 to 10
    a[i][j] = 1
  end
  for k = 1 to 10
    a[i][k] = 2
  end
end
`)
	if len(u.Sites) != 2 {
		t.Fatalf("sites = %d", len(u.Sites))
	}
	s1, s2 := u.Sites[0], u.Sites[1]
	if len(s1.Loops) != 2 || len(s2.Loops) != 2 {
		t.Fatalf("loop stacks: %d, %d", len(s1.Loops), len(s2.Loops))
	}
	if s1.Loops[1].Index != "j" || s2.Loops[1].Index != "k" {
		t.Fatalf("sibling stacks wrong: %v / %v", s1.Loops, s2.Loops)
	}
}

func TestTriangularBoundsLowered(t *testing.T) {
	u := lower(t, `
for i = 1 to 10
  for j = i to 2*i
    a[j] = a[j-1]
  end
end
`)
	inner := u.Sites[0].Loops[1]
	if inner.Lower.String() != "i" || inner.Upper.String() != "2*i" {
		t.Fatalf("inner bounds = %v .. %v", inner.Lower, inner.Upper)
	}
}

func TestScalarKilledAfterLoop(t *testing.T) {
	// k is assigned inside the loop; a use after the loop is not affine.
	u := lower(t, `
for i = 1 to 10
  k = i
  a[k] = 0
end
b[k] = 1
`)
	// a[k] inside is affine (k = i); b[k] outside must be skipped
	if len(u.Sites) != 1 {
		t.Fatalf("sites = %v, warnings = %v", u.Sites, u.Warnings)
	}
	if len(u.Warnings) == 0 {
		t.Fatal("expected warning for stale k")
	}
}

func TestLoopIndexShadowRestored(t *testing.T) {
	u := lower(t, `
i = 5
for i = 1 to 10
  a[i] = 0
end
b[i] = 0
`)
	// after the loop the old binding i=5 is restored... our semantics: the
	// loop index shadows; outer i had value 5 and is restored.
	if len(u.Sites) != 2 {
		t.Fatalf("sites = %d, warnings = %v", len(u.Sites), u.Warnings)
	}
	if got := u.Sites[1].Ref.Subscripts[0].String(); got != "5" {
		t.Fatalf("b sub = %s, want restored constant 5", got)
	}
}

func TestMultipleIncrementsNotInduction(t *testing.T) {
	// two increments → not a recognized induction → subscripts skipped
	u := lower(t, `
iz = 0
for i = 1 to 10
  iz = iz + 1
  iz = iz + 1
  a[iz] = 0
end
`)
	if len(u.Sites) != 0 {
		t.Fatalf("double-increment must not be substituted: %v", u.Sites)
	}
}

func TestNonConstantStepNotInduction(t *testing.T) {
	u := lower(t, `
iz = 0
for i = 1 to 10
  iz = iz + i
  a[iz] = 0
end
`)
	if len(u.Sites) != 0 {
		t.Fatalf("non-constant step must not be substituted: %v", u.Sites)
	}
}

func TestNegativeStepInduction(t *testing.T) {
	u := lower(t, `
iz = 100
for i = 1 to 10
  iz = iz - 3
  a[iz] = 0
end
`)
	if len(u.Sites) != 1 {
		t.Fatalf("sites = %v warnings = %v", u.Sites, u.Warnings)
	}
	if got := u.Sites[0].Ref.Subscripts[0].String(); got != "-3*i + 100" {
		t.Fatalf("sub = %s, want -3*i + 100", got)
	}
}

func TestUnitName(t *testing.T) {
	u := lower(t, "program hello\na[1] = 0\n")
	if u.Name != "hello" {
		t.Fatalf("name = %q", u.Name)
	}
	if u.Sites[0].Ref.Depth != 0 || len(u.Sites[0].Loops) != 0 {
		t.Fatal("top-level ref must have empty loop stack")
	}
}
