// Package refs enumerates candidate dependence pairs from a lowered unit:
// every pair of references to the same array in which at least one is a
// write (flow, anti, and output dependences), including a write paired with
// itself across iterations. Pairs whose subscripts are all constant on both
// sides — the paper's "Constant" column in Table 1, e.g. a[3] vs a[4] — are
// classified up front and never reach the dependence tests.
package refs

import (
	"exactdep/internal/ir"
)

// Class labels how a candidate pair is handled.
type Class int

const (
	// NeedsTest means the pair goes to the dependence analyzer.
	NeedsTest Class = iota
	// ConstEqual: all subscripts constant and equal — trivially dependent.
	ConstEqual
	// ConstDiffer: all subscripts constant and some dimension differs —
	// trivially independent.
	ConstDiffer
)

func (c Class) String() string {
	switch c {
	case ConstEqual:
		return "constant (dependent)"
	case ConstDiffer:
		return "constant (independent)"
	default:
		return "needs test"
	}
}

// Candidate is one enumerated pair with its classification.
type Candidate struct {
	Pair  ir.Pair
	Class Class
}

// Options controls pair enumeration.
type Options struct {
	// NoSelfPairs skips pairing a write with itself (the across-iteration
	// output dependence of a single reference). The experiment harness uses
	// this to count distinct-reference pairs the way the paper does.
	NoSelfPairs bool
}

// Pairs enumerates the candidate pairs of a unit in deterministic order,
// including write self-pairs.
func Pairs(u *ir.Unit) []Candidate { return PairsOpts(u, Options{}) }

// PairsOpts enumerates candidate pairs with explicit options.
func PairsOpts(u *ir.Unit, opts Options) []Candidate {
	var out []Candidate
	for i, a := range u.Sites {
		for j := i; j < len(u.Sites); j++ {
			b := u.Sites[j]
			if i == j && opts.NoSelfPairs {
				continue
			}
			if a.Ref.Array != b.Ref.Array {
				continue
			}
			if len(a.Ref.Subscripts) != len(b.Ref.Subscripts) {
				continue // inconsistent dimensionality: not comparable
			}
			if a.Ref.Kind != ir.Write && b.Ref.Kind != ir.Write {
				continue // read-read pairs carry no dependence
			}
			if i == j && a.Ref.Kind != ir.Write {
				continue
			}
			p := ir.Pair{
				A:       a,
				B:       b,
				Common:  commonPrefix(a.Loops, b.Loops),
				Symbols: u.Symbols,
				Label:   u.Name,
			}
			out = append(out, Candidate{Pair: p, Class: Classify(a.Ref, b.Ref)})
		}
	}
	return out
}

// Classify detects all-constant subscript pairs.
func Classify(a, b ir.Ref) Class {
	equal := true
	for d := range a.Subscripts {
		sa, sb := a.Subscripts[d], b.Subscripts[d]
		if !sa.IsConst() || !sb.IsConst() {
			return NeedsTest
		}
		if sa.Const != sb.Const {
			equal = false
		}
	}
	if equal {
		return ConstEqual
	}
	return ConstDiffer
}

// commonPrefix counts the shared outermost loops of two stacks. Loops match
// when they are the same syntactic loop: same index and same bounds. (Two
// sibling loops that happen to reuse an index name and bounds would also
// match, which is conservative for hand-built units; the lowerer always
// copies one stack, so prefixes there are exact.)
func commonPrefix(a, b []ir.Loop) int {
	n := 0
	for n < len(a) && n < len(b) {
		if !sameLoop(a[n], b[n]) {
			break
		}
		n++
	}
	return n
}

func sameLoop(a, b ir.Loop) bool {
	if a.ID != 0 || b.ID != 0 {
		return a.ID == b.ID
	}
	if a.Index != b.Index || a.NoLower != b.NoLower || a.NoUpper != b.NoUpper {
		return false
	}
	if !a.NoLower && !a.Lower.Equal(b.Lower) {
		return false
	}
	if !a.NoUpper && !a.Upper.Equal(b.Upper) {
		return false
	}
	return true
}
