package refs

import (
	"testing"

	"exactdep/internal/ir"
	"exactdep/internal/lang"
	"exactdep/internal/opt"
)

func unit(t *testing.T, src string) *ir.Unit {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return opt.Lower(prog)
}

func TestPairsSimple(t *testing.T) {
	u := unit(t, `
for i = 1 to 10
  a[i] = a[i+1]
end
`)
	// sites: read a[i+1], write a[i] → pairs: read-write? ordering: site 0
	// is the read, site 1 the write. Candidates: (0,1) read+write,
	// (1,1) write self-pair. (0,0) read-read skipped.
	cands := Pairs(u)
	if len(cands) != 2 {
		t.Fatalf("candidates = %d: %v", len(cands), cands)
	}
	for _, c := range cands {
		if c.Class != NeedsTest {
			t.Fatalf("class = %v", c.Class)
		}
		if c.Pair.Common != 1 {
			t.Fatalf("common = %d", c.Pair.Common)
		}
	}
}

func TestPairsConstantClassification(t *testing.T) {
	u := unit(t, `
a[3] = 1
a[4] = a[3]
`)
	// sites: write a[3]; read a[3]; write a[4]
	cands := Pairs(u)
	classes := map[Class]int{}
	for _, c := range cands {
		classes[c.Class]++
	}
	// pairs: (w3,w3)=equal, (w3,r3)=equal, (w3,w4)=differ, (r3,w4)=differ,
	// (w4,w4)=equal
	if classes[ConstEqual] != 3 || classes[ConstDiffer] != 2 || classes[NeedsTest] != 0 {
		t.Fatalf("classes = %v", classes)
	}
}

func TestPairsDifferentArraysSkipped(t *testing.T) {
	u := unit(t, `
for i = 1 to 10
  a[i] = b[i]
end
`)
	cands := Pairs(u)
	// only self-pair of the write a[i]
	if len(cands) != 1 || cands[0].Pair.A.Ref.Array != "a" {
		t.Fatalf("candidates = %v", cands)
	}
}

func TestPairsReadReadSkipped(t *testing.T) {
	u := unit(t, `
for i = 1 to 10
  x = a[i] + a[i+1]
end
`)
	if cands := Pairs(u); len(cands) != 0 {
		t.Fatalf("read-read pairs must be skipped: %v", cands)
	}
}

func TestSiblingLoopsCommonPrefix(t *testing.T) {
	u := unit(t, `
for i = 1 to 10
  for j = 1 to 10
    a[i][j] = 1
  end
  for j = 1 to 10
    a[i][j] = 2
  end
end
`)
	cands := Pairs(u)
	// three pairs: (w1,w1), (w1,w2), (w2,w2)
	if len(cands) != 3 {
		t.Fatalf("candidates = %d", len(cands))
	}
	for _, c := range cands {
		sameSite := c.Pair.A.Ref.Stmt == c.Pair.B.Ref.Stmt
		if sameSite && c.Pair.Common != 2 {
			t.Fatalf("self pair common = %d, want 2", c.Pair.Common)
		}
		if !sameSite && c.Pair.Common != 1 {
			t.Fatalf("cross-sibling common = %d, want 1 (distinct j loops)", c.Pair.Common)
		}
	}
}

func TestMismatchedDimensionsSkipped(t *testing.T) {
	nest := &ir.Nest{Label: "x", Loops: []ir.Loop{{Index: "i", Lower: ir.NewConst(1), Upper: ir.NewConst(10)}}}
	w := ir.Ref{Array: "a", Subscripts: []ir.Expr{ir.NewVar("i")}, Kind: ir.Write, Depth: 1}
	r := ir.Ref{Array: "a", Subscripts: []ir.Expr{ir.NewVar("i"), ir.NewConst(0)}, Kind: ir.Read, Depth: 1}
	u := &ir.Unit{Sites: []ir.Site{
		{Loops: nest.Loops, Ref: w},
		{Loops: nest.Loops, Ref: r},
	}}
	cands := Pairs(u)
	if len(cands) != 1 { // only the write self-pair survives
		t.Fatalf("candidates = %v", cands)
	}
}

func TestCommonPrefixStructuralFallback(t *testing.T) {
	// untagged loops (ID 0) compare structurally
	l1 := ir.Loop{Index: "i", Lower: ir.NewConst(1), Upper: ir.NewConst(10)}
	l2 := ir.Loop{Index: "i", Lower: ir.NewConst(1), Upper: ir.NewConst(10)}
	if commonPrefix([]ir.Loop{l1}, []ir.Loop{l2}) != 1 {
		t.Fatal("structurally identical loops must match")
	}
	l3 := ir.Loop{Index: "i", Lower: ir.NewConst(2), Upper: ir.NewConst(10)}
	if commonPrefix([]ir.Loop{l1}, []ir.Loop{l3}) != 0 {
		t.Fatal("different bounds must not match")
	}
	l4 := ir.Loop{Index: "i", NoLower: true, Upper: ir.NewConst(10)}
	if commonPrefix([]ir.Loop{l1}, []ir.Loop{l4}) != 0 {
		t.Fatal("bounded vs unbounded must not match")
	}
}

func TestClassString(t *testing.T) {
	if NeedsTest.String() == "" || ConstEqual.String() == "" || ConstDiffer.String() == "" {
		t.Fatal("empty class strings")
	}
}
