package tablefmt

import (
	"strings"
	"testing"
)

func TestRender(t *testing.T) {
	tb := New("Table X", "Program", "Tests", "Ratio")
	tb.AddRow("AP", 613, 7.04)
	tb.AddRow("CS", 142, 16.2)
	tb.AddSeparator()
	tb.AddRow("TOTAL", 755, 0.0)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Table X" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "Program") || !strings.Contains(lines[1], "Ratio") {
		t.Fatalf("header = %q", lines[1])
	}
	// separator rows
	seps := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "---") {
			seps++
		}
	}
	if seps != 2 {
		t.Fatalf("separators = %d, want 2 (after header + explicit)", seps)
	}
	// numeric right alignment: "613" and "142" should end at same column
	var c1, c2 int
	for _, l := range lines {
		if strings.HasPrefix(l, "AP") {
			c1 = strings.Index(l, "613") + 3
		}
		if strings.HasPrefix(l, "CS") {
			c2 = strings.Index(l, "142") + 3
		}
	}
	if c1 != c2 || c1 == 2 {
		t.Fatalf("misaligned numeric columns: %d vs %d\n%s", c1, c2, out)
	}
	if !strings.Contains(out, "7.0") || !strings.Contains(out, "16.2") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
}

func TestNoTitleNoHeaders(t *testing.T) {
	tb := New("")
	tb.AddRow("a", 1)
	out := tb.String()
	if strings.Contains(out, "---") {
		t.Fatalf("no header rule expected:\n%s", out)
	}
	if !strings.HasPrefix(out, "a") {
		t.Fatalf("out = %q", out)
	}
}

func TestRaggedRows(t *testing.T) {
	tb := New("", "A", "B")
	tb.AddRow("x")
	tb.AddRow("y", 1, 2) // wider than headers
	out := tb.String()
	if !strings.Contains(out, "2") {
		t.Fatalf("extra column lost:\n%s", out)
	}
}
