// Package tablefmt renders aligned plain-text tables for the experiment
// harness, in the visual style of the paper's tables.
package tablefmt

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// AddSeparator appends a horizontal rule before the next row.
func (t *Table) AddSeparator() {
	t.rows = append(t.rows, nil)
}

// String renders the table. The first column is left-aligned; all others
// right-aligned (numbers).
func (t *Table) String() string {
	ncols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	writeRow := func(r []string) {
		for i := 0; i < ncols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], cell)
			}
		}
		b.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		b.WriteString(strings.Repeat("-", totalWidth(widths)) + "\n")
	}
	for _, r := range t.rows {
		if r == nil {
			b.WriteString(strings.Repeat("-", totalWidth(widths)) + "\n")
			continue
		}
		writeRow(r)
	}
	return b.String()
}

func totalWidth(widths []int) int {
	n := 0
	for _, w := range widths {
		n += w
	}
	return n + 2*(len(widths)-1)
}
