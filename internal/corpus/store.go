package corpus

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"exactdep/internal/core"
	"exactdep/internal/depvec"
	"exactdep/internal/dtest"
	"exactdep/internal/memo"
	"exactdep/internal/refs"
)

// Store is the persistent verdict store of the incremental driver:
// fingerprint → per-unit verdicts, direction vectors, distances and cost
// counters. It follows the SaveMemo discipline — gob snapshot save/load,
// versioned, validated against the analyzer configuration — but lives one
// level up: where the memo tables cache canonical *problems*, the store
// caches whole *units*, so an unchanged unit costs one map probe instead of
// one memo probe per pair.
//
// A store is bound to an options signature (Signature): the subset of
// core.Options that can change result bytes — direction vectors, pruning,
// separability, cascade configuration, symmetric-memo vector ordering, and
// the count-budget class. Loading a snapshot saved under a different
// signature fails, exactly as LoadMemo rejects a key-scheme mismatch.
//
// Stored results never include provenance (DecidedBy): provenance depends
// on session history even in a serial analyzer, so the driver serves store
// hits as ByCache and the canonical rendering excludes it.
//
// A Store is a plain map with no internal locking: concurrent Lookups are
// safe only while no Put runs. The pipelined driver relies on exactly that
// contract — its front-end workers probe the store concurrently and all
// Puts are deferred until the pool is joined (see pipeline.go) — so any new
// caller that mixes readers and writers must add its own synchronization.
type Store struct {
	sig   string
	units map[memo.Fingerprint]*StoredUnit
}

// StoredUnit is one unit's persisted analysis product.
type StoredUnit struct {
	// Name is the unit's name when it was stored (informational: hits are
	// keyed purely on the fingerprint, so a renamed-but-identical unit
	// still hits).
	Name string
	// Results holds one entry per candidate, in candidate order.
	Results []StoredResult
	// Cost is the unit's verdict/cost profile.
	Cost CostSummary
}

// StoredResult is the serializable form of one pair's verdict.
type StoredResult struct {
	Outcome   int
	Exact     bool
	Kind      int
	Trip      int
	Vectors   [][]byte // one byte per level, depvec.Direction
	DistLevel []int
	DistValue []int64
}

// CostSummary is the per-unit cost profile persisted next to the verdicts:
// how much the unit cost to analyze, in the deterministic units of the
// paper's tables (pair and verdict counts, not wall time).
type CostSummary struct {
	Pairs       int
	Independent int
	Dependent   int
	Unknown     int
	Maybe       int
	Vectors     int
	Distances   int
}

// NewStore returns an empty store bound to the signature of opts.
func NewStore(opts core.Options) *Store {
	return &Store{sig: Signature(opts), units: make(map[memo.Fingerprint]*StoredUnit)}
}

// Signature digests the options fields that can change result bytes. Two
// configurations with equal signatures produce byte-identical verdicts,
// vectors and distances for every unit, so they may share a store.
// Memoization layout, worker counts, timing, and clock limits (whose trips
// are never stored) are excluded.
func Signature(opts core.Options) string {
	cascade := opts.Cascade
	if cascade == "" {
		cascade = "full"
	}
	cl := opts.Budget.Class()
	return fmt.Sprintf("v=%t pu=%t pd=%t sep=%t sym=%t cascade=%s budget=%d/%d/%d",
		opts.DirectionVectors, opts.PruneUnused, opts.PruneDistance, opts.Separable,
		opts.SymmetricMemo, cascade, cl.FMEliminations, cl.BranchNodes, cl.Constraints)
}

// Signature returns the signature the store is bound to.
func (s *Store) Signature() string { return s.sig }

// Len returns the number of stored units.
func (s *Store) Len() int { return len(s.units) }

// Lookup returns the stored unit for a fingerprint. The returned unit is
// shared and must be treated as immutable.
func (s *Store) Lookup(fp memo.Fingerprint) (*StoredUnit, bool) {
	su, ok := s.units[fp]
	return su, ok
}

// Put stores a unit's results under its fingerprint, overwriting any
// previous entry.
func (s *Store) Put(fp memo.Fingerprint, su StoredUnit) { s.units[fp] = &su }

// Clone returns an independent store with the same entries (StoredUnits are
// treated as immutable, so the copy is shallow per unit).
func (s *Store) Clone() *Store {
	c := &Store{sig: s.sig, units: make(map[memo.Fingerprint]*StoredUnit, len(s.units))}
	for fp, su := range s.units {
		c.units[fp] = su
	}
	return c
}

// storeFileVersion guards the on-disk format.
const storeFileVersion = 1

// savedStore is the on-disk document. Units are sorted by fingerprint so a
// given store always serializes to the same bytes.
type savedStore struct {
	Version   int
	Signature string
	Units     []savedStoreUnit
}

type savedStoreUnit struct {
	Hi, Lo uint64
	Unit   StoredUnit
}

// Save writes the store as a gob snapshot.
func (s *Store) Save(w io.Writer) error {
	doc := savedStore{Version: storeFileVersion, Signature: s.sig}
	for fp, su := range s.units {
		doc.Units = append(doc.Units, savedStoreUnit{Hi: fp.Hi, Lo: fp.Lo, Unit: *su})
	}
	sort.Slice(doc.Units, func(i, j int) bool {
		if doc.Units[i].Hi != doc.Units[j].Hi {
			return doc.Units[i].Hi < doc.Units[j].Hi
		}
		return doc.Units[i].Lo < doc.Units[j].Lo
	})
	return gob.NewEncoder(w).Encode(&doc)
}

// LoadStore reads a snapshot saved by Save, validating that it was produced
// under the same options signature.
func LoadStore(r io.Reader, opts core.Options) (*Store, error) {
	var doc savedStore
	if err := gob.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("corpus: loading verdict store: %w", err)
	}
	if doc.Version != storeFileVersion {
		return nil, fmt.Errorf("corpus: verdict store version %d, want %d", doc.Version, storeFileVersion)
	}
	s := NewStore(opts)
	if doc.Signature != s.sig {
		return nil, fmt.Errorf("corpus: verdict store signature %q, analyzer configuration needs %q",
			doc.Signature, s.sig)
	}
	for i := range doc.Units {
		su := &doc.Units[i]
		s.units[memo.Fingerprint{Hi: su.Hi, Lo: su.Lo}] = &su.Unit
	}
	return s, nil
}

// Storable reports whether a unit's results may enter the store: verdicts
// tripped by the clock or by cancellation are scheduling-dependent, so a
// unit containing one is re-analyzed on every run instead of being
// persisted (the same rule the memo tables apply per problem).
func Storable(results []core.Result) bool {
	for i := range results {
		if t := results[i].Trip; t == dtest.TripDeadline || t == dtest.TripCancelled {
			return false
		}
	}
	return true
}

// ToStored converts a unit's fresh results to their persisted form
// (exported for the depserve service layer, which orchestrates its own
// store traffic around a shared warm tier).
func ToStored(name string, results []core.Result) StoredUnit {
	su := StoredUnit{Name: name, Results: make([]StoredResult, len(results)), Cost: Summarize(results)}
	for i := range results {
		r := &results[i]
		sr := StoredResult{
			Outcome: int(r.Outcome),
			Exact:   r.Exact,
			Kind:    int(r.Kind),
			Trip:    int(r.Trip),
		}
		for _, v := range r.Vectors {
			bs := make([]byte, len(v))
			for l, d := range v {
				bs[l] = byte(d)
			}
			sr.Vectors = append(sr.Vectors, bs)
		}
		for _, d := range r.Distances {
			sr.DistLevel = append(sr.DistLevel, d.Level)
			sr.DistValue = append(sr.DistValue, d.Value)
		}
		su.Results[i] = sr
	}
	return su
}

// Serve rebuilds a unit's results from the store, attaching the *current*
// candidates' pairs (the fingerprint proved them equivalent). Served
// results report ByCache.
func Serve(cands []refs.Candidate, su *StoredUnit) []core.Result {
	out := make([]core.Result, len(su.Results))
	for i := range su.Results {
		sr := &su.Results[i]
		r := core.Result{
			Pair:      cands[i].Pair,
			Outcome:   dtest.Outcome(sr.Outcome),
			Exact:     sr.Exact,
			DecidedBy: core.ByCache,
			Kind:      dtest.Kind(sr.Kind),
			Trip:      dtest.TripReason(sr.Trip),
		}
		for _, bs := range sr.Vectors {
			v := make(depvec.Vector, len(bs))
			for l, b := range bs {
				v[l] = depvec.Direction(b)
			}
			r.Vectors = append(r.Vectors, v)
		}
		for j := range sr.DistLevel {
			r.Distances = append(r.Distances, depvec.Distance{Level: sr.DistLevel[j], Value: sr.DistValue[j]})
		}
		out[i] = r
	}
	return out
}

// Summarize computes a unit's cost profile from its results.
func Summarize(results []core.Result) CostSummary {
	c := CostSummary{Pairs: len(results)}
	for i := range results {
		r := &results[i]
		switch r.Outcome {
		case dtest.Independent:
			c.Independent++
		case dtest.Dependent:
			c.Dependent++
		case dtest.Maybe:
			c.Maybe++
		default:
			c.Unknown++
		}
		c.Vectors += len(r.Vectors)
		c.Distances += len(r.Distances)
	}
	return c
}
