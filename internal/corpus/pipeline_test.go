package corpus

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// pipelineSrc renders the i-th synthetic test file: constants vary so
// fingerprints differ, and every few files get a second nest so unit pair
// counts are not uniform.
func pipelineSrc(i int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "for i = 1 to %d\n  a[i+%d] = a[i] + 1\nend\n", 40+i, 1+i%5)
	if i%3 == 0 {
		fmt.Fprintf(&b, "for j = 1 to %d\n  b[2*j] = b[2*j+%d]\nend\n", 30+i, 1+i%4)
	}
	return b.String()
}

// pipelineDir writes n generated files (some nested in subdirectories) and
// returns the root plus the sorted relative names Dir must report.
func pipelineDir(t *testing.T, n int) (string, []string) {
	t.Helper()
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rel := fmt.Sprintf("u%02d.loop", i)
		if i%4 == 1 {
			rel = filepath.Join("sub", rel)
		}
		if err := os.WriteFile(filepath.Join(root, rel), []byte(pipelineSrc(i)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	items, err := Dir(root).(Lister).List()
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(items))
	for i, it := range items {
		names[i] = it.Name
	}
	return root, names
}

// TestParallelLoadDeterministic is the race-mode hammer over the parallel
// sources: Dir and Files loading must yield byte-identical unit order and
// content at every worker count (the pool fills a pre-sized slice in a
// fixed order), repeatedly, against a serial FromSource reference.
func TestParallelLoadDeterministic(t *testing.T) {
	const n = 24
	root, names := pipelineDir(t, n)

	// Serial reference: read + parse each listed file on this goroutine.
	items, err := Dir(root).(Lister).List()
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]Unit, len(items))
	for i := range items {
		b, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(items[i].Name)))
		if err != nil {
			t.Fatal(err)
		}
		u, err := FromSource(items[i].Name, string(b))
		if err != nil {
			t.Fatal(err)
		}
		ref[i] = u
	}

	var f Fingerprinter
	refFP := make([]string, len(ref))
	for i := range ref {
		refFP[i] = f.Unit(ref[i]).String()
	}

	for iter := 0; iter < 8; iter++ {
		units, err := Dir(root).Units()
		if err != nil {
			t.Fatal(err)
		}
		if len(units) != n {
			t.Fatalf("iter %d: %d units, want %d", iter, len(units), n)
		}
		for i := range units {
			if units[i].Name != names[i] {
				t.Fatalf("iter %d: unit %d named %q, want %q", iter, i, units[i].Name, names[i])
			}
			if got := f.Unit(units[i]).String(); got != refFP[i] {
				t.Fatalf("iter %d: unit %q parsed differently under the pool", iter, units[i].Name)
			}
		}
	}

	// Files over an explicit (deliberately unsorted) path list keeps the
	// given order.
	paths := make([]string, 0, len(names))
	for i := len(names) - 1; i >= 0; i-- {
		paths = append(paths, filepath.Join(root, filepath.FromSlash(names[i])))
	}
	fu, err := Files(paths...).Units()
	if err != nil {
		t.Fatal(err)
	}
	for i := range fu {
		if fu[i].Name != paths[i] {
			t.Fatalf("Files unit %d named %q, want %q", i, fu[i].Name, paths[i])
		}
	}
}

// TestParallelLoadErrorPath: one unparsable file must surface the same
// error the serial loop stops on — the lowest-index failure — from both the
// parallel Units() and the pipelined driver, at every worker count, and no
// loader goroutine may outlive the call.
func TestParallelLoadErrorPath(t *testing.T) {
	const n = 16
	root, names := pipelineDir(t, n)
	// Corrupt two files; the earlier one (in sorted order) must win.
	badEarly, badLate := names[3], names[11]
	for _, rel := range []string{badLate, badEarly} {
		if err := os.WriteFile(filepath.Join(root, filepath.FromSlash(rel)), []byte("for i = 1 to\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Serial reference error.
	_, refErr := FromSource(badEarly, "for i = 1 to\n")
	if refErr == nil {
		t.Fatal("corrupt source parsed")
	}

	before := runtime.NumGoroutine()
	if _, err := Dir(root).Units(); err == nil || err.Error() != refErr.Error() {
		t.Fatalf("parallel Units() error = %v, want %v", err, refErr)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		d := NewDriver(testOpts, workers)
		emitted := 0
		err := d.Run(context.Background(), Dir(root), func(UnitResult) error {
			emitted++
			return nil
		})
		if err == nil || err.Error() != refErr.Error() {
			t.Fatalf("workers=%d: driver error = %v, want %v", workers, err, refErr)
		}
		// The pipelined run may stream results for units preceding the
		// failure, but never past it.
		if emitted > 3 {
			t.Fatalf("workers=%d: %d units emitted past the failing index", workers, emitted)
		}
	}
	// Every pool joins before returning: goroutine count settles back.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("loader goroutines leaked: %d before, %d after", before, got)
	}
}

// TestPipelineCanonicalIdentity is the byte-identity acceptance check of
// the pipelined driver: cold and warm canonical bytes at workers 2/4/8 —
// from Dir, Files, and Mem sources alike — must equal the workers=1 serial
// run's, with identical unit/pair counters and store traffic.
func TestPipelineCanonicalIdentity(t *testing.T) {
	const n = 30
	root, names := pipelineDir(t, n)
	paths := make([]string, len(names))
	for i, rel := range names {
		paths[i] = filepath.Join(root, filepath.FromSlash(rel))
	}
	memUnits, err := Dir(root).Units()
	if err != nil {
		t.Fatal(err)
	}

	sources := map[string]Source{
		"dir":   Dir(root),
		"files": Files(paths...),
		"mem":   Mem(memUnits),
	}

	for name, src := range sources {
		// Serial cold reference (no store).
		refDriver := NewDriver(testOpts, 1)
		want, err := refDriver.Canonical(context.Background(), src)
		if err != nil {
			t.Fatal(err)
		}
		wantStats := refDriver.Stats
		wantStats.Stage = StageTimes{}

		for _, workers := range []int{2, 4, 8} {
			// Cold, filling a store.
			d := NewDriver(testOpts, workers)
			if err := d.SetStore(NewStore(testOpts)); err != nil {
				t.Fatal(err)
			}
			got, err := d.Canonical(context.Background(), src)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s workers=%d: cold canonical bytes diverged from serial", name, workers)
			}
			cs := d.Stats
			cs.Stage = StageTimes{}
			if cs != wantStats {
				t.Fatalf("%s workers=%d: cold stats %+v, want %+v", name, workers, cs, wantStats)
			}
			if d.Store().Len() == 0 {
				t.Fatalf("%s workers=%d: cold run stored nothing", name, workers)
			}
			storeLen := d.Store().Len()

			// Warm over the filled store: everything served, same bytes.
			warm, err := d.Canonical(context.Background(), src)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(warm, want) {
				t.Fatalf("%s workers=%d: warm canonical bytes diverged", name, workers)
			}
			if d.Stats.UnitsReused != n || d.Stats.UnitsSolved != 0 {
				t.Fatalf("%s workers=%d: warm stats %+v", name, workers, d.Stats)
			}
			if d.Store().Len() != storeLen {
				t.Fatalf("%s workers=%d: warm run changed store traffic (%d -> %d entries)",
					name, workers, storeLen, d.Store().Len())
			}
		}
	}
}

// TestPipelineStreamsInOrder pins the ordered-emit contract: results arrive
// in corpus order, and an emit rejection aborts the run with that error.
func TestPipelineStreamsInOrder(t *testing.T) {
	root, names := pipelineDir(t, 20)
	d := NewDriver(testOpts, 4)
	var got []string
	if err := d.Run(context.Background(), Dir(root), func(ur UnitResult) error {
		got = append(got, ur.Name)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(names) {
		t.Fatalf("emitted %d units, want %d", len(got), len(names))
	}
	for i := range got {
		if got[i] != names[i] {
			t.Fatalf("emit %d was %q, want %q (out of corpus order)", i, got[i], names[i])
		}
	}

	rejected := fmt.Errorf("stop here")
	seen := 0
	err := d.Run(context.Background(), Dir(root), func(UnitResult) error {
		seen++
		if seen == 3 {
			return rejected
		}
		return nil
	})
	if err != rejected {
		t.Fatalf("emit rejection returned %v, want %v", err, rejected)
	}
	if seen != 3 {
		t.Fatalf("emit called %d times after rejection, want exactly 3", seen)
	}
}

// TestFingerprintWithoutStore pins the satellite fix: UnitResult.Fingerprint
// is the unit's real digest even when no store is attached, at every worker
// count.
func TestFingerprintWithoutStore(t *testing.T) {
	units := memUnits(t)
	var f Fingerprinter
	want := make([]string, len(units))
	for i := range units {
		want[i] = f.Unit(units[i]).String()
	}
	for _, workers := range []int{1, 4} {
		d := NewDriver(testOpts, workers)
		urs, err := d.RunAll(context.Background(), units)
		if err != nil {
			t.Fatal(err)
		}
		for i, ur := range urs {
			if ur.Fingerprint.IsZero() {
				t.Fatalf("workers=%d: unit %s has a zero fingerprint without a store", workers, ur.Name)
			}
			if ur.Fingerprint.String() != want[i] {
				t.Fatalf("workers=%d: unit %s fingerprint %s, want %s",
					workers, ur.Name, ur.Fingerprint, want[i])
			}
		}
	}
}

// TestStageTimes: with TimeStages set, a store-backed file run populates
// every pipeline stage; with it off (the default) only Wall is measured.
func TestStageTimes(t *testing.T) {
	root, _ := pipelineDir(t, 12)
	for _, workers := range []int{1, 4} {
		d := NewDriver(testOpts, workers)
		if err := d.SetStore(NewStore(testOpts)); err != nil {
			t.Fatal(err)
		}
		d.TimeStages = true
		if _, err := d.RunAll(context.Background(), Dir(root)); err != nil {
			t.Fatal(err)
		}
		st := d.Stats.Stage
		if st.Load <= 0 || st.Fingerprint <= 0 || st.Probe <= 0 || st.Solve <= 0 || st.Emit <= 0 || st.Wall <= 0 {
			t.Fatalf("workers=%d: cold stage times not all populated: %+v", workers, st)
		}
		// Warm run: everything served, so Solve stays zero.
		if _, err := d.RunAll(context.Background(), Dir(root)); err != nil {
			t.Fatal(err)
		}
		if st := d.Stats.Stage; st.Solve != 0 || st.Probe <= 0 {
			t.Fatalf("workers=%d: warm stage times: %+v", workers, st)
		}

		d2 := NewDriver(testOpts, workers)
		if _, err := d2.RunAll(context.Background(), Dir(root)); err != nil {
			t.Fatal(err)
		}
		if st := d2.Stats.Stage; st.Load != 0 || st.Fingerprint != 0 || st.Probe != 0 || st.Solve != 0 || st.Emit != 0 {
			t.Fatalf("workers=%d: stage accounting ran without TimeStages: %+v", workers, st)
		}
		if d2.Stats.Stage.Wall <= 0 {
			t.Fatal("Wall must always be measured")
		}
	}
}
