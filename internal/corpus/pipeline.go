package corpus

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"exactdep/internal/core"
	"exactdep/internal/memo"
	"exactdep/internal/refs"
)

// The pipelined corpus run (workers > 1). Three stages overlap:
//
//	front end (pool of N workers)      solver (the Run goroutine)
//	┌───────────────────────────┐      ┌───────────────────────────────┐
//	│ claim index i (atomic)    │      │ walk slots in corpus order    │
//	│ load unit i (Lister only) │ ───▶ │ hit  → serve / queue          │
//	│ fingerprint (cached)      │ slot │ miss → append to chunk        │
//	│ probe store (read-only)   │ ready│ chunk full → AnalyzeAll batch │
//	└───────────────────────────┘      │ emit finished prefix in order │
//	                                   └───────────────────────────────┘
//
// Determinism invariants, in force at every worker count:
//
//   - Unit order is fixed before any loading starts (sorted walk, path
//     list, or the in-memory slice), and workers fill a pre-sized slot
//     array, so order never depends on scheduling.
//   - The solver consumes slots strictly in corpus order, so miss batches
//     contain the same candidates in the same order as the serial run's
//     single batch, just split at chunk boundaries; analyzer results are
//     deterministic and memo-state independent, so the split cannot change
//     a verdict, a vector, or a distance.
//   - Store lookups and store writes never overlap: the front end only
//     reads the store, and the solver defers its Puts until every front-end
//     worker has been joined. A unit can therefore never hit an entry
//     written earlier in the same run — exactly the serial semantics, and
//     what keeps UnitsSolved/PairsSolved identical.
//   - Emit happens on the solver goroutine only, in corpus order, as each
//     prefix completes: the caller's emit callback needs no locking.
//   - On a load error the solver stops at the lowest failing index —
//     workers never abandon a claimed slot, so every slot before it is
//     complete — and returns the same error the serial loop would have
//     stopped on, after joining the pool (no goroutine outlives Run).

// solveChunkPairs is the miss-batch size that triggers an analyzer batch
// while the front end is still running. Large enough that per-batch
// overhead (worker spin-up, provenance post-pass) stays marginal, small
// enough that solving overlaps loading on corpora of a few thousand pairs.
const solveChunkPairs = 512

// feSlot is one unit's front-end product, written by exactly one pool
// worker and read by the solver only after the slot is marked ready.
type feSlot struct {
	u      *Unit // the loaded unit: &preloaded[i], or &owned for Lister items
	owned  Unit
	fp     memo.Fingerprint
	stored *StoredUnit // store hit, if any
	err    error       // load failure
}

// pipelineTimes aggregates front-end stage time across workers.
type pipelineTimes struct {
	load, fingerprint, probe atomic.Int64 // nanoseconds
}

// runPipelined is the workers > 1 Run path. See the package comment above
// for the stage diagram and the determinism invariants.
func (d *Driver) runPipelined(ctx context.Context, src Source, emit func(UnitResult) error, workers int) error {
	// Enumerate the corpus. Lister sources stay lazy — the pool pays the
	// read+parse per unit; plain sources are materialized here (Mem is a
	// no-op, and Dir/Files without List would not reach this path anyway).
	var (
		items     []Item
		preloaded []Unit
		times     pipelineTimes
	)
	if l, ok := src.(Lister); ok {
		var err error
		if items, err = l.List(); err != nil {
			return err
		}
		d.Stats.Units = len(items)
	} else {
		t0 := time.Now()
		var err error
		if preloaded, err = src.Units(); err != nil {
			return err
		}
		if d.TimeStages {
			times.load.Add(time.Since(t0).Nanoseconds())
		}
		d.Stats.Units = len(preloaded)
	}
	n := d.Stats.Units

	slots := make([]feSlot, n)
	ready := make([]bool, n)
	var (
		mu   sync.Mutex
		cond = sync.NewCond(&mu)
		next atomic.Int64
		stop atomic.Bool // solver failed; workers stop claiming
		wg   sync.WaitGroup
	)
	markReady := func(i int) {
		mu.Lock()
		ready[i] = true
		mu.Unlock()
		cond.Broadcast()
	}

	fe := workers
	if fe > n {
		fe = n
	}
	for w := 0; w < fe; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var fpr Fingerprinter // per-worker scratch (hasher chain)
			timed := d.TimeStages
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				s := &slots[i]
				if preloaded != nil {
					s.u = &preloaded[i]
				} else {
					var t0 time.Time
					if timed {
						t0 = time.Now()
					}
					u, err := items[i].Load()
					if timed {
						times.load.Add(time.Since(t0).Nanoseconds())
					}
					if err != nil {
						s.err = err
						markReady(i)
						continue
					}
					s.owned = u
					s.u = &s.owned
				}
				var t1 time.Time
				if timed {
					t1 = time.Now()
				}
				// Cached on the Unit, so a long-lived in-memory corpus pays
				// the digest walk once per unit across runs; workers touch
				// disjoint slice elements, so the in-place caching is
				// race-free.
				s.fp = s.u.Fingerprint(&fpr)
				if timed {
					t2 := time.Now()
					times.fingerprint.Add(t2.Sub(t1).Nanoseconds())
					t1 = t2
				}
				if d.store != nil {
					// Read-only for the whole front end: Puts are deferred
					// until the pool is joined, so this probe is lock-free.
					if su, ok := d.store.Lookup(s.fp); ok && len(su.Results) == len(s.u.Cands) {
						s.stored = su
					}
					if timed {
						times.probe.Add(time.Since(t1).Nanoseconds())
					}
				}
				markReady(i)
			}
		}()
	}

	err := d.solve(ctx, slots, ready, &mu, cond, emit, workers)
	stop.Store(true)
	wg.Wait()
	if d.TimeStages {
		d.Stats.Stage.Load = time.Duration(times.load.Load())
		d.Stats.Stage.Fingerprint = time.Duration(times.fingerprint.Load())
		d.Stats.Stage.Probe = time.Duration(times.probe.Load())
	}
	return err
}

// deferredPut is one solved unit's store insert, applied only after the
// front-end pool is joined (no concurrent Lookup can observe it).
type deferredPut struct {
	fp memo.Fingerprint
	su StoredUnit
}

// pendingUnit is a unit the solver has walked but not yet emitted: either a
// store hit queued behind unsolved misses, or a miss waiting for its chunk.
type pendingUnit struct {
	slot *feSlot
	off  int // offset into the current miss chunk; -1 for store hits
}

// solve is the solver stage: walk slots in corpus order, batch misses into
// chunks, overlap analyzer batches with the still-running front end, and
// emit results in order as each prefix completes. Returns the first error
// in corpus order (load failure, analyzer failure, or emit rejection).
func (d *Driver) solve(ctx context.Context, slots []feSlot, ready []bool,
	mu *sync.Mutex, cond *sync.Cond, emit func(UnitResult) error, workers int) error {
	var (
		chunk []refs.Candidate
		queue []pendingUnit
		puts  []deferredPut
	)
	timed := d.TimeStages

	// emitUnit builds and emits one unit's result; solved is the chunk's
	// result slice for misses (nil serves from the store).
	emitUnit := func(p pendingUnit, solved []core.Result) error {
		s := p.slot
		ur := UnitResult{Name: s.u.Name, Fingerprint: s.fp, Warnings: s.u.Warnings}
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		if p.off < 0 {
			ur.Reused = true
			ur.Results = Serve(s.u.Cands, s.stored)
			ur.Cost = s.stored.Cost
		} else {
			ur.Results = solved[p.off : p.off+len(s.u.Cands)]
			ur.Cost = Summarize(ur.Results)
			if d.store != nil && Storable(ur.Results) {
				puts = append(puts, deferredPut{s.fp, ToStored(s.u.Name, ur.Results)})
			}
		}
		var err error
		if emit != nil {
			err = emit(ur)
		}
		if timed {
			d.Stats.Stage.Emit += time.Since(t0)
		}
		return err
	}

	// flush solves the accumulated miss chunk (if any) and drains the emit
	// queue in corpus order.
	flush := func() error {
		var solved []core.Result
		if len(chunk) > 0 {
			t0 := time.Now()
			var err error
			solved, err = d.analyzer.AnalyzeAllContext(ctx, chunk, workers)
			if timed {
				d.Stats.Stage.Solve += time.Since(t0)
			}
			if err != nil {
				return err
			}
		}
		for _, p := range queue {
			if err := emitUnit(p, solved); err != nil {
				return err
			}
		}
		queue = queue[:0]
		chunk = chunk[:0]
		return nil
	}

	var err error
	for i := range slots {
		mu.Lock()
		for !ready[i] {
			cond.Wait()
		}
		mu.Unlock()
		s := &slots[i]
		if s.err != nil {
			// Lowest failing index: every earlier slot was walked already,
			// so this is the same error the serial loop stops on.
			err = s.err
			break
		}
		if s.stored != nil {
			d.Stats.UnitsReused++
			d.Stats.PairsServed += len(s.u.Cands)
			if emit == nil {
				// No consumer: a stats-only run pays nothing to rebuild
				// served results.
				continue
			}
			p := pendingUnit{slot: s, off: -1}
			if len(chunk) == 0 {
				// Nothing unsolved ahead of it — the prefix is complete,
				// stream it out immediately.
				if err = emitUnit(p, nil); err != nil {
					break
				}
			} else {
				queue = append(queue, p)
			}
			continue
		}
		d.Stats.UnitsSolved++
		d.Stats.PairsSolved += len(s.u.Cands)
		queue = append(queue, pendingUnit{slot: s, off: len(chunk)})
		chunk = append(chunk, s.u.Cands...)
		if len(chunk) >= solveChunkPairs {
			if err = flush(); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = flush()
	}
	if err == nil && d.store != nil {
		// Every slot was walked, so every slot is ready, so every worker
		// has passed its last store probe (workers only touch the store
		// between claiming a slot and marking it ready) — the deferred
		// Puts cannot race a Lookup. On the error path puts are dropped
		// entirely, matching the serial run's abort-before-store behavior.
		for i := range puts {
			d.store.Put(puts[i].fp, puts[i].su)
		}
	}
	return err
}
