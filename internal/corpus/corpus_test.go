package corpus

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"exactdep/internal/core"
	"exactdep/internal/dtest"
	"exactdep/internal/memo"
)

var testOpts = core.Options{
	Memoize: true, ImprovedMemo: true,
	DirectionVectors: true, PruneUnused: true, PruneDistance: true,
}

const srcA = "for i = 1 to 100\n  a[i+1] = a[i] + 3\nend\n"
const srcB = "for i = 1 to 50\n  b[2*i] = b[2*i+1] + 1\nend\n"

func memUnits(t *testing.T) Mem {
	t.Helper()
	ua, err := FromSource("a", srcA)
	if err != nil {
		t.Fatal(err)
	}
	ub, err := FromSource("b", srcB)
	if err != nil {
		t.Fatal(err)
	}
	return Mem{ua, ub}
}

func TestDirSource(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile := func(rel, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(root, rel), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("z.loop", srcA)
	writeFile(filepath.Join("sub", "a.loop"), srcB)
	writeFile("ignored.txt", "not a loop file")

	units, err := Dir(root).Units()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("got %d units, want 2", len(units))
	}
	// Sorted relative slash paths, recursive, non-.loop files skipped.
	if units[0].Name != "sub/a.loop" || units[1].Name != "z.loop" {
		t.Fatalf("unit order %q, %q", units[0].Name, units[1].Name)
	}
	if len(units[0].Cands) == 0 || len(units[1].Cands) == 0 {
		t.Fatal("units enumerated no candidates")
	}

	if _, err := Dir(t.TempDir()).Units(); err == nil {
		t.Fatal("empty directory must error")
	}

	paths := []string{filepath.Join(root, "z.loop"), filepath.Join(root, "sub", "a.loop")}
	fu, err := Files(paths...).Units()
	if err != nil {
		t.Fatal(err)
	}
	if len(fu) != 2 || fu[0].Name != paths[0] || fu[1].Name != paths[1] {
		t.Fatalf("Files units: %+v", fu)
	}

	if _, err := FromSource("bad", "for i = \n"); err == nil {
		t.Fatal("syntax error must surface")
	}
}

// TestFingerprintSensitivity: identical units agree, and every
// verdict-relevant edit — a subscript constant, a loop bound, a symbol, the
// pair population — moves the fingerprint.
func TestFingerprintSensitivity(t *testing.T) {
	var f Fingerprinter
	base := func() Unit {
		u, err := FromSource("u", srcA)
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	fp := f.Unit(base())
	if fp.IsZero() {
		t.Fatal("fingerprint of a nonempty unit is zero")
	}
	if got := f.Unit(base()); got != fp {
		t.Fatalf("identical units fingerprint differently: %s vs %s", got, fp)
	}
	// A renamed unit (same structure) keeps its fingerprint: hits are
	// content-addressed.
	ren := base()
	ren.Name = "renamed"
	if got := f.Unit(ren); got != fp {
		t.Fatal("unit name must not enter the fingerprint")
	}

	edits := map[string]func(*Unit){
		"subscript constant": func(u *Unit) {
			s := u.Cands[0].Pair.A.Ref.Subscripts
			s[0] = s[0].Clone()
			s[0].Const++
		},
		"loop bound": func(u *Unit) {
			u.Cands[0].Pair.A.Loops[0].Upper.Const++
		},
		"coefficient": func(u *Unit) {
			s := u.Cands[0].Pair.B.Ref.Subscripts
			s[0] = s[0].Clone()
			for v := range s[0].Terms {
				s[0].Terms[v]++
			}
		},
		"dropped pair": func(u *Unit) {
			u.Cands = u.Cands[:len(u.Cands)-1]
		},
		"symbol set": func(u *Unit) {
			u.Cands[0].Pair.Symbols = append(u.Cands[0].Pair.Symbols, "n")
		},
	}
	for name, edit := range edits {
		u := base()
		edit(&u)
		if got := f.Unit(u); got == fp {
			t.Errorf("%s edit did not change the fingerprint", name)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	units := memUnits(t)
	d := NewDriver(testOpts, 1)
	if err := d.SetStore(NewStore(testOpts)); err != nil {
		t.Fatal(err)
	}
	cold, err := d.RunAll(context.Background(), units)
	if err != nil {
		t.Fatal(err)
	}
	if d.Stats.UnitsSolved != len(units) || d.Stats.UnitsReused != 0 {
		t.Fatalf("cold stats: %+v", d.Stats)
	}

	var buf bytes.Buffer
	if err := d.Store().Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(bytes.NewReader(buf.Bytes()), testOpts)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != d.Store().Len() {
		t.Fatalf("round-trip lost units: %d vs %d", loaded.Len(), d.Store().Len())
	}

	// A fresh driver over the loaded store must serve everything.
	d2 := NewDriver(testOpts, 1)
	if err := d2.SetStore(loaded); err != nil {
		t.Fatal(err)
	}
	warm, err := d2.RunAll(context.Background(), units)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Stats.UnitsReused != len(units) || d2.Stats.UnitsSolved != 0 {
		t.Fatalf("warm stats: %+v", d2.Stats)
	}
	if d2.Analyzer().Stats.Pairs != 0 {
		t.Fatalf("warm run analyzed %d pairs, want 0", d2.Analyzer().Stats.Pairs)
	}
	var cb, wb []byte
	for i := range cold {
		cb = AppendCanonical(cb, &cold[i])
		wb = AppendCanonical(wb, &warm[i])
	}
	if !bytes.Equal(cb, wb) {
		t.Fatalf("canonical bytes diverged:\ncold:\n%s\nwarm:\n%s", cb, wb)
	}
	for i := range warm {
		if !warm[i].Reused {
			t.Fatalf("unit %s not served from store", warm[i].Name)
		}
		for _, r := range warm[i].Results {
			if r.DecidedBy != core.ByCache {
				t.Fatalf("store-served result reports %v", r.DecidedBy)
			}
		}
	}

	// Signature scoping: a different configuration must reject the snapshot
	// and must be rejected by SetStore.
	other := testOpts
	other.DirectionVectors = false
	if _, err := LoadStore(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("signature mismatch must be rejected by LoadStore")
	}
	d3 := NewDriver(other, 1)
	if err := d3.SetStore(loaded); err == nil {
		t.Fatal("signature mismatch must be rejected by SetStore")
	}
	if _, err := LoadStore(bytes.NewReader([]byte("junk")), testOpts); err == nil {
		t.Fatal("garbage input must error")
	}
}

// TestDriverIncremental: editing one unit re-solves exactly that unit, and
// the incremental results match a cold run of the edited corpus
// byte-for-byte.
func TestDriverIncremental(t *testing.T) {
	units := memUnits(t)
	d := NewDriver(testOpts, 1)
	if err := d.SetStore(NewStore(testOpts)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunAll(context.Background(), units); err != nil {
		t.Fatal(err)
	}

	// Edit unit 0: shift the write subscript.
	edited := make(Mem, len(units))
	copy(edited, units)
	eu, err := FromSource("a", "for i = 1 to 100\n  a[i+2] = a[i] + 3\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	edited[0] = eu

	warm, err := d.Canonical(context.Background(), edited)
	if err != nil {
		t.Fatal(err)
	}
	if d.Stats.UnitsSolved != 1 || d.Stats.UnitsReused != len(units)-1 {
		t.Fatalf("incremental stats: %+v", d.Stats)
	}

	coldDriver := NewDriver(testOpts, 1)
	cold, err := coldDriver.Canonical(context.Background(), edited)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(warm, cold) {
		t.Fatalf("incremental output diverged from cold run:\nwarm:\n%s\ncold:\n%s", warm, cold)
	}
}

// TestDriverNeverStoresCancelled: results degraded by cancellation must not
// enter the store.
func TestDriverNeverStoresCancelled(t *testing.T) {
	units := memUnits(t)
	d := NewDriver(testOpts, 1)
	if err := d.SetStore(NewStore(testOpts)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	urs, err := d.RunAll(ctx, units)
	if err != nil {
		t.Fatal(err)
	}
	for _, ur := range urs {
		for _, r := range ur.Results {
			if r.Trip != dtest.TripCancelled {
				t.Fatalf("expected cancelled results, got %+v", r)
			}
		}
	}
	if d.Store().Len() != 0 {
		t.Fatalf("cancelled results entered the store: %d units", d.Store().Len())
	}
}

// TestFingerprintCollisionGuard: a stored unit whose pair count disagrees
// with the current candidates is treated as a miss, not served stale.
func TestFingerprintCollisionGuard(t *testing.T) {
	units := memUnits(t)
	var f Fingerprinter
	fp := f.Unit(units[0])
	s := NewStore(testOpts)
	s.Put(fp, StoredUnit{Name: "bogus", Results: make([]StoredResult, len(units[0].Cands)+1)})
	d := NewDriver(testOpts, 1)
	if err := d.SetStore(s); err != nil {
		t.Fatal(err)
	}
	urs, err := d.RunAll(context.Background(), units[:1])
	if err != nil {
		t.Fatal(err)
	}
	if urs[0].Reused {
		t.Fatal("mismatched stored unit was served")
	}
	if d.Stats.UnitsSolved != 1 {
		t.Fatalf("stats: %+v", d.Stats)
	}
}

func TestFingerprintString(t *testing.T) {
	fp := memo.Fingerprint{Hi: 0xabc, Lo: 1}
	if got, want := fp.String(), "0000000000000abc0000000000000001"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if !(memo.Fingerprint{}).IsZero() || fp.IsZero() {
		t.Fatal("IsZero misreports")
	}
}
