// Package corpus is the whole-corpus layer over the analyzer: it abstracts
// "the set of programs a compiler session sees" into named units of
// candidate pairs, fingerprints each unit's dependence input
// (memo.Fingerprint — the whole-nest extension of the §5 canonical-key
// discipline), and drives incremental re-analysis against a persistent
// fingerprint → verdict Store so only changed units ever reach the test
// cascade.
//
// The pieces:
//
//   - Unit / Source: a corpus is any ordered set of named units. Dir and
//     Files adapt directory trees of loop-language DSL files; Mem adapts
//     in-memory unit slices (the workload package adapts the synthetic
//     PERFECT-style suite and the 4096-nest LargeCorpus).
//   - Fingerprinter: folds a unit's candidate systems — classes, common
//     depths, subscript equations, loop bounds, symbols — into a 128-bit
//     structural digest, straight off the IR with no system building, so
//     fingerprinting a corpus costs microseconds per unit.
//   - Store: fingerprint → per-unit verdicts, direction vectors, distances
//     and cost counters, with gob snapshot Save/Load (the same discipline
//     as core.SaveMemo) scoped to an Options signature.
//   - Driver: diffs fingerprints against the store, schedules only
//     changed/new units through core.AnalyzeAll (one batch, shared memo
//     tables, deterministic order, serial == concurrent byte-identical),
//     and serves everything else from the store.
//
// This is the IDE/CI re-analysis workflow the paper's §5 "store the hash
// table across compilations" remark scales into: real traffic is mostly
// re-analysis of slightly-changed programs, and the driver re-solves only
// what changed.
package corpus

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"exactdep/internal/lang"
	"exactdep/internal/memo"
	"exactdep/internal/opt"
	"exactdep/internal/refs"
)

// Unit is one named member of a corpus: the invalidation granule of
// incremental analysis. Cands are its candidate pairs in deterministic
// order; Warnings carries lowering warnings for reporting.
//
// A unit is immutable once built: edits must produce a fresh Unit value
// (re-read the file, or rebuild the candidate list as workload.MutateNests
// does). That contract is what lets the driver cache the unit's
// fingerprint in place, so a long-lived in-memory corpus pays the
// fingerprint walk once per unit, not once per run.
type Unit struct {
	Name     string
	Cands    []refs.Candidate
	Warnings []string

	fp memo.Fingerprint // cached digest; zero = not yet computed
}

// Fingerprint returns the unit's structural digest, computing it with f
// and caching it on first use.
func (u *Unit) Fingerprint(f *Fingerprinter) memo.Fingerprint {
	if u.fp.IsZero() {
		u.fp = f.Unit(*u)
	}
	return u.fp
}

// Source enumerates the units of a corpus in a deterministic order. Units
// is called once per Driver.Run, so sources backed by files re-read them on
// every run — which is exactly what lets the driver observe edits.
type Source interface {
	Units() ([]Unit, error)
}

// Mem is an in-memory corpus: the units themselves. The adapter for
// generated workloads and for tests that mutate units between runs.
type Mem []Unit

// Units returns the units as given.
func (m Mem) Units() ([]Unit, error) { return m, nil }

// FromSource parses and lowers one loop-language source into a unit named
// name, enumerating candidate pairs with write self-pairs included (the
// same population the single-unit facade analyzes).
func FromSource(name, src string) (Unit, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return Unit{}, fmt.Errorf("corpus: %s: %w", name, err)
	}
	u := opt.Lower(prog)
	return Unit{Name: name, Cands: refs.Pairs(u), Warnings: u.Warnings}, nil
}

// files is the Source over an explicit list of DSL file paths.
type files []string

// Files returns a Source over the given loop-language files, one unit per
// file in the given order, named by path.
func Files(paths ...string) Source { return files(paths) }

func (f files) Units() ([]Unit, error) {
	units := make([]Unit, 0, len(f))
	for _, path := range f {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("corpus: %w", err)
		}
		u, err := FromSource(path, string(b))
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// dir is the Source over a directory tree of DSL files.
type dir string

// DirExt is the file extension Dir treats as a loop-language unit.
const DirExt = ".loop"

// Dir returns a Source over every *.loop file under root (recursively),
// one unit per file in sorted relative-path order — the stable order that
// makes corpus output deterministic across runs and platforms.
func Dir(root string) Source { return dir(root) }

func (d dir) Units() ([]Unit, error) {
	var paths []string
	err := filepath.WalkDir(string(d), func(path string, e fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !e.IsDir() && strings.HasSuffix(e.Name(), DirExt) {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("corpus: walking %s: %w", string(d), err)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("corpus: no %s files under %s", DirExt, string(d))
	}
	units := make([]Unit, 0, len(paths))
	for _, path := range paths {
		rel, err := filepath.Rel(string(d), path)
		if err != nil {
			rel = path
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("corpus: %w", err)
		}
		u, err := FromSource(filepath.ToSlash(rel), string(b))
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}
