// Package corpus is the whole-corpus layer over the analyzer: it abstracts
// "the set of programs a compiler session sees" into named units of
// candidate pairs, fingerprints each unit's dependence input
// (memo.Fingerprint — the whole-nest extension of the §5 canonical-key
// discipline), and drives incremental re-analysis against a persistent
// fingerprint → verdict Store so only changed units ever reach the test
// cascade.
//
// The pieces:
//
//   - Unit / Source: a corpus is any ordered set of named units. Dir and
//     Files adapt directory trees of loop-language DSL files; Mem adapts
//     in-memory unit slices (the workload package adapts the synthetic
//     PERFECT-style suite and the 4096-nest LargeCorpus).
//   - Fingerprinter: folds a unit's candidate systems — classes, common
//     depths, subscript equations, loop bounds, symbols — into a 128-bit
//     structural digest, straight off the IR with no system building, so
//     fingerprinting a corpus costs microseconds per unit.
//   - Store: fingerprint → per-unit verdicts, direction vectors, distances
//     and cost counters, with gob snapshot Save/Load (the same discipline
//     as core.SaveMemo) scoped to an Options signature.
//   - Driver: diffs fingerprints against the store, schedules only
//     changed/new units through core.AnalyzeAll (one batch, shared memo
//     tables, deterministic order, serial == concurrent byte-identical),
//     and serves everything else from the store.
//
// This is the IDE/CI re-analysis workflow the paper's §5 "store the hash
// table across compilations" remark scales into: real traffic is mostly
// re-analysis of slightly-changed programs, and the driver re-solves only
// what changed.
package corpus

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"exactdep/internal/lang"
	"exactdep/internal/memo"
	"exactdep/internal/opt"
	"exactdep/internal/refs"
)

// Unit is one named member of a corpus: the invalidation granule of
// incremental analysis. Cands are its candidate pairs in deterministic
// order; Warnings carries lowering warnings for reporting.
//
// A unit is immutable once built: edits must produce a fresh Unit value
// (re-read the file, or rebuild the candidate list as workload.MutateNests
// does). That contract is what lets the driver cache the unit's
// fingerprint in place, so a long-lived in-memory corpus pays the
// fingerprint walk once per unit, not once per run.
type Unit struct {
	Name     string
	Cands    []refs.Candidate
	Warnings []string

	fp memo.Fingerprint // cached digest; zero = not yet computed
}

// Fingerprint returns the unit's structural digest, computing it with f
// and caching it on first use.
func (u *Unit) Fingerprint(f *Fingerprinter) memo.Fingerprint {
	if u.fp.IsZero() {
		u.fp = f.Unit(*u)
	}
	return u.fp
}

// Source enumerates the units of a corpus in a deterministic order. Units
// is called once per Driver.Run, so sources backed by files re-read them on
// every run — which is exactly what lets the driver observe edits.
type Source interface {
	Units() ([]Unit, error)
}

// Item is one lazily-loadable member of a corpus listing: the unit's name
// plus the deferred read+parse that materializes it. Load must be safe to
// call from any goroutine (items are loaded by a worker pool) and
// independent of every other item's Load.
type Item struct {
	Name string
	Load func() (Unit, error)
}

// Lister is the streaming face of a Source: sources that can enumerate
// their members cheaply (a directory walk, a path list) before paying the
// per-unit read+parse cost. The driver's pipelined front end loads,
// fingerprints, and store-probes Lister items with a worker pool while the
// solver is already chewing on earlier units; plain Sources are fully
// materialized first. Dir and Files implement it; Mem deliberately does
// not (its units already exist).
type Lister interface {
	Source
	List() ([]Item, error)
}

// loadItems materializes a listing with a bounded worker pool, preserving
// item order: workers claim indices atomically and fill a pre-sized slice,
// so the result is byte-identical to a serial loop at any worker count.
// workers <= 0 means runtime.GOMAXPROCS(0). On failure the error of the
// lowest-index failing item wins — the same error a serial loop would have
// stopped on — and every worker is joined before returning, so no goroutine
// outlives the call.
func loadItems(items []Item, workers int) ([]Unit, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	units := make([]Unit, len(items))
	if workers <= 1 {
		for i := range items {
			u, err := items[i].Load()
			if err != nil {
				return nil, err
			}
			units[i] = u
		}
		return units, nil
	}
	errs := make([]error, len(items))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				units[i], errs[i] = items[i].Load()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return units, nil
}

// Mem is an in-memory corpus: the units themselves. The adapter for
// generated workloads and for tests that mutate units between runs.
type Mem []Unit

// Units returns the units as given.
func (m Mem) Units() ([]Unit, error) { return m, nil }

// FromSource parses and lowers one loop-language source into a unit named
// name, enumerating candidate pairs with write self-pairs included (the
// same population the single-unit facade analyzes).
func FromSource(name, src string) (Unit, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return Unit{}, fmt.Errorf("corpus: %s: %w", name, err)
	}
	u := opt.Lower(prog)
	return Unit{Name: name, Cands: refs.Pairs(u), Warnings: u.Warnings}, nil
}

// loadFile is the Item.Load of the file-backed sources: read and parse one
// DSL file into the unit named name.
func loadFile(name, path string) func() (Unit, error) {
	return func() (Unit, error) {
		b, err := os.ReadFile(path)
		if err != nil {
			return Unit{}, fmt.Errorf("corpus: %w", err)
		}
		return FromSource(name, string(b))
	}
}

// files is the Source over an explicit list of DSL file paths.
type files []string

// Files returns a Source over the given loop-language files, one unit per
// file in the given order, named by path. Units reads and parses the files
// with a worker pool (List exposes the lazy form for the pipelined driver);
// unit order is the given path order regardless of worker count.
func Files(paths ...string) Source { return files(paths) }

func (f files) List() ([]Item, error) {
	items := make([]Item, len(f))
	for i, path := range f {
		items[i] = Item{Name: path, Load: loadFile(path, path)}
	}
	return items, nil
}

func (f files) Units() ([]Unit, error) {
	items, err := f.List()
	if err != nil {
		return nil, err
	}
	return loadItems(items, 0)
}

// dir is the Source over a directory tree of DSL files.
type dir string

// DirExt is the file extension Dir treats as a loop-language unit.
const DirExt = ".loop"

// Dir returns a Source over every *.loop file under root (recursively),
// one unit per file in sorted relative-path order — the stable order that
// makes corpus output deterministic across runs and platforms. Units reads
// and parses the files with a worker pool (List exposes the lazy form for
// the pipelined driver); the sorted order is fixed by the walk, before any
// loading starts, so it is identical at every worker count.
func Dir(root string) Source { return dir(root) }

func (d dir) List() ([]Item, error) {
	var paths []string
	err := filepath.WalkDir(string(d), func(path string, e fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !e.IsDir() && strings.HasSuffix(e.Name(), DirExt) {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("corpus: walking %s: %w", string(d), err)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("corpus: no %s files under %s", DirExt, string(d))
	}
	items := make([]Item, len(paths))
	for i, path := range paths {
		rel, err := filepath.Rel(string(d), path)
		if err != nil {
			rel = path
		}
		items[i] = Item{Name: filepath.ToSlash(rel), Load: loadFile(filepath.ToSlash(rel), path)}
	}
	return items, nil
}

func (d dir) Units() ([]Unit, error) {
	items, err := d.List()
	if err != nil {
		return nil, err
	}
	return loadItems(items, 0)
}
