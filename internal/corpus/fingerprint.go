package corpus

import (
	"exactdep/internal/ir"
	"exactdep/internal/memo"
	"exactdep/internal/refs"
)

// Fingerprinter folds a unit's candidate systems into a memo.Fingerprint.
// It walks the IR directly — the same data system.Build and
// memo.Encoder.EncodeFull consume (subscript equations, loop bounds,
// variable kinds and levels, symbols), without materializing the Problem —
// so fingerprinting an unchanged corpus is orders of magnitude cheaper than
// even the memo-hot analysis pass it replaces.
//
// The digest is structural: any edit that could change a verdict, a
// direction vector, or the pair list (subscripts, bounds, nesting, symbol
// sets, reference kinds, pair order) changes the fingerprint. It is
// deliberately conservative the other way too — renaming an array or an
// index invalidates the unit even though the verdicts cannot change —
// because a cheap false re-solve is harmless while a stale hit is not.
//
// A Fingerprinter is scratch state (a hasher chain); not safe for
// concurrent use. The zero value is ready.
type Fingerprinter struct {
	h memo.FPHasher
}

// Unit digests every candidate of u in order.
func (f *Fingerprinter) Unit(u Unit) memo.Fingerprint {
	f.h.Reset()
	f.h.AddInt(int64(len(u.Cands)))
	for i := range u.Cands {
		f.candidate(&u.Cands[i])
	}
	return f.h.Sum()
}

func (f *Fingerprinter) candidate(c *refs.Candidate) {
	f.h.AddInt(int64(c.Class)<<32 | int64(c.Pair.Common))
	a, b := &c.Pair.A, &c.Pair.B
	f.ref(&a.Ref)
	f.loops(a.Loops)
	f.ref(&b.Ref)
	// Both sites' loop stacks come from Nest.LoopsFor — prefixes of one
	// backing array — so when B's stack is exactly A's, one marker stands
	// in for re-walking it. (-1 cannot alias a real stack: loops always
	// opens with a non-negative length.)
	if len(a.Loops) == len(b.Loops) && (len(a.Loops) == 0 || &a.Loops[0] == &b.Loops[0]) {
		f.h.AddInt(-1)
	} else {
		f.loops(b.Loops)
	}
	f.h.AddInt(int64(len(c.Pair.Symbols)))
	for _, s := range c.Pair.Symbols {
		f.h.AddString(s)
	}
}

func (f *Fingerprinter) ref(r *ir.Ref) {
	f.h.AddString(r.Array)
	f.h.AddInt(int64(r.Kind)<<40 | int64(r.Depth)<<20 | int64(len(r.Subscripts)))
	for i := range r.Subscripts {
		f.expr(&r.Subscripts[i])
	}
}

func (f *Fingerprinter) loops(ls []ir.Loop) {
	f.h.AddInt(int64(len(ls)))
	for i := range ls {
		l := &ls[i]
		f.h.AddString(l.Index)
		f.h.AddInt(b2i(l.NoLower)<<1 | b2i(l.NoUpper))
		f.expr(&l.Lower)
		f.expr(&l.Upper)
	}
}

// expr folds an affine expression: the constant, then the term map
// commutatively (term maps iterate in nondeterministic order), sealed by
// the negated term count. Constant expressions — the bulk of bounds and
// subscripts — cost one chain step and no map iterator; the seal only
// appears when terms were folded, and it is negative, so a sealed stream
// cannot alias a run of constant expressions.
func (f *Fingerprinter) expr(e *ir.Expr) {
	f.h.AddInt(e.Const)
	if len(e.Terms) > 0 {
		for v, c := range e.Terms {
			f.h.AddTerm(v, c)
		}
		f.h.AddInt(-int64(len(e.Terms)))
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
