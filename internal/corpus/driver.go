package corpus

import (
	"context"
	"fmt"
	"strconv"

	"exactdep/internal/core"
	"exactdep/internal/memo"
	"exactdep/internal/refs"
)

// Stats counts one Run's incremental traffic. The unit counters are what
// the incremental tests pin: mutating k of N units must show UnitsSolved ==
// k and UnitsReused == N-k.
type Stats struct {
	// Units is the corpus size this run.
	Units int
	// UnitsReused were served from the store without analysis.
	UnitsReused int
	// UnitsSolved went through the analyzer (changed, new, or no store).
	UnitsSolved int
	// PairsServed / PairsSolved split the pair population the same way.
	PairsServed int
	PairsSolved int
}

// UnitResult is one unit's outcome in corpus order.
type UnitResult struct {
	Name        string
	Fingerprint memo.Fingerprint
	// Reused reports that the results came from the store, not the
	// analyzer.
	Reused   bool
	Results  []core.Result
	Cost     CostSummary
	Warnings []string
}

// Driver is the incremental corpus driver: it diffs unit fingerprints
// against a persistent Store and schedules only changed or new units
// through the analyzer — one core.AnalyzeAll batch with shared memo tables,
// so unchanged-unit reuse (store hits) layers on top of cross-unit
// canonical-problem reuse (memo hits). Without a store every unit is
// solved fresh, and the driver is simply the batched corpus front end the
// suite runner and depanalyze share.
//
// A Driver is not safe for concurrent use; the analyzer's internal worker
// pool provides the parallelism.
type Driver struct {
	analyzer *core.Analyzer
	workers  int
	sig      string
	store    *Store
	fp       Fingerprinter

	// Stats describes the most recent Run.
	Stats Stats
}

// NewDriver returns a driver over a fresh analyzer configured by opts.
// workers is the analyzer pool size for each Run's batch (1 serial, <= 0
// GOMAXPROCS), with the same byte-identical-results guarantee as
// core.AnalyzeAll.
func NewDriver(opts core.Options, workers int) *Driver {
	return &Driver{analyzer: core.New(opts), workers: workers, sig: Signature(opts)}
}

// NewDriverOver wraps an existing analyzer, sharing its memo tables and
// counters — the adapter that lets per-program front ends (the suite
// runner, depanalyze's multi-unit mode) keep one compiler-session analyzer
// while routing scheduling through the corpus driver.
func NewDriverOver(a *core.Analyzer, workers int) *Driver {
	return &Driver{analyzer: a, workers: workers, sig: Signature(a.Options())}
}

// Analyzer exposes the underlying analyzer (memo persistence, stats,
// distribution reports).
func (d *Driver) Analyzer() *core.Analyzer { return d.analyzer }

// SetStore attaches a persistent verdict store. The store must carry the
// driver's own options signature — NewStore(sameOptions) or LoadStore with
// the same options guarantees that.
func (d *Driver) SetStore(s *Store) error {
	if s != nil && s.sig != d.sig {
		return fmt.Errorf("corpus: store signature %q does not match driver configuration %q", s.sig, d.sig)
	}
	d.store = s
	return nil
}

// Store returns the attached store (nil if none).
func (d *Driver) Store() *Store { return d.store }

// Run analyzes the corpus incrementally and emits one UnitResult per unit
// in corpus order. With a store attached, units whose fingerprint is
// already present are served from it; the rest are fingerprinted, solved in
// a single analyzer batch, and stored back (unless a verdict tripped on the
// clock or on cancellation). emit may be nil — the run then updates the
// store and Stats without materializing store-served results at all; a
// non-nil emit error aborts the run. Stats is reset at the start of each
// run.
func (d *Driver) Run(ctx context.Context, src Source, emit func(UnitResult) error) error {
	units, err := src.Units()
	if err != nil {
		return err
	}
	d.Stats = Stats{Units: len(units)}

	type slot struct {
		fp     memo.Fingerprint
		stored *StoredUnit
		off    int // offset into the miss batch when stored == nil
	}
	slots := make([]slot, len(units))
	var batch []refs.Candidate
	for i := range units {
		u := &units[i]
		if d.store != nil {
			slots[i].fp = u.Fingerprint(&d.fp)
			// The pair-count cross-check guards the (astronomically
			// unlikely) fingerprint collision and any hand-edited store.
			if su, ok := d.store.Lookup(slots[i].fp); ok && len(su.Results) == len(u.Cands) {
				slots[i].stored = su
				d.Stats.UnitsReused++
				d.Stats.PairsServed += len(u.Cands)
				continue
			}
		}
		slots[i].off = len(batch)
		batch = append(batch, u.Cands...)
		d.Stats.UnitsSolved++
		d.Stats.PairsSolved += len(u.Cands)
	}

	var solved []core.Result
	if len(batch) > 0 {
		solved, err = d.analyzer.AnalyzeAllContext(ctx, batch, d.workers)
		if err != nil {
			return err
		}
	}

	for i := range units {
		u := &units[i]
		ur := UnitResult{Name: u.Name, Fingerprint: slots[i].fp, Warnings: u.Warnings}
		if slots[i].stored != nil {
			if emit == nil {
				// No consumer: a stats-only run (e.g. "did anything
				// change?") pays nothing to rebuild served results.
				continue
			}
			ur.Reused = true
			ur.Results = serve(u.Cands, slots[i].stored)
			ur.Cost = slots[i].stored.Cost
		} else {
			ur.Results = solved[slots[i].off : slots[i].off+len(u.Cands)]
			ur.Cost = summarize(ur.Results)
			if d.store != nil && storable(ur.Results) {
				d.store.Put(slots[i].fp, toStored(u.Name, ur.Results))
			}
		}
		if emit != nil {
			if err := emit(ur); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunAll is Run collecting every UnitResult.
func (d *Driver) RunAll(ctx context.Context, src Source) ([]UnitResult, error) {
	var out []UnitResult
	err := d.Run(ctx, src, func(ur UnitResult) error {
		out = append(out, ur)
		return nil
	})
	return out, err
}

// AppendCanonical appends the canonical rendering of a unit result: the
// byte-identity surface of incremental analysis. It covers everything the
// store persists — outcome, exactness, trip, direction vectors, distances,
// per pair in order — and deliberately excludes provenance (DecidedBy, and
// Kind, which names the deciding test): provenance depends on session
// history, so a warm run legitimately reports ByCache where a cold run
// reports ByTest. Cold and warm runs over the same corpus produce identical
// canonical bytes at any worker count.
func AppendCanonical(dst []byte, ur *UnitResult) []byte {
	dst = append(dst, ur.Name...)
	dst = append(dst, '\n')
	for i := range ur.Results {
		r := &ur.Results[i]
		dst = strconv.AppendInt(dst, int64(i), 10)
		dst = append(dst, ' ')
		dst = append(dst, r.Outcome.String()...)
		if r.Exact {
			dst = append(dst, " exact"...)
		}
		if r.Trip != 0 {
			dst = append(dst, " trip="...)
			dst = strconv.AppendInt(dst, int64(r.Trip), 10)
		}
		for _, v := range r.Vectors {
			dst = append(dst, ' ')
			dst = append(dst, v.String()...)
		}
		for _, dist := range r.Distances {
			dst = append(dst, " d"...)
			dst = strconv.AppendInt(dst, int64(dist.Level), 10)
			dst = append(dst, '=')
			dst = strconv.AppendInt(dst, dist.Value, 10)
		}
		dst = append(dst, '\n')
	}
	return dst
}

// Canonical runs the corpus and returns the concatenated canonical
// rendering of every unit — the convenient form of the byte-identity
// guarantee for tests and tools.
func (d *Driver) Canonical(ctx context.Context, src Source) ([]byte, error) {
	var buf []byte
	err := d.Run(ctx, src, func(ur UnitResult) error {
		buf = AppendCanonical(buf, &ur)
		return nil
	})
	return buf, err
}
