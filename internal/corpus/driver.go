package corpus

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"time"

	"exactdep/internal/core"
	"exactdep/internal/memo"
	"exactdep/internal/refs"
)

// StageTimes breaks one Run's cost into pipeline stages. Load, Fingerprint
// and Probe are summed across front-end workers, so on a pipelined run they
// are CPU time and may exceed Wall; Solve and Emit are wall time on the
// solver goroutine; Wall is the whole Run. All fields except Wall are zero
// unless Driver.TimeStages is set (per-unit clock reads are measurable next
// to a warm store probe, so the accounting is opt-in, like
// core.Options.TimeCascade).
type StageTimes struct {
	// Load is reading + parsing units (file-backed sources; zero for
	// in-memory corpora, whose units already exist).
	Load time.Duration
	// Fingerprint is the structural digest pass (zero-cost for units whose
	// cached fingerprint is still valid).
	Fingerprint time.Duration
	// Probe is the fingerprint → verdict store lookups.
	Probe time.Duration
	// Solve is the analyzer batches over store misses.
	Solve time.Duration
	// Emit is rebuilding store-served results plus the caller's emit
	// callbacks.
	Emit time.Duration
	// Wall is the whole Run, always measured.
	Wall time.Duration
}

// Stats counts one Run's incremental traffic. The unit counters are what
// the incremental tests pin: mutating k of N units must show UnitsSolved ==
// k and UnitsReused == N-k.
type Stats struct {
	// Units is the corpus size this run.
	Units int
	// UnitsReused were served from the store without analysis.
	UnitsReused int
	// UnitsSolved went through the analyzer (changed, new, or no store).
	UnitsSolved int
	// PairsServed / PairsSolved split the pair population the same way.
	PairsServed int
	PairsSolved int
	// Stage is the per-stage pipeline timing (see StageTimes; stage
	// accounting needs Driver.TimeStages).
	Stage StageTimes
}

// UnitResult is one unit's outcome in corpus order.
type UnitResult struct {
	Name        string
	Fingerprint memo.Fingerprint
	// Reused reports that the results came from the store, not the
	// analyzer.
	Reused   bool
	Results  []core.Result
	Cost     CostSummary
	Warnings []string
}

// Driver is the incremental corpus driver: it diffs unit fingerprints
// against a persistent Store and schedules only changed or new units
// through the analyzer, so unchanged-unit reuse (store hits) layers on top
// of cross-unit canonical-problem reuse (memo hits). Without a store every
// unit is solved fresh, and the driver is simply the corpus front end the
// suite runner and depanalyze share.
//
// At workers == 1 a Run is fully serial: load everything, fingerprint and
// probe unit by unit, solve the misses in one analyzer batch, emit. At
// workers > 1 the whole path is pipelined (see pipeline.go): a worker pool
// loads, fingerprints, and store-probes units concurrently; the solver
// feeds accumulated miss batches to core.AnalyzeAllContext while later
// units are still in the front end; and results are emitted in corpus
// order as their prefix completes. Cold and warm canonical bytes — and the
// unit/pair counters above — are identical at every worker count.
//
// A Driver is not safe for concurrent use; its own worker pools provide
// the parallelism.
type Driver struct {
	analyzer *core.Analyzer
	workers  int
	sig      string
	store    *Store
	fp       Fingerprinter

	// Stats describes the most recent Run.
	Stats Stats
	// TimeStages enables per-stage wall-time accounting in Stats.Stage.
	// Off by default: the per-unit clock reads are measurable next to a
	// warm store probe (same rationale as core.Options.TimeCascade).
	TimeStages bool
}

// NewDriver returns a driver over a fresh analyzer configured by opts.
// workers sizes the whole pipeline — the front-end load/fingerprint/probe
// pool and the analyzer pool of each solve batch (1 serial, <= 0
// GOMAXPROCS) — with the same byte-identical-results guarantee as
// core.AnalyzeAll.
func NewDriver(opts core.Options, workers int) *Driver {
	return &Driver{analyzer: core.New(opts), workers: workers, sig: Signature(opts)}
}

// NewDriverOver wraps an existing analyzer, sharing its memo tables and
// counters — the adapter that lets per-program front ends (the suite
// runner, depanalyze's multi-unit mode) keep one compiler-session analyzer
// while routing scheduling through the corpus driver.
func NewDriverOver(a *core.Analyzer, workers int) *Driver {
	return &Driver{analyzer: a, workers: workers, sig: Signature(a.Options())}
}

// Analyzer exposes the underlying analyzer (memo persistence, stats,
// distribution reports).
func (d *Driver) Analyzer() *core.Analyzer { return d.analyzer }

// SetStore attaches a persistent verdict store. The store must carry the
// driver's own options signature — NewStore(sameOptions) or LoadStore with
// the same options guarantees that.
func (d *Driver) SetStore(s *Store) error {
	if s != nil && s.sig != d.sig {
		return fmt.Errorf("corpus: store signature %q does not match driver configuration %q", s.sig, d.sig)
	}
	d.store = s
	return nil
}

// Store returns the attached store (nil if none).
func (d *Driver) Store() *Store { return d.store }

// Run analyzes the corpus incrementally and emits one UnitResult per unit
// in corpus order. With a store attached, units whose fingerprint is
// already present are served from it; the rest are solved through the
// analyzer and stored back (unless a verdict tripped on the clock or on
// cancellation). emit may be nil — the run then updates the store and
// Stats without materializing store-served results at all; a non-nil emit
// error aborts the run. Stats is reset at the start of each run.
//
// At workers > 1 the run is pipelined: units are loaded, fingerprinted,
// and probed by a worker pool, miss batches overlap the rest of the front
// end in the analyzer, and UnitResults stream out in corpus order as their
// prefix completes. Canonical bytes, unit/pair counters, and store traffic
// are identical to the serial run; on a load failure, results for units
// preceding the failing one may already have been emitted before the
// (deterministic, lowest-index) error is returned, where the serial run
// emits nothing.
func (d *Driver) Run(ctx context.Context, src Source, emit func(UnitResult) error) error {
	start := time.Now()
	d.Stats = Stats{}
	workers := d.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var err error
	if workers <= 1 {
		err = d.runSerial(ctx, src, emit)
	} else {
		err = d.runPipelined(ctx, src, emit, workers)
	}
	d.Stats.Stage.Wall = time.Since(start)
	return err
}

// runSerial is the workers == 1 path: everything on the calling goroutine,
// one analyzer batch, no synchronization — the counter-for-counter
// reference the pipelined path is asserted against.
func (d *Driver) runSerial(ctx context.Context, src Source, emit func(UnitResult) error) error {
	t0 := time.Now()
	units, err := src.Units()
	if err != nil {
		return err
	}
	if d.TimeStages {
		d.Stats.Stage.Load = time.Since(t0)
	}
	d.Stats.Units = len(units)

	type slot struct {
		fp     memo.Fingerprint
		stored *StoredUnit
		off    int // offset into the miss batch when stored == nil
	}
	slots := make([]slot, len(units))
	var batch []refs.Candidate
	for i := range units {
		u := &units[i]
		var t1 time.Time
		if d.TimeStages {
			t1 = time.Now()
		}
		// The fingerprint is part of the unit's result surface even without
		// a store (UnitResult.Fingerprint), and it is cached on the Unit, so
		// compute it unconditionally.
		slots[i].fp = u.Fingerprint(&d.fp)
		if d.TimeStages {
			t2 := time.Now()
			d.Stats.Stage.Fingerprint += t2.Sub(t1)
			t1 = t2
		}
		if d.store != nil {
			// The pair-count cross-check guards the (astronomically
			// unlikely) fingerprint collision and any hand-edited store.
			su, ok := d.store.Lookup(slots[i].fp)
			if d.TimeStages {
				d.Stats.Stage.Probe += time.Since(t1)
			}
			if ok && len(su.Results) == len(u.Cands) {
				slots[i].stored = su
				d.Stats.UnitsReused++
				d.Stats.PairsServed += len(u.Cands)
				continue
			}
		}
		slots[i].off = len(batch)
		batch = append(batch, u.Cands...)
		d.Stats.UnitsSolved++
		d.Stats.PairsSolved += len(u.Cands)
	}

	var solved []core.Result
	if len(batch) > 0 {
		t1 := time.Now()
		solved, err = d.analyzer.AnalyzeAllContext(ctx, batch, 1)
		if d.TimeStages {
			d.Stats.Stage.Solve = time.Since(t1)
		}
		if err != nil {
			return err
		}
	}

	var emitStart time.Time
	if d.TimeStages {
		emitStart = time.Now()
	}
	for i := range units {
		u := &units[i]
		ur := UnitResult{Name: u.Name, Fingerprint: slots[i].fp, Warnings: u.Warnings}
		if slots[i].stored != nil {
			if emit == nil {
				// No consumer: a stats-only run (e.g. "did anything
				// change?") pays nothing to rebuild served results.
				continue
			}
			ur.Reused = true
			ur.Results = Serve(u.Cands, slots[i].stored)
			ur.Cost = slots[i].stored.Cost
		} else {
			ur.Results = solved[slots[i].off : slots[i].off+len(u.Cands)]
			ur.Cost = Summarize(ur.Results)
			if d.store != nil && Storable(ur.Results) {
				d.store.Put(slots[i].fp, ToStored(u.Name, ur.Results))
			}
		}
		if emit != nil {
			if err := emit(ur); err != nil {
				return err
			}
		}
	}
	if d.TimeStages {
		d.Stats.Stage.Emit = time.Since(emitStart)
	}
	return nil
}

// RunAll is Run collecting every UnitResult.
func (d *Driver) RunAll(ctx context.Context, src Source) ([]UnitResult, error) {
	var out []UnitResult
	err := d.Run(ctx, src, func(ur UnitResult) error {
		out = append(out, ur)
		return nil
	})
	return out, err
}

// AppendCanonical appends the canonical rendering of a unit result: the
// byte-identity surface of incremental analysis. It covers everything the
// store persists — outcome, exactness, trip, direction vectors, distances,
// per pair in order — and deliberately excludes provenance (DecidedBy, and
// Kind, which names the deciding test): provenance depends on session
// history, so a warm run legitimately reports ByCache where a cold run
// reports ByTest. Cold and warm runs over the same corpus produce identical
// canonical bytes at any worker count.
func AppendCanonical(dst []byte, ur *UnitResult) []byte {
	dst = append(dst, ur.Name...)
	dst = append(dst, '\n')
	for i := range ur.Results {
		r := &ur.Results[i]
		dst = strconv.AppendInt(dst, int64(i), 10)
		dst = append(dst, ' ')
		dst = append(dst, r.Outcome.String()...)
		if r.Exact {
			dst = append(dst, " exact"...)
		}
		if r.Trip != 0 {
			dst = append(dst, " trip="...)
			dst = strconv.AppendInt(dst, int64(r.Trip), 10)
		}
		for _, v := range r.Vectors {
			dst = append(dst, ' ')
			dst = append(dst, v.String()...)
		}
		for _, dist := range r.Distances {
			dst = append(dst, " d"...)
			dst = strconv.AppendInt(dst, int64(dist.Level), 10)
			dst = append(dst, '=')
			dst = strconv.AppendInt(dst, dist.Value, 10)
		}
		dst = append(dst, '\n')
	}
	return dst
}

// Canonical runs the corpus and returns the concatenated canonical
// rendering of every unit — the convenient form of the byte-identity
// guarantee for tests and tools.
func (d *Driver) Canonical(ctx context.Context, src Source) ([]byte, error) {
	var buf []byte
	err := d.Run(ctx, src, func(ur UnitResult) error {
		buf = AppendCanonical(buf, &ur)
		return nil
	})
	return buf, err
}
