package lang

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("for i = 1 to 10\n  a[i+1] = a[i] * 3  # comment\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]TokKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	want := []TokKind{
		TokFor, TokIdent, TokAssign, TokNumber, TokTo, TokNumber, TokNewline,
		TokIdent, TokLBracket, TokIdent, TokPlus, TokNumber, TokRBracket,
		TokAssign, TokIdent, TokLBracket, TokIdent, TokRBracket, TokStar,
		TokNumber, TokNewline, TokEnd, TokNewline, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexFoldsBlankLines(t *testing.T) {
	toks, err := LexAll("a = 1\n\n\n  # comment only\n\nb = 2\n")
	if err != nil {
		t.Fatal(err)
	}
	newlines := 0
	for _, tok := range toks {
		if tok.Kind == TokNewline {
			newlines++
		}
	}
	if newlines != 2 {
		t.Fatalf("newlines = %d, want 2 (folded)", newlines)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := LexAll("a = 1 @ 2"); err == nil {
		t.Fatal("unexpected character must error")
	}
	if _, err := LexAll("a = 99999999999999999999999"); err == nil {
		t.Fatal("number overflow must error")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("ab = 3\ncd = 4\n")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("first token pos = %v", toks[0].Pos)
	}
	// "cd" is the 5th token (ab, =, 3, \n, cd)
	if toks[4].Text != "cd" || toks[4].Pos.Line != 2 {
		t.Fatalf("cd pos = %v (%q)", toks[4].Pos, toks[4].Text)
	}
}

func TestParseSimpleLoop(t *testing.T) {
	prog, err := Parse(`
program first
for i = 1 to 10
  a[i] = a[i+10] + 3
end
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "first" {
		t.Fatalf("name = %q", prog.Name)
	}
	if len(prog.Stmts) != 1 {
		t.Fatalf("stmts = %d", len(prog.Stmts))
	}
	f, ok := prog.Stmts[0].(*For)
	if !ok {
		t.Fatalf("not a for: %T", prog.Stmts[0])
	}
	if f.Index != "i" || len(f.Body) != 1 {
		t.Fatalf("loop = %+v", f)
	}
	a := f.Body[0].(*Assign)
	if a.LHSArray == nil || a.LHSArray.Array != "a" || len(a.LHSArray.Subs) != 1 {
		t.Fatalf("assign lhs = %+v", a)
	}
}

func TestParseNested(t *testing.T) {
	prog, err := Parse(`
for i = 1 to n
  for j = i to 2*i+1
    a[i][j] = b[j][i] - 1
  end
end
`)
	if err != nil {
		t.Fatal(err)
	}
	outer := prog.Stmts[0].(*For)
	inner := outer.Body[0].(*For)
	if inner.Index != "j" {
		t.Fatalf("inner = %+v", inner)
	}
	if inner.Hi.String() != "((2 * i) + 1)" {
		t.Fatalf("inner hi = %s", inner.Hi)
	}
	a := inner.Body[0].(*Assign)
	if len(a.LHSArray.Subs) != 2 {
		t.Fatalf("lhs dims = %d", len(a.LHSArray.Subs))
	}
}

func TestParseScalarAndRead(t *testing.T) {
	prog, err := Parse(`
n = 100
read(m)
iz = iz + 2
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 3 {
		t.Fatalf("stmts = %d", len(prog.Stmts))
	}
	if a := prog.Stmts[0].(*Assign); a.LHSVar != "n" {
		t.Fatalf("scalar assign = %+v", a)
	}
	if r := prog.Stmts[1].(*Read); r.Var != "m" {
		t.Fatalf("read = %+v", r)
	}
}

func TestParseUnaryMinusAndParens(t *testing.T) {
	prog, err := Parse("a[-i + (j - 2) * 3] = 0\n")
	if err != nil {
		t.Fatal(err)
	}
	a := prog.Stmts[0].(*Assign)
	want := "((-i) + ((j - 2) * 3))"
	if got := a.LHSArray.Subs[0].String(); got != want {
		t.Fatalf("sub = %s, want %s", got, want)
	}
}

func TestParseDoKeyword(t *testing.T) {
	prog, err := Parse("do i = 1, 10\n  a[i] = 1\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Stmts[0].(*For)
	if f.Index != "i" {
		t.Fatalf("do-loop: %+v", f)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"for = 1 to 10\nend\n", // missing index
		"for i 1 to 10\nend\n", // missing '='
		"for i = 1 10\nend\n",  // missing 'to'
		"for i = 1 to 10\n",    // unclosed loop
		"read n\n",             // missing parens
		"read(3)\n",            // non-identifier
		"a[i = 3\n",            // missing ']'
		"a[i] 3\n",             // missing '='
		"a[i] = (1 + 2\n",      // missing ')'
		"a[i] = +\n",           // bad expression
		"= 3\n",                // no statement
		"a[i] = 1 extra\n",     // trailing junk
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestParseErrorMentionsPosition(t *testing.T) {
	_, err := Parse("for i = 1 to 10\n  a[i = 3\nend\n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error lacks line info: %v", err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	src := `program p
read(n)
for i = 1 to n
  a[i][i] = a[i - 1][i] + 7
end
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// A re-parse of the rendering must produce an identical rendering.
	again, err := Parse(prog.String())
	if err != nil {
		t.Fatalf("re-parse failed: %v\nrendered:\n%s", err, prog.String())
	}
	if prog.String() != again.String() {
		t.Fatalf("round trip differs:\n%s\nvs\n%s", prog.String(), again.String())
	}
}

func TestParseRHSArrayReads(t *testing.T) {
	prog, err := Parse("a[i] = b[i] + c[i] * d[2*i+1]\n")
	if err != nil {
		t.Fatal(err)
	}
	a := prog.Stmts[0].(*Assign)
	if a.RHS.String() != "(b[i] + (c[i] * d[((2 * i) + 1)]))" {
		t.Fatalf("rhs = %s", a.RHS)
	}
}
