package lang

import (
	"fmt"
	"strings"
)

// Node is any AST node.
type Node interface {
	node()
	String() string
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Num is an integer literal.
type Num struct {
	Value int64
	Pos   Pos
}

// Ident is a scalar or loop-index reference.
type Ident struct {
	Name string
	Pos  Pos
}

// Index is an array element read a[e1][e2]… used inside an expression.
type Index struct {
	Array string
	Subs  []Expr
	Pos   Pos
}

// BinOp is a binary arithmetic expression.
type BinOp struct {
	Op   byte // '+', '-', '*'
	L, R Expr
	Pos  Pos
}

// Neg is unary minus.
type Neg struct {
	X   Expr
	Pos Pos
}

func (*Num) node()       {}
func (*Ident) node()     {}
func (*Index) node()     {}
func (*BinOp) node()     {}
func (*Neg) node()       {}
func (*Num) exprNode()   {}
func (*Ident) exprNode() {}
func (*Index) exprNode() {}
func (*BinOp) exprNode() {}
func (*Neg) exprNode()   {}

func (n *Num) String() string   { return fmt.Sprintf("%d", n.Value) }
func (n *Ident) String() string { return n.Name }

func (n *Index) String() string {
	var b strings.Builder
	b.WriteString(n.Array)
	for _, s := range n.Subs {
		fmt.Fprintf(&b, "[%s]", s)
	}
	return b.String()
}

func (n *BinOp) String() string {
	return fmt.Sprintf("(%s %c %s)", n.L, n.Op, n.R)
}

func (n *Neg) String() string { return fmt.Sprintf("(-%s)", n.X) }

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// For is a loop: for Index = Lo to Hi [step Step] { Body }. A nil Step
// means 1; the lowerer normalizes other steps away (paper §2).
type For struct {
	Index  string
	Lo, Hi Expr
	Step   Expr // nil for unit step
	Body   []Stmt
	Pos    Pos
}

// Assign is a scalar or array assignment.
type Assign struct {
	// Exactly one of LHSVar / LHSArray is set.
	LHSVar   string
	LHSArray *Index
	RHS      Expr
	Pos      Pos
}

// Read introduces a symbolic unknown: read(n).
type Read struct {
	Var string
	Pos Pos
}

func (*For) node()        {}
func (*Assign) node()     {}
func (*Read) node()       {}
func (*For) stmtNode()    {}
func (*Assign) stmtNode() {}
func (*Read) stmtNode()   {}

func (s *For) String() string {
	var b strings.Builder
	if s.Step != nil {
		fmt.Fprintf(&b, "for %s = %s to %s step %s\n", s.Index, s.Lo, s.Hi, s.Step)
	} else {
		fmt.Fprintf(&b, "for %s = %s to %s\n", s.Index, s.Lo, s.Hi)
	}
	for _, st := range s.Body {
		for _, line := range strings.Split(st.String(), "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
	b.WriteString("end")
	return b.String()
}

func (s *Assign) String() string {
	if s.LHSArray != nil {
		return fmt.Sprintf("%s = %s", s.LHSArray, s.RHS)
	}
	return fmt.Sprintf("%s = %s", s.LHSVar, s.RHS)
}

func (s *Read) String() string { return fmt.Sprintf("read(%s)", s.Var) }

// Program is a parsed source unit.
type Program struct {
	Name  string
	Stmts []Stmt
}

func (p *Program) node() {}

func (p *Program) String() string {
	var b strings.Builder
	if p.Name != "" {
		fmt.Fprintf(&b, "program %s\n", p.Name)
	}
	for _, s := range p.Stmts {
		b.WriteString(s.String() + "\n")
	}
	return b.String()
}
