// Package lang implements a small Fortran-flavoured loop language — lexer,
// AST, and recursive-descent parser — so the dependence analyzer consumes
// whole programs the way the paper's SUIF implementation did. The language
// covers exactly what the paper's problem definition needs: normalized DO
// loops with affine bounds, multi-dimensional array assignments with affine
// subscripts, scalar assignments (for the optimizer prepass of §2/§8), and
// read statements introducing symbolic unknowns.
package lang

import "fmt"

// TokKind enumerates token kinds.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokFor
	TokTo
	TokStep
	TokEnd
	TokRead
	TokProgram
	TokAssign // =
	TokPlus
	TokMinus
	TokStar
	TokLParen
	TokRParen
	TokLBracket
	TokRBracket
	TokComma
	TokNewline
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokFor:
		return "'for'"
	case TokTo:
		return "'to'"
	case TokStep:
		return "'step'"
	case TokEnd:
		return "'end'"
	case TokRead:
		return "'read'"
	case TokProgram:
		return "'program'"
	case TokAssign:
		return "'='"
	case TokPlus:
		return "'+'"
	case TokMinus:
		return "'-'"
	case TokStar:
		return "'*'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokLBracket:
		return "'['"
	case TokRBracket:
		return "']'"
	case TokComma:
		return "','"
	case TokNewline:
		return "newline"
	default:
		return fmt.Sprintf("TokKind(%d)", int(k))
	}
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexeme.
type Token struct {
	Kind TokKind
	Text string
	Num  int64 // valid for TokNumber
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("identifier %q", t.Text)
	case TokNumber:
		return fmt.Sprintf("number %d", t.Num)
	default:
		return t.Kind.String()
	}
}
