package lang

import (
	"fmt"
	"strconv"
)

// Lexer tokenizes a source string. Comments run from '#' to end of line.
// Newlines are significant (they terminate statements).
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

var keywords = map[string]TokKind{
	"for":     TokFor,
	"do":      TokFor, // Fortran flavour
	"to":      TokTo,
	"step":    TokStep,
	"end":     TokEnd,
	"endfor":  TokEnd,
	"read":    TokRead,
	"program": TokProgram,
}

func (l *Lexer) peekByte() (byte, bool) {
	if l.off >= len(l.src) {
		return 0, false
	}
	return l.src[l.off], true
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// Next returns the next token. Consecutive newlines are folded into one.
func (l *Lexer) Next() (Token, error) {
	for {
		c, ok := l.peekByte()
		if !ok {
			return Token{Kind: TokEOF, Pos: l.pos()}, nil
		}
		switch {
		case c == '#':
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		case c == ' ' || c == '\t' || c == '\r':
			l.advance()
		case c == '\n':
			pos := l.pos()
			for {
				c, ok := l.peekByte()
				if !ok {
					break
				}
				if c == '\n' || c == ' ' || c == '\t' || c == '\r' {
					l.advance()
					continue
				}
				if c == '#' {
					for {
						c, ok := l.peekByte()
						if !ok || c == '\n' {
							break
						}
						l.advance()
					}
					continue
				}
				break
			}
			return Token{Kind: TokNewline, Text: "\\n", Pos: pos}, nil
		default:
			return l.lexToken()
		}
	}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) lexToken() (Token, error) {
	pos := l.pos()
	c, _ := l.peekByte()
	switch {
	case isDigit(c):
		start := l.off
		for {
			c, ok := l.peekByte()
			if !ok || !isDigit(c) {
				break
			}
			l.advance()
		}
		text := l.src[start:l.off]
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Token{}, fmt.Errorf("%s: bad number %q: %v", pos, text, err)
		}
		return Token{Kind: TokNumber, Text: text, Num: n, Pos: pos}, nil
	case isAlpha(c):
		start := l.off
		for {
			c, ok := l.peekByte()
			if !ok || (!isAlpha(c) && !isDigit(c)) {
				break
			}
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
	}
	l.advance()
	simple := map[byte]TokKind{
		'=': TokAssign, '+': TokPlus, '-': TokMinus, '*': TokStar,
		'(': TokLParen, ')': TokRParen, '[': TokLBracket, ']': TokRBracket,
		',': TokComma,
	}
	if k, ok := simple[c]; ok {
		return Token{Kind: k, Text: string(c), Pos: pos}, nil
	}
	return Token{}, fmt.Errorf("%s: unexpected character %q", pos, string(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// LexAll tokenizes the whole input (testing helper).
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
