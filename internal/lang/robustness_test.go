package lang

import (
	"math/rand"
	"strings"
	"testing"
)

// The parser and lexer must never panic, whatever bytes arrive: they either
// produce a program or an error.

func TestParserNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 2000; iter++ {
		n := rng.Intn(200)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %q: %v", b, r)
				}
			}()
			_, _ = Parse(string(b))
		}()
	}
}

func TestParserNeverPanicsOnTokenSoup(t *testing.T) {
	tokens := []string{
		"for", "to", "end", "read", "program", "step", "do",
		"i", "j", "a", "n", "42", "0", "-",
		"=", "+", "*", "(", ")", "[", "]", ",", "\n", "#x\n",
	}
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 3000; iter++ {
		var b strings.Builder
		for k := rng.Intn(40); k > 0; k-- {
			b.WriteString(tokens[rng.Intn(len(tokens))])
			b.WriteByte(' ')
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", b.String(), r)
				}
			}()
			_, _ = Parse(b.String())
		}()
	}
}

func TestDeeplyNestedLoops(t *testing.T) {
	var b strings.Builder
	const depth = 200
	for i := 0; i < depth; i++ {
		b.WriteString("for i")
		b.WriteString(strings.Repeat("x", i%3))
		b.WriteString(" = 1 to 10\n")
	}
	b.WriteString("a[1] = 0\n")
	for i := 0; i < depth; i++ {
		b.WriteString("end\n")
	}
	if _, err := Parse(b.String()); err != nil {
		t.Fatalf("deep nest: %v", err)
	}
}

func TestLongExpression(t *testing.T) {
	var b strings.Builder
	b.WriteString("a[0] = 1")
	for i := 0; i < 5000; i++ {
		b.WriteString(" + 1")
	}
	b.WriteString("\n")
	if _, err := Parse(b.String()); err != nil {
		t.Fatalf("long expr: %v", err)
	}
}

func TestUnicodeGarbageRejected(t *testing.T) {
	if _, err := Parse("для i = 1 to 10\nend\n"); err == nil {
		t.Fatal("non-ASCII identifiers are not part of the language")
	}
}
