package lang

import (
	"fmt"
)

// Parser is a recursive-descent parser for the loop language.
//
// Grammar (newline-terminated statements):
//
//	program  := [ "program" IDENT nl ] { stmt }
//	stmt     := for | assign | read
//	for      := "for" IDENT "=" expr "to" expr [ "step" expr ] nl { stmt } "end" nl
//	assign   := lvalue "=" expr nl
//	lvalue   := IDENT { "[" expr "]" }
//	read     := "read" "(" IDENT ")" nl
//	expr     := term { ("+"|"-") term }
//	term     := factor { "*" factor }
//	factor   := NUMBER | IDENT { "[" expr "]" } | "(" expr ")" | "-" factor
type Parser struct {
	lex *Lexer
	tok Token
	err error
}

// Parse parses a whole source unit.
func Parse(src string) (*Program, error) {
	p := &Parser{lex: NewLexer(src)}
	p.next()
	prog := &Program{}
	p.skipNewlines()
	if p.tok.Kind == TokProgram {
		p.next()
		if p.tok.Kind != TokIdent {
			return nil, p.expected("program name")
		}
		prog.Name = p.tok.Text
		p.next()
		if !p.eatNewline() {
			return nil, p.err
		}
	}
	for {
		p.skipNewlines()
		if p.tok.Kind == TokEOF {
			break
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, s)
	}
	// A lexer error turns the stream into EOF; surface it rather than
	// returning a silently truncated program.
	if p.err != nil {
		return nil, p.err
	}
	return prog, nil
}

func (p *Parser) next() {
	if p.err != nil {
		return
	}
	t, err := p.lex.Next()
	if err != nil {
		p.err = err
		p.tok = Token{Kind: TokEOF}
		return
	}
	p.tok = t
}

func (p *Parser) skipNewlines() {
	for p.tok.Kind == TokNewline {
		p.next()
	}
}

func (p *Parser) eatNewline() bool {
	if p.err != nil {
		return false
	}
	if p.tok.Kind == TokNewline || p.tok.Kind == TokEOF {
		p.next()
		return true
	}
	p.err = fmt.Errorf("%s: expected end of statement, found %s", p.tok.Pos, p.tok)
	return false
}

func (p *Parser) expected(what string) error {
	if p.err != nil {
		return p.err
	}
	return fmt.Errorf("%s: expected %s, found %s", p.tok.Pos, what, p.tok)
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.tok.Kind {
	case TokFor:
		return p.parseFor()
	case TokRead:
		return p.parseRead()
	case TokIdent:
		return p.parseAssign()
	default:
		return nil, p.expected("statement")
	}
}

func (p *Parser) parseFor() (Stmt, error) {
	pos := p.tok.Pos
	p.next() // for
	if p.tok.Kind != TokIdent {
		return nil, p.expected("loop index")
	}
	idx := p.tok.Text
	p.next()
	if p.tok.Kind != TokAssign {
		return nil, p.expected("'='")
	}
	p.next()
	lo, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	// accept both "to" and "," as the bound separator
	if p.tok.Kind != TokTo && p.tok.Kind != TokComma {
		return nil, p.expected("'to'")
	}
	p.next()
	hi, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var step Expr
	if p.tok.Kind == TokStep || p.tok.Kind == TokComma {
		p.next()
		if step, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if !p.eatNewline() {
		return nil, p.err
	}
	f := &For{Index: idx, Lo: lo, Hi: hi, Step: step, Pos: pos}
	for {
		p.skipNewlines()
		if p.tok.Kind == TokEnd {
			p.next()
			// optional "end for" / "end do" index mention is not supported;
			// just a newline
			if !p.eatNewline() {
				return nil, p.err
			}
			return f, nil
		}
		if p.tok.Kind == TokEOF {
			return nil, fmt.Errorf("%s: loop over %q not closed with 'end'", pos, idx)
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		f.Body = append(f.Body, s)
	}
}

func (p *Parser) parseRead() (Stmt, error) {
	pos := p.tok.Pos
	p.next() // read
	if p.tok.Kind != TokLParen {
		return nil, p.expected("'('")
	}
	p.next()
	if p.tok.Kind != TokIdent {
		return nil, p.expected("variable")
	}
	name := p.tok.Text
	p.next()
	if p.tok.Kind != TokRParen {
		return nil, p.expected("')'")
	}
	p.next()
	if !p.eatNewline() {
		return nil, p.err
	}
	return &Read{Var: name, Pos: pos}, nil
}

func (p *Parser) parseAssign() (Stmt, error) {
	pos := p.tok.Pos
	name := p.tok.Text
	p.next()
	var lhsArr *Index
	if p.tok.Kind == TokLBracket {
		subs, err := p.parseSubscripts()
		if err != nil {
			return nil, err
		}
		lhsArr = &Index{Array: name, Subs: subs, Pos: pos}
	}
	if p.tok.Kind != TokAssign {
		return nil, p.expected("'='")
	}
	p.next()
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.eatNewline() {
		return nil, p.err
	}
	a := &Assign{RHS: rhs, Pos: pos}
	if lhsArr != nil {
		a.LHSArray = lhsArr
	} else {
		a.LHSVar = name
	}
	return a, nil
}

func (p *Parser) parseSubscripts() ([]Expr, error) {
	var subs []Expr
	for p.tok.Kind == TokLBracket {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.tok.Kind != TokRBracket {
			return nil, p.expected("']'")
		}
		p.next()
		subs = append(subs, e)
	}
	return subs, nil
}

func (p *Parser) parseExpr() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokPlus || p.tok.Kind == TokMinus {
		op := byte('+')
		if p.tok.Kind == TokMinus {
			op = '-'
		}
		pos := p.tok.Pos
		p.next()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: op, L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *Parser) parseTerm() (Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokStar {
		pos := p.tok.Pos
		p.next()
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: '*', L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *Parser) parseFactor() (Expr, error) {
	switch p.tok.Kind {
	case TokNumber:
		n := &Num{Value: p.tok.Num, Pos: p.tok.Pos}
		p.next()
		return n, nil
	case TokIdent:
		name, pos := p.tok.Text, p.tok.Pos
		p.next()
		if p.tok.Kind == TokLBracket {
			subs, err := p.parseSubscripts()
			if err != nil {
				return nil, err
			}
			return &Index{Array: name, Subs: subs, Pos: pos}, nil
		}
		return &Ident{Name: name, Pos: pos}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.tok.Kind != TokRParen {
			return nil, p.expected("')'")
		}
		p.next()
		return e, nil
	case TokMinus:
		pos := p.tok.Pos
		p.next()
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &Neg{X: x, Pos: pos}, nil
	default:
		return nil, p.expected("expression")
	}
}
