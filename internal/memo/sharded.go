package memo

import (
	"sync"
	"sync/atomic"
)

// Map is the table surface the analyzer depends on. Table implements it for
// serial use; ShardedTable implements it for concurrent use. Both share the
// paper's canonical keys, so a serial table can be promoted to a sharded one
// by re-inserting its entries. Both retain inserted Keys and hand the
// interned copy back from LookupStored, which is what lets an L1 cache sit
// in front of either without cloning keys.
type Map[V any] interface {
	Lookup(Key) (V, bool)
	LookupStored(Key) (Key, V, bool)
	Insert(Key, V)
	Len() int
	Stats() (lookups, hits int)
	Range(func(Key, V) bool)
	Reset()
}

var (
	_ Map[int] = (*Table[int])(nil)
	_ Map[int] = (*ShardedTable[int])(nil)
)

// ShardedTable is a concurrency-safe memo table built for a read-mostly
// workload: after warmup the overwhelming majority of operations are
// lookups of already-cached problems (the paper's §5 observation), so the
// read path must not serialize workers.
//
// The key space is split over N power-of-two shards. Each shard holds an
// atomic pointer to an immutable open-addressed snapshot (the paper's open
// hash table, frozen): a lookup is one atomic load plus a linear probe over
// the snapshot — no locks and no shared writes at all. Traffic counters are
// not maintained per operation; workers that want table stats accumulate
// lookups/hits locally and push one delta via AddStats when they finish, so
// the hot read path touches no shared mutable memory. An insert takes the
// shard's mutex, copies the snapshot with the new entry placed (growing when
// load factor would pass 3/4), and publishes the copy with an atomic store.
// Copy-on-write makes inserts O(shard size); writers that insert in bulk
// should stage entries in a Batch, which rebuilds each touched shard's
// snapshot once per drain instead of once per entry.
//
// Values are stored as given; callers that cache the same key from multiple
// goroutines must make the value deterministic in the key (true for the
// analyzer: a canonical problem has exactly one verdict), so racing
// lookup-miss/insert pairs can only republish an equivalent table. Inserted
// Keys are retained: pass stable keys (Key.Clone scratch-backed ones).
type ShardedTable[V any] struct {
	shift uint
	sh    []shard[V]
	// lookups/hits are written only by AddStats (worker-exit delta merges),
	// never by the lookup path itself.
	lookups atomic.Int64
	hits    atomic.Int64
}

// snapshot is one shard's immutable open-addressed table. All fields are
// written before the snapshot is published and never after, so readers that
// Load it may probe without synchronization. Load factor stays ≤ 3/4,
// guaranteeing a nil slot that terminates every probe.
type snapshot[V any] struct {
	keys []Key
	vals []V
	n    int
}

// shard pads to its own cache line so neighbouring shards' snapshot
// publishes do not false-share.
type shard[V any] struct {
	snap atomic.Pointer[snapshot[V]]
	mu   sync.Mutex // serializes Insert; never taken by Lookup
	_    [40]byte
}

// DefaultShards is the shard count NewShardedTable uses for n <= 0.
const DefaultShards = 16

// shardBuckets is the initial snapshot size of each shard.
const shardBuckets = 16

// NewShardedTable returns an empty table with n shards, rounded up to a
// power of two (n <= 0 means DefaultShards).
func NewShardedTable[V any](n int) *ShardedTable[V] {
	if n <= 0 {
		n = DefaultShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	s := &ShardedTable[V]{sh: make([]shard[V], p)}
	for i := range s.sh {
		s.sh[i].snap.Store(&snapshot[V]{keys: make([]Key, shardBuckets), vals: make([]V, shardBuckets)})
	}
	for p > 1 {
		s.shift++
		p >>= 1
	}
	return s
}

// shardFor picks a shard from the high bits of the mixed hash; the in-shard
// snapshot indexes buckets with its low bits. The avalanche mix decorrelates
// the two, so keys landing in one shard still spread over its buckets.
func (s *ShardedTable[V]) shardFor(k Key) *shard[V] {
	h := mix(k.hash())
	return &s.sh[h>>(64-s.shift)&uint64(len(s.sh)-1)]
}

// Lookup returns the cached value for k. Safe for concurrent use and
// lock-free: one atomic snapshot load plus a probe — it allocates nothing,
// writes nothing shared, and never blocks on writers. Traffic is not
// counted here; see AddStats.
func (s *ShardedTable[V]) Lookup(k Key) (V, bool) {
	_, v, ok := s.LookupStored(k)
	return v, ok
}

// LookupStored is Lookup additionally returning the table's interned copy
// of the key on a hit (for L1 caches that must retain a stable key). Same
// lock-free guarantees as Lookup.
func (s *ShardedTable[V]) LookupStored(k Key) (Key, V, bool) {
	sh := s.shardFor(k)
	sn := sh.snap.Load()
	mask := uint64(len(sn.keys) - 1)
	for i := mix(k.hash()) & mask; ; i = (i + 1) & mask {
		sk := sn.keys[i]
		if sk == nil {
			var zero V
			return nil, zero, false
		}
		if sk.equal(k) {
			return sk, sn.vals[i], true
		}
	}
}

// Insert stores v under k (overwriting an existing entry) by publishing a
// copy-on-write snapshot under the shard mutex. Safe for concurrent use;
// the table retains k.
func (s *ShardedTable[V]) Insert(k Key, v V) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	sh.snap.Store(sh.snap.Load().withInsert(k, v))
	sh.mu.Unlock()
}

// InsertBatch stores every (keys[i], vals[i]) pair, grouping the batch by
// shard so each touched shard's copy-on-write snapshot is rebuilt once per
// call instead of once per entry. Duplicate keys within the batch overwrite
// in order, matching a sequence of Inserts. The keys slice is consumed
// (entries are nilled as they are placed); both slices must not be reused by
// the caller until InsertBatch returns. Safe for concurrent use.
func (s *ShardedTable[V]) InsertBatch(keys []Key, vals []V) {
	for i := range keys {
		if keys[i] == nil {
			continue
		}
		sh := s.shardFor(keys[i])
		// Count the batch's entries for this shard so the rebuilt snapshot
		// is sized once, keeping load factor ≤ 3/4 through the whole drain.
		extra := 0
		for j := i; j < len(keys); j++ {
			if keys[j] != nil && s.shardFor(keys[j]) == sh {
				extra++
			}
		}
		sh.mu.Lock()
		next := sh.snap.Load().cloneGrown(extra)
		for j := i; j < len(keys); j++ {
			if keys[j] != nil && s.shardFor(keys[j]) == sh {
				next.place(keys[j], vals[j])
				keys[j] = nil
			}
		}
		sh.snap.Store(next)
		sh.mu.Unlock()
	}
}

// cloneGrown returns a mutable copy of sn sized to hold extra more entries
// at ≤ 3/4 load. The receiver is never modified.
func (sn *snapshot[V]) cloneGrown(extra int) *snapshot[V] {
	size := len(sn.keys)
	for (sn.n+extra+1)*4 > size*3 {
		size *= 2
	}
	next := &snapshot[V]{keys: make([]Key, size), vals: make([]V, size)}
	for i, sk := range sn.keys {
		if sk != nil {
			next.place(sk, sn.vals[i])
		}
	}
	return next
}

// withInsert returns a copy of sn with (k, v) placed, grown when the load
// factor would pass 3/4. The receiver is never modified.
func (sn *snapshot[V]) withInsert(k Key, v V) *snapshot[V] {
	size := len(sn.keys)
	if (sn.n+1)*4 > size*3 {
		size *= 2
	}
	next := &snapshot[V]{keys: make([]Key, size), vals: make([]V, size)}
	for i, sk := range sn.keys {
		if sk != nil {
			next.place(sk, sn.vals[i])
		}
	}
	next.place(k, v)
	return next
}

// place inserts or overwrites one entry in an unpublished snapshot.
func (sn *snapshot[V]) place(k Key, v V) {
	mask := uint64(len(sn.keys) - 1)
	for i := mix(k.hash()) & mask; ; i = (i + 1) & mask {
		if sn.keys[i] == nil {
			sn.keys[i] = k
			sn.vals[i] = v
			sn.n++
			return
		}
		if sn.keys[i].equal(k) {
			sn.vals[i] = v
			return
		}
	}
}

// Len returns the number of unique entries, summed across shards. During
// concurrent inserts the sum is a point-in-time snapshot per shard.
func (s *ShardedTable[V]) Len() int {
	n := 0
	for i := range s.sh {
		n += s.sh[i].snap.Load().n
	}
	return n
}

// NumShards returns the shard count.
func (s *ShardedTable[V]) NumShards() int { return len(s.sh) }

// ShardLens returns the entry count of every shard — the spread the
// -memostats report prints to show the hash scattering hot keys.
func (s *ShardedTable[V]) ShardLens() []int {
	out := make([]int, len(s.sh))
	for i := range s.sh {
		out[i] = s.sh[i].snap.Load().n
	}
	return out
}

// Buckets returns the total bucket count over all shard snapshots (the
// occupancy denominator).
func (s *ShardedTable[V]) Buckets() int {
	n := 0
	for i := range s.sh {
		n += len(s.sh[i].snap.Load().keys)
	}
	return n
}

// Reset drops every entry and shrinks each shard back to its initial
// snapshot, releasing the retained keys and values to the collector — the
// eviction primitive a long-lived analyzer uses to bound its memory.
// Traffic counters (Stats) are cumulative and survive the reset. Safe for
// concurrent use with Lookup/Insert, but the caller is responsible for the
// larger invariant that no L1 cache still holds entries the table no
// longer does (core.Analyzer.EvictMemo resets both sides together).
func (s *ShardedTable[V]) Reset() {
	for i := range s.sh {
		sh := &s.sh[i]
		sh.mu.Lock()
		sh.snap.Store(&snapshot[V]{keys: make([]Key, shardBuckets), vals: make([]V, shardBuckets)})
		sh.mu.Unlock()
	}
}

// AddStats merges a worker's locally accumulated lookup/hit counts into the
// table. The lookup path deliberately does not count its own traffic (a
// shared counter write per probe is exactly the cache-line ping-pong the
// sharded design exists to avoid); drivers count in worker-local counters
// and push one delta per worker here when the worker exits.
func (s *ShardedTable[V]) AddStats(lookups, hits int) {
	if lookups != 0 {
		s.lookups.Add(int64(lookups))
	}
	if hits != 0 {
		s.hits.Add(int64(hits))
	}
}

// Stats returns the lookup and hit counts merged so far via AddStats.
func (s *ShardedTable[V]) Stats() (lookups, hits int) {
	return int(s.lookups.Load()), int(s.hits.Load())
}

// Range calls f for every entry until f returns false, shard by shard. Each
// shard is visited through one immutable snapshot, so Range never blocks
// writers, sees a consistent per-shard state, and f may call back into the
// table (inserts made during the walk may or may not be visited).
func (s *ShardedTable[V]) Range(f func(Key, V) bool) {
	for i := range s.sh {
		sn := s.sh[i].snap.Load()
		for j, k := range sn.keys {
			if k == nil {
				continue
			}
			if !f(k, sn.vals[j]) {
				return
			}
		}
	}
}
