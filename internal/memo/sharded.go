package memo

import "sync"

// Map is the table surface the analyzer depends on. Table implements it for
// serial use; ShardedTable implements it for concurrent use. Both share the
// paper's canonical keys, so a serial table can be promoted to a sharded one
// by re-inserting its entries.
type Map[V any] interface {
	Lookup(Key) (V, bool)
	Insert(Key, V)
	Len() int
	Stats() (lookups, hits int)
	Range(func(Key, V) bool)
}

var (
	_ Map[int] = (*Table[int])(nil)
	_ Map[int] = (*ShardedTable[int])(nil)
)

// ShardedTable is a concurrency-safe memo table: N power-of-two shards, each
// a mutex-guarded Table, with the shard chosen by the key's hash. Workers of
// the concurrent driver contend only when their keys land in the same shard,
// which the workload's skew makes rare: the hot keys (the paper's few
// hundred canonical problems) spread across shards, and the common case is
// an uncontended lock acquire around a short probe.
//
// Values are stored as given; callers that cache the same key from multiple
// goroutines must make the value deterministic in the key (true for the
// analyzer: a canonical problem has exactly one verdict), so a racing
// double-insert is a benign same-value overwrite.
type ShardedTable[V any] struct {
	shift uint
	sh    []shard[V]
}

// shard pads each mutex+table to its own cache line so neighbouring shards
// do not false-share under write-heavy warmup.
type shard[V any] struct {
	mu sync.Mutex
	t  *Table[V]
	_  [64 - 8 - 8]byte
}

// DefaultShards is the shard count NewShardedTable uses for n <= 0.
const DefaultShards = 16

// NewShardedTable returns an empty table with n shards, rounded up to a
// power of two (n <= 0 means DefaultShards).
func NewShardedTable[V any](n int) *ShardedTable[V] {
	if n <= 0 {
		n = DefaultShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	s := &ShardedTable[V]{sh: make([]shard[V], p)}
	for i := range s.sh {
		s.sh[i].t = NewTable[V]()
	}
	for p > 1 {
		s.shift++
		p >>= 1
	}
	return s
}

// shardFor picks a shard from the key's hash. The in-shard Table indexes
// buckets with the hash's low bits, so the shard choice uses the high bits
// of a Fibonacci-mixed hash — shard and bucket selection stay uncorrelated
// even for the paper's additive hash on short keys.
func (s *ShardedTable[V]) shardFor(k Key) *shard[V] {
	h := k.hash() * 0x9E3779B97F4A7C15
	return &s.sh[h>>(64-s.shift)&uint64(len(s.sh)-1)]
}

// Lookup returns the cached value for k. Safe for concurrent use.
func (s *ShardedTable[V]) Lookup(k Key) (V, bool) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	v, ok := sh.t.Lookup(k)
	sh.mu.Unlock()
	return v, ok
}

// Insert stores v under k (overwriting an existing entry). Safe for
// concurrent use.
func (s *ShardedTable[V]) Insert(k Key, v V) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	sh.t.Insert(k, v)
	sh.mu.Unlock()
}

// Len returns the number of unique entries, summed across shards. During
// concurrent inserts the sum is a point-in-time snapshot per shard.
func (s *ShardedTable[V]) Len() int {
	n := 0
	for i := range s.sh {
		s.sh[i].mu.Lock()
		n += s.sh[i].t.Len()
		s.sh[i].mu.Unlock()
	}
	return n
}

// Stats returns lookup and hit counts merged across shards.
func (s *ShardedTable[V]) Stats() (lookups, hits int) {
	for i := range s.sh {
		s.sh[i].mu.Lock()
		l, h := s.sh[i].t.Stats()
		s.sh[i].mu.Unlock()
		lookups += l
		hits += h
	}
	return lookups, hits
}

// Range calls f for every entry until f returns false, shard by shard. Each
// shard's lock is held while its entries are visited: f must not call back
// into the table.
func (s *ShardedTable[V]) Range(f func(Key, V) bool) {
	for i := range s.sh {
		sh := &s.sh[i]
		sh.mu.Lock()
		done := false
		sh.t.Range(func(k Key, v V) bool {
			if !f(k, v) {
				done = true
				return false
			}
			return true
		})
		sh.mu.Unlock()
		if done {
			return
		}
	}
}
