// Package memo implements the memoization scheme of Maydan, Hennessy & Lam
// §5: dependence problems are canonicalized into integer vectors and cached
// in an open hash table keyed by the paper's hash function
//
//	h(x) = size(x) + Σ 2^i·x_i,
//
// so repeated subscript/bound patterns — the overwhelming majority in real
// programs — are tested once. Two tables are kept: one keyed on the
// subscript equations alone (the GCD test ignores bounds) and one on the
// full problem. The "improved" encoding first drops loop variables that
// cannot affect the verdict (unused indices), merging cases such as the
// paper's pair of doubly nested loops that both collapse to a single loop.
//
// Two table implementations share the Map interface: Table is the paper's
// open hash table, unsynchronized, for serial analysis; ShardedTable splits
// the key space over power-of-two mutex-guarded shards so the concurrent
// driver's workers can share one cache (see core.Analyzer.AnalyzeAll).
package memo

import (
	"encoding/binary"
	"sort"

	"exactdep/internal/system"
)

// Key is a canonical integer encoding of a dependence problem.
type Key []int64

// Bytes renders the key as a compact string usable as a Go map key: eight
// little-endian bytes per element, so keys of different lengths can never
// collide. The concurrent driver uses this to replay cache provenance
// deterministically.
func (k Key) Bytes() string {
	b := make([]byte, 8*len(k))
	for i, v := range k {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	return string(b)
}

// hash implements the paper's function: size(x) + Σ 2^i·x_i. Shifts wrap at
// 63 bits; the table resolves residual collisions by key comparison.
func (k Key) hash() uint64 {
	h := uint64(len(k))
	for i, v := range k {
		h += uint64(v) << (uint(i) % 63)
	}
	return h
}

func (k Key) equal(o Key) bool {
	if len(k) != len(o) {
		return false
	}
	for i, v := range k {
		if o[i] != v {
			return false
		}
	}
	return true
}

// EncodeEq encodes only the subscript equation system (the without-bounds
// key used for GCD memoization). With improved=true, variables that occur in
// no equation are dropped first.
func EncodeEq(p *system.Problem, improved bool) Key {
	vars := keptVars(p, improved, false)
	key := Key{int64(len(vars)), int64(p.Eq.Cols)}
	for _, i := range vars {
		for d := 0; d < p.Eq.Cols; d++ {
			key = append(key, p.Eq.At(i, d))
		}
	}
	for d := 0; d < p.Eq.Cols; d++ {
		key = append(key, p.RHS[d])
	}
	return key
}

// EncodeFull encodes the subscript equations and the loop bounds (the
// with-bounds key for full test results). With improved=true, unused
// variables — indices that appear in no equation and, transitively, in no
// used variable's bound — are eliminated along with their bounds, exactly
// the paper's collapse of
//
//	for i…for j… a[i+10]=a[i]   and   for i…for j… a[j+10]=a[j]
//
// to the same single-loop problem.
func EncodeFull(p *system.Problem, improved bool) Key {
	vars := keptVars(p, improved, true)
	pos := make(map[int]int, len(vars)) // original index → position
	for n, i := range vars {
		pos[i] = n
	}
	// Once unused variables are dropped, position alone no longer says
	// whether a kept variable is the A-side or B-side instance of which
	// loop, and two mirrored problems must not share cached direction
	// vectors. Encode each variable's kind and the *rank* of its loop level
	// among kept levels — absolute levels must stay out of the key so that
	// the same pattern under extra unused loops still collapses.
	levelRank := map[int]int{}
	{
		var lvls []int
		seen := map[int]bool{}
		for _, i := range vars {
			if l := p.Vars[i].Level; l >= 0 && !seen[l] {
				seen[l] = true
				lvls = append(lvls, l)
			}
		}
		sort.Ints(lvls)
		for r, l := range lvls {
			levelRank[l] = r
		}
	}
	key := Key{int64(len(vars)), int64(p.Eq.Cols)}
	for _, i := range vars {
		rank := int64(-1)
		if l := p.Vars[i].Level; l >= 0 {
			rank = int64(levelRank[l])
		}
		key = append(key, int64(p.Vars[i].Kind), rank)
		for d := 0; d < p.Eq.Cols; d++ {
			key = append(key, p.Eq.At(i, d))
		}
	}
	for d := 0; d < p.Eq.Cols; d++ {
		key = append(key, p.RHS[d])
	}
	for _, i := range vars {
		key = appendBound(key, p, p.Lower[i], pos)
		key = appendBound(key, p, p.Upper[i], pos)
	}
	return key
}

// appendBound encodes one optional affine bound positionally: a presence
// flag, the constant, then the coefficient of each kept variable.
func appendBound(key Key, p *system.Problem, b system.Bound, pos map[int]int) Key {
	if !b.Has {
		return append(key, 0)
	}
	key = append(key, 1, b.Expr.Const)
	coeffs := make([]int64, len(pos))
	for _, v := range b.Expr.Vars() {
		i := p.VarIndex(v)
		if n, ok := pos[i]; ok {
			coeffs[n] = b.Expr.Coeff(v)
		}
	}
	return append(key, coeffs...)
}

// keptVars returns the variable indices retained by the encoding, in
// canonical order. Simple scheme: all variables. Improved scheme: the
// closure of variables used by some equation, where withBounds additionally
// pulls in variables appearing in a used variable's bounds.
func keptVars(p *system.Problem, improved, withBounds bool) []int {
	n := len(p.Vars)
	if !improved {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	used := make([]bool, n)
	for i := 0; i < n; i++ {
		for d := 0; d < p.Eq.Cols; d++ {
			if p.Eq.At(i, d) != 0 {
				used[i] = true
				break
			}
		}
	}
	if withBounds {
		for changed := true; changed; {
			changed = false
			for i := 0; i < n; i++ {
				if !used[i] {
					continue
				}
				for _, b := range []system.Bound{p.Lower[i], p.Upper[i]} {
					if !b.Has {
						continue
					}
					for _, v := range b.Expr.Vars() {
						j := p.VarIndex(v)
						if j >= 0 && !used[j] {
							used[j] = true
							changed = true
						}
					}
				}
			}
		}
	}
	var out []int
	for i := 0; i < n; i++ {
		if used[i] {
			out = append(out, i)
		}
	}
	return out
}

// Table is an open-addressing hash table from Key to V using the paper's
// hash function with linear probing.
type Table[V any] struct {
	keys    []Key
	vals    []V
	n       int
	lookups int
	hits    int
}

const initialBuckets = 64

// NewTable returns an empty table.
func NewTable[V any]() *Table[V] {
	return &Table[V]{keys: make([]Key, initialBuckets), vals: make([]V, initialBuckets)}
}

// Lookup returns the cached value for k.
func (t *Table[V]) Lookup(k Key) (V, bool) {
	t.lookups++
	mask := uint64(len(t.keys) - 1)
	for i := k.hash() & mask; ; i = (i + 1) & mask {
		if t.keys[i] == nil {
			var zero V
			return zero, false
		}
		if t.keys[i].equal(k) {
			t.hits++
			return t.vals[i], true
		}
	}
}

// Insert stores v under k (overwriting an existing entry).
func (t *Table[V]) Insert(k Key, v V) {
	if (t.n+1)*4 > len(t.keys)*3 { // keep load factor ≤ 3/4
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	for i := k.hash() & mask; ; i = (i + 1) & mask {
		if t.keys[i] == nil {
			t.keys[i] = k
			t.vals[i] = v
			t.n++
			return
		}
		if t.keys[i].equal(k) {
			t.vals[i] = v
			return
		}
	}
}

func (t *Table[V]) grow() {
	oldK, oldV := t.keys, t.vals
	t.keys = make([]Key, len(oldK)*2)
	t.vals = make([]V, len(oldV)*2)
	t.n = 0
	for i, k := range oldK {
		if k != nil {
			t.reinsert(k, oldV[i])
		}
	}
}

func (t *Table[V]) reinsert(k Key, v V) {
	mask := uint64(len(t.keys) - 1)
	for i := k.hash() & mask; ; i = (i + 1) & mask {
		if t.keys[i] == nil {
			t.keys[i] = k
			t.vals[i] = v
			t.n++
			return
		}
	}
}

// Len returns the number of unique entries.
func (t *Table[V]) Len() int { return t.n }

// Stats returns lookup and hit counts.
func (t *Table[V]) Stats() (lookups, hits int) { return t.lookups, t.hits }

// Range calls f for every entry until f returns false. Iteration order is
// the table's bucket order (deterministic for a given insert history).
func (t *Table[V]) Range(f func(Key, V) bool) {
	for i, k := range t.keys {
		if k == nil {
			continue
		}
		if !f(k, t.vals[i]) {
			return
		}
	}
}
