// Package memo implements the memoization scheme of Maydan, Hennessy & Lam
// §5: dependence problems are canonicalized into integer vectors and cached
// in an open hash table keyed by the paper's hash function
//
//	h(x) = size(x) + Σ 2^i·x_i,
//
// so repeated subscript/bound patterns — the overwhelming majority in real
// programs — are tested once.
//
// The analyzer keeps three logical tables over this package's keys:
//
//   - the eq table, keyed on the subscript equations alone, caches GCD-test
//     verdicts (the GCD test ignores bounds, so one entry serves every
//     bounds variation of the same equations);
//   - the full table, keyed on the complete problem (equations plus
//     bounds), caches candidate-level verdicts with their distance and
//     direction summaries;
//   - the dir table, keyed on the full problem plus a canonical direction
//     segment (Encoder.EncodeDirections), caches the up-to-3^d
//     direction-constrained subproblems of Burke–Cytron refinement.
//
// The "improved" encoding first drops loop variables that cannot affect the
// verdict (unused indices), merging cases such as the paper's pair of
// doubly nested loops that both collapse to a single loop.
//
// Because memoization eliminates most test invocations, the memo lookup
// itself is the analyzer's steady-state hot path. The package therefore
// provides a zero-allocation fast path end to end:
//
//   - Encoder canonicalizes problems into scratch-backed keys (no maps, no
//     sorting, no fresh Key per candidate) — one Encoder per worker.
//   - Table is the paper's open hash table, unsynchronized, for serial
//     analysis.
//   - ShardedTable shares one cache across the concurrent driver's workers
//     with lock-free, stat-free reads: each shard publishes an immutable
//     open-addressed snapshot through an atomic pointer, inserts
//     copy-on-write under a short per-shard mutex, bulk writers stage
//     through a Batch, and traffic counters merge delta-only at worker exit
//     via AddStats (see sharded.go, batch.go).
//   - L1 is a small direct-mapped per-worker cache in front of the shared
//     table, so a worker's hot working set is answered without touching
//     shared memory at all (see l1.go). Every L1 entry's key is an interned
//     L2 key, preserving the L1 ⊆ L2 containment the concurrent driver's
//     provenance replay relies on.
//   - InFlight deduplicates concurrent solves of the same canonical key, so
//     two workers never run the test cascade for one problem at the same
//     time (see inflight.go).
//
// Table and ShardedTable share the Map interface, so a serial table can be
// promoted to a sharded one by re-inserting its entries (the concurrent
// driver core.Analyzer.AnalyzeAll does exactly that).
package memo

import "encoding/binary"

// Key is a canonical integer encoding of a dependence problem. Keys
// produced by an Encoder alias its scratch buffers and are valid only until
// the encoder's next call; Clone them before storing (Table and ShardedTable
// retain the Key they are given).
type Key []int64

// Bytes renders the key as a compact string usable as a Go map key: eight
// little-endian bytes per element, so keys of different lengths can never
// collide. The concurrent driver uses this to replay cache provenance
// deterministically.
func (k Key) Bytes() string {
	b := make([]byte, 8*len(k))
	for i, v := range k {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	return string(b)
}

// Clone returns a copy of k with its own backing array, safe to retain
// after the encoder that produced k reuses its buffers.
func (k Key) Clone() Key {
	if k == nil {
		return nil
	}
	return append(Key(nil), k...)
}

// hash implements the paper's function: size(x) + Σ 2^i·x_i. The shift
// *amount* wraps at 63 (i mod 63, cycling through 0..62), not at 64: a
// shift of 63 or more would park short-key contributions in the sign bit or
// (at ≥64) discard them entirely, so element i of a long key instead shares
// a shift with element i±63 and the top bit is reached only through carry
// propagation. Residual collisions are resolved by key comparison in the
// tables; TestHashShiftWrap pins the wrap and TestHashDistributionOnSuiteKeys
// watches the collision rate over the workload's real keys.
func (k Key) hash() uint64 {
	h := uint64(len(k))
	for i, v := range k {
		h += uint64(v) << (uint(i) % 63)
	}
	return h
}

// Hash exposes the paper's hash for introspection (occupancy reports,
// distribution tests). The tables index buckets and shards through mix
// rather than using it raw.
func (k Key) Hash() uint64 { return k.hash() }

// mix finalizes the paper's hash for indexing (a splitmix64-style avalanche
// step). The additive hash keeps distinct problems apart — its collision
// rate over the suite's real keys is fine — but it concentrates structure
// in the low bits (every key starts with a small variable count and column
// width), and TestHashDistributionOnSuiteKeys showed raw low-bit indexing
// packing a quarter of the suite into one bucket chain. Diffusing the bits
// first keeps probe chains short and lets the sharded table take shard
// bits and bucket bits from the same value without correlation.
func mix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

func (k Key) equal(o Key) bool {
	if len(k) != len(o) {
		return false
	}
	for i, v := range k {
		if o[i] != v {
			return false
		}
	}
	return true
}

// Table is an open-addressing hash table from Key to V using the paper's
// hash function with linear probing. It retains the Keys it is given.
type Table[V any] struct {
	keys    []Key
	vals    []V
	n       int
	lookups int
	hits    int
}

const initialBuckets = 64

// NewTable returns an empty table.
func NewTable[V any]() *Table[V] {
	return &Table[V]{keys: make([]Key, initialBuckets), vals: make([]V, initialBuckets)}
}

// Lookup returns the cached value for k.
func (t *Table[V]) Lookup(k Key) (V, bool) {
	_, v, ok := t.LookupStored(k)
	return v, ok
}

// LookupStored is Lookup additionally returning the table's interned copy
// of the key on a hit. Callers that need to retain the key (the L1 cache)
// keep the interned one instead of cloning a scratch-backed probe key.
func (t *Table[V]) LookupStored(k Key) (Key, V, bool) {
	t.lookups++
	mask := uint64(len(t.keys) - 1)
	for i := mix(k.hash()) & mask; ; i = (i + 1) & mask {
		if t.keys[i] == nil {
			var zero V
			return nil, zero, false
		}
		if t.keys[i].equal(k) {
			t.hits++
			return t.keys[i], t.vals[i], true
		}
	}
}

// Insert stores v under k (overwriting an existing entry). The table
// retains k: pass a stable key, never a scratch-backed one (Key.Clone).
func (t *Table[V]) Insert(k Key, v V) {
	if (t.n+1)*4 > len(t.keys)*3 { // keep load factor ≤ 3/4
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	for i := mix(k.hash()) & mask; ; i = (i + 1) & mask {
		if t.keys[i] == nil {
			t.keys[i] = k
			t.vals[i] = v
			t.n++
			return
		}
		if t.keys[i].equal(k) {
			t.vals[i] = v
			return
		}
	}
}

func (t *Table[V]) grow() {
	oldK, oldV := t.keys, t.vals
	t.keys = make([]Key, len(oldK)*2)
	t.vals = make([]V, len(oldV)*2)
	t.n = 0
	for i, k := range oldK {
		if k != nil {
			t.reinsert(k, oldV[i])
		}
	}
}

func (t *Table[V]) reinsert(k Key, v V) {
	mask := uint64(len(t.keys) - 1)
	for i := mix(k.hash()) & mask; ; i = (i + 1) & mask {
		if t.keys[i] == nil {
			t.keys[i] = k
			t.vals[i] = v
			t.n++
			return
		}
	}
}

// Reset drops every entry and shrinks the table back to its initial bucket
// array, releasing the retained keys and values to the collector — the
// eviction primitive a long-lived analyzer uses to bound its memory.
// Traffic counters (Stats) are cumulative and survive the reset.
func (t *Table[V]) Reset() {
	t.keys = make([]Key, initialBuckets)
	t.vals = make([]V, initialBuckets)
	t.n = 0
}

// Len returns the number of unique entries.
func (t *Table[V]) Len() int { return t.n }

// Buckets returns the current bucket-array size (occupancy denominator).
func (t *Table[V]) Buckets() int { return len(t.keys) }

// Stats returns lookup and hit counts.
func (t *Table[V]) Stats() (lookups, hits int) { return t.lookups, t.hits }

// Range calls f for every entry until f returns false. Iteration order is
// the table's bucket order (deterministic for a given insert history).
func (t *Table[V]) Range(f func(Key, V) bool) {
	for i, k := range t.keys {
		if k == nil {
			continue
		}
		if !f(k, t.vals[i]) {
			return
		}
	}
}
