package memo

// L1 is a small direct-mapped cache a worker holds in front of the shared
// ShardedTable (its L2): a lookup is one multiply, one shift, and one key
// comparison against private memory — no atomics, no shared cache lines.
// The concurrent driver's workload makes this effective for the same reason
// memoization works at all (§5): candidates repeat, and a worker's recent
// problems repeat soonest.
//
// An L1 never owns entries. It is filled only with interned keys handed
// back by the L2's LookupStored (or keys already cloned for an L2 insert),
// so storing never copies, and every L1 entry is present in the L2 — which
// keeps AnalyzeAll's deterministic provenance post-pass valid: an L1 hit is
// just a cheaper way to observe an L2 fact. Not safe for concurrent use;
// give each worker its own.
type L1[V any] struct {
	keys    []Key
	vals    []V
	shift   uint
	lookups int
	hits    int
	live    int
}

// DefaultL1Size is the slot count NewL1 uses for size <= 0.
const DefaultL1Size = 256

// NewL1 returns a direct-mapped cache with the given slot count, rounded up
// to a power of two (size <= 0 means DefaultL1Size).
func NewL1[V any](size int) *L1[V] {
	if size <= 0 {
		size = DefaultL1Size
	}
	p := 1
	for p < size {
		p <<= 1
	}
	l := &L1[V]{keys: make([]Key, p), vals: make([]V, p), shift: 64}
	for n := p; n > 1; n >>= 1 {
		l.shift--
	}
	return l
}

// slot maps a key to its single slot: the high bits of the mixed hash, the
// same scattering the sharded table uses for shard choice. For a one-slot
// cache the shift is 64, which in Go would be a no-op shift, so it is
// special-cased to 0.
func (l *L1[V]) slot(k Key) uint64 {
	if l.shift == 64 {
		return 0
	}
	return mix(k.hash()) >> l.shift
}

// Lookup returns the cached value for k. Allocation-free.
func (l *L1[V]) Lookup(k Key) (V, bool) {
	_, v, ok := l.LookupStored(k)
	return v, ok
}

// LookupStored is Lookup additionally returning the cache's stable key on a
// hit. Because an L1 is filled only with interned keys, the returned key is
// the same instance the L2 retains — callers that need a stable identity for
// the entry (the concurrent driver's provenance records) take it from here
// without touching the shared table. Allocation-free.
func (l *L1[V]) LookupStored(k Key) (Key, V, bool) {
	l.lookups++
	i := l.slot(k)
	if sk := l.keys[i]; sk != nil && sk.equal(k) {
		l.hits++
		return sk, l.vals[i], true
	}
	var zero V
	return nil, zero, false
}

// Store caches v under k, evicting whatever occupied the slot. k must be a
// stable key (interned by an L2 LookupStored, or already cloned for an L2
// insert) — the cache retains it without copying.
func (l *L1[V]) Store(k Key, v V) {
	i := l.slot(k)
	if l.keys[i] == nil {
		l.live++
	}
	l.keys[i] = k
	l.vals[i] = v
}

// Reset empties every slot, releasing the interned keys and values it
// referenced. Must be reset together with its backing L2 (the L1 ⊆ L2
// containment only needs re-establishing from the empty side: an empty L1
// is trivially contained in any L2). Traffic counters survive.
func (l *L1[V]) Reset() {
	clear(l.keys)
	clear(l.vals)
	l.live = 0
}

// Len returns the number of occupied slots.
func (l *L1[V]) Len() int { return l.live }

// Cap returns the slot count.
func (l *L1[V]) Cap() int { return len(l.keys) }

// Stats returns lookup and hit counts.
func (l *L1[V]) Stats() (lookups, hits int) { return l.lookups, l.hits }
