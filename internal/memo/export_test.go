package memo

// MixForTest exposes the indexing finalizer to the external distribution
// test (dist_test.go), which lives in package memo_test to break the
// memo ← core ← workload import cycle.
var MixForTest = mix
