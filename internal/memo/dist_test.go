// Distribution test over the workload's real keys. External test package:
// workload depends on core, which depends on memo, so this cannot live in
// package memo itself.
package memo_test

import (
	"testing"

	"exactdep/internal/memo"
	"exactdep/internal/refs"
	"exactdep/internal/system"
	"exactdep/internal/workload"
)

// suiteKeys encodes every testable candidate of the synthetic PERFECT-style
// suite into its full-problem key (improved scheme), deduplicated — the
// actual key population the analyzer's tables hold.
func suiteKeys(t *testing.T) []memo.Key {
	var keys []memo.Key
	seen := map[string]bool{}
	var e memo.Encoder
	for _, spec := range workload.Programs() {
		cands, err := workload.Candidates(spec, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cands {
			if c.Class != refs.NeedsTest {
				continue
			}
			prob, err := system.Build(c.Pair)
			if err != nil {
				t.Fatal(err)
			}
			k := e.EncodeFull(prob, true)
			if s := k.Bytes(); !seen[s] {
				seen[s] = true
				keys = append(keys, k.Clone())
			}
		}
	}
	return keys
}

// TestHashDistributionOnSuiteKeys watches the paper's additive hash over
// the suite's real key population: the hash is weak by design ("random
// collisions are not much of a problem" — they are resolved by key
// comparison), but it must still separate most distinct problems and
// spread them over buckets well enough that probe chains stay short.
func TestHashDistributionOnSuiteKeys(t *testing.T) {
	keys := suiteKeys(t)
	if len(keys) < 50 {
		t.Fatalf("suite produced only %d unique keys; distribution test needs a real population", len(keys))
	}

	// Full-hash collisions: distinct keys sharing an identical 64-bit hash.
	byHash := map[uint64]int{}
	for _, k := range keys {
		byHash[k.Hash()]++
	}
	collided := len(keys) - len(byHash)
	if collided*10 > len(keys) {
		t.Errorf("%d of %d unique keys share full hashes (> 10%%)", collided, len(keys))
	}

	// Bucket spread at a realistic table size (load factor ≤ 3/4, as the
	// tables maintain), indexed the way the tables index — low bits of the
	// mixed hash: the heaviest bucket must stay far from a linear scan.
	// (Raw low bits of the paper's hash fail this badly: every key starts
	// with a small variable count and column width, and before the mix
	// finalizer was added a quarter of the suite shared one bucket chain.)
	buckets := 1
	for buckets*3 < len(keys)*4 {
		buckets *= 2
	}
	load := make([]int, buckets)
	for _, k := range keys {
		load[memo.MixForTest(k.Hash())&uint64(buckets-1)]++
	}
	maxLoad := 0
	for _, n := range load {
		if n > maxLoad {
			maxLoad = n
		}
	}
	if limit := len(keys) / 8; maxLoad > limit {
		t.Errorf("heaviest bucket holds %d of %d keys (limit %d): hash is clustering", maxLoad, len(keys), limit)
	}

	// Shard spread: the mixed high bits that pick shards must not park
	// everything on a few shards.
	shardLoad := make([]int, memo.DefaultShards)
	for _, k := range keys {
		shardLoad[memo.MixForTest(k.Hash())>>(64-4)]++ // 16 shards
	}
	occupied := 0
	for _, n := range shardLoad {
		if n > 0 {
			occupied++
		}
	}
	if occupied < memo.DefaultShards/2 {
		t.Errorf("suite keys occupy only %d of %d shards", occupied, memo.DefaultShards)
	}
}
