package memo

import "testing"

func TestL1Basics(t *testing.T) {
	l := NewL1[int](4)
	if l.Cap() != 4 || l.Len() != 0 {
		t.Fatalf("fresh L1: cap=%d len=%d", l.Cap(), l.Len())
	}
	k := Key{1, 2, 3}
	if _, ok := l.Lookup(k); ok {
		t.Fatal("empty L1 lookup must miss")
	}
	l.Store(k, 42)
	if v, ok := l.Lookup(k); !ok || v != 42 {
		t.Fatalf("lookup = %d, %v", v, ok)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	lookups, hits := l.Stats()
	if lookups != 2 || hits != 1 {
		t.Fatalf("stats = %d lookups, %d hits", lookups, hits)
	}
}

func TestL1SizeRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-1, DefaultL1Size}, {0, DefaultL1Size}, {1, 1}, {3, 4}, {4, 4}, {100, 128},
	} {
		if got := NewL1[int](tc.in).Cap(); got != tc.want {
			t.Errorf("NewL1(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestL1DirectMappedEviction: two keys mapping to the same slot evict each
// other; distinct slots coexist. A one-slot cache forces the shared slot.
func TestL1DirectMappedEviction(t *testing.T) {
	l := NewL1[int](1)
	k1, k2 := Key{1}, Key{2}
	l.Store(k1, 1)
	l.Store(k2, 2)
	if _, ok := l.Lookup(k1); ok {
		t.Fatal("k1 must be evicted from the single slot")
	}
	if v, ok := l.Lookup(k2); !ok || v != 2 {
		t.Fatalf("k2 = %d, %v", v, ok)
	}
	if l.Len() != 1 {
		t.Fatalf("Len after eviction = %d", l.Len())
	}
}

// TestL1AgainstTable drives an L1 in front of a Table with interned keys —
// the analyzer's fill discipline — and checks the L1 never disagrees with
// its backing table.
func TestL1AgainstTable(t *testing.T) {
	tbl := NewTable[int]()
	l := NewL1[int](8)
	var e Encoder
	probs := encoderProblems(t)
	// Problems sharing an improved key (unused-loop collapse) share one
	// entry; expectations are per canonical key.
	want := make([]int, len(probs))
	canon := map[string]int{}
	for i, p := range probs {
		k := e.EncodeFull(p, true)
		if j, ok := canon[k.Bytes()]; ok {
			want[i] = j
			continue
		}
		canon[k.Bytes()] = i
		want[i] = i
		tbl.Insert(k.Clone(), i)
	}
	for round := 0; round < 3; round++ {
		for i, p := range probs {
			k := e.EncodeFull(p, true)
			if v, ok := l.Lookup(k); ok {
				if v != want[i] {
					t.Fatalf("round %d: L1 returned %d for problem %d, want %d", round, v, i, want[i])
				}
				continue
			}
			stored, v, ok := tbl.LookupStored(k)
			if !ok || v != want[i] {
				t.Fatalf("round %d: table lookup for problem %d = %d, %v, want %d", round, i, v, ok, want[i])
			}
			l.Store(stored, v)
		}
	}
	if _, hits := l.Stats(); hits == 0 {
		t.Fatal("L1 never hit across repeated rounds")
	}
}
