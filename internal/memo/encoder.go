package memo

import "exactdep/internal/system"

// Encoder canonicalizes dependence problems into Keys using reusable
// scratch buffers, so the steady-state memo path — encode, look up, hit —
// allocates nothing per candidate. The one-shot package functions EncodeEq
// and EncodeFull build the same keys through a throwaway Encoder; the
// analyzer gives each worker a persistent one instead, exactly as the
// cascade gives each worker a dtest.Scratch.
//
// The flat index tables replace the maps and the per-call sort of the
// original encoding: variable positions index a []int keyed by the
// problem's variable order, and loop-level ranks are assigned by scanning
// levels in increasing order (levels are small dense ints), which yields
// the same rank assignment a sort of the seen levels would.
//
// Keys returned by EncodeEq and EncodeFull alias two *separate* buffers:
// a full key stays valid across a later EncodeEq on the same encoder (the
// analyzer encodes the full key, misses, then encodes the eq key for GCD
// memoization before inserting under the still-live full key). Both are
// invalidated by the next call of the *same* method; Clone a key before
// storing it in a table. An Encoder is not safe for concurrent use — give
// each worker its own.
type Encoder struct {
	full   Key     // EncodeFull's reusable key buffer
	eq     Key     // EncodeEq's reusable key buffer
	dir    Key     // EncodeDirections' reusable key buffer
	vars   []int   // kept variable indices, canonical order
	used   []bool  // per-variable liveness for the improved scheme
	pos    []int   // original variable index → kept position, -1 if dropped
	rank   []int   // loop level → rank among kept levels, -1 if absent
	coeffs []int64 // positional bound-coefficient row
}

// EncodeEq encodes only the subscript equation system (the without-bounds
// key used for GCD memoization). With improved=true, variables that occur
// in no equation are dropped first. The returned Key aliases the encoder's
// eq buffer.
func (e *Encoder) EncodeEq(p *system.Problem, improved bool) Key {
	vars := e.keptVars(p, improved, false)
	key := append(e.eq[:0], int64(len(vars)), int64(p.Eq.Cols))
	for _, i := range vars {
		for d := 0; d < p.Eq.Cols; d++ {
			key = append(key, p.Eq.At(i, d))
		}
	}
	key = append(key, p.RHS...)
	e.eq = key
	return key
}

// EncodeFull encodes the subscript equations and the loop bounds (the
// with-bounds key for full test results). With improved=true, unused
// variables — indices that appear in no equation and, transitively, in no
// used variable's bound — are eliminated along with their bounds, exactly
// the paper's collapse of
//
//	for i…for j… a[i+10]=a[i]   and   for i…for j… a[j+10]=a[j]
//
// to the same single-loop problem. The returned Key aliases the encoder's
// full buffer.
func (e *Encoder) EncodeFull(p *system.Problem, improved bool) Key {
	vars := e.keptVars(p, improved, true)

	// pos: original index → kept position (-1 = dropped), the flat stand-in
	// for the original map.
	e.pos = resizeInts(e.pos, len(p.Vars))
	for i := range e.pos {
		e.pos[i] = -1
	}
	for n, i := range vars {
		e.pos[i] = n
	}

	// Once unused variables are dropped, position alone no longer says
	// whether a kept variable is the A-side or B-side instance of which
	// loop, and two mirrored problems must not share cached direction
	// vectors. Encode each variable's kind and the *rank* of its loop level
	// among kept levels — absolute levels must stay out of the key so that
	// the same pattern under extra unused loops still collapses. Ranks are
	// assigned by scanning levels in increasing order (no sort needed:
	// levels are small dense ints).
	maxLvl := -1
	for _, i := range vars {
		if l := p.Vars[i].Level; l > maxLvl {
			maxLvl = l
		}
	}
	const seen = -2
	e.rank = resizeInts(e.rank, maxLvl+1)
	for i := range e.rank {
		e.rank[i] = -1
	}
	for _, i := range vars {
		if l := p.Vars[i].Level; l >= 0 {
			e.rank[l] = seen
		}
	}
	r := 0
	for l := 0; l <= maxLvl; l++ {
		if e.rank[l] == seen {
			e.rank[l] = r
			r++
		}
	}

	key := append(e.full[:0], int64(len(vars)), int64(p.Eq.Cols))
	for _, i := range vars {
		rank := int64(-1)
		if l := p.Vars[i].Level; l >= 0 {
			rank = int64(e.rank[l])
		}
		key = append(key, int64(p.Vars[i].Kind), rank)
		for d := 0; d < p.Eq.Cols; d++ {
			key = append(key, p.Eq.At(i, d))
		}
	}
	key = append(key, p.RHS...)
	for _, i := range vars {
		key = e.appendBound(key, p, p.Lower[i], len(vars))
		key = e.appendBound(key, p, p.Upper[i], len(vars))
	}
	e.full = key
	return key
}

// EncodeDirections extends the most recent EncodeFull key with a canonical
// direction segment, keying a refinement subproblem: the full key followed
// by one entry per *kept* common level, in level order, holding that
// level's pushed direction byte ('*', '<', '=', '>'). dirs is the
// refinement walk's per-common-level direction array (depvec.Memo). Levels
// the encoding dropped contribute nothing — their rank is not in the key —
// so if a non-'*' direction sits on a dropped level the subproblem is not
// canonically representable and ok=false is returned (the caller skips
// memoization; this arises only when the improved scheme drops an unused
// level that pruning left refinable).
//
// Because kept common levels appear in the full key by rank in level
// order, the segment's layout is a function of the full key alone; and
// since full keys are prefix-decodable, appending the segment cannot make
// two distinct subproblems collide. The returned Key aliases the encoder's
// dir buffer: valid until the next EncodeDirections, and it must be called
// while the preceding EncodeFull's rank table still describes the same
// problem.
func (e *Encoder) EncodeDirections(dirs []byte) (Key, bool) {
	key := append(e.dir[:0], e.full...)
	for lvl, d := range dirs {
		kept := lvl < len(e.rank) && e.rank[lvl] >= 0
		if !kept {
			if d != '*' {
				return nil, false
			}
			continue
		}
		key = append(key, int64(d))
	}
	e.dir = key
	return key, true
}

// appendBound encodes one optional affine bound positionally: a presence
// flag, the constant, then the coefficient of each kept variable. The
// coefficient row is assembled by position, so iterating the expression's
// term map in arbitrary order still yields a deterministic key.
func (e *Encoder) appendBound(key Key, p *system.Problem, b system.Bound, nkept int) Key {
	if !b.Has {
		return append(key, 0)
	}
	key = append(key, 1, b.Expr.Const)
	e.coeffs = resizeInt64s(e.coeffs, nkept)
	for i := range e.coeffs {
		e.coeffs[i] = 0
	}
	for v, c := range b.Expr.Terms {
		if i := p.VarIndex(v); i >= 0 && e.pos[i] >= 0 {
			e.coeffs[e.pos[i]] = c
		}
	}
	return append(key, e.coeffs...)
}

// keptVars computes the variable indices retained by the encoding, in
// canonical order, into the encoder's vars buffer. Simple scheme: all
// variables. Improved scheme: the closure of variables used by some
// equation, where withBounds additionally pulls in variables appearing in a
// used variable's bounds.
func (e *Encoder) keptVars(p *system.Problem, improved, withBounds bool) []int {
	n := len(p.Vars)
	e.vars = e.vars[:0]
	if !improved {
		for i := 0; i < n; i++ {
			e.vars = append(e.vars, i)
		}
		return e.vars
	}
	e.used = resizeBools(e.used, n)
	for i := 0; i < n; i++ {
		e.used[i] = false
		for d := 0; d < p.Eq.Cols; d++ {
			if p.Eq.At(i, d) != 0 {
				e.used[i] = true
				break
			}
		}
	}
	if withBounds {
		for changed := true; changed; {
			changed = false
			for i := 0; i < n; i++ {
				if !e.used[i] {
					continue
				}
				for _, b := range [2]system.Bound{p.Lower[i], p.Upper[i]} {
					if !b.Has {
						continue
					}
					for v := range b.Expr.Terms {
						j := p.VarIndex(v)
						if j >= 0 && !e.used[j] {
							e.used[j] = true
							changed = true
						}
					}
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if e.used[i] {
			e.vars = append(e.vars, i)
		}
	}
	return e.vars
}

// EncodeEq encodes the without-bounds key through a throwaway Encoder.
// Serial convenience; hot paths hold a per-worker Encoder instead.
func EncodeEq(p *system.Problem, improved bool) Key {
	var e Encoder
	return e.EncodeEq(p, improved)
}

// EncodeFull encodes the with-bounds key through a throwaway Encoder.
// Serial convenience; hot paths hold a per-worker Encoder instead.
func EncodeFull(p *system.Problem, improved bool) Key {
	var e Encoder
	return e.EncodeFull(p, improved)
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func resizeInt64s(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
