package memo

import "fmt"

// Fingerprint is a 128-bit structural digest of a whole loop nest's
// dependence input — the corpus layer's whole-nest extension of the §5
// canonical-key discipline. Where a Key canonicalizes one dependence
// problem for the memo tables, a Fingerprint folds every candidate system
// of a nest (classes, common depths, subscript equations, loop bounds,
// symbols) into a fixed-size value the incremental driver can diff against
// a persistent verdict store without re-running any test.
//
// Two independent 64-bit accumulator chains keep the collision probability
// negligible at corpus scale (~2^-128 per pair of distinct nests); the
// driver additionally cross-checks the stored pair count on a hit.
type Fingerprint struct {
	Hi, Lo uint64
}

// IsZero reports whether f is the zero fingerprint (no data folded).
func (f Fingerprint) IsZero() bool { return f.Hi == 0 && f.Lo == 0 }

// String renders the fingerprint as 32 hex digits.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x%016x", f.Hi, f.Lo) }

// FPHasher accumulates a Fingerprint from a stream of integers and strings.
// Call Reset before each fold; like the Encoder it is scratch-state, not
// safe for concurrent use — give each driver its own. The fold runs once
// per unit per corpus run, so the hot path is branch-free: no lazy seeding.
//
// The two chains mix every input through the same splitmix64-style
// finalizer the memo tables index with, seeded differently, so a single
// flipped coefficient flips about half the bits of both words.
type FPHasher struct {
	hi, lo uint64
}

// Fingerprint chain seeds (odd constants, arbitrary but fixed: they are
// baked into persisted stores, so changing them invalidates every store).
// fpStrSeed/fpStrPrime are the FNV-1a offset basis and prime, used for the
// one-pass string fold.
const (
	fpSeedHi   = 0x9E3779B97F4A7C15
	fpSeedLo   = 0xC2B2AE3D27D4EB4F
	fpStrSeed  = 0xCBF29CE484222325
	fpStrPrime = 0x00000100000001B3
)

// Reset returns the hasher to its seed state.
func (h *FPHasher) Reset() { h.hi, h.lo = fpSeedHi, fpSeedLo }

// AddInt folds one integer into both chains. The hi chain re-mixes per
// input (splitmix64); the lo chain is a multiply-accumulate polynomial
// hash, one multiply per input — independence of the two recurrences is
// what buys 128-bit strength at three multiplies per integer.
func (h *FPHasher) AddInt(v int64) {
	x := uint64(v)
	h.hi = mix(h.hi ^ (x + fpSeedHi))
	h.lo = h.lo*fpStrPrime + x
}

// strHash is a one-pass FNV-1a fold of s.
func strHash(s string) uint64 {
	acc := uint64(fpStrSeed)
	for i := 0; i < len(s); i++ {
		acc = (acc ^ uint64(s[i])) * fpStrPrime
	}
	return acc
}

// AddString folds a string: its length plus a one-pass FNV-1a digest, so
// the cost is one multiply per byte and two chain steps regardless of
// length. (An FNV collision between two identifiers would have to collide
// at equal lengths to go unnoticed — and the corpus driver additionally
// cross-checks stored pair counts.)
func (h *FPHasher) AddString(s string) {
	h.AddInt(int64(len(s)))
	h.AddInt(int64(strHash(s)))
}

// AddTerm folds one name → coefficient binding commutatively (by addition
// into both chains), for expression term maps whose iteration order is
// nondeterministic. Seal the collection with a final AddInt of its size so
// {x:1} followed by one integer cannot alias {x:1, y:...} shapes.
func (h *FPHasher) AddTerm(name string, coef int64) {
	t := mix(strHash(name) ^ uint64(coef)*fpSeedLo)
	h.hi += t
	h.lo += t * fpSeedHi // odd multiplier: bijective, decorrelates the chains
}

// AddUnordered folds a sub-fingerprint commutatively, for nondeterministic
// collections whose elements are bigger than a single term: fold each
// element into its own Reset hasher, sum the results here, then seal the
// collection with a final AddInt of its size.
func (h *FPHasher) AddUnordered(f Fingerprint) {
	h.hi += f.Hi
	h.lo += f.Lo ^ f.Hi
}

// Sum returns the accumulated fingerprint (the hasher keeps its state, so
// callers Reset between units).
func (h *FPHasher) Sum() Fingerprint {
	return Fingerprint{Hi: mix(h.hi), Lo: mix(h.lo)}
}
