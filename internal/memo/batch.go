package memo

// Batch stages inserts for a ShardedTable so a worker's misses are drained
// in bulk (InsertBatch) instead of paying one copy-on-write snapshot rebuild
// per entry. Entries staged in a Batch are invisible to other workers until
// Flush; the staging worker itself keeps serving them from its L1, and any
// cross-worker duplicate solve the delay could cause is already deduplicated
// by the InFlight layer. Not safe for concurrent use; give each worker its
// own Batch over the shared table.
type Batch[V any] struct {
	t       *ShardedTable[V]
	limit   int
	keys    []Key
	vals    []V
	onDrain func(keys []Key)
	scratch []Key
}

// NewBatch returns a Batch draining into t whenever limit entries are
// staged (limit <= 0 means 64).
func NewBatch[V any](t *ShardedTable[V], limit int) *Batch[V] {
	if limit <= 0 {
		limit = 64
	}
	return &Batch[V]{t: t, limit: limit}
}

// Add stages (k, v) for the next drain, flushing when the batch is full.
// The table will retain k: pass stable keys, exactly as for Insert.
func (b *Batch[V]) Add(k Key, v V) {
	b.keys = append(b.keys, k)
	b.vals = append(b.vals, v)
	if len(b.keys) >= b.limit {
		b.Flush()
	}
}

// OnDrain registers fn to be called after each Flush with the keys that
// just became visible in the table (InFlight.Forget is the intended use).
// The slice is only valid for the duration of the call.
func (b *Batch[V]) OnDrain(fn func(keys []Key)) { b.onDrain = fn }

// Flush drains every staged entry into the table.
func (b *Batch[V]) Flush() {
	if len(b.keys) == 0 {
		return
	}
	if b.onDrain != nil {
		b.scratch = append(b.scratch[:0], b.keys...)
	}
	b.t.InsertBatch(b.keys, b.vals)
	if b.onDrain != nil {
		b.onDrain(b.scratch)
		for i := range b.scratch {
			b.scratch[i] = nil
		}
	}
	var zero V
	for i := range b.keys {
		b.keys[i] = nil
		b.vals[i] = zero
	}
	b.keys = b.keys[:0]
	b.vals = b.vals[:0]
}

// Table returns the destination table.
func (b *Batch[V]) Table() *ShardedTable[V] { return b.t }

// Pending returns the number of staged, undrained entries.
func (b *Batch[V]) Pending() int { return len(b.keys) }
