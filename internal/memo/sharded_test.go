package memo

import (
	"fmt"
	"sync"
	"testing"
)

// TestShardedTableBasic checks single-goroutine semantics match Table's.
func TestShardedTableBasic(t *testing.T) {
	s := NewShardedTable[int](0)
	if _, ok := s.Lookup(Key{1, 2}); ok {
		t.Fatal("lookup on empty table hit")
	}
	s.Insert(Key{1, 2}, 12)
	s.Insert(Key{3, 4, 5}, 345)
	s.Insert(Key{1, 2}, 21) // overwrite
	if v, ok := s.Lookup(Key{1, 2}); !ok || v != 21 {
		t.Fatalf("Lookup({1,2}) = %d, %v; want 21, true", v, ok)
	}
	if v, ok := s.Lookup(Key{3, 4, 5}); !ok || v != 345 {
		t.Fatalf("Lookup({3,4,5}) = %d, %v; want 345, true", v, ok)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	// The lookup path is stat-free; traffic merges in via AddStats deltas.
	s.AddStats(3, 2)
	s.AddStats(0, 0) // zero delta is a no-op
	if lookups, hits := s.Stats(); lookups != 3 || hits != 2 {
		t.Fatalf("Stats = %d lookups, %d hits; want 3, 2", lookups, hits)
	}
	n := 0
	s.Range(func(Key, int) bool { n++; return true })
	if n != 2 {
		t.Fatalf("Range visited %d entries, want 2", n)
	}
}

// TestShardedTableShardCounts verifies power-of-two rounding.
func TestShardedTableShardCounts(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-1, DefaultShards}, {0, DefaultShards}, {1, 1}, {2, 2}, {3, 4},
		{5, 8}, {16, 16}, {100, 128},
	} {
		if got := len(NewShardedTable[int](tc.in).sh); got != tc.want {
			t.Errorf("NewShardedTable(%d): %d shards, want %d", tc.in, got, tc.want)
		}
	}
}

// TestShardedTableHammer pounds one table from many goroutines with
// overlapping key sets — every goroutine inserts and re-reads the full key
// population, so the same keys race through every shard. Run under -race
// this is the package's concurrency gate; the final state must hold every
// key with its (key-deterministic) value, matching the analyzer's benign
// double-insert contract.
func TestShardedTableHammer(t *testing.T) {
	const (
		goroutines = 16
		keys       = 500
		rounds     = 4
	)
	// Keys shaped like real memo keys: short int64 vectors.
	mk := func(i int) Key {
		return Key{int64(i), int64(i * 7), int64(-i), int64(len("k"))}
	}
	s := NewShardedTable[int](8)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Worker-local traffic counters, merged delta-only at exit —
			// the same discipline the concurrent driver uses.
			lookups, hits := 0, 0
			defer func() { s.AddStats(lookups, hits) }()
			for r := 0; r < rounds; r++ {
				// Stagger starting offsets so goroutines collide on
				// different keys at different times.
				for n := 0; n < keys; n++ {
					i := (n + g*keys/goroutines) % keys
					k := mk(i)
					v, ok := s.Lookup(k)
					lookups++
					if ok {
						hits++
						if v != i*3 {
							t.Errorf("Lookup(%v) = %d, want %d", k, v, i*3)
							return
						}
					}
					s.Insert(k, i*3) // same value from every goroutine
					v, ok = s.Lookup(k)
					lookups++
					if !ok || v != i*3 {
						t.Errorf("Lookup(%v) after insert = %d, %v", k, v, ok)
						return
					}
					hits++
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != keys {
		t.Fatalf("Len = %d, want %d", s.Len(), keys)
	}
	for i := 0; i < keys; i++ {
		if v, ok := s.Lookup(mk(i)); !ok || v != i*3 {
			t.Fatalf("final Lookup(%d) = %d, %v; want %d, true", i, v, ok, i*3)
		}
	}
	lookups, hits := s.Stats()
	// Every insert was verified by a hit lookup; the deltas pushed at worker
	// exit must add up without losing any.
	if min := goroutines * rounds * keys; hits < min || lookups != goroutines*rounds*keys*2 {
		t.Fatalf("Stats = %d lookups, %d hits; want %d lookups, ≥ %d hits", lookups, hits, goroutines*rounds*keys*2, min)
	}
}

// TestShardedTableLockFreeStress hammers the lock-free read path while
// writers grow and republish snapshots: readers spin on Lookup and must
// only ever observe a miss or the key-determined value — never a torn
// entry, a lost earlier insert, or an unterminated probe. Run under -race
// (make race) this is the copy-on-write publication gate.
func TestShardedTableLockFreeStress(t *testing.T) {
	const (
		readers = 8
		writers = 4
		keys    = 1000
	)
	mk := func(i int) Key { return Key{int64(i), int64(i * 31), int64(-i)} }
	val := func(i int) int { return i*7 + 1 }
	s := NewShardedTable[int](4) // few shards → heavy snapshot churn per shard

	stop := make(chan struct{})
	var readersDone sync.WaitGroup
	for r := 0; r < readers; r++ {
		readersDone.Add(1)
		go func(r int) {
			defer readersDone.Done()
			for i := r; ; i = (i + 1) % keys {
				select {
				case <-stop:
					return
				default:
				}
				if v, ok := s.Lookup(mk(i)); ok && v != val(i) {
					t.Errorf("Lookup(%d) = %d, want %d", i, v, val(i))
					return
				}
			}
		}(r)
	}

	var writersDone sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersDone.Add(1)
		go func(w int) {
			defer writersDone.Done()
			// Interleaved, overlapping ranges: every key is inserted by at
			// least one writer, many by several.
			for i := w; i < keys; i += 2 {
				k := mk(i)
				s.Insert(k, val(i))
				if v, ok := s.Lookup(k); !ok || v != val(i) {
					t.Errorf("writer %d lost own insert of %d: %d, %v", w, i, v, ok)
					return
				}
			}
		}(w)
	}
	writersDone.Wait()
	close(stop)
	readersDone.Wait()

	if s.Len() != keys {
		t.Fatalf("Len = %d, want %d", s.Len(), keys)
	}
	for i := 0; i < keys; i++ {
		if v, ok := s.Lookup(mk(i)); !ok || v != val(i) {
			t.Fatalf("final Lookup(%d) = %d, %v; want %d, true", i, v, ok, val(i))
		}
	}
}

// TestShardedLookupStoredInterns verifies LookupStored hands back the
// table's own key, not the probe key — the contract the L1 fill relies on
// to avoid cloning.
func TestShardedLookupStoredInterns(t *testing.T) {
	s := NewShardedTable[int](0)
	owned := Key{9, 8, 7}
	s.Insert(owned, 1)
	probe := owned.Clone()
	stored, v, ok := s.LookupStored(probe)
	if !ok || v != 1 {
		t.Fatalf("LookupStored = %d, %v", v, ok)
	}
	if &stored[0] != &owned[0] {
		t.Fatal("LookupStored must return the interned key, not the probe")
	}
}

// ExampleShardedTable shows the concurrent memo table's hit-rate stats: the
// same canonical problem looked up from many goroutines is computed once
// and then served from the shard it hashed to.
func ExampleShardedTable() {
	table := NewShardedTable[string](4)
	key := Key{2, 1, 1, -1, 0} // a canonicalized dependence problem

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, ok := table.Lookup(key)
			if !ok {
				// Miss: solve the problem (here: a constant) and cache it.
				// Racing workers may all miss and insert — the value is
				// determined by the key, so the overwrite is benign.
				table.Insert(key, "dependent, distance 1")
			}
			// Reads are stat-free; each worker pushes its traffic as one
			// delta when it finishes.
			hit := 0
			if ok {
				hit = 1
			}
			table.AddStats(1, hit)
		}()
	}
	wg.Wait()

	verdict, _ := table.Lookup(key)
	lookups, hits := table.Stats()
	fmt.Printf("verdict: %s\n", verdict)
	fmt.Printf("unique problems: %d\n", table.Len())
	fmt.Printf("all traffic merged, at least one miss: %v\n", lookups == 8 && hits < lookups)
	// Output:
	// verdict: dependent, distance 1
	// unique problems: 1
	// all traffic merged, at least one miss: true
}
