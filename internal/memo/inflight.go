package memo

import (
	"sync"
	"sync/atomic"
)

// InFlight is the singleflight layer of the concurrent memo hierarchy: it
// deduplicates solves of the same canonical problem that are in progress at
// the same time. The memo tables only prevent re-solving a problem after
// its verdict is published; when two workers miss on the same key within
// one solve's latency, both would run the full test cascade and race to
// insert equivalent entries. Claim elects exactly one leader per key; every
// other claimant blocks in Wait until the leader Finishes, then adopts the
// published verdict directly off the flight — no table re-probe, which also
// makes the layer correct when leaders defer their table inserts to a
// Batch.
//
// Values handed off must be deterministic in the key (one verdict per
// canonical problem — the same contract the tables have), so adoption is
// indistinguishable from a table hit. Leaders that decide not to cache
// (clock-tripped or cancelled verdicts) Finish with ok=false; waiters then
// re-claim, and whoever wins the next claim solves for itself.
//
// A flight that Finishes ok stays registered until Forget: with deferred
// (batched) table inserts there is a window where the verdict is published
// but not yet visible in the table, and a worker that misses the table
// during that window claims the closed flight and adopts instantly instead
// of re-solving. The driver Forgets each key when its insert drains, so the
// map holds at most the undrained inserts. ok=false flights are removed at
// Finish (there is nothing to adopt).
type InFlight[V any] struct {
	sh []inflightShard[V]
	// claims counts leader elections, waits counts Wait calls, adoptions
	// counts waits that ended in a value handoff. waits − adoptions is the
	// re-claim traffic caused by non-cacheable verdicts.
	claims    atomic.Int64
	waits     atomic.Int64
	adoptions atomic.Int64
}

type inflightShard[V any] struct {
	mu sync.Mutex
	m  map[string]*Flight[V]
	_  [32]byte
}

// Flight is one in-progress solve. The leader publishes through Finish;
// waiters block in Wait.
type Flight[V any] struct {
	g    *InFlight[V]
	si   int
	ks   string
	done chan struct{}
	// key/val/ok are written by Finish before done is closed and read by
	// waiters only after <-done, so they need no further synchronization.
	key Key
	val V
	ok  bool
}

// NewInFlight returns an InFlight layer with n shards, rounded up to a
// power of two (n <= 0 means DefaultShards).
func NewInFlight[V any](n int) *InFlight[V] {
	if n <= 0 {
		n = DefaultShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	g := &InFlight[V]{sh: make([]inflightShard[V], p)}
	for i := range g.sh {
		g.sh[i].m = make(map[string]*Flight[V])
	}
	return g
}

// Claim registers the caller as the solver of canonical key k, returning
// leader=true and a Flight it must eventually Finish. If another solve of k
// is already in flight, Claim returns that solve's Flight and leader=false;
// the caller should Wait on it.
func (g *InFlight[V]) Claim(k Key) (f *Flight[V], leader bool) {
	ks := k.Bytes()
	si := int(mix(k.hash()) & uint64(len(g.sh)-1))
	sh := &g.sh[si]
	sh.mu.Lock()
	if cur, ok := sh.m[ks]; ok {
		sh.mu.Unlock()
		return cur, false
	}
	f = &Flight[V]{g: g, si: si, ks: ks, done: make(chan struct{})}
	sh.m[ks] = f
	sh.mu.Unlock()
	g.claims.Add(1)
	return f, true
}

// Finish publishes the leader's verdict on f and releases every waiter.
// stored must be the interned (stable) key of the published entry when
// ok=true; ok=false means the leader did not cache, telling waiters to
// re-claim and solve for themselves. A flight finished ok remains claimable
// (late claimants adopt without waiting) until Forget; a flight finished
// !ok is deregistered here so the next claimant becomes a leader.
func (g *InFlight[V]) Finish(f *Flight[V], stored Key, v V, ok bool) {
	f.key, f.val, f.ok = stored, v, ok
	if !ok {
		sh := &g.sh[f.si]
		sh.mu.Lock()
		delete(sh.m, f.ks)
		sh.mu.Unlock()
	}
	close(f.done)
}

// Forget deregisters the flight for key k, if any. The driver calls this
// once k's table insert is visible to every worker (the batch drained):
// from then on a lookup hits the table and the flight is no longer needed.
func (g *InFlight[V]) Forget(k Key) {
	ks := k.Bytes()
	sh := &g.sh[mix(k.hash())&uint64(len(g.sh)-1)]
	sh.mu.Lock()
	delete(sh.m, ks)
	sh.mu.Unlock()
}

// Wait blocks until the flight's leader Finishes and returns the published
// interned key and value. ok=false means the leader did not cache its
// verdict; the caller should re-claim.
func (f *Flight[V]) Wait() (Key, V, bool) {
	f.g.waits.Add(1)
	<-f.done
	if f.ok {
		f.g.adoptions.Add(1)
	}
	return f.key, f.val, f.ok
}

// Stats returns the cumulative leader-election, wait, and adoption counts.
func (g *InFlight[V]) Stats() (claims, waits, adoptions int) {
	return int(g.claims.Load()), int(g.waits.Load()), int(g.adoptions.Load())
}
