package memo

import (
	"testing"

	"exactdep/internal/ir"
	"exactdep/internal/system"
)

// encoderProblems builds a spread of problem shapes: plain, offset, unused
// outer loop, triangular bounds, two-dimensional nest — enough to exercise
// variable dropping, level ranking, and bound encoding.
func encoderProblems(t testing.TB) []*system.Problem {
	return []*system.Problem{
		buildPair(t, []ir.Loop{loop("i", 1, 10)},
			ir.NewVar("i").AddConst(10), ir.NewVar("i")),
		buildPair(t, []ir.Loop{loop("i", 1, 100)},
			ir.NewVar("i").Scale(2), ir.NewVar("i").AddConst(1)),
		buildPair(t, []ir.Loop{loop("i", 1, 10), loop("j", 1, 10)},
			ir.NewVar("j").AddConst(10), ir.NewVar("j")),
		buildPair(t, []ir.Loop{
			loop("i", 1, 10),
			{Index: "j", Lower: ir.NewVar("i"), Upper: ir.NewConst(10)},
		}, ir.NewVar("j"), ir.NewVar("j").AddConst(-1)),
		buildPair(t, []ir.Loop{loop("i", 1, 10), loop("j", 1, 20)},
			ir.NewVar("i").Add(ir.NewVar("j")), ir.NewVar("i").AddConst(5)),
	}
}

// TestEncoderMatchesOneShot pins the scratch-backed encoder to the one-shot
// package functions: same problems, same keys, for both schemes — including
// when one Encoder is reused across all problems in sequence (buffer reuse
// must not leak state between encodes).
func TestEncoderMatchesOneShot(t *testing.T) {
	probs := encoderProblems(t)
	var e Encoder
	for _, improved := range []bool{false, true} {
		for round := 0; round < 2; round++ { // reused buffers on round 2
			for pi, p := range probs {
				if got, want := e.EncodeFull(p, improved), EncodeFull(p, improved); !got.equal(want) {
					t.Errorf("problem %d improved=%v round %d: full key %v, want %v", pi, improved, round, got, want)
				}
				if got, want := e.EncodeEq(p, improved), EncodeEq(p, improved); !got.equal(want) {
					t.Errorf("problem %d improved=%v round %d: eq key %v, want %v", pi, improved, round, got, want)
				}
			}
		}
	}
}

// TestEncoderBufferAliasing pins the documented aliasing contract: a full
// key survives a later EncodeEq on the same encoder (the analyzer encodes
// the full key, misses, encodes the eq key, then inserts under the full
// key), while a second EncodeFull invalidates the first.
func TestEncoderBufferAliasing(t *testing.T) {
	probs := encoderProblems(t)
	var e Encoder
	full := e.EncodeFull(probs[0], true)
	want := full.Clone()
	e.EncodeEq(probs[1], true)
	e.EncodeEq(probs[3], true)
	if !full.equal(want) {
		t.Fatalf("EncodeEq clobbered the live full key: %v, want %v", full, want)
	}
	if e.EncodeFull(probs[3], true).equal(want) {
		t.Fatal("test premise broken: distinct problems share a key")
	}
}

// TestEncoderCloneOutlivesScratch verifies Clone detaches a key from the
// encoder's buffers.
func TestEncoderCloneOutlivesScratch(t *testing.T) {
	probs := encoderProblems(t)
	var e Encoder
	k := e.EncodeFull(probs[0], true).Clone()
	want := EncodeFull(probs[0], true)
	for _, p := range probs {
		e.EncodeFull(p, true)
	}
	if !k.equal(want) {
		t.Fatalf("cloned key changed under encoder reuse: %v, want %v", k, want)
	}
	if Key(nil).Clone() != nil {
		t.Fatal("Clone of nil key must stay nil")
	}
}
