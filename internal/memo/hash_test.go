package memo

import "testing"

// TestHashShiftWrap pins the documented wrap: the shift amount is i mod 63
// (cycling 0..62, never 63), so element i of a long key lands on the same
// shift as element i±63, and short keys never park a contribution in the
// bare sign bit.
func TestHashShiftWrap(t *testing.T) {
	k := make(Key, 130) // covers two full wraps: shifts 0..62, 0..62, 0..3
	for i := range k {
		k[i] = int64(i + 1)
	}
	want := uint64(len(k))
	for i, v := range k {
		want += uint64(v) << (uint(i) % 63)
	}
	if got := k.hash(); got != want {
		t.Fatalf("hash = %#x, want %#x", got, want)
	}

	// Element 63 must contribute at shift 0 (63 mod 63), element 64 at
	// shift 1 — not at shifts 63/64.
	base := make(Key, 65)
	bumped := base.Clone()
	bumped[63] = 1
	if got, want := bumped.hash()-base.hash(), uint64(1)<<0; got != want {
		t.Fatalf("element 63 contributed %#x, want %#x (shift 0)", got, want)
	}
	bumped = base.Clone()
	bumped[64] = 1
	if got, want := bumped.hash()-base.hash(), uint64(1)<<1; got != want {
		t.Fatalf("element 64 contributed %#x, want %#x (shift 1)", got, want)
	}
}

func TestHashExportedMatchesInternal(t *testing.T) {
	k := Key{3, -1, 7, 0, 2}
	if k.Hash() != k.hash() {
		t.Fatal("Key.Hash must expose the internal hash")
	}
}
