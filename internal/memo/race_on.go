//go:build race

package memo

// raceEnabled lets allocation-count tests skip themselves under the race
// detector, whose instrumentation allocates.
const raceEnabled = true
