package memo

import (
	"fmt"
	"testing"
	"testing/quick"

	"exactdep/internal/ir"
	"exactdep/internal/system"
)

// buildPair constructs the problem for a loop nest with the given loops and
// one-dimensional references a[subA] = a[subB].
func buildPair(t testing.TB, loops []ir.Loop, subA, subB ir.Expr) *system.Problem {
	t.Helper()
	nest := &ir.Nest{Label: "m", Loops: loops}
	a := ir.Ref{Array: "a", Subscripts: []ir.Expr{subA}, Kind: ir.Write, Depth: len(loops)}
	b := ir.Ref{Array: "a", Subscripts: []ir.Expr{subB}, Kind: ir.Read, Depth: len(loops)}
	nest.Refs = []ir.Ref{a, b}
	p, err := system.Build(nest.Pair(a, b))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func loop(idx string, lo, hi int64) ir.Loop {
	return ir.Loop{Index: idx, Lower: ir.NewConst(lo), Upper: ir.NewConst(hi)}
}

func TestEncodeDeterministic(t *testing.T) {
	p1 := buildPair(t, []ir.Loop{loop("i", 1, 10)}, ir.NewVar("i").AddConst(10), ir.NewVar("i"))
	p2 := buildPair(t, []ir.Loop{loop("i", 1, 10)}, ir.NewVar("i").AddConst(10), ir.NewVar("i"))
	for _, improved := range []bool{false, true} {
		if !EncodeFull(p1, improved).equal(EncodeFull(p2, improved)) {
			t.Errorf("identical problems must share a full key (improved=%v)", improved)
		}
		if !EncodeEq(p1, improved).equal(EncodeEq(p2, improved)) {
			t.Errorf("identical problems must share an eq key (improved=%v)", improved)
		}
	}
}

func TestEncodeDistinguishes(t *testing.T) {
	base := buildPair(t, []ir.Loop{loop("i", 1, 10)}, ir.NewVar("i").AddConst(10), ir.NewVar("i"))
	differentOffset := buildPair(t, []ir.Loop{loop("i", 1, 10)}, ir.NewVar("i").AddConst(9), ir.NewVar("i"))
	differentBounds := buildPair(t, []ir.Loop{loop("i", 1, 20)}, ir.NewVar("i").AddConst(10), ir.NewVar("i"))
	if EncodeFull(base, false).equal(EncodeFull(differentOffset, false)) {
		t.Error("different offsets must not collide")
	}
	if EncodeFull(base, false).equal(EncodeFull(differentBounds, false)) {
		t.Error("different bounds must not collide in the full key")
	}
	// ...but must collide in the equation-only key
	if !EncodeEq(base, false).equal(EncodeEq(differentBounds, false)) {
		t.Error("eq key must ignore bounds")
	}
}

func TestImprovedCollapsesUnusedLoops(t *testing.T) {
	// The paper's example: programs (a) and (b) — a[i+10]=a[i] vs
	// a[j+10]=a[j], both inside i and j loops — collapse to the same
	// single-loop case under the improved scheme.
	pa := buildPair(t, []ir.Loop{loop("i", 1, 10), loop("j", 1, 10)},
		ir.NewVar("i").AddConst(10), ir.NewVar("i"))
	pb := buildPair(t, []ir.Loop{loop("i", 1, 10), loop("j", 1, 10)},
		ir.NewVar("j").AddConst(10), ir.NewVar("j"))
	pc := buildPair(t, []ir.Loop{loop("i", 1, 10)},
		ir.NewVar("i").AddConst(10), ir.NewVar("i"))

	if EncodeFull(pa, false).equal(EncodeFull(pb, false)) {
		t.Error("simple scheme must distinguish i-based from j-based subscripts")
	}
	ka, kb, kc := EncodeFull(pa, true), EncodeFull(pb, true), EncodeFull(pc, true)
	if !ka.equal(kb) {
		t.Errorf("improved scheme must merge (a) and (b):\n%v\n%v", ka, kb)
	}
	if !ka.equal(kc) {
		t.Errorf("improved scheme must collapse to the single-loop case:\n%v\n%v", ka, kc)
	}
}

func TestImprovedKeepsTransitivelyUsedVars(t *testing.T) {
	// for i = 1 to 10, for j = i to 10 { a[j] = a[j-1] }: i is absent from
	// the subscripts but bounds j, so the improved scheme must keep it.
	loops := []ir.Loop{
		loop("i", 1, 10),
		{Index: "j", Lower: ir.NewVar("i"), Upper: ir.NewConst(10)},
	}
	p := buildPair(t, loops, ir.NewVar("j"), ir.NewVar("j").AddConst(-1))
	flat := buildPair(t, []ir.Loop{loop("j", 1, 10)}, ir.NewVar("j"), ir.NewVar("j").AddConst(-1))
	if EncodeFull(p, true).equal(EncodeFull(flat, true)) {
		t.Error("triangular bound variable must not be eliminated")
	}
}

func TestNameBlindEncoding(t *testing.T) {
	// Same structure under different index names must share keys.
	p1 := buildPair(t, []ir.Loop{loop("i", 1, 10)}, ir.NewVar("i").AddConst(3), ir.NewVar("i"))
	p2 := buildPair(t, []ir.Loop{loop("k", 1, 10)}, ir.NewVar("k").AddConst(3), ir.NewVar("k"))
	if !EncodeFull(p1, false).equal(EncodeFull(p2, false)) {
		t.Error("encoding must be name-blind")
	}
}

func TestTableBasics(t *testing.T) {
	tbl := NewTable[string]()
	k1 := Key{1, 2, 3}
	if _, ok := tbl.Lookup(k1); ok {
		t.Fatal("empty table lookup must miss")
	}
	tbl.Insert(k1, "hello")
	if v, ok := tbl.Lookup(k1); !ok || v != "hello" {
		t.Fatalf("lookup = %q, %v", v, ok)
	}
	tbl.Insert(k1, "world") // overwrite
	if v, _ := tbl.Lookup(k1); v != "world" {
		t.Fatal("overwrite failed")
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	lookups, hits := tbl.Stats()
	if lookups != 3 || hits != 2 {
		t.Fatalf("stats = %d lookups, %d hits", lookups, hits)
	}
}

func TestTableGrowth(t *testing.T) {
	tbl := NewTable[int]()
	const n = 1000
	for i := 0; i < n; i++ {
		tbl.Insert(Key{int64(i), int64(i * 7)}, i)
	}
	if tbl.Len() != n {
		t.Fatalf("Len = %d, want %d", tbl.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := tbl.Lookup(Key{int64(i), int64(i * 7)}); !ok || v != i {
			t.Fatalf("lost entry %d after growth", i)
		}
	}
}

func TestTableCollisions(t *testing.T) {
	// The paper's hash is weak by design ("random collisions are not much
	// of a problem"); verify correctness under forced collisions.
	tbl := NewTable[int]()
	// keys of the same length whose weighted sums coincide
	k1 := Key{2, 0} // h = 2 + 2
	k2 := Key{0, 1} // h = 2 + 2
	if k1.hash() != k2.hash() {
		t.Fatalf("test premise broken: hashes differ (%d, %d)", k1.hash(), k2.hash())
	}
	tbl.Insert(k1, 1)
	tbl.Insert(k2, 2)
	if v, _ := tbl.Lookup(k1); v != 1 {
		t.Fatal("collision clobbered k1")
	}
	if v, _ := tbl.Lookup(k2); v != 2 {
		t.Fatal("collision clobbered k2")
	}
}

func TestTableRange(t *testing.T) {
	tbl := NewTable[int]()
	want := map[string]int{}
	for i := 0; i < 50; i++ {
		k := Key{int64(i), int64(i * i)}
		tbl.Insert(k, i)
		want[fmt.Sprint([]int64(k))] = i
	}
	got := map[string]int{}
	tbl.Range(func(k Key, v int) bool {
		got[fmt.Sprint([]int64(k))] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range lost %s", k)
		}
	}
	// early termination
	n := 0
	tbl.Range(func(Key, int) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("Range early stop visited %d", n)
	}
}

// Property: a table behaves like a map for random insert sequences.
func TestTableMatchesMap(t *testing.T) {
	prop := func(ops []struct {
		K []int8
		V int32
	}) bool {
		tbl := NewTable[int32]()
		ref := map[string]int32{}
		for _, op := range ops {
			k := make(Key, len(op.K))
			for i, b := range op.K {
				k[i] = int64(b)
			}
			tbl.Insert(k, op.V)
			ref[fmt.Sprint([]int64(k))] = op.V
		}
		// verify every reference entry via re-encoding
		for _, op := range ops {
			k := make(Key, len(op.K))
			for i, b := range op.K {
				k[i] = int64(b)
			}
			got, ok := tbl.Lookup(k)
			if !ok || got != ref[fmt.Sprint([]int64(k))] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
