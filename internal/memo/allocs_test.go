package memo

import (
	"testing"

	"exactdep/internal/system"
)

// TestEncoderZeroAllocs gates the scratch-backed encoder: after warmup,
// encoding full and eq keys allocates nothing, for every problem shape and
// both schemes. Part of the Makefile allocgate.
func TestEncoderZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	probs := encoderProblems(t)
	var e Encoder
	for _, p := range probs { // warm the scratch buffers
		e.EncodeFull(p, true)
		e.EncodeEq(p, true)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, p := range probs {
			for _, improved := range []bool{false, true} {
				e.EncodeFull(p, improved)
				e.EncodeEq(p, improved)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("encode allocates %.1f times per sweep, want 0", allocs)
	}
}

// TestMemoHitZeroAllocs gates the whole steady-state memo path — encode,
// L1 probe, L2 lock-free probe, hit — at zero allocations per candidate.
// Part of the Makefile allocgate.
func TestMemoHitZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	probs := encoderProblems(t)
	var e Encoder
	l2 := NewShardedTable[int](0)
	l1 := NewL1[int](0)
	// Two problems may share an improved key (the paper's unused-loop
	// collapse), so expected values are assigned per canonical key.
	want := make([]int, len(probs))
	canon := map[string]int{}
	for i, p := range probs {
		k := e.EncodeFull(p, true)
		if j, ok := canon[k.Bytes()]; ok {
			want[i] = j
			continue
		}
		canon[k.Bytes()] = i
		want[i] = i
		ck := k.Clone()
		l2.Insert(ck, i)
		l1.Store(ck, i)
	}
	hit := func(p *system.Problem, want int) {
		k := e.EncodeFull(p, true)
		if v, ok := l1.Lookup(k); ok {
			if v != want {
				t.Fatalf("L1 value %d, want %d", v, want)
			}
			return
		}
		_, v, ok := l2.LookupStored(k)
		if !ok || v != want {
			t.Fatalf("L2 = %d, %v, want hit with %d", v, ok, want)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i, p := range probs {
			hit(p, want[i])
		}
	})
	if allocs != 0 {
		t.Fatalf("memo hit allocates %.1f times per sweep, want 0", allocs)
	}
}

// BenchmarkMemoEncode measures the scratch-backed canonicalization alone
// (run with -benchmem: allocs/op must be 0 in steady state).
func BenchmarkMemoEncode(b *testing.B) {
	probs := encoderProblems(b)
	var e Encoder
	for _, p := range probs {
		e.EncodeFull(p, true)
		e.EncodeEq(p, true)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := probs[i%len(probs)]
		e.EncodeFull(p, true)
		e.EncodeEq(p, true)
	}
}

// BenchmarkShardedLookupParallel hammers the lock-free read path from
// GOMAXPROCS goroutines: with mutex-free lookups the per-op time holds (or
// improves) as -cpu rises instead of plateauing on a shared lock.
func BenchmarkShardedLookupParallel(b *testing.B) {
	tbl := NewShardedTable[int](0)
	keys := make([]Key, 512)
	for i := range keys {
		keys[i] = Key{int64(i), int64(i * 7), int64(i % 13)}
		tbl.Insert(keys[i], i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := keys[i%len(keys)]
			if v, ok := tbl.Lookup(k); !ok || v != i%len(keys) {
				b.Fatalf("lookup %d = %d, %v", i%len(keys), v, ok)
			}
			i++
		}
	})
}
