package memo

import "testing"

// resetKeys returns a few distinct stable keys.
func resetKeys(n int) []Key {
	out := make([]Key, n)
	for i := range out {
		out[i] = Key{int64(i + 1), int64(2 * (i + 1)), 7}
	}
	return out
}

func TestTableReset(t *testing.T) {
	tb := NewTable[int]()
	keys := resetKeys(200) // force at least one grow past initialBuckets
	for i, k := range keys {
		tb.Insert(k, i)
	}
	if tb.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tb.Len(), len(keys))
	}
	if _, ok := tb.Lookup(keys[3]); !ok {
		t.Fatal("lookup miss before reset")
	}
	lookups, hits := tb.Stats()

	tb.Reset()
	if tb.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", tb.Len())
	}
	if tb.Buckets() != initialBuckets {
		t.Fatalf("Buckets after Reset = %d, want %d", tb.Buckets(), initialBuckets)
	}
	if _, ok := tb.Lookup(keys[3]); ok {
		t.Fatal("stale entry survived Reset")
	}
	l2, h2 := tb.Stats()
	if l2 != lookups+1 || h2 != hits {
		t.Fatalf("Stats after Reset = (%d, %d), want (%d, %d): counters must be cumulative", l2, h2, lookups+1, hits)
	}

	// The table must be fully usable after a reset.
	tb.Insert(keys[5], 99)
	if v, ok := tb.Lookup(keys[5]); !ok || v != 99 {
		t.Fatalf("post-Reset insert/lookup = (%d, %v), want (99, true)", v, ok)
	}
}

func TestShardedTableReset(t *testing.T) {
	st := NewShardedTable[int](4)
	keys := resetKeys(300)
	for i, k := range keys {
		st.Insert(k, i)
	}
	if st.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", st.Len(), len(keys))
	}
	grown := st.Buckets()
	st.AddStats(10, 4)

	st.Reset()
	if st.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", st.Len())
	}
	if st.Buckets() >= grown {
		t.Fatalf("Buckets after Reset = %d, want shrunk below %d", st.Buckets(), grown)
	}
	if _, ok := st.Lookup(keys[7]); ok {
		t.Fatal("stale entry survived Reset")
	}
	if l, h := st.Stats(); l != 10 || h != 4 {
		t.Fatalf("Stats after Reset = (%d, %d), want (10, 4): counters must be cumulative", l, h)
	}

	st.Insert(keys[9], 42)
	if v, ok := st.Lookup(keys[9]); !ok || v != 42 {
		t.Fatalf("post-Reset insert/lookup = (%d, %v), want (42, true)", v, ok)
	}
}

func TestL1Reset(t *testing.T) {
	l1 := NewL1[int](8)
	keys := resetKeys(6)
	for i, k := range keys {
		l1.Store(k, i)
	}
	if l1.Len() == 0 {
		t.Fatal("no live slots before reset")
	}
	l1.Lookup(keys[0])
	lookups, _ := l1.Stats()

	l1.Reset()
	if l1.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", l1.Len())
	}
	for _, k := range keys {
		if _, ok := l1.Lookup(k); ok {
			t.Fatalf("stale entry for %v survived Reset", k)
		}
	}
	if l, _ := l1.Stats(); l != lookups+len(keys) {
		t.Fatalf("lookups after Reset = %d, want %d: counters must be cumulative", l, lookups+len(keys))
	}

	l1.Store(keys[2], 5)
	if v, ok := l1.Lookup(keys[2]); !ok || v != 5 {
		t.Fatalf("post-Reset store/lookup = (%d, %v), want (5, true)", v, ok)
	}
}
