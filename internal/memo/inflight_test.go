package memo

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestInFlightLeaderAndAdopt orchestrates the dedup guarantee directly: one
// leader claims a key, several racers claim while the solve is in progress,
// the leader publishes — every racer must adopt the published verdict, and
// exactly one claim may have been a leader election.
func TestInFlightLeaderAndAdopt(t *testing.T) {
	g := NewInFlight[int](4)
	k := Key{7, 1, 2, 3}

	f, leader := g.Claim(k)
	if !leader {
		t.Fatal("first claim of an idle key must elect a leader")
	}

	const racers = 8
	var wg sync.WaitGroup
	results := make([]int, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rf, rl := g.Claim(k)
			if rl {
				t.Error("racer elected leader while a flight was registered")
				return
			}
			ik, v, ok := rf.Wait()
			if !ok {
				t.Error("racer saw ok=false from a cacheable finish")
				return
			}
			if &ik[0] != &k[0] {
				t.Error("racer adopted a key other than the published instance")
			}
			results[i] = v
		}(i)
	}

	// Wait until every racer is parked in Wait before publishing, so the
	// adoption path (not the table) is what serves them.
	for {
		if _, waits, _ := g.Stats(); waits >= racers {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	g.Finish(f, k, 42, true)
	wg.Wait()

	for i, v := range results {
		if v != 42 {
			t.Fatalf("racer %d adopted %d, want 42", i, v)
		}
	}
	claims, waits, adoptions := g.Stats()
	if claims != 1 {
		t.Fatalf("claims = %d, want exactly 1 leader election", claims)
	}
	if waits != racers || adoptions != racers {
		t.Fatalf("waits/adoptions = %d/%d, want %d/%d", waits, adoptions, racers, racers)
	}
}

// TestInFlightNonCacheableReclaim: a leader that finishes ok=false tells its
// waiters to re-claim; the flight is deregistered, so the next claim elects
// a new leader.
func TestInFlightNonCacheableReclaim(t *testing.T) {
	g := NewInFlight[int](1)
	k := Key{9, 4}

	f, leader := g.Claim(k)
	if !leader {
		t.Fatal("first claim must lead")
	}
	done := make(chan bool)
	go func() {
		rf, rl := g.Claim(k)
		if rl {
			t.Error("claim during flight must not lead")
			done <- false
			return
		}
		if _, _, ok := rf.Wait(); ok {
			t.Error("waiter saw ok=true from a non-cacheable finish")
			done <- false
			return
		}
		// Re-claim after the failed flight: now we must lead.
		rf2, rl2 := g.Claim(k)
		if !rl2 {
			t.Error("re-claim after ok=false finish must elect a new leader")
			done <- false
			return
		}
		g.Finish(rf2, k, 7, true)
		done <- true
	}()

	for {
		if _, waits, _ := g.Stats(); waits >= 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	g.Finish(f, nil, 0, false)
	if !<-done {
		t.Fatal("reclaim scenario failed")
	}
	if claims, _, _ := g.Stats(); claims != 2 {
		t.Fatalf("claims = %d, want 2 (original + re-claim)", claims)
	}
}

// TestInFlightFinishedFlightServesUntilForget pins the deferred-insert
// contract: a flight finished ok stays claimable — late claimants adopt its
// verdict without waiting — until Forget retires it, after which a claim
// elects a fresh leader.
func TestInFlightFinishedFlightServesUntilForget(t *testing.T) {
	g := NewInFlight[string](2)
	k := Key{1, 2}

	f, leader := g.Claim(k)
	if !leader {
		t.Fatal("first claim must lead")
	}
	g.Finish(f, k, "verdict", true)

	// The insert is still staged in some batch: a claim in this window must
	// adopt off the closed flight instead of re-solving.
	lf, ll := g.Claim(k)
	if ll {
		t.Fatal("claim of a finished-but-unforgotten key must not lead")
	}
	if _, v, ok := lf.Wait(); !ok || v != "verdict" {
		t.Fatalf("late claimant got (%q, %v), want (\"verdict\", true)", v, ok)
	}

	g.Forget(k)
	f2, l2 := g.Claim(k)
	if !l2 {
		t.Fatal("claim after Forget must elect a leader (the table now serves the key)")
	}
	g.Finish(f2, k, "again", true)
	g.Forget(k)
}

// TestInFlightHammer stress-races many goroutines over a small key space in
// the driver's usage pattern (lookup table → claim → leader solves and
// inserts, waiters adopt), with flights retired only at the end — the
// staged-insert window at its widest. Exactly one solve per key must happen,
// and every goroutine must observe that solve's value. Run under -race by
// make race.
func TestInFlightHammer(t *testing.T) {
	const (
		goroutines = 8
		keyCount   = 32
		rounds     = 50
	)
	g := NewInFlight[int64](8)
	tbl := NewShardedTable[int64](8)
	keys := make([]Key, keyCount)
	for i := range keys {
		keys[i] = Key{int64(i), int64(i) * 3, 11}
	}
	var solves [keyCount]atomic.Int64

	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for ki := range keys {
					k := keys[ki]
					want := int64(ki) * 1000
					if v, ok := tbl.Lookup(k); ok {
						if v != want {
							t.Errorf("table served %d for key %d, want %d", v, ki, want)
						}
						continue
					}
					for {
						f, leader := g.Claim(k)
						if leader {
							solves[ki].Add(1)
							tbl.Insert(k.Clone(), want)
							g.Finish(f, k, want, true)
							break
						}
						if _, v, ok := f.Wait(); ok {
							if v != want {
								t.Errorf("adopted %d for key %d, want %d", v, ki, want)
							}
							break
						}
					}
				}
			}
		}(gi)
	}
	wg.Wait()

	for ki := range solves {
		if n := solves[ki].Load(); n != 1 {
			t.Fatalf("key %d solved %d times, want exactly 1", ki, n)
		}
	}
	claims, _, _ := g.Stats()
	if claims != keyCount {
		t.Fatalf("claims = %d, want %d (one leader election per key)", claims, keyCount)
	}
	for _, k := range keys {
		g.Forget(k)
		if _, leader := g.Claim(k); !leader {
			t.Fatal("claim after Forget must lead")
		}
	}
}

// TestInsertBatchMatchesInsert: a batched drain must leave the table in the
// same state as one Insert per entry, including overwrite-keeps-first-key
// semantics and stats deltas.
func TestInsertBatchMatchesInsert(t *testing.T) {
	a := NewShardedTable[int](4)
	b := NewShardedTable[int](4)
	var keys []Key
	var vals []int
	for i := 0; i < 200; i++ {
		k := Key{int64(i % 50), int64(i / 50)} // duplicates across the set
		keys = append(keys, k)
		vals = append(vals, i)
		a.Insert(k.Clone(), i)
	}
	// InsertBatch consumes (nils) the key slice, so feed it clones.
	bk := make([]Key, len(keys))
	for i := range keys {
		bk[i] = keys[i].Clone()
	}
	b.InsertBatch(bk, vals)

	if a.Len() != b.Len() {
		t.Fatalf("Len: per-entry %d vs batched %d", a.Len(), b.Len())
	}
	for i := 0; i < 50; i++ {
		for j := 0; j < 4; j++ {
			k := Key{int64(i), int64(j)}
			av, aok := a.Lookup(k)
			bv, bok := b.Lookup(k)
			if aok != bok || av != bv {
				t.Fatalf("key %v: per-entry (%d,%v) vs batched (%d,%v)", k, av, aok, bv, bok)
			}
		}
	}
	for i := range bk {
		if bk[i] != nil {
			t.Fatal("InsertBatch must nil out consumed keys")
		}
	}
}

// TestBatchStagingAndDrain covers the Batch wrapper: staged entries are
// invisible until Flush (or the limit), drain in bulk, and report through
// OnDrain with the keys that just became visible.
func TestBatchStagingAndDrain(t *testing.T) {
	tbl := NewShardedTable[int](2)
	b := NewBatch(tbl, 4)
	var drained []string
	b.OnDrain(func(keys []Key) {
		for _, k := range keys {
			drained = append(drained, k.Bytes())
		}
	})

	k1, k2 := Key{1}, Key{2}
	b.Add(k1, 10)
	b.Add(k2, 20)
	if _, ok := tbl.Lookup(k1); ok {
		t.Fatal("staged entry visible before drain")
	}
	if b.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", b.Pending())
	}
	b.Flush()
	if v, ok := tbl.Lookup(k1); !ok || v != 10 {
		t.Fatalf("after flush, k1 = (%d,%v), want (10,true)", v, ok)
	}
	if len(drained) != 2 || drained[0] != k1.Bytes() || drained[1] != k2.Bytes() {
		t.Fatalf("OnDrain saw %d keys, want the 2 staged ones", len(drained))
	}
	if b.Pending() != 0 {
		t.Fatal("Flush must clear the staging area")
	}

	// The limit triggers an automatic drain (with the OnDrain callback).
	drained = drained[:0]
	for i := int64(10); i < 14; i++ {
		b.Add(Key{i}, int(i))
	}
	if b.Pending() != 0 {
		t.Fatal("Add at the limit must auto-flush")
	}
	if len(drained) != 4 {
		t.Fatalf("OnDrain saw %d keys after auto-flush, want 4", len(drained))
	}
	if tbl.Len() != 6 {
		t.Fatalf("table has %d entries, want 6", tbl.Len())
	}
	if b.Table() != tbl {
		t.Fatal("Table must return the destination table")
	}
}
