// Package stats collects the counters the paper's evaluation reports:
// per-test application counts (Table 1), memoization uniqueness (Tables
// 2–3), direction-vector test counts (Tables 4, 5, 7), and verdict tallies
// (§7's accuracy comparison).
package stats

import "exactdep/internal/dtest"

// numKinds sizes the per-test arrays (indexed by dtest.Kind).
const numKinds = int(dtest.KindFourierMotzkin) + 1

// Counters accumulates analysis statistics for one program (or a whole
// suite when merged).
type Counters struct {
	// Pairs is the number of candidate pairs examined.
	Pairs int
	// Constant counts pairs handled without testing (Table 1 column 1).
	Constant int
	// GCDIndependent counts pairs rejected by Extended GCD alone (column 2).
	GCDIndependent int
	// Tests counts the deciding test of each base cascade run, indexed by
	// dtest.Kind (Table 1 columns 3–6).
	Tests [numKinds]int
	// DirTests counts every cascade invocation during direction-vector
	// refinement, indexed by dtest.Kind (Tables 4, 5, 7).
	DirTests [numKinds]int
	// TestIndependent counts, per kind, how often the direction-vector
	// cascade invocations returned independent (§7's per-test yields).
	TestIndependent [numKinds]int

	// Memoization.
	FullLookups, FullHits int // with-bounds table
	EqLookups, EqHits     int // without-bounds (GCD) table
	UniqueFull, UniqueEq  int

	// Verdicts.
	Independent int
	Dependent   int
	Unknown     int
	ImplicitBB  int
	// Vectors is the total number of dependence direction vectors found.
	Vectors int
}

// Add merges other into c.
func (c *Counters) Add(o *Counters) {
	c.Pairs += o.Pairs
	c.Constant += o.Constant
	c.GCDIndependent += o.GCDIndependent
	for i := range c.Tests {
		c.Tests[i] += o.Tests[i]
		c.DirTests[i] += o.DirTests[i]
		c.TestIndependent[i] += o.TestIndependent[i]
	}
	c.FullLookups += o.FullLookups
	c.FullHits += o.FullHits
	c.EqLookups += o.EqLookups
	c.EqHits += o.EqHits
	c.UniqueFull += o.UniqueFull
	c.UniqueEq += o.UniqueEq
	c.Independent += o.Independent
	c.Dependent += o.Dependent
	c.Unknown += o.Unknown
	c.ImplicitBB += o.ImplicitBB
	c.Vectors += o.Vectors
}

// TotalTests is the number of base cascade applications (Table 1 columns
// 3–6 summed; the paper's 5,679).
func (c *Counters) TotalTests() int {
	n := 0
	for _, v := range c.Tests {
		n += v
	}
	return n
}

// TotalDirTests is the number of direction-vector cascade invocations.
func (c *Counters) TotalDirTests() int {
	n := 0
	for _, v := range c.DirTests {
		n += v
	}
	return n
}

// TestCount returns the base-test count for one kind.
func (c *Counters) TestCount(k dtest.Kind) int { return c.Tests[int(k)] }

// DirTestCount returns the direction-vector test count for one kind.
func (c *Counters) DirTestCount(k dtest.Kind) int { return c.DirTests[int(k)] }
