// Package stats collects the counters the paper's evaluation reports:
// per-test application counts (Table 1), memoization uniqueness (Tables
// 2–3), direction-vector test counts (Tables 4, 5, 7), and verdict tallies
// (§7's accuracy comparison).
package stats

import (
	"time"

	"exactdep/internal/dtest"
)

// numKinds sizes the per-test arrays (indexed by dtest.Kind).
const numKinds = int(dtest.KindFourierMotzkin) + 1

// Counters accumulates analysis statistics for one program (or a whole
// suite when merged).
type Counters struct {
	// Pairs is the number of candidate pairs examined.
	Pairs int
	// Constant counts pairs handled without testing (Table 1 column 1).
	Constant int
	// GCDIndependent counts pairs rejected by Extended GCD alone (column 2).
	GCDIndependent int
	// Tests counts the deciding test of each base cascade run, indexed by
	// dtest.Kind (Table 1 columns 3–6).
	Tests [numKinds]int
	// DirTests counts every cascade invocation during direction-vector
	// refinement, indexed by dtest.Kind (Tables 4, 5, 7).
	DirTests [numKinds]int
	// TestIndependent counts, per kind, how often the direction-vector
	// cascade invocations returned independent (§7's per-test yields).
	TestIndependent [numKinds]int

	// Cascade pipeline cost accounting (the paper's Table 6 shape), indexed
	// by dtest.Kind and summed over every cascade invocation — base tests
	// and direction-vector refinement alike. StageConsulted counts
	// applicability probes (every problem that reached the stage),
	// StageDecided the probes that decided, and StageTimeNs the cumulative
	// wall time per stage when the analyzer runs with timing enabled
	// (core.Options.TimeCascade); without timing it stays 0.
	StageConsulted [numKinds]int
	StageDecided   [numKinds]int
	StageTimeNs    [numKinds]int64

	// Memoization. FullLookups/FullHits are the candidate-level totals for
	// the with-bounds cache regardless of which layer answered; L1*/L2*
	// split them by layer (per-worker direct-mapped L1 vs shared table) and
	// InflightAdopts counts hits served by adopting another worker's
	// just-finished solve, so L1Hits+L2Hits+InflightAdopts == FullHits and,
	// with the L1 enabled, L1Lookups == FullLookups.
	FullLookups, FullHits int // with-bounds cache, all layers combined
	L1Lookups, L1Hits     int // per-worker direct-mapped layer
	L2Lookups, L2Hits     int // shared table layer (L1 misses fall through)
	EqLookups, EqHits     int // without-bounds (GCD) table
	// Singleflight dedup (concurrent driver only). InflightWaits counts
	// blocks on another worker's in-progress solve of the same canonical
	// key; InflightAdopts counts waits that ended adopting the winner's
	// cacheable verdict (the difference is re-claims after non-cacheable
	// solves). Serial analysis never touches the in-flight layer.
	InflightWaits, InflightAdopts int
	// DirLookups/DirHits meter the refinement memo: cascade invocations of
	// the direction-vector walk (base test included) answered by the
	// direction-keyed table instead of re-running the tests. UniqueDir is
	// that table's entry count.
	DirLookups, DirHits             int
	UniqueFull, UniqueEq, UniqueDir int

	// Clone-free refinement trail accounting. TrailPushes/TrailPops count
	// direction constraints pushed onto and popped off the scratch system's
	// trail (they match once every walk completes); TrailMaxDepth is the
	// deepest simultaneous direction stack seen by any single pair
	// (max-merged, not summed, by Add).
	TrailPushes, TrailPops int
	TrailMaxDepth          int

	// Fourier–Motzkin redundancy elimination. FMDeduped counts derived
	// constraints dropped because an identical row with an equal-or-tighter
	// constant was already present; FMTightened counts duplicates that
	// instead strengthened the retained constraint's constant in place.
	FMDeduped, FMTightened int

	// Verdicts.
	Independent int
	Dependent   int
	Unknown     int
	// Maybe counts pairs whose verdict was degraded by a resource budget,
	// deadline, or cancellation (core.Options.Budget / AnalyzeAllContext):
	// sound "assume dependent" answers the analysis could not finish.
	Maybe      int
	ImplicitBB int
	// Vectors is the total number of dependence direction vectors found.
	Vectors int

	// Graceful-degradation accounting. BudgetTrips counts cascade
	// invocations cut short, indexed by dtest.TripReason (TripNone stays 0);
	// one pair's direction-vector refinement can trip several times.
	// CancelledPairs counts candidates never analyzed because the context
	// was already done when a worker reached them — reported as Maybe
	// results but excluded from Pairs and the verdict tallies.
	BudgetTrips    [dtest.NumTripReasons]int
	CancelledPairs int
}

// Add merges other into c.
func (c *Counters) Add(o *Counters) {
	c.Pairs += o.Pairs
	c.Constant += o.Constant
	c.GCDIndependent += o.GCDIndependent
	for i := range c.Tests {
		c.Tests[i] += o.Tests[i]
		c.DirTests[i] += o.DirTests[i]
		c.TestIndependent[i] += o.TestIndependent[i]
		c.StageConsulted[i] += o.StageConsulted[i]
		c.StageDecided[i] += o.StageDecided[i]
		c.StageTimeNs[i] += o.StageTimeNs[i]
	}
	c.FullLookups += o.FullLookups
	c.FullHits += o.FullHits
	c.L1Lookups += o.L1Lookups
	c.L1Hits += o.L1Hits
	c.L2Lookups += o.L2Lookups
	c.L2Hits += o.L2Hits
	c.EqLookups += o.EqLookups
	c.EqHits += o.EqHits
	c.InflightWaits += o.InflightWaits
	c.InflightAdopts += o.InflightAdopts
	c.DirLookups += o.DirLookups
	c.DirHits += o.DirHits
	c.UniqueFull += o.UniqueFull
	c.UniqueEq += o.UniqueEq
	c.UniqueDir += o.UniqueDir
	c.TrailPushes += o.TrailPushes
	c.TrailPops += o.TrailPops
	if o.TrailMaxDepth > c.TrailMaxDepth {
		c.TrailMaxDepth = o.TrailMaxDepth
	}
	c.FMDeduped += o.FMDeduped
	c.FMTightened += o.FMTightened
	c.Independent += o.Independent
	c.Dependent += o.Dependent
	c.Unknown += o.Unknown
	c.Maybe += o.Maybe
	c.ImplicitBB += o.ImplicitBB
	c.Vectors += o.Vectors
	for i := range c.BudgetTrips {
		c.BudgetTrips[i] += o.BudgetTrips[i]
	}
	c.CancelledPairs += o.CancelledPairs
}

// TripCount returns how many cascade invocations the given budget limit cut
// short.
func (c *Counters) TripCount(r dtest.TripReason) int { return c.BudgetTrips[int(r)] }

// TotalBudgetTrips sums the per-reason trip counters.
func (c *Counters) TotalBudgetTrips() int {
	n := 0
	for _, v := range c.BudgetTrips {
		n += v
	}
	return n
}

// TotalTests is the number of base cascade applications (Table 1 columns
// 3–6 summed; the paper's 5,679).
func (c *Counters) TotalTests() int {
	n := 0
	for _, v := range c.Tests {
		n += v
	}
	return n
}

// TotalDirTests is the number of direction-vector cascade invocations.
func (c *Counters) TotalDirTests() int {
	n := 0
	for _, v := range c.DirTests {
		n += v
	}
	return n
}

// TestCount returns the base-test count for one kind.
func (c *Counters) TestCount(k dtest.Kind) int { return c.Tests[int(k)] }

// DirTestCount returns the direction-vector test count for one kind.
func (c *Counters) DirTestCount(k dtest.Kind) int { return c.DirTests[int(k)] }

// ConsultedCount returns how many cascade runs consulted the stage of kind
// k (applicability probes, Table 6 accounting).
func (c *Counters) ConsultedCount(k dtest.Kind) int { return c.StageConsulted[int(k)] }

// DecidedCount returns how many cascade runs the stage of kind k decided.
func (c *Counters) DecidedCount(k dtest.Kind) int { return c.StageDecided[int(k)] }

// StageTime returns the cumulative wall time of the stage of kind k (zero
// unless the analyzer ran with cascade timing enabled).
func (c *Counters) StageTime(k dtest.Kind) time.Duration {
	return time.Duration(c.StageTimeNs[int(k)])
}

// CostUnits prices the stage of kind k in the paper's relative units: each
// applicability probe costs the stage's cost rank (§3's ordering, Table 6).
func (c *Counters) CostUnits(k dtest.Kind) int {
	return c.StageConsulted[int(k)] * k.CostRank()
}

// TotalCostUnits sums CostUnits over every stage: the price of the whole
// cascade in probe units. A cascade that consulted only SVPC pays 1 per
// problem; one that fell through to Fourier–Motzkin pays 1+2+3+4.
func (c *Counters) TotalCostUnits() int {
	n := 0
	for k := 0; k < numKinds; k++ {
		n += c.CostUnits(dtest.Kind(k))
	}
	return n
}
