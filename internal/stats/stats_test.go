package stats

import (
	"testing"
	"testing/quick"

	"exactdep/internal/dtest"
)

func TestAddMerges(t *testing.T) {
	a := Counters{Pairs: 10, Constant: 2, GCDIndependent: 1,
		Independent: 4, Dependent: 5, Unknown: 1, Vectors: 7, ImplicitBB: 1,
		FullLookups: 8, FullHits: 3, L1Lookups: 8, L1Hits: 1,
		L2Lookups: 7, L2Hits: 2, EqLookups: 5, EqHits: 2,
		UniqueFull: 4, UniqueEq: 3}
	a.Tests[int(dtest.KindSVPC)] = 3
	a.DirTests[int(dtest.KindAcyclic)] = 2
	a.TestIndependent[int(dtest.KindLoopResidue)] = 1

	b := a // copy
	var sum Counters
	sum.Add(&a)
	sum.Add(&b)
	if sum.Pairs != 20 || sum.Constant != 4 || sum.Vectors != 14 {
		t.Fatalf("Add broken: %+v", sum)
	}
	if sum.TestCount(dtest.KindSVPC) != 6 {
		t.Fatalf("Tests merge: %v", sum.Tests)
	}
	if sum.DirTestCount(dtest.KindAcyclic) != 4 {
		t.Fatalf("DirTests merge: %v", sum.DirTests)
	}
	if sum.TestIndependent[int(dtest.KindLoopResidue)] != 2 {
		t.Fatalf("TestIndependent merge: %v", sum.TestIndependent)
	}
	if sum.FullLookups != 16 || sum.UniqueEq != 6 {
		t.Fatalf("memo counters merge: %+v", sum)
	}
	if sum.L1Lookups != 16 || sum.L1Hits != 2 || sum.L2Lookups != 14 || sum.L2Hits != 4 {
		t.Fatalf("memo layer counters merge: %+v", sum)
	}
}

func TestTotals(t *testing.T) {
	var c Counters
	c.Tests[int(dtest.KindSVPC)] = 3
	c.Tests[int(dtest.KindFourierMotzkin)] = 2
	c.DirTests[int(dtest.KindAcyclic)] = 4
	if c.TotalTests() != 5 {
		t.Fatalf("TotalTests = %d", c.TotalTests())
	}
	if c.TotalDirTests() != 4 {
		t.Fatalf("TotalDirTests = %d", c.TotalDirTests())
	}
}

// Property: Add is commutative with respect to the totals.
func TestAddCommutative(t *testing.T) {
	prop := func(p1, c1, p2, c2 uint8) bool {
		a := Counters{Pairs: int(p1), Constant: int(c1)}
		b := Counters{Pairs: int(p2), Constant: int(c2)}
		x, y := Counters{}, Counters{}
		x.Add(&a)
		x.Add(&b)
		y.Add(&b)
		y.Add(&a)
		return x == y
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
