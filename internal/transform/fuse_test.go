package transform

import (
	"math/rand"
	"strings"
	"testing"

	"exactdep/internal/interp"
	"exactdep/internal/lang"
)

func twoLoops(t *testing.T, src string) (*lang.For, *lang.For, *lang.Program) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var loops []*lang.For
	for _, st := range prog.Stmts {
		if f, ok := st.(*lang.For); ok {
			loops = append(loops, f)
		}
	}
	if len(loops) != 2 {
		t.Fatalf("want 2 loops, got %d", len(loops))
	}
	return loops[0], loops[1], prog
}

func TestFuseLegalProducerConsumer(t *testing.T) {
	// loop2 consumes loop1's value from the SAME iteration ('='): fusable.
	l1, l2, prog := twoLoops(t, `
for i = 1 to 20
  a[i] = i
end
for i = 1 to 20
  b[i] = a[i] + 1
end
`)
	fused, ok, reason := FuseLoops(l1, l2)
	if !ok {
		t.Fatalf("fusion must be legal: %s", reason)
	}
	// semantics check via the interpreter
	orig, err := interp.Run(prog, nil, interp.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	fusedTrace, err := interp.Run(&lang.Program{Stmts: []lang.Stmt{fused}}, nil, interp.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !orig.FinalEqual(fusedTrace) {
		t.Fatalf("fusion changed semantics:\n%s", fused)
	}
}

func TestFuseLegalBackwardReadDistance(t *testing.T) {
	// loop2 reads loop1's value from an EARLIER iteration ('<'): still
	// fusable (the producer's iteration precedes the consumer's).
	l1, l2, prog := twoLoops(t, `
for i = 2 to 20
  a[i] = i
end
for i = 2 to 20
  b[i] = a[i-1] + 1
end
`)
	fused, ok, reason := FuseLoops(l1, l2)
	if !ok {
		t.Fatalf("fusion must be legal: %s", reason)
	}
	orig, _ := interp.Run(prog, nil, interp.Limits{})
	ft, _ := interp.Run(&lang.Program{Stmts: []lang.Stmt{fused}}, nil, interp.Limits{})
	if !orig.FinalEqual(ft) {
		t.Fatalf("fusion changed semantics:\n%s", fused)
	}
}

func TestFusePreventingDependenceRejected(t *testing.T) {
	// loop2 reads a[i+1], produced by loop1's LATER iteration: in the
	// fused loop the read of iteration i would run before the write of
	// iteration i+1 — the classic fusion-preventing '>' dependence.
	l1, l2, prog := twoLoops(t, `
for i = 1 to 20
  a[i] = i
end
for i = 1 to 20
  b[i] = a[i+1] + 1
end
`)
	if _, ok, reason := FuseLoops(l1, l2); ok {
		t.Fatalf("fusion must be rejected: %s", reason)
	} else if !strings.Contains(reason, "fusion-preventing") {
		t.Fatalf("reason = %q", reason)
	}
	// double-check with the interpreter that naive fusion WOULD be wrong
	naive := &lang.For{Index: l1.Index, Lo: l1.Lo, Hi: l1.Hi,
		Body: append(append([]lang.Stmt{}, l1.Body...), l2.Body...)}
	orig, _ := interp.Run(prog, nil, interp.Limits{})
	ft, _ := interp.Run(&lang.Program{Stmts: []lang.Stmt{naive}}, nil, interp.Limits{})
	if orig.FinalEqual(ft) {
		t.Fatal("test premise broken: naive fusion happened to be safe")
	}
}

func TestFuseHeaderMismatch(t *testing.T) {
	l1, l2, _ := twoLoops(t, `
for i = 1 to 20
  a[i] = 0
end
for i = 1 to 21
  b[i] = 0
end
`)
	if _, ok, reason := FuseLoops(l1, l2); ok || !strings.Contains(reason, "headers differ") {
		t.Fatalf("mismatched bounds must be rejected: %v %q", ok, reason)
	}
}

func TestFuseNestedRejected(t *testing.T) {
	l1, l2, _ := twoLoops(t, `
for i = 1 to 5
  for j = 1 to 5
    a[i][j] = 0
  end
end
for i = 1 to 5
  b[i] = 0
end
`)
	if _, ok, _ := FuseLoops(l1, l2); ok {
		t.Fatal("nested bodies must be rejected")
	}
}

// TestFuseRandomSemantics: whenever FuseLoops declares a random pair legal,
// the interpreter must agree.
func TestFuseRandomSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	fusedCount := 0
	for iter := 0; iter < 300; iter++ {
		mk := func() string {
			arr := []string{"a", "b", "c"}[rng.Intn(3)]
			arr2 := []string{"a", "b", "c"}[rng.Intn(3)]
			return "  " + arr + "[i+" + itoa64(int64(rng.Intn(3)-1)) + "] = " +
				arr2 + "[i+" + itoa64(int64(rng.Intn(3)-1)) + "] + 1\n"
		}
		src := "for i = 2 to 15\n" + mk() + "end\nfor i = 2 to 15\n" + mk() + "end\n"
		l1, l2, prog := twoLoops(t, src)
		fused, ok, _ := FuseLoops(l1, l2)
		if !ok {
			continue
		}
		fusedCount++
		orig, err := interp.Run(prog, nil, interp.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		ft, err := interp.Run(&lang.Program{Stmts: []lang.Stmt{fused}}, nil, interp.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if !orig.FinalEqual(ft) {
			t.Fatalf("iter %d: legal fusion changed semantics\n%s", iter, src)
		}
	}
	if fusedCount < 50 {
		t.Fatalf("only %d legal fusions — generator drifted", fusedCount)
	}
}
