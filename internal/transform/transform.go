// Package transform answers loop-transformation legality questions from
// dependence direction vectors — the decisions a parallelizing compiler
// makes once the exact analysis has produced the vectors. A transformation
// is legal iff every dependence's transformed direction vector remains
// lexicographically non-negative (the source still executes no later than
// the sink).
package transform

import (
	"fmt"

	"exactdep/internal/depvec"
)

// Normalize orients a vector to be lexicographically non-negative: if its
// first non-'=' component is '>', the conflict's true source is the other
// reference, and the mirrored vector describes the dependence properly.
func Normalize(v depvec.Vector) depvec.Vector {
	for _, d := range v {
		switch d {
		case depvec.Less, depvec.Any:
			return v.Clone()
		case depvec.Greater:
			return mirror(v)
		}
	}
	return v.Clone()
}

func mirror(v depvec.Vector) depvec.Vector {
	out := make(depvec.Vector, len(v))
	for i, d := range v {
		switch d {
		case depvec.Less:
			out[i] = depvec.Greater
		case depvec.Greater:
			out[i] = depvec.Less
		default:
			out[i] = d
		}
	}
	return out
}

// lexSign classifies a vector: +1 lexicographically positive, 0 all-'=',
// -1 negative, and ambiguous=true when a leading '*' makes the sign
// input-dependent (which a legality check must treat as possibly negative).
func lexSign(v depvec.Vector) (sign int, ambiguous bool) {
	for _, d := range v {
		switch d {
		case depvec.Less:
			return 1, false
		case depvec.Greater:
			return -1, false
		case depvec.Any:
			return 0, true
		}
	}
	return 0, false
}

// Permute applies a loop permutation to the vector: out[i] = v[perm[i]],
// where perm[i] names the original level that moves to position i.
func Permute(v depvec.Vector, perm []int) (depvec.Vector, error) {
	if len(perm) != len(v) {
		return nil, fmt.Errorf("transform: permutation of length %d on %d-level vector", len(perm), len(v))
	}
	seen := make([]bool, len(v))
	out := make(depvec.Vector, len(v))
	for i, p := range perm {
		if p < 0 || p >= len(v) || seen[p] {
			return nil, fmt.Errorf("transform: invalid permutation %v", perm)
		}
		seen[p] = true
		out[i] = v[p]
	}
	return out, nil
}

// InterchangeLegal reports whether permuting the loops of a nest is legal
// for the given dependence vectors: every normalized vector must stay
// lexicographically non-negative after permutation. Vectors whose
// transformed sign is ambiguous ('*' before any '<') are conservatively
// illegal.
func InterchangeLegal(vectors []depvec.Vector, perm []int) (bool, error) {
	for _, v := range vectors {
		nv, err := Permute(Normalize(v), perm)
		if err != nil {
			return false, err
		}
		sign, amb := lexSign(nv)
		if sign < 0 || amb {
			return false, nil
		}
	}
	return true, nil
}

// ReversalLegal reports whether reversing the loop at the given level is
// legal: reversal flips that component, so it is legal iff no normalized
// vector carries the dependence at that level ('<' or '>' or '*' there with
// all-'=' before it... precisely: after flipping the component, the vector
// must remain lexicographically non-negative).
func ReversalLegal(vectors []depvec.Vector, level int) bool {
	for _, v := range vectors {
		nv := Normalize(v)
		if level < 0 || level >= len(nv) {
			return false
		}
		switch nv[level] {
		case depvec.Less:
			nv = nv.Clone()
			nv[level] = depvec.Greater
		case depvec.Greater:
			nv = nv.Clone()
			nv[level] = depvec.Less
		case depvec.Any:
			return false // could flip either way
		}
		if sign, amb := lexSign(nv); sign < 0 || amb {
			return false
		}
	}
	return true
}

// ParallelizableLevel reports whether the loop at the given level can run
// its iterations concurrently: no normalized vector may be carried at that
// level (its first non-'=' component must not be at `level`).
func ParallelizableLevel(vectors []depvec.Vector, level int) bool {
	for _, v := range vectors {
		nv := Normalize(v)
		carrier := -1
		for i, d := range nv {
			if d != depvec.Equal {
				carrier = i
				break
			}
		}
		if carrier == level {
			return false
		}
	}
	return true
}

// InterchangeToParallelize searches all ways to bring a parallelizable loop
// outermost: it returns the first legal permutation (in lexicographic
// order over rotations) whose outermost level is parallel afterwards, or
// ok=false. Nest depth is taken from the vectors.
func InterchangeToParallelize(vectors []depvec.Vector) (perm []int, ok bool) {
	if len(vectors) == 0 {
		return nil, false
	}
	depth := len(vectors[0])
	for lvl := 0; lvl < depth; lvl++ {
		// rotation bringing lvl to the front, preserving the rest's order
		p := make([]int, 0, depth)
		p = append(p, lvl)
		for i := 0; i < depth; i++ {
			if i != lvl {
				p = append(p, i)
			}
		}
		legal, err := InterchangeLegal(vectors, p)
		if err != nil || !legal {
			continue
		}
		permuted := make([]depvec.Vector, len(vectors))
		for i, v := range vectors {
			pv, err := Permute(Normalize(v), p)
			if err != nil {
				return nil, false
			}
			permuted[i] = pv
		}
		if ParallelizableLevel(permuted, 0) {
			return p, true
		}
	}
	return nil, false
}
