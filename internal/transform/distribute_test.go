package transform

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"exactdep/internal/interp"
	"exactdep/internal/lang"
)

func parseLoop(t *testing.T, src string) *lang.For {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog.Stmts[0].(*lang.For)
}

func TestDistributeSplitsIndependentStatements(t *testing.T) {
	loop := parseLoop(t, `
for i = 2 to 10
  a[i] = a[i-1]
  b[i] = a[i-1] + 1
  c[i] = c[i]
end
`)
	pieces, err := DistributeLoop(loop)
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) != 3 {
		t.Fatalf("pieces = %d, want 3:\n%v", len(pieces), pieces)
	}
	// dependence order: the a-recurrence must come before the b-consumer
	order := map[string]int{}
	for i, p := range pieces {
		a := p.Body[0].(*lang.Assign)
		order[a.LHSArray.Array] = i
	}
	if order["a"] > order["b"] {
		t.Fatalf("producer must precede consumer: %v", order)
	}
}

func TestDistributeKeepsRecurrenceTogether(t *testing.T) {
	loop := parseLoop(t, `
for i = 2 to 10
  a[i] = b[i-1]
  b[i] = a[i]
end
`)
	pieces, err := DistributeLoop(loop)
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) != 1 || len(pieces[0].Body) != 2 {
		t.Fatalf("recurrence π-block must stay whole: %v", pieces)
	}
}

func TestDistributeRejectsNestedLoops(t *testing.T) {
	loop := parseLoop(t, `
for i = 1 to 10
  for j = 1 to 10
    a[i][j] = 0
  end
end
`)
	if _, err := DistributeLoop(loop); err == nil {
		t.Fatal("nested body must be rejected")
	}
}

func TestDistributeScalarCarriedKeptIntact(t *testing.T) {
	loop := parseLoop(t, `
for i = 1 to 10
  s = s + a[i]
  b[i] = 1
end
`)
	pieces, err := DistributeLoop(loop)
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) != 1 {
		t.Fatalf("carried scalar must block distribution: %v", pieces)
	}
}

// TestDistributePreservesSemantics runs the original and distributed
// programs through the reference interpreter and compares final memory.
func TestDistributePreservesSemantics(t *testing.T) {
	src := `
for i = 2 to 20
  a[i] = a[i-1] + 1
  b[i] = a[i-1] + a[i]
  c[i] = b[i] + 2
end
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := DistributeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Stmts) <= 1 {
		t.Fatalf("expected distribution to split the loop:\n%s", dist)
	}
	// Compare write sets (addresses written, per array) — semantic output
	// locations must match; value equality is checked via a probe below.
	trOrig, err := interp.Run(prog, nil, interp.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	trDist, err := interp.Run(dist, nil, interp.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if wo, wd := writeSet(trOrig), writeSet(trDist); wo != wd {
		t.Fatalf("write sets differ:\n%s\nvs\n%s", wo, wd)
	}
	if !trOrig.FinalEqual(trDist) {
		t.Fatalf("distributed program computes different memory\n%s\nvs\n%s", prog, dist)
	}
	// The distributed program must also remain valid, re-parseable source.
	if _, err := lang.Parse(dist.String()); err != nil {
		t.Fatalf("distributed program does not re-parse: %v\n%s", err, dist)
	}
}

func writeSet(tr *interp.Trace) string {
	set := map[string]bool{}
	for _, a := range tr.Accesses {
		if a.Kind == 1 {
			set[a.Array+keyOf(a.Index)] = true
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, " ")
}

func keyOf(idx []int64) string {
	s := ""
	for _, v := range idx {
		s += ":" + itoa64(v)
	}
	return s
}

func itoa64(v int64) string {
	neg := v < 0
	if neg {
		v = -v
	}
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

// TestDistributeRandomSemantics: random flat loops, distributed and
// interpreted; the written address set and a value probe must match the
// original execution exactly.
func TestDistributeRandomSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	split := 0
	for iter := 0; iter < 400; iter++ {
		var b strings.Builder
		lo := 2 + rng.Intn(2)
		hi := lo + 5 + rng.Intn(10)
		fmt.Fprintf(&b, "for i = %d to %d\n", lo, hi)
		arrays := []string{"a", "b", "c", "d"}
		nstmts := 2 + rng.Intn(3)
		for s := 0; s < nstmts; s++ {
			w := arrays[rng.Intn(len(arrays))]
			r := arrays[rng.Intn(len(arrays))]
			wSub := fmt.Sprintf("i+%d", rng.Intn(3)-1)
			rSub := fmt.Sprintf("i+%d", rng.Intn(3)-1)
			// occasional constant subscripts produce '*' direction vectors
			if rng.Intn(5) == 0 {
				wSub = fmt.Sprintf("%d", rng.Intn(3))
			}
			if rng.Intn(5) == 0 {
				rSub = fmt.Sprintf("%d", rng.Intn(3))
			}
			fmt.Fprintf(&b, "  %s[%s] = %s[%s] + %d\n", w, wSub, r, rSub, s)
		}
		b.WriteString("end\n")
		src := b.String()
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, src)
		}
		dist, err := DistributeProgram(prog)
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, src)
		}
		if len(dist.Stmts) > 1 {
			split++
		}
		trO, err := interp.Run(prog, nil, interp.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		trD, err := interp.Run(dist, nil, interp.Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if writeSet(trO) != writeSet(trD) {
			t.Fatalf("iter %d: write sets differ\n%s\ndistributed:\n%s", iter, src, dist)
		}
		if !trO.FinalEqual(trD) {
			t.Fatalf("iter %d: values diverge\n%s\ndistributed:\n%s", iter, src, dist)
		}
	}
	if split < 50 {
		t.Fatalf("only %d distributions actually split — generator drifted", split)
	}
}

func TestDistributeAmbiguousDirectionKeptTogether(t *testing.T) {
	// Regression: a[0] written by s1 and read by s2 at every iteration —
	// the direction is '*', conflicts run both ways, and distribution must
	// keep the statements together.
	loop := parseLoop(t, `
for i = 1 to 5
  a[0] = i
  b[i] = a[0]
end
`)
	pieces, err := DistributeLoop(loop)
	if err != nil {
		t.Fatal(err)
	}
	if len(pieces) != 1 {
		t.Fatalf("ambiguous-direction statements must stay together: %v", pieces)
	}
}
