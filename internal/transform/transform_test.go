package transform

import (
	"math/rand"
	"testing"

	"exactdep/internal/depvec"
)

func vec(s string) depvec.Vector {
	v := make(depvec.Vector, len(s))
	for i := range s {
		v[i] = depvec.Direction(s[i])
	}
	return v
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"<=", "<="},
		{">=", "<="},
		{"==", "=="},
		{"=>", "=<"},
		{"*<", "*<"}, // leading '*' treated as potentially forward
	}
	for _, c := range cases {
		if got := Normalize(vec(c.in)); got.String() != vec(c.want).String() {
			t.Errorf("Normalize(%s) = %s, want %s", c.in, got, vec(c.want))
		}
	}
}

func TestPermute(t *testing.T) {
	v := vec("<=>")
	got, err := Permute(v, []int{2, 0, 1})
	if err != nil || got.String() != vec("><=").String() {
		t.Fatalf("Permute = %v, %v", got, err)
	}
	if _, err := Permute(v, []int{0, 1}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := Permute(v, []int{0, 0, 1}); err == nil {
		t.Fatal("duplicate index must error")
	}
	if _, err := Permute(v, []int{0, 1, 5}); err == nil {
		t.Fatal("out-of-range index must error")
	}
}

func TestInterchangeLegal(t *testing.T) {
	// Classic: (<, >) — e.g. a[i][j] = a[i-1][j+1] — interchange gives
	// (>, <): lexicographically negative → illegal.
	legal, err := InterchangeLegal([]depvec.Vector{vec("<>")}, []int{1, 0})
	if err != nil || legal {
		t.Fatalf("(<,>) interchange must be illegal: %v %v", legal, err)
	}
	// (<, <) interchanges fine.
	legal, err = InterchangeLegal([]depvec.Vector{vec("<<")}, []int{1, 0})
	if err != nil || !legal {
		t.Fatalf("(<,<) interchange must be legal: %v %v", legal, err)
	}
	// (=, <) stays non-negative under interchange: (<, =).
	legal, err = InterchangeLegal([]depvec.Vector{vec("=<")}, []int{1, 0})
	if err != nil || !legal {
		t.Fatalf("(=,<) interchange must be legal: %v %v", legal, err)
	}
	// '>' leading vectors normalize first: (>, <) describes the same
	// dependence as (<, >) → illegal to interchange.
	legal, err = InterchangeLegal([]depvec.Vector{vec("><")}, []int{1, 0})
	if err != nil || legal {
		t.Fatalf("(>,<) interchange must be illegal after normalization: %v %v", legal, err)
	}
	// ambiguous '*' is conservatively illegal when it could lead
	legal, err = InterchangeLegal([]depvec.Vector{vec("<*")}, []int{1, 0})
	if err != nil || legal {
		t.Fatalf("(*,...) leading after permute must be illegal: %v %v", legal, err)
	}
}

func TestReversalLegal(t *testing.T) {
	// a loop carrying a dependence cannot be reversed
	if ReversalLegal([]depvec.Vector{vec("<")}, 0) {
		t.Fatal("reversing a carrying loop must be illegal")
	}
	// '=' at the level: reversal harmless
	if !ReversalLegal([]depvec.Vector{vec("=<")}, 0) {
		t.Fatal("reversing an '='-level must be legal")
	}
	// inner level under an outer '<': the outer carrier absorbs the flip
	if !ReversalLegal([]depvec.Vector{vec("<>")}, 1) {
		t.Fatal("reversing inner '>' under outer '<' must be legal")
	}
	if ReversalLegal([]depvec.Vector{vec("*")}, 0) {
		t.Fatal("'*' at the level must be conservatively illegal")
	}
	if ReversalLegal([]depvec.Vector{vec("<")}, 3) {
		t.Fatal("out-of-range level must be illegal")
	}
}

func TestParallelizableLevel(t *testing.T) {
	vs := []depvec.Vector{vec("<="), vec("==")}
	if ParallelizableLevel(vs, 0) {
		t.Fatal("level 0 carries (<,=)")
	}
	if !ParallelizableLevel(vs, 1) {
		t.Fatal("level 1 carries nothing")
	}
	// normalization: (>,=) is carried by level 0 too
	if ParallelizableLevel([]depvec.Vector{vec(">=")}, 0) {
		t.Fatal("(>,=) normalizes to (<,=): level 0 carried")
	}
}

func TestInterchangeToParallelize(t *testing.T) {
	// (=, <): level 0 already parallel → identity rotation works.
	perm, ok := InterchangeToParallelize([]depvec.Vector{vec("=<")})
	if !ok || perm[0] != 0 {
		t.Fatalf("perm = %v ok = %v", perm, ok)
	}
	// (<, =): level 0 carried, level 1 parallel; bringing level 1 out gives
	// (=, <)?? wait permuting (<,=) by [1,0] gives (=,<): legal, outer '='
	// → parallel. So perm [1,0].
	perm, ok = InterchangeToParallelize([]depvec.Vector{vec("<=")})
	if !ok || perm[0] != 1 {
		t.Fatalf("perm = %v ok = %v", perm, ok)
	}
	// (<, >): interchange illegal and level 0 carried → no parallel outer.
	if _, ok := InterchangeToParallelize([]depvec.Vector{vec("<>")}); ok {
		t.Fatal("(<,>) has no legal parallelizing interchange")
	}
	if _, ok := InterchangeToParallelize(nil); ok {
		t.Fatal("no vectors → not applicable")
	}
}

// Algebraic properties of the vector operations.
func TestTransformAlgebraProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dirs := []byte{'<', '=', '>', '*'}
	randVec := func(n int) depvec.Vector {
		v := make(depvec.Vector, n)
		for i := range v {
			v[i] = depvec.Direction(dirs[rng.Intn(len(dirs))])
		}
		return v
	}
	randPerm := func(n int) []int {
		p := rng.Perm(n)
		return p
	}
	inverse := func(p []int) []int {
		inv := make([]int, len(p))
		for i, v := range p {
			inv[v] = i
		}
		return inv
	}
	for iter := 0; iter < 500; iter++ {
		n := 1 + rng.Intn(4)
		v := randVec(n)
		// Normalize is idempotent
		n1 := Normalize(v)
		n2 := Normalize(n1)
		if n1.String() != n2.String() {
			t.Fatalf("Normalize not idempotent: %s → %s → %s", v, n1, n2)
		}
		// Permute by p then by p's inverse restores the vector
		p := randPerm(n)
		pv, err := Permute(v, p)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Permute(pv, inverse(p))
		if err != nil {
			t.Fatal(err)
		}
		if back.String() != v.String() {
			t.Fatalf("Permute inverse broken: %s, perm %v → %s → %s", v, p, pv, back)
		}
		// a legal interchange of normalized vectors keeps them acceptable
		// under ParallelizableLevel queries (no panic, consistent answers)
		for lvl := 0; lvl < n; lvl++ {
			_ = ParallelizableLevel([]depvec.Vector{v}, lvl)
		}
	}
}

// Skewing distance vectors is invertible with the negated factor.
func TestSkewInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 300; iter++ {
		d := DistanceVector{int64(rng.Intn(9) - 4), int64(rng.Intn(9) - 4), int64(rng.Intn(9) - 4)}
		f := int64(rng.Intn(7) - 3)
		src, dst := rng.Intn(3), rng.Intn(3)
		if src == dst {
			continue
		}
		skewed, err := Skew([]DistanceVector{d}, src, dst, f)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Skew(skewed, src, dst, -f)
		if err != nil {
			t.Fatal(err)
		}
		if back[0].String() != d.String() {
			t.Fatalf("skew not invertible: %s --f=%d--> %s --> %s", d, f, skewed[0], back[0])
		}
	}
}
