package transform

import (
	"fmt"

	"exactdep/internal/depvec"
)

// Loop skewing operates on distance vectors (which the analyzer derives
// from the Extended GCD parameterization whenever they are constant, §6).
// Skewing loop `target` by factor f with respect to loop `source` maps
// iteration (…, i_s, …, i_t, …) to (…, i_s, …, i_t + f·i_s, …); a distance
// vector transforms the same way. Skewing never reorders iterations, so it
// is always legal — its value is making a subsequent interchange or inner
// parallelization legal (the classic wavefront pipeline).

// DistanceVector is a constant dependence distance per loop level.
type DistanceVector []int64

// String renders the vector as "(1, -2)".
func (d DistanceVector) String() string {
	s := "("
	for i, v := range d {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%d", v)
	}
	return s + ")"
}

// Directions converts a distance vector to its direction vector.
func (d DistanceVector) Directions() depvec.Vector {
	out := make(depvec.Vector, len(d))
	for i, v := range d {
		switch {
		case v > 0:
			out[i] = depvec.Less
		case v < 0:
			out[i] = depvec.Greater
		default:
			out[i] = depvec.Equal
		}
	}
	return out
}

// LexPositive reports whether the distance vector is lexicographically
// positive or zero (a valid execution-order dependence).
func (d DistanceVector) LexPositive() bool {
	for _, v := range d {
		if v > 0 {
			return true
		}
		if v < 0 {
			return false
		}
	}
	return true // all-zero: loop-independent
}

// Skew returns the distance vectors after skewing level target by factor
// with respect to level source: d[target] += factor · d[source].
func Skew(dists []DistanceVector, source, target int, factor int64) ([]DistanceVector, error) {
	out := make([]DistanceVector, len(dists))
	for i, d := range dists {
		if source < 0 || source >= len(d) || target < 0 || target >= len(d) || source == target {
			return nil, fmt.Errorf("transform: skew(source=%d, target=%d) on %d-level vector",
				source, target, len(d))
		}
		nd := append(DistanceVector(nil), d...)
		nd[target] += factor * nd[source]
		out[i] = nd
	}
	return out, nil
}

// PermuteDistances applies a loop permutation to distance vectors.
func PermuteDistances(dists []DistanceVector, perm []int) ([]DistanceVector, error) {
	out := make([]DistanceVector, len(dists))
	for i, d := range dists {
		if len(perm) != len(d) {
			return nil, fmt.Errorf("transform: permutation of length %d on %d-level vector", len(perm), len(d))
		}
		nd := make(DistanceVector, len(d))
		seen := make([]bool, len(d))
		for j, p := range perm {
			if p < 0 || p >= len(d) || seen[p] {
				return nil, fmt.Errorf("transform: invalid permutation %v", perm)
			}
			seen[p] = true
			nd[j] = d[p]
		}
		out[i] = nd
	}
	return out, nil
}

// AllLexPositive reports whether every distance vector remains a valid
// execution-order dependence (the legality condition for any unimodular
// transformation expressed on distances).
func AllLexPositive(dists []DistanceVector) bool {
	for _, d := range dists {
		if !d.LexPositive() {
			return false
		}
	}
	return true
}

// ParallelLevels returns the loop levels that carry no dependence under the
// given distance vectors: level l is parallel iff no vector's first nonzero
// component is at l.
func ParallelLevels(dists []DistanceVector, depth int) []bool {
	out := make([]bool, depth)
	for i := range out {
		out[i] = true
	}
	for _, d := range dists {
		for l, v := range d {
			if v > 0 {
				if l < depth {
					out[l] = false
				}
				break
			}
			if v < 0 {
				break // not lexicographically normalized; caller's problem
			}
		}
	}
	return out
}

// WavefrontSkew searches for a skew factor (1..maxFactor) of the inner loop
// of a 2-deep nest that makes the inner level parallel after skewing,
// returning the factor. This is the textbook wavefront transformation: with
// distances {(1,0),(0,1)} a skew by 1 gives {(1,1),(0,1)}... which still
// carries at level 1 for (0,1); the correct pipeline is skew-then-
// interchange: after skewing, interchanging makes the (old) inner level
// outermost sequential and the outer level innermost parallel. The returned
// factor is the smallest making the *interchanged* inner level parallel.
func WavefrontSkew(dists []DistanceVector, maxFactor int64) (factor int64, ok bool) {
	for f := int64(1); f <= maxFactor; f++ {
		skewed, err := Skew(dists, 0, 1, f)
		if err != nil {
			return 0, false
		}
		swapped, err := PermuteDistances(skewed, []int{1, 0})
		if err != nil {
			return 0, false
		}
		if !AllLexPositive(swapped) {
			continue
		}
		par := ParallelLevels(swapped, 2)
		if par[1] {
			return f, true
		}
	}
	return 0, false
}
