package transform

import (
	"testing"
	"testing/quick"
)

func dv(vs ...int64) DistanceVector { return DistanceVector(vs) }

func TestDistanceVectorBasics(t *testing.T) {
	d := dv(1, -2, 0)
	if d.String() != "(1, -2, 0)" {
		t.Fatalf("String = %s", d)
	}
	if d.Directions().String() != "(<, >, =)" {
		t.Fatalf("Directions = %s", d.Directions())
	}
	if !dv(1, -5).LexPositive() || dv(-1, 3).LexPositive() || !dv(0, 0).LexPositive() {
		t.Fatal("LexPositive wrong")
	}
}

func TestSkew(t *testing.T) {
	// wavefront distances: (1,0) and (0,1); skew inner by 1 wrt outer
	out, err := Skew([]DistanceVector{dv(1, 0), dv(0, 1)}, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].String() != "(1, 1)" || out[1].String() != "(0, 1)" {
		t.Fatalf("skewed = %v", out)
	}
	if _, err := Skew([]DistanceVector{dv(1, 0)}, 0, 0, 1); err == nil {
		t.Fatal("source == target must error")
	}
	if _, err := Skew([]DistanceVector{dv(1, 0)}, 0, 5, 1); err == nil {
		t.Fatal("out-of-range target must error")
	}
}

// Property: skewing preserves lexicographic positivity when skewing an
// inner level with a non-negative factor (outer components unchanged).
func TestSkewPreservesLegality(t *testing.T) {
	prop := func(a, b int8, f uint8) bool {
		d := dv(int64(a), int64(b))
		if !d.LexPositive() {
			return true
		}
		out, err := Skew([]DistanceVector{d}, 0, 1, int64(f%5))
		if err != nil {
			return false
		}
		return out[0].LexPositive()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestParallelLevels(t *testing.T) {
	par := ParallelLevels([]DistanceVector{dv(1, 0), dv(0, 1)}, 2)
	if par[0] || par[1] {
		t.Fatalf("wavefront has no parallel level: %v", par)
	}
	par = ParallelLevels([]DistanceVector{dv(1, 1), dv(1, -1)}, 2)
	if par[0] || !par[1] {
		t.Fatalf("outer-carried distances leave the inner parallel: %v", par)
	}
}

func TestWavefrontSkew(t *testing.T) {
	// The classic: w[i][j] = w[i-1][j] + w[i][j-1] has distances
	// (1,0), (0,1). Skew by 1 then interchange: distances become
	// (1,1),(1,0) — wait: skew(0,1,1): (1,1),(0,1); interchange → (1,1),
	// (1,0): all lexicographically positive, and level 1 components are
	// {1,0}: the first nonzero of (1,0) is at level 0 and of (1,1) at
	// level 0 → inner level parallel. Factor 1 suffices.
	f, ok := WavefrontSkew([]DistanceVector{dv(1, 0), dv(0, 1)}, 4)
	if !ok || f != 1 {
		t.Fatalf("factor = %d ok = %v", f, ok)
	}
	// An already-parallel inner loop also succeeds.
	f, ok = WavefrontSkew([]DistanceVector{dv(1, 0)}, 4)
	if !ok {
		t.Fatalf("skew search failed: %d %v", f, ok)
	}
	// Distances that defeat any skew up to the budget: (0,1) forces the
	// interchanged outer... (0,1) skewed by f wrt level 0 stays (0,1);
	// interchanged → (1,0): level 1 is parallel! So use a vector pair that
	// keeps a level-1 carrier after interchange: (1,-1) needs f ≥ 2 to make
	// (1, f-1) with f-1 ≥ 1... choose budget 0 to force failure instead.
	if _, ok := WavefrontSkew([]DistanceVector{dv(1, -1)}, 0); ok {
		t.Fatal("zero budget must fail")
	}
}

func TestPermuteDistances(t *testing.T) {
	out, err := PermuteDistances([]DistanceVector{dv(1, 2, 3)}, []int{2, 0, 1})
	if err != nil || out[0].String() != "(3, 1, 2)" {
		t.Fatalf("permuted = %v, %v", out, err)
	}
	if _, err := PermuteDistances([]DistanceVector{dv(1, 2)}, []int{0}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := PermuteDistances([]DistanceVector{dv(1, 2)}, []int{1, 1}); err == nil {
		t.Fatal("duplicate must error")
	}
}

func TestAllLexPositive(t *testing.T) {
	if !AllLexPositive([]DistanceVector{dv(1, -1), dv(0, 0)}) {
		t.Fatal("positive set rejected")
	}
	if AllLexPositive([]DistanceVector{dv(0, -1)}) {
		t.Fatal("negative vector accepted")
	}
}
