package transform

import (
	"fmt"

	"exactdep/internal/core"
	"exactdep/internal/ddg"
	"exactdep/internal/lang"
	"exactdep/internal/opt"
)

// Loop distribution (loop fission): split a loop's body into one loop per
// π-block of the dependence graph, ordered topologically. Statements in
// different blocks have no cyclic dependence, so running all iterations of
// the first block's loop before the second preserves every dependence; the
// resulting smaller loops often parallelize individually even when the
// original did not.

// DistributeLoop splits one flat loop (a body of assignments only) into a
// sequence of loops by π-blocks. It returns the replacement loops in
// execution order; a single-element result means distribution found nothing
// to split. Loops with nested control flow are rejected.
func DistributeLoop(loop *lang.For) ([]*lang.For, error) {
	for _, st := range loop.Body {
		if _, ok := st.(*lang.Assign); !ok {
			return nil, fmt.Errorf("transform: distribution needs a flat assignment body, found %T", st)
		}
	}
	// Analyze the loop in isolation.
	prog := &lang.Program{Stmts: []lang.Stmt{loop}}
	unit := opt.Lower(prog)
	if len(unit.Warnings) > 0 {
		return nil, fmt.Errorf("transform: loop not fully analyzable: %s", unit.Warnings[0])
	}
	a := core.New(core.Options{DirectionVectors: true, PruneUnused: true, PruneDistance: true})
	results, err := a.AnalyzeUnit(unit)
	if err != nil {
		return nil, err
	}
	g := ddg.Build(unit, results)

	// Loop-carried scalars forbid distribution outright (every block would
	// need the accumulator).
	if len(unit.ScalarCarried) > 0 {
		return []*lang.For{loop}, nil
	}

	// Tarjan emits components sinks-first; execution order needs sources
	// first.
	sccs := g.SCCs()
	for i, j := 0, len(sccs)-1; i < j; i, j = i+1, j-1 {
		sccs[i], sccs[j] = sccs[j], sccs[i]
	}
	if len(sccs) <= 1 {
		return []*lang.For{loop}, nil
	}

	// Statement ordinals follow the lowerer's pre-order over the body.
	byID := map[int]*lang.Assign{}
	for i, st := range loop.Body {
		byID[i+1] = st.(*lang.Assign)
	}
	var out []*lang.For
	for _, comp := range sccs {
		nl := &lang.For{Index: loop.Index, Lo: loop.Lo, Hi: loop.Hi, Step: loop.Step, Pos: loop.Pos}
		for _, id := range comp {
			st, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("transform: unknown statement id %d", id)
			}
			nl.Body = append(nl.Body, st)
		}
		out = append(out, nl)
	}
	return out, nil
}

// DistributeProgram applies DistributeLoop to every top-level flat loop of
// the program, leaving other statements as they are. Loops that cannot be
// distributed (nested control flow, carried scalars, a single π-block) are
// kept intact.
func DistributeProgram(prog *lang.Program) (*lang.Program, error) {
	out := &lang.Program{Name: prog.Name}
	for _, st := range prog.Stmts {
		loop, ok := st.(*lang.For)
		if !ok {
			out.Stmts = append(out.Stmts, st)
			continue
		}
		flat := true
		for _, inner := range loop.Body {
			if _, ok := inner.(*lang.Assign); !ok {
				flat = false
				break
			}
		}
		if !flat {
			out.Stmts = append(out.Stmts, st)
			continue
		}
		pieces, err := DistributeLoop(loop)
		if err != nil {
			return nil, err
		}
		for _, p := range pieces {
			out.Stmts = append(out.Stmts, p)
		}
	}
	return out, nil
}
