package transform

import (
	"fmt"

	"exactdep/internal/core"
	"exactdep/internal/depvec"
	"exactdep/internal/dtest"
	"exactdep/internal/lang"
	"exactdep/internal/opt"
	"exactdep/internal/refs"
)

// Loop fusion — the inverse of distribution. Two adjacent loops with
// identical headers may be merged iff no dependence between their bodies is
// fusion-preventing: in the original program every conflict runs
// first-loop-access before second-loop-access (the first loop completes
// first); in the fused loop that order is preserved for '=' and '<'
// directions but reversed for '>' (the second body's earlier iteration now
// executes before the first body's later one). Kennedy's classic criterion.

// FuseLoops merges two flat loops with identical headers when legal. It
// reports ok=false (with a reason) when the headers differ or a
// fusion-preventing dependence exists.
func FuseLoops(l1, l2 *lang.For) (fused *lang.For, ok bool, reason string) {
	if l1.Index != l2.Index ||
		l1.Lo.String() != l2.Lo.String() || l1.Hi.String() != l2.Hi.String() ||
		!sameStep(l1.Step, l2.Step) {
		return nil, false, "loop headers differ"
	}
	for _, st := range append(append([]lang.Stmt{}, l1.Body...), l2.Body...) {
		if _, isAssign := st.(*lang.Assign); !isAssign {
			return nil, false, "bodies must be flat assignments"
		}
	}
	candidate := &lang.For{
		Index: l1.Index, Lo: l1.Lo, Hi: l1.Hi, Step: l1.Step, Pos: l1.Pos,
		Body: append(append([]lang.Stmt{}, l1.Body...), l2.Body...),
	}
	prog := &lang.Program{Stmts: []lang.Stmt{candidate}}
	unit := opt.Lower(prog)
	if len(unit.Warnings) > 0 {
		return nil, false, "fused body not fully analyzable: " + unit.Warnings[0]
	}
	a := core.New(core.Options{DirectionVectors: true, PruneUnused: true, PruneDistance: true})
	firstBody := len(l1.Body) // statement ids 1..firstBody belong to loop 1
	for _, c := range refs.PairsOpts(unit, refs.Options{NoSelfPairs: true}) {
		res, err := a.AnalyzeCandidate(c)
		if err != nil {
			return nil, false, err.Error()
		}
		if res.Outcome == dtest.Independent {
			continue
		}
		s1, s2 := c.Pair.A.Ref.Stmt, c.Pair.B.Ref.Stmt
		cross := (s1 <= firstBody) != (s2 <= firstBody)
		if !cross {
			continue // intra-body dependences keep their order
		}
		// Orient so "first" is the loop-1 statement.
		flip := s1 > firstBody
		vectors := res.Vectors
		if len(vectors) == 0 {
			return nil, false, "no direction information for a cross dependence"
		}
		for _, v := range vectors {
			dir := fusedDirection(v, flip)
			if dir == '>' || dir == '*' {
				return nil, false, fmt.Sprintf(
					"fusion-preventing dependence %s vs %s %s",
					c.Pair.A.Ref, c.Pair.B.Ref, v)
			}
		}
	}
	return candidate, true, ""
}

// fusedDirection returns the first non-'=' component of the vector oriented
// from the loop-1 statement to the loop-2 statement ('=' for an all-equal
// vector, '*' when a component is ambiguous).
func fusedDirection(v depvec.Vector, flip bool) byte {
	for _, d := range v {
		switch d {
		case depvec.Equal:
			continue
		case depvec.Any:
			return '*'
		case depvec.Less:
			if flip {
				return '>'
			}
			return '<'
		case depvec.Greater:
			if flip {
				return '<'
			}
			return '>'
		}
	}
	return '='
}

// sameStep compares optional step expressions structurally.
func sameStep(a, b lang.Expr) bool {
	switch {
	case a == nil && b == nil:
		return true
	case a == nil || b == nil:
		return false
	default:
		return a.String() == b.String()
	}
}
