package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0}, {0, 5, 5}, {5, 0, 5}, {12, 18, 6}, {-12, 18, 6},
		{12, -18, 6}, {-12, -18, 6}, {7, 13, 1}, {1, 1, 1},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestGCDAll(t *testing.T) {
	if got := GCDAll([]int64{12, 18, 30}); got != 6 {
		t.Errorf("GCDAll = %d", got)
	}
	if got := GCDAll(nil); got != 0 {
		t.Errorf("GCDAll(nil) = %d", got)
	}
	if got := GCDAll([]int64{0, 0, 4}); got != 4 {
		t.Errorf("GCDAll zeros = %d", got)
	}
}

func TestExtGCDBezout(t *testing.T) {
	prop := func(a, b int16) bool {
		g, x, y := ExtGCD(int64(a), int64(b))
		return g == GCD(int64(a), int64(b)) && int64(a)*x+int64(b)*y == g
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct{ a, b, fl, ce int64 }{
		{7, 2, 3, 4}, {-7, 2, -4, -3}, {7, -2, -4, -3}, {-7, -2, 3, 4},
		{6, 3, 2, 2}, {-6, 3, -2, -2}, {0, 5, 0, 0},
	}
	for _, c := range cases {
		if got := FloorDiv(c.a, c.b); got != c.fl {
			t.Errorf("FloorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.fl)
		}
		if got := CeilDiv(c.a, c.b); got != c.ce {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ce)
		}
	}
}

func TestCheckedArith(t *testing.T) {
	if _, err := AddChecked(math.MaxInt64, 1); err == nil {
		t.Error("AddChecked must detect positive overflow")
	}
	if _, err := AddChecked(math.MinInt64, -1); err == nil {
		t.Error("AddChecked must detect negative overflow")
	}
	if v, err := AddChecked(40, 2); err != nil || v != 42 {
		t.Errorf("AddChecked(40,2) = %d, %v", v, err)
	}
	if _, err := MulChecked(math.MaxInt64, 2); err == nil {
		t.Error("MulChecked must detect overflow")
	}
	if v, err := MulChecked(-6, 7); err != nil || v != -42 {
		t.Errorf("MulChecked(-6,7) = %d, %v", v, err)
	}
	if v, err := MulChecked(0, math.MaxInt64); err != nil || v != 0 {
		t.Errorf("MulChecked(0,max) = %d, %v", v, err)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]int64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("At = %d", m.At(1, 0))
	}
	m.Set(1, 0, 9)
	if m.At(1, 0) != 9 {
		t.Fatal("Set did not stick")
	}
	c := m.Clone()
	c.Set(0, 0, 100)
	if m.At(0, 0) == 100 {
		t.Fatal("Clone aliases original")
	}
	if got := m.Row(0); got[0] != 1 || got[1] != 2 {
		t.Fatalf("Row = %v", got)
	}
	id := Identity(2)
	prod, err := m.Mul(id)
	if err != nil || !prod.Equal(m) {
		t.Fatalf("m·I = %v, err %v", prod, err)
	}
}

func TestMatrixMul(t *testing.T) {
	a := FromRows([][]int64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]int64{{7, 8}, {9, 10}, {11, 12}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]int64{{58, 64}, {139, 154}})
	if !got.Equal(want) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
	if _, err := a.Mul(a); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}

func TestMatrixRowOps(t *testing.T) {
	m := FromRows([][]int64{{1, 2}, {3, 4}})
	m.SwapRows(0, 1)
	if m.At(0, 0) != 3 {
		t.Fatal("SwapRows failed")
	}
	m.NegateRow(0)
	if m.At(0, 0) != -3 || m.At(0, 1) != -4 {
		t.Fatal("NegateRow failed")
	}
	if err := m.AddMulRow(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 0 || m.At(0, 1) != 2 {
		t.Fatalf("AddMulRow gave %v", m)
	}
}

// determinant via fraction-free Gaussian elimination on small matrices,
// used only to verify unimodularity in tests.
func det(m *Matrix) int64 {
	n := m.Rows
	a := m.Clone()
	sign := int64(1)
	var prevPivot int64 = 1
	for k := 0; k < n-1; k++ {
		if a.At(k, k) == 0 {
			swapped := false
			for r := k + 1; r < n; r++ {
				if a.At(r, k) != 0 {
					a.SwapRows(k, r)
					sign = -sign
					swapped = true
					break
				}
			}
			if !swapped {
				return 0
			}
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				v := (a.At(i, j)*a.At(k, k) - a.At(i, k)*a.At(k, j)) / prevPivot
				a.Set(i, j, v)
			}
			a.Set(i, k, 0)
		}
		prevPivot = a.At(k, k)
	}
	return sign * a.At(n-1, n-1)
}

func TestFactorSimple(t *testing.T) {
	// Paper §3.1 example: single equation i' - i = 10, variables (i, i').
	// A is 2x1: rows are variables, column the equation i*(-1) + i'*(1).
	A := FromRows([][]int64{{-1}, {1}})
	e, err := Factor(A)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rank != 1 {
		t.Fatalf("Rank = %d", e.Rank)
	}
	// U·A must equal D
	ua, err := e.U.Mul(A)
	if err != nil {
		t.Fatal(err)
	}
	if !ua.Equal(e.D) {
		t.Fatalf("U·A ≠ D:\n%v\nvs\n%v", ua, e.D)
	}
	if d := det(e.U); d != 1 && d != -1 {
		t.Fatalf("U not unimodular, det = %d", d)
	}
	// t·D = (10) must have the integer solution t0 = 10/D[0][0]
	sol, ok, err := e.Solve([]int64{10})
	if err != nil || !ok {
		t.Fatalf("Solve: ok=%v err=%v", ok, err)
	}
	if sol[0]*e.D.At(0, 0) != 10 {
		t.Fatalf("solution %v does not satisfy equation", sol)
	}
}

func TestFactorGCDFailure(t *testing.T) {
	// 2i = 2i' + 1 has no integer solution: A rows (2, -2), c = 1.
	A := FromRows([][]int64{{2}, {-2}})
	e, err := Factor(A)
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := e.Solve([]int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("gcd test must reject 2i - 2i' = 1")
	}
	if _, ok, _ := e.Solve([]int64{4}); !ok {
		t.Fatal("2i - 2i' = 4 is integer solvable")
	}
}

func TestFactorInconsistent(t *testing.T) {
	// x = 1 and x = 2 simultaneously: A is 1x2 (one variable, two equations).
	A := FromRows([][]int64{{1, 1}})
	e, err := Factor(A)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := e.Solve([]int64{1, 2}); ok {
		t.Fatal("inconsistent system must have no solution")
	}
	if sol, ok, _ := e.Solve([]int64{3, 3}); !ok || sol[0] != 3 {
		t.Fatalf("consistent system: sol=%v ok=%v", sol, ok)
	}
}

func TestFactorZeroMatrix(t *testing.T) {
	A := NewMatrix(3, 2)
	e, err := Factor(A)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rank != 0 {
		t.Fatalf("zero matrix rank = %d", e.Rank)
	}
	if _, ok, _ := e.Solve([]int64{0, 0}); !ok {
		t.Fatal("0 = 0 should be solvable")
	}
	if _, ok, _ := e.Solve([]int64{0, 1}); ok {
		t.Fatal("0 = 1 should be unsolvable")
	}
}

// Property: for random small matrices, Factor yields U·A = D, D echelon
// with positive leading entries, and |det U| = 1.
func TestFactorProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 300; iter++ {
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(3)
		A := NewMatrix(n, m)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				A.Set(i, j, int64(rng.Intn(11)-5))
			}
		}
		e, err := Factor(A)
		if err != nil {
			t.Fatal(err)
		}
		ua, err := e.U.Mul(A)
		if err != nil {
			t.Fatal(err)
		}
		if !ua.Equal(e.D) {
			t.Fatalf("iter %d: U·A ≠ D\nA=\n%v\nU=\n%v\nD=\n%v", iter, A, e.U, e.D)
		}
		if d := det(e.U); d != 1 && d != -1 {
			t.Fatalf("iter %d: det U = %d", iter, d)
		}
		// echelon shape: leading columns strictly increase, positive leads,
		// zero rows at the bottom
		prev := -1
		for r := 0; r < e.Rank; r++ {
			lead := -1
			for c := 0; c < m; c++ {
				if e.D.At(r, c) != 0 {
					lead = c
					break
				}
			}
			if lead == -1 || lead <= prev {
				t.Fatalf("iter %d: bad echelon row %d\nD=\n%v", iter, r, e.D)
			}
			if e.D.At(r, lead) <= 0 {
				t.Fatalf("iter %d: nonpositive leading entry\nD=\n%v", iter, e.D)
			}
			if lead != e.Lead[r] {
				t.Fatalf("iter %d: Lead[%d]=%d, found %d", iter, r, e.Lead[r], lead)
			}
			prev = lead
		}
		for r := e.Rank; r < n; r++ {
			for c := 0; c < m; c++ {
				if e.D.At(r, c) != 0 {
					t.Fatalf("iter %d: nonzero entry below rank\nD=\n%v", iter, e.D)
				}
			}
		}
	}
}

// Property: if Solve reports a solution t, then t·D = c exactly; and if a
// random integer x exists with x·A = c, Solve must succeed (completeness).
func TestSolveSoundAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(3)
		A := NewMatrix(n, m)
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				A.Set(i, j, int64(rng.Intn(9)-4))
			}
		}
		// construct a c that is solvable by planting x
		x := make([]int64, n)
		for i := range x {
			x[i] = int64(rng.Intn(7) - 3)
		}
		c := make([]int64, m)
		for j := 0; j < m; j++ {
			for i := 0; i < n; i++ {
				c[j] += x[i] * A.At(i, j)
			}
		}
		e, err := Factor(A)
		if err != nil {
			t.Fatal(err)
		}
		sol, ok, err := e.Solve(c)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("iter %d: Solve incomplete: planted x=%v c=%v\nA=\n%v", iter, x, c, A)
		}
		// soundness: determined t must satisfy t·D = c given free rows are 0
		for j := 0; j < m; j++ {
			var got int64
			for i := 0; i < e.Rank; i++ {
				got += sol[i] * e.D.At(i, j)
			}
			if got != c[j] {
				t.Fatalf("iter %d: t·D ≠ c at col %d", iter, j)
			}
		}
	}
}

func TestSolveBadRHS(t *testing.T) {
	A := FromRows([][]int64{{1}})
	e, _ := Factor(A)
	if _, _, err := e.Solve([]int64{1, 2}); err == nil {
		t.Fatal("wrong rhs length must error")
	}
}

func TestMatrixString(t *testing.T) {
	m := FromRows([][]int64{{1, -2}, {0, 3}})
	want := "[1 -2]\n[0 3]"
	if got := m.String(); got != want {
		t.Fatalf("String = %q", got)
	}
}
