package linalg

import (
	"testing"
	"testing/quick"
)

func TestRatBasics(t *testing.T) {
	r := NewRat(6, -4)
	if r.Num != -3 || r.Den != 2 {
		t.Fatalf("NewRat(6,-4) = %v", r)
	}
	if RatInt(5).String() != "5" || NewRat(1, 3).String() != "1/3" {
		t.Fatal("String formatting wrong")
	}
	if !RatInt(0).IsZero() || RatInt(1).IsZero() {
		t.Fatal("IsZero wrong")
	}
	if RatInt(-2).Sign() != -1 || RatInt(0).Sign() != 0 || NewRat(1, 7).Sign() != 1 {
		t.Fatal("Sign wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewRat with zero denominator must panic")
		}
	}()
	NewRat(1, 0)
}

func TestRatArith(t *testing.T) {
	a, b := NewRat(1, 2), NewRat(1, 3)
	sum, err := a.Add(b)
	if err != nil || sum != NewRat(5, 6) {
		t.Fatalf("1/2+1/3 = %v, %v", sum, err)
	}
	diff, err := a.Sub(b)
	if err != nil || diff != NewRat(1, 6) {
		t.Fatalf("1/2-1/3 = %v, %v", diff, err)
	}
	prod, err := a.Mul(b)
	if err != nil || prod != NewRat(1, 6) {
		t.Fatalf("1/2*1/3 = %v, %v", prod, err)
	}
	quot, err := a.Div(b)
	if err != nil || quot != NewRat(3, 2) {
		t.Fatalf("(1/2)/(1/3) = %v, %v", quot, err)
	}
	if _, err := a.Div(RatInt(0)); err == nil {
		t.Fatal("division by zero must error")
	}
	// division by a negative keeps denominator positive
	q, err := a.Div(NewRat(-1, 4))
	if err != nil || q != RatInt(-2) {
		t.Fatalf("(1/2)/(-1/4) = %v, %v", q, err)
	}
}

func TestRatFloorCeil(t *testing.T) {
	cases := []struct {
		r      Rat
		fl, ce int64
	}{
		{NewRat(7, 2), 3, 4},
		{NewRat(-7, 2), -4, -3},
		{RatInt(5), 5, 5},
		{NewRat(1, 3), 0, 1},
		{NewRat(-1, 3), -1, 0},
	}
	for _, c := range cases {
		if c.r.Floor() != c.fl || c.r.Ceil() != c.ce {
			t.Errorf("%v: floor=%d ceil=%d, want %d %d", c.r, c.r.Floor(), c.r.Ceil(), c.fl, c.ce)
		}
	}
	if !RatInt(3).IsInt() || NewRat(3, 2).IsInt() {
		t.Fatal("IsInt wrong")
	}
}

func TestRatCmp(t *testing.T) {
	c, err := NewRat(2, 3).Cmp(NewRat(3, 4))
	if err != nil || c != -1 {
		t.Fatalf("2/3 vs 3/4 = %d, %v", c, err)
	}
	c, err = NewRat(-1, 2).Cmp(NewRat(-2, 4))
	if err != nil || c != 0 {
		t.Fatalf("-1/2 vs -2/4 = %d, %v", c, err)
	}
}

// Properties over random small rationals: field laws hold exactly.
func TestRatProperties(t *testing.T) {
	mk := func(n int16, d uint8) Rat {
		den := int64(d%31) + 1
		return NewRat(int64(n), den)
	}
	addComm := func(an int16, ad uint8, bn int16, bd uint8) bool {
		a, b := mk(an, ad), mk(bn, bd)
		x, err1 := a.Add(b)
		y, err2 := b.Add(a)
		return err1 == nil && err2 == nil && x == y
	}
	if err := quick.Check(addComm, nil); err != nil {
		t.Error(err)
	}
	mulDistrib := func(an int16, ad uint8, bn int16, bd uint8, cn int16, cd uint8) bool {
		a, b, c := mk(an, ad), mk(bn, bd), mk(cn, cd)
		bc, err := b.Add(c)
		if err != nil {
			return true // overflow excuses
		}
		lhs, err := a.Mul(bc)
		if err != nil {
			return true
		}
		ab, err := a.Mul(b)
		if err != nil {
			return true
		}
		ac, err := a.Mul(c)
		if err != nil {
			return true
		}
		rhs, err := ab.Add(ac)
		if err != nil {
			return true
		}
		return lhs == rhs
	}
	if err := quick.Check(mulDistrib, nil); err != nil {
		t.Error(err)
	}
	floorBound := func(n int16, d uint8) bool {
		r := mk(n, d)
		fl, ce := r.Floor(), r.Ceil()
		// fl ≤ r ≤ ce and ce - fl ≤ 1
		c1, _ := RatInt(fl).Cmp(r)
		c2, _ := r.Cmp(RatInt(ce))
		return c1 <= 0 && c2 <= 0 && ce-fl <= 1
	}
	if err := quick.Check(floorBound, nil); err != nil {
		t.Error(err)
	}
}
