package linalg

import "fmt"

// Rat is an exact rational on checked int64, used by the Fourier–Motzkin
// back-substitution. The zero value is 0/1. Operations return ErrOverflow
// rather than wrapping; the dependence tests treat that as inapplicability.
type Rat struct {
	Num, Den int64 // Den > 0, gcd(Num, Den) = 1
}

// NewRat returns num/den in lowest terms. den must be nonzero.
func NewRat(num, den int64) Rat {
	if den == 0 {
		panic("linalg: zero denominator")
	}
	if den < 0 {
		num, den = -num, -den
	}
	if g := GCD(num, den); g > 1 {
		num /= g
		den /= g
	}
	return Rat{Num: num, Den: den}
}

// RatInt returns the rational v/1.
func RatInt(v int64) Rat { return Rat{Num: v, Den: 1} }

// IsZero reports whether r is zero.
func (r Rat) IsZero() bool { return r.Num == 0 }

// Sign returns -1, 0, or 1.
func (r Rat) Sign() int {
	switch {
	case r.Num < 0:
		return -1
	case r.Num > 0:
		return 1
	default:
		return 0
	}
}

// Add returns r+s.
func (r Rat) Add(s Rat) (Rat, error) {
	// r.Num/r.Den + s.Num/s.Den over lcm denominator
	g := GCD(r.Den, s.Den)
	if g == 0 {
		g = 1
	}
	db := s.Den / g
	n1, err := MulChecked(r.Num, db)
	if err != nil {
		return Rat{}, err
	}
	n2, err := MulChecked(s.Num, r.Den/g)
	if err != nil {
		return Rat{}, err
	}
	num, err := AddChecked(n1, n2)
	if err != nil {
		return Rat{}, err
	}
	den, err := MulChecked(r.Den, db)
	if err != nil {
		return Rat{}, err
	}
	return NewRat(num, den), nil
}

// Sub returns r-s.
func (r Rat) Sub(s Rat) (Rat, error) { return r.Add(Rat{Num: -s.Num, Den: s.Den}) }

// Mul returns r·s.
func (r Rat) Mul(s Rat) (Rat, error) {
	// cross-reduce first to keep magnitudes small
	g1 := GCD(r.Num, s.Den)
	g2 := GCD(s.Num, r.Den)
	if g1 == 0 {
		g1 = 1
	}
	if g2 == 0 {
		g2 = 1
	}
	num, err := MulChecked(r.Num/g1, s.Num/g2)
	if err != nil {
		return Rat{}, err
	}
	den, err := MulChecked(r.Den/g2, s.Den/g1)
	if err != nil {
		return Rat{}, err
	}
	return NewRat(num, den), nil
}

// Div returns r/s for s ≠ 0.
func (r Rat) Div(s Rat) (Rat, error) {
	if s.Num == 0 {
		return Rat{}, fmt.Errorf("linalg: division by zero rational")
	}
	inv := Rat{Num: s.Den, Den: s.Num}
	if inv.Den < 0 {
		inv.Num, inv.Den = -inv.Num, -inv.Den
	}
	return r.Mul(inv)
}

// Cmp compares r and s: -1 if r<s, 0 if equal, 1 if r>s.
func (r Rat) Cmp(s Rat) (int, error) {
	d, err := r.Sub(s)
	if err != nil {
		return 0, err
	}
	return d.Sign(), nil
}

// Floor returns ⌊r⌋.
func (r Rat) Floor() int64 { return FloorDiv(r.Num, r.Den) }

// Ceil returns ⌈r⌉.
func (r Rat) Ceil() int64 { return CeilDiv(r.Num, r.Den) }

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool { return r.Den == 1 }

// String renders r as "n" or "n/d".
func (r Rat) String() string {
	if r.Den == 1 {
		return fmt.Sprintf("%d", r.Num)
	}
	return fmt.Sprintf("%d/%d", r.Num, r.Den)
}
