// Package linalg provides the exact integer linear algebra underpinning the
// dependence tests: gcd computations, checked int64 arithmetic, integer
// matrices, and the unimodular–echelon factorization U·A = D used by
// Banerjee's Extended GCD test (Maydan et al. §3.1).
package linalg

import (
	"errors"
	"fmt"
	"strings"
)

// ErrOverflow is returned when an exact computation would exceed int64.
// Callers treat overflow as "test not applicable" rather than risk a wrong
// exact answer.
var ErrOverflow = errors.New("linalg: int64 overflow")

// AddChecked returns a+b or ErrOverflow.
func AddChecked(a, b int64) (int64, error) {
	s := a + b
	if (a > 0 && b > 0 && s <= 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, ErrOverflow
	}
	return s, nil
}

// MulChecked returns a*b or ErrOverflow.
func MulChecked(a, b int64) (int64, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	p := a * b
	if p/b != a {
		return 0, ErrOverflow
	}
	return p, nil
}

// GCD returns the non-negative greatest common divisor of a and b, with
// GCD(0,0) = 0.
func GCD(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GCDAll returns the gcd of all values (0 for an empty or all-zero slice).
func GCDAll(vs []int64) int64 {
	var g int64
	for _, v := range vs {
		g = GCD(g, v)
		if g == 1 {
			return 1
		}
	}
	return g
}

// ExtGCD returns g = gcd(a,b) and Bézout coefficients x, y with a·x+b·y = g.
// g is non-negative.
func ExtGCD(a, b int64) (g, x, y int64) {
	oldR, r := a, b
	oldS, s := int64(1), int64(0)
	oldT, t := int64(0), int64(1)
	for r != 0 {
		q := oldR / r
		oldR, r = r, oldR-q*r
		oldS, s = s, oldS-q*s
		oldT, t = t, oldT-q*t
	}
	if oldR < 0 {
		oldR, oldS, oldT = -oldR, -oldS, -oldT
	}
	return oldR, oldS, oldT
}

// FloorDiv returns ⌊a/b⌋ for b ≠ 0.
func FloorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// CeilDiv returns ⌈a/b⌉ for b ≠ 0.
func CeilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

// Matrix is a dense rows×cols integer matrix.
type Matrix struct {
	Rows, Cols int
	a          []int64
}

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, a: make([]int64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from row slices (which must all share a length).
func FromRows(rows [][]int64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.a[i*m.Cols:], r)
	}
	return m
}

// Reshape resizes m to rows×cols and zeroes every element, reusing the
// backing array when it is large enough. It is the scratch-reuse counterpart
// of NewMatrix for callers (system.Builder) that rebuild a matrix per
// problem without allocating one per call.
func (m *Matrix) Reshape(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	n := rows * cols
	if cap(m.a) < n {
		m.a = make([]int64, n)
	} else {
		m.a = m.a[:n]
		for i := range m.a {
			m.a[i] = 0
		}
	}
	m.Rows, m.Cols = rows, cols
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) int64 { return m.a[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v int64) { m.a[i*m.Cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []int64 {
	out := make([]int64, m.Cols)
	copy(out, m.a[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.a, m.a)
	return out
}

// SwapRows exchanges rows i and j.
func (m *Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.a[i*m.Cols:(i+1)*m.Cols], m.a[j*m.Cols:(j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// NegateRow multiplies row i by -1.
func (m *Matrix) NegateRow(i int) {
	r := m.a[i*m.Cols : (i+1)*m.Cols]
	for k := range r {
		r[k] = -r[k]
	}
}

// AddMulRow adds k times row src to row dst; a unimodular row operation.
func (m *Matrix) AddMulRow(dst, src int, k int64) error {
	rd := m.a[dst*m.Cols : (dst+1)*m.Cols]
	rs := m.a[src*m.Cols : (src+1)*m.Cols]
	for i := range rd {
		p, err := MulChecked(k, rs[i])
		if err != nil {
			return err
		}
		s, err := AddChecked(rd[i], p)
		if err != nil {
			return err
		}
		rd[i] = s
	}
	return nil
}

// Mul returns m·n.
func (m *Matrix) Mul(n *Matrix) (*Matrix, error) {
	if m.Cols != n.Rows {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, n.Rows, n.Cols)
	}
	out := NewMatrix(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			mik := m.At(i, k)
			if mik == 0 {
				continue
			}
			for j := 0; j < n.Cols; j++ {
				p, err := MulChecked(mik, n.At(k, j))
				if err != nil {
					return nil, err
				}
				s, err := AddChecked(out.At(i, j), p)
				if err != nil {
					return nil, err
				}
				out.Set(i, j, s)
			}
		}
	}
	return out, nil
}

// Equal reports whether m and n have identical shape and elements.
func (m *Matrix) Equal(n *Matrix) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, v := range m.a {
		if n.a[i] != v {
			return false
		}
	}
	return true
}

// String renders the matrix row per line.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteByte('[')
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", m.At(i, j))
		}
		b.WriteByte(']')
	}
	return b.String()
}

// Echelon is the result of the unimodular–echelon factorization of A:
// U·A = D with U unimodular (n×n) and D in row-echelon form with positive
// leading entries. Rank is the number of nonzero rows of D, and Lead[i] is
// the column of row i's leading entry (for i < Rank).
type Echelon struct {
	U    *Matrix
	D    *Matrix
	Rank int
	Lead []int
}

// Factor computes the unimodular–echelon factorization of A (n rows = the
// problem variables, m cols = the equations), exactly as needed by the
// Extended GCD test: U·A = D, so integer solutions of x·A = c correspond to
// t·D = c via x = t·U.
func Factor(A *Matrix) (*Echelon, error) {
	n := A.Rows
	U := Identity(n)
	D := A.Clone()
	pivotRow := 0
	var lead []int
	for col := 0; col < D.Cols && pivotRow < n; col++ {
		// Euclid's algorithm down column col, rows pivotRow..n-1: reduce to
		// a single nonzero at pivotRow using unimodular row ops.
		for {
			// find row with the smallest nonzero |entry| in this column
			best := -1
			for r := pivotRow; r < n; r++ {
				v := D.At(r, col)
				if v == 0 {
					continue
				}
				if best == -1 || abs64(v) < abs64(D.At(best, col)) {
					best = r
				}
			}
			if best == -1 {
				break // column already zero below pivot
			}
			D.SwapRows(pivotRow, best)
			U.SwapRows(pivotRow, best)
			p := D.At(pivotRow, col)
			done := true
			for r := pivotRow + 1; r < n; r++ {
				v := D.At(r, col)
				if v == 0 {
					continue
				}
				q := v / p // truncating quotient keeps |remainder| < |p|
				if err := D.AddMulRow(r, pivotRow, -q); err != nil {
					return nil, err
				}
				if err := U.AddMulRow(r, pivotRow, -q); err != nil {
					return nil, err
				}
				if D.At(r, col) != 0 {
					done = false
				}
			}
			if done {
				break
			}
		}
		if D.At(pivotRow, col) != 0 {
			if D.At(pivotRow, col) < 0 {
				D.NegateRow(pivotRow)
				U.NegateRow(pivotRow)
			}
			lead = append(lead, col)
			pivotRow++
		}
	}
	return &Echelon{U: U, D: D, Rank: pivotRow, Lead: lead}, nil
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Solve solves t·D = c for the echelon factorization: it returns the
// determined components t[0..Rank) and ok=false if no integer solution
// exists. Rows ≥ Rank of t are free parameters (not returned).
func (e *Echelon) Solve(c []int64) (t []int64, ok bool, err error) {
	if len(c) != e.D.Cols {
		return nil, false, fmt.Errorf("linalg: rhs length %d, want %d", len(c), e.D.Cols)
	}
	t = make([]int64, e.Rank)
	next := 0 // next pivot row to determine
	for col := 0; col < e.D.Cols; col++ {
		// residual = c[col] - Σ_{determined i} t_i·D[i][col]
		res := c[col]
		for i := 0; i < next; i++ {
			p, err2 := MulChecked(t[i], e.D.At(i, col))
			if err2 != nil {
				return nil, false, err2
			}
			s, err2 := AddChecked(res, -p)
			if err2 != nil {
				return nil, false, err2
			}
			res = s
		}
		if next < e.Rank && e.Lead[next] == col {
			d := e.D.At(next, col)
			if res%d != 0 {
				return nil, false, nil // gcd failure: no integer solution
			}
			t[next] = res / d
			next++
			continue
		}
		if res != 0 {
			return nil, false, nil // inconsistent equation
		}
	}
	return t, true, nil
}
