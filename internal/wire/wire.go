// Package wire is the versioned JSON schema of the dependence-analysis
// service: the request/response types POSTed to depserve's /v1 endpoints,
// shared verbatim by the depload load generator and depanalyze's -json
// output mode, so the CLI and the server speak one format. The types are
// plain data with JSON tags — no behavior beyond conversion from the
// analyzer's internal result types and a canonical rendering that is
// byte-identical to the corpus layer's (corpus.AppendCanonical), which is
// what lets a client assert that served verdicts match a local batch run.
//
// Compatibility contract: SchemaVersion is bumped on any change that could
// break an existing client — removing or renaming a field, changing a
// field's meaning, or changing the canonical rendering. Adding fields is
// compatible and does not bump the version. The golden files under
// testdata/ pin the encoding.
package wire

import (
	"strconv"
	"time"

	"exactdep/internal/core"
	"exactdep/internal/corpus"
	"exactdep/internal/dtest"
	"exactdep/internal/stats"
)

// SchemaVersion is the wire schema this package encodes. Requests may carry
// 0 (meaning "current") or the exact version; anything else is rejected.
const SchemaVersion = 1

// AnalyzeRequest is the body of POST /v1/analyze: one or more loop-language
// units to analyze as a single corpus (shared verdict store, deterministic
// unit order — the same population a batch depanalyze run over the same
// files would analyze).
type AnalyzeRequest struct {
	SchemaVersion int `json:"schemaVersion"`
	// Units are the DSL sources to analyze, in order.
	Units []UnitSource `json:"units"`
	// Options overrides the server's analysis configuration for this
	// request (nil: server defaults). Requests that override options are
	// solved fresh — the warm tier is scoped to the server configuration.
	Options *Options `json:"options,omitempty"`
	// BudgetClass names the per-tenant work budget (see BudgetClasses);
	// empty selects the server's default class. Under load the server may
	// degrade the request to a weaker class instead of shedding it — the
	// response reports the class that actually applied.
	BudgetClass string `json:"budgetClass,omitempty"`
	// DeadlineMillis bounds the whole request's analysis wall clock;
	// pairs not reached degrade to sound 'maybe' verdicts (never an
	// error). 0 means no client deadline; the server caps it either way.
	DeadlineMillis int64 `json:"deadlineMillis,omitempty"`
}

// UnitSource is one named loop-language source unit.
type UnitSource struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// Options is the client-settable analysis surface: exactly the fields that
// change result bytes. Memoization layout, worker counts, and persistence
// are server concerns and not on the wire.
type Options struct {
	DirectionVectors bool `json:"directionVectors"`
	PruneUnused      bool `json:"pruneUnused"`
	PruneDistance    bool `json:"pruneDistance"`
	Separable        bool `json:"separable"`
	// Cascade names the test pipeline: "" or "full", or "fm-only".
	Cascade string `json:"cascade,omitempty"`
}

// Apply overlays the wire options onto a base core.Options, returning the
// effective configuration.
func (o *Options) Apply(base core.Options) core.Options {
	if o == nil {
		return base
	}
	base.DirectionVectors = o.DirectionVectors
	base.PruneUnused = o.PruneUnused
	base.PruneDistance = o.PruneDistance
	base.Separable = o.Separable
	base.Cascade = o.Cascade
	return base
}

// FromCoreOptions projects a core.Options onto its wire surface.
func FromCoreOptions(c core.Options) Options {
	return Options{
		DirectionVectors: c.DirectionVectors,
		PruneUnused:      c.PruneUnused,
		PruneDistance:    c.PruneDistance,
		Separable:        c.Separable,
		Cascade:          c.Cascade,
	}
}

// AnalyzeResponse is the body of a successful /v1/analyze (and of
// depanalyze -json, which fills the same shape from a batch run).
type AnalyzeResponse struct {
	SchemaVersion int `json:"schemaVersion"`
	// BudgetClass is the class that actually applied.
	BudgetClass string `json:"budgetClass,omitempty"`
	// RequestedClass echoes the request's class when it differs from the
	// applied one (i.e. when the server degraded the request under load).
	RequestedClass string `json:"requestedClass,omitempty"`
	// DegradedByLoad reports that admission control shrank the budget
	// class below the requested one; verdicts may then include 'maybe'
	// where an unloaded server would have answered exactly.
	DegradedByLoad bool `json:"degradedByLoad,omitempty"`
	// Units holds one entry per request unit, in request order.
	Units []UnitVerdicts `json:"units"`
	// Stats counts the warm-tier traffic of this request.
	Stats CorpusStats `json:"stats"`
	// Counters snapshots the analyzer counters for the solved units.
	Counters Counters `json:"counters"`
}

// UnitVerdicts is one unit's verdicts.
type UnitVerdicts struct {
	Name string `json:"name"`
	// Fingerprint is the unit's 128-bit structural digest, hex-encoded.
	Fingerprint string `json:"fingerprint"`
	// Reused reports that the verdicts came from the warm tier (the
	// fingerprint → verdict store), not the analyzer.
	Reused   bool         `json:"reused,omitempty"`
	Warnings []string     `json:"warnings,omitempty"`
	Results  []PairResult `json:"results"`
}

// PairResult is one candidate pair's verdict.
type PairResult struct {
	// Pair renders the two references ("a[i+1] vs a[i]").
	Pair string `json:"pair"`
	// Outcome is "independent", "dependent", "unknown", or "maybe".
	Outcome string `json:"outcome"`
	// Exact is false for degraded (maybe) and structurally unknown
	// verdicts — the pairs a client must treat as dependent without proof.
	Exact bool `json:"exact"`
	// DecidedBy is the provenance ("constant", "gcd", "test", "cache",
	// "directions"). Session-history dependent: a warm run legitimately
	// reports "cache" where a cold run reports "test".
	DecidedBy string `json:"decidedBy"`
	// Kind names the deciding cascade test when DecidedBy is "test".
	Kind string `json:"kind,omitempty"`
	// Trip names the budget limit that degraded a maybe verdict.
	Trip string `json:"trip,omitempty"`
	// Vectors are dependence direction vectors in "(<, =, *)" notation,
	// outermost loop first.
	Vectors []string `json:"vectors,omitempty"`
	// Distances are the known-constant dependence distances.
	Distances []Distance `json:"distances,omitempty"`
}

// Distance is one constant dependence distance.
type Distance struct {
	Level int   `json:"level"`
	Value int64 `json:"value"`
}

// CorpusStats counts one request's warm-tier traffic (the wire form of
// corpus.Stats).
type CorpusStats struct {
	Units       int `json:"units"`
	UnitsReused int `json:"unitsReused"`
	UnitsSolved int `json:"unitsSolved"`
	PairsServed int `json:"pairsServed"`
	PairsSolved int `json:"pairsSolved"`
}

// Counters is the wire form of the analyzer counters a service client
// cares about: the verdict mix and the degradation profile.
type Counters struct {
	Pairs          int `json:"pairs"`
	Constant       int `json:"constant"`
	GCDIndependent int `json:"gcdIndependent"`
	Tests          int `json:"tests"`
	Independent    int `json:"independent"`
	Dependent      int `json:"dependent"`
	Unknown        int `json:"unknown"`
	Maybe          int `json:"maybe"`
	BudgetTrips    int `json:"budgetTrips"`
	CancelledPairs int `json:"cancelledPairs"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	SchemaVersion int    `json:"schemaVersion"`
	Error         string `json:"error"`
	// RetryAfterSeconds accompanies 429 (the queue was full); clients
	// should back off at least this long.
	RetryAfterSeconds int `json:"retryAfterSeconds,omitempty"`
}

// Health is the body of GET /v1/healthz.
type Health struct {
	SchemaVersion int    `json:"schemaVersion"`
	Status        string `json:"status"`
	UptimeMillis  int64  `json:"uptimeMillis"`
}

// Statsz is the body of GET /v1/statsz: the service's memo/store/queue
// counters.
type Statsz struct {
	SchemaVersion int   `json:"schemaVersion"`
	UptimeMillis  int64 `json:"uptimeMillis"`
	// Admission-control counters.
	QueueDepth    int   `json:"queueDepth"`
	QueueCapacity int   `json:"queueCapacity"`
	Executors     int   `json:"executors"`
	Accepted      int64 `json:"accepted"`
	Completed     int64 `json:"completed"`
	Degraded      int64 `json:"degraded"`
	Shed          int64 `json:"shed"`
	ClientErrors  int64 `json:"clientErrors"`
	// Cancelled counts requests whose context was cancelled or whose
	// deadline expired before completion (client gone, deadline passed).
	// Such requests are degraded or answered 408, never 5xx, and are a
	// subset of Completed.
	Cancelled int64 `json:"cancelled"`
	// Warm-tier counters.
	StoreUnits  int   `json:"storeUnits"`
	UnitsReused int64 `json:"unitsReused"`
	UnitsSolved int64 `json:"unitsSolved"`
	PairsServed int64 `json:"pairsServed"`
	PairsSolved int64 `json:"pairsSolved"`
	// Warm-analyzer / coalescing counters. Batches counts executor batches
	// (every analyze request lands in exactly one); CoalescedJobs counts
	// requests that rode along in a batch after the first (so
	// Batches+CoalescedJobs = coalescable requests completed).
	// BatchSizeHist[i] counts batches of i+1 jobs, last bucket open-ended.
	// FingerprintDeduped counts store probes within one batch that hit a
	// unit an earlier batchmate had just solved and stored.
	// CrossRequestMemoHits counts full-table memo hits observed by a warm
	// analyzer on requests after its first of the current eviction epoch
	// (an upper bound on cross-request reuse: within-request repeats of a
	// problem cached by an earlier request are included).
	// MemoEntries is the current entry total over all warm analyzers'
	// tables; MemoEvictions counts epoch restarts forced by MaxMemoEntries.
	MaxBatch             int     `json:"maxBatch"`
	Batches              int64   `json:"batches"`
	CoalescedJobs        int64   `json:"coalescedJobs"`
	BatchSizeHist        []int64 `json:"batchSizeHist"`
	FingerprintDeduped   int64   `json:"fingerprintDeduped"`
	CrossRequestMemoHits int64   `json:"crossRequestMemoHits"`
	MemoEntries          int64   `json:"memoEntries"`
	MemoEvictions        int64   `json:"memoEvictions"`
}

// CorpusRequest is the body of POST /v1/corpus: analyze a server-local
// corpus (a directory tree or explicit file list under the server's
// configured corpus root). It is the wire twin of the facade's
// CorpusRequest value and is mapped onto it verbatim.
type CorpusRequest struct {
	SchemaVersion int `json:"schemaVersion"`
	// Dir is a directory of *.loop files relative to the corpus root.
	Dir string `json:"dir,omitempty"`
	// Files is an explicit list of files relative to the corpus root.
	Files []string `json:"files,omitempty"`
	// Options / BudgetClass / DeadlineMillis as in AnalyzeRequest.
	Options        *Options `json:"options,omitempty"`
	BudgetClass    string   `json:"budgetClass,omitempty"`
	DeadlineMillis int64    `json:"deadlineMillis,omitempty"`
}

// BudgetClassDef names one per-tenant work budget. Classes are ordered
// strongest first: admission control under load moves a request toward the
// end of the list ("shrinking"), never toward the front.
type BudgetClassDef struct {
	Name   string
	Budget dtest.Budget
}

// BudgetClasses is the ordered service budget ladder. "exhaustive" is
// unlimited (the batch CLI's default); the count limits of the weaker
// classes are deterministic, so degraded verdicts stay cacheable and
// byte-stable per class.
var BudgetClasses = []BudgetClassDef{
	{Name: "exhaustive", Budget: dtest.Budget{}},
	{Name: "generous", Budget: dtest.Budget{MaxFMEliminations: 100_000, MaxBranchNodes: 10_000, MaxConstraints: 100_000}},
	{Name: "standard", Budget: dtest.Budget{MaxFMEliminations: 10_000, MaxBranchNodes: 1_000, MaxConstraints: 20_000}},
	{Name: "economy", Budget: dtest.Budget{MaxFMEliminations: 1_000, MaxBranchNodes: 128, MaxConstraints: 4_000}},
	{Name: "minimal", Budget: dtest.Budget{MaxFMEliminations: 64, MaxBranchNodes: 16, MaxConstraints: 512}},
}

// ClassIndex resolves a budget class name to its ladder position. The empty
// name resolves to class 0 (exhaustive).
func ClassIndex(name string) (int, bool) {
	if name == "" {
		return 0, true
	}
	for i, c := range BudgetClasses {
		if c.Name == name {
			return i, true
		}
	}
	return 0, false
}

// ClassName maps a dtest.Budget back to its ladder name, or "custom" when
// the budget matches no class (e.g. hand-set CLI budget flags).
func ClassName(b dtest.Budget) string {
	cl := b.Class()
	for _, c := range BudgetClasses {
		if c.Budget.Class() == cl {
			return c.Name
		}
	}
	return "custom"
}

// FromUnitResult converts one corpus-layer unit result to its wire form.
func FromUnitResult(ur *corpus.UnitResult) UnitVerdicts {
	uv := UnitVerdicts{
		Name:        ur.Name,
		Fingerprint: fingerprintHex(ur.Fingerprint.Hi, ur.Fingerprint.Lo),
		Reused:      ur.Reused,
		Warnings:    ur.Warnings,
		Results:     make([]PairResult, len(ur.Results)),
	}
	for i := range ur.Results {
		uv.Results[i] = fromResult(&ur.Results[i])
	}
	return uv
}

func fromResult(r *core.Result) PairResult {
	pr := PairResult{
		Pair:      r.Pair.A.Ref.String() + " vs " + r.Pair.B.Ref.String(),
		Outcome:   r.Outcome.String(),
		Exact:     r.Exact,
		DecidedBy: r.DecidedBy.String(),
	}
	if r.DecidedBy == core.ByTest && r.Kind != dtest.KindNone {
		pr.Kind = r.Kind.String()
	}
	if r.Trip != dtest.TripNone {
		pr.Trip = r.Trip.String()
	}
	for _, v := range r.Vectors {
		pr.Vectors = append(pr.Vectors, v.String())
	}
	for _, d := range r.Distances {
		pr.Distances = append(pr.Distances, Distance{Level: d.Level, Value: d.Value})
	}
	return pr
}

// FromCorpusStats converts the driver's traffic counters.
func FromCorpusStats(s corpus.Stats) CorpusStats {
	return CorpusStats{
		Units:       s.Units,
		UnitsReused: s.UnitsReused,
		UnitsSolved: s.UnitsSolved,
		PairsServed: s.PairsServed,
		PairsSolved: s.PairsSolved,
	}
}

// FromCounters converts the analyzer counters.
func FromCounters(s stats.Counters) Counters {
	return Counters{
		Pairs:          s.Pairs,
		Constant:       s.Constant,
		GCDIndependent: s.GCDIndependent,
		Tests:          s.TotalTests(),
		Independent:    s.Independent,
		Dependent:      s.Dependent,
		Unknown:        s.Unknown,
		Maybe:          s.Maybe,
		BudgetTrips:    s.TotalBudgetTrips(),
		CancelledPairs: s.CancelledPairs,
	}
}

func fingerprintHex(hi, lo uint64) string {
	const hex = "0123456789abcdef"
	var b [32]byte
	for i := 0; i < 16; i++ {
		b[15-i] = hex[(hi>>(4*i))&0xf]
		b[31-i] = hex[(lo>>(4*i))&0xf]
	}
	return string(b[:])
}

// tripCode maps a trip name back to its dtest.TripReason ordinal — the form
// the canonical rendering uses. Pinned against dtest by TestTripCodes.
var tripCode = map[string]int{
	"fm-eliminations":   int(dtest.TripFMEliminations),
	"branch-nodes":      int(dtest.TripBranchNodes),
	"constraints":       int(dtest.TripConstraints),
	"deadline":          int(dtest.TripDeadline),
	"cancelled":         int(dtest.TripCancelled),
	"fm-constraint-cap": int(dtest.TripFMConstraintCap),
}

// AppendCanonical appends the canonical rendering of one wire unit: the
// byte-identity surface of the service. For any unit the bytes are
// identical to corpus.AppendCanonical over the equivalent UnitResult
// (pinned by TestWireCanonicalMatchesCorpus), so a client holding wire
// responses can diff them against a local batch run without reconstructing
// internal result types. Provenance (decidedBy/kind) is deliberately
// excluded, exactly as in the corpus layer.
func AppendCanonical(dst []byte, uv *UnitVerdicts) []byte {
	dst = append(dst, uv.Name...)
	dst = append(dst, '\n')
	for i := range uv.Results {
		r := &uv.Results[i]
		dst = strconv.AppendInt(dst, int64(i), 10)
		dst = append(dst, ' ')
		dst = append(dst, r.Outcome...)
		if r.Exact {
			dst = append(dst, " exact"...)
		}
		if r.Trip != "" {
			dst = append(dst, " trip="...)
			dst = strconv.AppendInt(dst, int64(tripCode[r.Trip]), 10)
		}
		for _, v := range r.Vectors {
			dst = append(dst, ' ')
			dst = append(dst, v...)
		}
		for _, d := range r.Distances {
			dst = append(dst, " d"...)
			dst = strconv.AppendInt(dst, int64(d.Level), 10)
			dst = append(dst, '=')
			dst = strconv.AppendInt(dst, d.Value, 10)
		}
		dst = append(dst, '\n')
	}
	return dst
}

// Canonical renders a whole response's units.
func Canonical(resp *AnalyzeResponse) []byte {
	var buf []byte
	for i := range resp.Units {
		buf = AppendCanonical(buf, &resp.Units[i])
	}
	return buf
}

// RetryAfter is the backoff the server advertises on a shed request.
const RetryAfter = 1 * time.Second
