package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"exactdep/internal/core"
	"exactdep/internal/corpus"
	"exactdep/internal/dtest"
	"exactdep/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// golden marshals v with the encoding the service uses and compares it to
// the pinned file — the schema's compatibility gate. Run with -update to
// regenerate after an intentional (version-bumped or purely additive)
// change.
func golden(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run: go test ./internal/wire -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: encoding drifted from golden file.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestGoldenAnalyzeRequest(t *testing.T) {
	golden(t, "analyze_request.json", AnalyzeRequest{
		SchemaVersion: SchemaVersion,
		Units: []UnitSource{
			{Name: "p.loop", Source: "for i = 1 to 100\n  a[i+1] = a[i] + 3\nend\n"},
		},
		Options: &Options{
			DirectionVectors: true,
			PruneUnused:      true,
			PruneDistance:    true,
		},
		BudgetClass:    "standard",
		DeadlineMillis: 2000,
	})
}

func TestGoldenAnalyzeResponse(t *testing.T) {
	golden(t, "analyze_response.json", AnalyzeResponse{
		SchemaVersion:  SchemaVersion,
		BudgetClass:    "economy",
		RequestedClass: "standard",
		DegradedByLoad: true,
		Units: []UnitVerdicts{{
			Name:        "p.loop",
			Fingerprint: "00000000000000ab00000000000000cd",
			Reused:      true,
			Results: []PairResult{
				{
					Pair:      "a[i+1] vs a[i]",
					Outcome:   "dependent",
					Exact:     true,
					DecidedBy: "cache",
					Vectors:   []string{"(<)"},
					Distances: []Distance{{Level: 0, Value: 1}},
				},
				{
					Pair:      "b[i][j] vs b[i-1][j+1]",
					Outcome:   "maybe",
					DecidedBy: "test",
					Kind:      "Fourier-Motzkin",
					Trip:      "fm-eliminations",
				},
			},
		}},
		Stats:    CorpusStats{Units: 1, UnitsReused: 1, PairsServed: 2},
		Counters: Counters{Pairs: 0},
	})
}

func TestGoldenErrorAndStatsz(t *testing.T) {
	golden(t, "error_response.json", ErrorResponse{
		SchemaVersion:     SchemaVersion,
		Error:             "queue full",
		RetryAfterSeconds: 1,
	})
	golden(t, "statsz.json", Statsz{
		SchemaVersion:        SchemaVersion,
		UptimeMillis:         12345,
		QueueDepth:           3,
		QueueCapacity:        64,
		Executors:            1,
		Accepted:             100,
		Completed:            96,
		Degraded:             2,
		Shed:                 1,
		ClientErrors:         1,
		Cancelled:            2,
		StoreUnits:           40,
		UnitsReused:          350,
		UnitsSolved:          50,
		PairsServed:          7000,
		PairsSolved:          900,
		MaxBatch:             8,
		Batches:              30,
		CoalescedJobs:        66,
		BatchSizeHist:        []int64{10, 4, 2, 0, 0, 0, 0, 14},
		FingerprintDeduped:   12,
		CrossRequestMemoHits: 4000,
		MemoEntries:          512,
		MemoEvictions:        1,
	})
}

// TestTripCodes pins the trip-name → ordinal table against dtest, so the
// canonical rendering cannot silently diverge when a trip reason is added
// or renamed.
func TestTripCodes(t *testing.T) {
	for name, code := range tripCode {
		if got := dtest.TripReason(code).String(); got != name {
			t.Errorf("tripCode[%q] = %d, but that reason renders as %q", name, code, got)
		}
	}
	if len(tripCode) != dtest.NumTripReasons-1 { // every reason except TripNone
		t.Errorf("tripCode covers %d reasons, want %d", len(tripCode), dtest.NumTripReasons-1)
	}
}

func TestClassLadder(t *testing.T) {
	if i, ok := ClassIndex(""); !ok || i != 0 {
		t.Errorf("empty class: got %d, %t", i, ok)
	}
	for i, c := range BudgetClasses {
		got, ok := ClassIndex(c.Name)
		if !ok || got != i {
			t.Errorf("ClassIndex(%q) = %d, %t", c.Name, got, ok)
		}
		if name := ClassName(c.Budget); name != c.Name {
			t.Errorf("ClassName round-trip for %q gave %q", c.Name, name)
		}
	}
	if _, ok := ClassIndex("no-such-class"); ok {
		t.Error("unknown class resolved")
	}
	if name := ClassName(dtest.Budget{MaxFMEliminations: 7}); name != "custom" {
		t.Errorf("unladdered budget named %q, want custom", name)
	}
}

// TestWireCanonicalMatchesCorpus is the byte-identity bridge: for the same
// results, wire.AppendCanonical over the converted UnitVerdicts must equal
// corpus.AppendCanonical over the original UnitResult — including degraded
// (maybe) verdicts with trip provenance, vectors, and distances.
func TestWireCanonicalMatchesCorpus(t *testing.T) {
	units := testUnits(t)
	for _, budget := range []dtest.Budget{{}, {MaxFMEliminations: 4, MaxBranchNodes: 2, MaxConstraints: 64}} {
		opts := core.Options{
			Memoize: true, ImprovedMemo: true,
			DirectionVectors: true, PruneUnused: true, PruneDistance: true,
			Budget: budget,
		}
		d := corpus.NewDriver(opts, 1)
		urs, err := d.RunAll(context.Background(), units)
		if err != nil {
			t.Fatal(err)
		}
		sawMaybe := false
		for i := range urs {
			want := corpus.AppendCanonical(nil, &urs[i])
			uv := FromUnitResult(&urs[i])
			got := AppendCanonical(nil, &uv)
			if !bytes.Equal(got, want) {
				t.Fatalf("budget %+v unit %s: wire canonical diverged\nwire:\n%s\ncorpus:\n%s",
					budget, urs[i].Name, got, want)
			}
			for _, r := range urs[i].Results {
				if r.Outcome == dtest.Maybe {
					sawMaybe = true
				}
			}
		}
		if budget.Limited() && !sawMaybe {
			t.Error("starvation budget produced no maybe verdicts; trip path untested")
		}
	}
}

// testUnits builds a small mixed corpus: easy exact verdicts plus the
// FM-hard adversarial programs that trip count budgets.
func testUnits(t *testing.T) corpus.Mem {
	t.Helper()
	var m corpus.Mem
	u, err := corpus.FromSource("easy.loop", "for i = 1 to 100\n  a[i+1] = a[i] + 3\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	m = append(m, u)
	for _, s := range workload.FMHardPrograms()[:2] {
		cands, err := workload.FMHardCandidates(s)
		if err != nil {
			t.Fatal(err)
		}
		m = append(m, corpus.Unit{Name: s.Name, Cands: cands})
	}
	return m
}

// TestSchemaVersionDecode: a request carrying a newer version must be
// distinguishable before any field interpretation (servers reject it).
func TestSchemaVersionDecode(t *testing.T) {
	var req AnalyzeRequest
	if err := json.Unmarshal([]byte(`{"schemaVersion":99,"units":[]}`), &req); err != nil {
		t.Fatal(err)
	}
	if req.SchemaVersion != 99 {
		t.Errorf("schemaVersion decoded as %d", req.SchemaVersion)
	}
}
