package ir

import (
	"fmt"
	"strings"
)

// Loop is one level of a normalized loop nest: for Index = Lower to Upper
// with unit step. Bounds are affine in outer loop indices and symbolic
// variables. A nil bound (signalled by Unbounded) means the bound is
// unknown, as for the paper's symbolic "read(n)" loops.
type Loop struct {
	Index string
	Lower Expr
	Upper Expr
	// NoLower/NoUpper mark a missing (symbolic, unconstrained) bound.
	NoLower bool
	NoUpper bool
	// ID distinguishes distinct syntactic loops that happen to share an
	// index name and bounds (sibling loops). 0 means "untagged"; comparison
	// then falls back to structure.
	ID int
}

// String renders the loop header.
func (l Loop) String() string {
	lo, hi := l.Lower.String(), l.Upper.String()
	if l.NoLower {
		lo = "?"
	}
	if l.NoUpper {
		hi = "?"
	}
	return fmt.Sprintf("for %s = %s to %s", l.Index, lo, hi)
}

// RefKind distinguishes reads from writes.
type RefKind int

const (
	Read RefKind = iota
	Write
)

func (k RefKind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Ref is a single array reference a[f1][f2]... inside a loop nest.
type Ref struct {
	Array string
	// Subscripts are affine in the enclosing loop indices and symbols.
	Subscripts []Expr
	Kind       RefKind
	// Depth is the number of enclosing loops of the ref within its nest.
	Depth int
	// Stmt identifies the statement the reference belongs to (position in
	// the nest body, used only for reporting).
	Stmt int
}

// String renders the reference, e.g. "a[i+1][j] (write)".
func (r Ref) String() string {
	var b strings.Builder
	b.WriteString(r.Array)
	for _, s := range r.Subscripts {
		fmt.Fprintf(&b, "[%s]", s.String())
	}
	fmt.Fprintf(&b, " (%s)", r.Kind)
	return b.String()
}

// Nest is a perfect or imperfect loop nest flattened to the loops enclosing
// each reference. Loops[0] is outermost. Refs carry their own Depth, so a
// reference nested under only the first k loops has Depth k.
type Nest struct {
	Loops []Loop
	Refs  []Ref
	// Symbols are loop-invariant unknowns referenced by bounds or
	// subscripts (paper §8). They carry no constraints.
	Symbols []string
	// Label names the nest for reporting (e.g. source position).
	Label string
}

// LoopsFor returns the loops enclosing ref r (its first Depth loops).
func (n *Nest) LoopsFor(r Ref) []Loop {
	d := r.Depth
	if d > len(n.Loops) {
		d = len(n.Loops)
	}
	return n.Loops[:d]
}

// CommonDepth returns the number of loops shared by two references of the
// nest (the shorter of the two depths; a nest shares a single loop stack).
func (n *Nest) CommonDepth(a, b Ref) int {
	d := a.Depth
	if b.Depth < d {
		d = b.Depth
	}
	if d > len(n.Loops) {
		d = len(n.Loops)
	}
	return d
}

// Site is one array reference together with its own stack of enclosing
// loops (outermost first). Sites generalize tower-shaped nests to imperfect
// ones: two sites may share only a prefix of their stacks.
type Site struct {
	Loops []Loop
	Ref   Ref
}

// Pair is a candidate dependence pair: two references to the same array
// sharing the first Common enclosing loops. By convention A is the earlier
// reference in program order.
type Pair struct {
	A, B Site
	// Common is the number of loops shared by both stacks (a prefix).
	Common int
	// Symbols are the loop-invariant unknowns in scope (paper §8).
	Symbols []string
	// Label names the pair's origin for reporting.
	Label string
}

// String renders the pair for reporting.
func (p Pair) String() string {
	return fmt.Sprintf("%s vs %s in %s", p.A.Ref, p.B.Ref, p.Label)
}

// Pair builds a dependence pair for two references of a tower-shaped nest.
func (n *Nest) Pair(a, b Ref) Pair {
	return Pair{
		A:       Site{Loops: n.LoopsFor(a), Ref: a},
		B:       Site{Loops: n.LoopsFor(b), Ref: b},
		Common:  n.CommonDepth(a, b),
		Symbols: n.Symbols,
		Label:   n.Label,
	}
}

// Unit is a lowered compilation unit: every array reference site of one
// program, plus the symbolic unknowns in scope.
type Unit struct {
	Name     string
	Sites    []Site
	Symbols  []string
	Warnings []string
	// ScalarCarried maps a loop's ID to the scalars whose values flow
	// across its iterations (read before written in the body, excluding
	// substituted induction variables). Such loops cannot run in parallel
	// regardless of array dependences.
	ScalarCarried map[int][]string
	// ScalarPrivate maps a loop's ID to the scalars assigned in its body
	// whose value does not flow across iterations: a parallelizing compiler
	// gives each iteration a private copy (including substituted induction
	// variables, which become closed forms).
	ScalarPrivate map[int][]string
}
