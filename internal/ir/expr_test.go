package ir

import (
	"testing"
	"testing/quick"
)

func TestNewConstAndVar(t *testing.T) {
	c := NewConst(7)
	if !c.IsConst() || c.Const != 7 {
		t.Fatalf("NewConst(7) = %v", c)
	}
	v := NewVar("i")
	if v.Coeff("i") != 1 || v.Const != 0 {
		t.Fatalf("NewVar(i) = %v", v)
	}
	if NewTerm("i", 0).NumTerms() != 0 {
		t.Fatal("NewTerm with zero coeff should be constant 0")
	}
}

func TestAddSub(t *testing.T) {
	e := NewVar("i").Add(NewTerm("j", 2)).AddConst(3) // i + 2j + 3
	f := NewVar("i").Sub(NewVar("j"))                 // i - j
	sum := e.Add(f)
	if sum.Coeff("i") != 2 || sum.Coeff("j") != 1 || sum.Const != 3 {
		t.Fatalf("sum = %v", sum)
	}
	diff := e.Sub(f)
	if diff.Coeff("i") != 0 || diff.Coeff("j") != 3 || diff.Const != 3 {
		t.Fatalf("diff = %v", diff)
	}
	if diff.Uses("i") {
		t.Fatal("cancelled coefficient must be removed from Terms")
	}
}

func TestScaleAndNeg(t *testing.T) {
	e := NewVar("i").AddConst(5)
	if got := e.Scale(3); got.Coeff("i") != 3 || got.Const != 15 {
		t.Fatalf("Scale = %v", got)
	}
	if got := e.Scale(0); !got.IsZero() {
		t.Fatalf("Scale(0) = %v", got)
	}
	if got := e.Neg(); got.Coeff("i") != -1 || got.Const != -5 {
		t.Fatalf("Neg = %v", got)
	}
}

func TestMul(t *testing.T) {
	e := NewVar("i").AddConst(1)
	if got, ok := e.Mul(NewConst(4)); !ok || got.Coeff("i") != 4 || got.Const != 4 {
		t.Fatalf("Mul const = %v ok=%v", got, ok)
	}
	if got, ok := NewConst(-2).Mul(e); !ok || got.Coeff("i") != -2 || got.Const != -2 {
		t.Fatalf("const Mul = %v ok=%v", got, ok)
	}
	if _, ok := e.Mul(NewVar("j")); ok {
		t.Fatal("nonlinear product must report ok=false")
	}
}

func TestSubst(t *testing.T) {
	// i + 2j + 3 with j := i - 1  →  3i + 1
	e := NewVar("i").Add(NewTerm("j", 2)).AddConst(3)
	got := e.Subst("j", NewVar("i").AddConst(-1))
	if got.Coeff("i") != 3 || got.Coeff("j") != 0 || got.Const != 1 {
		t.Fatalf("Subst = %v", got)
	}
	// substituting an absent variable is a no-op copy
	same := e.Subst("k", NewConst(100))
	if !same.Equal(e) {
		t.Fatalf("Subst absent var changed expr: %v", same)
	}
}

func TestRename(t *testing.T) {
	e := NewVar("i").Add(NewTerm("j", 2))
	got := e.Rename("i", "t1")
	if got.Coeff("t1") != 1 || got.Uses("i") {
		t.Fatalf("Rename = %v", got)
	}
	// renaming onto an existing variable combines coefficients
	combined := e.Rename("i", "j")
	if combined.Coeff("j") != 3 {
		t.Fatalf("Rename combine = %v", combined)
	}
}

func TestEval(t *testing.T) {
	e := NewTerm("i", 2).Add(NewTerm("j", -1)).AddConst(10)
	v, ok := e.Eval(map[string]int64{"i": 3, "j": 4})
	if !ok || v != 12 {
		t.Fatalf("Eval = %d ok=%v", v, ok)
	}
	if _, ok := e.Eval(map[string]int64{"i": 3}); ok {
		t.Fatal("Eval with missing var must fail")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{NewConst(0), "0"},
		{NewConst(-4), "-4"},
		{NewVar("i"), "i"},
		{NewTerm("i", -1), "-i"},
		{NewTerm("i", 2).Add(NewTerm("j", -3)).AddConst(7), "2*i - 3*j + 7"},
		{NewTerm("j", 1).Add(NewTerm("i", 1)), "i + j"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	a := NewVar("i").AddConst(1)
	b := NewConst(1).Add(NewVar("i"))
	if !a.Equal(b) {
		t.Fatal("structurally equal exprs must compare equal")
	}
	if a.Equal(NewVar("i")) || a.Equal(NewVar("j").AddConst(1)) {
		t.Fatal("different exprs compared equal")
	}
}

func TestCloneIsolation(t *testing.T) {
	a := NewVar("i")
	b := a.Clone()
	_ = b.Add(NewVar("j")) // must not touch a or b
	c := b.Add(NewVar("k"))
	if a.Uses("j") || a.Uses("k") || b.Uses("k") {
		t.Fatal("Add mutated its receiver")
	}
	if !c.Uses("k") {
		t.Fatal("Add lost the added term")
	}
}

// Property: Add is commutative and Sub(x,x) is zero, over random small exprs.
func TestExprProperties(t *testing.T) {
	mk := func(ci, cj, k int8) Expr {
		return NewTerm("i", int64(ci)).Add(NewTerm("j", int64(cj))).AddConst(int64(k))
	}
	commutes := func(ai, aj, ak, bi, bj, bk int8) bool {
		a, b := mk(ai, aj, ak), mk(bi, bj, bk)
		return a.Add(b).Equal(b.Add(a))
	}
	if err := quick.Check(commutes, nil); err != nil {
		t.Error(err)
	}
	selfZero := func(ai, aj, ak int8) bool {
		a := mk(ai, aj, ak)
		return a.Sub(a).IsZero()
	}
	if err := quick.Check(selfZero, nil); err != nil {
		t.Error(err)
	}
	evalLinear := func(ai, aj, ak int8, x, y int16) bool {
		a := mk(ai, aj, ak)
		env := map[string]int64{"i": int64(x), "j": int64(y)}
		v, ok := a.Eval(env)
		want := int64(ai)*int64(x) + int64(aj)*int64(y) + int64(ak)
		return ok && v == want
	}
	if err := quick.Check(evalLinear, nil); err != nil {
		t.Error(err)
	}
}

func TestLoopString(t *testing.T) {
	l := Loop{Index: "i", Lower: NewConst(1), Upper: NewVar("n")}
	if got := l.String(); got != "for i = 1 to n" {
		t.Fatalf("Loop.String = %q", got)
	}
	l.NoUpper = true
	if got := l.String(); got != "for i = 1 to ?" {
		t.Fatalf("unbounded Loop.String = %q", got)
	}
}

func TestRefString(t *testing.T) {
	r := Ref{Array: "a", Subscripts: []Expr{NewVar("i").AddConst(1), NewVar("j")}, Kind: Write}
	if got := r.String(); got != "a[i + 1][j] (write)" {
		t.Fatalf("Ref.String = %q", got)
	}
}

func TestNestCommonDepth(t *testing.T) {
	n := &Nest{Loops: []Loop{{Index: "i"}, {Index: "j"}}}
	a := Ref{Depth: 2}
	b := Ref{Depth: 1}
	if d := n.CommonDepth(a, b); d != 1 {
		t.Fatalf("CommonDepth = %d", d)
	}
	if got := len(n.LoopsFor(a)); got != 2 {
		t.Fatalf("LoopsFor deep ref = %d loops", got)
	}
	deep := Ref{Depth: 5}
	if got := len(n.LoopsFor(deep)); got != 2 {
		t.Fatalf("LoopsFor clamps to nest depth, got %d", got)
	}
}
