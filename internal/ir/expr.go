// Package ir defines the affine intermediate representation consumed by the
// dependence analyzer: linear integer expressions over loop-index and
// symbolic variables, loop nests with affine bounds, and array references.
//
// The representation mirrors the normalized form of Maydan, Hennessy & Lam
// (PLDI 1991, §2): loop bounds are integral linear functions of outer loop
// variables, subscripts are integral linear functions of the loop variables,
// and loop-invariant unknowns ("symbolic terms", §8) appear as additional
// variables without bounds.
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is an affine integer expression: Const + Σ Terms[v]·v.
// The zero value is the constant 0. Terms never stores zero coefficients.
type Expr struct {
	Const int64
	Terms map[string]int64
}

// NewConst returns the constant expression c.
func NewConst(c int64) Expr { return Expr{Const: c} }

// NewVar returns the expression 1·name.
func NewVar(name string) Expr {
	return Expr{Terms: map[string]int64{name: 1}}
}

// NewTerm returns the expression coeff·name.
func NewTerm(name string, coeff int64) Expr {
	if coeff == 0 {
		return Expr{}
	}
	return Expr{Terms: map[string]int64{name: coeff}}
}

// Clone returns a deep copy of e.
func (e Expr) Clone() Expr {
	out := Expr{Const: e.Const}
	if len(e.Terms) > 0 {
		out.Terms = make(map[string]int64, len(e.Terms))
		for v, c := range e.Terms {
			out.Terms[v] = c
		}
	}
	return out
}

// Coeff returns the coefficient of variable v (0 if absent).
func (e Expr) Coeff(v string) int64 { return e.Terms[v] }

// IsConst reports whether e has no variable terms.
func (e Expr) IsConst() bool { return len(e.Terms) == 0 }

// IsZero reports whether e is the constant 0.
func (e Expr) IsZero() bool { return e.Const == 0 && len(e.Terms) == 0 }

// Uses reports whether variable v appears in e with a nonzero coefficient.
func (e Expr) Uses(v string) bool { return e.Terms[v] != 0 }

// Vars returns the variables of e in sorted order.
func (e Expr) Vars() []string {
	if len(e.Terms) == 0 {
		return nil
	}
	vs := make([]string, 0, len(e.Terms))
	for v := range e.Terms {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}

// NumTerms returns the number of variables with nonzero coefficients.
func (e Expr) NumTerms() int { return len(e.Terms) }

func (e *Expr) setCoeff(v string, c int64) {
	if c == 0 {
		delete(e.Terms, v)
		return
	}
	if e.Terms == nil {
		e.Terms = make(map[string]int64)
	}
	e.Terms[v] = c
}

// Add returns e + f.
func (e Expr) Add(f Expr) Expr {
	out := e.Clone()
	out.Const += f.Const
	for v, c := range f.Terms {
		out.setCoeff(v, out.Terms[v]+c)
	}
	return out
}

// Sub returns e - f.
func (e Expr) Sub(f Expr) Expr {
	out := e.Clone()
	out.Const -= f.Const
	for v, c := range f.Terms {
		out.setCoeff(v, out.Terms[v]-c)
	}
	return out
}

// Neg returns -e.
func (e Expr) Neg() Expr { return Expr{}.Sub(e) }

// Scale returns k·e.
func (e Expr) Scale(k int64) Expr {
	if k == 0 {
		return Expr{}
	}
	out := Expr{Const: e.Const * k}
	for v, c := range e.Terms {
		out.setCoeff(v, c*k)
	}
	return out
}

// AddConst returns e + c.
func (e Expr) AddConst(c int64) Expr {
	out := e.Clone()
	out.Const += c
	return out
}

// Mul returns e·f if at least one operand is constant, and reports whether
// the product is affine. Products of two non-constant expressions are not
// representable and yield ok=false.
func (e Expr) Mul(f Expr) (Expr, bool) {
	switch {
	case e.IsConst():
		return f.Scale(e.Const), true
	case f.IsConst():
		return e.Scale(f.Const), true
	default:
		return Expr{}, false
	}
}

// Subst returns e with every occurrence of variable v replaced by repl.
func (e Expr) Subst(v string, repl Expr) Expr {
	c := e.Terms[v]
	if c == 0 {
		return e.Clone()
	}
	out := e.Clone()
	out.setCoeff(v, 0)
	return out.Add(repl.Scale(c))
}

// Rename returns e with variable old renamed to new. If new already appears
// in e the coefficients are combined. When old does not occur, e is returned
// as is (expressions are treated as immutable values throughout, so sharing
// the term map is safe and keeps the no-op case allocation-free — the common
// case for rectangular loop bounds renamed onto primed indices).
func (e Expr) Rename(old, new string) Expr {
	c := e.Terms[old]
	if c == 0 {
		return e
	}
	out := e.Clone()
	out.setCoeff(old, 0)
	out.setCoeff(new, out.Terms[new]+c)
	return out
}

// Eval evaluates e under the given variable assignment. It reports ok=false
// if a variable of e is missing from env.
func (e Expr) Eval(env map[string]int64) (int64, bool) {
	val := e.Const
	for v, c := range e.Terms {
		x, ok := env[v]
		if !ok {
			return 0, false
		}
		val += c * x
	}
	return val, true
}

// Equal reports whether e and f denote the same affine function.
func (e Expr) Equal(f Expr) bool {
	if e.Const != f.Const || len(e.Terms) != len(f.Terms) {
		return false
	}
	for v, c := range e.Terms {
		if f.Terms[v] != c {
			return false
		}
	}
	return true
}

// String renders e deterministically, e.g. "2*i - j + 10".
func (e Expr) String() string {
	var b strings.Builder
	first := true
	for _, v := range e.Vars() {
		c := e.Terms[v]
		writeTerm(&b, c, v, first)
		first = false
	}
	if e.Const != 0 || first {
		writeTerm(&b, e.Const, "", first)
	}
	return b.String()
}

func writeTerm(b *strings.Builder, c int64, v string, first bool) {
	switch {
	case first && c < 0:
		b.WriteString("-")
		c = -c
	case !first && c < 0:
		b.WriteString(" - ")
		c = -c
	case !first:
		b.WriteString(" + ")
	}
	if v == "" {
		fmt.Fprintf(b, "%d", c)
		return
	}
	if c != 1 {
		fmt.Fprintf(b, "%d*", c)
	}
	b.WriteString(v)
}
