package harness

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func runTable(t *testing.T, n int, paper bool) string {
	t.Helper()
	var buf bytes.Buffer
	h := New(&buf, paper)
	if err := h.Table(n); err != nil {
		t.Fatalf("table %d: %v", n, err)
	}
	return buf.String()
}

func TestTable1MatchesPaperTotals(t *testing.T) {
	out := runTable(t, 1, false)
	for _, want := range []string{
		"TOTAL     59412     11859  384  5176      323             6              174",
		"0 unknown",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	out := runTable(t, 2, false)
	if !strings.Contains(out, "6063") || !strings.Contains(out, "5679") {
		t.Fatalf("table 2 totals wrong:\n%s", out)
	}
	// TOT row: simple% must exceed improved% in both table halves
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "TOT") {
			f := strings.Fields(line)
			if len(f) < 7 {
				t.Fatalf("TOT row malformed: %q", line)
			}
			if pctVal(t, f[2]) < pctVal(t, f[3]) || pctVal(t, f[5]) < pctVal(t, f[6]) {
				t.Fatalf("simple%% must be ≥ improved%%: %q", line)
			}
		}
	}
}

func pctVal(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	var v float64
	if _, err := fmt.Sscan(s, &v); err != nil {
		t.Fatalf("bad percentage %q: %v", s, err)
	}
	return v
}

func TestTable3MemoHeadline(t *testing.T) {
	out := runTable(t, 3, false)
	if !strings.Contains(out, "memoization reduces the total from 5679 to 332 tests") {
		t.Fatalf("headline missing:\n%s", out)
	}
}

func TestTables4And5Reduction(t *testing.T) {
	out4 := runTable(t, 4, false)
	out5 := runTable(t, 5, false)
	t4 := totalDirTests(t, out4)
	t5 := totalDirTests(t, out5)
	if t5*3 > t4 {
		t.Fatalf("pruning must cut direction tests by ≥3x: %d vs %d", t4, t5)
	}
	if t4 < 5000 || t4 > 20000 {
		t.Fatalf("unpruned direction tests = %d, want the paper's order (≈12,500)", t4)
	}
	if t5 > 2000 {
		t.Fatalf("pruned direction tests = %d, want the paper's order (≈900)", t5)
	}
}

func TestTable7AddsSymbolicTests(t *testing.T) {
	t5 := totalDirTests(t, runTable(t, 5, false))
	t7 := totalDirTests(t, runTable(t, 7, false))
	if t7 <= t5 {
		t.Fatalf("symbolic cases must add tests: %d vs %d", t7, t5)
	}
	if t7-t5 > 500 {
		t.Fatalf("symbolic delta = %d, paper's is ≈160", t7-t5)
	}
}

func totalDirTests(t *testing.T, out string) int {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "total direction-vector tests:") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(strings.TrimPrefix(line, "total direction-vector tests:")), "%d", &n); err != nil {
				t.Fatal(err)
			}
			return n
		}
	}
	t.Fatalf("no total line in:\n%s", out)
	return 0
}

func TestTable6OverheadSmall(t *testing.T) {
	out := runTable(t, 6, false)
	if !strings.Contains(out, "TOTAL") || !strings.Contains(out, "compile model") {
		t.Fatalf("table 6 malformed:\n%s", out)
	}
}

func TestFigure1(t *testing.T) {
	var buf bytes.Buffer
	h := New(&buf, false)
	if err := h.Figure(1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"t1 -> t3 [-4]",
		"n0 -> t1 [-1]",
		"t3 -> n0 [4]",
		"system independent",
		"digraph residue",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 1 missing %q:\n%s", want, out)
		}
	}
	if err := h.Figure(2); err == nil {
		t.Error("figure 2 must not exist")
	}
}

func TestCompareSection7(t *testing.T) {
	var buf bytes.Buffer
	h := New(&buf, false)
	if err := h.Compare(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"independent pairs (exact): 480",
		"missing",
		"soundness: baseline never refuted",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compare missing %q:\n%s", want, out)
		}
	}
}

func TestBadTableNumber(t *testing.T) {
	h := New(&bytes.Buffer{}, false)
	if err := h.Table(0); err == nil {
		t.Error("table 0 must error")
	}
	if err := h.Table(8); err == nil {
		t.Error("table 8 must error")
	}
}

func TestSharedTable(t *testing.T) {
	var buf bytes.Buffer
	h := New(&buf, false)
	if err := h.SharedTable(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var per, shared, sym int
	if _, err := fmt.Sscanf(grab(t, out, "per-program tables:"), "%d", &per); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscanf(grab(t, out, "one shared table:"), "%d", &shared); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscanf(grab(t, out, "symmetric matching:"), "%d", &sym); err != nil {
		t.Fatal(err)
	}
	if per != 332 {
		t.Fatalf("per-program total = %d, want 332", per)
	}
	if shared >= per || sym >= shared {
		t.Fatalf("sharing must strictly help: %d > %d > %d expected", per, shared, sym)
	}
}

// grab returns the remainder of the line containing marker.
func grab(t *testing.T, out, marker string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if i := strings.Index(line, marker); i >= 0 {
			return strings.TrimSpace(line[i+len(marker):])
		}
	}
	t.Fatalf("marker %q not found in:\n%s", marker, out)
	return ""
}

func TestPaperAppendix(t *testing.T) {
	out := runTable(t, 1, true)
	if !strings.Contains(out, "paper Table 1:") {
		t.Fatalf("paper rows missing:\n%s", out)
	}
}
