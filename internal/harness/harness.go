// Package harness regenerates the paper's evaluation: Tables 1–7, Figure 1,
// and the §7 exact-vs-inexact comparison, on the synthetic PERFECT Club
// workload. Each table runs the real pipeline with the configuration the
// paper used for that table; the numbers are measured, not replayed.
package harness

import (
	"fmt"
	"io"
	"time"

	"exactdep/internal/baseline"
	"exactdep/internal/core"
	"exactdep/internal/dtest"
	"exactdep/internal/refs"
	"exactdep/internal/system"
	"exactdep/internal/tablefmt"
	"exactdep/internal/workload"
)

// modelLinesPerSecond is the deterministic stand-in for the paper's
// "f77 -O3" scalar-compilation cost (Table 6). The paper's point is the
// ratio — exact dependence testing adds a few percent to a full optimizing
// compile — so the model scales the paper's per-program compile times to a
// modern-hardware line rate.
const modelLinesPerSecond = 3000.0

// Harness drives the experiments.
type Harness struct {
	w     io.Writer
	paper bool
	// Timing adds wall-clock columns to CostReport (per-stage cascade time
	// from core.Options.TimeCascade). On by default for the CLI; the golden
	// test turns it off so the report stays deterministic.
	Timing bool
}

// New returns a harness writing to w. With paper=true the paper's reported
// rows are appended after each measured table.
func New(w io.Writer, paper bool) *Harness { return &Harness{w: w, paper: paper, Timing: true} }

// Table regenerates table n (1–7).
func (h *Harness) Table(n int) error {
	switch n {
	case 1:
		return h.table1()
	case 2:
		return h.table2()
	case 3:
		return h.table3()
	case 4:
		return h.table4()
	case 5:
		return h.table5()
	case 6:
		return h.table6()
	case 7:
		return h.table7()
	default:
		return fmt.Errorf("no table %d (the paper has tables 1-7)", n)
	}
}

// Figure regenerates figure n (only 1 exists).
func (h *Harness) Figure(n int) error {
	if n != 1 {
		return fmt.Errorf("no figure %d (the paper has figure 1)", n)
	}
	return h.figure1()
}

// kindCols extracts the four per-test columns.
func kindCols(get func(dtest.Kind) int) [4]int {
	return [4]int{
		get(dtest.KindSVPC),
		get(dtest.KindAcyclic),
		get(dtest.KindLoopResidue),
		get(dtest.KindFourierMotzkin),
	}
}

func (h *Harness) table1() error {
	tb := tablefmt.New("Table 1: Number of times each test called for each program",
		"Program", "#Lines", "Constant", "GCD", "SVPC", "Acyclic", "Loop Residue", "Fourier-Motzkin")
	var tot core.Analyzer
	var totLines, totConst, totGCD int
	var totKinds [4]int
	for _, s := range workload.Programs() {
		a, err := workload.Analyze(s, core.Options{}, false)
		if err != nil {
			return err
		}
		k := kindCols(a.Stats.TestCount)
		tb.AddRow(s.Name, s.Lines, a.Stats.Constant, a.Stats.GCDIndependent, k[0], k[1], k[2], k[3])
		totLines += s.Lines
		totConst += a.Stats.Constant
		totGCD += a.Stats.GCDIndependent
		for i := range totKinds {
			totKinds[i] += k[i]
		}
		tot.Stats.Add(&a.Stats)
	}
	tb.AddSeparator()
	tb.AddRow("TOTAL", totLines, totConst, totGCD, totKinds[0], totKinds[1], totKinds[2], totKinds[3])
	fmt.Fprintln(h.w, tb)
	fmt.Fprintf(h.w, "exactness: %d of %d tested pairs decided exactly (%d unknown)\n\n",
		tot.Stats.Independent+tot.Stats.Dependent, tot.Stats.Pairs, tot.Stats.Unknown)
	if h.paper {
		fmt.Fprintln(h.w, paperTable1)
	}
	return nil
}

func (h *Harness) table2() error {
	tb := tablefmt.New("Table 2: Percentage of unique cases for memoization",
		"Program", "w/o bounds Total", "Simple%", "Improved%", "w/ bounds Total", "Simple%", "Improved%")
	type agg struct{ eqTot, eqS, eqI, fullTot, fullS, fullI int }
	var sum agg
	for _, s := range workload.Programs() {
		simple, err := workload.Analyze(s, core.Options{Memoize: true}, false)
		if err != nil {
			return err
		}
		improved, err := workload.Analyze(s, core.Options{Memoize: true, ImprovedMemo: true}, false)
		if err != nil {
			return err
		}
		eqTotal := simple.Stats.Pairs - simple.Stats.Constant // every tested case consults the GCD table
		fullTotal := eqTotal - simple.Stats.GCDIndependent    // cases that reach the exact tests
		tb.AddRow(s.Name, eqTotal,
			pct(simple.Stats.UniqueEq, eqTotal), pct(improved.Stats.UniqueEq, eqTotal),
			fullTotal,
			pct(simple.Stats.UniqueFull, fullTotal), pct(improved.Stats.UniqueFull, fullTotal))
		sum.eqTot += eqTotal
		sum.eqS += simple.Stats.UniqueEq
		sum.eqI += improved.Stats.UniqueEq
		sum.fullTot += fullTotal
		sum.fullS += simple.Stats.UniqueFull
		sum.fullI += improved.Stats.UniqueFull
	}
	tb.AddSeparator()
	tb.AddRow("TOT", sum.eqTot, pct(sum.eqS, sum.eqTot), pct(sum.eqI, sum.eqTot),
		sum.fullTot, pct(sum.fullS, sum.fullTot), pct(sum.fullI, sum.fullTot))
	fmt.Fprintln(h.w, tb)
	if h.paper {
		fmt.Fprintln(h.w, paperTable2)
	}
	return nil
}

func pct(part, whole int) string {
	if whole == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}

func (h *Harness) table3() error {
	tb := tablefmt.New("Table 3: Number of times each test was called looking only at unique cases",
		"Program", "#Lines", "Total Cases", "SVPC", "Acyclic", "Loop Residue", "Fourier-Motzkin")
	var totCases int
	var totKinds [4]int
	for _, s := range workload.Programs() {
		plain, err := workload.Analyze(s, core.Options{}, false)
		if err != nil {
			return err
		}
		memod, err := workload.Analyze(s, core.Options{Memoize: true, ImprovedMemo: true}, false)
		if err != nil {
			return err
		}
		k := kindCols(memod.Stats.TestCount)
		cases := plain.Stats.TotalTests()
		tb.AddRow(s.Name, s.Lines, cases, k[0], k[1], k[2], k[3])
		totCases += cases
		for i := range totKinds {
			totKinds[i] += k[i]
		}
	}
	tb.AddSeparator()
	tb.AddRow("TOTAL", 59412, totCases, totKinds[0], totKinds[1], totKinds[2], totKinds[3])
	fmt.Fprintln(h.w, tb)
	memoTotal := totKinds[0] + totKinds[1] + totKinds[2] + totKinds[3]
	fmt.Fprintf(h.w, "memoization reduces the total from %d to %d tests\n\n", totCases, memoTotal)
	if h.paper {
		fmt.Fprintln(h.w, paperTable3)
	}
	return nil
}

// dirTable runs the suite with direction vectors under the given options and
// prints the per-kind direction-test counts.
func (h *Harness) dirTable(title string, opts core.Options, symbolic bool, paperRef string) error {
	tb := tablefmt.New(title,
		"Program", "#Lines", "SVPC", "Acyclic", "Loop Residue", "Fourier-Motzkin")
	var totKinds [4]int
	for _, s := range workload.Programs() {
		a, err := workload.Analyze(s, opts, symbolic)
		if err != nil {
			return err
		}
		k := kindCols(a.Stats.DirTestCount)
		tb.AddRow(s.Name, s.Lines, k[0], k[1], k[2], k[3])
		for i := range totKinds {
			totKinds[i] += k[i]
		}
	}
	tb.AddSeparator()
	tb.AddRow("TOTAL", 59412, totKinds[0], totKinds[1], totKinds[2], totKinds[3])
	fmt.Fprintln(h.w, tb)
	fmt.Fprintf(h.w, "total direction-vector tests: %d\n\n",
		totKinds[0]+totKinds[1]+totKinds[2]+totKinds[3])
	if h.paper {
		fmt.Fprintln(h.w, paperRef)
	}
	return nil
}

func (h *Harness) table4() error {
	return h.dirTable(
		"Table 4: Tests called on unique cases computing direction vectors (no pruning)",
		core.Options{Memoize: true, ImprovedMemo: true, DirectionVectors: true},
		false, paperTable4)
}

func (h *Harness) table5() error {
	return h.dirTable(
		"Table 5: Direction vectors with distance-vector pruning and unused-variable pruning",
		core.Options{Memoize: true, ImprovedMemo: true, DirectionVectors: true,
			PruneUnused: true, PruneDistance: true},
		false, paperTable5)
}

func (h *Harness) table7() error {
	return h.dirTable(
		"Table 7: Direction vectors with symbolic constraints",
		core.Options{Memoize: true, ImprovedMemo: true, DirectionVectors: true,
			PruneUnused: true, PruneDistance: true},
		true, paperTable7)
}

func (h *Harness) table6() error {
	tb := tablefmt.New("Table 6: Total cost of dependence testing",
		"Program", "Dep. Test Cost (s)", "Scalar compile model (s)", "Overhead")
	opts := core.Options{Memoize: true, ImprovedMemo: true, DirectionVectors: true,
		PruneUnused: true, PruneDistance: true}
	var totDep, totCompile float64
	for _, s := range workload.Programs() {
		// Like the paper, exclude the setup (parsing, lowering, pair
		// extraction) and time only the dependence analysis itself.
		cands, err := workload.Candidates(s, false)
		if err != nil {
			return err
		}
		a := core.New(opts)
		start := time.Now()
		for _, c := range cands {
			if _, err := a.AnalyzeCandidate(c); err != nil {
				return err
			}
		}
		dep := time.Since(start).Seconds()
		compile := float64(s.Lines) / modelLinesPerSecond
		tb.AddRow(s.Name, fmt.Sprintf("%.3f", dep), fmt.Sprintf("%.3f", compile),
			pctF(dep, compile))
		totDep += dep
		totCompile += compile
	}
	tb.AddSeparator()
	tb.AddRow("TOTAL", fmt.Sprintf("%.3f", totDep), fmt.Sprintf("%.3f", totCompile),
		pctF(totDep, totCompile))
	fmt.Fprintln(h.w, tb)
	fmt.Fprintf(h.w, "compile model: %v lines/second (documented substitution for the paper's f77 -O3 column)\n\n",
		modelLinesPerSecond)
	if h.paper {
		fmt.Fprintln(h.w, paperTable6)
	}
	return nil
}

func pctF(part, whole float64) string {
	if whole == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*part/whole)
}

// figure1 reproduces §3.4's constraint graph: t1 ≥ 1, t3 ≤ 4, and
// 2t1 ≤ 2t3 - 7, whose integer tightening is t1 ≤ t3 - 4. The cycle
// t1→t3→n0→t1 has value -4+4-1 = -1 < 0, proving independence.
func (h *Harness) figure1() error {
	ts := &system.TSystem{
		NumT: 3,
		Cons: []system.Constraint{
			{Coef: []int64{-1, 0, 0}, C: -1}, // t1 ≥ 1
			{Coef: []int64{0, 0, 1}, C: 4},   // t3 ≤ 4
			{Coef: []int64{2, 0, -2}, C: -7}, // 2t1 - 2t3 ≤ -7
		},
	}
	// Normalize the scaled constraint the way the pipeline does.
	for i, c := range ts.Cons {
		n, ok := c.Normalize()
		if !ok {
			return fmt.Errorf("figure 1 constraint %d infeasible at normalization", i)
		}
		ts.Cons[i] = n
	}
	st := dtest.NewState(ts)
	g, ok := dtest.BuildResidueGraph(st)
	if !ok {
		return fmt.Errorf("figure 1 system is not a difference system")
	}
	fmt.Fprintln(h.w, "Figure 1: Example graph for Loop Residue Test")
	fmt.Fprintln(h.w, "constraints: t1 >= 1, t3 <= 4, 2t1 <= 2t3 - 7 (tightened to t1 <= t3 - 4)")
	fmt.Fprint(h.w, g)
	r, applicable := dtest.LoopResidue(st)
	if !applicable {
		return fmt.Errorf("loop residue unexpectedly inapplicable")
	}
	fmt.Fprintf(h.w, "cycle t1 -> t3 -> n0 -> t1 has value -4 + 4 - 1 = -1 < 0: system %s\n\n", r.Outcome)
	fmt.Fprintln(h.w, "graphviz form:")
	fmt.Fprintln(h.w, g.Dot())
	return nil
}

// SharedTable runs the paper's §5 closing suggestion: "if there is
// similarity across programs, one could use a set of benchmarks to set up a
// standard table which would be used by all programs". One analyzer's memo
// tables serve the whole suite; the unique-case total drops below the sum
// of per-program uniques.
func (h *Harness) SharedTable() error {
	perProgram := 0
	for _, s := range workload.Programs() {
		a, err := workload.Analyze(s, core.Options{Memoize: true, ImprovedMemo: true}, false)
		if err != nil {
			return err
		}
		perProgram += a.Stats.TotalTests()
	}
	shared := core.New(core.Options{Memoize: true, ImprovedMemo: true})
	for _, s := range workload.Programs() {
		if err := workload.AnalyzeInto(shared, s, false); err != nil {
			return err
		}
	}
	symmetric := core.New(core.Options{Memoize: true, ImprovedMemo: true, SymmetricMemo: true})
	for _, s := range workload.Programs() {
		if err := workload.AnalyzeInto(symmetric, s, false); err != nil {
			return err
		}
	}
	fmt.Fprintln(h.w, "Standard table across compilations (paper §5's suggestion)")
	fmt.Fprintf(h.w, "tests with per-program tables:            %d\n", perProgram)
	fmt.Fprintf(h.w, "tests with one shared table:              %d\n", shared.Stats.TotalTests())
	fmt.Fprintf(h.w, "tests with shared + symmetric matching:   %d\n", symmetric.Stats.TotalTests())
	fmt.Fprintln(h.w)
	return nil
}

// Compare runs the §7 accuracy comparison: the exact pipeline against the
// simple GCD + Banerjee baseline, first on plain independence, then on
// direction vectors.
func (h *Harness) Compare() error {
	var exactIndep, baseIndep, tested int
	var exactVectors, baseVectors int
	var disagree int
	for _, s := range workload.Programs() {
		cands, err := workload.Candidates(s, false)
		if err != nil {
			return err
		}
		a := core.New(core.Options{DirectionVectors: true, PruneUnused: true, PruneDistance: true})
		for _, c := range cands {
			if c.Class != refs.NeedsTest {
				continue
			}
			tested++
			res, err := a.AnalyzeCandidate(c)
			if err != nil {
				return err
			}
			prob, err := system.Build(c.Pair)
			if err != nil {
				return err
			}
			baseSaysDep := baseline.SimpleGCD(prob) && baseline.Banerjee(prob)
			if res.Outcome == dtest.Independent {
				exactIndep++
				if !baseSaysDep {
					baseIndep++
				}
			} else if !baseSaysDep {
				// The baseline is sound: it must never refute a pair the
				// exact analyzer proves dependent.
				disagree++
			}
			exactVectors += len(res.Vectors)
			baseVectors += len(baseline.Vectors(prob, true))
		}
	}
	fmt.Fprintln(h.w, "Section 7: exact vs inexact (simple GCD + Banerjee bounds)")
	fmt.Fprintf(h.w, "tested pairs: %d\n", tested)
	fmt.Fprintf(h.w, "independent pairs (exact): %d\n", exactIndep)
	fmt.Fprintf(h.w, "independent pairs found by baseline: %d (missing %s)\n",
		baseIndep, pct(exactIndep-baseIndep, exactIndep))
	fmt.Fprintf(h.w, "direction vectors (exact): %d\n", exactVectors)
	extra := "-"
	if exactVectors > 0 {
		extra = fmt.Sprintf("%.0f%% more", 100*float64(baseVectors-exactVectors)/float64(exactVectors))
	}
	fmt.Fprintf(h.w, "direction vectors (baseline): %d (%s)\n", baseVectors, extra)
	if disagree > 0 {
		return fmt.Errorf("baseline refuted %d pairs the exact analyzer proved dependent (soundness bug)", disagree)
	}
	fmt.Fprintf(h.w, "soundness: baseline never refuted an exactly-dependent pair\n")
	if h.paper {
		fmt.Fprintln(h.w, "\npaper: baseline found 415 of 482 independent pairs (missing 16%);")
		fmt.Fprintln(h.w, "paper: baseline reported 8,314 direction vectors vs the exact 6,828 (22% more)")
	}
	fmt.Fprintln(h.w)
	return nil
}
