package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden experiment output")

// TestGoldenExperiments locks the deterministic experiment outputs (every
// table except the timing one, the figure, the comparison, the shared-
// table experiment, and the cost report with timing disabled) against a
// golden file, so any change to the analyzer, the workload, or the harness
// that shifts a single count is surfaced. Regenerate deliberately with:
//
//	go test ./internal/harness -run Golden -update-golden
func TestGoldenExperiments(t *testing.T) {
	if raceEnabled {
		t.Skip("harness is serial; the instrumented sweep exceeds the race run's timeout without adding coverage")
	}
	var buf bytes.Buffer
	h := New(&buf, false)
	h.Timing = false // keep the cost report deterministic (probe counts only)
	for _, n := range []int{1, 2, 3, 4, 5, 7} {
		if err := h.Table(n); err != nil {
			t.Fatalf("table %d: %v", n, err)
		}
	}
	if err := h.Figure(1); err != nil {
		t.Fatal(err)
	}
	if err := h.Compare(); err != nil {
		t.Fatal(err)
	}
	if err := h.SharedTable(); err != nil {
		t.Fatal(err)
	}
	if err := h.CostReport(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "experiments.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten (%d bytes)", buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden): %v", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Fatalf("experiment output drifted from golden file.\n"+
			"If the change is intentional, regenerate with -update-golden.\n"+
			"--- got ---\n%s", diffHint(want, buf.Bytes()))
	}
}

// diffHint returns the first differing line pair for quick diagnosis.
func diffHint(want, got []byte) string {
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	for i := 0; i < len(w) && i < len(g); i++ {
		if !bytes.Equal(w[i], g[i]) {
			return "line " + itoa(i+1) + ":\n  want: " + string(w[i]) + "\n  got:  " + string(g[i])
		}
	}
	return "length differs: want " + itoa(len(w)) + " lines, got " + itoa(len(g))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
