//go:build race

package harness

// raceEnabled reports whether the race detector is compiled in. The golden
// experiment sweep skips under it: the harness is strictly serial (no
// goroutines to race), and the ~10x instrumentation slowdown pushes the
// sweep past the race run's timeout for no added coverage. The plain test
// run still pins it.
const raceEnabled = true
