package harness

// The paper's reported tables, reproduced verbatim for side-by-side reading
// with -paper and for the EXPERIMENTS.md comparison. (Maydan, Hennessy &
// Lam, PLDI 1991, Tables 1–7.)

const paperTable1 = `paper Table 1:
Program  #Lines  Constant   GCD  SVPC  Acyclic  Loop Residue  Fourier-Motzkin
AP        6,104       229    91   613        0             0                0
CS       18,520        50     0   127       15             0                0
LG        2,327     6,961     0    73        0             0                0
LW        1,237        54     0    34       43             0                0
MT        3,785        49     0   326        0             0                0
NA        3,976        45     0   679      202             1                2
OC        2,739         2     7    36        0             0                0
SD        7,607       949     0   526       17             5               12
SM        2,759     1,004    98   264        0             0                0
SR        3,970     1,679     0 1,290        0             0                0
TF        2,020       801     6   826        0             0                0
TI          484         0     0     4       42             0                0
WS        3,884        36   182   378        4             0              160
TOTAL    59,412    11,859   384 5,176      323             6              174`

const paperTable2 = `paper Table 2 (percentage of unique cases):
Program  w/o bounds Total  Simple  Improved  w/ bounds Total  Simple  Improved
AP                    704    7.0%      4.4%              613    6.4%      4.4%
CS                    142    7.7%      7.0%              142   16.2%     14.1%
LG                     73   32.9%     13.7%               73   47.9%     31.5%
LW                     77   11.7%     10.4%               77   23.4%     22.1%
MT                    326    3.4%      2.5%              326    6.4%      4.3%
NA                    884    4.2%      3.4%              884    7.9%      6.9%
OC                     43   27.9%     20.9%               36   19.4%     13.9%
SD                    560    6.6%      6.1%              560    9.5%      8.8%
SM                    362    5.5%      3.6%              264    4.9%      3.0%
SR                  1,290    1.1%      0.9%            1,290    1.6%      1.1%
TF                    832    2.2%      1.7%              826    2.9%      2.4%
TI                     46   30.4%     19.6%               46   34.8%     23.9%
WS                    724   11.9%     11.0%              542   14.2%     11.6%
TOT                 6,063    5.7%      4.4%            5,679    7.3%      5.8%`

const paperTable3 = `paper Table 3 (unique cases only):
Program  Total Cases  SVPC  Acyclic  Loop Residue  Fourier-Motzkin
AP               613    27        0             0                0
CS               142    14        6             0                0
LG                73    23        0             0                0
LW                77    15        2             0                0
MT               326    14        0             0                0
NA               884    48       11             1                1
OC                36     5        0             0                0
SD               560    36        6             3                4
SM               264     8        0             0                0
SR             1,290    14        0             0                0
TF               826    20        0             0                0
TI                46     3        8             0                0
WS               542    35        1             0               27
TOTAL          5,679   262       34             4               32
(memoization reduces the total from 5,679 to 332 tests)`

const paperTable4 = `paper Table 4 (direction vectors, unique cases, no pruning):
Program   SVPC  Acyclic  Loop Residue  Fourier-Motzkin
AP         363      104           100                0
CS         127       48            34                0
LG       1,067    1,138         4,619                0
LW         132       73            59                0
MT         120       32            16                0
NA         295      124           172               23
OC          37        8             4                0
SD         309      106           120               28
SM         355      110           169                0
SR         130       30            18                0
TF         169       16            11                0
TI         780      267           703                0
WS         303      105            52              106
TOTAL    4,187    2,161         6,077              157   (≈12,500 total)`

const paperTable5 = `paper Table 5 (direction vectors with unused-variable and distance pruning):
Program  SVPC  Acyclic  Loop Residue  Fourier-Motzkin
AP         27        6             6                0
CS         14       16            14                0
LG         44        6             6                0
LW         15       12             5                0
MT         14        0             0                0
NA         48       59           118                7
OC          5        0             0                0
SD         54       20            55               28
SM          8        0             0                0
SR         14        0             0                0
TF         23        0             0                0
TI          3       38            72                0
WS         35       15             0              106
TOTAL     304      172           276              141   (≈900 total)`

const paperTable6 = `paper Table 6 (dependence testing cost, seconds on a MIPS R2000):
Program  Dep. Test Cost  f77 -O3
AP                  2.2    151.4
CS                    *    485.0
LG                  4.0     65.4
LW                  1.1     33.0
MT                  1.0     45.0
NA                  3.6    136.3
OC                  0.3     38.2
SD                  2.7     62.1
SM                  3.5    102.5
SR                  3.8    118.5
TF                  2.6    116.6
TI                  0.7     12.6
WS                  3.6    110.0
(* too small to measure; average overhead about 3%)`

const paperTable7 = `paper Table 7 (direction vectors with symbolic constraints):
Program  SVPC  Acyclic  Loop Residue  Fourier-Motzkin
AP         33       22             6                0
CS         20       24            19                0
LG         48        6             6                0
LW         15       12             5                0
MT         19        0             0                0
NA         55      149           101                7
OC          5        1             0                0
SD         54       20            55               28
SM          8        0             0                0
SR         21        1             2                0
TF         43        0             0                0
TI          3       38            72                0
WS         35       19             0              106
TOTAL     359      292           266              141   (≈1,060 total)`
