package harness

import (
	"context"
	"fmt"

	"exactdep/internal/core"
	"exactdep/internal/corpus"
	"exactdep/internal/dtest"
	"exactdep/internal/stats"
	"exactdep/internal/tablefmt"
	"exactdep/internal/workload"
)

// costKinds lists the cascade stages in the paper's cost order.
var costKinds = [4]dtest.Kind{
	dtest.KindSVPC, dtest.KindAcyclic, dtest.KindLoopResidue, dtest.KindFourierMotzkin,
}

// CostReport renders the cost model behind the paper's Table 6: the cascade
// is cheap because tests run in order of cost and each problem pays only for
// the applicability probes it consults (§3, §7). The per-program table
// counts how many problems consulted each stage — base tests and
// direction-vector refinement alike, under the production configuration —
// and prices the cascade in probe units (each probe costs the stage's cost
// rank). The per-test summary adds decided counts and, with Timing, the
// measured wall time per stage.
//
// Unlike Table 6's wall-clock column this report is deterministic (with
// Timing off): the probe counts depend only on the problems, not the
// hardware, which is what lets the golden test pin it.
func (h *Harness) CostReport() error {
	opts := core.Options{Memoize: true, ImprovedMemo: true, DirectionVectors: true,
		PruneUnused: true, PruneDistance: true, TimeCascade: h.Timing}

	cols := []string{"Program", "SVPC", "Acyclic", "Loop Residue", "Fourier-Motzkin", "Cost units"}
	if h.Timing {
		cols = append(cols, "Cascade (ms)")
	}
	tb := tablefmt.New("Table 6 (cost model): cascade probes consulted per program", cols...)

	var tot stats.Counters
	for _, s := range workload.Programs() {
		a, err := workload.Run(s, workload.RunnerOptions{Core: opts})
		if err != nil {
			return err
		}
		tb.AddRow(h.costRow(s.Name, &a.Stats)...)
		tot.Add(&a.Stats)
	}
	tb.AddSeparator()
	tb.AddRow(h.costRow("TOTAL", &tot)...)
	fmt.Fprintln(h.w, tb)

	sumCols := []string{"Test", "Rank", "Consulted", "Decided", "Decided%", "Cost units"}
	if h.Timing {
		sumCols = append(sumCols, "Time (ms)")
	}
	sum := tablefmt.New("Per-test totals (cost-ordered cascade)", sumCols...)
	for _, k := range costKinds {
		row := []any{k.String(), k.CostRank(), tot.ConsultedCount(k), tot.DecidedCount(k),
			pct(tot.DecidedCount(k), tot.ConsultedCount(k)), tot.CostUnits(k)}
		if h.Timing {
			row = append(row, fmt.Sprintf("%.3f", tot.StageTime(k).Seconds()*1e3))
		}
		sum.AddRow(row...)
	}
	fmt.Fprintln(h.w, sum)
	fmt.Fprintf(h.w, "cost units: sum over stages of consulted x rank — each problem pays only for the probes it consults (paper §3)\n")

	// The memo hierarchy is what makes the probes above the exception: most
	// candidates are answered by a cache layer before any stage is consulted.
	// L1 is the per-worker direct-mapped cache, L2 the shared table; their
	// hits sum to the with-bounds hit total.
	fmt.Fprintf(h.w, "memo hierarchy: %d lookups, %d hits (%s) — L1 %d/%d (%s), L2 %d/%d (%s)\n",
		tot.FullLookups, tot.FullHits, pct(tot.FullHits, tot.FullLookups),
		tot.L1Hits, tot.L1Lookups, pct(tot.L1Hits, tot.L1Lookups),
		tot.L2Hits, tot.L2Lookups, pct(tot.L2Hits, tot.L2Lookups))
	// The direction memo answers refinement subproblems (PR 5): cascade
	// invocations of the direction-vector walk shared across pairs and trees.
	fmt.Fprintf(h.w, "refinement memo: %d lookups, %d hits (%s), %d unique subproblems\n",
		tot.DirLookups, tot.DirHits, pct(tot.DirHits, tot.DirLookups), tot.UniqueDir)
	// Trail accounting for the clone-free walk: pushes and pops balance once
	// every walk completes; max depth is the deepest direction stack seen.
	fmt.Fprintf(h.w, "refinement trail: %d pushes, %d pops, max depth %d\n",
		tot.TrailPushes, tot.TrailPops, tot.TrailMaxDepth)
	// Fourier–Motzkin redundancy elimination: duplicate derived rows dropped
	// or tightened in place before the next elimination round.
	fmt.Fprintf(h.w, "fm redundancy: %d constraints deduped, %d tightened\n",
		tot.FMDeduped, tot.FMTightened)
	// Degradation accounting (zero for this unbudgeted run, but pinned by the
	// golden file so the counters stay wired): budget trips force sound Maybe
	// verdicts, cancelled pairs never reached the cascade at all.
	fmt.Fprintf(h.w, "degradation: %d maybe verdicts, %d budget trips, %d pairs cancelled\n",
		tot.Maybe, tot.TotalBudgetTrips(), tot.CancelledPairs)
	// Corpus pipeline: the incremental layer over the same options — a cold
	// run solves every suite unit into a verdict store, the warm re-run
	// serves them all back. The unit/pair counters are deterministic at any
	// worker count (golden-pinned); per-stage timing of the pipelined front
	// end appears with Timing, like the cascade columns above.
	src, err := workload.SuiteSource(false)
	if err != nil {
		return err
	}
	d := corpus.NewDriver(opts, 0)
	d.TimeStages = h.Timing
	if err := d.SetStore(corpus.NewStore(opts)); err != nil {
		return err
	}
	if err := d.Run(context.Background(), src, nil); err != nil {
		return err
	}
	cold := d.Stats
	if err := d.Run(context.Background(), src, nil); err != nil {
		return err
	}
	warm := d.Stats
	fmt.Fprintf(h.w, "corpus pipeline: cold %d units solved (%d pairs), warm %d units reused (%d pairs served)\n\n",
		cold.UnitsSolved, cold.PairsSolved, warm.UnitsReused, warm.PairsServed)
	if h.Timing {
		for _, run := range []struct {
			name string
			st   corpus.StageTimes
		}{{"cold", cold.Stage}, {"warm", warm.Stage}} {
			fmt.Fprintf(h.w, "  %s stages: load %s  fingerprint %s  probe %s  solve %s  emit %s  wall %s\n",
				run.name, run.st.Load, run.st.Fingerprint, run.st.Probe, run.st.Solve, run.st.Emit, run.st.Wall)
		}
		fmt.Fprintln(h.w)
	}
	return nil
}

// costRow builds one per-program row of the cost table.
func (h *Harness) costRow(name string, c *stats.Counters) []any {
	row := []any{name}
	for _, k := range costKinds {
		row = append(row, c.ConsultedCount(k))
	}
	row = append(row, c.TotalCostUnits())
	if h.Timing {
		var total float64
		for _, k := range costKinds {
			total += c.StageTime(k).Seconds()
		}
		row = append(row, fmt.Sprintf("%.3f", total*1e3))
	}
	return row
}
