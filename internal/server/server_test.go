package server

// Service-layer tests: end-to-end byte identity with the batch path,
// warm-tier reuse across requests and restarts, admission degradation and
// shedding under a held executor, graceful shutdown draining, and the
// client-error surface. Everything runs over real HTTP on a loopback port
// and is asserted against /v1/statsz counters; the suite must be race-clean.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"exactdep/internal/core"
	"exactdep/internal/corpus"
	"exactdep/internal/dtest"
	"exactdep/internal/wire"
	"exactdep/internal/workload"
)

// testOptions is the base configuration every test server runs: the full
// result surface with per-request memoization — depserve's own defaults.
func testOptions() core.Options {
	return core.Options{
		DirectionVectors: true,
		PruneUnused:      true,
		PruneDistance:    true,
		Memoize:          true,
		ImprovedMemo:     true,
	}
}

// startServer boots a server on a free loopback port and tears it down with
// the test.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, "http://" + addr
}

// suiteUnits returns the workload suite as wire unit sources.
func suiteUnits(t *testing.T) []wire.UnitSource {
	t.Helper()
	var units []wire.UnitSource
	for _, spec := range workload.Programs() {
		units = append(units, wire.UnitSource{Name: spec.Name, Source: workload.Source(spec, false)})
	}
	return units
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func analyze(t *testing.T, base string, req wire.AnalyzeRequest) (*http.Response, *wire.AnalyzeResponse) {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/analyze", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/analyze: %d: %s", resp.StatusCode, body)
	}
	var ar wire.AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, &ar
}

func getStatsz(t *testing.T, base string) wire.Statsz {
	t.Helper()
	resp, err := http.Get(base + "/v1/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st wire.Statsz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// batchCanonical runs the same units through the batch corpus driver — the
// byte-identity reference for served responses.
func batchCanonical(t *testing.T, opts core.Options, units []wire.UnitSource) []byte {
	t.Helper()
	var mem corpus.Mem
	for _, us := range units {
		u, err := corpus.FromSource(us.Name, us.Source)
		if err != nil {
			t.Fatal(err)
		}
		mem = append(mem, u)
	}
	d := corpus.NewDriver(opts, 1)
	urs, err := d.RunAll(context.Background(), mem)
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for i := range urs {
		buf = corpus.AppendCanonical(buf, &urs[i])
	}
	return buf
}

// TestAnalyzeMatchesBatch: a served response renders canonical bytes
// identical to the batch corpus driver over the same units — the service's
// core correctness contract.
func TestAnalyzeMatchesBatch(t *testing.T) {
	_, base := startServer(t, Config{Options: testOptions()})
	units := suiteUnits(t)
	_, ar := analyze(t, base, wire.AnalyzeRequest{Units: units})
	if ar.SchemaVersion != wire.SchemaVersion {
		t.Errorf("schemaVersion = %d", ar.SchemaVersion)
	}
	if ar.BudgetClass != "exhaustive" || ar.DegradedByLoad {
		t.Errorf("unloaded server applied class %q degraded=%v", ar.BudgetClass, ar.DegradedByLoad)
	}
	got := wire.Canonical(ar)
	want := batchCanonical(t, testOptions(), units)
	if !bytes.Equal(got, want) {
		t.Errorf("served canonical bytes diverge from batch run\nserved:\n%s\nbatch:\n%s", got, want)
	}
	if ar.Stats.UnitsSolved != len(units) || ar.Stats.UnitsReused != 0 {
		t.Errorf("cold request stats %+v", ar.Stats)
	}
}

// TestWarmTierReuse: a repeated request is served entirely from the shared
// store with identical bytes, and statsz accounts for the split.
func TestWarmTierReuse(t *testing.T) {
	s, base := startServer(t, Config{Options: testOptions()})
	units := suiteUnits(t)
	_, cold := analyze(t, base, wire.AnalyzeRequest{Units: units})
	_, warm := analyze(t, base, wire.AnalyzeRequest{Units: units})
	if !bytes.Equal(wire.Canonical(cold), wire.Canonical(warm)) {
		t.Error("warm response bytes diverge from cold")
	}
	if warm.Stats.UnitsReused != len(units) || warm.Stats.UnitsSolved != 0 {
		t.Errorf("warm request stats %+v", warm.Stats)
	}
	for _, uv := range warm.Units {
		if !uv.Reused {
			t.Errorf("unit %s not served from the warm tier", uv.Name)
		}
	}
	st := getStatsz(t, base)
	if st.Completed != 2 || st.UnitsReused != int64(len(units)) || st.UnitsSolved != int64(len(units)) {
		t.Errorf("statsz %+v", st)
	}
	if st.StoreUnits != s.StoreLen() || st.StoreUnits == 0 {
		t.Errorf("storeUnits = %d (StoreLen %d)", st.StoreUnits, s.StoreLen())
	}
}

// TestBudgetClasses: a minimal-class request over adversarial FM programs
// degrades to Maybe with trip provenance; after an exhaustive request
// populates the warm tier, the same minimal request is served the exact
// stored verdicts (exact results hold under every class).
func TestBudgetClasses(t *testing.T) {
	_, base := startServer(t, Config{Options: testOptions()})
	var units []wire.UnitSource
	for _, spec := range workload.FMHardPrograms() {
		units = append(units, wire.UnitSource{Name: spec.Name, Source: workload.FMHardSource(spec)})
	}
	_, minimal := analyze(t, base, wire.AnalyzeRequest{Units: units, BudgetClass: "minimal"})
	if minimal.BudgetClass != "minimal" {
		t.Fatalf("applied class %q", minimal.BudgetClass)
	}
	if minimal.Counters.Maybe == 0 || minimal.Counters.BudgetTrips == 0 {
		t.Fatalf("minimal class did not degrade adversarial programs: %+v", minimal.Counters)
	}
	maybeTripped := false
	for _, uv := range minimal.Units {
		for _, r := range uv.Results {
			if r.Outcome == "maybe" && r.Trip != "" {
				maybeTripped = true
			}
		}
	}
	if !maybeTripped {
		t.Fatal("no maybe verdict carries trip provenance")
	}

	_, full := analyze(t, base, wire.AnalyzeRequest{Units: units})
	if full.Counters.Maybe != 0 {
		t.Fatalf("exhaustive run still degraded: %+v", full.Counters)
	}
	_, served := analyze(t, base, wire.AnalyzeRequest{Units: units, BudgetClass: "minimal"})
	if served.Stats.UnitsReused != len(units) {
		t.Errorf("cross-class warm serving reused %d of %d units", served.Stats.UnitsReused, len(units))
	}
	if !bytes.Equal(wire.Canonical(served), wire.Canonical(full)) {
		t.Error("cross-class served bytes diverge from the exhaustive run")
	}
}

// TestAdmissionDegradesThenSheds holds the executor still with the gate
// hook, fills the queue, and checks the ladder: early requests keep their
// class, a half-full queue degrades, a full queue sheds with 429 +
// Retry-After — and nothing ever returns a 5xx.
func TestAdmissionDegradesThenSheds(t *testing.T) {
	const depth = 4
	s, base := startServer(t, Config{Options: testOptions(), QueueDepth: depth})
	s.gate = make(chan struct{})

	req := wire.AnalyzeRequest{Units: []wire.UnitSource{{
		Name: "tiny", Source: "for i = 1 to 10\n  a[i] = a[i-1]\nend\n",
	}}}
	type reply struct {
		status int
		ar     wire.AnalyzeResponse
	}
	replies := make(chan reply, depth+2)
	var wg sync.WaitGroup
	post := func() {
		// Sequential sends: each request must observe the previous one
		// already queued for the fill-level thresholds to be deterministic.
		resp, body := postJSON(t, base+"/v1/analyze", req)
		var ar wire.AnalyzeResponse
		json.Unmarshal(body, &ar)
		replies <- reply{resp.StatusCode, ar}
	}
	// One request occupies the executor (blocked on the gate), then `depth`
	// requests fill the queue.
	enqueue := func(n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				post()
			}()
			waitFor(t, func() bool { return s.stats.accepted.Load() >= int64(i+2) })
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		post()
	}()
	waitFor(t, func() bool { return s.stats.accepted.Load() == 1 && len(s.queue) == 0 })
	enqueue(depth)

	// Queue full now: the next request must shed.
	resp, body := postJSON(t, base+"/v1/analyze", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue returned %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var er wire.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.RetryAfterSeconds < 1 {
		t.Errorf("shed body %s", body)
	}

	close(s.gate) // release the executor; everything queued completes
	wg.Wait()
	close(replies)

	var kept, degraded int
	for r := range replies {
		if r.status >= 500 {
			t.Fatalf("overload produced a %d", r.status)
		}
		if r.status != http.StatusOK {
			t.Fatalf("queued request returned %d", r.status)
		}
		if r.ar.DegradedByLoad {
			degraded++
			if r.ar.RequestedClass != "exhaustive" || r.ar.BudgetClass == "exhaustive" {
				t.Errorf("degraded response classes: applied %q requested %q", r.ar.BudgetClass, r.ar.RequestedClass)
			}
		} else {
			kept++
		}
	}
	// The executor-held request and the early fills keep their class; the
	// fills at >= depth/2 queue occupancy degrade.
	if kept == 0 || degraded == 0 {
		t.Errorf("kept %d degraded %d, want both non-zero", kept, degraded)
	}
	st := getStatsz(t, base)
	if st.Shed != 1 || st.Degraded != int64(degraded) || st.Completed != int64(kept+degraded) {
		t.Errorf("statsz %+v (degraded %d kept %d)", st, degraded, kept)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShutdownDrainsAndPersists: Shutdown with a request still queued behind
// a held executor completes that request (drain, not drop), saves the store
// atomically, and a restarted server serves the same fingerprints from the
// warm tier without touching the analyzer.
func TestShutdownDrainsAndPersists(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "warm.store")
	units := suiteUnits(t)

	s, base := startServer(t, Config{Options: testOptions(), StorePath: storePath})
	s.gate = make(chan struct{})

	type reply struct {
		status int
		ar     wire.AnalyzeResponse
	}
	done := make(chan reply, 1)
	go func() {
		resp, body := postJSON(t, base+"/v1/analyze", wire.AnalyzeRequest{Units: units})
		var ar wire.AnalyzeResponse
		json.Unmarshal(body, &ar)
		done <- reply{resp.StatusCode, ar}
	}()
	waitFor(t, func() bool { return s.stats.accepted.Load() == 1 })

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	// The server is draining: new work sheds while the queued request is
	// still pending.
	waitFor(t, func() bool { return s.closing.Load() })
	close(s.gate)

	r := <-done
	if r.status != http.StatusOK {
		t.Fatalf("drained request returned %d", r.status)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := os.Stat(storePath); err != nil {
		t.Fatalf("store not saved: %v", err)
	}
	want := wire.Canonical(&r.ar)

	// Restart on the same store: the whole suite must be served warm.
	s2, base2 := startServer(t, Config{Options: testOptions(), StorePath: storePath})
	if s2.StoreLen() != len(units) {
		t.Fatalf("restarted store holds %d units, want %d", s2.StoreLen(), len(units))
	}
	_, warm := analyze(t, base2, wire.AnalyzeRequest{Units: units})
	if warm.Stats.UnitsReused != len(units) || warm.Stats.UnitsSolved != 0 {
		t.Fatalf("restart stats %+v, want all units reused", warm.Stats)
	}
	if !bytes.Equal(wire.Canonical(warm), want) {
		t.Error("restarted warm bytes diverge from the pre-shutdown response")
	}
	st := getStatsz(t, base2)
	if st.UnitsReused != int64(len(units)) || st.UnitsSolved != 0 {
		t.Errorf("restart statsz %+v", st)
	}
}

// TestCorpusEndpoint: /v1/corpus analyzes server-local files through the
// facade's CorpusRequest, refuses escapes from the corpus root, and is
// disabled without one.
func TestCorpusEndpoint(t *testing.T) {
	root := t.TempDir()
	specs := workload.Programs()[:3]
	var names []string
	for _, spec := range specs {
		name := spec.Name + ".loop"
		if err := os.WriteFile(filepath.Join(root, name), []byte(workload.Source(spec, false)), 0o644); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	_, base := startServer(t, Config{Options: testOptions(), CorpusRoot: root})

	resp, body := postJSON(t, base+"/v1/corpus", wire.CorpusRequest{Dir: "."})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/corpus: %d: %s", resp.StatusCode, body)
	}
	var ar wire.AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.Units) != len(specs) {
		t.Fatalf("corpus response has %d units, want %d", len(ar.Units), len(specs))
	}
	resp2, body2 := postJSON(t, base+"/v1/corpus", wire.CorpusRequest{Files: names})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("files corpus: %d: %s", resp2.StatusCode, body2)
	}

	for _, bad := range []wire.CorpusRequest{
		{Dir: "../outside"},
		{Files: []string{"../../etc/passwd"}},
		{},
		{Dir: ".", Files: names},
		{Dir: "no-such-dir"},
	} {
		resp, body := postJSON(t, base+"/v1/corpus", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("corpus request %+v returned %d: %s", bad, resp.StatusCode, body)
		}
	}

	_, noRoot := startServer(t, Config{Options: testOptions()})
	resp3, _ := postJSON(t, noRoot+"/v1/corpus", wire.CorpusRequest{Dir: "."})
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("corpus without root returned %d", resp3.StatusCode)
	}
}

// TestClientErrorSurface: malformed requests are rejected before admission
// with the wire error shape, counted in statsz, and never 5xx.
func TestClientErrorSurface(t *testing.T) {
	_, base := startServer(t, Config{Options: testOptions()})
	cases := []struct {
		name   string
		status int
		do     func() *http.Response
	}{
		{"get-analyze", http.StatusMethodNotAllowed, func() *http.Response {
			resp, err := http.Get(base + "/v1/analyze")
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}},
		{"bad-json", http.StatusBadRequest, func() *http.Response {
			resp, err := http.Post(base+"/v1/analyze", "application/json", strings.NewReader("{"))
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}},
	}
	for _, c := range cases {
		resp := c.do()
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s: %d, want %d", c.name, resp.StatusCode, c.status)
		}
	}
	src := "for i = 1 to 4\n  a[i] = a[i]\nend\n"
	for name, req := range map[string]wire.AnalyzeRequest{
		"no-units":      {},
		"bad-version":   {SchemaVersion: 99, Units: []wire.UnitSource{{Source: src}}},
		"bad-class":     {BudgetClass: "platinum", Units: []wire.UnitSource{{Source: src}}},
		"bad-cascade":   {Options: &wire.Options{Cascade: "no-such"}, Units: []wire.UnitSource{{Source: src}}},
		"parse-failure": {Units: []wire.UnitSource{{Name: "broken", Source: "for i = \n"}}},
	} {
		resp, body := postJSON(t, base+"/v1/analyze", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d: %s", name, resp.StatusCode, body)
		}
		var er wire.ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" || er.SchemaVersion != wire.SchemaVersion {
			t.Errorf("%s: error body %s", name, body)
		}
	}
	st := getStatsz(t, base)
	if st.ClientErrors != 7 {
		t.Errorf("clientErrors = %d, want 7", st.ClientErrors)
	}
	if st.Accepted != 0 {
		t.Errorf("client errors reached admission: accepted = %d", st.Accepted)
	}
}

// TestDeadlineDegradesToMaybe: an aggressive request deadline produces a 200
// whose unfinished pairs are sound Maybe verdicts — wall-clock pressure is
// never an error. Deadline-tripped verdicts must not enter the warm tier.
func TestDeadlineDegradesToMaybe(t *testing.T) {
	s, base := startServer(t, Config{Options: testOptions()})
	var units []wire.UnitSource
	for _, spec := range workload.FMHardPrograms() {
		units = append(units, wire.UnitSource{Name: spec.Name, Source: workload.FMHardSource(spec)})
	}
	_, ar := analyze(t, base, wire.AnalyzeRequest{Units: units, DeadlineMillis: 1})
	tripped := map[string]bool{}
	for _, uv := range ar.Units {
		for _, r := range uv.Results {
			if !r.Exact && r.Outcome != "maybe" && r.Outcome != "unknown" {
				t.Errorf("unit %s: inexact non-degraded outcome %q", uv.Name, r.Outcome)
			}
			if r.Trip == dtest.TripDeadline.String() || r.Trip == dtest.TripCancelled.String() {
				tripped[uv.Name] = true
			}
		}
	}
	if len(tripped) == 0 {
		t.Skip("every pair finished inside a 1ms deadline")
	}
	// Clock-tripped verdicts are session-dependent and must not enter the
	// warm tier; only the cleanly finished units are stored.
	if got, want := s.StoreLen(), len(units)-len(tripped); got != want {
		t.Errorf("store holds %d units after deadline trips, want %d", got, want)
	}
}

// TestHealthz covers liveness plus the draining transition.
func TestHealthz(t *testing.T) {
	s, base := startServer(t, Config{Options: testOptions()})
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h wire.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.SchemaVersion != wire.SchemaVersion {
		t.Errorf("healthz %+v", h)
	}
	s.closing.Store(true)
	resp2, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp2.Body).Decode(&h)
	resp2.Body.Close()
	if h.Status != "draining" {
		t.Errorf("draining healthz status %q", h.Status)
	}
	s.closing.Store(false) // let Cleanup shut down normally
}

// TestOptionOverride: a request overriding the result surface is solved
// fresh (never touches the warm tier) and matches a batch run under the
// same options.
func TestOptionOverride(t *testing.T) {
	s, base := startServer(t, Config{Options: testOptions()})
	units := suiteUnits(t)
	analyze(t, base, wire.AnalyzeRequest{Units: units}) // warm the tier
	storeBefore := s.StoreLen()

	override := &wire.Options{DirectionVectors: false, Cascade: "full"}
	_, ar := analyze(t, base, wire.AnalyzeRequest{Units: units, Options: override})
	if ar.Stats.UnitsReused != 0 || ar.Stats.UnitsSolved != len(units) {
		t.Errorf("override request stats %+v, want all solved fresh", ar.Stats)
	}
	if s.StoreLen() != storeBefore {
		t.Errorf("override request changed the store: %d -> %d", storeBefore, s.StoreLen())
	}
	opts := testOptions()
	opts.DirectionVectors = false
	opts.PruneUnused = false
	opts.PruneDistance = false
	opts.Separable = false
	if got, want := wire.Canonical(ar), batchCanonical(t, opts, units); !bytes.Equal(got, want) {
		t.Error("override response bytes diverge from the batch run under the same options")
	}

	// An override identical to the server surface is normalized away and
	// still served warm.
	same := wire.FromCoreOptions(testOptions())
	_, warm := analyze(t, base, wire.AnalyzeRequest{Units: units, Options: &same})
	if warm.Stats.UnitsReused != len(units) {
		t.Errorf("identity override bypassed the warm tier: %+v", warm.Stats)
	}
}

// tinyUnits generates n small distinct units cheap enough for the
// race-enabled matrix tests: every unit shares one statement (so units
// solved in the same epoch produce cross-request memo hits) and carries
// one unit-specific statement (so fingerprints stay distinct).
func tinyUnits(n int) []wire.UnitSource {
	units := make([]wire.UnitSource, n)
	for i := range units {
		src := fmt.Sprintf("for i = 1 to 50\n  a[i+1] = a[i]\n  c[i+%d] = c[i]\nend\n", i+1)
		units[i] = wire.UnitSource{Name: fmt.Sprintf("tiny%d", i), Source: src}
	}
	return units
}

// coalesceJobs slices tiny units into overlapping per-request windows:
// job k holds units[2k : 2k+4], so consecutive jobs share two units — the
// shape that exercises cross-job fingerprint dedup inside one batch.
func coalesceJobs(t *testing.T) [][]wire.UnitSource {
	units := tinyUnits(10)
	var jobs [][]wire.UnitSource
	for k := 0; 2*k+4 <= len(units) && k < 4; k++ {
		jobs = append(jobs, units[2*k:2*k+4])
	}
	if len(jobs) < 3 {
		t.Fatal("unit pool too small for coalescing windows")
	}
	return jobs
}

// postOrdered posts the jobs strictly in order against a gate-held server
// (each waits until the previous one is admitted, so queue order — and
// therefore batch order — is the slice order), releases the gate, and
// returns the responses in job order.
func postOrdered(t *testing.T, s *Server, base string, jobs [][]wire.UnitSource) [][]byte {
	t.Helper()
	bodies := make([][]byte, len(jobs))
	var wg sync.WaitGroup
	for k, units := range jobs {
		wg.Add(1)
		go func(k int, units []wire.UnitSource) {
			defer wg.Done()
			resp, body := postJSON(t, base+"/v1/analyze", wire.AnalyzeRequest{Units: units})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("job %d: status %d: %s", k, resp.StatusCode, body)
			}
			bodies[k] = body
		}(k, units)
		waitFor(t, func() bool { return s.stats.accepted.Load() == int64(k+1) })
	}
	close(s.gate)
	wg.Wait()
	return bodies
}

// canonicalOf renders a response body's verdicts canonically.
func canonicalOf(t *testing.T, body []byte) []byte {
	t.Helper()
	var ar wire.AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return wire.Canonical(&ar)
}

// TestCoalescingByteIdentity: N same-class jobs executed as one coalesced
// warm-analyzer batch produce responses identical to the same jobs executed
// one at a time in the same order — full-JSON identical in the serial
// configuration, canonical-verdict identical at every worker and executor
// count (per-test counters are scheduling-dependent under concurrency).
func TestCoalescingByteIdentity(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		for _, executors := range []int{1, 2} {
			t.Run(fmt.Sprintf("workers=%d/executors=%d", workers, executors), func(t *testing.T) {
				opts := testOptions()
				opts.Workers = workers
				jobs := coalesceJobs(t)

				sA, baseA := startServer(t, Config{Options: opts, Executors: executors, MaxBatch: 8})
				sA.gate = make(chan struct{})
				batched := postOrdered(t, sA, baseA, jobs)

				// The reference: identical job sequence, coalescing disabled.
				sB, baseB := startServer(t, Config{Options: opts, MaxBatch: 1})
				serial := make([][]byte, len(jobs))
				for k, units := range jobs {
					_, body := postJSON(t, baseB+"/v1/analyze", wire.AnalyzeRequest{Units: units})
					serial[k] = body
				}
				_ = sB

				for k := range jobs {
					if !bytes.Equal(canonicalOf(t, batched[k]), canonicalOf(t, serial[k])) {
						t.Errorf("job %d: coalesced canonical bytes diverge from one-at-a-time", k)
					}
					if workers == 1 && executors == 1 && !bytes.Equal(batched[k], serial[k]) {
						t.Errorf("job %d: coalesced response JSON diverges from one-at-a-time\nbatched: %s\nserial:  %s", k, batched[k], serial[k])
					}
				}

				st := getStatsz(t, baseA)
				if executors == 1 {
					// One executor, gate-held fill: exactly one batch holding
					// every job, with the overlapping windows deduped.
					if st.Batches != 1 || st.CoalescedJobs != int64(len(jobs)-1) {
						t.Errorf("batches=%d coalescedJobs=%d, want 1 and %d", st.Batches, st.CoalescedJobs, len(jobs)-1)
					}
					if st.BatchSizeHist[len(jobs)-1] != 1 {
						t.Errorf("batchSizeHist = %v, want one batch of %d", st.BatchSizeHist, len(jobs))
					}
					if st.FingerprintDeduped == 0 {
						t.Error("overlapping windows produced no fingerprint dedup")
					}
					if st.CrossRequestMemoHits == 0 {
						t.Error("warm batch produced no cross-request memo hits")
					}
				} else if st.Batches+st.CoalescedJobs != int64(len(jobs)) {
					t.Errorf("batches=%d + coalescedJobs=%d != jobs=%d", st.Batches, st.CoalescedJobs, len(jobs))
				}
				if st.MemoEntries == 0 {
					t.Error("warm analyzer retained no memo entries")
				}
			})
		}
	}
}

// TestCoalescedCancelMidBatch: a job whose deadline expired while queued
// degrades alone inside its batch — batchmates before and after it stay
// exact and byte-identical to a batch reference, and the expired job's
// tripped units never enter the warm tier.
func TestCoalescedCancelMidBatch(t *testing.T) {
	pool := tinyUnits(6)
	before, after := pool[0:3], pool[3:6]
	var doomed []wire.UnitSource
	for _, spec := range workload.FMHardPrograms() {
		doomed = append(doomed, wire.UnitSource{Name: spec.Name, Source: workload.FMHardSource(spec)})
	}

	s, base := startServer(t, Config{Options: testOptions(), MaxBatch: 8})
	s.gate = make(chan struct{})

	type reply struct {
		status int
		body   []byte
	}
	replies := make([]reply, 3)
	var wg sync.WaitGroup
	post := func(k int, req wire.AnalyzeRequest) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postJSON(t, base+"/v1/analyze", req)
			replies[k] = reply{resp.StatusCode, body}
		}()
		waitFor(t, func() bool { return s.stats.accepted.Load() == int64(k+1) })
	}
	post(0, wire.AnalyzeRequest{Units: before})
	post(1, wire.AnalyzeRequest{Units: doomed, DeadlineMillis: 1})
	post(2, wire.AnalyzeRequest{Units: after})
	// Let the doomed job's 1ms deadline expire while everything is queued.
	time.Sleep(20 * time.Millisecond)
	close(s.gate)
	wg.Wait()

	for k, r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("job %d: status %d: %s", k, r.status, r.body)
		}
	}
	if got, want := canonicalOf(t, replies[0].body), batchCanonical(t, testOptions(), before); !bytes.Equal(got, want) {
		t.Error("batchmate before the cancelled job diverges from the batch reference")
	}
	if got, want := canonicalOf(t, replies[2].body), batchCanonical(t, testOptions(), after); !bytes.Equal(got, want) {
		t.Error("batchmate after the cancelled job diverges from the batch reference")
	}

	var doomedAR wire.AnalyzeResponse
	if err := json.Unmarshal(replies[1].body, &doomedAR); err != nil {
		t.Fatal(err)
	}
	trippedUnits := map[string]bool{}
	for _, uv := range doomedAR.Units {
		for _, r := range uv.Results {
			if r.Trip == dtest.TripDeadline.String() || r.Trip == dtest.TripCancelled.String() {
				trippedUnits[uv.Name] = true
			}
		}
	}
	if len(trippedUnits) == 0 {
		t.Skip("the doomed job finished inside its expired deadline")
	}
	// Tripped units never enter the store; the batchmates' units all do.
	if got, want := s.StoreLen(), len(before)+len(after)+len(doomed)-len(trippedUnits); got != want {
		t.Errorf("store holds %d units, want %d (tripped units must not be stored)", got, want)
	}
	st := getStatsz(t, base)
	if st.Cancelled == 0 {
		t.Error("expired job not counted as cancelled")
	}
	if st.Batches != 1 || st.CoalescedJobs != 2 {
		t.Errorf("batches=%d coalescedJobs=%d, want 1 and 2", st.Batches, st.CoalescedJobs)
	}
}

// TestCancelledClientCountsCancelled: a client that disconnects while its
// request is queued counts as cancelled in statsz — never a server error.
func TestCancelledClientCountsCancelled(t *testing.T) {
	s, base := startServer(t, Config{Options: testOptions()})
	s.gate = make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	// The 20ms deadline backstops the disconnect: by the time the gate
	// opens the job's context is dead either way, so the executor's
	// classification is what is under test, not propagation timing.
	buf, err := json.Marshal(wire.AnalyzeRequest{Units: tinyUnits(4), DeadlineMillis: 20})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/analyze", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitFor(t, func() bool { return s.stats.accepted.Load() == 1 })
	cancel() // client walks away while the job is queued
	<-done
	time.Sleep(50 * time.Millisecond) // past the deadline backstop
	close(s.gate)

	waitFor(t, func() bool { return s.stats.completed.Load() == 1 })
	st := getStatsz(t, base)
	if st.Cancelled != 1 {
		t.Errorf("cancelled = %d, want 1", st.Cancelled)
	}
	if st.Completed != 1 || st.Shed != 0 || st.ClientErrors != 0 {
		t.Errorf("statsz %+v", st)
	}
}

// TestMemoEviction: a warm analyzer over its memo bound drops its tables
// after the batch (statsz meters the epoch restart) and keeps serving
// byte-identical responses — eviction is a memory policy, never a result
// change.
func TestMemoEviction(t *testing.T) {
	s, base := startServer(t, Config{Options: testOptions(), MaxMemoEntries: 1})
	units := tinyUnits(8)

	_, cold := analyze(t, base, wire.AnalyzeRequest{Units: units})
	st := getStatsz(t, base)
	if st.MemoEvictions == 0 {
		t.Fatalf("MaxMemoEntries=1 triggered no eviction: %+v", st)
	}
	if st.MemoEntries != 0 {
		t.Errorf("memoEntries = %d after eviction, want 0", st.MemoEntries)
	}

	// The store is untouched by eviction; a repeat is served warm and
	// byte-identical.
	_, warm := analyze(t, base, wire.AnalyzeRequest{Units: units})
	if warm.Stats.UnitsReused != len(units) {
		t.Errorf("post-eviction repeat stats %+v, want all reused", warm.Stats)
	}
	if !bytes.Equal(wire.Canonical(cold), wire.Canonical(warm)) {
		t.Error("post-eviction warm bytes diverge")
	}

	// Fresh work after the epoch restart still matches the batch reference.
	fresh := tinyUnits(16)[8:]
	_, ar := analyze(t, base, wire.AnalyzeRequest{Units: fresh})
	if got, want := wire.Canonical(ar), batchCanonical(t, testOptions(), fresh); !bytes.Equal(got, want) {
		t.Error("post-eviction solve diverges from the batch reference")
	}
	_ = s
}
