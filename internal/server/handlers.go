package server

// HTTP handlers, admission control, and the executor pool. Handlers do all
// client-facing validation (4xx) before admission, so a queued job can only
// fail by analysis outcome — which is never an error: budget and deadline
// trips degrade verdicts to sound Maybe inside the result vocabulary.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"time"

	"exactdep"
	"exactdep/internal/core"
	"exactdep/internal/corpus"
	"exactdep/internal/dtest"
	"exactdep/internal/memo"
	"exactdep/internal/wire"
)

// maxBody bounds a request body (64 MiB holds the LargeCorpus suite many
// times over).
const maxBody = 64 << 20

// Admission thresholds, in queue-fill fraction: at >= 1/2 full the request's
// budget class shrinks one step, at >= 3/4 two steps; a full queue sheds.
// The ladder only ever weakens a class — a tenant never gets more budget
// under load than it asked for.
const (
	shrinkOneNum, shrinkOneDen = 1, 2
	shrinkTwoNum, shrinkTwoDen = 3, 4
)

// job is one admitted request waiting for an executor.
type job struct {
	ctx context.Context

	// Analyze requests: the parsed units.
	units corpus.Mem
	// Corpus requests: the facade request with server-root-resolved paths
	// (nil for analyze requests).
	corpusReq *exactdep.CorpusRequest

	// wireOpts is the client's option override (nil: server base options).
	wireOpts *wire.Options
	// overridden is true when wireOpts changes the base result surface —
	// such requests bypass the warm tier entirely.
	overridden bool

	classIdx int // requested budget class (ladder index)
	effClass int // class after admission shrink; >= classIdx

	reply chan jobResult
}

type jobResult struct {
	status int
	body   any
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	mux.HandleFunc("/v1/corpus", s.handleCorpus)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/statsz", s.handleStatsz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(body)
}

// clientError rejects a request before admission.
func (s *Server) clientError(w http.ResponseWriter, status int, msg string) {
	s.stats.clientErrors.Add(1)
	writeJSON(w, status, wire.ErrorResponse{SchemaVersion: wire.SchemaVersion, Error: msg})
}

// shed rejects an admitted-stage request with 429 + Retry-After.
func (s *Server) shed(w http.ResponseWriter) {
	s.stats.shed.Add(1)
	secs := int(wire.RetryAfter / time.Second)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, wire.ErrorResponse{
		SchemaVersion:     wire.SchemaVersion,
		Error:             "service overloaded, retry later",
		RetryAfterSeconds: secs,
	})
}

// admit applies admission control: it sets the job's effective budget class
// from the queue's fill level and enqueues, or reports a shed. Never blocks.
func (s *Server) admit(j *job) bool {
	if s.closing.Load() {
		return false
	}
	depth, capQ := len(s.queue), cap(s.queue)
	shrink := 0
	switch {
	case depth*shrinkTwoDen >= capQ*shrinkTwoNum:
		shrink = 2
	case depth*shrinkOneDen >= capQ*shrinkOneNum:
		shrink = 1
	}
	j.effClass = j.classIdx + shrink
	if last := len(wire.BudgetClasses) - 1; j.effClass > last {
		j.effClass = last
	}
	select {
	case s.queue <- j:
		s.stats.accepted.Add(1)
		if j.effClass > j.classIdx {
			s.stats.degraded.Add(1)
		}
		return true
	default:
		return false
	}
}

// dispatch runs the common post-validation tail of both POST endpoints:
// deadline, admission, and the reply wait.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, j *job, deadlineMillis int64) {
	d := s.maxDeadline
	if deadlineMillis > 0 {
		if cd := time.Duration(deadlineMillis) * time.Millisecond; cd < d {
			d = cd
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	j.ctx = ctx
	j.reply = make(chan jobResult, 1) // buffered: executor never blocks on a gone client

	if !s.admit(j) {
		s.shed(w)
		return
	}
	select {
	case res := <-j.reply:
		writeJSON(w, res.status, res.body)
	case <-r.Context().Done():
		// Client disconnected; the executor sees the cancelled context and
		// replies into the buffer.
	}
}

// decodeInto decodes a JSON body, rejecting unknown schema versions.
func decodeInto(r *http.Request, w http.ResponseWriter, v any, version *int) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return fmt.Errorf("bad request body: %v", err)
	}
	if *version != 0 && *version != wire.SchemaVersion {
		return fmt.Errorf("unsupported schemaVersion %d (server speaks %d)", *version, wire.SchemaVersion)
	}
	return nil
}

// resolveOptions overlays a client option override onto the server base and
// validates it, reporting whether the result surface actually changed.
func (s *Server) resolveOptions(o *wire.Options) (core.Options, bool, error) {
	opts := s.baseOpts
	overridden := false
	if o != nil && *o != wire.FromCoreOptions(s.baseOpts) {
		opts = o.Apply(s.baseOpts)
		overridden = true
		if err := opts.Validate(); err != nil {
			return opts, true, err
		}
	}
	return opts, overridden, nil
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.clientError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req wire.AnalyzeRequest
	if err := decodeInto(r, w, &req, &req.SchemaVersion); err != nil {
		s.clientError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Units) == 0 {
		s.clientError(w, http.StatusBadRequest, "no units in request")
		return
	}
	classIdx, ok := wire.ClassIndex(req.BudgetClass)
	if !ok {
		s.clientError(w, http.StatusBadRequest, fmt.Sprintf("unknown budget class %q", req.BudgetClass))
		return
	}
	if _, overridden, err := s.resolveOptions(req.Options); err != nil {
		s.clientError(w, http.StatusBadRequest, err.Error())
		return
	} else if !overridden {
		req.Options = nil // normalized: identical override == no override
	}
	units := make(corpus.Mem, 0, len(req.Units))
	for i, us := range req.Units {
		name := us.Name
		if name == "" {
			name = "unit" + strconv.Itoa(i)
		}
		u, err := corpus.FromSource(name, us.Source)
		if err != nil {
			s.clientError(w, http.StatusBadRequest, fmt.Sprintf("unit %q: %v", name, err))
			return
		}
		units = append(units, u)
	}
	s.dispatch(w, r, &job{
		units:      units,
		wireOpts:   req.Options,
		overridden: req.Options != nil,
		classIdx:   classIdx,
	}, req.DeadlineMillis)
}

func (s *Server) handleCorpus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.clientError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.cfg.CorpusRoot == "" {
		s.clientError(w, http.StatusNotFound, "corpus endpoint disabled (no corpus root configured)")
		return
	}
	var req wire.CorpusRequest
	if err := decodeInto(r, w, &req, &req.SchemaVersion); err != nil {
		s.clientError(w, http.StatusBadRequest, err.Error())
		return
	}
	classIdx, ok := wire.ClassIndex(req.BudgetClass)
	if !ok {
		s.clientError(w, http.StatusBadRequest, fmt.Sprintf("unknown budget class %q", req.BudgetClass))
		return
	}
	if _, _, err := s.resolveOptions(req.Options); err != nil {
		s.clientError(w, http.StatusBadRequest, err.Error())
		return
	}
	if (req.Dir == "") == (len(req.Files) == 0) {
		s.clientError(w, http.StatusBadRequest, "set exactly one of dir or files")
		return
	}
	fReq := &exactdep.CorpusRequest{}
	if req.Dir != "" {
		if !filepath.IsLocal(req.Dir) {
			s.clientError(w, http.StatusBadRequest, fmt.Sprintf("dir %q escapes the corpus root", req.Dir))
			return
		}
		fReq.Dir = filepath.Join(s.cfg.CorpusRoot, req.Dir)
	}
	for _, f := range req.Files {
		if !filepath.IsLocal(f) {
			s.clientError(w, http.StatusBadRequest, fmt.Sprintf("file %q escapes the corpus root", f))
			return
		}
		fReq.Files = append(fReq.Files, filepath.Join(s.cfg.CorpusRoot, f))
	}
	s.dispatch(w, r, &job{
		corpusReq: fReq,
		wireOpts:  req.Options,
		classIdx:  classIdx,
	}, req.DeadlineMillis)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.closing.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, wire.Health{
		SchemaVersion: wire.SchemaVersion,
		Status:        status,
		UptimeMillis:  time.Since(s.start).Milliseconds(),
	})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	hist := make([]int64, batchSizeBuckets)
	for i := range hist {
		hist[i] = s.stats.batchSizes[i].Load()
	}
	writeJSON(w, http.StatusOK, wire.Statsz{
		SchemaVersion: wire.SchemaVersion,
		UptimeMillis:  time.Since(s.start).Milliseconds(),
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		Executors:     s.cfg.Executors,
		Accepted:      s.stats.accepted.Load(),
		Completed:     s.stats.completed.Load(),
		Degraded:      s.stats.degraded.Load(),
		Shed:          s.stats.shed.Load(),
		ClientErrors:  s.stats.clientErrors.Load(),
		Cancelled:     s.stats.cancelled.Load(),
		StoreUnits:    s.StoreLen(),
		UnitsReused:   s.stats.unitsReused.Load(),
		UnitsSolved:   s.stats.unitsSolved.Load(),
		PairsServed:   s.stats.pairsServed.Load(),
		PairsSolved:   s.stats.pairsSolved.Load(),

		MaxBatch:             s.cfg.MaxBatch,
		Batches:              s.stats.batches.Load(),
		CoalescedJobs:        s.stats.coalescedJobs.Load(),
		BatchSizeHist:        hist,
		FingerprintDeduped:   s.stats.fpDeduped.Load(),
		CrossRequestMemoHits: s.stats.crossMemoHits.Load(),
		MemoEntries:          s.memoEntries(),
		MemoEvictions:        s.stats.memoEvictions.Load(),
	})
}

// executor drains the queue until Shutdown, then finishes whatever is still
// queued (the HTTP server has already stopped admitting by then).
func (s *Server) executor() {
	defer s.execWG.Done()
	for {
		select {
		case j := <-s.queue:
			s.process(j)
		case <-s.execStop:
			for {
				select {
				case j := <-s.queue:
					s.process(j)
				default:
					return
				}
			}
		}
	}
}

// coalescable reports whether a job may ride in a warm-analyzer batch:
// analyze requests on the server's option surface. Corpus requests run
// through the facade, and option overrides get a throwaway driver, so
// neither can share a warm analyzer.
func coalescable(j *job) bool {
	return j.corpusReq == nil && !j.overridden
}

// process serves one dequeued job, plus — for coalescable jobs — up to
// MaxBatch-1 queued same-class peers merged into the same warm-analyzer
// batch. Draining may pull a job that cannot join the batch (different
// class, corpus request, option override); it is looped on here rather
// than re-queued, preserving FIFO order.
func (s *Server) process(j *job) {
	for j != nil {
		if s.gate != nil {
			<-s.gate
		}
		j = s.processBatch(j)
	}
}

// processBatch runs j (batched with any same-class peers it can drain) and
// returns the first non-matching job pulled off the queue, or nil.
func (s *Server) processBatch(j *job) *job {
	if !coalescable(j) {
		s.finish(j, s.run(j))
		return nil
	}
	batch := []*job{j}
	var next *job
drain:
	for len(batch) < s.cfg.MaxBatch {
		select {
		case nj := <-s.queue:
			if coalescable(nj) && nj.effClass == j.effClass {
				batch = append(batch, nj)
			} else {
				next = nj
				break drain
			}
		default:
			break drain
		}
	}
	s.runBatch(batch)
	return next
}

// finish delivers a job's reply and feeds the completion counters. A job
// whose context died before completion (client gone, deadline passed)
// counts as cancelled — its verdicts degraded or its reply is a 408, never
// a server error.
func (s *Server) finish(j *job, res jobResult) {
	if j.ctx.Err() != nil {
		s.stats.cancelled.Add(1)
	}
	j.reply <- res
	s.stats.completed.Add(1)
}

// runBatch serves a batch of same-class jobs sequentially on the class's
// warm analyzer. Sequential replay is what makes coalesced replies
// byte-identical to a one-job-at-a-time run by construction: each job gets
// exactly the probe → solve → put cycle it would have gotten alone, in
// admission order, against the same store and (warm) memo state — the
// batch saves the per-job driver construction and keeps the memo tables
// hot, it never changes the operation sequence. Each job's own context
// governs its solve, so an expired job degrades to Maybe/cancelled alone
// without poisoning batchmates (its tripped units are never stored, and
// batchmates holding the same units simply re-solve them memo-hot).
func (s *Server) runBatch(batch []*job) {
	wa := s.warm[batch[0].effClass]
	wa.mu.Lock()
	// batchFps tracks fingerprints stored by earlier jobs of this batch, so
	// the probe loop can meter cross-request dedup within the batch.
	batchFps := make(map[memo.Fingerprint]bool)
	for _, j := range batch {
		s.finish(j, s.runWarm(j, wa, batchFps))
		wa.jobs++
	}
	if s.memoLimit > 0 {
		if a := wa.driver.Analyzer(); a.MemoLen() > s.memoLimit {
			a.EvictMemo()
			wa.jobs = 0
			s.stats.memoEvictions.Add(1)
		}
	}
	wa.mu.Unlock()

	s.stats.batches.Add(1)
	s.stats.coalescedJobs.Add(int64(len(batch) - 1))
	bucket := len(batch) - 1
	if bucket >= batchSizeBuckets {
		bucket = batchSizeBuckets - 1
	}
	s.stats.batchSizes[bucket].Add(1)
}

// runWarm executes one coalescable job on its class's warm analyzer. The
// caller holds wa.mu. Store traffic follows the PR8 pipeline contract so
// executors overlap solving: probe under storeMu, solve outside it on the
// long-lived driver, deferred puts under it.
//
// The warm tier serves a stored unit when its result set matches the
// unit's candidate count; at a non-default class it must additionally be
// fully exact (Cost.Maybe == 0), since count-budget Maybe verdicts are
// class-scoped. Symmetrically, the default class stores anything without
// deadline/cancel trips (corpus.Storable), while other classes store only
// fully-untripped results, so class-scoped verdicts never leak into the
// default-class store.
func (s *Server) runWarm(j *job, wa *warmAnalyzer, batchFps map[memo.Fingerprint]bool) jobResult {
	crossClass := j.effClass != s.defaultClass

	// Fingerprint outside the lock (cached on the immutable unit).
	fps := make([]memo.Fingerprint, len(j.units))
	for i := range j.units {
		fps[i] = j.units[i].Fingerprint(&wa.fp)
	}

	served := make([]*corpus.StoredUnit, len(j.units))
	s.storeMu.Lock()
	for i := range j.units {
		su, ok := s.store.Lookup(fps[i])
		if !ok || len(su.Results) != len(j.units[i].Cands) {
			continue
		}
		if crossClass && su.Cost.Maybe != 0 {
			continue
		}
		served[i] = su
		if batchFps[fps[i]] {
			s.stats.fpDeduped.Add(1)
		}
	}
	s.storeMu.Unlock()

	var miss corpus.Mem
	for i := range j.units {
		if served[i] == nil {
			miss = append(miss, j.units[i])
		}
	}

	a := wa.driver.Analyzer()
	a.ResetStats() // per-request counters; the memo tables stay warm
	firstEpochJob := wa.jobs == 0
	missURs, err := wa.driver.RunAll(j.ctx, miss)
	if err != nil {
		return s.errorResult(j, err, http.StatusInternalServerError)
	}
	counters := wire.FromCounters(a.Stats)
	if !firstEpochJob {
		s.stats.crossMemoHits.Add(int64(a.Stats.FullHits))
	}

	s.storeMu.Lock()
	for i := range missURs {
		ur := &missURs[i]
		ok := corpus.Storable(ur.Results)
		if crossClass {
			ok = untripped(ur.Results)
		}
		if ok {
			s.store.Put(ur.Fingerprint, corpus.ToStored(ur.Name, ur.Results))
			s.storeDirty.Store(true)
			batchFps[ur.Fingerprint] = true
		}
	}
	s.storeMu.Unlock()

	// Demux served and solved units back into request order.
	urs := make([]corpus.UnitResult, len(j.units))
	st := corpus.Stats{Units: len(j.units), UnitsSolved: wa.driver.Stats.UnitsSolved, PairsSolved: wa.driver.Stats.PairsSolved}
	mi := 0
	for i := range j.units {
		u := &j.units[i]
		if su := served[i]; su != nil {
			urs[i] = corpus.UnitResult{
				Name:        u.Name,
				Fingerprint: fps[i],
				Reused:      true,
				Results:     corpus.Serve(u.Cands, su),
				Cost:        su.Cost,
				Warnings:    u.Warnings,
			}
			st.UnitsReused++
			st.PairsServed += len(u.Cands)
		} else {
			urs[i] = missURs[mi]
			mi++
		}
	}
	return s.respond(j, urs, st, counters)
}

// run executes one non-coalescable job (corpus request or option override)
// and builds its reply.
func (s *Server) run(j *job) jobResult {
	if j.corpusReq != nil {
		return s.runCorpus(j)
	}
	// Option override: a throwaway storeless driver — a foreign result
	// surface must touch neither the warm tier nor a warm analyzer's memo.
	opts := j.wireOpts.Apply(s.baseOpts)
	opts.Budget = wire.BudgetClasses[j.effClass].Budget
	d := corpus.NewDriver(opts, core.PipelineWorkers(s.baseOpts.Workers))
	urs, err := d.RunAll(j.ctx, j.units)
	if err != nil {
		return s.errorResult(j, err, http.StatusInternalServerError)
	}
	return s.respond(j, urs, d.Stats, wire.FromCounters(d.Analyzer().Stats))
}

// errorResult classifies a failed run. A context-cancellation error (or any
// error surfacing after the job's own context died) means the client is
// gone or out of time — that is a request outcome, answered 408, never a
// server error. Anything else gets fallback (500 for analyze, 400 for
// corpus selection errors).
func (s *Server) errorResult(j *job, err error, fallback int) jobResult {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || j.ctx.Err() != nil {
		return jobResult{http.StatusRequestTimeout, wire.ErrorResponse{
			SchemaVersion: wire.SchemaVersion,
			Error:         "request cancelled: " + err.Error(),
		}}
	}
	return jobResult{fallback, wire.ErrorResponse{SchemaVersion: wire.SchemaVersion, Error: err.Error()}}
}

// untripped reports that no verdict in the batch carries budget, deadline,
// or cancellation provenance — such results are budget-class-independent.
func untripped(results []core.Result) bool {
	for i := range results {
		if results[i].Trip != dtest.TripNone {
			return false
		}
	}
	return true
}

func (s *Server) runCorpus(j *job) jobResult {
	req := *j.corpusReq
	req.Options = j.wireOpts.Apply(s.baseOpts)
	req.Options.Budget = wire.BudgetClasses[j.effClass].Budget
	rep, err := exactdep.AnalyzeCorpusRequest(j.ctx, req)
	if err != nil {
		// Options were validated at the handler, so what's left is either a
		// dead request context (mapped to 408 by errorResult) or the
		// client's corpus selection (missing dir, unreadable file, parse
		// error): a bad request, not a server failure.
		return s.errorResult(j, err, http.StatusBadRequest)
	}
	return s.respond(j, rep.Units, rep.Stats, wire.FromCounters(rep.Counters))
}

// respond converts a run's results to the wire response and feeds the
// service counters.
func (s *Server) respond(j *job, urs []corpus.UnitResult, st corpus.Stats, counters wire.Counters) jobResult {
	resp := &wire.AnalyzeResponse{
		SchemaVersion: wire.SchemaVersion,
		BudgetClass:   wire.BudgetClasses[j.effClass].Name,
		Units:         make([]wire.UnitVerdicts, len(urs)),
		Stats:         wire.FromCorpusStats(st),
		Counters:      counters,
	}
	if j.effClass != j.classIdx {
		resp.RequestedClass = wire.BudgetClasses[j.classIdx].Name
		resp.DegradedByLoad = true
	}
	for i := range urs {
		resp.Units[i] = wire.FromUnitResult(&urs[i])
	}
	s.stats.unitsReused.Add(int64(st.UnitsReused))
	s.stats.unitsSolved.Add(int64(st.UnitsSolved))
	s.stats.pairsServed.Add(int64(st.PairsServed))
	s.stats.pairsSolved.Add(int64(st.PairsSolved))
	return jobResult{http.StatusOK, resp}
}
