package server

// HTTP handlers, admission control, and the executor pool. Handlers do all
// client-facing validation (4xx) before admission, so a queued job can only
// fail by analysis outcome — which is never an error: budget and deadline
// trips degrade verdicts to sound Maybe inside the result vocabulary.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"time"

	"exactdep"
	"exactdep/internal/core"
	"exactdep/internal/corpus"
	"exactdep/internal/dtest"
	"exactdep/internal/memo"
	"exactdep/internal/wire"
)

// maxBody bounds a request body (64 MiB holds the LargeCorpus suite many
// times over).
const maxBody = 64 << 20

// Admission thresholds, in queue-fill fraction: at >= 1/2 full the request's
// budget class shrinks one step, at >= 3/4 two steps; a full queue sheds.
// The ladder only ever weakens a class — a tenant never gets more budget
// under load than it asked for.
const (
	shrinkOneNum, shrinkOneDen = 1, 2
	shrinkTwoNum, shrinkTwoDen = 3, 4
)

// job is one admitted request waiting for an executor.
type job struct {
	ctx context.Context

	// Analyze requests: the parsed units.
	units corpus.Mem
	// Corpus requests: the facade request with server-root-resolved paths
	// (nil for analyze requests).
	corpusReq *exactdep.CorpusRequest

	// wireOpts is the client's option override (nil: server base options).
	wireOpts *wire.Options
	// overridden is true when wireOpts changes the base result surface —
	// such requests bypass the warm tier entirely.
	overridden bool

	classIdx int // requested budget class (ladder index)
	effClass int // class after admission shrink; >= classIdx

	reply chan jobResult
}

type jobResult struct {
	status int
	body   any
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	mux.HandleFunc("/v1/corpus", s.handleCorpus)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/statsz", s.handleStatsz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(body)
}

// clientError rejects a request before admission.
func (s *Server) clientError(w http.ResponseWriter, status int, msg string) {
	s.stats.clientErrors.Add(1)
	writeJSON(w, status, wire.ErrorResponse{SchemaVersion: wire.SchemaVersion, Error: msg})
}

// shed rejects an admitted-stage request with 429 + Retry-After.
func (s *Server) shed(w http.ResponseWriter) {
	s.stats.shed.Add(1)
	secs := int(wire.RetryAfter / time.Second)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusTooManyRequests, wire.ErrorResponse{
		SchemaVersion:     wire.SchemaVersion,
		Error:             "service overloaded, retry later",
		RetryAfterSeconds: secs,
	})
}

// admit applies admission control: it sets the job's effective budget class
// from the queue's fill level and enqueues, or reports a shed. Never blocks.
func (s *Server) admit(j *job) bool {
	if s.closing.Load() {
		return false
	}
	depth, capQ := len(s.queue), cap(s.queue)
	shrink := 0
	switch {
	case depth*shrinkTwoDen >= capQ*shrinkTwoNum:
		shrink = 2
	case depth*shrinkOneDen >= capQ*shrinkOneNum:
		shrink = 1
	}
	j.effClass = j.classIdx + shrink
	if last := len(wire.BudgetClasses) - 1; j.effClass > last {
		j.effClass = last
	}
	select {
	case s.queue <- j:
		s.stats.accepted.Add(1)
		if j.effClass > j.classIdx {
			s.stats.degraded.Add(1)
		}
		return true
	default:
		return false
	}
}

// dispatch runs the common post-validation tail of both POST endpoints:
// deadline, admission, and the reply wait.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, j *job, deadlineMillis int64) {
	d := s.maxDeadline
	if deadlineMillis > 0 {
		if cd := time.Duration(deadlineMillis) * time.Millisecond; cd < d {
			d = cd
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	j.ctx = ctx
	j.reply = make(chan jobResult, 1) // buffered: executor never blocks on a gone client

	if !s.admit(j) {
		s.shed(w)
		return
	}
	select {
	case res := <-j.reply:
		writeJSON(w, res.status, res.body)
	case <-r.Context().Done():
		// Client disconnected; the executor sees the cancelled context and
		// replies into the buffer.
	}
}

// decodeInto decodes a JSON body, rejecting unknown schema versions.
func decodeInto(r *http.Request, w http.ResponseWriter, v any, version *int) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return fmt.Errorf("bad request body: %v", err)
	}
	if *version != 0 && *version != wire.SchemaVersion {
		return fmt.Errorf("unsupported schemaVersion %d (server speaks %d)", *version, wire.SchemaVersion)
	}
	return nil
}

// resolveOptions overlays a client option override onto the server base and
// validates it, reporting whether the result surface actually changed.
func (s *Server) resolveOptions(o *wire.Options) (core.Options, bool, error) {
	opts := s.baseOpts
	overridden := false
	if o != nil && *o != wire.FromCoreOptions(s.baseOpts) {
		opts = o.Apply(s.baseOpts)
		overridden = true
		if err := opts.Validate(); err != nil {
			return opts, true, err
		}
	}
	return opts, overridden, nil
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.clientError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req wire.AnalyzeRequest
	if err := decodeInto(r, w, &req, &req.SchemaVersion); err != nil {
		s.clientError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Units) == 0 {
		s.clientError(w, http.StatusBadRequest, "no units in request")
		return
	}
	classIdx, ok := wire.ClassIndex(req.BudgetClass)
	if !ok {
		s.clientError(w, http.StatusBadRequest, fmt.Sprintf("unknown budget class %q", req.BudgetClass))
		return
	}
	if _, overridden, err := s.resolveOptions(req.Options); err != nil {
		s.clientError(w, http.StatusBadRequest, err.Error())
		return
	} else if !overridden {
		req.Options = nil // normalized: identical override == no override
	}
	units := make(corpus.Mem, 0, len(req.Units))
	for i, us := range req.Units {
		name := us.Name
		if name == "" {
			name = "unit" + strconv.Itoa(i)
		}
		u, err := corpus.FromSource(name, us.Source)
		if err != nil {
			s.clientError(w, http.StatusBadRequest, fmt.Sprintf("unit %q: %v", name, err))
			return
		}
		units = append(units, u)
	}
	s.dispatch(w, r, &job{
		units:      units,
		wireOpts:   req.Options,
		overridden: req.Options != nil,
		classIdx:   classIdx,
	}, req.DeadlineMillis)
}

func (s *Server) handleCorpus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.clientError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.cfg.CorpusRoot == "" {
		s.clientError(w, http.StatusNotFound, "corpus endpoint disabled (no corpus root configured)")
		return
	}
	var req wire.CorpusRequest
	if err := decodeInto(r, w, &req, &req.SchemaVersion); err != nil {
		s.clientError(w, http.StatusBadRequest, err.Error())
		return
	}
	classIdx, ok := wire.ClassIndex(req.BudgetClass)
	if !ok {
		s.clientError(w, http.StatusBadRequest, fmt.Sprintf("unknown budget class %q", req.BudgetClass))
		return
	}
	if _, _, err := s.resolveOptions(req.Options); err != nil {
		s.clientError(w, http.StatusBadRequest, err.Error())
		return
	}
	if (req.Dir == "") == (len(req.Files) == 0) {
		s.clientError(w, http.StatusBadRequest, "set exactly one of dir or files")
		return
	}
	fReq := &exactdep.CorpusRequest{}
	if req.Dir != "" {
		if !filepath.IsLocal(req.Dir) {
			s.clientError(w, http.StatusBadRequest, fmt.Sprintf("dir %q escapes the corpus root", req.Dir))
			return
		}
		fReq.Dir = filepath.Join(s.cfg.CorpusRoot, req.Dir)
	}
	for _, f := range req.Files {
		if !filepath.IsLocal(f) {
			s.clientError(w, http.StatusBadRequest, fmt.Sprintf("file %q escapes the corpus root", f))
			return
		}
		fReq.Files = append(fReq.Files, filepath.Join(s.cfg.CorpusRoot, f))
	}
	s.dispatch(w, r, &job{
		corpusReq: fReq,
		wireOpts:  req.Options,
		classIdx:  classIdx,
	}, req.DeadlineMillis)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.closing.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, wire.Health{
		SchemaVersion: wire.SchemaVersion,
		Status:        status,
		UptimeMillis:  time.Since(s.start).Milliseconds(),
	})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, wire.Statsz{
		SchemaVersion: wire.SchemaVersion,
		UptimeMillis:  time.Since(s.start).Milliseconds(),
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		Executors:     s.cfg.Executors,
		Accepted:      s.stats.accepted.Load(),
		Completed:     s.stats.completed.Load(),
		Degraded:      s.stats.degraded.Load(),
		Shed:          s.stats.shed.Load(),
		ClientErrors:  s.stats.clientErrors.Load(),
		StoreUnits:    s.StoreLen(),
		UnitsReused:   s.stats.unitsReused.Load(),
		UnitsSolved:   s.stats.unitsSolved.Load(),
		PairsServed:   s.stats.pairsServed.Load(),
		PairsSolved:   s.stats.pairsSolved.Load(),
	})
}

// executor drains the queue until Shutdown, then finishes whatever is still
// queued (the HTTP server has already stopped admitting by then).
func (s *Server) executor() {
	defer s.execWG.Done()
	for {
		select {
		case j := <-s.queue:
			s.process(j)
		case <-s.execStop:
			for {
				select {
				case j := <-s.queue:
					s.process(j)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) process(j *job) {
	if s.gate != nil {
		<-s.gate
	}
	j.reply <- s.run(j)
	s.stats.completed.Add(1)
}

// pipelineWorkers maps Options.Workers onto the corpus driver's width (the
// same mapping as the facade: 0 serial, negative GOMAXPROCS).
func (s *Server) pipelineWorkers() int {
	w := s.baseOpts.Workers
	switch {
	case w == 0:
		return 1
	case w < 0:
		return 0
	}
	return w
}

// run executes one admitted job and builds its reply.
func (s *Server) run(j *job) jobResult {
	if j.corpusReq != nil {
		return s.runCorpus(j)
	}
	opts := j.wireOpts.Apply(s.baseOpts)
	opts.Budget = wire.BudgetClasses[j.effClass].Budget

	if !j.overridden && j.effClass == s.defaultClass {
		var st corpus.Stats
		// Warm-tier fast path: the incremental driver runs directly against
		// the shared store. storeMu is held across the run — the store is
		// unsynchronized by contract, and the executor pool defaults to 1.
		s.storeMu.Lock()
		d := corpus.NewDriver(opts, s.pipelineWorkers())
		if err := d.SetStore(s.store); err != nil {
			s.storeMu.Unlock()
			return jobResult{http.StatusInternalServerError, wire.ErrorResponse{SchemaVersion: wire.SchemaVersion, Error: err.Error()}}
		}
		res, err := d.RunAll(j.ctx, j.units)
		st = d.Stats
		cs := d.Analyzer().Stats
		if st.UnitsSolved > 0 {
			s.storeDirty.Store(true)
		}
		s.storeMu.Unlock()
		if err != nil {
			return jobResult{http.StatusInternalServerError, wire.ErrorResponse{SchemaVersion: wire.SchemaVersion, Error: err.Error()}}
		}
		return s.respond(j, res, st, wire.FromCounters(cs))
	}

	// Cross-class path: the warm tier still serves fully-exact stored units
	// (exact verdicts hold under every budget class); everything else is
	// solved storelessly so class-scoped Maybe verdicts never leak into the
	// default-class store — except fully-untripped solved units, which are
	// budget-independent and flow back into the tier.
	served := make([]*corpus.StoredUnit, len(j.units))
	fps := make([]memo.Fingerprint, len(j.units))
	if !j.overridden {
		var f corpus.Fingerprinter
		s.storeMu.Lock()
		for i := range j.units {
			fps[i] = j.units[i].Fingerprint(&f)
			if su, ok := s.store.Lookup(fps[i]); ok &&
				len(su.Results) == len(j.units[i].Cands) && su.Cost.Maybe == 0 {
				served[i] = su
			}
		}
		s.storeMu.Unlock()
	}
	var miss corpus.Mem
	for i := range j.units {
		if served[i] == nil {
			miss = append(miss, j.units[i])
		}
	}
	d := corpus.NewDriver(opts, s.pipelineWorkers())
	missURs, err := d.RunAll(j.ctx, miss)
	if err != nil {
		return jobResult{http.StatusInternalServerError, wire.ErrorResponse{SchemaVersion: wire.SchemaVersion, Error: err.Error()}}
	}
	if !j.overridden {
		s.storeMu.Lock()
		for i := range missURs {
			ur := &missURs[i]
			if untripped(ur.Results) {
				s.store.Put(ur.Fingerprint, corpus.ToStored(ur.Name, ur.Results))
				s.storeDirty.Store(true)
			}
		}
		s.storeMu.Unlock()
	}
	urs := make([]corpus.UnitResult, len(j.units))
	st := corpus.Stats{Units: len(j.units), UnitsSolved: d.Stats.UnitsSolved, PairsSolved: d.Stats.PairsSolved}
	mi := 0
	for i := range j.units {
		u := &j.units[i]
		if su := served[i]; su != nil {
			urs[i] = corpus.UnitResult{
				Name:        u.Name,
				Fingerprint: fps[i],
				Reused:      true,
				Results:     corpus.Serve(u.Cands, su),
				Cost:        su.Cost,
				Warnings:    u.Warnings,
			}
			st.UnitsReused++
			st.PairsServed += len(u.Cands)
		} else {
			urs[i] = missURs[mi]
			mi++
		}
	}
	return s.respond(j, urs, st, wire.FromCounters(d.Analyzer().Stats))
}

// untripped reports that no verdict in the batch carries budget, deadline,
// or cancellation provenance — such results are budget-class-independent.
func untripped(results []core.Result) bool {
	for i := range results {
		if results[i].Trip != dtest.TripNone {
			return false
		}
	}
	return true
}

func (s *Server) runCorpus(j *job) jobResult {
	req := *j.corpusReq
	req.Options = j.wireOpts.Apply(s.baseOpts)
	req.Options.Budget = wire.BudgetClasses[j.effClass].Budget
	rep, err := exactdep.AnalyzeCorpusRequest(j.ctx, req)
	if err != nil {
		// Options were validated at the handler, so what's left is the
		// client's corpus selection (missing dir, unreadable file, parse
		// error): a bad request, not a server failure.
		return jobResult{http.StatusBadRequest, wire.ErrorResponse{SchemaVersion: wire.SchemaVersion, Error: err.Error()}}
	}
	return s.respond(j, rep.Units, rep.Stats, wire.FromCounters(rep.Counters))
}

// respond converts a run's results to the wire response and feeds the
// service counters.
func (s *Server) respond(j *job, urs []corpus.UnitResult, st corpus.Stats, counters wire.Counters) jobResult {
	resp := &wire.AnalyzeResponse{
		SchemaVersion: wire.SchemaVersion,
		BudgetClass:   wire.BudgetClasses[j.effClass].Name,
		Units:         make([]wire.UnitVerdicts, len(urs)),
		Stats:         wire.FromCorpusStats(st),
		Counters:      counters,
	}
	if j.effClass != j.classIdx {
		resp.RequestedClass = wire.BudgetClasses[j.classIdx].Name
		resp.DegradedByLoad = true
	}
	for i := range urs {
		resp.Units[i] = wire.FromUnitResult(&urs[i])
	}
	s.stats.unitsReused.Add(int64(st.UnitsReused))
	s.stats.unitsSolved.Add(int64(st.UnitsSolved))
	s.stats.pairsServed.Add(int64(st.PairsServed))
	s.stats.pairsSolved.Add(int64(st.PairsSolved))
	return jobResult{http.StatusOK, resp}
}
