// Package server is the depserve service layer: a long-running stdlib
// net/http daemon serving dependence verdicts over the versioned JSON wire
// API (internal/wire). It composes the pieces the batch front ends already
// use — the corpus driver for scheduling, the fingerprint → verdict store
// as a warm tier shared across requests and restarts, dtest budget classes
// for per-tenant work limits, and context deadlines mapped onto
// AnalyzeAllContext — and adds the one thing a daemon needs that a CLI does
// not: admission control. Under load the bounded queue first shrinks a
// request's budget class (verdicts degrade to sound 'maybe', reported in
// the response) and only sheds with 429 + Retry-After once the queue is
// full. Analysis outcomes are never 5xx: deadlines, cancellations, and
// budget trips all degrade inside the verdict vocabulary.
//
// Request lifecycle (see ARCHITECTURE.md "Service layer"):
//
//	decode → validate (schema, class, options) → parse units →
//	admission (shrink or shed) → queue → executor:
//	  warm-tier probe → solve misses (one corpus-driver batch) →
//	  store-back → reply
//
// The warm tier is a corpus.Store bound to the server's base configuration
// (options signature + default budget class): requests at the default
// class run the incremental driver against it directly; requests at any
// other class (tenant-chosen or admission-degraded) still probe it and are
// served fully-exact stored units — exact verdicts are valid under every
// budget class — but solve the rest storelessly, so class-scoped Maybe
// verdicts never leak across classes. The store is snapshot-loaded on
// boot, saved periodically (Config.SnapshotEvery) and on shutdown, always
// atomically (temp file + rename).
package server

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"exactdep/internal/core"
	"exactdep/internal/corpus"
	"exactdep/internal/wire"
)

// Config configures a Server. The zero value of each field selects the
// documented default.
type Config struct {
	// Options is the base analysis configuration (the result-bytes surface
	// plus Workers, which sizes the per-request corpus pipeline). Budget
	// and StorePath are managed by the server: Budget comes from the
	// request's effective budget class, persistence from StorePath below.
	Options core.Options
	// DefaultClass names the budget class applied when a request does not
	// choose one ("" = "exhaustive", the batch CLI's behavior).
	DefaultClass string
	// QueueDepth bounds the admission queue (0 = 64). Requests beyond the
	// shrink thresholds degrade; requests beyond the queue shed with 429.
	QueueDepth int
	// Executors is the number of goroutines draining the queue (0 = 1).
	// Analysis parallelism within a request comes from Options.Workers;
	// more executors trade per-request latency for throughput.
	Executors int
	// MaxBatch bounds how many queued same-class requests one executor
	// coalesces into a single warm-analyzer batch (0 = 8; 1 disables
	// coalescing). Coalesced requests share one probe/solve/put cycle per
	// job on the class's long-lived analyzer, so a burst pays driver setup
	// once and runs memo-hot after the first job.
	MaxBatch int
	// MaxMemoEntries bounds each warm analyzer's memo tables: when a batch
	// leaves an analyzer above this many entries (summed over its full, eq,
	// and dir tables) the tables are dropped and a fresh memoization epoch
	// starts (0 = 1<<20; negative = never evict). Eviction never changes
	// result bytes — evicted problems are simply re-solved.
	MaxMemoEntries int
	// StorePath persists the warm tier across restarts ("" = in-memory
	// only). Loaded on boot when present (it must match the
	// configuration), saved periodically and on shutdown.
	StorePath string
	// SnapshotEvery is the periodic store-save cadence (0 = only on
	// shutdown). Saves are skipped while the store is clean.
	SnapshotEvery time.Duration
	// MaxDeadline caps every request's analysis wall clock (0 = 60s). A
	// request's own deadlineMillis can only lower it.
	MaxDeadline time.Duration
	// CorpusRoot enables POST /v1/corpus over server-local files under
	// this directory ("" = endpoint disabled).
	CorpusRoot string
}

// Defaults.
const (
	defaultQueueDepth     = 64
	defaultMaxDeadline    = 60 * time.Second
	defaultMaxBatch       = 8
	defaultMaxMemoEntries = 1 << 20
)

// batchSizeBuckets sizes the batch-size histogram: bucket i counts batches
// of i+1 jobs, with the last bucket open-ended (>= batchSizeBuckets jobs).
const batchSizeBuckets = 8

// serverStats are the monotonically increasing service counters surfaced
// by /v1/statsz.
type serverStats struct {
	accepted     atomic.Int64
	completed    atomic.Int64
	degraded     atomic.Int64 // requests shrunk below their requested class
	shed         atomic.Int64 // requests rejected with 429
	clientErrors atomic.Int64 // 4xx before admission
	cancelled    atomic.Int64 // requests whose context died before completion
	unitsReused  atomic.Int64
	unitsSolved  atomic.Int64
	pairsServed  atomic.Int64
	pairsSolved  atomic.Int64

	// Warm-analyzer / coalescing counters (see wire.Statsz for semantics).
	batches       atomic.Int64
	coalescedJobs atomic.Int64
	fpDeduped     atomic.Int64
	crossMemoHits atomic.Int64
	memoEvictions atomic.Int64
	batchSizes    [batchSizeBuckets]atomic.Int64
}

// warmAnalyzer is one budget class's long-lived analysis engine: a
// persistent corpus driver whose analyzer retains its memo tables (L1/L2/
// dir), in-flight singleflight, and worker views across requests, so a
// same-class burst runs memo-hot after its first job. The mutex serializes
// whole executor batches (the driver is not safe for concurrent use);
// executors working different classes overlap freely. jobs counts requests
// served in the current memoization epoch (reset on eviction) — a request
// after the first of an epoch can only hit memo entries some earlier
// request planted.
type warmAnalyzer struct {
	mu     sync.Mutex
	driver *corpus.Driver
	fp     corpus.Fingerprinter
	jobs   int64
}

// Server is the dependence-analysis daemon.
type Server struct {
	cfg          Config
	baseOpts     core.Options // cfg.Options + default-class budget, no StorePath
	defaultClass int          // index into wire.BudgetClasses
	maxDeadline  time.Duration
	memoLimit    int // resolved MaxMemoEntries; 0 = never evict

	queue    chan *job
	execStop chan struct{}
	execWG   sync.WaitGroup

	// warm holds one long-lived analyzer per budget class (indexed like
	// wire.BudgetClasses). Every non-overridden analyze request is served
	// by its effective class's warm analyzer; option-overriding requests
	// get a throwaway driver instead so foreign result surfaces never
	// poison the shared memo tables.
	warm []*warmAnalyzer

	// store is the warm tier; storeMu serializes every probe/put against
	// snapshot clones (corpus.Store itself is unsynchronized by contract).
	store      *corpus.Store
	storeMu    sync.Mutex
	storeDirty atomic.Bool

	httpSrv  *http.Server
	lis      net.Listener
	start    time.Time
	closing  atomic.Bool
	snapStop chan struct{}
	snapWG   sync.WaitGroup
	stats    serverStats

	// gate, when non-nil, is received from before each job is processed —
	// a test hook that holds the executors still while tests fill the
	// queue deterministically.
	gate chan struct{}
}

// New validates the configuration and builds a server, loading the warm
// tier's snapshot when Config.StorePath names an existing file. Bad
// analysis options are rejected with the shared core.Options.Validate
// error shape.
func New(cfg Config) (*Server, error) {
	if err := cfg.Options.Validate(); err != nil {
		return nil, err
	}
	classIdx, ok := wire.ClassIndex(cfg.DefaultClass)
	if !ok {
		return nil, fmt.Errorf("server: unknown default budget class %q", cfg.DefaultClass)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("server: queue depth must be positive, got %d", cfg.QueueDepth)
	}
	if cfg.Executors == 0 {
		cfg.Executors = 1
	}
	if cfg.Executors < 1 {
		return nil, fmt.Errorf("server: executors must be positive, got %d", cfg.Executors)
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = defaultMaxBatch
	}
	if cfg.MaxBatch < 1 {
		return nil, fmt.Errorf("server: max batch must be positive, got %d", cfg.MaxBatch)
	}
	memoLimit := cfg.MaxMemoEntries
	if memoLimit == 0 {
		memoLimit = defaultMaxMemoEntries
	}
	if memoLimit < 0 {
		memoLimit = 0 // never evict
	}
	maxDeadline := cfg.MaxDeadline
	if maxDeadline <= 0 {
		maxDeadline = defaultMaxDeadline
	}

	baseOpts := cfg.Options
	baseOpts.Budget = wire.BudgetClasses[classIdx].Budget
	baseOpts.StorePath = "" // persistence is the server's job, not the driver's

	s := &Server{
		cfg:          cfg,
		baseOpts:     baseOpts,
		defaultClass: classIdx,
		maxDeadline:  maxDeadline,
		memoLimit:    memoLimit,
		queue:        make(chan *job, cfg.QueueDepth),
		execStop:     make(chan struct{}),
		snapStop:     make(chan struct{}),
		start:        time.Now(),
	}

	// One warm analyzer per budget class, storeless on purpose: the server
	// orchestrates its own store traffic around the shared warm tier
	// (probe under storeMu, solve outside it, deferred puts under it), so
	// the driver only ever sees store-missing units.
	s.warm = make([]*warmAnalyzer, len(wire.BudgetClasses))
	for i := range s.warm {
		o := baseOpts
		o.Budget = wire.BudgetClasses[i].Budget
		s.warm[i] = &warmAnalyzer{driver: corpus.NewDriver(o, core.PipelineWorkers(baseOpts.Workers))}
	}

	if cfg.StorePath != "" {
		f, err := os.Open(cfg.StorePath)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			s.store = corpus.NewStore(baseOpts)
		case err != nil:
			return nil, err
		default:
			store, lerr := corpus.LoadStore(f, baseOpts)
			f.Close()
			if lerr != nil {
				return nil, lerr
			}
			s.store = store
		}
	} else {
		s.store = corpus.NewStore(baseOpts)
	}
	return s, nil
}

// Start listens on addr (host:port; port 0 picks a free one), launches the
// executor pool, the snapshot loop, and the HTTP server, and returns the
// bound address.
func (s *Server) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.lis = lis
	s.httpSrv = &http.Server{Handler: s.Handler()}
	for i := 0; i < s.cfg.Executors; i++ {
		s.execWG.Add(1)
		go s.executor()
	}
	if s.cfg.StorePath != "" && s.cfg.SnapshotEvery > 0 {
		s.snapWG.Add(1)
		go s.snapshotLoop()
	}
	go func() {
		if err := s.httpSrv.Serve(lis); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// Serve only fails fatally before Shutdown; surface it on
			// stderr rather than dying silently.
			fmt.Fprintf(os.Stderr, "depserve: http serve: %v\n", err)
		}
	}()
	return lis.Addr().String(), nil
}

// Addr returns the bound listen address (after Start).
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Shutdown drains the service gracefully: new requests are shed with 429,
// in-flight and queued requests complete (bounded by ctx), executors are
// joined, and the warm tier is saved atomically. Idempotent; later calls
// return immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.closing.Swap(true) {
		return nil
	}
	var err error
	if s.httpSrv != nil {
		// Waits for every in-flight handler — and therefore for every
		// queued job, since handlers block on their reply.
		err = s.httpSrv.Shutdown(ctx)
	}
	close(s.execStop)
	s.execWG.Wait()
	close(s.snapStop)
	s.snapWG.Wait()
	if s.cfg.StorePath != "" {
		if serr := s.SaveStore(); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}

// SaveStore snapshots the warm tier to Config.StorePath atomically (temp
// file + rename), skipping the write when nothing changed since the last
// save. No-op without a StorePath.
func (s *Server) SaveStore() error {
	if s.cfg.StorePath == "" {
		return nil
	}
	if !s.storeDirty.Swap(false) {
		return nil
	}
	s.storeMu.Lock()
	clone := s.store.Clone() // shallow per unit; cheap even for large tiers
	s.storeMu.Unlock()

	dir := filepath.Dir(s.cfg.StorePath)
	f, err := os.CreateTemp(dir, ".depserve-store-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := clone.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, s.cfg.StorePath)
}

// snapshotLoop periodically persists the warm tier.
func (s *Server) snapshotLoop() {
	defer s.snapWG.Done()
	t := time.NewTicker(s.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.SaveStore(); err != nil {
				fmt.Fprintf(os.Stderr, "depserve: store snapshot: %v\n", err)
			}
		case <-s.snapStop:
			return
		}
	}
}

// StoreLen returns the warm tier's unit count (for statsz and tests).
func (s *Server) StoreLen() int {
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	return s.store.Len()
}

// memoEntries sums the current memo-table entry counts over every warm
// analyzer (for statsz and tests). Takes each analyzer's mutex in turn, so
// it may wait for an in-flight batch.
func (s *Server) memoEntries() int64 {
	var n int64
	for _, wa := range s.warm {
		wa.mu.Lock()
		n += int64(wa.driver.Analyzer().MemoLen())
		wa.mu.Unlock()
	}
	return n
}
