package core

import (
	"exactdep/internal/dtest"
	"exactdep/internal/memo"
	"exactdep/internal/system"
)

// MemoStats is an introspection snapshot of the analyzer's memo hierarchy,
// rendered by depanalyze -memostats: table occupancy, shard spread, and how
// the lookup traffic split between the per-worker L1 layer and the shared
// table. Lookup/hit totals come from stats.Counters (merged across
// workers); entry and bucket counts are read from the live tables.
type MemoStats struct {
	// With-bounds (full) table occupancy.
	FullEntries, FullBuckets int
	// Without-bounds (GCD) table occupancy.
	EqEntries, EqBuckets int
	// Direction-keyed refinement table occupancy and traffic: one entry per
	// memoized refinement subproblem (full key + pushed directions).
	DirEntries          int
	DirLookups, DirHits int
	// Sharding of the full table: zero Shards means the tables are still in
	// their serial (unsharded) form. ShardLens is the per-shard entry count;
	// ShardMin/ShardMax summarize its spread.
	Shards             int
	ShardMin, ShardMax int
	ShardLens          []int
	// L1 layer of the analyzer that answered serial calls (worker L1s are
	// per-goroutine and folded only into the counters). Zero L1Capacity
	// means the L1 is disabled.
	L1Capacity, L1Entries int
	// Lookup traffic per layer, from the merged counters.
	L1Lookups, L1Hits int
	L2Lookups, L2Hits int
	// DegradedEntries counts full-table entries holding a budget-degraded
	// (Maybe) verdict — cache capacity spent on answers valid only under the
	// current budget class (SaveMemo drops them).
	DegradedEntries int
}

// MemoStats reports the current state of the analyzer's memo hierarchy.
func (a *Analyzer) MemoStats() MemoStats {
	m := MemoStats{
		FullEntries: a.full.Len(),
		EqEntries:   a.eq.Len(),
		DirEntries:  a.dir.Len(),
		DirLookups:  a.Stats.DirLookups,
		DirHits:     a.Stats.DirHits,
		L1Lookups:   a.Stats.L1Lookups,
		L1Hits:      a.Stats.L1Hits,
		L2Lookups:   a.Stats.L2Lookups,
		L2Hits:      a.Stats.L2Hits,
	}
	switch t := a.full.(type) {
	case *memo.ShardedTable[cached]:
		m.FullBuckets = t.Buckets()
		m.Shards = t.NumShards()
		m.ShardLens = t.ShardLens()
		m.ShardMin, m.ShardMax = minMax(m.ShardLens)
	case *memo.Table[cached]:
		m.FullBuckets = t.Buckets()
	}
	switch t := a.eq.(type) {
	case *memo.ShardedTable[system.GCDResult]:
		m.EqBuckets = t.Buckets()
	case *memo.Table[system.GCDResult]:
		m.EqBuckets = t.Buckets()
	}
	if a.l1 != nil {
		m.L1Capacity = a.l1.Cap()
		m.L1Entries = a.l1.Len()
	}
	a.full.Range(func(_ memo.Key, v cached) bool {
		if v.res.Outcome == dtest.Maybe {
			m.DegradedEntries++
		}
		return true
	})
	return m
}

func minMax(xs []int) (lo, hi int) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
