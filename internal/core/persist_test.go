package core

import (
	"bytes"
	"testing"

	"exactdep/internal/dtest"
	"exactdep/internal/lang"
	"exactdep/internal/opt"
)

const persistSrc = `
for i = 1 to 10
  a[i+1] = a[i]
end
for i = 1 to 10
  b[2*i] = b[2*i+1]
end
for i = 1 to 10
  c[i] = c[i+20]
end
`

func TestSaveLoadMemoRoundTrip(t *testing.T) {
	opts := Options{Memoize: true, ImprovedMemo: true,
		DirectionVectors: true, PruneUnused: true, PruneDistance: true}
	prog, err := lang.Parse(persistSrc)
	if err != nil {
		t.Fatal(err)
	}
	unit := opt.Lower(prog)

	warm := New(opts)
	firstRun, err := warm.AnalyzeUnit(unit)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.TotalTests() == 0 {
		t.Fatal("premise: fresh run must run tests")
	}

	var buf bytes.Buffer
	if err := warm.SaveMemo(&buf); err != nil {
		t.Fatal(err)
	}

	cold := New(opts)
	if err := cold.LoadMemo(&buf); err != nil {
		t.Fatal(err)
	}
	secondRun, err := cold.AnalyzeUnit(unit)
	if err != nil {
		t.Fatal(err)
	}
	// Every problem must now come from the cache (or the persisted GCD
	// table): zero fresh tests.
	if cold.Stats.TotalTests() != 0 {
		t.Fatalf("warm-started analyzer ran %d tests, want 0", cold.Stats.TotalTests())
	}
	if len(firstRun) != len(secondRun) {
		t.Fatalf("result count mismatch: %d vs %d", len(firstRun), len(secondRun))
	}
	for i := range firstRun {
		f, s := firstRun[i], secondRun[i]
		if f.Outcome != s.Outcome || f.Exact != s.Exact {
			t.Fatalf("result %d diverged: %+v vs %+v", i, f, s)
		}
		if len(f.Vectors) != len(s.Vectors) {
			t.Fatalf("result %d vectors diverged: %v vs %v", i, f.Vectors, s.Vectors)
		}
		for vi := range f.Vectors {
			if f.Vectors[vi].String() != s.Vectors[vi].String() {
				t.Fatalf("result %d vector %d: %v vs %v", i, vi, f.Vectors[vi], s.Vectors[vi])
			}
		}
	}
}

func TestLoadMemoSchemeMismatch(t *testing.T) {
	warm := New(Options{Memoize: true, ImprovedMemo: true})
	var buf bytes.Buffer
	if err := warm.SaveMemo(&buf); err != nil {
		t.Fatal(err)
	}
	cold := New(Options{Memoize: true}) // simple keys
	if err := cold.LoadMemo(&buf); err == nil {
		t.Fatal("scheme mismatch must be rejected")
	}
}

func TestLoadMemoGarbage(t *testing.T) {
	a := New(Options{Memoize: true})
	if err := a.LoadMemo(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage input must error")
	}
}

func TestPersistedGCDVerdicts(t *testing.T) {
	opts := Options{Memoize: true}
	prog, err := lang.Parse("for i = 1 to 10\n  a[2*i] = a[2*i+1]\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	unit := opt.Lower(prog)
	warm := New(opts)
	if _, err := warm.AnalyzeUnit(unit); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := warm.SaveMemo(&buf); err != nil {
		t.Fatal(err)
	}
	cold := New(opts)
	if err := cold.LoadMemo(&buf); err != nil {
		t.Fatal(err)
	}
	res, err := cold.AnalyzeUnit(unit)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Pair.A.Ref.Kind != r.Pair.B.Ref.Kind && r.Outcome != dtest.Independent {
			t.Fatalf("persisted GCD verdict lost: %+v", r)
		}
	}
}
