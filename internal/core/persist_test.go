package core

import (
	"bytes"
	"encoding/gob"
	"testing"

	"exactdep/internal/dtest"
	"exactdep/internal/lang"
	"exactdep/internal/memo"
	"exactdep/internal/opt"
)

const persistSrc = `
for i = 1 to 10
  a[i+1] = a[i]
end
for i = 1 to 10
  b[2*i] = b[2*i+1]
end
for i = 1 to 10
  c[i] = c[i+20]
end
`

func TestSaveLoadMemoRoundTrip(t *testing.T) {
	opts := Options{Memoize: true, ImprovedMemo: true,
		DirectionVectors: true, PruneUnused: true, PruneDistance: true}
	prog, err := lang.Parse(persistSrc)
	if err != nil {
		t.Fatal(err)
	}
	unit := opt.Lower(prog)

	warm := New(opts)
	firstRun, err := warm.AnalyzeUnit(unit)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.TotalTests() == 0 {
		t.Fatal("premise: fresh run must run tests")
	}

	var buf bytes.Buffer
	if err := warm.SaveMemo(&buf); err != nil {
		t.Fatal(err)
	}

	cold := New(opts)
	if err := cold.LoadMemo(&buf); err != nil {
		t.Fatal(err)
	}
	secondRun, err := cold.AnalyzeUnit(unit)
	if err != nil {
		t.Fatal(err)
	}
	// Every problem must now come from the cache (or the persisted GCD
	// table): zero fresh tests.
	if cold.Stats.TotalTests() != 0 {
		t.Fatalf("warm-started analyzer ran %d tests, want 0", cold.Stats.TotalTests())
	}
	if len(firstRun) != len(secondRun) {
		t.Fatalf("result count mismatch: %d vs %d", len(firstRun), len(secondRun))
	}
	for i := range firstRun {
		f, s := firstRun[i], secondRun[i]
		if f.Outcome != s.Outcome || f.Exact != s.Exact {
			t.Fatalf("result %d diverged: %+v vs %+v", i, f, s)
		}
		if len(f.Vectors) != len(s.Vectors) {
			t.Fatalf("result %d vectors diverged: %v vs %v", i, f.Vectors, s.Vectors)
		}
		for vi := range f.Vectors {
			if f.Vectors[vi].String() != s.Vectors[vi].String() {
				t.Fatalf("result %d vector %d: %v vs %v", i, vi, f.Vectors[vi], s.Vectors[vi])
			}
		}
	}
}

// TestSaveLoadDirTable pins the v2 format's reason for existing: the
// direction-keyed refinement table survives a save/load cycle, so a
// warm-started session's §6 refinement walks start from the persisted
// subproblem verdicts instead of re-running them.
func TestSaveLoadDirTable(t *testing.T) {
	opts := Options{Memoize: true, ImprovedMemo: true,
		DirectionVectors: true, PruneUnused: true, PruneDistance: true}
	prog, err := lang.Parse(persistSrc)
	if err != nil {
		t.Fatal(err)
	}
	unit := opt.Lower(prog)
	warm := New(opts)
	if _, err := warm.AnalyzeUnit(unit); err != nil {
		t.Fatal(err)
	}
	if warm.Stats.UniqueDir == 0 {
		t.Fatal("premise: the refinement walk must populate the dir table")
	}
	var buf bytes.Buffer
	if err := warm.SaveMemo(&buf); err != nil {
		t.Fatal(err)
	}
	cold := New(opts)
	if err := cold.LoadMemo(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := cold.Stats.UniqueDir, warm.Stats.UniqueDir; got != want {
		t.Fatalf("persisted dir table has %d entries, want %d", got, want)
	}
	// The restored entries must actually serve refinement subproblems:
	// bypass the full table by looking the subproblems up through a fresh
	// run of the same unit on an analyzer whose *full* table is empty.
	fresh := New(opts)
	var doc savedTables
	doc.Version = memoFileVersion
	doc.Improved = true
	warm.dir.Range(func(k memo.Key, v dtest.Result) bool {
		doc.Dir = append(doc.Dir, savedDir{Key: append([]int64(nil), k...),
			Outcome: int(v.Outcome), Exact: v.Exact, Kind: int(v.Kind)})
		return true
	})
	var dirOnly bytes.Buffer
	if err := gob.NewEncoder(&dirOnly).Encode(&doc); err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadMemo(&dirOnly); err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.AnalyzeUnit(unit); err != nil {
		t.Fatal(err)
	}
	if fresh.Stats.DirHits == 0 {
		t.Fatal("restored dir table served no refinement subproblems")
	}
}

// TestLoadMemoVersion1 pins backward compatibility: a version-1 snapshot
// (full+eq only, no Dir section) still loads.
func TestLoadMemoVersion1(t *testing.T) {
	warm := New(Options{Memoize: true, ImprovedMemo: true})
	prog, err := lang.Parse(persistSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.AnalyzeUnit(opt.Lower(prog)); err != nil {
		t.Fatal(err)
	}
	var doc savedTables
	doc.Version = 1
	doc.Improved = true
	warm.full.Range(func(k memo.Key, v cached) bool {
		if v.res.Outcome == dtest.Maybe {
			return true
		}
		doc.Full = append(doc.Full, savedEntry{Key: append([]int64(nil), k...),
			Outcome: int(v.res.Outcome), Exact: v.res.Exact, Kind: int(v.res.Kind)})
		return true
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&doc); err != nil {
		t.Fatal(err)
	}
	cold := New(Options{Memoize: true, ImprovedMemo: true})
	if err := cold.LoadMemo(&buf); err != nil {
		t.Fatalf("version-1 snapshot must load: %v", err)
	}
	if cold.Stats.UniqueFull == 0 {
		t.Fatal("version-1 full entries were dropped")
	}
	if cold.Stats.UniqueDir != 0 {
		t.Fatal("version-1 snapshot cannot carry dir entries")
	}
	// An unknown future version must still be rejected.
	doc.Version = memoFileVersion + 1
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(&doc); err != nil {
		t.Fatal(err)
	}
	if err := cold.LoadMemo(&buf); err == nil {
		t.Fatal("future version must be rejected")
	}
}

func TestLoadMemoSchemeMismatch(t *testing.T) {
	warm := New(Options{Memoize: true, ImprovedMemo: true})
	var buf bytes.Buffer
	if err := warm.SaveMemo(&buf); err != nil {
		t.Fatal(err)
	}
	cold := New(Options{Memoize: true}) // simple keys
	if err := cold.LoadMemo(&buf); err == nil {
		t.Fatal("scheme mismatch must be rejected")
	}
}

func TestLoadMemoGarbage(t *testing.T) {
	a := New(Options{Memoize: true})
	if err := a.LoadMemo(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage input must error")
	}
}

func TestPersistedGCDVerdicts(t *testing.T) {
	opts := Options{Memoize: true}
	prog, err := lang.Parse("for i = 1 to 10\n  a[2*i] = a[2*i+1]\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	unit := opt.Lower(prog)
	warm := New(opts)
	if _, err := warm.AnalyzeUnit(unit); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := warm.SaveMemo(&buf); err != nil {
		t.Fatal(err)
	}
	cold := New(opts)
	if err := cold.LoadMemo(&buf); err != nil {
		t.Fatal(err)
	}
	res, err := cold.AnalyzeUnit(unit)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Pair.A.Ref.Kind != r.Pair.B.Ref.Kind && r.Outcome != dtest.Independent {
			t.Fatalf("persisted GCD verdict lost: %+v", r)
		}
	}
}
