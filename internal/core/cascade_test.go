package core_test

// Tests for the analyzer's cascade-pipeline wiring: configuration selection
// via Options.Cascade, the deferred error for unknown names, and the
// per-stage Table 6 counters surviving the concurrent merge.

import (
	"strings"
	"testing"

	"exactdep/internal/core"
	"exactdep/internal/dtest"
	"exactdep/internal/workload"
)

var cascadeKinds = []dtest.Kind{
	dtest.KindSVPC, dtest.KindAcyclic, dtest.KindLoopResidue, dtest.KindFourierMotzkin,
}

// TestCascadeOptionFMOnly cross-validates the fm-only configuration at the
// analyzer level: on every candidate both configurations answer exactly, the
// verdicts must agree, and the stage counters must show that fm-only never
// consulted a cheap test.
func TestCascadeOptionFMOnly(t *testing.T) {
	cands := suiteCandidates(t, false)
	def := core.New(core.Options{})
	fm := core.New(core.Options{Cascade: "fm-only"})
	compared := 0
	for i, c := range cands {
		rd, err := def.AnalyzeCandidate(c)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := fm.AnalyzeCandidate(c)
		if err != nil {
			t.Fatal(err)
		}
		if !rd.Exact || !rf.Exact {
			continue // FM hit its caps, or the pair is unanalyzable exactly
		}
		if rd.Outcome != rf.Outcome {
			t.Fatalf("candidate %d: default cascade %v, fm-only %v", i, rd.Outcome, rf.Outcome)
		}
		compared++
	}
	if compared < 100 {
		t.Fatalf("only %d comparable candidates — suite drifted", compared)
	}
	for _, k := range []dtest.Kind{dtest.KindSVPC, dtest.KindAcyclic, dtest.KindLoopResidue} {
		if n := fm.Stats.ConsultedCount(k); n != 0 {
			t.Errorf("fm-only analyzer consulted %v %d times", k, n)
		}
	}
	if fm.Stats.ConsultedCount(dtest.KindFourierMotzkin) == 0 {
		t.Error("fm-only analyzer never consulted Fourier–Motzkin")
	}
	if def.Stats.ConsultedCount(dtest.KindSVPC) == 0 {
		t.Error("default analyzer never consulted SVPC")
	}
}

// TestCascadeOptionInvalid: an unknown configuration name surfaces as an
// error on first use (core.New cannot return one), from both entry points.
func TestCascadeOptionInvalid(t *testing.T) {
	s, ok := workload.ProgramByName("TI")
	if !ok {
		t.Fatal("TI missing")
	}
	cands, err := workload.Candidates(s, false)
	if err != nil {
		t.Fatal(err)
	}
	a := core.New(core.Options{Cascade: "bogus"})
	if _, err := a.AnalyzeCandidate(cands[0]); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("AnalyzeCandidate error = %v, want one naming the bad configuration", err)
	}
	b := core.New(core.Options{Cascade: "bogus"})
	if _, err := b.AnalyzeAll(cands, 4); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("AnalyzeAll error = %v, want one naming the bad configuration", err)
	}
}

// TestStageCountersDeterministicWithoutMemo pins the per-worker delta merge:
// without memoization every candidate is computed fresh regardless of
// scheduling, so the merged per-stage consulted/decided counters must equal
// the serial run's exactly, at any worker count.
func TestStageCountersDeterministicWithoutMemo(t *testing.T) {
	opts := core.Options{DirectionVectors: true, PruneUnused: true, PruneDistance: true}
	cands := suiteCandidates(t, false)

	serial := core.New(opts)
	if _, err := serial.AnalyzeAll(cands, 1); err != nil {
		t.Fatal(err)
	}
	if serial.Stats.ConsultedCount(dtest.KindSVPC) == 0 {
		t.Fatal("serial run consulted nothing — counters not wired")
	}
	for _, workers := range []int{2, 8} {
		par := core.New(opts)
		if _, err := par.AnalyzeAll(cands, workers); err != nil {
			t.Fatal(err)
		}
		for _, k := range cascadeKinds {
			if got, want := par.Stats.ConsultedCount(k), serial.Stats.ConsultedCount(k); got != want {
				t.Errorf("workers=%d: %v consulted %d, serial %d", workers, k, got, want)
			}
			if got, want := par.Stats.DecidedCount(k), serial.Stats.DecidedCount(k); got != want {
				t.Errorf("workers=%d: %v decided %d, serial %d", workers, k, got, want)
			}
		}
	}
}
