package core

import (
	"testing"

	"exactdep/internal/dtest"
	"exactdep/internal/ir"
	"exactdep/internal/lang"
	"exactdep/internal/opt"
)

func analyze(t *testing.T, src string, opts Options) (*Analyzer, []Result) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a := New(opts)
	res, err := a.AnalyzeUnit(opt.Lower(prog))
	if err != nil {
		t.Fatal(err)
	}
	return a, res
}

func TestPaperIntroExamples(t *testing.T) {
	// The two loops from the paper's introduction.
	_, res := analyze(t, `
for i = 1 to 10
  a[i] = a[i+10] + 3
end
`, Options{})
	// pairs: (read a[i+10], write a[i]) and write self-pair
	for _, r := range res {
		sameStmt := r.Pair.A.Ref.Stmt == r.Pair.B.Ref.Stmt &&
			r.Pair.A.Ref.Kind == r.Pair.B.Ref.Kind
		if sameStmt {
			if r.Outcome != dtest.Dependent {
				t.Fatalf("write self-pair must depend (=): %+v", r)
			}
			continue
		}
		if r.Outcome != dtest.Independent || !r.Exact {
			t.Fatalf("a[i] vs a[i+10] must be independent: %+v", r)
		}
	}

	_, res2 := analyze(t, `
for i = 1 to 10
  a[i+1] = a[i] + 3
end
`, Options{})
	foundDep := false
	for _, r := range res2 {
		if r.Pair.A.Ref.Kind != r.Pair.B.Ref.Kind && r.Outcome == dtest.Dependent {
			foundDep = true
		}
	}
	if !foundDep {
		t.Fatal("a[i+1] vs a[i] must be dependent")
	}
}

func TestStatsTable1Shape(t *testing.T) {
	a, _ := analyze(t, `
a[3] = a[4]
for i = 1 to 10
  b[2*i] = b[2*i+1]
  c[i] = c[i+20]
end
`, Options{})
	s := &a.Stats
	if s.Constant != 3 { // (w3,r4): differ... wait: write a[3], read a[4]
		// pairs among a-refs: (r4,w3) const-differ, (w3,w3) const-equal →
		// plus... recount below
		t.Logf("constant = %d", s.Constant)
	}
	if s.GCDIndependent == 0 {
		t.Error("b[2i] vs b[2i+1] must be GCD-independent")
	}
	if s.TestCount(dtest.KindSVPC) == 0 {
		t.Error("c[i] vs c[i+20] must reach SVPC")
	}
	if s.TotalTests() != s.TestCount(dtest.KindSVPC) {
		t.Errorf("only SVPC expected: %+v", s.Tests)
	}
}

func TestMemoizationReducesTests(t *testing.T) {
	src := `
for i = 1 to 10
  a[i] = a[i+1]
end
for j = 1 to 10
  a[j] = a[j+1]
end
`
	plain, _ := analyze(t, src, Options{})
	memod, _ := analyze(t, src, Options{Memoize: true})
	if plain.Stats.TotalTests() <= memod.Stats.TotalTests() {
		t.Fatalf("memoization must cut tests: %d vs %d",
			plain.Stats.TotalTests(), memod.Stats.TotalTests())
	}
	if memod.Stats.FullHits == 0 {
		t.Fatal("expected full-table hits")
	}
	// verdicts must agree regardless of memoization
	if plain.Stats.Independent != memod.Stats.Independent ||
		plain.Stats.Dependent != memod.Stats.Dependent {
		t.Fatalf("verdicts diverge: plain %+v memo %+v", plain.Stats, memod.Stats)
	}
}

func TestImprovedMemoCollapsesMore(t *testing.T) {
	// the paper's (a)/(b) example: same inner pattern under different
	// unused outer indices.
	src := `
for i = 1 to 10
  for j = 1 to 10
    a[i+10] = a[i] + 3
  end
end
for i = 1 to 10
  for j = 1 to 10
    a[j+10] = a[j] + 3
  end
end
`
	simple, _ := analyze(t, src, Options{Memoize: true})
	improved, _ := analyze(t, src, Options{Memoize: true, ImprovedMemo: true})
	if improved.Stats.UniqueFull >= simple.Stats.UniqueFull {
		t.Fatalf("improved scheme must have fewer unique cases: %d vs %d",
			improved.Stats.UniqueFull, simple.Stats.UniqueFull)
	}
	if simple.Stats.Independent != improved.Stats.Independent {
		t.Fatal("schemes must agree on verdicts")
	}
}

func TestDirectionVectors(t *testing.T) {
	a, res := analyze(t, `
for i = 1 to 10
  a[i+1] = a[i]
end
`, Options{DirectionVectors: true, PruneUnused: true, PruneDistance: true})
	var flow *Result
	for i := range res {
		r := &res[i]
		if r.Pair.A.Ref.Kind != r.Pair.B.Ref.Kind {
			flow = r
		}
	}
	if flow == nil || flow.Outcome != dtest.Dependent {
		t.Fatalf("flow dependence missing: %+v", res)
	}
	if len(flow.Vectors) != 1 || flow.Vectors[0].String() != "(<)" {
		t.Fatalf("vectors = %v", flow.Vectors)
	}
	if len(flow.Distances) != 1 || flow.Distances[0].Value != 1 {
		t.Fatalf("distances = %v", flow.Distances)
	}
	if a.Stats.Vectors == 0 {
		t.Fatal("vector counter not updated")
	}
}

func TestDirectionVectorPruningCounters(t *testing.T) {
	src := `
for i = 1 to 10
  for j = 1 to 10
    a[j] = a[j+1]
  end
end
`
	unpruned, _ := analyze(t, src, Options{DirectionVectors: true})
	pruned, _ := analyze(t, src, Options{DirectionVectors: true, PruneUnused: true, PruneDistance: true})
	if pruned.Stats.TotalDirTests() >= unpruned.Stats.TotalDirTests() {
		t.Fatalf("pruning must cut direction tests: %d vs %d",
			pruned.Stats.TotalDirTests(), unpruned.Stats.TotalDirTests())
	}
}

func TestSymbolicAnalysis(t *testing.T) {
	// §8: the symbolic pair a[i+n] vs a[i+2n+1] is dependent (choose
	// n = i - i' - 1 appropriately: i + n = i' + 2n + 1 → n = i - i' - 1;
	// e.g. i = 2, i' = 1, n = 0 — wait that gives write a[2] read a[2]: yes
	// dependent).
	a, res := analyze(t, `
read(n)
for i = 1 to 10
  a[i+n] = a[i+2*n+1] + 3
end
`, Options{})
	var flow *Result
	for i := range res {
		if res[i].Pair.A.Ref.Kind != res[i].Pair.B.Ref.Kind {
			flow = &res[i]
		}
	}
	if flow == nil {
		t.Fatal("missing flow pair")
	}
	if flow.Outcome != dtest.Dependent || !flow.Exact {
		t.Fatalf("symbolic pair must be exactly dependent: %+v", flow)
	}
	if a.Stats.Unknown != 0 {
		t.Fatalf("no unknowns expected: %+v", a.Stats)
	}
}

func TestSymbolicIndependent(t *testing.T) {
	// a[2i + 2n] vs a[2i + 2n + 1]: parity differs for every n.
	_, res := analyze(t, `
read(n)
for i = 1 to 10
  a[2*i+2*n] = a[2*i+2*n+1]
end
`, Options{})
	for _, r := range res {
		if r.Pair.A.Ref.Kind != r.Pair.B.Ref.Kind {
			if r.Outcome != dtest.Independent || r.DecidedBy != ByGCD {
				t.Fatalf("parity pair must be GCD-independent: %+v", r)
			}
		}
	}
}

func TestAnalyzePairDirect(t *testing.T) {
	nest := &ir.Nest{
		Label: "direct",
		Loops: []ir.Loop{{Index: "i", Lower: ir.NewConst(1), Upper: ir.NewConst(10)}},
	}
	w := ir.Ref{Array: "a", Subscripts: []ir.Expr{ir.NewConst(7)}, Kind: ir.Write, Depth: 1}
	r := ir.Ref{Array: "a", Subscripts: []ir.Expr{ir.NewConst(8)}, Kind: ir.Read, Depth: 1}
	a := New(Options{})
	res, err := a.AnalyzePair(nest.Pair(w, r))
	if err != nil {
		t.Fatal(err)
	}
	if res.DecidedBy != ByConstant || res.Outcome != dtest.Independent {
		t.Fatalf("%+v", res)
	}
}

func TestCacheVerdictTallied(t *testing.T) {
	src := `
for i = 1 to 10
  a[i] = a[i+20]
end
for j = 1 to 10
  a[j] = a[j+20]
end
`
	a, _ := analyze(t, src, Options{Memoize: true})
	// both flow pairs independent; one via test, one via cache
	if a.Stats.Independent < 2 {
		t.Fatalf("cache-path verdicts must be tallied: %+v", a.Stats)
	}
}

func TestCachedVectorsRemapAcrossNesting(t *testing.T) {
	// Under the improved scheme, a[j+1]=a[j] inside an unused i-loop shares
	// its key with the plain single-loop case. The cached vectors must be
	// re-expanded onto each pair's own loop levels.
	src := `
for j = 1 to 10
  a[j+1] = a[j]
end
for i = 1 to 10
  for j = 1 to 10
    b[j+1] = b[j]
  end
end
`
	a, res := analyze(t, src, Options{
		Memoize: true, ImprovedMemo: true,
		DirectionVectors: true, PruneUnused: true, PruneDistance: true,
	})
	if a.Stats.FullHits == 0 {
		t.Fatal("expected the nested case to hit the cache")
	}
	for _, r := range res {
		if r.Pair.A.Ref.Kind == r.Pair.B.Ref.Kind {
			continue // self/output pairs not of interest here
		}
		switch r.Pair.A.Ref.Array {
		case "a":
			if len(r.Vectors) != 1 || r.Vectors[0].String() != "(<)" {
				t.Fatalf("a vectors = %v", r.Vectors)
			}
		case "b":
			if len(r.Vectors) != 1 || r.Vectors[0].String() != "(*, <)" {
				t.Fatalf("b vectors = %v (cache remap broken)", r.Vectors)
			}
			if len(r.Distances) != 1 || r.Distances[0].Level != 1 || r.Distances[0].Value != 1 {
				t.Fatalf("b distances = %v", r.Distances)
			}
		}
	}
}

func TestSymmetricMemo(t *testing.T) {
	// a[i] vs a[i-1] and its mirror b[i-1] vs b[i]: with SymmetricMemo the
	// second pair hits the first's entry and the direction flips.
	src := `
for i = 1 to 10
  a[i] = a[i-1]
end
for i = 1 to 10
  b[i-1] = b[i]
end
`
	sym, res := analyze(t, src, Options{
		Memoize: true, ImprovedMemo: true, SymmetricMemo: true,
		DirectionVectors: true, PruneUnused: true, PruneDistance: true,
	})
	if sym.Stats.FullHits == 0 {
		t.Fatalf("mirrored pair must hit the cache: %+v", sym.Stats)
	}
	var aVec, bVec string
	var aDist, bDist int64
	for _, r := range res {
		if r.Pair.A.Ref.Kind == r.Pair.B.Ref.Kind {
			continue
		}
		if len(r.Vectors) != 1 || len(r.Distances) != 1 {
			t.Fatalf("unexpected vectors for %v: %v %v", r.Pair, r.Vectors, r.Distances)
		}
		switch r.Pair.A.Ref.Array {
		case "a":
			aVec, aDist = r.Vectors[0].String(), r.Distances[0].Value
		case "b":
			bVec, bDist = r.Vectors[0].String(), r.Distances[0].Value
			if r.DecidedBy != ByCache {
				t.Fatalf("b pair should be a symmetric cache hit: %+v", r)
			}
		}
	}
	if aVec != "(<)" || aDist != 1 {
		t.Fatalf("a pair: %s dist %d", aVec, aDist)
	}
	if bVec != "(>)" || bDist != -1 {
		t.Fatalf("b pair must mirror to (>) dist -1, got %s dist %d", bVec, bDist)
	}

	// Without SymmetricMemo both pairs are analyzed fresh.
	plain, _ := analyze(t, src, Options{Memoize: true, ImprovedMemo: true,
		DirectionVectors: true, PruneUnused: true, PruneDistance: true})
	if plain.Stats.UniqueFull <= sym.Stats.UniqueFull {
		t.Fatalf("symmetric scheme must store fewer unique cases: %d vs %d",
			sym.Stats.UniqueFull, plain.Stats.UniqueFull)
	}
}

func TestResetStats(t *testing.T) {
	a, _ := analyze(t, "for i = 1 to 5\n  a[i] = a[i+1]\nend\n", Options{Memoize: true})
	if a.Stats.Pairs == 0 {
		t.Fatal("no pairs analyzed")
	}
	a.ResetStats()
	if a.Stats.Pairs != 0 || a.Stats.TotalTests() != 0 {
		t.Fatal("ResetStats did not clear")
	}
}
