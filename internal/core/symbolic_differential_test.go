package core

import (
	"math/rand"
	"testing"

	"exactdep/internal/dtest"
	"exactdep/internal/ir"
)

// Symbolic soundness differential: with a loop-invariant unknown n in the
// subscripts or bounds, the analyzer must treat n as unbounded. Any
// "independent" verdict therefore claims no conflict exists for ANY n; we
// refute-test that by brute-forcing a sample of concrete n values. (The
// converse direction — analyzer "dependent" — cannot be checked against a
// bounded enumeration, since the witnessing n may be outside the sample.)

func randSymbolicNest(rng *rand.Rand) ir.Pair {
	depth := 1 + rng.Intn(2)
	names := []string{"i", "j"}[:depth]
	loops := make([]ir.Loop, depth)
	for d := 0; d < depth; d++ {
		lo := int64(rng.Intn(3))
		hi := lo + int64(rng.Intn(4))
		loops[d] = ir.Loop{Index: names[d], Lower: ir.NewConst(lo), Upper: ir.NewConst(hi)}
		if rng.Intn(5) == 0 {
			// symbolic upper bound
			loops[d].Upper = ir.NewVar("n")
		}
	}
	mkSubs := func() []ir.Expr {
		e := ir.NewConst(int64(rng.Intn(5) - 2))
		for _, v := range names {
			if rng.Intn(2) == 0 {
				e = e.Add(ir.NewTerm(v, int64(rng.Intn(5)-2)))
			}
		}
		if rng.Intn(2) == 0 {
			e = e.Add(ir.NewTerm("n", int64(rng.Intn(5)-2)))
		}
		return []ir.Expr{e}
	}
	nest := &ir.Nest{Label: "sym", Loops: loops, Symbols: []string{"n"}}
	a := ir.Ref{Array: "a", Subscripts: mkSubs(), Kind: ir.Write, Depth: depth}
	b := ir.Ref{Array: "a", Subscripts: mkSubs(), Kind: ir.Read, Depth: depth}
	nest.Refs = []ir.Ref{a, b}
	return nest.Pair(a, b)
}

// conflictExistsFor checks by enumeration whether a conflict exists for a
// concrete value of n.
func conflictExistsFor(p ir.Pair, n int64) bool {
	loops := p.A.Loops
	found := false
	var iters []map[string]int64
	env := map[string]int64{"n": n}
	var walk func(d int)
	walk = func(d int) {
		if d == len(loops) {
			cp := map[string]int64{}
			for k, v := range env {
				cp[k] = v
			}
			iters = append(iters, cp)
			return
		}
		lo, ok1 := loops[d].Lower.Eval(env)
		hi, ok2 := loops[d].Upper.Eval(env)
		if !ok1 || !ok2 {
			panic("unexpected unbounded loop")
		}
		for v := lo; v <= hi; v++ {
			env[loops[d].Index] = v
			walk(d + 1)
		}
		delete(env, loops[d].Index)
	}
	walk(0)
	for _, ea := range iters {
		ea["n"] = n
		for _, eb := range iters {
			eb["n"] = n
			va, _ := p.A.Ref.Subscripts[0].Eval(ea)
			vb, _ := p.B.Ref.Subscripts[0].Eval(eb)
			if va == vb {
				found = true
			}
		}
	}
	return found
}

func TestSymbolicSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	a := New(Options{DirectionVectors: true, PruneUnused: true, PruneDistance: true})
	checked := 0
	for iter := 0; iter < 800; iter++ {
		pair := randSymbolicNest(rng)
		res, err := a.AnalyzePair(pair)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if res.Outcome != dtest.Independent {
			continue
		}
		checked++
		for n := int64(-6); n <= 6; n++ {
			if conflictExistsFor(pair, n) {
				t.Fatalf("iter %d: analyzer claims independence for all n, but n=%d conflicts\n%s",
					iter, n, describe(pair))
			}
		}
	}
	if checked < 30 {
		t.Fatalf("only %d independent symbolic samples — generator drifted", checked)
	}
}
