package core

import (
	"exactdep/internal/depvec"
	"exactdep/internal/dtest"
)

// dirMemo adapts the analyzer's direction-keyed refinement table to
// depvec.Memo, which is how the up-to-3^d subproblems of Burke–Cytron
// refinement reach the memo hierarchy the flat cascade already uses (the
// paper's §5 claim covers these tests too). The key is the encoder's
// still-live full-problem key plus the canonical direction segment
// (memo.Encoder.EncodeDirections), so subproblems hit across pairs sharing
// a canonical problem and across re-analyses of a warm analyzer; concurrent
// workers sharing the table dedup key-equal refinement work mid-flight.
//
// Storage policy mirrors the candidate-level cache: clock-tripped and
// cancelled verdicts are never stored (scheduling-dependent), the witness
// is stripped (it aliases the producing pipeline's scratch), and — because
// an analyzer's budget class is fixed for its lifetime and the table lives
// in the analyzer — count-tripped Maybe entries never mix across classes.
// Subproblems whose pushed directions sit on a level the improved key
// dropped are not canonically representable; EncodeDirections reports that
// and both methods decline, so such tests simply run uncached.
type dirMemo struct {
	a *Analyzer
}

var _ depvec.Memo = dirMemo{}

func (m dirMemo) Lookup(dirs []byte) (dtest.Result, bool) {
	a := m.a
	key, ok := a.enc.EncodeDirections(dirs)
	if !ok {
		return dtest.Result{}, false
	}
	a.Stats.DirLookups++
	if a.l1dir != nil {
		if r, ok := a.l1dir.Lookup(key); ok {
			a.Stats.DirHits++
			return r, true
		}
	}
	if stored, r, ok := a.dir.LookupStored(key); ok {
		a.Stats.DirHits++
		if a.l1dir != nil {
			a.l1dir.Store(stored, r)
		}
		return r, true
	}
	return dtest.Result{}, false
}

func (m dirMemo) Store(dirs []byte, r dtest.Result) {
	a := m.a
	if !cacheableTrip(r.Trip) {
		return
	}
	key, ok := a.enc.EncodeDirections(dirs)
	if !ok {
		return
	}
	r.Witness = nil
	ck := key.Clone()
	if a.dirBatch != nil {
		a.dirBatch.Add(ck, r)
	} else {
		a.dir.Insert(ck, r)
		a.Stats.UniqueDir = a.dir.Len()
	}
	if a.l1dir != nil {
		a.l1dir.Store(ck, r)
	}
}
