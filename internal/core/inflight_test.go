package core_test

// External test package, like concurrent_test.go: the hammer drives the
// concurrent driver over internal/workload's suite, which imports core.

import (
	"fmt"
	"testing"

	"exactdep/internal/core"
	"exactdep/internal/stats"
	"exactdep/internal/workload"
)

// TestAnalyzeAllInflightSingleSolve is the end-to-end hammer for the
// singleflight layer: a cold concurrent run over a highly repetitive
// workload (SR: 1,290 candidates, 14 unique patterns) must run the cascade
// exactly as many times as the serial pass does — one solve per unique
// canonical problem, never a duplicate from two workers racing the same key
// — while producing byte-identical results. Repeated with several worker
// counts and rounds for schedule variety; make race runs it under the race
// detector.
func TestAnalyzeAllInflightSingleSolve(t *testing.T) {
	s, ok := workload.ProgramByName("SR")
	if !ok {
		t.Fatal("SR missing from the suite")
	}
	cands, err := workload.Candidates(s, false)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Memoize: true, ImprovedMemo: true, DirectionVectors: true,
		PruneUnused: true, PruneDistance: true}

	serial := core.New(opts)
	want, err := serial.AnalyzeAll(cands, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantTests := serial.Stats.TotalTests()
	if wantTests == 0 {
		t.Fatal("workload produced no cascade solves; hammer is vacuous")
	}

	for _, workers := range []int{2, 4, 8} {
		for round := 0; round < 3; round++ {
			par := core.New(opts)
			got, err := par.AnalyzeAll(cands, workers)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
				t.Fatalf("workers=%d round=%d: results differ from serial", workers, round)
			}
			if pt := par.Stats.TotalTests(); pt != wantTests {
				t.Fatalf("workers=%d round=%d: %d cascade solves, serial did %d — "+
					"singleflight failed to dedup a racing solve", workers, round, pt, wantTests)
			}
			checkHitInvariant(t, &par.Stats, workers, round)
		}
	}
}

// checkHitInvariant asserts the layered-hit accounting contract:
// L1Hits + L2Hits + InflightAdopts == FullHits, and with the L1 enabled
// every full lookup went through it first.
func checkHitInvariant(t *testing.T, c *stats.Counters, workers, round int) {
	t.Helper()
	if c.L1Hits+c.L2Hits+c.InflightAdopts != c.FullHits {
		t.Fatalf("workers=%d round=%d: L1 %d + L2 %d + adopts %d != full hits %d",
			workers, round, c.L1Hits, c.L2Hits, c.InflightAdopts, c.FullHits)
	}
	if c.L1Lookups != c.FullLookups {
		t.Fatalf("workers=%d round=%d: L1 lookups %d != full lookups %d",
			workers, round, c.L1Lookups, c.FullLookups)
	}
	if c.InflightAdopts > c.InflightWaits {
		t.Fatalf("workers=%d round=%d: adopts %d > waits %d",
			workers, round, c.InflightAdopts, c.InflightWaits)
	}
}

// TestAnalyzeAllInflightWarmReRun: re-running a warm analyzer must serve
// everything from the cache layers — no new solves, no leader elections
// surviving as duplicate work — and still match the cold results.
func TestAnalyzeAllInflightWarmReRun(t *testing.T) {
	s, ok := workload.ProgramByName("SR")
	if !ok {
		t.Fatal("SR missing from the suite")
	}
	cands, err := workload.Candidates(s, false)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Memoize: true, ImprovedMemo: true}
	a := core.New(opts)
	cold, err := a.AnalyzeAll(cands, 4)
	if err != nil {
		t.Fatal(err)
	}
	coldTests := a.Stats.TotalTests()
	a.ResetStats()
	warm, err := a.AnalyzeAll(cands, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.TotalTests() != 0 {
		t.Fatalf("warm re-run ran %d cascade solves, want 0 (cold run did %d)",
			a.Stats.TotalTests(), coldTests)
	}
	for i := range warm {
		if warm[i].Outcome != cold[i].Outcome {
			t.Fatalf("pair %d: warm outcome %v differs from cold %v", i, warm[i].Outcome, cold[i].Outcome)
		}
	}
	checkHitInvariant(t, &a.Stats, 4, 0)
}
