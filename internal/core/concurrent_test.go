package core_test

// External test package: the determinism tests drive the concurrent driver
// over internal/workload's suite, which itself imports core.

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"exactdep/internal/core"
	"exactdep/internal/refs"
	"exactdep/internal/stats"
	"exactdep/internal/workload"
)

// suiteCandidates gathers every candidate pair of the 13-program suite.
func suiteCandidates(t testing.TB, symbolic bool) []refs.Candidate {
	t.Helper()
	var all []refs.Candidate
	for _, s := range workload.Programs() {
		cs, err := workload.Candidates(s, symbolic)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, cs...)
	}
	return all
}

// deterministicTallies extracts the counters that must not depend on worker
// count or scheduling: the verdict tallies and the unique-problem counts.
// (Hit counts and per-test counts legitimately vary: whether a duplicated
// pattern hits the cache or recomputes depends on which worker got there
// first.)
func deterministicTallies(c *stats.Counters) map[string]int {
	return map[string]int{
		"Pairs":          c.Pairs,
		"Constant":       c.Constant,
		"GCDIndependent": c.GCDIndependent,
		"Independent":    c.Independent,
		"Dependent":      c.Dependent,
		"Unknown":        c.Unknown,
		"FullLookups":    c.FullLookups,
		"UniqueFull":     c.UniqueFull,
		"UniqueEq":       c.UniqueEq,
	}
}

// TestAnalyzeAllDeterministic asserts the issue's core contract: AnalyzeAll
// with 1 worker and with N workers produce identical results (byte for
// byte) and identical merged verdict tallies over the whole workload suite,
// in the production configuration.
func TestAnalyzeAllDeterministic(t *testing.T) {
	opts := core.Options{
		Memoize: true, ImprovedMemo: true,
		DirectionVectors: true, PruneUnused: true, PruneDistance: true,
	}
	cands := suiteCandidates(t, true)

	serial := core.New(opts)
	want, err := serial.AnalyzeAll(cands, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := fmt.Sprintf("%+v", want)
	wantTallies := deterministicTallies(&serial.Stats)

	workerCounts := []int{2, 4, 8}
	if n := runtime.GOMAXPROCS(0); n != 2 && n != 4 && n != 8 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			par := core.New(opts)
			got, err := par.AnalyzeAll(cands, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%d results, want %d", len(got), len(want))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("result %d differs:\n got %+v\nwant %+v", i, got[i], want[i])
				}
			}
			if gotBytes := fmt.Sprintf("%+v", got); gotBytes != wantBytes {
				t.Fatal("formatted results are not byte-identical to the serial run")
			}
			if gotTallies := deterministicTallies(&par.Stats); !reflect.DeepEqual(gotTallies, wantTallies) {
				t.Fatalf("merged tallies differ:\n got %v\nwant %v", gotTallies, wantTallies)
			}
		})
	}
}

// TestAnalyzeAllMatchesAnalyzeCandidate pins the concurrent driver to the
// original serial entry point (not just to itself with one worker).
func TestAnalyzeAllMatchesAnalyzeCandidate(t *testing.T) {
	opts := core.Options{Memoize: true, ImprovedMemo: true}
	cands := suiteCandidates(t, false)

	serial := core.New(opts)
	var want []core.Result
	for _, c := range cands {
		r, err := serial.AnalyzeCandidate(c)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}

	par := core.New(opts)
	got, err := par.AnalyzeAll(cands, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("AnalyzeAll(4 workers) differs from per-candidate serial analysis")
	}
	if par.Stats.Pairs != serial.Stats.Pairs ||
		par.Stats.Independent != serial.Stats.Independent ||
		par.Stats.Dependent != serial.Stats.Dependent ||
		par.Stats.Unknown != serial.Stats.Unknown {
		t.Fatalf("verdict tallies differ: parallel %+v, serial %+v", par.Stats, serial.Stats)
	}
}

// TestAnalyzeAllWarmTables checks that promotion to sharded tables keeps
// previously memoized entries: a second pass over the same candidates on
// the same analyzer must be answered from cache.
func TestAnalyzeAllWarmTables(t *testing.T) {
	opts := core.Options{Memoize: true, ImprovedMemo: true}
	s, ok := workload.ProgramByName("SR") // 1,290 cases, 14 unique
	if !ok {
		t.Fatal("SR missing")
	}
	cands, err := workload.Candidates(s, false)
	if err != nil {
		t.Fatal(err)
	}

	a := core.New(opts)
	// Serial warmup populates the plain tables.
	if _, err := a.AnalyzeAll(cands, 1); err != nil {
		t.Fatal(err)
	}
	unique, hitsBefore := a.Stats.UniqueFull, a.Stats.FullHits
	if unique == 0 {
		t.Fatal("warmup cached nothing")
	}
	// The concurrent pass promotes the tables and must reuse every entry:
	// no new unique problems, every non-constant pair a hit.
	if _, err := a.AnalyzeAll(cands, 4); err != nil {
		t.Fatal(err)
	}
	if a.Stats.UniqueFull != unique {
		t.Fatalf("unique problems grew %d → %d across identical passes", unique, a.Stats.UniqueFull)
	}
	wantHits := hitsBefore + a.Stats.Pairs/2 - a.Stats.Constant/2
	if a.Stats.FullHits != wantHits {
		t.Fatalf("FullHits = %d, want %d (every non-constant pair served from the warm table)",
			a.Stats.FullHits, wantHits)
	}
}

// TestAnalyzeAllEdgeCases covers empty input and the workers <= 0 default.
func TestAnalyzeAllEdgeCases(t *testing.T) {
	a := core.New(core.Options{Memoize: true})
	if res, err := a.AnalyzeAll(nil, 8); err != nil || len(res) != 0 {
		t.Fatalf("empty input: %v, %v", res, err)
	}
	s, _ := workload.ProgramByName("TI")
	cands, err := workload.Candidates(s, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.AnalyzeAll(cands, 0) // 0 → GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(cands) {
		t.Fatalf("%d results for %d candidates", len(res), len(cands))
	}
}
