package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"exactdep/internal/depvec"
	"exactdep/internal/dtest"
	"exactdep/internal/ir"
	"exactdep/internal/system"
)

// The differential oracle: generate random small loop nests with affine
// subscripts, enumerate every iteration pair by brute force, and require
// the analyzer's verdict — and its full set of direction vectors — to match
// ground truth exactly. This exercises the complete stack (system build,
// Extended GCD, all four tests, hierarchical refinement, pruning) against
// an independent implementation of the problem's semantics.

// randNest builds a random nest of depth 1–3 with constant or triangular
// bounds, and a pair of refs with 1–2 dimensions of random affine
// subscripts over the indices.
func randNest(rng *rand.Rand) ir.Pair {
	depth := 1 + rng.Intn(3)
	names := []string{"i", "j", "k"}[:depth]
	loops := make([]ir.Loop, depth)
	for d := 0; d < depth; d++ {
		lo := int64(rng.Intn(3))
		hi := lo + int64(rng.Intn(5)) // trip counts 1..5 keep brute force fast
		loops[d] = ir.Loop{Index: names[d], Lower: ir.NewConst(lo), Upper: ir.NewConst(hi)}
		if d > 0 && rng.Intn(4) == 0 {
			// triangular: lower bound from an outer index
			loops[d].Lower = ir.NewVar(names[rng.Intn(d)])
			loops[d].Upper = ir.NewConst(hi + 2)
		}
	}
	dims := 1 + rng.Intn(2)
	mkSubs := func() []ir.Expr {
		subs := make([]ir.Expr, dims)
		for d := 0; d < dims; d++ {
			e := ir.NewConst(int64(rng.Intn(7) - 3))
			for _, v := range names {
				if rng.Intn(2) == 0 {
					e = e.Add(ir.NewTerm(v, int64(rng.Intn(5)-2)))
				}
			}
			subs[d] = e
		}
		return subs
	}
	nest := &ir.Nest{Label: "rand", Loops: loops}
	a := ir.Ref{Array: "a", Subscripts: mkSubs(), Kind: ir.Write, Depth: depth}
	b := ir.Ref{Array: "a", Subscripts: mkSubs(), Kind: ir.Read, Depth: depth}
	nest.Refs = []ir.Ref{a, b}
	return nest.Pair(a, b)
}

// enumerate walks the full iteration space of the nest (respecting
// triangular bounds) and calls f with each index assignment.
func enumerate(loops []ir.Loop, env map[string]int64, d int, f func(map[string]int64)) {
	if d == len(loops) {
		f(env)
		return
	}
	l := loops[d]
	lo, ok1 := l.Lower.Eval(env)
	hi, ok2 := l.Upper.Eval(env)
	if !ok1 || !ok2 {
		panic("unbounded loop in differential test")
	}
	for v := lo; v <= hi; v++ {
		env[l.Index] = v
		enumerate(loops, env, d+1, f)
	}
	delete(env, l.Index)
}

// groundTruth brute-forces the conflict set and the direction vectors.
func groundTruth(p ir.Pair) (dependent bool, vectors []string) {
	loops := p.A.Loops
	set := map[string]bool{}
	var iterA []map[string]int64
	enumerate(loops, map[string]int64{}, 0, func(env map[string]int64) {
		cp := make(map[string]int64, len(env))
		for k, v := range env {
			cp[k] = v
		}
		iterA = append(iterA, cp)
	})
	for _, ea := range iterA {
		for _, eb := range iterA {
			conflict := true
			for d := range p.A.Ref.Subscripts {
				va, _ := p.A.Ref.Subscripts[d].Eval(ea)
				vb, _ := p.B.Ref.Subscripts[d].Eval(eb)
				if va != vb {
					conflict = false
					break
				}
			}
			if !conflict {
				continue
			}
			dependent = true
			vec := make([]byte, 0, len(loops))
			for _, l := range loops {
				switch {
				case ea[l.Index] < eb[l.Index]:
					vec = append(vec, '<')
				case ea[l.Index] > eb[l.Index]:
					vec = append(vec, '>')
				default:
					vec = append(vec, '=')
				}
			}
			set[string(vec)] = true
		}
	}
	for v := range set {
		vectors = append(vectors, v)
	}
	sort.Strings(vectors)
	return dependent, vectors
}

// expandStars turns the analyzer's vectors (which may contain '*') into the
// explicit direction set realized over the iteration space, so they can be
// compared with ground truth. A '*' includes only the directions that are
// actually realizable, so expansion may overapproximate; the containment
// check below accounts for that.
func expandStars(vs []depvec.Vector) map[string]bool {
	out := map[string]bool{}
	var rec func(prefix []byte, rest depvec.Vector)
	rec = func(prefix []byte, rest depvec.Vector) {
		if len(rest) == 0 {
			out[string(prefix)] = true
			return
		}
		switch rest[0] {
		case depvec.Any:
			for _, d := range []byte{'<', '=', '>'} {
				rec(append(prefix, d), rest[1:])
			}
		default:
			rec(append(prefix, byte(rest[0])), rest[1:])
		}
	}
	for _, v := range vs {
		rec(nil, v)
	}
	return out
}

func TestDifferentialEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1991))
	configs := []Options{
		{},
		{DirectionVectors: true},
		{DirectionVectors: true, PruneUnused: true, PruneDistance: true},
		{Memoize: true, ImprovedMemo: true, DirectionVectors: true, PruneUnused: true, PruneDistance: true},
		{Memoize: true, ImprovedMemo: true, SymmetricMemo: true, DirectionVectors: true, PruneUnused: true, PruneDistance: true},
		{DirectionVectors: true, PruneUnused: true, PruneDistance: true, Separable: true},
	}
	analyzers := make([]*Analyzer, len(configs))
	for i, c := range configs {
		analyzers[i] = New(c)
	}
	const iters = 1500
	for iter := 0; iter < iters; iter++ {
		pair := randNest(rng)
		wantDep, wantVecs := groundTruth(pair)
		for ci, a := range analyzers {
			res, err := a.AnalyzePair(pair)
			if err != nil {
				t.Fatalf("iter %d config %d: %v\n%s", iter, ci, err, describe(pair))
			}
			switch res.Outcome {
			case dtest.Independent:
				if wantDep {
					t.Fatalf("iter %d config %d: analyzer says independent, brute force found conflicts\n%s",
						iter, ci, describe(pair))
				}
			case dtest.Dependent:
				if !wantDep {
					t.Fatalf("iter %d config %d: analyzer says dependent (exact), brute force found none\n%s",
						iter, ci, describe(pair))
				}
			case dtest.Unknown:
				t.Fatalf("iter %d config %d: unexpected inexact verdict\n%s", iter, ci, describe(pair))
			}
			if !configs[ci].DirectionVectors || res.Outcome != dtest.Dependent {
				continue
			}
			// Every ground-truth vector must be covered by some reported
			// vector, and every reported non-'*' vector must be realizable.
			got := expandStars(res.Vectors)
			for _, w := range wantVecs {
				if !got[w] {
					t.Fatalf("iter %d config %d: missing direction vector %q (got %v, want %v)\n%s",
						iter, ci, w, res.Vectors, wantVecs, describe(pair))
				}
			}
			wantSet := map[string]bool{}
			for _, w := range wantVecs {
				wantSet[w] = true
			}
			for _, v := range res.Vectors {
				if hasStar(v) {
					continue // '*' components are deliberate overapproximations
				}
				if !wantSet[string(vecBytes(v))] {
					t.Fatalf("iter %d config %d: spurious direction vector %v (want %v)\n%s",
						iter, ci, v, wantVecs, describe(pair))
				}
			}
		}
	}
}

func hasStar(v depvec.Vector) bool {
	for _, d := range v {
		if d == depvec.Any {
			return true
		}
	}
	return false
}

func vecBytes(v depvec.Vector) []byte {
	out := make([]byte, len(v))
	for i, d := range v {
		out[i] = byte(d)
	}
	return out
}

// describe renders a failing pair with its loop bounds for reproduction.
func describe(p ir.Pair) string {
	s := ""
	for _, l := range p.A.Loops {
		s += fmt.Sprintf("%s; ", l.String())
	}
	s += fmt.Sprintf("A=%s B=%s", p.A.Ref, p.B.Ref)
	if prob, err := system.Build(p); err == nil {
		s += "\n" + prob.String()
	}
	return s
}
