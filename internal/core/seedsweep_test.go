package core

import (
	"math/rand"
	"testing"

	"exactdep/internal/dtest"
)

// TestDifferentialSeedSweep runs the boxed differential over several
// additional seeds at lower iteration counts — cheap extra assurance that
// the fixed-seed run is not a lucky draw.
func TestDifferentialSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	opts := Options{Memoize: true, ImprovedMemo: true, SymmetricMemo: true,
		DirectionVectors: true, PruneUnused: true, PruneDistance: true, Separable: true}
	for _, seed := range []int64{2, 3, 5, 7, 11, 13, 17, 19} {
		rng := rand.New(rand.NewSource(seed))
		a := New(opts)
		for iter := 0; iter < 300; iter++ {
			pair := randNest(rng)
			wantDep, wantVecs := groundTruth(pair)
			res, err := a.AnalyzePair(pair)
			if err != nil {
				t.Fatalf("seed %d iter %d: %v", seed, iter, err)
			}
			switch res.Outcome {
			case dtest.Independent:
				if wantDep {
					t.Fatalf("seed %d iter %d: wrong independent\n%s", seed, iter, describe(pair))
				}
			case dtest.Dependent:
				if !wantDep {
					t.Fatalf("seed %d iter %d: wrong dependent\n%s", seed, iter, describe(pair))
				}
				got := expandStars(res.Vectors)
				for _, w := range wantVecs {
					if !got[w] {
						t.Fatalf("seed %d iter %d: missing vector %q (have %v)\n%s",
							seed, iter, w, res.Vectors, describe(pair))
					}
				}
			case dtest.Unknown:
				t.Fatalf("seed %d iter %d: unknown verdict\n%s", seed, iter, describe(pair))
			}
		}
	}
}
