// Package core is the paper's analyzer assembled from its parts: candidate
// pairs flow through constant classification, memoization (§5), Extended GCD
// preprocessing (§3.1), the exact test cascade (§3.2–3.5), and — when
// requested — direction/distance vector computation with pruning (§6) and
// symbolic unknowns (§8). Statistics are collected in the exact shape of the
// paper's tables.
//
// Candidate pairs are independent of each other up to the shared memo cache,
// so the package also provides the concurrent driver Analyzer.AnalyzeAll: a
// worker pool over the pair list, sharing sharded memo tables
// (memo.ShardedTable), accumulating stats.Counters per worker and merging
// them at the end, with results returned in candidate order. This is the
// analyzer running *on* many goroutines — not to be confused with
// internal/parallel, which *detects* loop-level parallelism in the analyzed
// program. See ARCHITECTURE.md for the full concurrency model.
package core

import (
	"errors"

	"exactdep/internal/depvec"
	"exactdep/internal/dtest"
	"exactdep/internal/ir"
	"exactdep/internal/memo"
	"exactdep/internal/refs"
	"exactdep/internal/stats"
	"exactdep/internal/system"
)

// Options configures an Analyzer. The zero value runs the bare cascade:
// no memoization, no direction vectors.
type Options struct {
	// Memoize caches results keyed on the canonicalized problem (§5).
	Memoize bool
	// ImprovedMemo additionally drops unused loop variables from the keys
	// (the paper's improved scheme; implies more hits, same answers).
	ImprovedMemo bool
	// DirectionVectors computes all dependence direction vectors (§6).
	DirectionVectors bool
	// PruneUnused keeps '*' for unused loop indices without testing.
	PruneUnused bool
	// PruneDistance fixes directions for constant GCD distances.
	PruneDistance bool
	// Separable enables the Burke–Cytron dimension-by-dimension direction
	// method on systems whose loop levels are independent (3·L tests
	// instead of up to 3^L; falls back to hierarchical refinement).
	Separable bool
	// SymmetricMemo also recognizes the mirrored pair (the paper's §5
	// "further optimization": a[i] vs a[i-1] is the same case as a[i-1] vs
	// a[i]). On a miss under the direct key the swapped key is consulted,
	// and a hit is mirrored back: directions flip between '<' and '>',
	// distances negate.
	SymmetricMemo bool
	// Cascade names the dtest pipeline configuration: "" or "full" for the
	// paper's cost-ordered cascade, "fm-only" to run the Fourier–Motzkin
	// backup alone (cross-validation). An unknown name surfaces as an error
	// from the first Analyze call.
	Cascade string
	// TimeCascade enables per-stage wall-time accounting in the cascade
	// (stats.Counters.StageTimeNs). Off by default: two clock reads per
	// consulted stage are measurable next to a sub-microsecond SVPC probe.
	TimeCascade bool
	// L1Size is the per-worker direct-mapped L1 memo cache's slot count,
	// used only when Memoize is on: 0 means the default (memo.DefaultL1Size),
	// negative disables the L1 so every lookup goes to the shared table.
	L1Size int
	// Workers is the concurrent driver's pool size for the unit-level entry
	// points (exactdep.AnalyzeUnitContext / AnalyzeSourceContext) and the
	// corpus entry points (exactdep.AnalyzeCorpus, where it sizes the whole
	// load/fingerprint/probe/solve pipeline): 0 means serial, negative means
	// GOMAXPROCS. Analyzer.AnalyzeAll takes the pool size as an explicit
	// argument and ignores this field.
	Workers int
	// StorePath names a persistent corpus verdict-store snapshot for the
	// corpus entry points (exactdep.AnalyzeCorpus): loaded when present,
	// saved back after the run. The analyzer itself ignores it — per-pair
	// memo persistence stays explicit via SaveMemo/LoadMemo.
	StorePath string
	// Budget bounds the work any single pair may spend in the expensive end
	// of the cascade; the zero value is unlimited. When a limit fires the
	// pair gets a sound, conservative Maybe verdict with Result.Trip naming
	// the limit. Count limits are deterministic and their degraded verdicts
	// are memoized per budget class; clock limits (and context deadlines/
	// cancellation, see AnalyzeAllContext) are scheduling-dependent and
	// their verdicts are never cached.
	Budget dtest.Budget
}

// Validate reports the first configuration error: an unknown Cascade name or
// a negative budget limit. The analyzer constructors tolerate an invalid
// Options value and surface the same error from the first Analyze call;
// Validate lets front ends (depanalyze) fail fast instead.
func (o Options) Validate() error {
	if _, err := dtest.ConfigByName(o.Cascade); err != nil {
		return err
	}
	b := o.Budget
	if b.MaxFMEliminations < 0 || b.MaxBranchNodes < 0 || b.MaxConstraints < 0 || b.MaxDuration < 0 {
		return errNegativeBudget
	}
	return nil
}

var errNegativeBudget = errors.New("core: budget limits must be non-negative (0 means unlimited)")

// DecidedBy identifies how a pair's verdict was obtained.
type DecidedBy int

const (
	// ByConstant: all-constant subscripts, no test needed.
	ByConstant DecidedBy = iota
	// ByGCD: Extended GCD proved independence without bounds.
	ByGCD
	// ByTest: an exact cascade test decided (see Result.Kind).
	ByTest
	// ByCache: a memoized result was reused.
	ByCache
	// ByDirections: the direction-vector refinement overrode an inexact
	// base verdict (implicit branch-and-bound).
	ByDirections
)

func (d DecidedBy) String() string {
	switch d {
	case ByConstant:
		return "constant"
	case ByGCD:
		return "gcd"
	case ByTest:
		return "test"
	case ByCache:
		return "cache"
	case ByDirections:
		return "directions"
	default:
		return "?"
	}
}

// Result is the analysis outcome for one candidate pair.
type Result struct {
	Pair      ir.Pair
	Outcome   dtest.Outcome
	Exact     bool
	DecidedBy DecidedBy
	// Kind is the deciding cascade test when DecidedBy == ByTest (or the
	// base test kind of a direction-vector run).
	Kind dtest.Kind
	// Trip names the budget limit that degraded the verdict when Outcome is
	// Maybe (dtest.TripNone otherwise).
	Trip dtest.TripReason
	// Vectors/Distances are filled when direction vectors are enabled and
	// the pair is dependent.
	Vectors   []depvec.Vector
	Distances []depvec.Distance
}

// cached is the memoized value for a full problem key. Direction vectors
// are stored projected onto the problem's *used* loop levels: under the
// improved scheme two pairs sharing a key may differ in their unused levels,
// so the vectors are re-expanded against the requesting pair (unused levels
// always get '*').
type cached struct {
	res Result
	// projVectors[i][k] is the direction at the k-th used level.
	projVectors [][]depvec.Direction
	// projDistances pairs the ordinal of a used level with its constant
	// distance.
	projDistances []depvec.Distance
	// budgetClass scopes a degraded (Maybe) entry to the count limits that
	// produced it: a Maybe verdict is a property of the problem *and* the
	// budget, so a lookup under different count limits must miss and re-run.
	// Exact entries are valid under every class and ignore the field.
	budgetClass dtest.BudgetClass
}

// usable reports whether a cache hit may answer a lookup under the given
// budget class.
func (c cached) usable(class dtest.BudgetClass) bool {
	return c.res.Outcome != dtest.Maybe || c.budgetClass == class
}

// usedLevels lists the common loop levels that constrain the problem.
func usedLevels(p *system.Problem) []int {
	var out []int
	for lvl := 0; lvl < p.Common; lvl++ {
		if p.LevelUsed(lvl) {
			out = append(out, lvl)
		}
	}
	return out
}

// project reduces vectors/distances to used levels only.
func project(res Result, prob *system.Problem) cached {
	used := usedLevels(prob)
	pos := make(map[int]int, len(used))
	for i, lvl := range used {
		pos[lvl] = i
	}
	c := cached{res: res}
	for _, v := range res.Vectors {
		pv := make([]depvec.Direction, len(used))
		for i, lvl := range used {
			if lvl < len(v) {
				pv[i] = v[lvl]
			} else {
				pv[i] = depvec.Any
			}
		}
		c.projVectors = append(c.projVectors, pv)
	}
	for _, d := range res.Distances {
		if i, ok := pos[d.Level]; ok {
			c.projDistances = append(c.projDistances, depvec.Distance{Level: i, Value: d.Value})
		}
	}
	return c
}

// expand rebuilds vectors/distances for the requesting pair's levels.
func (c cached) expand(prob *system.Problem) Result {
	res := c.res
	res.Vectors = nil
	res.Distances = nil
	if len(c.projVectors) == 0 && len(c.projDistances) == 0 {
		// Nothing to re-expand; skip computing used levels so a vector-free
		// memo hit stays allocation-free.
		return res
	}
	used := usedLevels(prob)
	for _, pv := range c.projVectors {
		v := make(depvec.Vector, prob.Common)
		for i := range v {
			v[i] = depvec.Any
		}
		for i, lvl := range used {
			if i < len(pv) {
				v[lvl] = pv[i]
			}
		}
		res.Vectors = append(res.Vectors, v)
	}
	for _, d := range c.projDistances {
		if d.Level < len(used) {
			res.Distances = append(res.Distances, depvec.Distance{Level: used[d.Level], Value: d.Value})
		}
	}
	return res
}

// Analyzer runs the full pipeline and accumulates statistics.
//
// An Analyzer is not safe for concurrent use directly: call AnalyzeAll to
// fan candidate pairs out over a worker pool. The memo tables start as
// unsynchronized memo.Tables and are promoted in place to sharded,
// mutex-guarded tables the first time a concurrent run needs them.
type Analyzer struct {
	opts  Options
	full  memo.Map[cached]
	eq    memo.Map[system.GCDResult]
	dir   memo.Map[dtest.Result]
	Stats stats.Counters

	// enc is this analyzer's (or worker view's) scratch-backed key encoder:
	// steady-state encode+lookup+hit allocates nothing. l1 is the private
	// direct-mapped cache in front of the shared full table; it holds only
	// keys interned by that table, so every L1 entry is also an L2 entry
	// (which keeps AnalyzeAll's provenance post-pass valid). l1dir plays the
	// same role in front of the shared direction-keyed refinement table.
	enc   memo.Encoder
	l1    *memo.L1[cached]
	l1dir *memo.L1[dtest.Result]

	// refiner is the per-worker workspace of the clone-free direction-vector
	// refinement walk (arena for pushed direction rows, per-level buffers).
	refiner *depvec.Refiner

	// The cascade engine: cfg is the shared, immutable stage configuration
	// (selected by Options.Cascade); pipe is this analyzer's private
	// pipeline with its own scratch. prevStage holds the pipeline metrics
	// at the last sync so syncStageStats can fold pure deltas into Stats,
	// keeping the counters additive across worker merges. cfgErr is a
	// deferred Options.Cascade resolution error, reported by the first
	// Analyze call.
	cfg       *dtest.Config
	pipe      *dtest.Pipeline
	prevStage []dtest.StageMetrics
	prevFM    dtest.FMMetrics
	cfgErr    error

	// budClass is the deterministic fingerprint of opts.Budget's count
	// limits, fixed at construction: degraded memo entries are served and
	// stored only under this class.
	budClass dtest.BudgetClass

	// pb builds each candidate's dependence problem into per-analyzer
	// scratch (system.Builder), so the memo-hot path does not allocate a
	// fresh Problem per pair. The built Problem is only live within one
	// analyzeCandidate call, which is what makes the reuse safe.
	pb system.Builder

	// inflight is the singleflight layer over the full table, shared by all
	// worker views of one concurrent run; nil on serial analyzers and on the
	// parent (the parent's flights field owns it and workerView copies it
	// here). A worker that misses every cache layer claims its key before
	// solving, so two workers never run the cascade for one canonical
	// problem at the same time.
	inflight *memo.InFlight[cached]

	// Batches defer this worker view's memo inserts: entries are staged
	// locally and drained into the sharded tables in bulk (at a size
	// threshold and at worker exit), so the tables' copy-on-write snapshots
	// are not rebuilt once per insert. Nil on serial analyzers, where Insert
	// goes straight to the unsynchronized table.
	fullBatch *memo.Batch[cached]
	eqBatch   *memo.Batch[system.GCDResult]
	dirBatch  *memo.Batch[dtest.Result]

	// Concurrent-driver state owned by the parent analyzer (nil/empty on
	// worker views): the shared in-flight layer, worker views cached across
	// AnalyzeAll calls (so their L1 caches stay warm — rebuilding them per
	// call made every pair of a memo-hot run fall through to the shared
	// table), and reusable per-run buffers.
	flights *memo.InFlight[cached]
	views   []*Analyzer
	provBuf []provenance
	procBuf []bool
	ctrBuf  []stats.Counters
	seenPtr map[*int64]bool
}

// New returns an analyzer with the given options.
func New(opts Options) *Analyzer {
	a := &Analyzer{
		opts:     opts,
		full:     memo.NewTable[cached](),
		eq:       memo.NewTable[system.GCDResult](),
		dir:      memo.NewTable[dtest.Result](),
		refiner:  depvec.NewRefiner(),
		budClass: opts.Budget.Class(),
	}
	if opts.Memoize && opts.L1Size >= 0 {
		a.l1 = memo.NewL1[cached](opts.L1Size)
		a.l1dir = memo.NewL1[dtest.Result](opts.L1Size)
	}
	cfg, err := dtest.ConfigByName(opts.Cascade)
	if err != nil {
		a.cfgErr = err
		return a
	}
	a.cfg = cfg
	a.pipe = a.newPipeline()
	a.prevStage = make([]dtest.StageMetrics, cfg.NumStages())
	return a
}

// newPipeline builds a pipeline over the analyzer's stage configuration,
// honoring the timing option and the per-problem budget.
func (a *Analyzer) newPipeline() *dtest.Pipeline {
	p := a.cfg.NewPipeline()
	p.SetTimed(a.opts.TimeCascade)
	p.SetBudget(a.opts.Budget)
	return p
}

// insertBatchSize is the worker-view staging threshold: a view's deferred
// memo inserts drain into the sharded tables whenever this many are pending
// (and always at worker exit). Each drain rebuilds the copy-on-write
// snapshot of every touched shard, so an insert-heavy cold run copies about
// tableSize²/(2·insertBatchSize) entries in total — the size is chosen to
// keep that cost small against the solves that produced the inserts, while
// the in-flight layer (flights retire only when their insert drains) keeps
// the window of not-yet-visible verdicts from causing duplicate solves.
const insertBatchSize = 256

// workerView returns a private analyzer view over the shared memo tables
// for one worker goroutine: options and the stage configuration are shared
// read-only; the pipeline (with its scratch), the key encoder, the L1 memo
// cache, the insert batches, and the counters are per-worker. Must be
// called after shardTables (the batches bind to the sharded tables).
func (a *Analyzer) workerView() *Analyzer {
	wa := &Analyzer{opts: a.opts, full: a.full, eq: a.eq, dir: a.dir,
		refiner: depvec.NewRefiner(), cfg: a.cfg, cfgErr: a.cfgErr, budClass: a.budClass,
		inflight: a.flights}
	if wa.cfg != nil {
		wa.pipe = wa.newPipeline()
		wa.prevStage = make([]dtest.StageMetrics, wa.cfg.NumStages())
	}
	if wa.opts.Memoize && wa.opts.L1Size >= 0 {
		wa.l1 = memo.NewL1[cached](wa.opts.L1Size)
		wa.l1dir = memo.NewL1[dtest.Result](wa.opts.L1Size)
	}
	if st, ok := a.full.(*memo.ShardedTable[cached]); ok {
		wa.fullBatch = memo.NewBatch(st, insertBatchSize)
		if fl := wa.inflight; fl != nil {
			// A finished flight stands in for its not-yet-visible table
			// entry; retire each one as soon as its insert drains.
			wa.fullBatch.OnDrain(func(keys []memo.Key) {
				for _, k := range keys {
					fl.Forget(k)
				}
			})
		}
	}
	if st, ok := a.eq.(*memo.ShardedTable[system.GCDResult]); ok {
		wa.eqBatch = memo.NewBatch(st, insertBatchSize)
	}
	if st, ok := a.dir.(*memo.ShardedTable[dtest.Result]); ok {
		wa.dirBatch = memo.NewBatch(st, insertBatchSize)
	}
	return wa
}

// syncStageStats folds the pipeline's cumulative per-stage metrics — and its
// Fourier–Motzkin redundancy counters — into the counters as deltas since
// the last sync.
func (a *Analyzer) syncStageStats() {
	for i := 0; i < a.cfg.NumStages(); i++ {
		m := a.pipe.StageMetrics(i)
		prev := a.prevStage[i]
		k := int(a.cfg.Stage(i).Kind())
		a.Stats.StageConsulted[k] += m.Consulted - prev.Consulted
		a.Stats.StageDecided[k] += m.Decided - prev.Decided
		a.Stats.StageTimeNs[k] += int64(m.Time - prev.Time)
		a.prevStage[i] = m
	}
	fm := a.pipe.FMMetrics()
	a.Stats.FMDeduped += fm.Deduped - a.prevFM.Deduped
	a.Stats.FMTightened += fm.Tightened - a.prevFM.Tightened
	a.prevFM = fm
}

// ResetStats clears the counters but keeps the memo tables (matching the
// paper's idea of a table persisted across compilations).
func (a *Analyzer) ResetStats() { a.Stats = stats.Counters{} }

// MemoLen returns the total entry count over the analyzer's three memo
// tables (full, eq, dir) — the size a long-lived analyzer's eviction policy
// measures against. Worker-view L1 caches are bounded by construction and
// not counted.
func (a *Analyzer) MemoLen() int {
	return a.full.Len() + a.eq.Len() + a.dir.Len()
}

// EvictMemo drops every memo entry — the three shared tables and every
// cached worker view's L1 caches — starting a fresh memoization epoch while
// keeping the analyzer itself (pipelines, encoders, worker views, traffic
// counters) warm. A long-lived analyzer calls this when MemoLen exceeds its
// memory bound; correctness is unaffected because evicted problems are
// simply re-solved, and count-budget verdicts are deterministic, so a
// re-solve reproduces the evicted entry byte for byte.
//
// The tables are reset in place, so worker views (whose insert batches are
// bound to the concrete table objects) stay valid. Both sides of the
// L1 ⊆ L2 containment are cleared together, which re-establishes the
// invariant trivially. Must not be called concurrently with an analysis
// run; the in-flight layer is empty between runs and is left alone.
func (a *Analyzer) EvictMemo() {
	a.full.Reset()
	a.eq.Reset()
	a.dir.Reset()
	views := append([]*Analyzer{a}, a.views...)
	for _, v := range views {
		if v.l1 != nil {
			v.l1.Reset()
		}
		if v.l1dir != nil {
			v.l1dir.Reset()
		}
	}
}

// PipelineWorkers maps the public Options.Workers knob to a corpus-driver
// worker count: 0 means serial (one worker), negative means "all cores"
// (the driver's 0), and a positive value passes through. The facade and the
// depserve service layer share this mapping so the two cannot drift.
func PipelineWorkers(w int) int {
	switch {
	case w == 0:
		return 1
	case w < 0:
		return 0
	}
	return w
}

// Options returns the analyzer's configuration (a copy).
func (a *Analyzer) Options() Options { return a.opts }

// AnalyzeUnit analyzes every candidate pair of a lowered unit.
func (a *Analyzer) AnalyzeUnit(u *ir.Unit) ([]Result, error) {
	cands := refs.Pairs(u)
	out := make([]Result, 0, len(cands))
	for _, c := range cands {
		r, err := a.AnalyzeCandidate(c)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// AnalyzePair analyzes a single pair, classifying constants first.
func (a *Analyzer) AnalyzePair(p ir.Pair) (Result, error) {
	return a.AnalyzeCandidate(refs.Candidate{Pair: p, Class: refs.Classify(p.A.Ref, p.B.Ref)})
}

// AnalyzeCandidate analyzes one pre-classified candidate.
func (a *Analyzer) AnalyzeCandidate(c refs.Candidate) (Result, error) {
	return a.analyzeCandidate(c, nil)
}

// provenance records where a result's verdict came from in scheduling-
// independent terms, so the concurrent driver can rewrite DecidedBy to
// exactly what a serial pass would have reported (see AnalyzeAll).
type provenance struct {
	// key is a stable instance of the canonical full-problem key (nil for
	// constant pairs, GCD-decided pairs, or when memoization is off): the
	// interned key handed back by the cache layer that answered, or the
	// owned clone made for the insert. The post-pass resolves it against
	// the final table and replays the serial first-occurrence rule on key
	// *identity*, so no per-pair key strings are materialized.
	key memo.Key
	// keyStr/mirror are the string renderings of the direct and swapped
	// keys, recorded only under SymmetricMemo, where one canonical problem
	// is reachable through two distinct keys and the post-pass must match
	// by content rather than identity.
	keyStr, mirror string
	// fresh is the DecidedBy a fresh (uncached) analysis of this canonical
	// problem reports; for a cache hit it is read from the cached entry.
	fresh DecidedBy
	// cacheable marks results that entered (or were served from) the memo
	// table. Clock-tripped and cancelled verdicts are not cached, so the
	// post-pass must not treat their keys as seen — a later occurrence of
	// the same problem re-analyzes fresh in a serial pass too.
	cacheable bool
}

// analyzeCandidate analyzes one pre-classified candidate, optionally
// recording provenance for the concurrent driver.
func (a *Analyzer) analyzeCandidate(c refs.Candidate, prov *provenance) (Result, error) {
	if a.cfgErr != nil {
		return Result{}, a.cfgErr
	}
	a.Stats.Pairs++
	p := c.Pair
	switch c.Class {
	case refs.ConstEqual:
		a.Stats.Constant++
		a.Stats.Dependent++
		res := Result{Pair: p, Outcome: dtest.Dependent, Exact: true, DecidedBy: ByConstant}
		if a.opts.DirectionVectors {
			// A constant-subscript conflict recurs in every iteration pair:
			// the dependence holds under every direction (the empty vector
			// when the pair shares no loops).
			all := make(depvec.Vector, p.Common)
			for i := range all {
				all[i] = depvec.Any
			}
			res.Vectors = []depvec.Vector{all}
			a.Stats.Vectors++
		}
		return res, nil
	case refs.ConstDiffer:
		a.Stats.Constant++
		a.Stats.Independent++
		return Result{Pair: p, Outcome: dtest.Independent, Exact: true, DecidedBy: ByConstant}, nil
	}

	prob, err := a.pb.Build(p)
	if err != nil {
		return Result{}, err
	}

	var fullKey memo.Key
	if a.opts.Memoize {
		// The steady-state fast path: scratch-backed problem build and key
		// encode, L1 probe, L2 lock-free probe — zero allocations on a hit
		// (gated by TestMemoHitZeroAllocs). FullLookups/FullHits stay the
		// candidate-level totals; L1*/L2*/InflightAdopts split them by the
		// layer that answered.
		fullKey = a.enc.EncodeFull(prob, a.opts.ImprovedMemo)
		a.Stats.FullLookups++
		if prov != nil && a.opts.SymmetricMemo {
			prov.keyStr = fullKey.Bytes()
			if mk, err := a.mirrorKey(p); err == nil {
				prov.mirror = mk.Bytes()
			}
		}
		if a.l1 != nil {
			a.Stats.L1Lookups++
			if sk, hit, ok := a.l1.LookupStored(fullKey); ok && hit.usable(a.budClass) {
				a.Stats.L1Hits++
				a.Stats.FullHits++
				return a.serveHit(prob, p, sk, hit, prov), nil
			}
		}
		a.Stats.L2Lookups++
		if stored, hit, ok := a.full.LookupStored(fullKey); ok && hit.usable(a.budClass) {
			a.Stats.L2Hits++
			a.Stats.FullHits++
			if a.l1 != nil {
				a.l1.Store(stored, hit)
			}
			return a.serveHit(prob, p, stored, hit, prov), nil
		}
		if a.opts.SymmetricMemo {
			if res, under, ok, err := a.lookupMirrored(p, prob); err != nil {
				return Result{}, err
			} else if ok {
				a.Stats.FullHits++
				if prov != nil {
					prov.fresh = under
					prov.cacheable = true
				}
				a.tallyVerdict(res)
				return res, nil
			}
		}
		if a.inflight != nil && !a.peekGCDIndependent(prob) {
			// Every cache layer missed: claim the key so only one worker
			// solves this canonical problem at a time. Losers block until
			// the winner publishes, then adopt its verdict straight off the
			// flight (no table re-probe — the winner's insert may still be
			// sitting in its batch). A winner that could not cache (clock
			// trip, cancellation) publishes ok=false and the waiters
			// re-claim: in a serial pass each occurrence of such a problem
			// solves fresh too.
			for {
				f, leader := a.inflight.Claim(fullKey)
				if leader {
					res, fin := a.solveAndCache(prob, p, fullKey, prov)
					a.inflight.Finish(f, fin.key, fin.val, fin.ok)
					return res, nil
				}
				a.Stats.InflightWaits++
				ik, cv, ok := f.Wait()
				if !ok {
					continue
				}
				if !cv.usable(a.budClass) {
					break
				}
				a.Stats.InflightAdopts++
				a.Stats.FullHits++
				if a.l1 != nil {
					a.l1.Store(ik, cv)
				}
				return a.serveHit(prob, p, ik, cv, prov), nil
			}
		}
	}

	res, _ := a.solveAndCache(prob, p, fullKey, prov)
	return res, nil
}

// peekGCDIndependent reports whether the eq table already proves this
// problem independent by Extended GCD alone. GCD-independent verdicts are
// never stored in the full table, so every occurrence of such a problem
// misses every candidate-level cache layer and would otherwise claim the
// in-flight dedup lock — paying a map entry, a channel, and a key rendering
// per occurrence to guard a "solve" that is one lock-free eq-table read.
// The peek is counter-silent: analyzeFresh re-encodes and does the counted
// lookup, so the stats are the same as without the peek.
func (a *Analyzer) peekGCDIndependent(prob *system.Problem) bool {
	// The encoder's eq buffer is separate from its full buffer, so the
	// caller's still-pending fullKey stays valid across this encode.
	eqKey := a.enc.EncodeEq(prob, a.opts.ImprovedMemo)
	v, ok := a.eq.Lookup(eqKey)
	return ok && v == system.GCDIndependent
}

// serveHit expands a cached entry for the requesting pair and records
// provenance; sk is the entry's stable interned key.
func (a *Analyzer) serveHit(prob *system.Problem, p ir.Pair, sk memo.Key, hit cached, prov *provenance) Result {
	if prov != nil {
		prov.key = sk
		prov.fresh = hit.res.DecidedBy
		prov.cacheable = true
	}
	res := hit.expand(prob)
	res.Pair = p
	res.DecidedBy = ByCache
	a.tallyVerdict(res)
	return res
}

// flightResult is what a solve publishes to in-flight waiters: the interned
// key and cached value when the verdict entered the memo table, ok=false
// when it was not cacheable.
type flightResult struct {
	key memo.Key
	val cached
	ok  bool
}

// solveAndCache runs the fresh analysis for a candidate that missed every
// cache layer and stores the verdict (directly, or staged in the worker's
// batch).
func (a *Analyzer) solveAndCache(prob *system.Problem, p ir.Pair, fullKey memo.Key, prov *provenance) (Result, flightResult) {
	res := a.analyzeFresh(prob, p)
	if prov != nil {
		prov.fresh = res.DecidedBy
	}
	var fin flightResult
	// GCD-independent verdicts live only in the without-bounds table (the
	// paper's split: the bounds table holds the cases that actually reached
	// the exact tests). Clock-tripped and cancelled verdicts are never
	// cached: whether they trip depends on scheduling, not on the problem,
	// so caching them would leak one run's timing into another's answers.
	if a.opts.Memoize && res.DecidedBy != ByGCD && cacheableTrip(res.Trip) {
		// fullKey aliases the encoder's scratch; the tables retain their
		// keys, so insert an owned copy (and reuse it for the L1 fill).
		ck := fullKey.Clone()
		cv := project(res, prob)
		cv.budgetClass = a.budClass
		if a.fullBatch != nil {
			// Staged insert: drained in bulk, so skip the per-insert Len
			// sweep too — the driver snapshots UniqueFull after the drain.
			a.fullBatch.Add(ck, cv)
		} else {
			a.full.Insert(ck, cv)
			a.Stats.UniqueFull = a.full.Len()
		}
		if a.l1 != nil {
			a.l1.Store(ck, cv)
		}
		if prov != nil {
			prov.key = ck
			prov.cacheable = true
		}
		fin = flightResult{key: ck, val: cv, ok: true}
	} else if prov != nil && a.opts.Memoize && res.DecidedBy != ByGCD {
		// Non-cacheable verdict: the post-pass still needs a stable key to
		// resolve this occurrence against cacheable ones of the same
		// problem, so clone it here (rare: only clock/cancel trips).
		prov.key = fullKey.Clone()
	}
	a.tallyVerdict(res)
	return res, fin
}

// cacheableTrip reports whether a verdict with this trip reason may enter
// the memo table: untripped and count-tripped verdicts are deterministic;
// deadline and cancellation trips are not.
func cacheableTrip(t dtest.TripReason) bool {
	return t != dtest.TripDeadline && t != dtest.TripCancelled
}

// mirrorKey returns the full-problem key of the swapped pair (B, A).
func (a *Analyzer) mirrorKey(p ir.Pair) (memo.Key, error) {
	swapped := ir.Pair{A: p.B, B: p.A, Common: p.Common, Symbols: p.Symbols, Label: p.Label}
	sprob, err := system.Build(swapped)
	if err != nil {
		return nil, err
	}
	return memo.EncodeFull(sprob, a.opts.ImprovedMemo), nil
}

// lookupMirrored consults the cache under the key of the swapped pair
// (B, A) and mirrors a hit back onto the original orientation. under is the
// cached entry's own DecidedBy (how the entry was originally obtained).
func (a *Analyzer) lookupMirrored(p ir.Pair, prob *system.Problem) (_ Result, under DecidedBy, _ bool, _ error) {
	swapped := ir.Pair{A: p.B, B: p.A, Common: p.Common, Symbols: p.Symbols, Label: p.Label}
	sprob, err := system.Build(swapped)
	if err != nil {
		return Result{}, 0, false, err
	}
	hit, ok := a.full.Lookup(memo.EncodeFull(sprob, a.opts.ImprovedMemo))
	if !ok || !hit.usable(a.budClass) {
		return Result{}, 0, false, nil
	}
	res := hit.expand(prob)
	res.Pair = p
	res.DecidedBy = ByCache
	// Mirror the direction information: swapping the references turns a
	// "source before sink" relation into the opposite one.
	for vi, v := range res.Vectors {
		mv := make(depvec.Vector, len(v))
		for i, d := range v {
			switch d {
			case depvec.Less:
				mv[i] = depvec.Greater
			case depvec.Greater:
				mv[i] = depvec.Less
			default:
				mv[i] = d
			}
		}
		res.Vectors[vi] = mv
	}
	for di := range res.Distances {
		res.Distances[di].Value = -res.Distances[di].Value
	}
	return res, hit.res.DecidedBy, true, nil
}

// analyzeFresh runs GCD preprocessing and the tests on a cache miss.
func (a *Analyzer) analyzeFresh(prob *system.Problem, p ir.Pair) Result {
	// GCD (without-bounds) memoization: the Extended GCD test ignores
	// bounds, so its verdict is reusable across bound variations.
	var eqKey memo.Key
	gcdKnown := false
	var gcdRes system.GCDResult
	if a.opts.Memoize {
		// The encoder's eq buffer is separate from its full buffer, so the
		// caller's still-pending fullKey stays valid across this encode.
		eqKey = a.enc.EncodeEq(prob, a.opts.ImprovedMemo)
		a.Stats.EqLookups++
		if v, ok := a.eq.Lookup(eqKey); ok {
			a.Stats.EqHits++
			gcdKnown, gcdRes = true, v
		}
	}
	if gcdKnown && gcdRes == system.GCDIndependent {
		a.Stats.GCDIndependent++
		return Result{Pair: p, Outcome: dtest.Independent, Exact: true, DecidedBy: ByGCD}
	}

	res, ts, err := system.Preprocess(prob)
	if err != nil {
		// Overflow in exact arithmetic: assume dependence, inexactly.
		return Result{Pair: p, Outcome: dtest.Unknown, DecidedBy: ByTest}
	}
	if a.opts.Memoize && !gcdKnown {
		if a.eqBatch != nil {
			a.eqBatch.Add(eqKey.Clone(), res)
		} else {
			a.eq.Insert(eqKey.Clone(), res)
			a.Stats.UniqueEq = a.eq.Len()
		}
	}
	if res == system.GCDIndependent {
		a.Stats.GCDIndependent++
		return Result{Pair: p, Outcome: dtest.Independent, Exact: true, DecidedBy: ByGCD}
	}

	if !a.opts.DirectionVectors {
		r := a.pipe.Run(ts)
		a.Stats.Tests[int(r.Kind)]++
		if r.Trip != dtest.TripNone {
			a.Stats.BudgetTrips[int(r.Trip)]++
		}
		a.syncStageStats()
		return Result{Pair: p, Outcome: r.Outcome, Exact: r.Exact, DecidedBy: ByTest, Kind: r.Kind, Trip: r.Trip}
	}

	// Direction-vector analysis: the first observed test is the base
	// (*,…,*) cascade run, which is what Table 1 counts. The observer also
	// fires on refinement-memo hits — with the Result the cascade originally
	// produced — so baseKind and the per-kind tallies are the same whether a
	// subproblem was recomputed or served from the table.
	var dm depvec.Memo
	if a.opts.Memoize {
		// The refinement memo keys on the encoder's still-live full key plus
		// the pushed directions; analyzeCandidate encoded it just above.
		dm = dirMemo{a}
	}
	var baseKind dtest.Kind
	first := true
	sum := depvec.ComputeObserved(ts, depvec.Options{
		PruneUnused:   a.opts.PruneUnused,
		PruneDistance: a.opts.PruneDistance,
		Separable:     a.opts.Separable,
		Pipeline:      a.pipe,
		Refiner:       a.refiner,
		Memo:          dm,
	}, func(r dtest.Result) {
		if first {
			baseKind = r.Kind
			a.Stats.Tests[int(r.Kind)]++
			first = false
		}
		a.Stats.DirTests[int(r.Kind)]++
		if r.Outcome == dtest.Independent {
			a.Stats.TestIndependent[int(r.Kind)]++
		}
		if r.Trip != dtest.TripNone {
			a.Stats.BudgetTrips[int(r.Trip)]++
		}
	})
	a.Stats.TrailPushes += sum.TrailPushes
	a.Stats.TrailPops += sum.TrailPops
	if sum.TrailMaxDepth > a.Stats.TrailMaxDepth {
		a.Stats.TrailMaxDepth = sum.TrailMaxDepth
	}
	out := Result{
		Pair:      p,
		Exact:     sum.Exact,
		Kind:      baseKind,
		DecidedBy: ByTest,
		Vectors:   sum.Vectors,
		Distances: sum.Distances,
	}
	if sum.Dependent {
		out.Outcome = dtest.Dependent
		if !sum.Exact {
			// An inexact "dependent" is Unknown when a test's structural
			// limits gave up, Maybe when a budget cut the refinement short.
			// Both attribute the trip; only budgetary trips promise that a
			// bigger budget could still decide the pair.
			out.Outcome = dtest.Unknown
			if sum.Trip != dtest.TripNone {
				if sum.Trip.Budgetary() {
					out.Outcome = dtest.Maybe
				}
				out.Trip = sum.Trip
			}
		}
	} else {
		out.Outcome = dtest.Independent
		if sum.ImplicitBB {
			out.DecidedBy = ByDirections
			a.Stats.ImplicitBB++
		}
	}
	a.Stats.Vectors += len(sum.Vectors)
	a.syncStageStats()
	return out
}

// tallyVerdict updates the verdict counters.
func (a *Analyzer) tallyVerdict(r Result) {
	switch r.Outcome {
	case dtest.Independent:
		a.Stats.Independent++
	case dtest.Dependent:
		a.Stats.Dependent++
	case dtest.Maybe:
		a.Stats.Maybe++
	default:
		a.Stats.Unknown++
	}
}
