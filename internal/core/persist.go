package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"exactdep/internal/depvec"
	"exactdep/internal/dtest"
	"exactdep/internal/memo"
	"exactdep/internal/system"
)

// Memo-table persistence (the paper's §5 suggestion: "store the hash table
// across compilations... one could use a set of benchmarks to set up a
// standard table which would be used by all programs"). The serialized form
// is a compact record per entry; pairs and problems are not stored — only
// the canonical keys and the verdicts.

// memoFileVersion guards the on-disk format. Version 2 added the
// direction-keyed refinement table (Dir); version 1 files (full+eq only)
// still load, their refinement walks simply start cold.
const memoFileVersion = 2

// savedEntry is the serializable form of one full-table entry.
type savedEntry struct {
	Key       []int64
	Outcome   int
	Exact     bool
	Kind      int
	Vectors   [][]byte // projected direction vectors, one byte per level
	DistLevel []int
	DistValue []int64
}

// savedEq is one without-bounds (GCD) table entry.
type savedEq struct {
	Key    []int64
	Result int
}

// savedDir is one direction-keyed refinement table entry (the §6
// subproblems of Burke–Cytron refinement). The witness is never persisted —
// it aliases the producing pipeline's scratch and hits don't consume it.
type savedDir struct {
	Key     []int64
	Outcome int
	Exact   bool
	Kind    int
}

// savedTables is the on-disk document. Dir was added in version 2; gob
// leaves it empty when decoding a version-1 file.
type savedTables struct {
	Version  int
	Improved bool
	Full     []savedEntry
	Eq       []savedEq
	Dir      []savedDir
}

// SaveMemo writes the analyzer's memo tables so a later session (or another
// program's compilation) can start warm. Degraded (Maybe) entries are
// skipped: they are valid only under the budget class that produced them,
// and a persisted table must serve every future configuration.
func (a *Analyzer) SaveMemo(w io.Writer) error {
	doc := savedTables{Version: memoFileVersion, Improved: a.opts.ImprovedMemo}
	a.full.Range(func(k memo.Key, v cached) bool {
		if v.res.Outcome == dtest.Maybe {
			return true
		}
		e := savedEntry{
			Key:     append([]int64(nil), k...),
			Outcome: int(v.res.Outcome),
			Exact:   v.res.Exact,
			Kind:    int(v.res.Kind),
		}
		for _, pv := range v.projVectors {
			bs := make([]byte, len(pv))
			for i, d := range pv {
				bs[i] = byte(d)
			}
			e.Vectors = append(e.Vectors, bs)
		}
		for _, d := range v.projDistances {
			e.DistLevel = append(e.DistLevel, d.Level)
			e.DistValue = append(e.DistValue, d.Value)
		}
		doc.Full = append(doc.Full, e)
		return true
	})
	a.eq.Range(func(k memo.Key, v system.GCDResult) bool {
		doc.Eq = append(doc.Eq, savedEq{Key: append([]int64(nil), k...), Result: int(v)})
		return true
	})
	a.dir.Range(func(k memo.Key, v dtest.Result) bool {
		if v.Outcome == dtest.Maybe {
			// Count-tripped refinement verdicts are scoped to the budget
			// class that produced them; same rule as the full table.
			return true
		}
		doc.Dir = append(doc.Dir, savedDir{
			Key:     append([]int64(nil), k...),
			Outcome: int(v.Outcome),
			Exact:   v.Exact,
			Kind:    int(v.Kind),
		})
		return true
	})
	return gob.NewEncoder(w).Encode(&doc)
}

// LoadMemo merges previously saved tables into the analyzer. The saved
// encoding scheme must match the analyzer's (simple vs improved keys are not
// interchangeable).
func (a *Analyzer) LoadMemo(r io.Reader) error {
	var doc savedTables
	if err := gob.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("core: loading memo table: %w", err)
	}
	if doc.Version < 1 || doc.Version > memoFileVersion {
		return fmt.Errorf("core: memo table version %d, want 1..%d", doc.Version, memoFileVersion)
	}
	if doc.Improved != a.opts.ImprovedMemo {
		return fmt.Errorf("core: memo table uses improved=%v keys, analyzer uses improved=%v",
			doc.Improved, a.opts.ImprovedMemo)
	}
	for _, e := range doc.Full {
		c := cached{res: Result{
			Outcome: dtest.Outcome(e.Outcome),
			Exact:   e.Exact,
			Kind:    dtest.Kind(e.Kind),
			// DecidedBy is rewritten to ByCache on every hit.
			DecidedBy: ByTest,
		}}
		for _, bs := range e.Vectors {
			pv := make([]depvec.Direction, len(bs))
			for i, b := range bs {
				pv[i] = depvec.Direction(b)
			}
			c.projVectors = append(c.projVectors, pv)
		}
		for i := range e.DistLevel {
			c.projDistances = append(c.projDistances,
				depvec.Distance{Level: e.DistLevel[i], Value: e.DistValue[i]})
		}
		a.full.Insert(memo.Key(e.Key), c)
	}
	for _, e := range doc.Eq {
		a.eq.Insert(memo.Key(e.Key), system.GCDResult(e.Result))
	}
	for _, e := range doc.Dir {
		a.dir.Insert(memo.Key(e.Key), dtest.Result{
			Outcome: dtest.Outcome(e.Outcome),
			Exact:   e.Exact,
			Kind:    dtest.Kind(e.Kind),
		})
	}
	a.Stats.UniqueFull = a.full.Len()
	a.Stats.UniqueEq = a.eq.Len()
	a.Stats.UniqueDir = a.dir.Len()
	return nil
}
