package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"exactdep/internal/depvec"
	"exactdep/internal/dtest"
	"exactdep/internal/memo"
	"exactdep/internal/system"
)

// Memo-table persistence (the paper's §5 suggestion: "store the hash table
// across compilations... one could use a set of benchmarks to set up a
// standard table which would be used by all programs"). The serialized form
// is a compact record per entry; pairs and problems are not stored — only
// the canonical keys and the verdicts.

// memoFileVersion guards the on-disk format.
const memoFileVersion = 1

// savedEntry is the serializable form of one full-table entry.
type savedEntry struct {
	Key       []int64
	Outcome   int
	Exact     bool
	Kind      int
	Vectors   [][]byte // projected direction vectors, one byte per level
	DistLevel []int
	DistValue []int64
}

// savedEq is one without-bounds (GCD) table entry.
type savedEq struct {
	Key    []int64
	Result int
}

// savedTables is the on-disk document.
type savedTables struct {
	Version  int
	Improved bool
	Full     []savedEntry
	Eq       []savedEq
}

// SaveMemo writes the analyzer's memo tables so a later session (or another
// program's compilation) can start warm. Degraded (Maybe) entries are
// skipped: they are valid only under the budget class that produced them,
// and a persisted table must serve every future configuration.
func (a *Analyzer) SaveMemo(w io.Writer) error {
	doc := savedTables{Version: memoFileVersion, Improved: a.opts.ImprovedMemo}
	a.full.Range(func(k memo.Key, v cached) bool {
		if v.res.Outcome == dtest.Maybe {
			return true
		}
		e := savedEntry{
			Key:     append([]int64(nil), k...),
			Outcome: int(v.res.Outcome),
			Exact:   v.res.Exact,
			Kind:    int(v.res.Kind),
		}
		for _, pv := range v.projVectors {
			bs := make([]byte, len(pv))
			for i, d := range pv {
				bs[i] = byte(d)
			}
			e.Vectors = append(e.Vectors, bs)
		}
		for _, d := range v.projDistances {
			e.DistLevel = append(e.DistLevel, d.Level)
			e.DistValue = append(e.DistValue, d.Value)
		}
		doc.Full = append(doc.Full, e)
		return true
	})
	a.eq.Range(func(k memo.Key, v system.GCDResult) bool {
		doc.Eq = append(doc.Eq, savedEq{Key: append([]int64(nil), k...), Result: int(v)})
		return true
	})
	return gob.NewEncoder(w).Encode(&doc)
}

// LoadMemo merges previously saved tables into the analyzer. The saved
// encoding scheme must match the analyzer's (simple vs improved keys are not
// interchangeable).
func (a *Analyzer) LoadMemo(r io.Reader) error {
	var doc savedTables
	if err := gob.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("core: loading memo table: %w", err)
	}
	if doc.Version != memoFileVersion {
		return fmt.Errorf("core: memo table version %d, want %d", doc.Version, memoFileVersion)
	}
	if doc.Improved != a.opts.ImprovedMemo {
		return fmt.Errorf("core: memo table uses improved=%v keys, analyzer uses improved=%v",
			doc.Improved, a.opts.ImprovedMemo)
	}
	for _, e := range doc.Full {
		c := cached{res: Result{
			Outcome: dtest.Outcome(e.Outcome),
			Exact:   e.Exact,
			Kind:    dtest.Kind(e.Kind),
			// DecidedBy is rewritten to ByCache on every hit.
			DecidedBy: ByTest,
		}}
		for _, bs := range e.Vectors {
			pv := make([]depvec.Direction, len(bs))
			for i, b := range bs {
				pv[i] = depvec.Direction(b)
			}
			c.projVectors = append(c.projVectors, pv)
		}
		for i := range e.DistLevel {
			c.projDistances = append(c.projDistances,
				depvec.Distance{Level: e.DistLevel[i], Value: e.DistValue[i]})
		}
		a.full.Insert(memo.Key(e.Key), c)
	}
	for _, e := range doc.Eq {
		a.eq.Insert(memo.Key(e.Key), system.GCDResult(e.Result))
	}
	a.Stats.UniqueFull = a.full.Len()
	a.Stats.UniqueEq = a.eq.Len()
	return nil
}
