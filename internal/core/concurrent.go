package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"exactdep/internal/dtest"
	"exactdep/internal/memo"
	"exactdep/internal/refs"
	"exactdep/internal/stats"
	"exactdep/internal/system"
)

// AnalyzeAll analyzes every candidate pair with a pool of workers sharing
// this analyzer's memo tables, and returns the results in candidate order.
// workers <= 0 means runtime.GOMAXPROCS(0); workers == 1 runs serially on
// the calling goroutine with no synchronization overhead.
//
// The first concurrent run promotes the analyzer's memo tables to sharded
// tables with lock-free reads (memo.ShardedTable; existing entries — e.g.
// from LoadMemo — are carried over), so a warm table keeps serving hits
// across runs. Each worker holds its own scratch key encoder and — unless
// Options.L1Size is negative — a private direct-mapped L1 memo in front of
// the shared table, so a worker's hot working set is answered without
// touching shared memory. Each worker accumulates its own stats.Counters,
// merged into a.Stats at the end; UniqueFull/UniqueEq are then snapshotted
// from the shared tables.
//
// Results are deterministic — byte-identical across worker counts and
// schedules. Verdicts, vectors, and distances are deterministic because a
// cache hit expands to exactly what a fresh computation of the same
// canonical problem produces, so racing workers can only agree; an L1 hit
// only ever re-observes an entry also present in the shared table, so the
// L1 layer cannot introduce new outcomes. DecidedBy
// is provenance (cache vs test) and *does* depend on which worker reached a
// problem first, so workers record each pair's canonical key plus its
// underlying fresh verdict, and an ordered post-pass replays the serial
// rule: the first occurrence of each cacheable problem keeps its fresh
// DecidedBy, later occurrences report ByCache. (Exception: with
// Options.SymmetricMemo the *order* of a result's direction vectors can
// depend on whether the mirrored entry was cached first; verdicts, vector
// sets, and distances remain deterministic.)
//
// Counter values that depend on cache timing — hit and per-test counts —
// may vary between concurrent runs; verdict tallies (Pairs, Constant,
// GCDIndependent, Independent, Dependent, Unknown) and the unique-problem
// counts do not.
func (a *Analyzer) AnalyzeAll(cands []refs.Candidate, workers int) ([]Result, error) {
	return a.AnalyzeAllContext(context.Background(), cands, workers)
}

// degradedResult is the conservative verdict for a candidate the driver
// never analyzed because the context was already done: assume dependent,
// inexactly, attributed to cancellation. Kind stays KindNone — no test ran.
func degradedResult(c refs.Candidate) Result {
	return Result{Pair: c.Pair, Outcome: dtest.Maybe, DecidedBy: ByTest, Trip: dtest.TripCancelled}
}

// effectiveBudget merges the context's deadline (if any) into the options
// budget; the count limits — and therefore the budget class — are unchanged.
func (a *Analyzer) effectiveBudget(ctx context.Context) dtest.Budget {
	b := a.opts.Budget
	if d, ok := ctx.Deadline(); ok {
		if b.Deadline.IsZero() || d.Before(b.Deadline) {
			b.Deadline = d
		}
	}
	return b
}

// AnalyzeAllContext is AnalyzeAll honoring a context: the context's deadline
// is merged into the per-problem budget, its Done channel is polled at the
// cascade's budget hot points (cutting even a single monster problem short
// mid-elimination), and workers stop picking up new candidates once the
// context is done. Degradation is graceful rather than fatal — the returned
// slice always has one sound Result per candidate, with unanalyzed pairs
// reported as Maybe/TripCancelled (counted in stats.CancelledPairs) — and
// the error is nil unless a candidate genuinely failed to analyze. Verdicts
// produced under a deadline or cancellation are sound but scheduling-
// dependent, so the byte-identical determinism guarantee above holds only
// for count-limited (or unlimited) budgets on an undisturbed context.
func (a *Analyzer) AnalyzeAllContext(ctx context.Context, cands []refs.Candidate, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	plainCtx := ctx.Done() == nil
	if workers <= 1 {
		if !plainCtx && a.pipe != nil {
			a.pipe.SetBudget(a.effectiveBudget(ctx))
			a.pipe.SetCancel(ctx.Done())
			defer func() {
				a.pipe.SetBudget(a.opts.Budget)
				a.pipe.SetCancel(nil)
			}()
		}
		out := make([]Result, 0, len(cands))
		for i, c := range cands {
			if !plainCtx && ctx.Err() != nil {
				for _, rest := range cands[i:] {
					out = append(out, degradedResult(rest))
					a.Stats.CancelledPairs++
				}
				return out, nil
			}
			r, err := a.AnalyzeCandidate(c)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
		return out, nil
	}

	a.shardTables(workers)

	// Snapshot the keys already cached (LoadMemo, earlier runs) before
	// workers start: the provenance post-pass must treat them as hits from
	// the first occurrence on, exactly as a serial pass over a warm table
	// would.
	var provs []provenance
	var seen map[string]bool
	if a.opts.Memoize {
		provs = make([]provenance, len(cands))
		seen = make(map[string]bool, a.full.Len())
		a.full.Range(func(k memo.Key, _ cached) bool {
			seen[k.Bytes()] = true
			return true
		})
	}

	out := make([]Result, len(cands))
	processed := make([]bool, len(cands)) // distinct indexes per worker; read after join
	counters := make([]stats.Counters, workers)
	eff := a.effectiveBudget(ctx)
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		errMu  sync.Mutex
		errIdx = len(cands)
		errVal error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker is a private Analyzer view over the shared
			// tables: options and the cascade stage configuration are
			// read-only; the cascade pipeline (with its scratch) and the
			// counters — including the per-stage Table 6 cost counters —
			// are per-worker and merged at the end. The pipeline carries
			// the deadline-merged budget and the context's Done channel.
			wa := a.workerView()
			if wa.pipe != nil && !plainCtx {
				wa.pipe.SetBudget(eff)
				wa.pipe.SetCancel(ctx.Done())
			}
			defer func() { counters[w] = wa.Stats }()
			for !failed.Load() {
				if !plainCtx && ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(cands) {
					return
				}
				var prov *provenance
				if provs != nil {
					prov = &provs[i]
				}
				r, err := wa.analyzeCandidate(cands[i], prov)
				if err != nil {
					errMu.Lock()
					// Keep the error of the earliest failing candidate so
					// the reported failure does not depend on scheduling.
					if i < errIdx {
						errIdx, errVal = i, err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
				out[i] = r
				processed[i] = true
			}
		}(w)
	}
	wg.Wait()
	for w := range counters {
		a.Stats.Add(&counters[w])
	}
	if errVal == nil {
		// Candidates no worker reached before the context was done get the
		// conservative degraded verdict; their provenance stays empty so
		// the post-pass leaves them untouched.
		for i := range cands {
			if !processed[i] {
				out[i] = degradedResult(cands[i])
				a.Stats.CancelledPairs++
			}
		}
	}
	// Add sums the per-worker uniqueness snapshots, which is meaningless for
	// a shared table — replace with the table's final size.
	a.Stats.UniqueFull = a.full.Len()
	a.Stats.UniqueEq = a.eq.Len()
	a.Stats.UniqueDir = a.dir.Len()
	if errVal != nil {
		return nil, errVal
	}

	// Provenance post-pass: rewrite DecidedBy in candidate order to the
	// serial rule. GCD-independent verdicts are never stored in the full
	// table, so every occurrence reports ByGCD; any other problem's first
	// occurrence keeps its fresh verdict and marks the key, later
	// occurrences (directly or, under SymmetricMemo, via the mirrored key)
	// report ByCache.
	for i := range provs {
		pv := &provs[i]
		if pv.key == "" { // constant pair: decided before memoization
			continue
		}
		if pv.fresh == ByGCD {
			out[i].DecidedBy = ByGCD
			continue
		}
		if seen[pv.key] || (pv.mirror != "" && seen[pv.mirror]) {
			out[i].DecidedBy = ByCache
		} else {
			out[i].DecidedBy = pv.fresh
		}
		// Only results that actually entered (or came from) the memo table
		// make later occurrences hits in a serial replay; clock-tripped
		// verdicts are never cached, so their keys stay unseen.
		if pv.cacheable {
			seen[pv.key] = true
		}
	}
	return out, nil
}

// shardTables promotes the memo tables to their concurrent form, copying
// any existing entries. Idempotent; must be called before workers start.
func (a *Analyzer) shardTables(workers int) {
	// More shards than workers keeps the collision probability low without
	// noticeable memory cost; the cap bounds the per-Len/Stats sweep.
	shards := 4 * workers
	if shards > 256 {
		shards = 256
	}
	if _, ok := a.full.(*memo.ShardedTable[cached]); !ok {
		st := memo.NewShardedTable[cached](shards)
		a.full.Range(func(k memo.Key, v cached) bool {
			st.Insert(k, v)
			return true
		})
		a.full = st
	}
	if _, ok := a.eq.(*memo.ShardedTable[system.GCDResult]); !ok {
		st := memo.NewShardedTable[system.GCDResult](shards)
		a.eq.Range(func(k memo.Key, v system.GCDResult) bool {
			st.Insert(k, v)
			return true
		})
		a.eq = st
	}
	if _, ok := a.dir.(*memo.ShardedTable[dtest.Result]); !ok {
		st := memo.NewShardedTable[dtest.Result](shards)
		a.dir.Range(func(k memo.Key, v dtest.Result) bool {
			st.Insert(k, v)
			return true
		})
		a.dir = st
	}
}
