package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"exactdep/internal/dtest"
	"exactdep/internal/memo"
	"exactdep/internal/refs"
	"exactdep/internal/stats"
	"exactdep/internal/system"
)

// AnalyzeAll analyzes every candidate pair with a pool of workers sharing
// this analyzer's memo tables, and returns the results in candidate order.
// workers <= 0 means runtime.GOMAXPROCS(0); workers == 1 runs serially on
// the calling goroutine with no synchronization overhead.
//
// The first concurrent run promotes the analyzer's memo tables to sharded
// tables with lock-free reads (memo.ShardedTable; existing entries — e.g.
// from LoadMemo — are carried over), so a warm table keeps serving hits
// across runs. Each worker holds its own scratch key encoder and — unless
// Options.L1Size is negative — a private direct-mapped L1 memo in front of
// the shared table, so a worker's hot working set is answered without
// touching shared memory. Each worker accumulates its own stats.Counters,
// merged into a.Stats at the end; UniqueFull/UniqueEq are then snapshotted
// from the shared tables.
//
// Results are deterministic — byte-identical across worker counts and
// schedules. Verdicts, vectors, and distances are deterministic because a
// cache hit expands to exactly what a fresh computation of the same
// canonical problem produces, so racing workers can only agree; an L1 hit
// only ever re-observes an entry also present in the shared table, so the
// L1 layer cannot introduce new outcomes. DecidedBy
// is provenance (cache vs test) and *does* depend on which worker reached a
// problem first, so workers record each pair's canonical key plus its
// underlying fresh verdict, and an ordered post-pass replays the serial
// rule: the first occurrence of each cacheable problem keeps its fresh
// DecidedBy, later occurrences report ByCache. (Exception: with
// Options.SymmetricMemo the *order* of a result's direction vectors can
// depend on whether the mirrored entry was cached first; verdicts, vector
// sets, and distances remain deterministic.)
//
// Counter values that depend on cache timing — hit and per-test counts —
// may vary between concurrent runs; verdict tallies (Pairs, Constant,
// GCDIndependent, Independent, Dependent, Unknown) and the unique-problem
// counts do not.
func (a *Analyzer) AnalyzeAll(cands []refs.Candidate, workers int) ([]Result, error) {
	return a.AnalyzeAllContext(context.Background(), cands, workers)
}

// degradedResult is the conservative verdict for a candidate the driver
// never analyzed because the context was already done: assume dependent,
// inexactly, attributed to cancellation. Kind stays KindNone — no test ran.
func degradedResult(c refs.Candidate) Result {
	return Result{Pair: c.Pair, Outcome: dtest.Maybe, DecidedBy: ByTest, Trip: dtest.TripCancelled}
}

// effectiveBudget merges the context's deadline (if any) into the options
// budget; the count limits — and therefore the budget class — are unchanged.
func (a *Analyzer) effectiveBudget(ctx context.Context) dtest.Budget {
	b := a.opts.Budget
	if d, ok := ctx.Deadline(); ok {
		if b.Deadline.IsZero() || d.Before(b.Deadline) {
			b.Deadline = d
		}
	}
	return b
}

// AnalyzeAllContext is AnalyzeAll honoring a context: the context's deadline
// is merged into the per-problem budget, its Done channel is polled at the
// cascade's budget hot points (cutting even a single monster problem short
// mid-elimination), and workers stop picking up new candidates once the
// context is done. Degradation is graceful rather than fatal — the returned
// slice always has one sound Result per candidate, with unanalyzed pairs
// reported as Maybe/TripCancelled (counted in stats.CancelledPairs) — and
// the error is nil unless a candidate genuinely failed to analyze. Verdicts
// produced under a deadline or cancellation are sound but scheduling-
// dependent, so the byte-identical determinism guarantee above holds only
// for count-limited (or unlimited) budgets on an undisturbed context.
func (a *Analyzer) AnalyzeAllContext(ctx context.Context, cands []refs.Candidate, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	plainCtx := ctx.Done() == nil
	if workers <= 1 {
		if !plainCtx && a.pipe != nil {
			a.pipe.SetBudget(a.effectiveBudget(ctx))
			a.pipe.SetCancel(ctx.Done())
			defer func() {
				a.pipe.SetBudget(a.opts.Budget)
				a.pipe.SetCancel(nil)
			}()
		}
		out := make([]Result, 0, len(cands))
		for i, c := range cands {
			if !plainCtx && ctx.Err() != nil {
				for _, rest := range cands[i:] {
					out = append(out, degradedResult(rest))
					a.Stats.CancelledPairs++
				}
				return out, nil
			}
			r, err := a.AnalyzeCandidate(c)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
		return out, nil
	}

	a.shardTables(workers)
	views := a.ensureViews(workers)

	// Snapshot the keys already cached (LoadMemo, earlier runs) before
	// workers start: the provenance post-pass must treat them as hits from
	// the first occurrence on, exactly as a serial pass over a warm table
	// would. The default replay matches keys by interned-instance identity
	// (no strings, no allocation per pair); SymmetricMemo replays over key
	// *content* because one canonical problem is reachable through two keys.
	var provs []provenance
	var seenStr map[string]bool
	if a.opts.Memoize {
		if cap(a.provBuf) < len(cands) {
			a.provBuf = make([]provenance, len(cands))
		}
		provs = a.provBuf[:len(cands)]
		for i := range provs {
			provs[i] = provenance{}
		}
		if a.opts.SymmetricMemo {
			seenStr = make(map[string]bool, a.full.Len())
			a.full.Range(func(k memo.Key, _ cached) bool {
				seenStr[k.Bytes()] = true
				return true
			})
		} else {
			if a.seenPtr == nil {
				a.seenPtr = make(map[*int64]bool, a.full.Len())
			} else {
				clear(a.seenPtr)
			}
			a.full.Range(func(k memo.Key, _ cached) bool {
				a.seenPtr[&k[0]] = true
				return true
			})
		}
	}

	out := make([]Result, len(cands))
	if cap(a.procBuf) < len(cands) {
		a.procBuf = make([]bool, len(cands))
	}
	processed := a.procBuf[:len(cands)] // distinct indexes per worker; read after join
	for i := range processed {
		processed[i] = false
	}
	if cap(a.ctrBuf) < workers {
		a.ctrBuf = make([]stats.Counters, workers)
	}
	counters := a.ctrBuf[:workers]
	eff := a.effectiveBudget(ctx)
	// Workers claim candidates in chunks: one shared atomic add per chunk
	// instead of per pair, sized so each worker still gets several claims
	// (work stays balanced) without the claim counter becoming the
	// contended line of a memo-hot run.
	chunk := len(cands) / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 64 {
		chunk = 64
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		errMu  sync.Mutex
		errIdx = len(cands)
		errVal error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker is a private Analyzer view over the shared
			// tables: options and the cascade stage configuration are
			// read-only; the cascade pipeline (with its scratch), the L1
			// caches (kept warm across runs), the insert batches, and the
			// counters — including the per-stage Table 6 cost counters —
			// are per-worker and merged at the end. The pipeline carries
			// the deadline-merged budget and the context's Done channel.
			wa := views[w]
			wa.Stats = stats.Counters{}
			if wa.pipe != nil {
				if plainCtx {
					wa.pipe.SetBudget(a.opts.Budget)
					wa.pipe.SetCancel(nil)
				} else {
					wa.pipe.SetBudget(eff)
					wa.pipe.SetCancel(ctx.Done())
				}
			}
			defer func() {
				// Drain the deferred inserts, push the table-traffic deltas
				// (the tables' own read path is stat-free), then hand the
				// counters over — all before wg.Wait releases the merge.
				wa.drainBatches()
				counters[w] = wa.Stats
			}()
			for !failed.Load() {
				base := int(next.Add(int64(chunk))) - chunk
				if base >= len(cands) {
					return
				}
				end := base + chunk
				if end > len(cands) {
					end = len(cands)
				}
				if !plainCtx && ctx.Err() != nil {
					return
				}
				for i := base; i < end; i++ {
					if failed.Load() {
						return
					}
					var prov *provenance
					if provs != nil {
						prov = &provs[i]
					}
					r, err := wa.analyzeCandidate(cands[i], prov)
					if err != nil {
						errMu.Lock()
						// Keep the error of the earliest failing candidate
						// so the reported failure does not depend on
						// scheduling.
						if i < errIdx {
							errIdx, errVal = i, err
						}
						errMu.Unlock()
						failed.Store(true)
						return
					}
					out[i] = r
					processed[i] = true
				}
			}
		}(w)
	}
	wg.Wait()
	for w := range counters {
		a.Stats.Add(&counters[w])
	}
	if errVal == nil {
		// Candidates no worker reached before the context was done get the
		// conservative degraded verdict; their provenance stays empty so
		// the post-pass leaves them untouched.
		for i := range cands {
			if !processed[i] {
				out[i] = degradedResult(cands[i])
				a.Stats.CancelledPairs++
			}
		}
	}
	// Add sums the per-worker uniqueness snapshots, which is meaningless for
	// a shared table — replace with the table's final size (the batches are
	// all drained by now).
	a.Stats.UniqueFull = a.full.Len()
	a.Stats.UniqueEq = a.eq.Len()
	a.Stats.UniqueDir = a.dir.Len()
	if errVal != nil {
		return nil, errVal
	}

	// Provenance post-pass: rewrite DecidedBy in candidate order to the
	// serial rule. GCD-independent verdicts are never stored in the full
	// table, so every occurrence reports ByGCD (their provenance carries no
	// key); any other problem's first occurrence keeps its fresh verdict
	// and marks the key, later occurrences report ByCache.
	if a.opts.SymmetricMemo {
		// Content-keyed replay: a problem is also "seen" through its
		// mirrored key.
		for i := range provs {
			pv := &provs[i]
			if pv.keyStr == "" { // constant or GCD-decided pair
				continue
			}
			if pv.fresh == ByGCD {
				out[i].DecidedBy = ByGCD
				continue
			}
			if seenStr[pv.keyStr] || (pv.mirror != "" && seenStr[pv.mirror]) {
				out[i].DecidedBy = ByCache
			} else {
				out[i].DecidedBy = pv.fresh
			}
			// Only results that actually entered (or came from) the memo
			// table make later occurrences hits in a serial replay;
			// clock-tripped verdicts are never cached, so their keys stay
			// unseen.
			if pv.cacheable {
				seenStr[pv.keyStr] = true
			}
		}
		return out, nil
	}
	// Identity-keyed replay: resolve each recorded key to the table's
	// interned instance (occurrences of one canonical problem may have
	// recorded distinct clones when racing workers both staged an insert),
	// then replay first-occurrence over instance identity.
	for i := range provs {
		pv := &provs[i]
		if pv.key == nil { // constant or GCD-decided pair
			continue
		}
		id := &pv.key[0]
		if sk, _, ok := a.full.LookupStored(pv.key); ok {
			id = &sk[0]
		}
		if a.seenPtr[id] {
			out[i].DecidedBy = ByCache
		} else {
			out[i].DecidedBy = pv.fresh
		}
		if pv.cacheable {
			a.seenPtr[id] = true
		}
	}
	return out, nil
}

// ensureViews returns one cached worker view per worker, creating the
// in-flight dedup layer and any missing views. Views persist on the parent
// across AnalyzeAll calls so their L1 caches stay warm — the dominant cost
// of the previous per-call views was every worker re-faulting its working
// set through the shared table. Must run after shardTables.
func (a *Analyzer) ensureViews(workers int) []*Analyzer {
	if a.opts.Memoize && a.flights == nil {
		a.flights = memo.NewInFlight[cached](4 * workers)
	}
	for len(a.views) < workers {
		a.views = append(a.views, a.workerView())
	}
	return a.views[:workers]
}

// drainBatches flushes a worker view's deferred memo inserts and pushes its
// locally counted table traffic into the sharded tables as one delta per
// table. Called as the worker exits, before counters are merged.
func (wa *Analyzer) drainBatches() {
	if wa.fullBatch != nil {
		wa.fullBatch.Flush()
		wa.fullBatch.Table().AddStats(wa.Stats.L2Lookups, wa.Stats.L2Hits)
	}
	if wa.eqBatch != nil {
		wa.eqBatch.Flush()
		wa.eqBatch.Table().AddStats(wa.Stats.EqLookups, wa.Stats.EqHits)
	}
	if wa.dirBatch != nil {
		wa.dirBatch.Flush()
		wa.dirBatch.Table().AddStats(wa.Stats.DirLookups, wa.Stats.DirHits)
	}
}

// shardTables promotes the memo tables to their concurrent form, copying
// any existing entries. Idempotent; must be called before workers start.
func (a *Analyzer) shardTables(workers int) {
	// More shards than workers keeps the collision probability low without
	// noticeable memory cost; the cap bounds the per-Len/Stats sweep.
	shards := 4 * workers
	if shards > 256 {
		shards = 256
	}
	if _, ok := a.full.(*memo.ShardedTable[cached]); !ok {
		st := memo.NewShardedTable[cached](shards)
		a.full.Range(func(k memo.Key, v cached) bool {
			st.Insert(k, v)
			return true
		})
		a.full = st
	}
	if _, ok := a.eq.(*memo.ShardedTable[system.GCDResult]); !ok {
		st := memo.NewShardedTable[system.GCDResult](shards)
		a.eq.Range(func(k memo.Key, v system.GCDResult) bool {
			st.Insert(k, v)
			return true
		})
		a.eq = st
	}
	if _, ok := a.dir.(*memo.ShardedTable[dtest.Result]); !ok {
		st := memo.NewShardedTable[dtest.Result](shards)
		a.dir.Range(func(k memo.Key, v dtest.Result) bool {
			st.Insert(k, v)
			return true
		})
		a.dir = st
	}
}
