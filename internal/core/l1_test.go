package core_test

// Tests for the per-worker L1 memo layer in front of the shared table: the
// ISSUE 3 determinism re-check (byte-identical output with the L1 enabled,
// disabled, and shrunk to force evictions), the layer-counter invariants,
// and the MemoStats introspection snapshot.

import (
	"fmt"
	"testing"

	"exactdep/internal/core"
	"exactdep/internal/memo"
)

// TestAnalyzeAllDeterministicL1 re-checks AnalyzeAll determinism across L1
// configurations: results must be byte-identical whether lookups are
// answered by the private L1 or the shared table, for serial and concurrent
// runs alike.
func TestAnalyzeAllDeterministicL1(t *testing.T) {
	base := core.Options{
		Memoize: true, ImprovedMemo: true,
		DirectionVectors: true, PruneUnused: true, PruneDistance: true,
	}
	cands := suiteCandidates(t, true)

	noL1 := base
	noL1.L1Size = -1
	serial := core.New(noL1)
	want, err := serial.AnalyzeAll(cands, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := fmt.Sprintf("%+v", want)

	for _, tc := range []struct {
		name    string
		l1Size  int
		workers int
	}{
		{"serial default L1", 0, 1},
		{"serial tiny L1", 2, 1},
		{"concurrent default L1", 0, 4},
		{"concurrent tiny L1", 2, 4},
		{"concurrent no L1", -1, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := base
			opts.L1Size = tc.l1Size
			a := core.New(opts)
			got, err := a.AnalyzeAll(cands, tc.workers)
			if err != nil {
				t.Fatal(err)
			}
			if gotBytes := fmt.Sprintf("%+v", got); gotBytes != wantBytes {
				t.Fatal("results differ from the no-L1 serial reference")
			}
		})
	}
}

// TestL1CounterInvariants pins the layer-counter semantics: FullLookups and
// FullHits stay the candidate-level totals; the layer counters partition
// them.
func TestL1CounterInvariants(t *testing.T) {
	cands := suiteCandidates(t, false)
	opts := core.Options{Memoize: true, ImprovedMemo: true}

	a := core.New(opts) // L1 on by default
	if _, err := a.AnalyzeAll(cands, 1); err != nil {
		t.Fatal(err)
	}
	s := &a.Stats
	if s.L1Lookups != s.FullLookups {
		t.Errorf("L1Lookups = %d, want FullLookups = %d (L1 consulted first on every lookup)", s.L1Lookups, s.FullLookups)
	}
	if s.L1Hits+s.L2Hits != s.FullHits {
		t.Errorf("L1Hits(%d) + L2Hits(%d) != FullHits(%d)", s.L1Hits, s.L2Hits, s.FullHits)
	}
	if s.L1Lookups-s.L1Hits != s.L2Lookups {
		t.Errorf("L2Lookups = %d, want the %d L1 misses", s.L2Lookups, s.L1Lookups-s.L1Hits)
	}
	if s.L1Hits == 0 {
		t.Error("suite has heavy pattern repetition; L1 never hit")
	}

	off := opts
	off.L1Size = -1
	b := core.New(off)
	if _, err := b.AnalyzeAll(cands, 1); err != nil {
		t.Fatal(err)
	}
	if b.Stats.L1Lookups != 0 || b.Stats.L1Hits != 0 {
		t.Errorf("L1Size = -1 must disable the L1 layer: %d lookups, %d hits", b.Stats.L1Lookups, b.Stats.L1Hits)
	}
	if b.Stats.L2Lookups != b.Stats.FullLookups || b.Stats.L2Hits != b.Stats.FullHits {
		t.Errorf("with the L1 off every lookup is an L2 lookup: L2 %d/%d, Full %d/%d",
			b.Stats.L2Hits, b.Stats.L2Lookups, b.Stats.FullHits, b.Stats.FullLookups)
	}
	// The candidate-level totals must not depend on the L1 configuration.
	if b.Stats.FullLookups != s.FullLookups || b.Stats.FullHits != s.FullHits {
		t.Errorf("FullLookups/FullHits changed with the L1 off: %d/%d vs %d/%d",
			b.Stats.FullLookups, b.Stats.FullHits, s.FullLookups, s.FullHits)
	}
}

// TestMemoStatsSnapshot sanity-checks the -memostats introspection shape in
// both table forms.
func TestMemoStatsSnapshot(t *testing.T) {
	cands := suiteCandidates(t, false)
	opts := core.Options{Memoize: true, ImprovedMemo: true}

	a := core.New(opts)
	if _, err := a.AnalyzeAll(cands, 1); err != nil {
		t.Fatal(err)
	}
	m := a.MemoStats()
	if m.FullEntries != a.Stats.UniqueFull || m.EqEntries != a.Stats.UniqueEq {
		t.Errorf("entry counts %d/%d, want %d/%d", m.FullEntries, m.EqEntries, a.Stats.UniqueFull, a.Stats.UniqueEq)
	}
	if m.Shards != 0 {
		t.Errorf("serial run must report unsharded tables, got %d shards", m.Shards)
	}
	if m.FullBuckets < m.FullEntries || m.EqBuckets < m.EqEntries {
		t.Errorf("bucket counts below entry counts: %+v", m)
	}
	if m.L1Capacity != memo.DefaultL1Size {
		t.Errorf("L1Capacity = %d, want default %d", m.L1Capacity, memo.DefaultL1Size)
	}
	if m.L1Entries == 0 || m.L1Entries > m.L1Capacity {
		t.Errorf("L1Entries = %d (capacity %d)", m.L1Entries, m.L1Capacity)
	}
	if m.L1Lookups != a.Stats.L1Lookups || m.L2Hits != a.Stats.L2Hits {
		t.Errorf("lookup traffic not mirrored from counters: %+v", m)
	}

	b := core.New(opts)
	if _, err := b.AnalyzeAll(cands, 4); err != nil {
		t.Fatal(err)
	}
	mb := b.MemoStats()
	if mb.Shards == 0 {
		t.Fatal("concurrent run must report sharded tables")
	}
	if len(mb.ShardLens) != mb.Shards {
		t.Fatalf("ShardLens has %d entries for %d shards", len(mb.ShardLens), mb.Shards)
	}
	sum := 0
	for _, n := range mb.ShardLens {
		sum += n
	}
	if sum != mb.FullEntries {
		t.Errorf("shard lens sum to %d, want %d entries", sum, mb.FullEntries)
	}
	if mb.ShardMin > mb.ShardMax || mb.ShardMax == 0 {
		t.Errorf("shard spread %d..%d", mb.ShardMin, mb.ShardMax)
	}
}
