package core_test

// Driver-level budget and cancellation tests: the context plumbing of
// AnalyzeAllContext, budget-class gating of memo hits, and the persistence
// rules for degraded entries. The solver-level budget mechanics live in
// internal/dtest's budget tests.

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"exactdep/internal/core"
	"exactdep/internal/dtest"
	"exactdep/internal/workload"
)

// TestAnalyzeAllContextPreCancelled: a context that is already done before
// the driver starts must yield one sound Maybe/TripCancelled result per
// candidate — never a short slice, never an error — in both drivers.
func TestAnalyzeAllContextPreCancelled(t *testing.T) {
	cands := suiteCandidates(t, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		a := core.New(core.Options{Memoize: true, ImprovedMemo: true})
		rs, err := a.AnalyzeAllContext(ctx, cands, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(rs) != len(cands) {
			t.Fatalf("workers=%d: %d results for %d candidates", workers, len(rs), len(cands))
		}
		for i, r := range rs {
			if r.Outcome != dtest.Maybe || r.Trip != dtest.TripCancelled || r.Exact {
				t.Fatalf("workers=%d result %d: %+v, want Maybe/TripCancelled", workers, i, r)
			}
			if r.Pair.Label != cands[i].Pair.Label {
				t.Fatalf("workers=%d result %d: pair mismatch", workers, i)
			}
		}
		if a.Stats.CancelledPairs != len(cands) {
			t.Errorf("workers=%d: CancelledPairs = %d, want %d",
				workers, a.Stats.CancelledPairs, len(cands))
		}
		if a.Stats.Pairs != 0 {
			t.Errorf("workers=%d: cancelled pairs leaked into verdict tallies (Pairs=%d)",
				workers, a.Stats.Pairs)
		}
	}
}

// TestAnalyzeAllContextPlain: a Background context must leave results and
// tallies exactly as the context-free entry point produces them.
func TestAnalyzeAllContextPlain(t *testing.T) {
	cands := suiteCandidates(t, false)
	opts := core.Options{Memoize: true, ImprovedMemo: true}

	plain := core.New(opts)
	want, err := plain.AnalyzeAll(cands, 4)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx := core.New(opts)
	got, err := viaCtx.AnalyzeAllContext(context.Background(), cands, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Fatal("AnalyzeAllContext(Background) differs from AnalyzeAll")
	}
	if viaCtx.Stats.CancelledPairs != 0 || viaCtx.Stats.TotalBudgetTrips() != 0 {
		t.Fatalf("plain context recorded degradation: %d cancelled, %d trips",
			viaCtx.Stats.CancelledPairs, viaCtx.Stats.TotalBudgetTrips())
	}
}

// TestAnalyzeAllCountBudgetDeterministic: under a pure count budget the
// byte-identical serial-vs-concurrent contract must survive, including the
// degraded verdicts and their trip provenance.
func TestAnalyzeAllCountBudgetDeterministic(t *testing.T) {
	cands, err := workload.FMHardSuiteCandidates()
	if err != nil {
		t.Fatal(err)
	}
	cands = append(cands, suiteCandidates(t, false)...)
	opts := core.Options{
		Memoize: true, ImprovedMemo: true,
		Budget: dtest.Budget{MaxFMEliminations: 3, MaxConstraints: 64},
	}
	serial := core.New(opts)
	want, err := serial.AnalyzeAll(cands, 1)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Stats.TotalBudgetTrips() == 0 {
		t.Fatal("count budget tripped nothing; the determinism check would be vacuous")
	}
	wantBytes := fmt.Sprintf("%+v", want)
	wantMaybe := serial.Stats.Maybe
	for _, workers := range []int{2, 4, 8} {
		par := core.New(opts)
		got, err := par.AnalyzeAll(cands, workers)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", got) != wantBytes {
			t.Errorf("workers=%d: budgeted results differ from serial", workers)
		}
		if par.Stats.Maybe != wantMaybe {
			t.Errorf("workers=%d: Maybe tally %d, want %d", workers, par.Stats.Maybe, wantMaybe)
		}
	}
}

// TestBudgetClassGatesMemoHits: a Maybe verdict cached under one budget
// class must not be served to an analyzer running a different class — the
// looser run has to recompute (and may then answer exactly).
func TestBudgetClassGatesMemoHits(t *testing.T) {
	cands, err := workload.FMHardCandidates(workload.FMHardSpec{Name: "FMHC", Depth: 4, Cases: 3})
	if err != nil {
		t.Fatal(err)
	}

	tight := core.New(core.Options{Memoize: true, ImprovedMemo: true,
		Budget: dtest.Budget{MaxFMEliminations: 2}})
	tightRes, err := tight.AnalyzeAll(cands, 1)
	if err != nil {
		t.Fatal(err)
	}
	degraded := 0
	for _, r := range tightRes {
		if r.Outcome == dtest.Maybe {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("tight budget degraded nothing; gating check would be vacuous")
	}
	if got := tight.MemoStats().DegradedEntries; got == 0 {
		t.Fatal("no degraded entries cached under the tight class")
	}

	// Same analyzer, same class: the degraded entries are legitimate hits.
	hitsBefore := tight.Stats.FullHits
	again, err := tight.AnalyzeAll(cands, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		// DecidedBy legitimately flips to ByCache on the re-run; the verdict
		// and its provenance must not move.
		if again[i].Outcome != tightRes[i].Outcome || again[i].Exact != tightRes[i].Exact ||
			again[i].Trip != tightRes[i].Trip {
			t.Fatalf("re-run under the same budget class changed result %d: %+v vs %+v",
				i, again[i], tightRes[i])
		}
	}
	if tight.Stats.FullHits == hitsBefore {
		t.Error("same-class re-run did not hit the degraded cache entries")
	}

	// Transplant the tight analyzer's table into an unbudgeted analyzer via
	// the persistence layer: SaveMemo must drop the Maybe entries, so the
	// loose run recomputes and lands exact.
	var buf bytes.Buffer
	if err := tight.SaveMemo(&buf); err != nil {
		t.Fatal(err)
	}
	loose := core.New(core.Options{Memoize: true, ImprovedMemo: true})
	if err := loose.LoadMemo(&buf); err != nil {
		t.Fatal(err)
	}
	if got := loose.MemoStats().DegradedEntries; got != 0 {
		t.Fatalf("SaveMemo leaked %d degraded entries", got)
	}
	looseRes, err := loose.AnalyzeAll(cands, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range looseRes {
		if r.Outcome == dtest.Maybe {
			t.Errorf("pair %d: unbudgeted analyzer reported Maybe (stale degraded hit?)", i)
		}
		if !r.Exact {
			t.Errorf("pair %d: unbudgeted analyzer inexact: %+v", i, r)
		}
	}
}

// TestAnalyzeAllContextDeadlineDegrades: an aggressive context deadline must
// degrade gracefully — full-length result slice, every entry exact or Maybe
// with provenance, nil error — not abort.
func TestAnalyzeAllContextDeadlineDegrades(t *testing.T) {
	cands, err := workload.FMHardSuiteCandidates()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
		a := core.New(core.Options{Memoize: true, ImprovedMemo: true})
		rs, err := a.AnalyzeAllContext(ctx, cands, workers)
		cancel()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(rs) != len(cands) {
			t.Fatalf("workers=%d: %d results for %d candidates", workers, len(rs), len(cands))
		}
		for i, r := range rs {
			switch r.Outcome {
			case dtest.Independent, dtest.Dependent:
				if !r.Exact {
					t.Errorf("workers=%d result %d: inexact definite verdict", workers, i)
				}
			case dtest.Maybe:
				if r.Trip == dtest.TripNone {
					t.Errorf("workers=%d result %d: Maybe without trip provenance", workers, i)
				}
			default:
				t.Errorf("workers=%d result %d: outcome %v", workers, i, r.Outcome)
			}
		}
	}
}

// TestOptionsValidate covers the new validation surface: cascade names and
// negative budget limits.
func TestOptionsValidate(t *testing.T) {
	if err := (core.Options{}).Validate(); err != nil {
		t.Errorf("zero options invalid: %v", err)
	}
	if err := (core.Options{Cascade: "fm-only",
		Budget: dtest.Budget{MaxFMEliminations: 10}}).Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	if err := (core.Options{Cascade: "bogus"}).Validate(); err == nil {
		t.Error("unknown cascade accepted")
	}
	if err := (core.Options{Budget: dtest.Budget{MaxBranchNodes: -1}}).Validate(); err == nil {
		t.Error("negative budget limit accepted")
	}
}
