package core_test

import (
	"fmt"

	"exactdep/internal/core"
	"exactdep/internal/lang"
	"exactdep/internal/opt"
	"exactdep/internal/refs"
)

// ExampleAnalyzer_AnalyzeAll analyzes a small program on the concurrent
// driver: candidate pairs fan out over four workers sharing sharded memo
// tables, and results come back in candidate order — identical to a serial
// run, so the output is deterministic.
func ExampleAnalyzer_AnalyzeAll() {
	prog, err := lang.Parse(`
for i = 1 to 100
  a[i+1] = a[i]
  b[2*i] = b[2*i+1]
  c[i+3] = c[i]
end
`)
	if err != nil {
		panic(err)
	}
	unit := opt.Lower(prog)
	cands := refs.PairsOpts(unit, refs.Options{NoSelfPairs: true})

	a := core.New(core.Options{Memoize: true, ImprovedMemo: true})
	results, err := a.AnalyzeAll(cands, 4)
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("%v vs %v: %v (%v)\n", r.Pair.A.Ref, r.Pair.B.Ref, r.Outcome, r.DecidedBy)
	}
	fmt.Printf("unique problems cached: %d\n", a.Stats.UniqueFull)
	// Output:
	// a[i + 1] (write) vs a[i] (read): dependent (test)
	// b[2*i] (write) vs b[2*i + 1] (read): independent (gcd)
	// c[i + 3] (write) vs c[i] (read): dependent (test)
	// unique problems cached: 2
}
