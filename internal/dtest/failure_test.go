package dtest

import (
	"math"
	"testing"

	"exactdep/internal/system"
)

// Failure injection: the exact tests must degrade to safe Unknown verdicts
// (never wrong answers) when the checked int64 arithmetic or the structural
// caps trip.

func TestFMOverflowDegradesToUnknown(t *testing.T) {
	// Coefficients near the int64 edge: the Fourier–Motzkin combination
	// a·up + b·lo overflows. The cascade must answer Unknown, not panic or
	// fabricate an exact verdict.
	big := int64(math.MaxInt64 / 2)
	ts := sys(2,
		cons(1, big, big-1),
		cons(-1, -(big-3), -(big-5)),
		cons(10, 1, 0), cons(0, -1, 0),
		cons(10, 0, 1), cons(0, 0, -1),
	)
	r, _ := Solve(ts)
	if r.Outcome == Unknown {
		return // acceptable degradation
	}
	// If it *did* decide, the verdict must at least be exact-marked.
	if !r.Exact {
		t.Fatalf("non-exact non-unknown verdict: %v", r)
	}
}

func TestAcyclicSubstituteOverflow(t *testing.T) {
	// Substituting a huge bound into a multi-variable constraint overflows;
	// the Acyclic test must hand the original system to the next stage.
	big := int64(math.MaxInt64 / 2)
	ts := sys(2,
		cons(0, 1, 1),         // t1 + t2 ≤ 0: t1 upper-bounded via t2
		cons(-big, -1, 0),     // t1 ≥ big (fix candidate)
		cons(big, 0, 1),       // t2 ≤ big
		cons(-(big-1), 0, -1), // t2 ≥ big-1
	)
	s := NewState(ts)
	r := SolveState(s)
	// whatever the route, no panic and a classified outcome:
	if r.Outcome != Independent && r.Outcome != Dependent && r.Outcome != Unknown {
		t.Fatalf("unclassified outcome: %v", r)
	}
}

func TestBranchDepthLimit(t *testing.T) {
	// With explicit branch-and-bound disabled, a fractional sliver is
	// Unknown (paper-faithful mode); re-enabled, it resolves exactly.
	defer func() { EnableExplicitBranchAndBound = true }()
	ts := sys(2,
		cons(1, 2, -3), cons(-1, -2, 3), // 2t1 - 3t2 = 1
		cons(0, 0, 1), cons(0, 0, -1), // t2 = 0 → t1 = 1/2
	)
	EnableExplicitBranchAndBound = false
	r, _ := Solve(ts.Clone())
	if r.Outcome != Unknown {
		t.Fatalf("paper-faithful mode: want Unknown, got %v", r)
	}
	EnableExplicitBranchAndBound = true
	r, _ = Solve(ts.Clone())
	if r.Outcome != Independent || !r.Exact {
		t.Fatalf("with branch-and-bound: want exact Independent, got %v", r)
	}
}

func TestConstraintBlowupCap(t *testing.T) {
	// A dense system engineered to multiply constraints during elimination.
	// The cap must stop it with Unknown rather than exhausting memory.
	const n = 12
	var cs []system.Constraint
	// many constraints coupling every pair with distinct coefficient shapes
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c1 := make([]int64, n)
			c1[i], c1[j] = 2, 3
			cs = append(cs, system.Constraint{Coef: c1, C: int64(i + j)})
			c2 := make([]int64, n)
			c2[i], c2[j] = -3, -2
			cs = append(cs, system.Constraint{Coef: c2, C: int64(i - j)})
		}
	}
	r := FourierMotzkin(NewState(sys(n, cs...)))
	if r.Outcome != Independent && r.Outcome != Dependent && r.Outcome != Unknown {
		t.Fatalf("unclassified outcome: %v", r)
	}
}

func TestWitnessVerification(t *testing.T) {
	// Every dependent-exact verdict across a sweep of constructed systems
	// must carry a valid witness.
	systems := []*system.TSystem{
		sys(1, cons(5, 1), cons(0, -1)),
		sys(2, cons(3, 1, -1), cons(3, -1, 1), cons(10, 1, 0), cons(0, -1, 0), cons(10, 0, 1), cons(0, 0, -1)),
		sys(3, cons(12, 2, 3, 1), cons(-1, -1, -1, -1), cons(9, 1, 0, 0), cons(0, -1, 0, 0),
			cons(9, 0, 1, 0), cons(0, 0, -1, 0), cons(9, 0, 0, 1), cons(0, 0, 0, -1)),
	}
	for i, ts := range systems {
		r, _ := Solve(ts.Clone())
		if r.Outcome != Dependent {
			continue
		}
		if r.Witness == nil {
			t.Fatalf("system %d: dependent without witness (kind %v)", i, r.Kind)
		}
		if !VerifyWitness(ts, r.Witness) {
			t.Fatalf("system %d: invalid witness %v", i, r.Witness)
		}
	}
}
